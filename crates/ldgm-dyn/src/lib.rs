//! Batch-dynamic maintenance of locally-dominant matchings.
//!
//! The static LD-GPU solver (crate `ldgm-core`) computes a ½-approximate
//! matching in one shot. Real deployments mutate their graphs; this crate
//! maintains the matching under *batches* of edge insertions and deletions
//! without recomputing from scratch, following the batch-dynamic processing
//! model of the GPU literature (updates are applied between query epochs).
//!
//! The pointer-based locally-dominant structure is naturally incremental:
//! under the repo-wide canonical preference order ([`ldgm_core::prefer`])
//! the locally-dominant matching of a graph is *unique*, and an edge update
//! can only invalidate dominance in its local neighborhood. Per batch we
//! seed a frontier of affected vertices and re-run the
//! SETPOINTERS/SETMATES iteration restricted to that frontier until it
//! drains, billing simulated kernel launches and allreduces only for the
//! frontier work.
//!
//! Modules:
//! - [`delta`]: [`delta::DynGraph`], a delta-CSR overlay (base CSR plus
//!   per-vertex insert/delete logs, compacted back into CSR when deltas
//!   exceed a threshold).
//! - [`engine`]: [`engine::IncrementalLd`], the frontier-restricted
//!   incremental LD engine with gpusim billing.
//! - [`stream`]: [`stream::UpdateStream`], deterministic synthetic update
//!   workloads (uniform / skewed / sliding-window).
//! - [`matcher`]: the [`matcher::DynamicMatcher`] entry point and registry
//!   (incremental vs from-scratch engines behind one interface).

pub mod delta;
pub mod engine;
pub mod matcher;
pub mod stream;

pub use delta::{DynGraph, EdgeUpdate};
pub use engine::{BatchReport, DynConfig, DynConfigBuilder, DynRunOutput, IncrementalLd};
pub use matcher::{DynamicMatcher, DynamicMatcherRegistry, DynamicRunResult, WorkloadSpec};
pub use stream::{UpdateStream, WorkloadKind};

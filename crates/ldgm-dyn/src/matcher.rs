//! The `DynamicMatcher` entry point and registry.
//!
//! Mirrors the static [`ldgm_core::Matcher`] registry idiom for dynamic
//! workloads: a trait over (base graph, workload spec) → result, with two
//! registered engines — `"incremental"` (frontier maintenance via
//! [`IncrementalLd`]) and `"from-scratch"` (the static LD-GPU solver rerun
//! on a fresh snapshot after every batch, the baseline incremental
//! maintenance is measured against). Both consume the same seeded
//! [`UpdateStream`], so they see bit-identical update sequences and — the
//! canonical-uniqueness property — must produce bit-identical matchings.
//!
//! The dynamic registry lives alongside, not inside, the static
//! [`ldgm_core::MatcherRegistry`]: a static `Matcher` is checked against
//! the graph it was handed, while a dynamic run's matching is defined over
//! the *mutated* graph, so forcing both behind one trait would break the
//! static registry's verification contract (and `ldgm-core` cannot depend
//! on this crate without a cycle).

use ldgm_core::ld_gpu::{LdGpu, LdGpuConfig};
use ldgm_core::{MatchError, MatcherSetup, Matching};
use ldgm_gpusim::{MetricsRegistry, PhaseBreakdown, RunProfile, Trace};
use ldgm_graph::csr::CsrGraph;

use crate::delta::DynGraph;
use crate::engine::{BatchReport, DynConfig, IncrementalLd};
use crate::stream::{UpdateStream, WorkloadKind};

/// A synthetic dynamic workload: how update batches are generated.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WorkloadSpec {
    /// Update-distribution shape.
    pub kind: WorkloadKind,
    /// Number of update batches to apply.
    pub batches: usize,
    /// Update steps per batch.
    pub batch_size: usize,
    /// Insert probability (uniform/skewed workloads).
    pub insert_frac: f64,
    /// Live-edge cap for sliding-window workloads (default: the initial
    /// edge count).
    pub window: Option<usize>,
    /// RNG seed; the full update sequence is a pure function of it.
    pub seed: u64,
    /// Verify validity/maximality/½-approx certificate after every batch.
    pub verify_each_batch: bool,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            kind: WorkloadKind::Uniform,
            batches: 8,
            batch_size: 64,
            insert_frac: 0.5,
            window: None,
            seed: 0,
            verify_each_batch: false,
        }
    }
}

impl WorkloadSpec {
    /// Instantiate the deterministic update stream for base graph `g`.
    pub fn make_stream(&self, g: &CsrGraph) -> UpdateStream {
        let mut s = UpdateStream::new(g, self.kind, self.seed).with_insert_frac(self.insert_frac);
        if let Some(w) = self.window {
            s = s.with_window(w);
        }
        s
    }
}

/// Result of a dynamic run, in the same shape as a static `MatchResult`
/// plus dynamic-specific timing splits and per-batch reports.
#[derive(Clone, Debug)]
pub struct DynamicRunResult {
    /// Matching after the final batch (over `graph`).
    pub matching: Matching,
    /// The final mutated graph snapshot.
    pub graph: CsrGraph,
    /// Total simulated seconds (initial solve + maintenance).
    pub sim_time: f64,
    /// Simulated seconds of the initial (pre-update) solve.
    pub initial_time: f64,
    /// Simulated seconds spent processing update batches.
    pub maintenance_time: f64,
    /// Total solver rounds/iterations across the run.
    pub iterations: u64,
    /// Phase breakdown (sums to `sim_time`) and per-round records.
    pub profile: RunProfile,
    /// Run metrics.
    pub metrics: MetricsRegistry,
    /// Event timeline (incremental engine only).
    pub trace: Option<Trace>,
    /// Per-batch maintenance summaries.
    pub batch_reports: Vec<BatchReport>,
}

/// A dynamic-matching engine: maintains a matching over `base` under the
/// update stream described by `spec`.
pub trait DynamicMatcher: Send + Sync {
    /// Registry name.
    fn name(&self) -> &str;
    /// Run the workload.
    fn run(&self, base: &CsrGraph, spec: &WorkloadSpec) -> Result<DynamicRunResult, MatchError>;
}

/// Frontier-based incremental maintenance ([`IncrementalLd`]).
pub struct IncrementalMatcher {
    cfg: DynConfig,
}

impl IncrementalMatcher {
    /// Build from an engine configuration.
    pub fn new(cfg: DynConfig) -> Self {
        IncrementalMatcher { cfg }
    }
}

impl DynamicMatcher for IncrementalMatcher {
    fn name(&self) -> &str {
        "incremental"
    }

    fn run(&self, base: &CsrGraph, spec: &WorkloadSpec) -> Result<DynamicRunResult, MatchError> {
        let mut engine = IncrementalLd::new(base.clone(), self.cfg.clone());
        let mut stream = spec.make_stream(base);
        let mut reports = Vec::with_capacity(spec.batches);
        for i in 0..spec.batches {
            let batch = stream.next_batch(spec.batch_size);
            reports.push(engine.apply_batch(&batch));
            if spec.verify_each_batch {
                engine
                    .verify_current()
                    .map_err(|e| MatchError::Engine(format!("after batch {i}: {e}")))?;
            }
        }
        let out = engine.finish();
        Ok(DynamicRunResult {
            matching: out.matching,
            graph: out.graph,
            sim_time: out.sim_time,
            initial_time: out.initial_time,
            maintenance_time: out.maintenance_time,
            iterations: out.rounds,
            profile: out.profile,
            metrics: out.metrics,
            trace: Some(out.trace),
            batch_reports: reports,
        })
    }
}

/// From-scratch baseline: apply each batch to the [`DynGraph`] and rerun
/// the full static LD-GPU solver on a fresh snapshot.
pub struct RecomputeMatcher {
    setup: MatcherSetup,
}

impl RecomputeMatcher {
    /// Build from the shared matcher setup (platform + devices).
    pub fn new(setup: MatcherSetup) -> Self {
        RecomputeMatcher { setup }
    }

    fn solve(&self, g: &CsrGraph) -> Result<ldgm_core::ld_gpu::LdGpuOutput, MatchError> {
        // The driver's phase breakdown is timeline-derived by `SimRuntime`,
        // so it already sums to `sim_time` — no tracing detour needed.
        let cfg = LdGpuConfig::new(self.setup.platform.clone())
            .devices(self.setup.devices)
            .with_overlap(self.setup.overlap)
            .without_iteration_profile();
        LdGpu::new(cfg).try_run(g).map_err(MatchError::engine)
    }
}

impl DynamicMatcher for RecomputeMatcher {
    fn name(&self) -> &str {
        "from-scratch"
    }

    fn run(&self, base: &CsrGraph, spec: &WorkloadSpec) -> Result<DynamicRunResult, MatchError> {
        let mut g = DynGraph::new(base.clone());
        let mut stream = spec.make_stream(base);
        let mut metrics = MetricsRegistry::new();
        let mut phases = PhaseBreakdown::default();
        let mut reports = Vec::with_capacity(spec.batches);
        let mut iterations = 0u64;

        let initial = self.solve(base)?;
        phases.merge(&initial.profile.phases);
        metrics.merge(&initial.metrics);
        iterations += initial.iterations as u64;
        let initial_time = initial.sim_time;

        let mut last = initial;
        let mut maintenance_time = 0.0;
        for i in 0..spec.batches {
            let batch = stream.next_batch(spec.batch_size);
            let mut inserts = 0;
            let mut deletes = 0;
            for upd in &batch {
                match *upd {
                    crate::delta::EdgeUpdate::Insert { u, v, w } => {
                        if u != v && w > 0.0 && w.is_finite() {
                            g.insert_edge(u, v, w);
                            inserts += 1;
                        }
                    }
                    crate::delta::EdgeUpdate::Delete { u, v } => {
                        if g.delete_edge(u, v) {
                            deletes += 1;
                        }
                    }
                }
            }
            g.maybe_compact();
            let snap = g.snapshot();
            let out = self.solve(&snap)?;
            phases.merge(&out.profile.phases);
            metrics.merge(&out.metrics);
            iterations += out.iterations as u64;
            maintenance_time += out.sim_time;
            if spec.verify_each_batch {
                out.matching
                    .verify(&snap)
                    .map_err(|e| MatchError::Engine(format!("after batch {i}: {e}")))?;
            }
            reports.push(BatchReport {
                batch: i as u64,
                updates: batch.len(),
                inserts,
                deletes,
                seed_frontier: snap.num_vertices(),
                rounds: out.iterations as u64,
                new_matches: out.matching.cardinality() as u64,
                broken_matches: 0,
                sim_time: out.sim_time,
                compacted: false,
            });
            last = out;
        }

        let sim_time = initial_time + maintenance_time;
        let graph = g.snapshot();
        Ok(DynamicRunResult {
            matching: last.matching,
            graph,
            sim_time,
            initial_time,
            maintenance_time,
            iterations,
            profile: RunProfile { phases, iterations: Vec::new(), sim_time },
            metrics,
            trace: None,
            batch_reports: reports,
        })
    }
}

/// Name-keyed registry of dynamic engines, mirroring
/// [`ldgm_core::MatcherRegistry`].
#[derive(Default)]
pub struct DynamicMatcherRegistry {
    entries: Vec<Box<dyn DynamicMatcher>>,
}

impl DynamicMatcherRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        DynamicMatcherRegistry::default()
    }

    /// The default engines — `"incremental"` and `"from-scratch"` — built
    /// from the shared matcher setup.
    pub fn with_defaults(setup: &MatcherSetup) -> Self {
        let setup = setup.resolved();
        let mut r = DynamicMatcherRegistry::new();
        let cfg = DynConfig::new(setup.platform.clone())
            .devices(setup.devices)
            .with_overlap(setup.overlap);
        r.register(Box::new(IncrementalMatcher::new(cfg)));
        r.register(Box::new(RecomputeMatcher::new(setup.clone())));
        r
    }

    /// Register an engine. Re-registering a name replaces the earlier
    /// entry (logged to stderr) and returns it; entries stay name-sorted.
    pub fn register(&mut self, m: Box<dyn DynamicMatcher>) -> Option<Box<dyn DynamicMatcher>> {
        match self.entries.binary_search_by(|e| e.name().cmp(m.name())) {
            Ok(i) => {
                eprintln!(
                    "ldgm: dynamic engine '{}' re-registered; replacing the earlier entry",
                    m.name()
                );
                Some(std::mem::replace(&mut self.entries[i], m))
            }
            Err(i) => {
                self.entries.insert(i, m);
                None
            }
        }
    }

    /// Look up an engine by name.
    pub fn get(&self, name: &str) -> Option<&dyn DynamicMatcher> {
        self.entries.binary_search_by(|e| e.name().cmp(name)).ok().map(|i| self.entries[i].as_ref())
    }

    /// Look up an engine by name, with nearest-name suggestions on a miss.
    pub fn try_get(&self, name: &str) -> Result<&dyn DynamicMatcher, MatchError> {
        self.get(name).ok_or_else(|| MatchError::unknown_algorithm(name, &self.names()))
    }

    /// Registered names, deterministically sorted.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|e| e.name()).collect()
    }

    /// Number of registered engines.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldgm_gpusim::Platform;
    use ldgm_graph::gen::urand;

    fn setup() -> MatcherSetup {
        MatcherSetup { devices: 2, ..MatcherSetup::default() }
    }

    #[test]
    fn registry_has_both_engines() {
        let r = DynamicMatcherRegistry::with_defaults(&setup());
        assert_eq!(r.names(), vec!["from-scratch", "incremental"]);
        assert!(r.get("incremental").is_some());
        assert!(r.get("nope").is_none());
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
        // A miss suggests the nearest registered engine.
        let err = r.try_get("incrmental").err().expect("miss must error");
        match &err {
            MatchError::UnknownAlgorithm { suggestions, .. } => {
                assert_eq!(suggestions[0], "incremental");
            }
            other => panic!("expected UnknownAlgorithm, got {other:?}"),
        }
        // Re-registration replaces and returns the displaced engine.
        let mut r = DynamicMatcherRegistry::with_defaults(&setup());
        let displaced = r.register(Box::new(RecomputeMatcher::new(setup())));
        assert_eq!(displaced.map(|m| m.name().to_string()), Some("from-scratch".to_string()));
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn engines_agree_bit_for_bit_on_the_same_stream() {
        let g = urand(150, 600, 11);
        let spec = WorkloadSpec {
            batches: 5,
            batch_size: 25,
            seed: 13,
            verify_each_batch: true,
            ..WorkloadSpec::default()
        };
        let r = DynamicMatcherRegistry::with_defaults(&setup());
        let inc = r.get("incremental").unwrap().run(&g, &spec).unwrap();
        let scr = r.get("from-scratch").unwrap().run(&g, &spec).unwrap();
        // Canonical uniqueness: identical mate arrays, not just weights.
        assert_eq!(inc.matching, scr.matching);
        assert_eq!(inc.graph.offsets(), scr.graph.offsets());
        assert_eq!(inc.graph.weight_array(), scr.graph.weight_array());
        assert!((inc.matching.weight(&inc.graph) - scr.matching.weight(&scr.graph)).abs() < 1e-9);
    }

    #[test]
    fn incremental_beats_from_scratch_on_small_batches() {
        let g = urand(1500, 9000, 12);
        let spec = WorkloadSpec { batches: 4, batch_size: 8, seed: 5, ..WorkloadSpec::default() };
        let r = DynamicMatcherRegistry::with_defaults(&setup());
        let inc = r.get("incremental").unwrap().run(&g, &spec).unwrap();
        let scr = r.get("from-scratch").unwrap().run(&g, &spec).unwrap();
        assert!(
            inc.maintenance_time < scr.maintenance_time / 2.0,
            "incremental {} vs from-scratch {}",
            inc.maintenance_time,
            scr.maintenance_time
        );
    }

    #[test]
    fn sliding_window_workload_runs_on_both_engines() {
        let g = urand(120, 400, 13);
        let spec = WorkloadSpec {
            kind: WorkloadKind::SlidingWindow,
            batches: 3,
            batch_size: 30,
            window: Some(380),
            seed: 21,
            verify_each_batch: true,
            ..WorkloadSpec::default()
        };
        let r = DynamicMatcherRegistry::with_defaults(&setup());
        let inc = r.get("incremental").unwrap().run(&g, &spec).unwrap();
        let scr = r.get("from-scratch").unwrap().run(&g, &spec).unwrap();
        assert_eq!(inc.matching, scr.matching);
        assert!(inc.graph.num_edges() <= 380 + 30);
    }

    #[test]
    fn result_shapes_are_consistent() {
        let g = urand(200, 800, 14);
        let spec = WorkloadSpec { batches: 3, batch_size: 20, seed: 2, ..WorkloadSpec::default() };
        let r = DynamicMatcherRegistry::with_defaults(&MatcherSetup {
            platform: Platform::dgx_h100(),
            devices: 4,
            ..MatcherSetup::default()
        });
        for name in ["incremental", "from-scratch"] {
            let out = r.get(name).unwrap().run(&g, &spec).unwrap();
            assert_eq!(out.batch_reports.len(), 3, "{name}");
            assert!(out.sim_time > 0.0, "{name}");
            assert!(
                (out.initial_time + out.maintenance_time - out.sim_time).abs()
                    < 1e-9 * out.sim_time,
                "{name}"
            );
            assert!(
                (out.profile.phases.total() - out.sim_time).abs() < 1e-6 * out.sim_time,
                "{name}: phases {} vs sim {}",
                out.profile.phases.total(),
                out.sim_time
            );
            assert!(out.iterations > 0, "{name}");
            out.matching.verify(&out.graph).unwrap();
        }
    }
}

//! Delta-CSR overlay: an immutable base CSR plus per-vertex update logs.
//!
//! CSR is the right layout for GPU kernels but the wrong one for updates —
//! inserting one edge would shift the whole adjacency array. The standard
//! batch-dynamic compromise is an overlay: the base CSR stays untouched and
//! each vertex carries a small sorted log of inserted/deleted incident
//! edges. Kernels scan `base adjacency + log`; when the logs grow past a
//! fraction of the base size the overlay is *compacted* — merged back into
//! a fresh CSR — so scan overhead stays bounded. Vertex ids are stable
//! across compaction, which is what lets the engine keep its mate/pointer
//! arrays alive across the whole update stream.

use ldgm_graph::csr::{CsrGraph, VertexId, Weight};

/// One edge mutation in an update batch. Updates address undirected edges;
/// the overlay mirrors them into both endpoint logs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum EdgeUpdate {
    /// Insert edge `{u, v}` with weight `w`. Inserting an edge that already
    /// exists replaces its weight (a reweight).
    Insert {
        /// One endpoint.
        u: VertexId,
        /// Other endpoint.
        v: VertexId,
        /// New positive finite weight.
        w: Weight,
    },
    /// Delete edge `{u, v}`. Deleting a missing edge is a no-op.
    Delete {
        /// One endpoint.
        u: VertexId,
        /// Other endpoint.
        v: VertexId,
    },
}

impl EdgeUpdate {
    /// The endpoints addressed by the update.
    pub fn endpoints(&self) -> (VertexId, VertexId) {
        match *self {
            EdgeUpdate::Insert { u, v, .. } | EdgeUpdate::Delete { u, v } => (u, v),
        }
    }

    /// Whether this is an insert (or reweight).
    pub fn is_insert(&self) -> bool {
        matches!(self, EdgeUpdate::Insert { .. })
    }
}

/// A dynamic graph: base CSR plus per-vertex overlay logs.
///
/// Overlay entries are `(neighbor, Some(w))` for an inserted or reweighted
/// edge and `(neighbor, None)` for a deleted base edge, kept sorted by
/// neighbor id so lookups are binary searches and full scans are two-pointer
/// merges against the (also sorted) base adjacency. A `None` entry always
/// shadows a base edge: deleting an overlay-only edge removes its entry
/// outright.
#[derive(Clone, Debug)]
pub struct DynGraph {
    base: CsrGraph,
    delta: Vec<Vec<(VertexId, Option<Weight>)>>,
    /// Total directed overlay entries (the compaction trigger).
    delta_entries: usize,
    /// Current number of live undirected edges.
    live_edges: usize,
    /// Compact when overlay entries exceed this fraction of the base's
    /// directed edges (with a small absolute floor so tiny graphs don't
    /// thrash).
    compact_frac: f64,
    compactions: u64,
}

/// Minimum overlay size before compaction triggers, regardless of fraction.
const COMPACT_FLOOR: usize = 32;

impl DynGraph {
    /// Wrap a base CSR with an empty overlay. Default compaction threshold
    /// is 25% of the base's directed edges.
    pub fn new(base: CsrGraph) -> Self {
        let n = base.num_vertices();
        let live_edges = base.num_edges();
        DynGraph {
            base,
            delta: vec![Vec::new(); n],
            delta_entries: 0,
            live_edges,
            compact_frac: 0.25,
            compactions: 0,
        }
    }

    /// Set the compaction threshold as a fraction of base directed edges.
    pub fn with_compact_frac(mut self, frac: f64) -> Self {
        assert!(frac > 0.0, "compaction fraction must be positive");
        self.compact_frac = frac;
        self
    }

    /// Number of vertices (stable across updates and compaction).
    pub fn num_vertices(&self) -> usize {
        self.base.num_vertices()
    }

    /// Current number of live undirected edges.
    pub fn num_edges(&self) -> usize {
        self.live_edges
    }

    /// Current number of live directed edges.
    pub fn num_directed_edges(&self) -> usize {
        2 * self.live_edges
    }

    /// The base CSR the overlay is layered on.
    pub fn base(&self) -> &CsrGraph {
        &self.base
    }

    /// Directed overlay entries currently pending compaction.
    pub fn delta_entries(&self) -> usize {
        self.delta_entries
    }

    /// Compactions performed so far.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Current weight of edge `{u, v}`, overlay-aware.
    pub fn edge_weight(&self, u: VertexId, v: VertexId) -> Option<Weight> {
        match self.delta[u as usize].binary_search_by_key(&v, |e| e.0) {
            Ok(i) => self.delta[u as usize][i].1,
            Err(_) => self.base.edge_weight(u, v),
        }
    }

    /// Whether edge `{u, v}` is currently live.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.edge_weight(u, v).is_some()
    }

    /// Slots a kernel scanning `v`'s neighborhood must inspect: the base
    /// adjacency plus the overlay log (deleted edges still occupy a slot —
    /// that is the cost delta-CSR pays until compaction).
    pub fn scan_cost(&self, v: VertexId) -> usize {
        self.base.degree(v) + self.delta[v as usize].len()
    }

    /// Insert (or reweight) edge `{u, v}` with weight `w`. Returns `true`
    /// when the edge is new, `false` on a reweight. Self-loops and
    /// non-positive/non-finite weights are rejected by assertion, matching
    /// the strictness of [`CsrGraph::validate`].
    pub fn insert_edge(&mut self, u: VertexId, v: VertexId, w: Weight) -> bool {
        assert!(u != v, "self-loop insert {u}");
        assert!(w > 0.0 && w.is_finite(), "edge weight must be positive and finite, got {w}");
        let n = self.num_vertices() as VertexId;
        assert!(u < n && v < n, "endpoint out of range ({u}, {v}) with n={n}");
        let existed = self.has_edge(u, v);
        self.set_directed(u, v, Some(w));
        self.set_directed(v, u, Some(w));
        if !existed {
            self.live_edges += 1;
        }
        !existed
    }

    /// Delete edge `{u, v}`. Returns `true` if the edge existed.
    pub fn delete_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        if u == v || !self.has_edge(u, v) {
            return false;
        }
        self.set_directed(u, v, None);
        self.set_directed(v, u, None);
        self.live_edges -= 1;
        true
    }

    fn set_directed(&mut self, u: VertexId, v: VertexId, val: Option<Weight>) {
        let base_has = self.base.has_edge(u, v);
        let log = &mut self.delta[u as usize];
        match log.binary_search_by_key(&v, |e| e.0) {
            Ok(i) => {
                if val.is_none() && !base_has {
                    // Deleting an overlay-only edge: drop the entry.
                    log.remove(i);
                    self.delta_entries -= 1;
                } else {
                    log[i].1 = val;
                }
            }
            Err(i) => {
                debug_assert!(val.is_some() || base_has, "tombstone for a nonexistent edge");
                log.insert(i, (v, val));
                self.delta_entries += 1;
            }
        }
    }

    /// Iterate `v`'s live incident edges as `(neighbor, weight)`, in
    /// neighbor-id order (two-pointer merge of base adjacency and overlay).
    pub fn edges_of(&self, v: VertexId) -> DeltaEdges<'_> {
        DeltaEdges {
            adj: self.base.neighbors(v),
            wts: self.base.neighbor_weights(v),
            log: &self.delta[v as usize],
            i: 0,
            j: 0,
        }
    }

    /// Iterate all live undirected edges as `(u, v, w)` with `u < v`.
    pub fn iter_edges(&self) -> impl Iterator<Item = (VertexId, VertexId, Weight)> + '_ {
        (0..self.num_vertices() as VertexId).flat_map(move |u| {
            self.edges_of(u).filter(move |&(v, _)| u < v).map(move |(v, w)| (u, v, w))
        })
    }

    /// Materialize the current graph as a fresh CSR (the overlay merged in).
    pub fn snapshot(&self) -> CsrGraph {
        let n = self.num_vertices();
        let directed = self.num_directed_edges();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut adj = Vec::with_capacity(directed);
        let mut weights = Vec::with_capacity(directed);
        offsets.push(0u64);
        for v in 0..n as VertexId {
            for (u, w) in self.edges_of(v) {
                adj.push(u);
                weights.push(w);
            }
            offsets.push(adj.len() as u64);
        }
        CsrGraph::from_raw(offsets, adj, weights)
    }

    /// Whether the overlay has outgrown the compaction threshold.
    pub fn should_compact(&self) -> bool {
        let threshold = ((self.base.num_directed_edges() as f64 * self.compact_frac) as usize)
            .max(COMPACT_FLOOR);
        self.delta_entries >= threshold
    }

    /// Merge the overlay into a fresh base CSR and clear the logs.
    pub fn compact(&mut self) {
        self.base = self.snapshot();
        for log in &mut self.delta {
            log.clear();
        }
        self.delta_entries = 0;
        self.compactions += 1;
    }

    /// Compact if [`Self::should_compact`]; returns whether it happened.
    pub fn maybe_compact(&mut self) -> bool {
        if self.should_compact() {
            self.compact();
            true
        } else {
            false
        }
    }
}

/// Merge iterator over a vertex's base adjacency and overlay log.
pub struct DeltaEdges<'a> {
    adj: &'a [VertexId],
    wts: &'a [Weight],
    log: &'a [(VertexId, Option<Weight>)],
    i: usize,
    j: usize,
}

impl Iterator for DeltaEdges<'_> {
    type Item = (VertexId, Weight);

    fn next(&mut self) -> Option<(VertexId, Weight)> {
        loop {
            let base_next = self.adj.get(self.i).copied();
            let log_next = self.log.get(self.j).copied();
            match (base_next, log_next) {
                (Some(b), Some((l, val))) => {
                    if b < l {
                        self.i += 1;
                        return Some((b, self.wts[self.i - 1]));
                    }
                    // Overlay entry at or before the base cursor: it wins.
                    // When ids are equal the base slot is consumed too.
                    if b == l {
                        self.i += 1;
                    }
                    self.j += 1;
                    match val {
                        Some(w) => return Some((l, w)),
                        None => continue, // tombstone: edge deleted
                    }
                }
                (Some(_), None) => {
                    self.i += 1;
                    return Some((self.adj[self.i - 1], self.wts[self.i - 1]));
                }
                (None, Some((l, val))) => {
                    self.j += 1;
                    match val {
                        Some(w) => return Some((l, w)),
                        None => continue,
                    }
                }
                (None, None) => return None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldgm_graph::gen::urand;
    use ldgm_graph::GraphBuilder;

    fn path3() -> CsrGraph {
        GraphBuilder::new(4).add_edge(0, 1, 3.0).add_edge(1, 2, 2.0).add_edge(2, 3, 1.0).build()
    }

    #[test]
    fn insert_delete_reweight_roundtrip() {
        let mut g = DynGraph::new(path3());
        assert_eq!(g.num_edges(), 3);
        assert!(g.insert_edge(0, 3, 5.0));
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.edge_weight(3, 0), Some(5.0));
        // Reweight (both on an overlay edge and a base edge).
        assert!(!g.insert_edge(0, 3, 6.0));
        assert!(!g.insert_edge(1, 2, 0.5));
        assert_eq!(g.edge_weight(0, 3), Some(6.0));
        assert_eq!(g.edge_weight(2, 1), Some(0.5));
        assert_eq!(g.num_edges(), 4);
        // Delete a base edge and an overlay edge.
        assert!(g.delete_edge(0, 1));
        assert!(g.delete_edge(3, 0));
        assert!(!g.delete_edge(0, 1), "double delete is a no-op");
        assert_eq!(g.num_edges(), 2);
        assert!(!g.has_edge(0, 1));
        assert!(!g.has_edge(0, 3));
    }

    #[test]
    fn overlay_only_delete_leaves_no_tombstone() {
        let mut g = DynGraph::new(CsrGraph::empty(3));
        g.insert_edge(0, 1, 1.0);
        assert_eq!(g.delta_entries(), 2);
        g.delete_edge(0, 1);
        assert_eq!(g.delta_entries(), 0, "insert+delete should cancel out");
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn edges_of_merges_in_order() {
        let mut g = DynGraph::new(path3());
        g.insert_edge(1, 3, 4.0);
        g.delete_edge(1, 2);
        let edges: Vec<_> = g.edges_of(1).collect();
        assert_eq!(edges, vec![(0, 3.0), (3, 4.0)]);
        assert_eq!(g.scan_cost(1), 2 + 2, "base degree 2 plus two log entries");
    }

    #[test]
    fn snapshot_matches_rebuilt_graph() {
        let mut g = DynGraph::new(path3());
        g.insert_edge(0, 2, 7.0);
        g.delete_edge(2, 3);
        g.insert_edge(1, 2, 9.0); // reweight
        let snap = g.snapshot();
        assert_eq!(snap.validate(), Ok(()));
        let want = GraphBuilder::new(4)
            .add_edge(0, 1, 3.0)
            .add_edge(0, 2, 7.0)
            .add_edge(1, 2, 9.0)
            .build();
        assert_eq!(snap.offsets(), want.offsets());
        assert_eq!(snap.adjacency(), want.adjacency());
        assert_eq!(snap.weight_array(), want.weight_array());
    }

    #[test]
    fn compaction_preserves_graph_and_resets_overlay() {
        let base = urand(100, 400, 9);
        let mut g = DynGraph::new(base);
        let mut rng = ldgm_graph::Xoshiro256::seed_from_u64(42);
        for _ in 0..120 {
            let u = rng.below(100) as VertexId;
            let v = rng.below(100) as VertexId;
            if u == v {
                continue;
            }
            if rng.chance(0.3) {
                g.delete_edge(u, v);
            } else {
                g.insert_edge(u, v, 0.1 + rng.next_f64());
            }
        }
        let before = g.snapshot();
        let edges_before = g.num_edges();
        g.compact();
        assert_eq!(g.compactions(), 1);
        assert_eq!(g.delta_entries(), 0);
        assert_eq!(g.num_edges(), edges_before);
        let after = g.snapshot();
        assert_eq!(before.offsets(), after.offsets());
        assert_eq!(before.adjacency(), after.adjacency());
        assert_eq!(before.weight_array(), after.weight_array());
    }

    #[test]
    fn should_compact_honors_threshold() {
        let base = urand(200, 1000, 3); // 2000 directed edges
        let mut g = DynGraph::new(base).with_compact_frac(0.05); // threshold 100
        let mut added = 0;
        let mut v = 1;
        while !g.should_compact() {
            g.insert_edge(0, v, 1.0);
            v += 1;
            added += 2;
            assert!(v < 200, "threshold never reached");
        }
        assert!(added >= 100, "compacted too early at {added} entries");
        assert!(g.maybe_compact());
        assert!(!g.maybe_compact());
    }

    #[test]
    fn iter_edges_counts_live_edges() {
        let mut g = DynGraph::new(path3());
        g.insert_edge(0, 3, 2.5);
        g.delete_edge(1, 2);
        let listed: Vec<_> = g.iter_edges().collect();
        assert_eq!(listed.len(), g.num_edges());
        assert!(listed.contains(&(0, 3, 2.5)));
        assert!(!listed.iter().any(|&(u, v, _)| (u, v) == (1, 2)));
    }
}

//! Frontier-restricted incremental LD engine.
//!
//! The repo-wide preference order ([`prefer`]: heavier weight, ties to the
//! lower vertex id) is *total* over edges, which makes the locally-dominant
//! matching of any graph unique — it equals the greedy matching taken in
//! preference order. That uniqueness is what makes incremental maintenance
//! well-defined: after a batch of updates there is exactly one correct
//! answer, the static-LD matching of the mutated snapshot, and this engine
//! converges to it by re-running the SETPOINTERS/SETMATES iteration
//! restricted to the vertices an update could have affected.
//!
//! The invariant maintained between batches: every live non-matched edge
//! has an endpoint whose matched edge is preferred over it. Updates break
//! the invariant only locally — at the endpoints of updated edges, their
//! mates, and neighbors for whom a deleted/outweighed matched edge was the
//! blocker — so those vertices seed the *frontier*. Each round, frontier
//! vertices point at their best *claimable* incident edge (one preferred
//! over both endpoints' current matched edges — a matched vertex can be
//! outbid), mutual pointers commit (unjoining any previous mates, whose
//! neighborhoods then wake), and unfulfilled claims carry the frontier into
//! the next round until it drains. The highest-ranked claimable edge
//! commits within two rounds, so termination follows the same argument as
//! the static solver's.
//!
//! Simulated cost is billed per round through [`ldgm_gpusim::SimRuntime`] —
//! pointing kernels sized by the frontier's scan work (same byte/wave
//! accounting as the static SETPOINTERS kernel, plus the worklist read),
//! sparse allreduces carrying only frontier entries (16 bytes each: index +
//! value), update uploads as H2D copies, and compaction as a CSR reshard —
//! so the speedup over from-scratch recompute is directly measurable.

use ldgm_core::ld_gpu::Scratch;
use ldgm_core::verify::half_approx_certificate;
use ldgm_core::{prefer, MatchError, Matching, UNMATCHED};
use ldgm_gpusim::metrics::names;
use ldgm_gpusim::{
    CommChunk, IterationRecord, KernelStats, MetricsRegistry, Platform, RunProfile, SimRuntime,
    Trace,
};
use ldgm_graph::csr::{CsrGraph, VertexId};

use crate::delta::{DynGraph, EdgeUpdate};

/// Configuration for the incremental engine.
#[derive(Clone, Debug)]
pub struct DynConfig {
    /// Simulated platform (device spec, interconnect, cost models).
    pub platform: Platform,
    /// Devices to bill against (vertex space split uniformly).
    pub devices: usize,
    /// Delta-CSR compaction threshold as a fraction of base directed edges.
    pub compact_frac: f64,
    /// Vertices per warp for frontier kernels; default derives from the
    /// frontier size like the static driver does from the partition size.
    pub vertices_per_warp: Option<usize>,
    /// Communication/computation overlap: bill the sparse collectives as
    /// chunked operations on the comm stream — each device's frontier
    /// slice starts reducing when its pointing kernel retires. Billing
    /// only; the maintained matching is unchanged. Off by default.
    pub overlap: bool,
}

impl DynConfig {
    /// Defaults: 1 device, 25% compaction threshold, derived warp sizing.
    pub fn new(platform: Platform) -> Self {
        DynConfig {
            platform,
            devices: 1,
            compact_frac: 0.25,
            vertices_per_warp: None,
            overlap: false,
        }
    }

    /// Set the device count (clamped to the platform maximum).
    pub fn devices(mut self, n: usize) -> Self {
        self.devices = n.max(1);
        self
    }

    /// Set the compaction threshold fraction.
    pub fn compact_frac(mut self, frac: f64) -> Self {
        self.compact_frac = frac;
        self
    }

    /// Fix the vertices-per-warp of frontier kernels.
    pub fn vertices_per_warp(mut self, v: usize) -> Self {
        self.vertices_per_warp = Some(v.max(1));
        self
    }

    /// Toggle communication/computation overlap (chunked collectives on
    /// the comm stream).
    pub fn with_overlap(mut self, on: bool) -> Self {
        self.overlap = on;
        self
    }

    /// Start a validated builder ([`DynConfigBuilder`]) with the same
    /// defaults as [`DynConfig::new`].
    pub fn builder(platform: Platform) -> DynConfigBuilder {
        DynConfigBuilder { cfg: DynConfig::new(platform) }
    }

    /// Check the configuration for nonsense combinations. The chained
    /// setters clamp silently for backward compatibility; the builder
    /// routes through this instead.
    pub fn validate(&self) -> Result<(), MatchError> {
        if self.devices == 0 {
            return Err(MatchError::InvalidConfig("devices must be >= 1".to_string()));
        }
        if !(self.compact_frac.is_finite() && self.compact_frac > 0.0) {
            return Err(MatchError::InvalidConfig(format!(
                "compact_frac must be a positive finite fraction, got {}",
                self.compact_frac
            )));
        }
        if self.vertices_per_warp == Some(0) {
            return Err(MatchError::InvalidConfig(
                "vertices_per_warp must be >= 1 when fixed".to_string(),
            ));
        }
        Ok(())
    }
}

/// Validated builder for [`DynConfig`]; mirrors
/// [`ldgm_core::ld_gpu::LdGpuConfigBuilder`].
#[derive(Clone, Debug)]
pub struct DynConfigBuilder {
    cfg: DynConfig,
}

impl DynConfigBuilder {
    /// Device count (validated, not clamped: 0 is rejected by `build`).
    pub fn devices(mut self, n: usize) -> Self {
        self.cfg.devices = n;
        self
    }

    /// Delta-CSR compaction threshold fraction.
    pub fn compact_frac(mut self, frac: f64) -> Self {
        self.cfg.compact_frac = frac;
        self
    }

    /// Fix the vertices-per-warp of frontier kernels.
    pub fn vertices_per_warp(mut self, v: usize) -> Self {
        self.cfg.vertices_per_warp = Some(v);
        self
    }

    /// Toggle communication/computation overlap billing.
    pub fn overlap(mut self, on: bool) -> Self {
        self.cfg.overlap = on;
        self
    }

    /// Re-size the platform to `n` cluster nodes
    /// ([`Platform::with_nodes`]): clusters flat platforms over
    /// InfiniBand, re-sizes cluster presets, no-op at `n = 1` on flat
    /// platforms.
    pub fn nodes(mut self, n: usize) -> Self {
        self.cfg.platform = self.cfg.platform.clone().with_nodes(n);
        self
    }

    /// Check the accumulated configuration without consuming the builder.
    pub fn validate(&self) -> Result<(), MatchError> {
        self.cfg.validate()
    }

    /// Validate and produce the configuration.
    pub fn build(self) -> Result<DynConfig, MatchError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

/// Per-batch maintenance summary.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BatchReport {
    /// 0-based batch index.
    pub batch: u64,
    /// Updates in the batch (including no-op deletes).
    pub updates: usize,
    /// Applied inserts/reweights.
    pub inserts: usize,
    /// Applied deletes of live edges.
    pub deletes: usize,
    /// Distinct vertices seeding the frontier.
    pub seed_frontier: usize,
    /// SETPOINTERS/SETMATES rounds until the frontier drained.
    pub rounds: u64,
    /// Edges newly committed to the matching.
    pub new_matches: u64,
    /// Previously matched edges broken (by deletion or by being outbid).
    pub broken_matches: u64,
    /// Simulated seconds this batch cost (upload + rounds + compaction).
    pub sim_time: f64,
    /// Whether the overlay was compacted after this batch.
    pub compacted: bool,
}

/// Everything an incremental run produces, in the same shape as the static
/// driver's output.
#[derive(Clone, Debug)]
pub struct DynRunOutput {
    /// The maintained matching after the final batch.
    pub matching: Matching,
    /// Snapshot of the final mutated graph.
    pub graph: CsrGraph,
    /// Total simulated seconds (initial build + maintenance).
    pub sim_time: f64,
    /// Simulated seconds of the initial full build.
    pub initial_time: f64,
    /// Simulated seconds of update maintenance only.
    pub maintenance_time: f64,
    /// Total SETPOINTERS/SETMATES rounds across build + batches.
    pub rounds: u64,
    /// Update batches applied.
    pub batches: u64,
    /// Phase breakdown and per-round records.
    pub profile: RunProfile,
    /// Kernel/collective/frontier metrics.
    pub metrics: MetricsRegistry,
    /// Full event timeline.
    pub trace: Trace,
}

/// The incremental locally-dominant matching engine.
#[derive(Clone, Debug)]
pub struct IncrementalLd {
    g: DynGraph,
    cfg: DynConfig,
    ndev: usize,
    mate: Vec<VertexId>,
    /// Weight of each vertex's matched edge; `NEG_INFINITY` when unmatched,
    /// so `prefer(w, v, mate_w[u], mate[u])` directly tests whether edge
    /// `(u, v)` outranks `u`'s current situation.
    mate_w: Vec<f64>,
    ptr: Vec<VertexId>,
    ptr_w: Vec<f64>,
    in_frontier: Vec<bool>,
    rt: SimRuntime,
    rounds: u64,
    batches: u64,
    /// Per-round records pushed into the runtime so far (their index).
    iterations_recorded: usize,
    initial_time: f64,
    /// Reusable stabilization buffers (`next`/`freed` worklists, overlap
    /// comm staging) — steady-state rounds allocate nothing.
    scratch: Scratch,
}

impl IncrementalLd {
    /// Build the engine over `base`, running the initial full construction
    /// (stabilization with every vertex in the frontier — exactly the
    /// static LD iteration) and billing it.
    pub fn new(base: CsrGraph, cfg: DynConfig) -> Self {
        let n = base.num_vertices();
        let ndev = cfg.devices.clamp(1, cfg.platform.max_devices);
        let g = DynGraph::new(base).with_compact_frac(cfg.compact_frac);
        // The dynamic output exposes its timeline unconditionally, so the
        // runtime keeps the trace it records anyway.
        let rt = SimRuntime::new(&cfg.platform, ndev).with_trace(true);
        let mut engine = IncrementalLd {
            g,
            ndev,
            cfg,
            mate: vec![UNMATCHED; n],
            mate_w: vec![f64::NEG_INFINITY; n],
            ptr: vec![UNMATCHED; n],
            ptr_w: vec![f64::NEG_INFINITY; n],
            in_frontier: vec![false; n],
            rt,
            rounds: 0,
            batches: 0,
            iterations_recorded: 0,
            initial_time: 0.0,
            scratch: Scratch::default(),
        };
        let all: Vec<VertexId> = (0..n as VertexId).collect();
        engine.stabilize(all);
        engine.initial_time = engine.horizon();
        engine
    }

    /// The dynamic graph being maintained.
    pub fn graph(&self) -> &DynGraph {
        &self.g
    }

    /// The maintained mate array.
    pub fn mate_array(&self) -> &[VertexId] {
        &self.mate
    }

    /// The maintained matching, as a checkable [`Matching`].
    pub fn matching(&self) -> Matching {
        Matching::from_mate(self.mate.clone())
    }

    /// Simulated seconds elapsed so far (max over device timelines).
    pub fn horizon(&self) -> f64 {
        self.rt.horizon()
    }

    /// Number of vertices in the maintained graph.
    pub fn num_vertices(&self) -> usize {
        self.mate.len()
    }

    /// Matched edges in the maintained matching.
    pub fn cardinality(&self) -> usize {
        self.mate.iter().filter(|&&m| m != UNMATCHED).count() / 2
    }

    /// Total weight of the maintained matching. Each matched edge's weight
    /// is cached at both endpoints, so the sum halves to the edge total.
    pub fn matched_weight(&self) -> f64 {
        self.mate
            .iter()
            .zip(&self.mate_w)
            .filter(|(&m, _)| m != UNMATCHED)
            .map(|(_, &w)| w)
            .sum::<f64>()
            / 2.0
    }

    /// Total SETPOINTERS/SETMATES rounds so far (build + maintenance).
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Update batches applied so far.
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// Live view of the run metrics accumulated so far.
    pub fn metrics(&self) -> &MetricsRegistry {
        self.rt.metrics()
    }

    /// Check the maintained matching against the current snapshot:
    /// validity, maximality, and the locally-dominant ½-approx certificate.
    pub fn verify_current(&self) -> Result<(), String> {
        let snap = self.g.snapshot();
        let m = self.matching();
        m.verify(&snap)?;
        if !m.is_maximal(&snap) {
            return Err("maintained matching is not maximal".to_string());
        }
        if !half_approx_certificate(&snap, &m) {
            return Err("maintained matching fails the ½-approx certificate".to_string());
        }
        Ok(())
    }

    /// Which device owns vertex `v` (uniform contiguous split, mirroring
    /// the static driver's contiguous ranges).
    fn owner(&self, v: VertexId) -> usize {
        let n = self.mate.len().max(1);
        (v as usize * self.ndev / n).min(self.ndev - 1)
    }

    /// Apply one batch of updates and restore the invariant. Returns the
    /// per-batch summary; the maintained matching afterwards equals static
    /// LD on the mutated snapshot.
    pub fn apply_batch(&mut self, batch: &[EdgeUpdate]) -> BatchReport {
        let t0 = self.horizon();
        let n = self.mate.len() as VertexId;
        let mut frontier: Vec<VertexId> = Vec::new();
        let mut inserts = 0usize;
        let mut deletes = 0usize;
        let mut broken_by_delete = 0u64;
        let mut wake_edges = 0u64;
        let mut wake_roots = 0u64;

        // Bill the update upload: 16 bytes per update (two ids + weight),
        // broadcast to every device.
        if !batch.is_empty() {
            let bytes = 16 * batch.len() as u64;
            let label = self.rt.label("updates", || format!("updates b{}", self.batches));
            for d in 0..self.ndev {
                self.rt.device(d).h2d_copy(0, bytes, label.clone());
            }
        }

        for upd in batch {
            let (u, v) = upd.endpoints();
            if u == v || u >= n || v >= n {
                continue;
            }
            match *upd {
                EdgeUpdate::Insert { w, .. } => {
                    if !(w > 0.0 && w.is_finite()) {
                        continue;
                    }
                    let was_mated_pair = self.mate[u as usize] == v;
                    let old_w = self.mate_w[u as usize];
                    self.g.insert_edge(u, v, w);
                    inserts += 1;
                    self.seed(u, &mut frontier);
                    self.seed(v, &mut frontier);
                    if was_mated_pair {
                        self.mate_w[u as usize] = w;
                        self.mate_w[v as usize] = w;
                        if w < old_w {
                            // A matched edge lost rank: neighbors it used
                            // to dominate may now claim its endpoints.
                            for x in [u, v] {
                                wake_roots += 1;
                                wake_edges += self.wake_claimants(x, &mut frontier);
                            }
                        }
                    }
                }
                EdgeUpdate::Delete { .. } => {
                    let was_mated_pair = self.mate[u as usize] == v;
                    if !self.g.delete_edge(u, v) {
                        continue;
                    }
                    deletes += 1;
                    self.seed(u, &mut frontier);
                    self.seed(v, &mut frontier);
                    if was_mated_pair {
                        self.mate[u as usize] = UNMATCHED;
                        self.mate[v as usize] = UNMATCHED;
                        self.mate_w[u as usize] = f64::NEG_INFINITY;
                        self.mate_w[v as usize] = f64::NEG_INFINITY;
                        broken_by_delete += 1;
                        for x in [u, v] {
                            wake_roots += 1;
                            wake_edges += self.wake_claimants(x, &mut frontier);
                        }
                    }
                }
            }
        }

        // Bill the frontier-seeding scan (endpoint bookkeeping plus the
        // neighborhood walks of freed/outweighed vertices) as one small
        // kernel per device.
        if wake_roots > 0 || !batch.is_empty() {
            let mut st = KernelStats {
                vertices: 2 * batch.len() as u64,
                vertices_processed: wake_roots,
                warps_launched: (2 * batch.len() as u64).div_ceil(32).max(1),
                edges_scanned: wake_edges,
                edge_waves: wake_edges.div_ceil(32),
                ..KernelStats::default()
            };
            st.warps_active = st.warps_launched;
            st.max_warp_vertices = st.vertices.min(32);
            st.max_warp_waves = st.edge_waves;
            st.bytes_read = st.vertices * 8 + wake_edges * 16;
            st.bytes_written = frontier.len() as u64 * 4;
            let label = self.rt.label("seed scan", || format!("seed scan b{}", self.batches));
            self.rt.global_kernel(label, &st);
        }

        frontier.sort_unstable();
        frontier.dedup();
        let seed_frontier = frontier.len();
        let (rounds, new_matches, broken_by_steal) = self.stabilize(frontier);

        // Compact the overlay once it outgrows the threshold, billed as a
        // CSR reshard: each device re-uploads its slice of the new base.
        let compacted = if self.g.should_compact() {
            self.g.compact();
            let bytes = self.g.base().csr_bytes() / self.ndev as u64;
            let label = self.rt.label("compact", || format!("compact b{}", self.batches));
            for d in 0..self.ndev {
                self.rt.device(d).h2d_copy(0, bytes.max(1), label.clone());
            }
            self.rt.counter_add(names::DYN_COMPACTIONS, 1);
            true
        } else {
            false
        };

        let report = BatchReport {
            batch: self.batches,
            updates: batch.len(),
            inserts,
            deletes,
            seed_frontier,
            rounds,
            new_matches,
            broken_matches: broken_by_delete + broken_by_steal,
            sim_time: self.horizon() - t0,
            compacted,
        };
        self.batches += 1;
        self.rt.counter_add(names::DYN_BATCHES, 1);
        self.rt.counter_add(names::DYN_UPDATES_APPLIED, (inserts + deletes) as u64);
        self.rt.counter_add(names::DYN_INSERTS, inserts as u64);
        self.rt.counter_add(names::DYN_DELETES, deletes as u64);
        self.rt.observe(names::DYN_SEED_FRONTIER, seed_frontier as f64);
        self.rt.gauge_set(names::DYN_DELTA_ENTRIES, self.g.delta_entries() as f64);
        report
    }

    /// Finalize: close the runtime and package the run in the static
    /// driver's output shape. [`SimRuntime::finish`] recovers the phase
    /// breakdown from the timeline, so it sums exactly to `sim_time`.
    pub fn finish(mut self) -> DynRunOutput {
        self.rt.counter_add(names::DRIVER_ROUNDS, self.rounds);
        let fin = self.rt.finish();
        DynRunOutput {
            matching: Matching::from_mate(self.mate),
            graph: self.g.snapshot(),
            sim_time: fin.sim_time,
            initial_time: self.initial_time,
            maintenance_time: fin.sim_time - self.initial_time,
            rounds: self.rounds,
            batches: self.batches,
            profile: fin.profile,
            metrics: fin.metrics,
            trace: fin.trace.expect("dynamic runtime always keeps its trace"),
        }
    }

    /// Add `v` and its mate to the frontier seed.
    fn seed(&mut self, v: VertexId, frontier: &mut Vec<VertexId>) {
        frontier.push(v);
        if self.mate[v as usize] != UNMATCHED {
            frontier.push(self.mate[v as usize]);
        }
    }

    /// `y`'s matched edge was deleted or lost rank: wake every neighbor
    /// `x` for whom edge `(x, y)` now outranks `x`'s own matched edge —
    /// those vertices may claim `y` (they were previously dominated).
    /// Returns edge slots scanned, for billing.
    fn wake_claimants(&self, y: VertexId, frontier: &mut Vec<VertexId>) -> u64 {
        frontier.push(y);
        for (x, w) in self.g.edges_of(y) {
            if prefer(w, y, self.mate_w[x as usize], self.mate[x as usize]) {
                frontier.push(x);
            }
        }
        self.g.scan_cost(y) as u64
    }

    /// Best claimable incident edge of `u`: preferred over *both*
    /// endpoints' current matched edges (an unmatched endpoint, at
    /// `(-inf, UNMATCHED)`, loses to any live edge). Writes `ptr`/`ptr_w`;
    /// returns whether a pointer was set.
    fn point_one(&mut self, u: VertexId) -> bool {
        let (aw, am) = (self.mate_w[u as usize], self.mate[u as usize]);
        let mut best: Option<(f64, VertexId)> = None;
        for (v, w) in self.g.edges_of(u) {
            if !prefer(w, v, aw, am) {
                continue; // does not beat u's own match
            }
            if !prefer(w, u, self.mate_w[v as usize], self.mate[v as usize]) {
                continue; // does not beat v's match: v would never accept
            }
            if best.is_none_or(|(bw, bv)| prefer(w, v, bw, bv)) {
                best = Some((w, v));
            }
        }
        match best {
            Some((w, v)) => {
                self.ptr[u as usize] = v;
                self.ptr_w[u as usize] = w;
                true
            }
            None => false,
        }
    }

    /// Run frontier-restricted SETPOINTERS/SETMATES rounds until the
    /// frontier drains. Returns `(rounds, new_matches, broken_matches)`.
    fn stabilize(&mut self, mut frontier: Vec<VertexId>) -> (u64, u64, u64) {
        let spec = self.cfg.platform.device.clone();
        let slots = ((spec.sm_count * spec.max_warps_per_sm) as usize).max(1);
        let n = self.mate.len();
        // Generous safety bound; the potential argument (each commit
        // strictly raises the matched-rank multiset) terminates far below.
        let round_cap = 4 * (n as u64 + self.g.num_edges() as u64) + 64;
        let mut rounds = 0u64;
        let mut new_total = 0u64;
        let mut broken_total = 0u64;

        loop {
            frontier.sort_unstable();
            frontier.dedup();
            if frontier.is_empty() {
                break;
            }
            rounds += 1;
            assert!(
                rounds <= round_cap,
                "stabilize failed to converge after {rounds} rounds (frontier {})",
                frontier.len()
            );
            for &u in &frontier {
                self.in_frontier[u as usize] = true;
                self.ptr[u as usize] = UNMATCHED;
            }

            // SETPOINTERS restricted to the frontier, one launch per device
            // over its contiguous slice of the (sorted) frontier.
            let mut point_stats = KernelStats::default();
            let mut pointers_set = 0u64;
            let mut occ_sum = 0.0;
            let mut occ_n = 0u32;
            self.scratch.comm_staging.clear();
            let mut lo = 0usize;
            for d in 0..self.ndev {
                let hi = if d + 1 == self.ndev {
                    frontier.len()
                } else {
                    frontier.partition_point(|&u| self.owner(u) <= d)
                };
                let work = &frontier[lo..hi];
                lo = hi;
                if work.is_empty() {
                    continue;
                }
                let vpw =
                    self.cfg.vertices_per_warp.unwrap_or_else(|| work.len().div_ceil(slots).max(1));
                let mut st = KernelStats { vertices: work.len() as u64, ..KernelStats::default() };
                for chunk in work.chunks(vpw) {
                    let mut warp_edges = 0u64;
                    let mut warp_waves = 0u64;
                    for &u in chunk {
                        if self.point_one(u) {
                            pointers_set += 1;
                        }
                        let scanned = self.g.scan_cost(u) as u64;
                        warp_edges += scanned;
                        warp_waves += scanned.div_ceil(32);
                    }
                    st.warps_launched += 1;
                    st.warps_active += 1;
                    st.edges_scanned += warp_edges;
                    st.edge_waves += warp_waves;
                    st.warp_edges_sumsq += (warp_edges * warp_edges) as f64;
                    st.max_warp_waves = st.max_warp_waves.max(warp_waves);
                    st.max_warp_vertices = st.max_warp_vertices.max(chunk.len() as u64);
                }
                st.vertices_processed = st.vertices;
                // Same byte model as the static SETPOINTERS kernel, plus
                // 4 bytes per vertex to read the frontier worklist.
                st.bytes_read = st.vertices * (8 + 4)
                    + st.vertices_processed * 16
                    + st.edge_waves * 32 * (8 + 8)
                    + st.edges_scanned * 32;
                st.bytes_written = st.vertices_processed * 8;
                let label = self.rt.label("point frontier", || {
                    format!("point frontier r{}", self.rounds + rounds)
                });
                let launch = self.rt.device(d).launch_kernel(None, label, &st);
                occ_sum += launch.occupancy;
                occ_n += 1;
                if self.cfg.overlap {
                    // This device's frontier slice becomes reducible when
                    // its pointing kernel retires.
                    self.scratch
                        .comm_staging
                        .push(CommChunk { bytes: 16 * work.len() as u64, ready: launch.end });
                }
                point_stats.merge(&st);
            }
            self.rt.counter_add(names::KERNEL_POINTERS_SET, pointers_set);
            self.rt.observe(names::DYN_FRONTIER_SIZE, frontier.len() as f64);

            if pointers_set == 0 {
                for &u in &frontier {
                    self.in_frontier[u as usize] = false;
                }
                break;
            }

            // Sparse allreduce of the frontier's pointer entries (16 bytes
            // each: index + value). Overlap mode reduces each device's
            // slice as soon as its kernel retires instead of waiting for
            // the slowest one.
            if self.cfg.overlap {
                self.rt.allreduce_chunked("allreduce ptr", &self.scratch.comm_staging);
            } else {
                self.rt.allreduce_sparse("allreduce ptr", frontier.len() as u64, 16);
            }

            // SETMATES: commit mutual pointers, unjoining outbid mates.
            // `in_frontier` guards against stale pointers of non-frontier
            // vertices (their `ptr` entries are from earlier rounds).
            let mut next = std::mem::take(&mut self.scratch.next);
            next.clear();
            let mut freed = std::mem::take(&mut self.scratch.freed);
            freed.clear();
            let mut new_matches = 0u64;
            for &u in &frontier {
                let v = self.ptr[u as usize];
                if v == UNMATCHED || u >= v || !self.in_frontier[v as usize] {
                    continue;
                }
                if self.ptr[v as usize] != u {
                    continue;
                }
                for x in [u, v] {
                    let old = self.mate[x as usize];
                    if old != UNMATCHED {
                        self.mate[old as usize] = UNMATCHED;
                        self.mate_w[old as usize] = f64::NEG_INFINITY;
                        freed.push(old);
                        broken_total += 1;
                    }
                }
                let w = self.ptr_w[u as usize];
                self.mate[u as usize] = v;
                self.mate[v as usize] = u;
                self.mate_w[u as usize] = w;
                self.mate_w[v as usize] = w;
                new_matches += 1;
            }

            // Wake outbid vertices: they and any neighbor that can now
            // claim them re-enter the frontier.
            let mut ms = KernelStats {
                vertices: frontier.len() as u64,
                vertices_processed: frontier.len() as u64,
                warps_launched: (frontier.len() as u64).div_ceil(32),
                ..KernelStats::default()
            };
            ms.warps_active = ms.warps_launched;
            ms.max_warp_vertices = ms.vertices.min(32);
            for &f in &freed {
                let scanned = self.wake_claimants(f, &mut next);
                ms.edges_scanned += scanned;
                ms.edge_waves += scanned.div_ceil(32);
            }
            ms.bytes_read = ms.vertices * (8 + 32) + ms.edges_scanned * 16;
            ms.bytes_written = new_matches * 16;
            self.rt.global_kernel("setmates", &ms);
            self.rt.counter_add(names::MATCHING_EDGES_COMMITTED, new_matches);
            new_total += new_matches;

            // Unfulfilled claims carry over; their targets must respond.
            for &u in &frontier {
                let v = self.ptr[u as usize];
                if v != UNMATCHED && self.mate[u as usize] != v {
                    next.push(u);
                    if !self.in_frontier[v as usize] {
                        next.push(v);
                    }
                }
            }
            for &u in &frontier {
                self.in_frontier[u as usize] = false;
            }

            // Allreduce the frontier's mate entries. SETMATES writes them
            // all, so overlap mode ships one chunk ready at the compute
            // horizon — the comm stream still lets the next round's
            // independent work run underneath.
            if self.cfg.overlap {
                let ready = self.rt.compute_horizon();
                self.rt.allreduce_chunked(
                    "allreduce mate",
                    &[CommChunk { bytes: 16 * frontier.len() as u64, ready }],
                );
            } else {
                self.rt.allreduce_sparse("allreduce mate", frontier.len() as u64, 16);
            }

            let occ = if occ_n > 0 { occ_sum / occ_n as f64 } else { 0.0 };
            let iter = self.iterations_recorded;
            self.rt.push_iteration(IterationRecord::from_stats(
                iter,
                &point_stats,
                self.g.num_directed_edges() as u64,
                occ,
                new_matches,
            ));
            self.iterations_recorded += 1;

            // Recycle: the drained frontier becomes next round's spare.
            self.scratch.freed = freed;
            std::mem::swap(&mut frontier, &mut next);
            self.scratch.next = next;
        }
        self.rounds += rounds;
        (rounds, new_total, broken_total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldgm_core::ld_seq::ld_seq;
    use ldgm_graph::gen::urand;
    use ldgm_graph::GraphBuilder;

    fn assert_canonical(engine: &IncrementalLd) {
        let snap = engine.graph().snapshot();
        let want = ld_seq(&snap);
        assert_eq!(
            engine.mate_array(),
            want.mate_array(),
            "maintained matching diverges from static LD on the snapshot"
        );
        engine.verify_current().unwrap();
    }

    fn dgx1() -> DynConfig {
        DynConfig::new(Platform::dgx_a100())
    }

    #[test]
    fn initial_build_equals_static_ld() {
        let g = urand(300, 1500, 1);
        let engine = IncrementalLd::new(g.clone(), dgx1());
        assert_eq!(engine.mate_array(), ld_seq(&g).mate_array());
        assert!(engine.horizon() > 0.0, "initial build must cost simulated time");
    }

    #[test]
    fn builder_nodes_clusters_the_platform() {
        let cfg = DynConfig::builder(Platform::dgx_a100()).devices(16).nodes(2).build().unwrap();
        let topo = cfg.platform.cluster_topology().expect("clustered platform");
        assert_eq!((topo.nodes, topo.gpus_per_node), (2, 8));
        assert_eq!(cfg.platform.max_devices, 16);
        // nodes(1) on a flat platform is the identity.
        let flat = DynConfig::builder(Platform::dgx_a100()).nodes(1).build().unwrap();
        assert!(flat.platform.cluster_topology().is_none());
    }

    #[test]
    fn delete_cascades_down_a_path() {
        // Path 0-1 (3), 1-2 (2), 2-3 (1): LD matches {0,1} and {2,3}.
        // Deleting 0-1 must *break* {2,3} and rematch {1,2} — the frontier
        // has to chase dominance down the path.
        let g = GraphBuilder::new(4)
            .add_edge(0, 1, 3.0)
            .add_edge(1, 2, 2.0)
            .add_edge(2, 3, 1.0)
            .build();
        let mut engine = IncrementalLd::new(g, dgx1());
        assert_eq!(engine.mate_array(), &[1, 0, 3, 2]);
        let rep = engine.apply_batch(&[EdgeUpdate::Delete { u: 0, v: 1 }]);
        assert_eq!(engine.mate_array(), &[UNMATCHED, 2, 1, UNMATCHED]);
        assert!(rep.broken_matches >= 2, "both old pairs must break");
        assert_canonical(&engine);
    }

    #[test]
    fn heavy_insert_steals_both_endpoints() {
        // {0,1} at 5 and {2,3} at 4; inserting 1-2 at 9 must dissolve both.
        let g = GraphBuilder::new(4).add_edge(0, 1, 5.0).add_edge(2, 3, 4.0).build();
        let mut engine = IncrementalLd::new(g, dgx1());
        engine.apply_batch(&[EdgeUpdate::Insert { u: 1, v: 2, w: 9.0 }]);
        assert_eq!(engine.mate_array(), &[UNMATCHED, 2, 1, UNMATCHED]);
        assert_canonical(&engine);
    }

    #[test]
    fn reweight_down_reactivates_neighbors() {
        // 0-1 (10) dominates 1-2 (5); reweighting 0-1 to 1 flips dominance.
        let g = GraphBuilder::new(3).add_edge(0, 1, 10.0).add_edge(1, 2, 5.0).build();
        let mut engine = IncrementalLd::new(g, dgx1());
        assert_eq!(engine.mate_array(), &[1, 0, UNMATCHED]);
        engine.apply_batch(&[EdgeUpdate::Insert { u: 0, v: 1, w: 1.0 }]);
        assert_eq!(engine.mate_array(), &[UNMATCHED, 2, 1]);
        assert_canonical(&engine);
    }

    #[test]
    fn noop_updates_keep_matching_and_cost_little() {
        let g = urand(100, 400, 2);
        let mut engine = IncrementalLd::new(g, dgx1());
        let before = engine.matching();
        // Delete a non-existent edge: nothing should change.
        let rep = engine.apply_batch(&[EdgeUpdate::Delete { u: 0, v: 99 }]);
        assert_eq!(rep.deletes, 0);
        assert_eq!(engine.matching(), before);
        assert_canonical(&engine);
    }

    #[test]
    fn random_batches_stay_canonical() {
        let g = urand(120, 500, 3);
        let mut engine = IncrementalLd::new(g, dgx1().devices(2));
        let mut rng = ldgm_graph::Xoshiro256::seed_from_u64(99);
        for _ in 0..12 {
            let mut batch = Vec::new();
            for _ in 0..15 {
                let u = rng.below(120) as u32;
                let v = rng.below(120) as u32;
                if u == v {
                    continue;
                }
                if rng.chance(0.45) {
                    batch.push(EdgeUpdate::Delete { u, v });
                } else {
                    batch.push(EdgeUpdate::Insert { u, v, w: 0.1 + rng.next_f64() });
                }
            }
            engine.apply_batch(&batch);
            assert_canonical(&engine);
        }
    }

    #[test]
    fn overlap_billing_never_changes_maintenance() {
        // The overlap toggle reroutes collective billing only: the same
        // update stream must leave bit-identical mate arrays after every
        // batch, for any device count.
        let g = urand(150, 700, 8);
        for ndev in [1, 4] {
            let mut plain = IncrementalLd::new(g.clone(), dgx1().devices(ndev));
            let mut ovl = IncrementalLd::new(g.clone(), dgx1().devices(ndev).with_overlap(true));
            let mut rng = ldgm_graph::Xoshiro256::seed_from_u64(77);
            for _ in 0..8 {
                let mut batch = Vec::new();
                for _ in 0..12 {
                    let u = rng.below(150) as u32;
                    let v = rng.below(150) as u32;
                    if u == v {
                        continue;
                    }
                    if rng.chance(0.4) {
                        batch.push(EdgeUpdate::Delete { u, v });
                    } else {
                        batch.push(EdgeUpdate::Insert { u, v, w: 0.1 + rng.next_f64() });
                    }
                }
                plain.apply_batch(&batch);
                ovl.apply_batch(&batch);
                assert_eq!(plain.mate_array(), ovl.mate_array(), "{ndev} devices");
            }
            let out = ovl.finish();
            assert!(out.metrics.gauge("comm.exposed_time").is_some());
            assert!(out.metrics.gauge("comm.hidden_time").is_some());
            assert!((out.profile.phases.total() - out.sim_time).abs() <= 1e-9);
        }
    }

    #[test]
    fn deleting_matched_edges_empties_the_matching() {
        let g = urand(60, 200, 4);
        let mut engine = IncrementalLd::new(g, dgx1());
        // Repeatedly delete every matched edge until nothing remains.
        for _ in 0..200 {
            let edges: Vec<(u32, u32)> = engine.matching().edges().collect();
            if edges.is_empty() {
                break;
            }
            let batch: Vec<EdgeUpdate> =
                edges.iter().map(|&(u, v)| EdgeUpdate::Delete { u, v }).collect();
            engine.apply_batch(&batch);
            assert_canonical(&engine);
        }
        // Graph may still have edges, but after enough deletions the
        // matching must remain maximal on what is left.
        assert_canonical(&engine);
    }

    #[test]
    fn compaction_triggers_and_preserves_canonicity() {
        let g = urand(80, 200, 5);
        let mut engine = IncrementalLd::new(g, dgx1().compact_frac(0.05));
        let mut rng = ldgm_graph::Xoshiro256::seed_from_u64(17);
        let mut compacted = false;
        for _ in 0..20 {
            let mut batch = Vec::new();
            for _ in 0..10 {
                let u = rng.below(80) as u32;
                let v = rng.below(80) as u32;
                if u != v {
                    batch.push(EdgeUpdate::Insert { u, v, w: 0.1 + rng.next_f64() });
                }
            }
            compacted |= engine.apply_batch(&batch).compacted;
            assert_canonical(&engine);
        }
        assert!(compacted, "overlay never compacted at a 5% threshold");
        assert!(engine.graph().compactions() >= 1);
    }

    #[test]
    fn finish_packages_consistent_output() {
        let g = urand(150, 600, 6);
        let mut engine = IncrementalLd::new(g, dgx1().devices(4));
        engine.apply_batch(&[
            EdgeUpdate::Insert { u: 0, v: 1, w: 2.0 },
            EdgeUpdate::Insert { u: 2, v: 3, w: 1.5 },
        ]);
        let out = engine.finish();
        assert!(out.sim_time > 0.0);
        assert!((out.initial_time + out.maintenance_time - out.sim_time).abs() < 1e-9);
        assert!((out.profile.phases.total() - out.sim_time).abs() < 1e-6 * out.sim_time.max(1.0));
        assert_eq!(out.batches, 1);
        assert!(out.rounds > 0);
        assert!(out.metrics.counter("kernel.edges_scanned") > 0);
        assert!(out.metrics.counter("comm.allreduce_calls") > 0);
        assert!(!out.trace.events.is_empty());
        out.matching.verify(&out.graph).unwrap();
    }

    #[test]
    fn small_batch_cheaper_than_rebuild() {
        let g = urand(2000, 12000, 7);
        let mut engine = IncrementalLd::new(g.clone(), dgx1());
        let initial = engine.horizon();
        let rep = engine.apply_batch(&[EdgeUpdate::Insert { u: 0, v: 1000, w: 0.5 }]);
        assert!(
            rep.sim_time < initial / 4.0,
            "single-edge maintenance ({}) should be far cheaper than a build ({initial})",
            rep.sim_time
        );
    }
}

//! Deterministic synthetic update workloads.
//!
//! An [`UpdateStream`] mirrors the live edge set of the graph it drives so
//! deletions always target existing edges and inserts can be recognized as
//! reweights. All randomness flows from one seeded [`Xoshiro256`], so the
//! same seed reproduces the same batch sequence bit-for-bit — the anchor
//! for the determinism tests and for comparing engines on identical
//! workloads.

use std::collections::{HashMap, VecDeque};

use ldgm_graph::csr::{CsrGraph, VertexId};
use ldgm_graph::Xoshiro256;

use crate::delta::EdgeUpdate;

/// Shape of the synthetic update workload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkloadKind {
    /// Endpoints uniform over the vertex set; inserts vs deletes by coin
    /// flip (`insert_frac`).
    Uniform,
    /// Endpoints biased toward low vertex ids (quadratic transform), the
    /// usual stand-in for power-law update locality on rmat-style graphs.
    Skewed,
    /// Every step inserts a fresh edge and evicts the oldest once the live
    /// window is full — the streaming sliding-window model.
    SlidingWindow,
}

impl WorkloadKind {
    /// Parse a CLI name.
    pub fn from_name(name: &str) -> Option<WorkloadKind> {
        match name {
            "uniform" => Some(WorkloadKind::Uniform),
            "skewed" => Some(WorkloadKind::Skewed),
            "sliding" | "sliding-window" => Some(WorkloadKind::SlidingWindow),
            _ => None,
        }
    }

    /// Registry name.
    pub fn name(&self) -> &'static str {
        match self {
            WorkloadKind::Uniform => "uniform",
            WorkloadKind::Skewed => "skewed",
            WorkloadKind::SlidingWindow => "sliding-window",
        }
    }

    /// All parseable names (for error messages).
    pub fn names() -> &'static [&'static str] {
        &["uniform", "skewed", "sliding-window"]
    }
}

/// Deterministic generator of update batches against a live edge mirror.
#[derive(Clone, Debug)]
pub struct UpdateStream {
    kind: WorkloadKind,
    rng: Xoshiro256,
    n: u32,
    insert_frac: f64,
    window: usize,
    /// Live edges as `(min, max)` pairs, with an index for O(1) membership
    /// and swap-remove deletion.
    edges: Vec<(VertexId, VertexId)>,
    index: HashMap<(VertexId, VertexId), usize>,
    /// Insertion order for sliding-window eviction.
    order: VecDeque<(VertexId, VertexId)>,
}

impl UpdateStream {
    /// Build a stream over `g`'s vertex set, seeded for reproducibility.
    /// The mirror starts at `g`'s current edge set. For
    /// [`WorkloadKind::SlidingWindow`] the window defaults to the initial
    /// edge count (override with [`Self::with_window`]).
    pub fn new(g: &CsrGraph, kind: WorkloadKind, seed: u64) -> Self {
        assert!(g.num_vertices() >= 2, "update stream needs at least two vertices");
        let edges: Vec<(VertexId, VertexId)> = g.iter_edges().map(|(u, v, _)| (u, v)).collect();
        let index = edges.iter().enumerate().map(|(i, &e)| (e, i)).collect();
        let order = edges.iter().copied().collect();
        UpdateStream {
            kind,
            rng: Xoshiro256::seed_from_u64(seed),
            n: g.num_vertices() as u32,
            insert_frac: 0.5,
            window: edges.len().max(1),
            edges,
            index,
            order,
        }
    }

    /// Set the insert probability for uniform/skewed workloads.
    pub fn with_insert_frac(mut self, frac: f64) -> Self {
        assert!((0.0..=1.0).contains(&frac), "insert fraction must be in [0, 1]");
        self.insert_frac = frac;
        self
    }

    /// Set the live-edge cap for sliding-window workloads.
    pub fn with_window(mut self, window: usize) -> Self {
        assert!(window >= 1, "window must be at least 1");
        self.window = window;
        self
    }

    /// Number of live edges in the mirror.
    pub fn live_edges(&self) -> usize {
        self.edges.len()
    }

    /// The workload shape this stream generates.
    pub fn kind(&self) -> WorkloadKind {
        self.kind
    }

    /// Generate the next batch of `size` update steps. Sliding-window steps
    /// may emit more than one update (insert plus evictions).
    pub fn next_batch(&mut self, size: usize) -> Vec<EdgeUpdate> {
        let mut out = Vec::with_capacity(size);
        for _ in 0..size {
            match self.kind {
                WorkloadKind::Uniform | WorkloadKind::Skewed => {
                    if self.edges.is_empty() || self.rng.chance(self.insert_frac) {
                        let (u, v) = self.sample_pair();
                        let w = self.sample_weight();
                        self.note_insert(u, v);
                        out.push(EdgeUpdate::Insert { u, v, w });
                    } else {
                        let k = self.rng.below(self.edges.len() as u64) as usize;
                        let (u, v) = self.edges[k];
                        self.note_delete(u, v);
                        out.push(EdgeUpdate::Delete { u, v });
                    }
                }
                WorkloadKind::SlidingWindow => {
                    let (u, v) = self.sample_pair();
                    let w = self.sample_weight();
                    if self.note_insert(u, v) {
                        self.order.push_back((u, v));
                    }
                    out.push(EdgeUpdate::Insert { u, v, w });
                    while self.edges.len() > self.window {
                        // Entries may be stale (already deleted); skip those.
                        let Some((a, b)) = self.order.pop_front() else { break };
                        if self.index.contains_key(&(a, b)) {
                            self.note_delete(a, b);
                            out.push(EdgeUpdate::Delete { u: a, v: b });
                        }
                    }
                }
            }
        }
        out
    }

    fn sample_vertex(&mut self) -> VertexId {
        match self.kind {
            WorkloadKind::Skewed => {
                let r = self.rng.next_f64();
                (((r * r) * self.n as f64) as u32).min(self.n - 1)
            }
            _ => self.rng.below(self.n as u64) as VertexId,
        }
    }

    fn sample_pair(&mut self) -> (VertexId, VertexId) {
        loop {
            let u = self.sample_vertex();
            let v = self.sample_vertex();
            if u != v {
                return (u.min(v), u.max(v));
            }
        }
    }

    fn sample_weight(&mut self) -> f64 {
        0.05 + 0.95 * self.rng.next_f64()
    }

    /// Track an insert; returns `true` when the edge is new to the mirror.
    fn note_insert(&mut self, u: VertexId, v: VertexId) -> bool {
        if self.index.contains_key(&(u, v)) {
            return false; // reweight: edge stays where it is
        }
        self.index.insert((u, v), self.edges.len());
        self.edges.push((u, v));
        true
    }

    fn note_delete(&mut self, u: VertexId, v: VertexId) {
        if let Some(pos) = self.index.remove(&(u, v)) {
            self.edges.swap_remove(pos);
            if pos < self.edges.len() {
                self.index.insert(self.edges[pos], pos);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldgm_graph::gen::urand;
    use std::collections::HashSet;

    #[test]
    fn same_seed_same_stream() {
        let g = urand(60, 200, 1);
        let mut a = UpdateStream::new(&g, WorkloadKind::Uniform, 7);
        let mut b = UpdateStream::new(&g, WorkloadKind::Uniform, 7);
        for _ in 0..5 {
            assert_eq!(a.next_batch(20), b.next_batch(20));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let g = urand(60, 200, 1);
        let mut a = UpdateStream::new(&g, WorkloadKind::Uniform, 1);
        let mut b = UpdateStream::new(&g, WorkloadKind::Uniform, 2);
        assert_ne!(a.next_batch(50), b.next_batch(50));
    }

    #[test]
    fn deletes_target_live_edges() {
        let g = urand(50, 300, 2);
        let mut live: HashSet<(u32, u32)> = g.iter_edges().map(|(u, v, _)| (u, v)).collect();
        let mut s = UpdateStream::new(&g, WorkloadKind::Uniform, 3).with_insert_frac(0.3);
        for upd in s.next_batch(400) {
            match upd {
                EdgeUpdate::Insert { u, v, .. } => {
                    live.insert((u, v));
                }
                EdgeUpdate::Delete { u, v } => {
                    assert!(live.remove(&(u, v)), "delete of non-live edge ({u},{v})");
                }
            }
        }
        assert_eq!(live.len(), s.live_edges());
    }

    #[test]
    fn sliding_window_bounds_live_edges() {
        let g = urand(40, 100, 4);
        let mut s = UpdateStream::new(&g, WorkloadKind::SlidingWindow, 5).with_window(60);
        for _ in 0..10 {
            s.next_batch(30);
            assert!(s.live_edges() <= 60, "window exceeded: {}", s.live_edges());
        }
        // The window should actually fill up.
        assert!(s.live_edges() >= 55, "window underfull: {}", s.live_edges());
    }

    #[test]
    fn skewed_biases_low_ids() {
        let g = urand(1000, 2000, 6);
        let mut s = UpdateStream::new(&g, WorkloadKind::Skewed, 8).with_insert_frac(1.0);
        let mut below_quarter = 0;
        let mut total = 0;
        for upd in s.next_batch(500) {
            let (u, v) = upd.endpoints();
            for x in [u, v] {
                total += 1;
                if x < 250 {
                    below_quarter += 1;
                }
            }
        }
        // Quadratic transform puts half the mass below n/4.
        assert!(below_quarter * 10 > total * 4, "{below_quarter}/{total} below n/4");
    }

    #[test]
    fn kind_names_round_trip() {
        for name in WorkloadKind::names() {
            let k = WorkloadKind::from_name(name).unwrap();
            assert_eq!(k.name(), *name);
        }
        assert_eq!(WorkloadKind::from_name("sliding"), Some(WorkloadKind::SlidingWindow));
        assert_eq!(WorkloadKind::from_name("nope"), None);
    }
}

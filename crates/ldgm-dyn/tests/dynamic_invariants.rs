//! Property-based invariants of batch-dynamic maintenance: after *every*
//! random update batch the maintained matching must pass the full static
//! check suite on the current snapshot and coincide with the static LD
//! solver (bit-identical mate array, hence equal weight — canonical
//! uniqueness under the repo's total preference order), including across
//! delta-CSR compactions; and the whole pipeline must be a pure function
//! of the workload seed.

use proptest::prelude::*;

use ldgm_core::ld_seq::ld_seq;
use ldgm_core::verify::half_approx_certificate;
use ldgm_core::MatcherSetup;
use ldgm_dyn::{
    DynConfig, DynamicMatcherRegistry, EdgeUpdate, IncrementalLd, UpdateStream, WorkloadKind,
    WorkloadSpec,
};
use ldgm_gpusim::Platform;
use ldgm_graph::{CsrGraph, GraphBuilder};

/// Strategy: an arbitrary undirected weighted graph (duplicates and
/// self-loops dropped by the builder).
fn arb_graph(max_n: usize, max_m: usize) -> impl Strategy<Value = CsrGraph> {
    (2..max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n as u32, 0..n as u32, 1u32..=1000), 0..max_m).prop_map(
            move |edges| {
                let mut b = GraphBuilder::new(n);
                for (u, v, w) in edges {
                    b.push_edge(u, v, w as f64 / 1000.0);
                }
                b.build()
            },
        )
    })
}

/// Strategy: raw update ops. `(a, b, w, sel)` decodes to a delete of the
/// `a`-th live edge when `sel == 0` (so deletes hit real, possibly
/// matched, edges) and otherwise an insert/reweight of `{a%n, b%n}`.
fn arb_ops(max_ops: usize) -> impl Strategy<Value = Vec<(u32, u32, u32, u8)>> {
    proptest::collection::vec((0u32..u32::MAX, 0u32..u32::MAX, 1u32..=1000, 0u8..4), 1..max_ops)
}

/// Decode raw ops against the engine's *current* graph so deletions target
/// live edges by index.
fn decode(engine: &IncrementalLd, ops: &[(u32, u32, u32, u8)], n: u32) -> Vec<EdgeUpdate> {
    let mut live: Vec<(u32, u32)> = engine.graph().iter_edges().map(|(u, v, _)| (u, v)).collect();
    let mut batch = Vec::with_capacity(ops.len());
    for &(a, b, w, sel) in ops {
        if sel == 0 && !live.is_empty() {
            let idx = a as usize % live.len();
            let (u, v) = live.swap_remove(idx);
            batch.push(EdgeUpdate::Delete { u, v });
        } else {
            let (u, v) = (a % n, b % n);
            if u != v {
                batch.push(EdgeUpdate::Insert { u, v, w: w as f64 / 1000.0 });
            }
        }
    }
    batch
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn maintained_matching_equals_static_ld_after_every_batch(
        g in arb_graph(40, 120),
        script in proptest::collection::vec(arb_ops(12), 1..6),
    ) {
        let n = g.num_vertices() as u32;
        // Aggressive compaction so the property also crosses compactions.
        let cfg = DynConfig::builder(Platform::dgx_a100())
            .devices(2)
            .compact_frac(0.1)
            .build()
            .unwrap();
        let mut engine = IncrementalLd::new(g, cfg);
        for ops in &script {
            let batch = decode(&engine, ops, n);
            engine.apply_batch(&batch);
            let snap = engine.graph().snapshot();
            let m = engine.matching();
            prop_assert_eq!(m.verify(&snap), Ok(()));
            prop_assert!(m.is_maximal(&snap));
            prop_assert!(half_approx_certificate(&snap, &m));
            let want = ld_seq(&snap);
            prop_assert_eq!(engine.mate_array(), want.mate_array());
            prop_assert!((m.weight(&snap) - want.weight(&snap)).abs() < 1e-9);
        }
    }

    #[test]
    fn same_seed_same_stream_same_matching(
        g in arb_graph(40, 150),
        seed in 0u64..u64::MAX,
        kind_sel in 0u8..3,
    ) {
        let kind = match kind_sel {
            0 => WorkloadKind::Uniform,
            1 => WorkloadKind::Skewed,
            _ => WorkloadKind::SlidingWindow,
        };
        // The stream itself is deterministic...
        let mut s1 = UpdateStream::new(&g, kind, seed);
        let mut s2 = UpdateStream::new(&g, kind, seed);
        for _ in 0..3 {
            prop_assert_eq!(s1.next_batch(10), s2.next_batch(10));
        }
        // ...and so is the full engine run driven by it.
        let spec = WorkloadSpec { kind, batches: 3, batch_size: 10, seed, ..WorkloadSpec::default() };
        let registry = DynamicMatcherRegistry::with_defaults(&MatcherSetup::default());
        let inc = registry.get("incremental").unwrap();
        let a = inc.run(&g, &spec).unwrap();
        let b = inc.run(&g, &spec).unwrap();
        prop_assert_eq!(a.matching, b.matching);
        prop_assert_eq!(a.sim_time, b.sim_time);
        prop_assert_eq!(a.graph.offsets(), b.graph.offsets());
        prop_assert_eq!(a.graph.weight_array(), b.graph.weight_array());
    }

    #[test]
    fn incremental_and_from_scratch_agree_on_random_workloads(
        g in arb_graph(30, 100),
        seed in 0u64..u64::MAX,
    ) {
        let spec = WorkloadSpec {
            batches: 3,
            batch_size: 8,
            seed,
            verify_each_batch: true,
            ..WorkloadSpec::default()
        };
        let registry = DynamicMatcherRegistry::with_defaults(&MatcherSetup::default());
        let inc = registry.get("incremental").unwrap().run(&g, &spec).unwrap();
        let scr = registry.get("from-scratch").unwrap().run(&g, &spec).unwrap();
        prop_assert_eq!(inc.matching, scr.matching);
        prop_assert!((inc.matching.weight(&inc.graph) - scr.matching.weight(&scr.graph)).abs() < 1e-9);
    }
}

//! # ldgm-part — graph distribution for multi-device matching
//!
//! Implements the paper's §III-A/B data distribution: contiguous,
//! edge-balanced vertex [`partition::Partition`]s across devices, the
//! [`batch`] scheme that sub-divides a partition into working sets sized
//! to the device-memory model in [`memory`], the [`stream`] window
//! planner that sizes an out-of-core substream pipeline when even the
//! batched footprint overflows the budget, and the cluster-level
//! [`placement`] policy that groups parts onto nodes so heavy cut edges
//! stay on the fast intra-node link.

pub mod batch;
pub mod memory;
pub mod partition;
pub mod placement;
pub mod stream;

pub use batch::{make_batches, min_batches_to_fit, validate_batches};
pub use memory::{
    batch_buffer_bytes, device_footprint_bytes, fits, global_state_bytes, DeviceMemory,
};
pub use partition::{Partition, VertexRange};
pub use placement::{cut_stats, CutStats, NodePlacement};
pub use stream::{plan_substreams, StreamPlanError, SubstreamPlan};

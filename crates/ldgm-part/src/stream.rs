//! Substream window planning for the out-of-core streaming engine.
//!
//! When a device partition's batched footprint exceeds the per-device
//! budget — or the caller forces it — the driver streams the partition
//! through fixed-width rank bands over the preference-sorted adjacency
//! ([`ldgm_graph::stream::BandLayout`]). The planner here sizes that
//! pipeline: it reserves the |V|-sized global state on a
//! [`memory::DeviceMemory`] ledger, splits the remainder into `window`
//! equal band slots (`window >= 2`, the double-buffer minimum), and picks
//! the widest band that fits a slot — wider bands mean fewer
//! copy/kernel rounds per iteration, so the plan maximizes width the
//! same way the batch planner minimizes batch count. Band 0 is the
//! largest band by construction, so "band 0 fits a slot" is the binding
//! constraint.

use crate::memory::{self, DeviceMemory};
use crate::partition::VertexRange;
use ldgm_graph::csr::CsrGraph;
use ldgm_graph::stream::BandLayout;

/// A sized substream pipeline for one device partition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SubstreamPlan {
    /// The partition being streamed.
    pub part: VertexRange,
    /// Rank-band geometry (width + band count) over the partition.
    pub layout: BandLayout,
    /// Resident band slots (>= 2); bands cycle through them while the
    /// copy stream prefetches ahead of the kernels.
    pub window: usize,
    /// Bytes of one band slot — the band-0 footprint, the largest band.
    pub slot_bytes: u64,
    /// High-water device residency: global state plus the full window.
    pub resident_bytes: u64,
}

/// Why a partition cannot be streamed under a budget.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StreamPlanError {
    /// Minimum bytes streaming would need: globals plus `window`
    /// width-1 band slots.
    pub required: u64,
    /// The budget that was available.
    pub mem_bytes: u64,
}

impl std::fmt::Display for StreamPlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "streaming needs at least {} B resident, budget is {} B",
            self.required, self.mem_bytes
        )
    }
}

impl std::error::Error for StreamPlanError {}

/// Size a substream pipeline for `part` of `g` under `mem_bytes` of
/// device memory, keeping `window` bands resident.
///
/// Fails when even the narrowest pipeline — global state plus `window`
/// single-rank bands — overflows the budget; otherwise the band width is
/// the largest value whose band-0 footprint fits one of the `window`
/// equal slots carved from the post-globals remainder (binary search:
/// the footprint is monotone in the width).
pub fn plan_substreams(
    g: &CsrGraph,
    part: &VertexRange,
    n_global_vertices: usize,
    mem_bytes: u64,
    window: usize,
) -> Result<SubstreamPlan, StreamPlanError> {
    assert!(window >= 2, "streaming needs >= 2 resident bands (double buffering)");
    let narrowest = BandLayout::new(g, part.start, part.end, 1);
    let min_slot = narrowest.band_bytes(g, 0);
    let required = memory::global_state_bytes(n_global_vertices) + window as u64 * min_slot;

    let mut mem = DeviceMemory::new(mem_bytes);
    if !mem.reserve(memory::global_state_bytes(n_global_vertices)) {
        return Err(StreamPlanError { required, mem_bytes });
    }
    let slot_budget = mem.remaining() / window as u64;
    if min_slot > slot_budget {
        return Err(StreamPlanError { required, mem_bytes });
    }

    // Widest width whose band-0 footprint fits the slot. Degenerate
    // partitions (no vertices or no edges) stream nothing; keep width 1.
    let max_deg = (part.start..part.end).map(|v| g.degree(v)).max().unwrap_or(0);
    let band0 = |w: usize| BandLayout::new(g, part.start, part.end, w).band_bytes(g, 0);
    let (mut lo, mut hi) = (1usize, max_deg.max(1));
    while lo < hi {
        let mid = lo + (hi - lo).div_ceil(2);
        if band0(mid) <= slot_budget {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    let layout = BandLayout::new(g, part.start, part.end, lo);
    let slot_bytes = layout.band_bytes(g, 0);
    for _ in 0..window {
        assert!(mem.reserve(slot_bytes), "slot sizing must fit the ledger");
    }
    Ok(SubstreamPlan {
        part: *part,
        layout,
        window,
        slot_bytes,
        resident_bytes: memory::global_state_bytes(n_global_vertices) + window as u64 * slot_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::Partition;
    use ldgm_graph::gen::{urand, web};

    #[test]
    fn wide_budget_takes_one_band() {
        let g = urand(1000, 8000, 1);
        let p = Partition::edge_balanced(&g, 1);
        let plan = plan_substreams(&g, &p.parts[0], 1000, u64::MAX, 2).unwrap();
        assert_eq!(plan.layout.num_bands(), 1);
        assert!(plan.layout.width() >= g.max_degree());
        assert_eq!(plan.resident_bytes, memory::global_state_bytes(1000) + 2 * plan.slot_bytes);
    }

    #[test]
    fn tight_budget_narrows_bands() {
        let g = web(2000, 8, 0.5, 4);
        let p = Partition::edge_balanced(&g, 1);
        let whole = plan_substreams(&g, &p.parts[0], 2000, u64::MAX, 2).unwrap();
        // A quarter of the whole-window residency forces narrower bands
        // and therefore more of them.
        let budget = whole.resident_bytes / 4;
        let tight = plan_substreams(&g, &p.parts[0], 2000, budget, 2).unwrap();
        assert!(tight.layout.width() < whole.layout.width());
        assert!(tight.layout.num_bands() > 1);
        assert!(tight.resident_bytes <= budget);
        // The planner maximizes width: one rank wider must overflow.
        let wider = BandLayout::new(&g, tight.part.start, tight.part.end, tight.layout.width() + 1);
        let slot_budget = (budget - memory::global_state_bytes(2000)) / 2;
        assert!(wider.band_bytes(&g, 0) > slot_budget);
    }

    #[test]
    fn exact_fit_boundary() {
        let g = urand(500, 3000, 2);
        let p = Partition::edge_balanced(&g, 1);
        let narrowest = BandLayout::new(&g, p.parts[0].start, p.parts[0].end, 1);
        let need = memory::global_state_bytes(500) + 3 * narrowest.band_bytes(&g, 0);
        let plan = plan_substreams(&g, &p.parts[0], 500, need, 3).unwrap();
        assert_eq!(plan.layout.width(), 1);
        let err = plan_substreams(&g, &p.parts[0], 500, need - 1, 3).unwrap_err();
        assert_eq!(err, StreamPlanError { required: need, mem_bytes: need - 1 });
        assert!(err.to_string().contains("budget"));
    }

    #[test]
    fn refuses_when_globals_overflow() {
        let g = urand(500, 3000, 3);
        let p = Partition::edge_balanced(&g, 1);
        let err = plan_substreams(&g, &p.parts[0], 500, 100, 2).unwrap_err();
        assert!(err.required > 100);
    }

    #[test]
    fn zero_edge_partition_plans_trivially() {
        let g = ldgm_graph::CsrGraph::empty(64);
        let p = Partition::edge_balanced(&g, 2);
        let plan =
            plan_substreams(&g, &p.parts[1], 64, memory::global_state_bytes(64) + 1024, 2).unwrap();
        assert_eq!(plan.layout.num_bands(), 0);
        assert_eq!(plan.layout.width(), 1);
    }
}

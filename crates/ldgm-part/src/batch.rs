//! Batch formation within a device partition (paper §III-B).
//!
//! Batches are contiguous vertex sub-ranges of a device's partition,
//! formed by the same edge-based scheme as the device partition itself —
//! binary search on the CSR prefix sums — so every batch holds a similar
//! number of edges. The driver processes batches through two alternating
//! stream buffers; the paper minimizes #batches to bound transfer
//! overheads, and [`min_batches_to_fit`] computes that minimum under the
//! device-memory model.

use crate::memory;
use crate::partition::VertexRange;
use ldgm_graph::csr::{CsrGraph, VertexId};

/// Split the partition `part` of `g` into `n_batches` contiguous,
/// edge-balanced batches. Trailing batches may be empty when the partition
/// has fewer vertices than batches.
pub fn make_batches(g: &CsrGraph, part: &VertexRange, n_batches: usize) -> Vec<VertexRange> {
    assert!(n_batches >= 1, "need at least one batch");
    let offsets = g.offsets();
    let total = part.edge_end - part.edge_start;
    let mut batches = Vec::with_capacity(n_batches);
    let mut start = part.start;
    for b in 0..n_batches {
        let target = part.edge_start + total * (b as u64 + 1) / n_batches as u64;
        let end = if b + 1 == n_batches {
            part.end
        } else {
            split_in_range(offsets, part, target).clamp(start, part.end)
        };
        batches.push(VertexRange {
            start,
            end,
            edge_start: offsets[start as usize],
            edge_end: offsets[end as usize],
        });
        start = end;
    }
    batches
}

/// Smallest batch count (≥ `min_batches`) whose double-buffered footprint
/// plus global state fits into `mem_bytes`; `None` if even one-vertex
/// batches cannot fit (global arrays alone exceed memory, or a single
/// vertex's adjacency overflows a buffer).
pub fn min_batches_to_fit(
    g: &CsrGraph,
    part: &VertexRange,
    n_global_vertices: usize,
    mem_bytes: u64,
    min_batches: usize,
) -> Option<usize> {
    let nv = part.num_vertices();
    if nv == 0 {
        return Some(min_batches.max(1));
    }
    // Quick infeasibility checks.
    if memory::global_state_bytes(n_global_vertices) > mem_bytes {
        return None;
    }
    let max_vertex_bytes = (part.start..part.end)
        .map(|v| {
            let single = VertexRange {
                start: v,
                end: v + 1,
                edge_start: g.offsets()[v as usize],
                edge_end: g.offsets()[v as usize + 1],
            };
            memory::batch_buffer_bytes(&single)
        })
        .max()
        .unwrap();
    if 2 * max_vertex_bytes + memory::global_state_bytes(n_global_vertices) > mem_bytes {
        return None;
    }
    // The footprint is (near-)monotone non-increasing in batch count, so
    // scan upward geometrically. Note this is conservative: contiguous
    // edge-balanced splitting can, under extreme skew plus zero-degree
    // vertices, co-locate two medium-degree vertices even at k = nv, so a
    // feasible instance may still be reported infeasible — LD-GPU then
    // fails loudly (OutOfMemory) rather than silently overcommitting.
    let mut k = min_batches.max(1);
    loop {
        let batches = make_batches(g, part, k);
        if memory::fits(&batches, n_global_vertices, mem_bytes) {
            return Some(k);
        }
        if k >= nv {
            // One vertex per batch and still failing means a single hub
            // vertex overflows — caught above, but guard regardless.
            return None;
        }
        k = (k * 2).min(nv);
    }
}

/// As [`split_in_range`], restricted to `[part.start, part.end]`.
fn split_in_range(offsets: &[u64], part: &VertexRange, target: u64) -> VertexId {
    let lo = part.start as usize;
    let hi = part.end as usize;
    let window = &offsets[lo..=hi];
    let idx = window.partition_point(|&o| o < target).min(hi - lo);
    let abs = lo + idx;
    if abs == lo {
        return part.start;
    }
    if target - offsets[abs - 1] <= offsets[abs] - target {
        (abs - 1) as VertexId
    } else {
        abs as VertexId
    }
}

/// Validate that `batches` tile `part` contiguously with edge bounds
/// matching the CSR offsets.
pub fn validate_batches(
    g: &CsrGraph,
    part: &VertexRange,
    batches: &[VertexRange],
) -> Result<(), String> {
    let mut expect = part.start;
    for (i, b) in batches.iter().enumerate() {
        if b.start != expect {
            return Err(format!("batch {i} starts at {} expected {expect}", b.start));
        }
        if b.edge_start != g.offsets()[b.start as usize]
            || b.edge_end != g.offsets()[b.end as usize]
        {
            return Err(format!("batch {i} edge bounds inconsistent"));
        }
        expect = b.end;
    }
    if expect != part.end {
        return Err(format!("batches end at {expect}, partition ends at {}", part.end));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::Partition;
    use ldgm_graph::gen::{urand, web};

    #[test]
    fn batches_tile_partition() {
        let g = urand(2000, 16_000, 1);
        let p = Partition::edge_balanced(&g, 3);
        for part in &p.parts {
            for nb in [1, 2, 3, 5, 10] {
                let batches = make_batches(&g, part, nb);
                assert_eq!(batches.len(), nb);
                assert_eq!(validate_batches(&g, part, &batches), Ok(()));
            }
        }
    }

    #[test]
    fn batches_edge_balanced() {
        let g = urand(4000, 40_000, 2);
        let p = Partition::edge_balanced(&g, 2);
        let batches = make_batches(&g, &p.parts[0], 5);
        let ideal = p.parts[0].num_edges() as f64 / 5.0;
        for b in &batches {
            assert!(
                (b.num_edges() as f64) < 1.3 * ideal + g.max_degree() as f64,
                "batch has {} edges, ideal {ideal}",
                b.num_edges()
            );
        }
    }

    #[test]
    fn min_batches_single_when_memory_large() {
        let g = urand(1000, 8000, 3);
        let p = Partition::edge_balanced(&g, 2);
        let k = min_batches_to_fit(&g, &p.parts[0], 1000, u64::MAX, 1);
        assert_eq!(k, Some(1));
    }

    #[test]
    fn min_batches_grows_when_memory_tight() {
        let g = web(2000, 8, 0.5, 4);
        let p = Partition::edge_balanced(&g, 1);
        let whole = memory::device_footprint_bytes(&make_batches(&g, &p.parts[0], 1), 2000);
        // Allow only ~40% of the single-batch footprint: multiple batches
        // become necessary.
        let k = min_batches_to_fit(&g, &p.parts[0], 2000, whole * 2 / 5, 1).unwrap();
        assert!(k > 1, "k = {k}");
        let batches = make_batches(&g, &p.parts[0], k);
        assert!(memory::fits(&batches, 2000, whole * 2 / 5));
    }

    #[test]
    fn min_batches_none_when_globals_dont_fit() {
        let g = urand(1000, 4000, 5);
        let p = Partition::edge_balanced(&g, 1);
        assert_eq!(min_batches_to_fit(&g, &p.parts[0], 1000, 100, 1), None);
    }

    #[test]
    fn respects_min_batches_floor() {
        let g = urand(1000, 8000, 6);
        let p = Partition::edge_balanced(&g, 1);
        let k = min_batches_to_fit(&g, &p.parts[0], 1000, u64::MAX, 4);
        assert_eq!(k, Some(4));
    }

    #[test]
    fn empty_partition_batches() {
        let g = ldgm_graph::CsrGraph::empty(4);
        let p = Partition::edge_balanced(&g, 2);
        let batches = make_batches(&g, &p.parts[1], 3);
        assert_eq!(validate_batches(&g, &p.parts[1], &batches), Ok(()));
    }

    #[test]
    fn min_batches_on_zero_edge_partition() {
        // An edgeless graph still pays for offsets and globals; as long
        // as those fit, one batch suffices — and the floor is honored.
        // Edge-balanced splitting of an edgeless graph pushes all
        // vertices into the trailing part; use that one.
        let g = ldgm_graph::CsrGraph::empty(64);
        let part = Partition::edge_balanced(&g, 2).parts[1];
        assert!(part.num_vertices() > 0 && part.num_edges() == 0);
        let need = memory::device_footprint_bytes(&make_batches(&g, &part, 1), 64);
        assert_eq!(min_batches_to_fit(&g, &part, 64, need, 1), Some(1));
        assert_eq!(min_batches_to_fit(&g, &part, 64, need, 3), Some(3));
        // Globals overflowing is still fatal even with zero edges...
        assert_eq!(min_batches_to_fit(&g, &part, 64, memory::global_state_bytes(64) - 1, 1), None);
        // ...but a zero-*vertex* partition asks for nothing at all.
        let empty = VertexRange { start: 5, end: 5, edge_start: 0, edge_end: 0 };
        assert_eq!(min_batches_to_fit(&g, &empty, 64, 0, 2), Some(2));
    }

    #[test]
    fn min_batches_none_when_one_vertex_overflows() {
        // Budget big enough for the globals but smaller than a single
        // vertex's double-buffered adjacency: no batch count can help.
        let g = urand(200, 4000, 7);
        let p = Partition::edge_balanced(&g, 1);
        let hub = (0..200u32).max_by_key(|&v| g.degree(v)).unwrap();
        let single = VertexRange {
            start: hub,
            end: hub + 1,
            edge_start: g.offsets()[hub as usize],
            edge_end: g.offsets()[hub as usize + 1],
        };
        let budget = memory::global_state_bytes(200) + 2 * memory::batch_buffer_bytes(&single) - 1;
        assert_eq!(min_batches_to_fit(&g, &p.parts[0], 200, budget, 1), None);
    }

    #[test]
    fn min_batches_exact_fit_boundary() {
        let g = urand(1000, 8000, 8);
        let p = Partition::edge_balanced(&g, 1);
        // Exactly the single-batch footprint fits in one batch; one byte
        // less forces at least two.
        let whole = memory::device_footprint_bytes(&make_batches(&g, &p.parts[0], 1), 1000);
        assert_eq!(min_batches_to_fit(&g, &p.parts[0], 1000, whole, 1), Some(1));
        let k = min_batches_to_fit(&g, &p.parts[0], 1000, whole - 1, 1).unwrap();
        assert!(k > 1, "k = {k}");
        assert!(memory::fits(&make_batches(&g, &p.parts[0], k), 1000, whole - 1));
    }
}

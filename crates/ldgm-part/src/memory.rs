//! Device-memory accounting (paper §III-B/C).
//!
//! A device processing partition `G_i` in batches must hold:
//! * two batch buffers (double buffering) each sized for the largest batch
//!   — a batch buffer stores the batch's offset slice plus its adjacency
//!   and weight arrays, all 64-bit as in the paper;
//! * two *global* arrays of length |V| (`pointers` and `mate`) — the
//!   paper's accepted trade-off for imposing vertex-based independence
//!   (§III-C: "this requires two arrays of size |V| to be allocated on
//!   each device").

use crate::partition::VertexRange;

/// Bytes of one batch buffer holding the vertex range's CSR slice:
/// `(|V_b|+1)` 64-bit offsets plus `|E_b|` (adjacency, weight) pairs.
pub fn batch_buffer_bytes(r: &VertexRange) -> u64 {
    (r.num_vertices() as u64 + 1) * 8 + r.num_edges() * (8 + 8)
}

/// Bytes of the per-device global matching state: `pointers` and `mate`,
/// each one 64-bit word per vertex of the *whole* graph.
pub fn global_state_bytes(n_global_vertices: usize) -> u64 {
    2 * n_global_vertices as u64 * 8
}

/// Total device footprint for a batch plan: double-buffered largest batch
/// plus global state.
pub fn device_footprint_bytes(batches: &[VertexRange], n_global_vertices: usize) -> u64 {
    let max_batch = batches.iter().map(batch_buffer_bytes).max().unwrap_or(0);
    2 * max_batch + global_state_bytes(n_global_vertices)
}

/// Whether a batch plan fits in `mem_bytes` of device memory.
pub fn fits(batches: &[VertexRange], n_global_vertices: usize, mem_bytes: u64) -> bool {
    device_footprint_bytes(batches, n_global_vertices) <= mem_bytes
}

/// Per-device memory budget ledger.
///
/// The batch planner above works on raw byte totals; the streaming
/// window planner instead makes a *sequence* of reservations (global
/// state, then one slot per resident band) and needs to ask "what is
/// still free?" between them. `DeviceMemory` keeps that arithmetic in
/// one place: a fixed capacity, a running reservation, and saturating
/// queries — reservations past capacity are refused, never wrapped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeviceMemory {
    capacity: u64,
    reserved: u64,
}

impl DeviceMemory {
    /// Fresh budget of `capacity` bytes with nothing reserved.
    pub fn new(capacity: u64) -> Self {
        DeviceMemory { capacity, reserved: 0 }
    }

    /// Total device capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes already reserved.
    pub fn reserved(&self) -> u64 {
        self.reserved
    }

    /// Bytes still unreserved.
    pub fn remaining(&self) -> u64 {
        self.capacity - self.reserved
    }

    /// Whether `bytes` more would still fit.
    pub fn fits(&self, bytes: u64) -> bool {
        bytes <= self.remaining()
    }

    /// Reserve `bytes`; `false` (and no change) when they do not fit.
    pub fn reserve(&mut self, bytes: u64) -> bool {
        if !self.fits(bytes) {
            return false;
        }
        self.reserved += bytes;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn range(nv: usize, ne: u64) -> VertexRange {
        VertexRange { start: 0, end: nv as u32, edge_start: 0, edge_end: ne }
    }

    #[test]
    fn batch_bytes_formula() {
        let r = range(10, 100);
        assert_eq!(batch_buffer_bytes(&r), 11 * 8 + 100 * 16);
    }

    #[test]
    fn global_state_is_two_words_per_vertex() {
        assert_eq!(global_state_bytes(1000), 16_000);
    }

    #[test]
    fn footprint_uses_largest_batch_twice() {
        let small = range(10, 50);
        let large = range(10, 200);
        let fp = device_footprint_bytes(&[small, large], 100);
        assert_eq!(fp, 2 * batch_buffer_bytes(&large) + global_state_bytes(100));
    }

    #[test]
    fn fits_boundary() {
        let b = [range(10, 100)];
        let need = device_footprint_bytes(&b, 50);
        assert!(fits(&b, 50, need));
        assert!(!fits(&b, 50, need - 1));
    }

    #[test]
    fn zero_edge_batch_still_bills_offsets() {
        // A vertex range with no edges is not free: its offset slice is
        // still resident, so the footprint is the offsets plus globals.
        let r = range(10, 0);
        assert_eq!(batch_buffer_bytes(&r), 11 * 8);
        let fp = device_footprint_bytes(&[r], 10);
        assert_eq!(fp, 2 * 11 * 8 + global_state_bytes(10));
        // Empty batch *lists* degrade to globals only.
        assert_eq!(device_footprint_bytes(&[], 10), global_state_bytes(10));
        assert!(fits(&[], 10, global_state_bytes(10)));
        assert!(!fits(&[], 10, global_state_bytes(10) - 1));
    }

    #[test]
    fn device_memory_ledger_reserves_and_refuses() {
        let mut m = DeviceMemory::new(100);
        assert_eq!((m.capacity(), m.reserved(), m.remaining()), (100, 0, 100));
        assert!(m.reserve(60));
        assert_eq!(m.remaining(), 40);
        assert!(m.fits(40));
        assert!(!m.fits(41));
        // A refused reservation leaves the ledger untouched.
        assert!(!m.reserve(41));
        assert_eq!(m.reserved(), 60);
        // Exact fit is allowed; after it nothing remains.
        assert!(m.reserve(40));
        assert_eq!(m.remaining(), 0);
        assert!(m.fits(0));
        assert!(!m.reserve(1));
    }
}

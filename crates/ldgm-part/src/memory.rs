//! Device-memory accounting (paper §III-B/C).
//!
//! A device processing partition `G_i` in batches must hold:
//! * two batch buffers (double buffering) each sized for the largest batch
//!   — a batch buffer stores the batch's offset slice plus its adjacency
//!   and weight arrays, all 64-bit as in the paper;
//! * two *global* arrays of length |V| (`pointers` and `mate`) — the
//!   paper's accepted trade-off for imposing vertex-based independence
//!   (§III-C: "this requires two arrays of size |V| to be allocated on
//!   each device").

use crate::partition::VertexRange;

/// Bytes of one batch buffer holding the vertex range's CSR slice:
/// `(|V_b|+1)` 64-bit offsets plus `|E_b|` (adjacency, weight) pairs.
pub fn batch_buffer_bytes(r: &VertexRange) -> u64 {
    (r.num_vertices() as u64 + 1) * 8 + r.num_edges() * (8 + 8)
}

/// Bytes of the per-device global matching state: `pointers` and `mate`,
/// each one 64-bit word per vertex of the *whole* graph.
pub fn global_state_bytes(n_global_vertices: usize) -> u64 {
    2 * n_global_vertices as u64 * 8
}

/// Total device footprint for a batch plan: double-buffered largest batch
/// plus global state.
pub fn device_footprint_bytes(batches: &[VertexRange], n_global_vertices: usize) -> u64 {
    let max_batch = batches.iter().map(batch_buffer_bytes).max().unwrap_or(0);
    2 * max_batch + global_state_bytes(n_global_vertices)
}

/// Whether a batch plan fits in `mem_bytes` of device memory.
pub fn fits(batches: &[VertexRange], n_global_vertices: usize, mem_bytes: u64) -> bool {
    device_footprint_bytes(batches, n_global_vertices) <= mem_bytes
}

#[cfg(test)]
mod tests {
    use super::*;

    fn range(nv: usize, ne: u64) -> VertexRange {
        VertexRange { start: 0, end: nv as u32, edge_start: 0, edge_end: ne }
    }

    #[test]
    fn batch_bytes_formula() {
        let r = range(10, 100);
        assert_eq!(batch_buffer_bytes(&r), 11 * 8 + 100 * 16);
    }

    #[test]
    fn global_state_is_two_words_per_vertex() {
        assert_eq!(global_state_bytes(1000), 16_000);
    }

    #[test]
    fn footprint_uses_largest_batch_twice() {
        let small = range(10, 50);
        let large = range(10, 200);
        let fp = device_footprint_bytes(&[small, large], 100);
        assert_eq!(fp, 2 * batch_buffer_bytes(&large) + global_state_bytes(100));
    }

    #[test]
    fn fits_boundary() {
        let b = [range(10, 100)];
        let need = device_footprint_bytes(&b, 50);
        assert!(fits(&b, 50, need));
        assert!(!fits(&b, 50, need - 1));
    }
}

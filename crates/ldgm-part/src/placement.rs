//! Topology-aware part→node placement for multi-node clusters.
//!
//! Edge-balanced parts ([`crate::partition::Partition`]) map one-to-one
//! onto devices; on a cluster, devices in turn live on nodes joined by a
//! link one to two orders of magnitude slower than NVLink. Which parts
//! share a node therefore decides how much of every per-iteration
//! reduction crosses the slow hop. This module groups parts onto nodes
//! so that heavy cut edges stay intra-node, and reports the inter-node
//! cut metrics the simulator bills against
//! (`part.inter_node_cut` / `part.boundary_fraction`).
//!
//! Placement is a *billing-layer* policy: the matching itself reduces
//! over all devices and is bit-identical under any placement — only the
//! simulated wire time changes.

use ldgm_graph::csr::CsrGraph;

use crate::partition::Partition;

/// An assignment of each part (device) to a cluster node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NodePlacement {
    /// `node_of_part[p]` = node hosting part `p`.
    pub node_of_part: Vec<usize>,
    /// Number of nodes spanned.
    pub nodes: usize,
}

impl NodePlacement {
    /// Cyclic assignment: part `p` goes to the next node with a free
    /// slot, round-robin. The naive baseline — adjacent (heavily
    /// connected) parts land on different nodes.
    ///
    /// # Panics
    /// If the node capacities cannot hold all parts.
    pub fn round_robin(n_parts: usize, caps: &[usize]) -> NodePlacement {
        let total: usize = caps.iter().sum();
        assert!(total >= n_parts, "node capacities {total} cannot hold {n_parts} parts");
        let mut used = vec![0usize; caps.len()];
        let mut node_of_part = Vec::with_capacity(n_parts);
        let mut next = 0usize;
        for _ in 0..n_parts {
            while used[next % caps.len()] >= caps[next % caps.len()] {
                next += 1;
            }
            let node = next % caps.len();
            used[node] += 1;
            node_of_part.push(node);
            next += 1;
        }
        NodePlacement { node_of_part, nodes: caps.len() }
    }

    /// Contiguous fill: parts `[0..caps[0])` on node 0, the next
    /// `caps[1]` on node 1, and so on. Because parts are contiguous
    /// vertex ranges, neighboring parts — which share most cut edges —
    /// stay on the same node.
    ///
    /// # Panics
    /// If the node capacities cannot hold all parts.
    pub fn grouped(n_parts: usize, caps: &[usize]) -> NodePlacement {
        let total: usize = caps.iter().sum();
        assert!(total >= n_parts, "node capacities {total} cannot hold {n_parts} parts");
        let mut node_of_part = Vec::with_capacity(n_parts);
        for (node, &cap) in caps.iter().enumerate() {
            for _ in 0..cap {
                if node_of_part.len() == n_parts {
                    break;
                }
                node_of_part.push(node);
            }
        }
        NodePlacement { node_of_part, nodes: caps.len() }
    }

    /// Topology-aware placement: greedily grow each node around the
    /// heaviest unplaced part, pulling in the parts with the strongest
    /// edge-weight affinity to what the node already holds — then keep
    /// whichever of {greedy, [`NodePlacement::grouped`],
    /// [`NodePlacement::round_robin`]} has the smallest weighted
    /// inter-node cut. The argmin construction makes "never worse than
    /// round-robin" (and grouped) hold unconditionally.
    ///
    /// # Panics
    /// If the node capacities cannot hold all parts.
    pub fn topology_aware(g: &CsrGraph, part: &Partition, caps: &[usize]) -> NodePlacement {
        let n_parts = part.len();
        let total: usize = caps.iter().sum();
        assert!(total >= n_parts, "node capacities {total} cannot hold {n_parts} parts");

        // Part-affinity matrix: summed weight of edges between each part
        // pair (owner table first — owner_of per endpoint would be
        // O(E log P)).
        let owner = owner_table(part, g.num_vertices());
        let mut affinity = vec![0.0f64; n_parts * n_parts];
        let mut part_weight = vec![0.0f64; n_parts];
        for (u, v, w) in g.iter_edges() {
            let (pu, pv) = (owner[u as usize], owner[v as usize]);
            part_weight[pu] += w;
            part_weight[pv] += w;
            if pu != pv {
                affinity[pu * n_parts + pv] += w;
                affinity[pv * n_parts + pu] += w;
            }
        }

        // Greedy seed-and-grow: each node starts from the heaviest
        // unplaced part and repeatedly absorbs the unplaced part with
        // the strongest affinity to its current contents.
        let mut node_of_part = vec![usize::MAX; n_parts];
        let mut placed = 0usize;
        for (node, &cap) in caps.iter().enumerate() {
            if placed == n_parts {
                break;
            }
            let seed = (0..n_parts)
                .filter(|&p| node_of_part[p] == usize::MAX)
                .max_by(|&a, &b| part_weight[a].total_cmp(&part_weight[b]))
                .expect("unplaced part exists");
            node_of_part[seed] = node;
            placed += 1;
            for _ in 1..cap {
                if placed == n_parts {
                    break;
                }
                let best = (0..n_parts)
                    .filter(|&p| node_of_part[p] == usize::MAX)
                    .max_by(|&a, &b| {
                        let fa = node_affinity(&affinity, &node_of_part, n_parts, a, node);
                        let fb = node_affinity(&affinity, &node_of_part, n_parts, b, node);
                        fa.total_cmp(&fb).then_with(|| b.cmp(&a))
                    })
                    .expect("unplaced part exists");
                node_of_part[best] = node;
                placed += 1;
            }
        }
        let greedy = NodePlacement { node_of_part, nodes: caps.len() };

        // Keep the best of the three candidate placements under the
        // exact metric the runtime bills (weighted inter-node cut).
        let candidates = [greedy, Self::grouped(n_parts, caps), Self::round_robin(n_parts, caps)];
        candidates
            .into_iter()
            .min_by(|a, b| {
                cut_stats(g, part, a)
                    .cut_fraction()
                    .total_cmp(&cut_stats(g, part, b).cut_fraction())
            })
            .expect("three candidates")
    }

    /// Node hosting part `p`.
    pub fn node_of(&self, p: usize) -> usize {
        self.node_of_part[p]
    }
}

/// Summed affinity of part `p` to every part already placed on `node`.
fn node_affinity(
    affinity: &[f64],
    node_of_part: &[usize],
    n_parts: usize,
    p: usize,
    node: usize,
) -> f64 {
    (0..n_parts).filter(|&q| node_of_part[q] == node).map(|q| affinity[p * n_parts + q]).sum()
}

/// Flat vertex→part lookup table for `part`.
fn owner_table(part: &Partition, n: usize) -> Vec<usize> {
    let mut owner = vec![0usize; n];
    for (p, r) in part.parts.iter().enumerate() {
        for v in r.start..r.end {
            owner[v as usize] = p;
        }
    }
    owner
}

/// Edge/weight composition of a placement's inter-node cut.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CutStats {
    /// Undirected edges whose endpoints live on different nodes.
    pub cross_edges: u64,
    /// Total undirected edges.
    pub total_edges: u64,
    /// Summed weight of the cross-node edges.
    pub cross_weight: f64,
    /// Summed weight of all edges.
    pub total_weight: f64,
    /// Vertices with at least one cross-node edge.
    pub boundary_vertices: u64,
    /// Total vertices.
    pub num_vertices: u64,
}

impl CutStats {
    /// Weighted inter-node cut fraction: cross-node edge weight over
    /// total edge weight (0 when the graph has no weight).
    pub fn cut_fraction(&self) -> f64 {
        if self.total_weight > 0.0 {
            self.cross_weight / self.total_weight
        } else {
            0.0
        }
    }

    /// Fraction of vertices on a node boundary — the share of each
    /// reduced array that actually needs the inter-node hop, which is
    /// what scales the leader-ring payload.
    pub fn boundary_fraction(&self) -> f64 {
        if self.num_vertices > 0 {
            self.boundary_vertices as f64 / self.num_vertices as f64
        } else {
            0.0
        }
    }
}

/// Measure the inter-node cut of `placement` on `g` under `part`.
pub fn cut_stats(g: &CsrGraph, part: &Partition, placement: &NodePlacement) -> CutStats {
    let owner = owner_table(part, g.num_vertices());
    let mut s = CutStats { num_vertices: g.num_vertices() as u64, ..CutStats::default() };
    let mut boundary = vec![false; g.num_vertices()];
    for (u, v, w) in g.iter_edges() {
        s.total_edges += 1;
        s.total_weight += w;
        let (nu, nv) = (placement.node_of(owner[u as usize]), placement.node_of(owner[v as usize]));
        if nu != nv {
            s.cross_edges += 1;
            s.cross_weight += w;
            boundary[u as usize] = true;
            boundary[v as usize] = true;
        }
    }
    s.boundary_vertices = boundary.iter().filter(|&&b| b).count() as u64;
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldgm_graph::gen::{rmat, urand, RmatParams};
    use ldgm_graph::GraphBuilder;
    use proptest::prelude::*;

    fn caps(nodes: usize, per: usize) -> Vec<usize> {
        vec![per; nodes]
    }

    #[test]
    fn round_robin_cycles_and_grouped_fills() {
        let rr = NodePlacement::round_robin(6, &caps(2, 4));
        assert_eq!(rr.node_of_part, vec![0, 1, 0, 1, 0, 1]);
        let gr = NodePlacement::grouped(6, &caps(2, 4));
        assert_eq!(gr.node_of_part, vec![0, 0, 0, 0, 1, 1]);
    }

    #[test]
    fn round_robin_skips_full_nodes() {
        let rr = NodePlacement::round_robin(5, &[1, 3, 2]);
        assert_eq!(rr.node_of_part, vec![0, 1, 2, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "cannot hold")]
    fn overfull_capacities_are_rejected() {
        NodePlacement::grouped(9, &caps(2, 4));
    }

    #[test]
    fn grouped_beats_round_robin_on_a_path_graph() {
        // Path graph: every cut edge joins adjacent contiguous parts, so
        // grouping adjacent parts on a node removes most of the cut.
        let mut b = GraphBuilder::new(64);
        for v in 0..63u32 {
            b.push_edge(v, v + 1, 1.0);
        }
        let g = b.build();
        let part = Partition::edge_balanced(&g, 8);
        let c = caps(2, 4);
        let gr = cut_stats(&g, &part, &NodePlacement::grouped(8, &c));
        let rr = cut_stats(&g, &part, &NodePlacement::round_robin(8, &c));
        assert!(
            gr.cut_fraction() < rr.cut_fraction(),
            "{} vs {}",
            gr.cut_fraction(),
            rr.cut_fraction()
        );
        // 8 parts over 2 nodes: grouped cuts exactly one path edge.
        assert_eq!(gr.cross_edges, 1);
    }

    #[test]
    fn aware_placement_reports_sane_stats() {
        let g = rmat(2048, 16_000, RmatParams::GAP_KRON, 7);
        let part = Partition::edge_balanced(&g, 8);
        let c = caps(2, 4);
        let aware = NodePlacement::topology_aware(&g, &part, &c);
        let s = cut_stats(&g, &part, &aware);
        assert!(s.cut_fraction() >= 0.0 && s.cut_fraction() <= 1.0);
        assert!(s.boundary_fraction() >= 0.0 && s.boundary_fraction() <= 1.0);
        assert!(s.cross_edges <= s.total_edges);
        // Every part placed on a real node.
        assert!(aware.node_of_part.iter().all(|&n| n < 2));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        // Satellite 4: node-grouped topology-aware placement never
        // increases the weighted inter-node cut fraction vs naive
        // round-robin grouping.
        #[test]
        fn aware_never_cuts_more_than_round_robin(
            n in 32usize..400,
            edge_factor in 2usize..8,
            seed in 0u64..50,
            nodes in 2usize..5,
            per_node in 1usize..5,
        ) {
            let g = urand(n, n * edge_factor, seed);
            let n_parts = (nodes * per_node).min(n);
            let part = Partition::edge_balanced(&g, n_parts);
            let c = caps(nodes, per_node);
            let aware = NodePlacement::topology_aware(&g, &part, &c);
            let rr = NodePlacement::round_robin(n_parts, &c);
            let fa = cut_stats(&g, &part, &aware).cut_fraction();
            let fr = cut_stats(&g, &part, &rr).cut_fraction();
            prop_assert!(
                fa <= fr + 1e-12,
                "aware cut {fa} exceeds round-robin cut {fr}"
            );
        }
    }
}

//! Contiguous, edge-balanced vertex partitioning (paper §III-A).
//!
//! The graph is distributed across `N` devices by splitting the vertex id
//! space into contiguous ranges whose *edge* counts are as equal as
//! possible ("we partition the vertices with an attempt to assign similar
//! #edges across the partitions (#vertices can be dissimilar)"). Contiguity
//! preserves coalesced access on device. Each split point is found by
//! binary search on the CSR offset (prefix-sum) array.

use ldgm_graph::csr::{CsrGraph, VertexId};

/// A contiguous vertex range `[start, end)` assigned to one device, with
/// the directed-edge range its adjacency occupies in the CSR arrays.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VertexRange {
    /// First vertex (inclusive).
    pub start: VertexId,
    /// One past the last vertex.
    pub end: VertexId,
    /// First directed-edge index (== `offsets[start]`).
    pub edge_start: u64,
    /// One past the last directed-edge index (== `offsets[end]`).
    pub edge_end: u64,
}

impl VertexRange {
    /// Number of vertices in the range.
    pub fn num_vertices(&self) -> usize {
        (self.end - self.start) as usize
    }

    /// Number of directed edges stored for the range.
    pub fn num_edges(&self) -> u64 {
        self.edge_end - self.edge_start
    }

    /// Whether the range contains vertex `v`.
    pub fn contains(&self, v: VertexId) -> bool {
        v >= self.start && v < self.end
    }

    /// An empty range at a position.
    pub fn empty_at(pos: VertexId, edge_pos: u64) -> Self {
        VertexRange { start: pos, end: pos, edge_start: edge_pos, edge_end: edge_pos }
    }
}

/// A partition of the full vertex set into `parts.len()` contiguous ranges.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Partition {
    /// Per-device vertex ranges, in vertex-id order; they tile `[0, n)`.
    pub parts: Vec<VertexRange>,
}

impl Partition {
    /// Partition `g` into `n_parts` contiguous ranges with balanced edge
    /// counts. Ranges may be empty when `n_parts` exceeds what the edge
    /// distribution supports.
    pub fn edge_balanced(g: &CsrGraph, n_parts: usize) -> Partition {
        assert!(n_parts >= 1, "need at least one partition");
        let offsets = g.offsets();
        let n = g.num_vertices() as VertexId;
        let total = *offsets.last().unwrap();
        let mut parts = Vec::with_capacity(n_parts);
        let mut start: VertexId = 0;
        for i in 0..n_parts {
            // Ideal cumulative edge count at the end of part i.
            let target = total * (i as u64 + 1) / n_parts as u64;
            let end =
                if i + 1 == n_parts { n } else { split_point(offsets, target).clamp(start, n) };
            parts.push(VertexRange {
                start,
                end,
                edge_start: offsets[start as usize],
                edge_end: offsets[end as usize],
            });
            start = end;
        }
        Partition { parts }
    }

    /// Number of parts (devices).
    pub fn len(&self) -> usize {
        self.parts.len()
    }

    /// Whether there are no parts.
    pub fn is_empty(&self) -> bool {
        self.parts.is_empty()
    }

    /// Which part owns vertex `v` (binary search).
    pub fn owner_of(&self, v: VertexId) -> usize {
        debug_assert!(!self.parts.is_empty());
        self.parts.partition_point(|r| r.end <= v).min(self.parts.len() - 1)
    }

    /// Largest directed-edge count over the parts — the per-device memory
    /// high-water mark.
    pub fn max_part_edges(&self) -> u64 {
        self.parts.iter().map(|p| p.num_edges()).max().unwrap_or(0)
    }

    /// Edge-balance ratio: max part edges / ideal (1.0 = perfect). Graphs
    /// with a vertex whose degree exceeds the ideal share cannot reach 1.
    pub fn balance(&self) -> f64 {
        let total: u64 = self.parts.iter().map(|p| p.num_edges()).sum();
        if total == 0 {
            return 1.0;
        }
        let ideal = total as f64 / self.parts.len() as f64;
        self.max_part_edges() as f64 / ideal
    }

    /// Check the ranges tile `[0, n)` with consistent edge bounds.
    pub fn validate(&self, g: &CsrGraph) -> Result<(), String> {
        let n = g.num_vertices() as VertexId;
        let mut expect: VertexId = 0;
        for (i, p) in self.parts.iter().enumerate() {
            if p.start != expect {
                return Err(format!("part {i} starts at {} expected {expect}", p.start));
            }
            if p.end < p.start {
                return Err(format!("part {i} has negative extent"));
            }
            if p.edge_start != g.offsets()[p.start as usize]
                || p.edge_end != g.offsets()[p.end as usize]
            {
                return Err(format!("part {i} edge bounds inconsistent with offsets"));
            }
            expect = p.end;
        }
        if expect != n {
            return Err(format!("parts end at {expect}, graph has {n} vertices"));
        }
        Ok(())
    }
}

/// Find the vertex index `v` such that cutting before `v` best approximates
/// the cumulative edge `target`: the smallest `v` with `offsets[v] >=
/// target`, then rounded to whichever side is closer.
fn split_point(offsets: &[u64], target: u64) -> VertexId {
    let n = offsets.len() - 1;
    // partition_point over offsets[0..=n] (sorted non-decreasing).
    let hi = offsets.partition_point(|&o| o < target).min(n);
    if hi == 0 {
        return 0;
    }
    let lo = hi - 1;
    // Choose the cut whose cumulative count is closest to the target.
    if target - offsets[lo] <= offsets[hi] - target {
        lo as VertexId
    } else {
        hi as VertexId
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldgm_graph::gen::{rmat, urand, RmatParams};
    use ldgm_graph::GraphBuilder;

    #[test]
    fn tiles_vertex_space() {
        let g = urand(1000, 8000, 1);
        for parts in [1, 2, 3, 4, 7, 8] {
            let p = Partition::edge_balanced(&g, parts);
            assert_eq!(p.len(), parts);
            assert_eq!(p.validate(&g), Ok(()));
        }
    }

    #[test]
    fn balanced_on_uniform_graph() {
        let g = urand(10_000, 100_000, 2);
        let p = Partition::edge_balanced(&g, 8);
        assert!(p.balance() < 1.05, "balance {}", p.balance());
    }

    #[test]
    fn balance_on_skewed_graph_bounded() {
        let g = rmat(4096, 40_000, RmatParams::GAP_KRON, 3);
        let p = Partition::edge_balanced(&g, 4);
        assert_eq!(p.validate(&g), Ok(()));
        // One-vertex granularity: the hub vertex may overflow its part but
        // the split should stay within hub-degree of ideal.
        let ideal = g.num_directed_edges() as f64 / 4.0;
        assert!(
            p.max_part_edges() as f64 <= ideal + g.max_degree() as f64 + 1.0,
            "max {} ideal {ideal}",
            p.max_part_edges()
        );
    }

    #[test]
    fn owner_of_is_consistent() {
        let g = urand(500, 3000, 4);
        let p = Partition::edge_balanced(&g, 5);
        for v in 0..500u32 {
            let o = p.owner_of(v);
            assert!(p.parts[o].contains(v), "vertex {v} not in its owner range");
        }
    }

    #[test]
    fn single_part_is_whole_graph() {
        let g = urand(100, 400, 5);
        let p = Partition::edge_balanced(&g, 1);
        assert_eq!(p.parts[0].start, 0);
        assert_eq!(p.parts[0].end, 100);
        assert_eq!(p.parts[0].num_edges(), g.num_directed_edges() as u64);
    }

    #[test]
    fn more_parts_than_vertices() {
        let g = GraphBuilder::new(3).add_edge(0, 1, 1.0).add_edge(1, 2, 1.0).build();
        let p = Partition::edge_balanced(&g, 8);
        assert_eq!(p.validate(&g), Ok(()));
        let covered: usize = p.parts.iter().map(|r| r.num_vertices()).sum();
        assert_eq!(covered, 3);
    }

    #[test]
    fn empty_graph_partitions() {
        let g = ldgm_graph::CsrGraph::empty(10);
        let p = Partition::edge_balanced(&g, 4);
        assert_eq!(p.validate(&g), Ok(()));
    }

    #[test]
    fn star_graph_hub_isolated() {
        // Star with hub 0: nearly all edges in hub's part.
        let mut b = GraphBuilder::new(1001);
        for v in 1..=1000u32 {
            b.push_edge(0, v, 1.0);
        }
        let g = b.build();
        let p = Partition::edge_balanced(&g, 4);
        assert_eq!(p.validate(&g), Ok(()));
        // The hub alone holds half the directed edges; part 0 should be
        // small in vertices.
        assert!(p.parts[0].num_vertices() < 600);
    }
}

//! Metrics registry: named counters, gauges, and histograms populated by
//! the kernels and drivers as they run.
//!
//! Every matcher fills one [`MetricsRegistry`] per run (edges scanned,
//! pointers set, vertices retired, collective bytes, buffer stalls, ...).
//! Names are dot-separated (`"kernel.edges_scanned"`); storage is a
//! `BTreeMap`, so iteration and JSON output are deterministic and sorted.

use crate::json::Json;
use std::collections::BTreeMap;

/// Canonical metric names — the single source of the registry schema.
///
/// Every engine (static LD-GPU driver, incremental engine, SR-GPU and
/// cuGraph baselines) bills through [`crate::runtime::SimRuntime`], which
/// emits these names, so profiles from different algorithms are directly
/// comparable. Engines add their own semantic counters (pointers set,
/// edges committed) under the same constants.
pub mod names {
    /// Edge slots inspected by kernels (counter).
    pub const KERNEL_EDGES_SCANNED: &str = "kernel.edges_scanned";
    /// Warps launched across all kernels (counter).
    pub const KERNEL_WARPS_LAUNCHED: &str = "kernel.warps_launched";
    /// Vertices that set a pointer / made a proposal (counter).
    pub const KERNEL_POINTERS_SET: &str = "kernel.pointers_set";
    /// Vertices retired with exhausted neighborhoods (counter).
    pub const KERNEL_VERTICES_RETIRED: &str = "kernel.vertices_retired";
    /// Device-memory bytes read + written by kernels (counter).
    pub const KERNEL_BYTES_MOVED: &str = "kernel.bytes_moved";
    /// Warp-weighted mean achieved occupancy, 0..=1 (gauge).
    pub const KERNEL_OCCUPANCY: &str = "kernel.occupancy";
    /// Edges committed to the matching (counter).
    pub const MATCHING_EDGES_COMMITTED: &str = "matching.edges_committed";
    /// Allreduce collectives issued (counter).
    pub const COMM_ALLREDUCE_CALLS: &str = "comm.allreduce_calls";
    /// Wire bytes carried by collectives: `2 (p-1) × payload` per ring
    /// allreduce (counter; 0 on single-device runs).
    pub const COMM_COLLECTIVE_BYTES: &str = "comm.collective_bytes";
    /// Communication/proposal rounds of round-based algorithms (counter).
    pub const COMM_ROUNDS: &str = "comm.rounds";
    /// Matching iterations executed by the driver (counter).
    pub const DRIVER_ITERATIONS: &str = "driver.iterations";
    /// SETPOINTERS/SETMATES rounds of the incremental engine (counter).
    pub const DRIVER_ROUNDS: &str = "driver.rounds";
    /// Devices used by the run (gauge).
    pub const DRIVER_DEVICES: &str = "driver.devices";
    /// Batches per device (gauge).
    pub const DRIVER_BATCHES: &str = "driver.batches";
    /// Copies that stalled on a busy stream buffer (counter).
    pub const TIMER_BUFFER_STALLS: &str = "timer.buffer_stalls";
    /// Simulated seconds copies spent stalled (gauge).
    pub const TIMER_BUFFER_STALL_TIME: &str = "timer.buffer_stall_time";
    /// Update batches applied by the dynamic engine (counter).
    pub const DYN_BATCHES: &str = "dyn.batches";
    /// Applied inserts + deletes (counter).
    pub const DYN_UPDATES_APPLIED: &str = "dyn.updates_applied";
    /// Applied inserts (counter).
    pub const DYN_INSERTS: &str = "dyn.inserts";
    /// Applied deletes of live edges (counter).
    pub const DYN_DELETES: &str = "dyn.deletes";
    /// Delta-CSR overlay compactions (counter).
    pub const DYN_COMPACTIONS: &str = "dyn.compactions";
    /// Seed-frontier sizes per batch (histogram).
    pub const DYN_SEED_FRONTIER: &str = "dyn.seed_frontier";
    /// Frontier sizes per stabilization round (histogram).
    pub const DYN_FRONTIER_SIZE: &str = "dyn.frontier_size";
    /// Live delta-overlay entries after the last batch (gauge).
    pub const DYN_DELTA_ENTRIES: &str = "dyn.delta_entries";
    /// Frontier sizes per iteration of the optimized static driver
    /// (histogram; the final sample is 0 on frontier-drained termination).
    pub const OPT_FRONTIER_SIZE: &str = "opt.frontier_size";
    /// Edge slots the sorted-index early exit skipped relative to a full
    /// adjacency scan (counter).
    pub const OPT_EDGES_SKIPPED: &str = "opt.edges_skipped";
    /// Batch launches skipped because their frontier slice was empty
    /// (counter).
    pub const OPT_BATCHES_SKIPPED: &str = "opt.batches_skipped";
    /// Simulated seconds of collective time on the critical path: wire
    /// time spent after the last producer of a reduced payload finished
    /// computing (gauge). Serialized collectives expose their full cost.
    pub const COMM_EXPOSED_TIME: &str = "comm.exposed_time";
    /// Simulated seconds of collective time hidden under compute: chunk
    /// reductions that ran while some device was still producing later
    /// chunks (gauge; 0 for fully serialized runs).
    pub const COMM_HIDDEN_TIME: &str = "comm.hidden_time";
    /// Mean utilization of the three per-device streams (compute, copy,
    /// comm) over the run: busy seconds / (3 × devices × sim_time)
    /// (gauge).
    pub const STREAM_OCCUPANCY: &str = "stream.occupancy";
    /// Collective wire bytes that crossed intra-node (NVLink-class) hops
    /// of a cluster topology (counter; 0 on single-node platforms, where
    /// `comm.collective_bytes` carries everything undifferentiated).
    pub const COMM_INTRA_NODE_BYTES: &str = "comm.intra_node_bytes";
    /// Collective wire bytes that crossed inter-node (InfiniBand/EFA-
    /// class) hops of a cluster topology (counter).
    pub const COMM_INTER_NODE_BYTES: &str = "comm.inter_node_bytes";
    /// Simulated seconds billed to the inter-node stage of hierarchical
    /// collectives — the leader ring over the slow link plus its launch
    /// (gauge; fully exposed in serialized runs).
    pub const COMM_INTER_TIME: &str = "comm.inter_time";
    /// Hierarchical collectives that fell back to the flat single-ring
    /// schedule because it finished earlier — small payloads where the
    /// staged schedule's double launch overhead dominates (counter).
    pub const COMM_HIER_FALLBACKS: &str = "comm.hier_fallbacks";
    /// Cluster nodes spanned by the run's devices (gauge; 1 on
    /// single-node platforms).
    pub const CLUSTER_NODES: &str = "cluster.nodes";
    /// Weighted inter-node cut fraction of the part placement: edge
    /// weight crossing node boundaries / total edge weight (gauge; only
    /// set by drivers running on a multi-node topology).
    pub const PART_INTER_NODE_CUT: &str = "part.inter_node_cut";
    /// Fraction of vertices with at least one neighbor on another node
    /// under the part placement — the slice of every vertex-indexed
    /// payload that must cross the slow link (gauge; see
    /// `part.inter_node_cut`).
    pub const PART_BOUNDARY_FRACTION: &str = "part.boundary_fraction";
    /// High-water device residency of the streaming engine: global state
    /// plus the full band window, in bytes (gauge; only set by streaming
    /// runs).
    pub const MEM_RESIDENT_BYTES: &str = "mem.resident_bytes";
    /// Vertices whose retained window bands were dropped after they left
    /// the streaming worklist — the frontier-informed eviction policy at
    /// work (counter; only set by streaming runs).
    pub const MEM_EVICTIONS: &str = "mem.evictions";
    /// Simulated seconds of substream prefetch copies that ran under the
    /// previous band's kernel — transfer time the streaming pipeline hid
    /// (gauge; only set by streaming runs).
    pub const COPY_PREFETCH_HIDDEN_TIME: &str = "copy.prefetch_hidden_time";
    /// Simulated seconds substream prefetch copies kept the compute
    /// stream waiting — transfer time the pipeline failed to hide
    /// (gauge; counterpart of `copy.prefetch_hidden_time`).
    pub const COPY_PREFETCH_EXPOSED_TIME: &str = "copy.prefetch_exposed_time";
}

/// Summary statistics of observed samples (no buckets: the consumers —
/// reports and the `ldgm profile` table — want moments, not quantiles).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct HistogramSummary {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: f64,
    /// Smallest sample (0 when empty).
    pub min: f64,
    /// Largest sample (0 when empty).
    pub max: f64,
}

impl HistogramSummary {
    /// Record one sample.
    pub fn observe(&mut self, v: f64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
    }

    /// Mean of samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Fold another summary into this one.
    pub fn merge(&mut self, other: &HistogramSummary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// One registered metric.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Metric {
    /// Monotonic event count.
    Counter(u64),
    /// Last-write-wins measurement.
    Gauge(f64),
    /// Sample distribution summary.
    Histogram(HistogramSummary),
}

impl Metric {
    /// Metric kind name as emitted in JSON.
    pub fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }

    /// Scalar view used by display tables: counter value, gauge value, or
    /// histogram mean.
    pub fn scalar(&self) -> f64 {
        match self {
            Metric::Counter(v) => *v as f64,
            Metric::Gauge(v) => *v,
            Metric::Histogram(h) => h.mean(),
        }
    }
}

/// A run's worth of named metrics.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsRegistry {
    entries: BTreeMap<String, Metric>,
}

impl MetricsRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` to a counter, creating it at zero first. Panics if the
    /// name is already registered as a different kind — mixed use of one
    /// name is a programming error worth failing loudly on.
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        match self.entries.entry(name.to_string()).or_insert(Metric::Counter(0)) {
            Metric::Counter(v) => *v += delta,
            other => panic!("metric '{name}' is a {}, not a counter", other.kind()),
        }
    }

    /// Set a gauge.
    pub fn gauge_set(&mut self, name: &str, value: f64) {
        match self.entries.entry(name.to_string()).or_insert(Metric::Gauge(value)) {
            Metric::Gauge(v) => *v = value,
            other => panic!("metric '{name}' is a {}, not a gauge", other.kind()),
        }
    }

    /// Record a histogram sample.
    pub fn observe(&mut self, name: &str, sample: f64) {
        match self
            .entries
            .entry(name.to_string())
            .or_insert(Metric::Histogram(HistogramSummary::default()))
        {
            Metric::Histogram(h) => h.observe(sample),
            other => panic!("metric '{name}' is a {}, not a histogram", other.kind()),
        }
    }

    /// Look up a metric by name.
    pub fn get(&self, name: &str) -> Option<&Metric> {
        self.entries.get(name)
    }

    /// Counter value; 0 when absent or not a counter.
    pub fn counter(&self, name: &str) -> u64 {
        match self.entries.get(name) {
            Some(Metric::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// Gauge value; `None` when absent or not a gauge.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        match self.entries.get(name) {
            Some(Metric::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate metrics in sorted name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Metric)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Fold another registry into this one: counters add, gauges take the
    /// other's value, histograms merge.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, metric) in &other.entries {
            match metric {
                Metric::Counter(v) => self.counter_add(name, *v),
                Metric::Gauge(v) => self.gauge_set(name, *v),
                Metric::Histogram(h) => match self
                    .entries
                    .entry(name.clone())
                    .or_insert(Metric::Histogram(HistogramSummary::default()))
                {
                    Metric::Histogram(mine) => mine.merge(h),
                    other => panic!("metric '{name}' is a {}, not a histogram", other.kind()),
                },
            }
        }
    }

    /// JSON object keyed by metric name, each value tagged with its kind:
    /// `{"type":"counter","value":N}`, `{"type":"gauge","value":X}`, or
    /// `{"type":"histogram","count":N,"sum":S,"min":A,"max":B,"mean":M}`.
    pub fn to_json(&self) -> Json {
        let mut obj = Json::object();
        for (name, metric) in &self.entries {
            let entry = match metric {
                Metric::Counter(v) => Json::object().with("type", "counter").with("value", *v),
                Metric::Gauge(v) => Json::object().with("type", "gauge").with("value", *v),
                Metric::Histogram(h) => Json::object()
                    .with("type", "histogram")
                    .with("count", h.count)
                    .with("sum", h.sum)
                    .with("min", h.min)
                    .with("max", h.max)
                    .with("mean", h.mean()),
            };
            obj.set(name.clone(), entry);
        }
        obj
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = MetricsRegistry::new();
        m.counter_add("kernel.edges_scanned", 10);
        m.counter_add("kernel.edges_scanned", 5);
        assert_eq!(m.counter("kernel.edges_scanned"), 15);
        assert_eq!(m.counter("absent"), 0);
    }

    #[test]
    fn gauges_overwrite() {
        let mut m = MetricsRegistry::new();
        m.gauge_set("occupancy", 0.5);
        m.gauge_set("occupancy", 0.75);
        assert_eq!(m.gauge("occupancy"), Some(0.75));
        assert_eq!(m.gauge("absent"), None);
    }

    #[test]
    fn histogram_moments() {
        let mut m = MetricsRegistry::new();
        for v in [2.0, 4.0, 6.0] {
            m.observe("lat", v);
        }
        let Some(Metric::Histogram(h)) = m.get("lat") else { panic!("not a histogram") };
        assert_eq!(h.count, 3);
        assert_eq!(h.min, 2.0);
        assert_eq!(h.max, 6.0);
        assert!((h.mean() - 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn kind_mismatch_panics() {
        let mut m = MetricsRegistry::new();
        m.counter_add("x", 1);
        m.gauge_set("x", 1.0);
    }

    #[test]
    fn merge_by_kind() {
        let mut a = MetricsRegistry::new();
        a.counter_add("c", 1);
        a.gauge_set("g", 1.0);
        a.observe("h", 1.0);
        let mut b = MetricsRegistry::new();
        b.counter_add("c", 2);
        b.gauge_set("g", 9.0);
        b.observe("h", 3.0);
        b.counter_add("only_b", 7);
        a.merge(&b);
        assert_eq!(a.counter("c"), 3);
        assert_eq!(a.gauge("g"), Some(9.0));
        assert_eq!(a.counter("only_b"), 7);
        let Some(Metric::Histogram(h)) = a.get("h") else { panic!("not a histogram") };
        assert_eq!((h.count, h.min, h.max), (2, 1.0, 3.0));
    }

    #[test]
    fn json_is_sorted_and_tagged() {
        let mut m = MetricsRegistry::new();
        m.gauge_set("b.gauge", 2.5);
        m.counter_add("a.counter", 3);
        let j = m.to_json();
        let text = j.to_string_compact();
        assert!(text.find("a.counter").unwrap() < text.find("b.gauge").unwrap());
        assert_eq!(
            j.get("a.counter").and_then(|e| e.get("type")).and_then(Json::as_str),
            Some("counter")
        );
        assert_eq!(j.get("b.gauge").and_then(|e| e.get("value")).and_then(Json::as_f64), Some(2.5));
    }
}

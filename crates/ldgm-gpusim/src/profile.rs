//! Execution profiling: the measurements behind the paper's Figs. 5, 7
//! (component-wise timing), Fig. 8 (warp-edge work) and Fig. 11 (SM
//! occupancy).

use crate::device::KernelStats;

/// Simulated time attributed to each high-level component of Algorithm 2.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PhaseBreakdown {
    /// SETPOINTERS kernels.
    pub pointing: f64,
    /// SETMATES kernels.
    pub matching: f64,
    /// NCCL/MPI collectives (pointers + mate reductions).
    pub allreduce: f64,
    /// Batch H2D transfers.
    pub transfer: f64,
    /// Explicit host-device synchronization.
    pub sync: f64,
}

impl PhaseBreakdown {
    /// Total attributed time.
    pub fn total(&self) -> f64 {
        self.pointing + self.matching + self.allreduce + self.transfer + self.sync
    }

    /// Percentages in display order (pointing, matching, allreduce,
    /// transfer, sync); all zeros if nothing was recorded.
    pub fn percentages(&self) -> [f64; 5] {
        let t = self.total();
        if t == 0.0 {
            return [0.0; 5];
        }
        [
            self.pointing / t * 100.0,
            self.matching / t * 100.0,
            self.allreduce / t * 100.0,
            self.transfer / t * 100.0,
            self.sync / t * 100.0,
        ]
    }

    /// Accumulate another breakdown.
    pub fn merge(&mut self, other: &PhaseBreakdown) {
        self.pointing += other.pointing;
        self.matching += other.matching;
        self.allreduce += other.allreduce;
        self.transfer += other.transfer;
        self.sync += other.sync;
    }
}

/// Per-iteration record of the matching progression.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct IterationRecord {
    /// Iteration index (0-based).
    pub iter: usize,
    /// Edge slots scanned by SETPOINTERS this iteration (all devices).
    pub edges_scanned: u64,
    /// `edges_scanned` as a percentage of the graph's directed edges.
    pub pct_edges: f64,
    /// Mean edges scanned per launched warp.
    pub warp_mean: f64,
    /// Standard deviation of edges scanned per launched warp.
    pub warp_std: f64,
    /// Achieved-occupancy estimate of the pointing launches (0..=1).
    pub occupancy: f64,
    /// Edges committed to the matching this iteration.
    pub new_matches: u64,
}

impl IterationRecord {
    /// Build a record from aggregated pointing-phase kernel stats.
    pub fn from_stats(
        iter: usize,
        stats: &KernelStats,
        total_directed_edges: u64,
        occupancy: f64,
        new_matches: u64,
    ) -> Self {
        let warps = stats.warps_launched.max(1) as f64;
        let mean = stats.edges_scanned as f64 / warps;
        let var = (stats.warp_edges_sumsq / warps - mean * mean).max(0.0);
        IterationRecord {
            iter,
            edges_scanned: stats.edges_scanned,
            pct_edges: stats.edges_scanned as f64 / total_directed_edges.max(1) as f64 * 100.0,
            warp_mean: mean,
            warp_std: var.sqrt(),
            occupancy,
            new_matches,
        }
    }
}

/// Full profile of one simulated run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunProfile {
    /// Component-wise simulated time.
    pub phases: PhaseBreakdown,
    /// Per-iteration records, in order.
    pub iterations: Vec<IterationRecord>,
    /// End-to-end simulated time (max over devices).
    pub sim_time: f64,
}

impl RunProfile {
    /// Number of matching iterations executed.
    pub fn num_iterations(&self) -> usize {
        self.iterations.len()
    }

    /// Fraction of iterations that scanned less than `pct`% of the edges —
    /// the paper's Fig. 8 headline is that 90% of iterations touch < 20%.
    pub fn fraction_iterations_below_pct(&self, pct: f64) -> f64 {
        if self.iterations.is_empty() {
            return 0.0;
        }
        self.iterations.iter().filter(|r| r.pct_edges < pct).count() as f64
            / self.iterations.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentages_sum_to_hundred() {
        let p = PhaseBreakdown {
            pointing: 1.0,
            matching: 2.0,
            allreduce: 3.0,
            transfer: 4.0,
            sync: 0.0,
        };
        let pct = p.percentages();
        assert!((pct.iter().sum::<f64>() - 100.0).abs() < 1e-9);
        assert!((pct[0] - 10.0).abs() < 1e-9);
    }

    #[test]
    fn empty_breakdown_is_all_zero() {
        assert_eq!(PhaseBreakdown::default().percentages(), [0.0; 5]);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = PhaseBreakdown { pointing: 1.0, ..Default::default() };
        a.merge(&PhaseBreakdown { pointing: 2.0, sync: 1.0, ..Default::default() });
        assert_eq!(a.pointing, 3.0);
        assert_eq!(a.sync, 1.0);
    }

    #[test]
    fn iteration_record_moments() {
        // Two warps: 10 and 30 edges -> mean 20, std 10.
        let s = KernelStats {
            warps_launched: 2,
            edges_scanned: 40,
            warp_edges_sumsq: 100.0 + 900.0,
            ..Default::default()
        };
        let r = IterationRecord::from_stats(0, &s, 400, 0.9, 5);
        assert!((r.warp_mean - 20.0).abs() < 1e-9);
        assert!((r.warp_std - 10.0).abs() < 1e-9);
        assert!((r.pct_edges - 10.0).abs() < 1e-9);
        assert_eq!(r.new_matches, 5);
    }

    #[test]
    fn fraction_below_pct() {
        let mut p = RunProfile::default();
        for (i, pct) in [5.0, 10.0, 50.0, 3.0].iter().enumerate() {
            p.iterations.push(IterationRecord { iter: i, pct_edges: *pct, ..Default::default() });
        }
        assert!((p.fraction_iterations_below_pct(20.0) - 0.75).abs() < 1e-12);
    }
}

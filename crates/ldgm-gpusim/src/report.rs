//! JSON run reports: one self-describing document per matcher run,
//! written by `ldgm match --report-json` and the bench harness.
//!
//! Schema (version 5 — v2 added the `comm.exposed_time`,
//! `comm.hidden_time` and `stream.occupancy` gauges emitted by the
//! overlap-aware runtime to the `metrics` map; v3 added the cluster
//! metrics emitted on multi-node platforms — `cluster.nodes`,
//! `comm.intra_node_bytes`, `comm.inter_node_bytes`, `comm.inter_time`,
//! `comm.hier_fallbacks`, `part.inter_node_cut`,
//! `part.boundary_fraction`; v4 added the top-level `wall_time_ms`
//! field — host milliseconds the run actually took, the simulator's
//! own execution cost next to the billed `sim_time`; v5 added the
//! out-of-core streaming metrics emitted by `--stream` runs —
//! `mem.resident_bytes`, `mem.evictions`, `copy.prefetch_hidden_time`,
//! `copy.prefetch_exposed_time`):
//!
//! ```json
//! {
//!   "schema_version": 5,
//!   "algorithm": "ld-gpu",
//!   "platform": "dgx-a100",
//!   "graph":    { "vertices": N, "directed_edges": M },
//!   "matching": { "cardinality": C, "weight": W },
//!   "sim_time": T,
//!   "wall_time_ms": W,
//!   "iterations": K,
//!   "phases": { "pointing": .., "matching": .., "allreduce": ..,
//!               "transfer": .., "sync": .., "total": .. },
//!   "metrics": { "<name>": { "type": "counter", "value": .. }, ... }
//! }
//! ```
//!
//! Invariant: `phases.total == sim_time` within 1e-6 — phase values come
//! from [`crate::export::timeline_breakdown`] (simulated matchers) or
//! from wall-clock phase timing whose sum *defines* the run time (host
//! matchers). `platform` is `null` for host-only algorithms.

use crate::json::Json;
use crate::metrics::MetricsRegistry;
use crate::profile::PhaseBreakdown;

/// Everything `ldgm match --report-json` says about one run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunReport {
    /// Registry name of the algorithm (`"ld-gpu"`, `"suitor"`, ...).
    pub algorithm: String,
    /// Platform preset name; `None` for host-only algorithms.
    pub platform: Option<String>,
    /// Vertices in the input graph.
    pub vertices: u64,
    /// Directed edge slots in the input graph (2|E|).
    pub directed_edges: u64,
    /// Matched edges.
    pub cardinality: u64,
    /// Total matching weight.
    pub weight: f64,
    /// End-to-end run time: simulated seconds for platform algorithms,
    /// wall-clock seconds for host algorithms.
    pub sim_time: f64,
    /// Host wall-clock milliseconds the run took to execute — the
    /// simulator's own cost, independent of the billed `sim_time`
    /// (schema v4). Zero when the caller did not measure it.
    pub wall_time_ms: f64,
    /// Algorithm iterations/rounds (0 when the notion doesn't apply).
    pub iterations: u64,
    /// Phase attribution; must sum to `sim_time`.
    pub phases: PhaseBreakdown,
    /// Run metrics.
    pub metrics: MetricsRegistry,
}

/// JSON object for a phase breakdown, with the redundant-but-convenient
/// `total` field.
pub fn phases_json(p: &PhaseBreakdown) -> Json {
    Json::object()
        .with("pointing", p.pointing)
        .with("matching", p.matching)
        .with("allreduce", p.allreduce)
        .with("transfer", p.transfer)
        .with("sync", p.sync)
        .with("total", p.total())
}

impl RunReport {
    /// Serialize to the schema-versioned JSON document.
    pub fn to_json(&self) -> Json {
        Json::object()
            .with("schema_version", 5u64)
            .with("algorithm", self.algorithm.clone())
            .with(
                "platform",
                match &self.platform {
                    Some(p) => Json::Str(p.clone()),
                    None => Json::Null,
                },
            )
            .with(
                "graph",
                Json::object()
                    .with("vertices", self.vertices)
                    .with("directed_edges", self.directed_edges),
            )
            .with(
                "matching",
                Json::object().with("cardinality", self.cardinality).with("weight", self.weight),
            )
            .with("sim_time", self.sim_time)
            .with("wall_time_ms", self.wall_time_ms)
            .with("iterations", self.iterations)
            .with("phases", phases_json(&self.phases))
            .with("metrics", self.metrics.to_json())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn sample() -> RunReport {
        let mut metrics = MetricsRegistry::new();
        metrics.counter_add("kernel.edges_scanned", 1234);
        metrics.gauge_set("kernel.occupancy", 0.875);
        RunReport {
            algorithm: "ld-gpu".into(),
            platform: Some("dgx-a100".into()),
            vertices: 100,
            directed_edges: 500,
            cardinality: 42,
            weight: 12.5,
            sim_time: 1.0,
            wall_time_ms: 2.75,
            iterations: 7,
            phases: PhaseBreakdown {
                pointing: 0.4,
                matching: 0.1,
                allreduce: 0.3,
                transfer: 0.15,
                sync: 0.05,
            },
            metrics,
        }
    }

    #[test]
    fn schema_fields_present() {
        let j = sample().to_json();
        assert_eq!(j.get("schema_version").and_then(Json::as_f64), Some(5.0));
        assert_eq!(j.get("wall_time_ms").and_then(Json::as_f64), Some(2.75));
        assert_eq!(j.get("algorithm").and_then(Json::as_str), Some("ld-gpu"));
        assert_eq!(j.get("platform").and_then(Json::as_str), Some("dgx-a100"));
        let g = j.get("graph").unwrap();
        assert_eq!(g.get("vertices").and_then(Json::as_f64), Some(100.0));
        let m = j.get("matching").unwrap();
        assert_eq!(m.get("weight").and_then(Json::as_f64), Some(12.5));
        assert_eq!(
            j.get("metrics")
                .and_then(|ms| ms.get("kernel.edges_scanned"))
                .and_then(|c| c.get("value"))
                .and_then(Json::as_f64),
            Some(1234.0)
        );
    }

    #[test]
    fn phase_total_matches_sim_time() {
        let r = sample();
        let j = r.to_json();
        let total = j.get("phases").and_then(|p| p.get("total")).and_then(Json::as_f64).unwrap();
        let sim_time = j.get("sim_time").and_then(Json::as_f64).unwrap();
        assert!((total - sim_time).abs() < 1e-6);
    }

    #[test]
    fn host_algorithm_has_null_platform() {
        let r = RunReport { platform: None, ..sample() };
        let j = r.to_json();
        assert_eq!(j.get("platform"), Some(&Json::Null));
    }

    #[test]
    fn document_round_trips() {
        let text = sample().to_json().to_string_pretty();
        let parsed = json::parse(&text).unwrap();
        assert_eq!(parsed, sample().to_json());
    }

    #[test]
    fn v5_streaming_metrics_round_trip() {
        // The schema-5 additions: out-of-core streaming metrics must
        // survive a serialize/parse cycle with their values intact.
        let mut r = sample();
        r.metrics.gauge_set(crate::metrics::names::MEM_RESIDENT_BYTES, 8.5e6);
        r.metrics.counter_add(crate::metrics::names::MEM_EVICTIONS, 42);
        r.metrics.gauge_set(crate::metrics::names::COPY_PREFETCH_HIDDEN_TIME, 2.5e-3);
        r.metrics.gauge_set(crate::metrics::names::COPY_PREFETCH_EXPOSED_TIME, 5.0e-4);
        let parsed = json::parse(&r.to_json().to_string_pretty()).unwrap();
        assert_eq!(parsed, r.to_json());
        let ms = parsed.get("metrics").unwrap();
        for (name, want) in [
            ("mem.resident_bytes", 8.5e6),
            ("mem.evictions", 42.0),
            ("copy.prefetch_hidden_time", 2.5e-3),
            ("copy.prefetch_exposed_time", 5.0e-4),
        ] {
            let v = ms.get(name).and_then(|m| m.get("value")).and_then(Json::as_f64);
            assert_eq!(v, Some(want), "{name}");
        }
    }

    #[test]
    fn v2_comm_and_stream_gauges_round_trip() {
        // The schema-2 additions: overlap-engine gauges must survive a
        // serialize/parse cycle with their values intact.
        let mut r = sample();
        r.metrics.gauge_set(crate::metrics::names::COMM_EXPOSED_TIME, 3.25e-4);
        r.metrics.gauge_set(crate::metrics::names::COMM_HIDDEN_TIME, 1.5e-4);
        r.metrics.gauge_set(crate::metrics::names::STREAM_OCCUPANCY, 0.375);
        let parsed = json::parse(&r.to_json().to_string_pretty()).unwrap();
        assert_eq!(parsed, r.to_json());
        let ms = parsed.get("metrics").unwrap();
        for (name, want) in [
            ("comm.exposed_time", 3.25e-4),
            ("comm.hidden_time", 1.5e-4),
            ("stream.occupancy", 0.375),
        ] {
            let v = ms.get(name).and_then(|m| m.get("value")).and_then(Json::as_f64);
            assert_eq!(v, Some(want), "{name}");
        }
    }
}

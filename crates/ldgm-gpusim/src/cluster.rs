//! Multi-node cluster topology: N nodes × M GPUs with per-hop-class links.
//!
//! A single [`crate::Platform`] models one node — a flat peer fabric whose
//! every hop costs the same. [`ClusterTopology`] is the next scale jump
//! (the paper's §V distributed future work): devices are grouped into
//! nodes, pairs on the same node communicate over the NVLink-class
//! `intra` link, and pairs on different nodes over the much slower
//! InfiniBand/EFA-class `inter` link. [`ClusterTopology::hop_class`]
//! resolves a device pair to its [`HopClass`]; the hierarchical
//! collectives in [`crate::SimRuntime`] bill wire bytes and stage
//! durations per class.
//!
//! Device numbering is contiguous per node: device `d` lives on node
//! `d / gpus_per_node`. A run may use fewer devices than the topology
//! holds; the ragged helpers ([`ClusterTopology::devices_on_node`],
//! [`ClusterTopology::nodes_spanned`]) answer per-node counts for a
//! prefix of `ndev` active devices.

use crate::interconnect::Link;

/// Link class of a device pair within a cluster.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum HopClass {
    /// The same device: no wire traffic.
    Local,
    /// Same node: NVLink/NVSwitch-class fabric.
    IntraNode,
    /// Different nodes: InfiniBand/EFA-class fabric.
    InterNode,
}

/// An N-node × M-GPU cluster with one link preset per hop class.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ClusterTopology {
    /// Topology name for reports.
    pub name: &'static str,
    /// Number of nodes.
    pub nodes: usize,
    /// GPUs installed per node.
    pub gpus_per_node: usize,
    /// Intra-node peer fabric (NVLink-class).
    pub intra: Link,
    /// Inter-node fabric (InfiniBand/EFA-class).
    pub inter: Link,
}

impl ClusterTopology {
    /// Build a topology; `nodes` and `gpus_per_node` must be positive.
    pub fn new(
        name: &'static str,
        nodes: usize,
        gpus_per_node: usize,
        intra: Link,
        inter: Link,
    ) -> Self {
        assert!(nodes >= 1, "a cluster needs at least one node");
        assert!(gpus_per_node >= 1, "a node needs at least one GPU");
        ClusterTopology { name, nodes, gpus_per_node, intra, inter }
    }

    /// A cluster of DGX-A100 nodes joined by InfiniBand HDR.
    pub fn dgx_a100_cluster(nodes: usize) -> Self {
        Self::new("DGX-A100-cluster", nodes, 8, Link::NVLINK_SXM4, Link::INFINIBAND_HDR)
    }

    /// A cluster of DGX-H100 nodes joined by InfiniBand HDR.
    pub fn dgx_h100_cluster(nodes: usize) -> Self {
        Self::new("DGX-H100-cluster", nodes, 8, Link::NVLINK_SXM5, Link::INFINIBAND_HDR)
    }

    /// A100 nodes on an AWS-EFA-class cloud fabric (p4d-style).
    pub fn a100_efa_cluster(nodes: usize) -> Self {
        Self::new("A100-EFA-cluster", nodes, 8, Link::NVLINK_SXM4, Link::AWS_EFA)
    }

    /// Total devices in the topology.
    pub fn num_devices(&self) -> usize {
        self.nodes * self.gpus_per_node
    }

    /// The node hosting device `dev`.
    pub fn node_of(&self, dev: usize) -> usize {
        dev / self.gpus_per_node
    }

    /// Link class connecting devices `a` and `b`.
    pub fn hop_class(&self, a: usize, b: usize) -> HopClass {
        if a == b {
            HopClass::Local
        } else if self.node_of(a) == self.node_of(b) {
            HopClass::IntraNode
        } else {
            HopClass::InterNode
        }
    }

    /// The link a device pair communicates over; `None` for local pairs.
    pub fn link(&self, a: usize, b: usize) -> Option<Link> {
        match self.hop_class(a, b) {
            HopClass::Local => None,
            HopClass::IntraNode => Some(self.intra),
            HopClass::InterNode => Some(self.inter),
        }
    }

    /// Nodes spanned by the first `ndev` devices.
    pub fn nodes_spanned(&self, ndev: usize) -> usize {
        ndev.div_ceil(self.gpus_per_node).max(1)
    }

    /// Devices of the first `ndev` that live on `node` (ragged last node).
    pub fn devices_on_node(&self, node: usize, ndev: usize) -> usize {
        let start = node * self.gpus_per_node;
        ndev.saturating_sub(start).min(self.gpus_per_node)
    }

    /// Every exported topology preset with its CLI name, in listing
    /// order — the cluster counterpart of [`crate::Platform::presets`]
    /// behind the `ldgm platforms` listing. Node counts show the 4-node
    /// default; `--nodes N` resizes any of them.
    pub fn presets() -> Vec<(&'static str, ClusterTopology)> {
        vec![
            ("dgx-a100-cluster", Self::dgx_a100_cluster(4)),
            ("dgx-h100-cluster", Self::dgx_h100_cluster(4)),
            ("a100-efa-cluster", Self::a100_efa_cluster(4)),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hop_class_resolves_device_pairs() {
        let t = ClusterTopology::dgx_a100_cluster(2);
        assert_eq!(t.num_devices(), 16);
        assert_eq!(t.hop_class(3, 3), HopClass::Local);
        assert_eq!(t.hop_class(0, 7), HopClass::IntraNode);
        assert_eq!(t.hop_class(7, 8), HopClass::InterNode);
        assert_eq!(t.hop_class(15, 0), HopClass::InterNode);
        assert_eq!(t.link(0, 7), Some(Link::NVLINK_SXM4));
        assert_eq!(t.link(7, 8), Some(Link::INFINIBAND_HDR));
        assert_eq!(t.link(5, 5), None);
    }

    #[test]
    fn ragged_prefixes_split_across_nodes() {
        let t = ClusterTopology::dgx_a100_cluster(4);
        assert_eq!(t.nodes_spanned(1), 1);
        assert_eq!(t.nodes_spanned(8), 1);
        assert_eq!(t.nodes_spanned(9), 2);
        assert_eq!(t.nodes_spanned(32), 4);
        assert_eq!(t.devices_on_node(0, 12), 8);
        assert_eq!(t.devices_on_node(1, 12), 4);
        assert_eq!(t.devices_on_node(2, 12), 0);
    }

    #[test]
    fn presets_cover_link_classes() {
        let presets = ClusterTopology::presets();
        assert_eq!(presets.len(), 3);
        for (name, t) in &presets {
            assert!(!name.is_empty());
            assert!(t.intra.bw_gbps > t.inter.bw_gbps, "{name}: intra must outrun inter");
        }
        assert!(presets.iter().any(|(_, t)| t.inter == Link::AWS_EFA));
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        ClusterTopology::new("bad", 0, 8, Link::NVLINK_SXM4, Link::INFINIBAND_HDR);
    }
}

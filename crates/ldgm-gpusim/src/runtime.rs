//! The shared device-execution runtime every simulated engine runs on.
//!
//! [`SimRuntime`] owns the pieces the engines used to hand-roll
//! individually — per-device [`DeviceTimer`]s, the event [`Trace`], the
//! [`MetricsRegistry`] and the phase attribution — and exposes typed
//! operations that execute host-side work and bill simulated time in one
//! place: [`DeviceCtx::launch_kernel`], [`DeviceCtx::h2d_copy`],
//! [`DeviceCtx::host_sync`], [`SimRuntime::barrier_wait`] and
//! [`SimRuntime::allreduce`] (dense and sparse). Engines keep their
//! algorithm logic and their *semantic* counters (pointers set, edges
//! committed); everything mechanical — kernel-time billing, trace spans,
//! wire-byte math, occupancy aggregation, stall accounting — happens
//! here, under the shared [`crate::metrics::names`] schema.
//!
//! [`SimRuntime::finish`] derives the [`crate::PhaseBreakdown`] from the
//! recorded timeline via [`timeline_breakdown`], so the report invariant
//! `phases.total() == sim_time` holds *by construction* for every engine:
//! the runtime always records an internal trace (returned to the caller
//! only when requested via [`SimRuntime::with_trace`]), partitions each
//! device's wall interval `[0, sim_time]` into phases, and averages
//! across devices.
//!
//! Kernel spans whose label contains `"mate"` are attributed to the
//! `matching` phase; all other kernels count as `pointing` (the
//! convention of [`timeline_breakdown`]).

use std::borrow::Cow;

use crate::collective::CommModel;
use crate::device::{CostModel, DeviceSpec, KernelStats};
use crate::export::timeline_breakdown;
use crate::interconnect::Link;
use crate::metrics::{names, MetricsRegistry};
use crate::platform::Platform;
use crate::profile::{IterationRecord, RunProfile};
use crate::timer::DeviceTimer;
use crate::trace::{EventKind, Trace};

/// Kernel-side counters a device accumulates across launches, folded into
/// the registry once at [`SimRuntime::finish`].
#[derive(Clone, Copy, Debug, Default)]
struct LaunchTotals {
    edges_scanned: u64,
    warps_launched: u64,
    bytes_moved: u64,
}

impl LaunchTotals {
    fn add(&mut self, stats: &KernelStats) {
        self.edges_scanned += stats.edges_scanned;
        self.warps_launched += stats.warps_launched;
        self.bytes_moved += stats.bytes_read + stats.bytes_written;
    }
}

/// Billing outcome of one kernel launch.
#[derive(Clone, Copy, Debug)]
pub struct KernelLaunch {
    /// Simulated start time (seconds).
    pub start: f64,
    /// Simulated end time (seconds).
    pub end: f64,
    /// Billed duration, `end - start`.
    pub duration: f64,
    /// Achieved-occupancy estimate of the launch (0..=1).
    pub occupancy: f64,
}

/// Execution context of one simulated device: its timeline, its slice of
/// the trace, and its accumulated kernel totals.
///
/// A `DeviceCtx` can be detached from the runtime
/// ([`SimRuntime::detach_devices`]) and moved into a per-device worker —
/// it owns everything it bills against, so devices proceed independently
/// (e.g. under rayon) and re-attach afterwards.
#[derive(Clone, Debug)]
pub struct DeviceCtx {
    dev: usize,
    spec: DeviceSpec,
    cost: CostModel,
    h2d: Link,
    kernel_overhead: f64,
    detailed: bool,
    timer: DeviceTimer,
    trace: Trace,
    totals: LaunchTotals,
    occ_weighted: f64,
    occ_weight: f64,
}

impl DeviceCtx {
    /// Device index within the runtime.
    pub fn index(&self) -> usize {
        self.dev
    }

    /// Build a span label lazily: the allocated `detail` string is only
    /// materialized when the caller asked for the trace back
    /// ([`SimRuntime::with_trace`]); otherwise the static `base` is
    /// recorded, keeping the always-on internal trace allocation-free on
    /// the hot path. Phase attribution only inspects static substrings
    /// (`"mate"`), so billing is identical either way.
    pub fn label(&self, base: &'static str, detail: impl FnOnce() -> String) -> Cow<'static, str> {
        if self.detailed {
            Cow::Owned(detail())
        } else {
            Cow::Borrowed(base)
        }
    }

    /// Completion time of everything scheduled on this device so far.
    pub fn horizon(&self) -> f64 {
        self.timer.horizon()
    }

    /// Schedule an async host-to-device copy of `bytes` into stream
    /// buffer `buf` over the platform's host link. Returns `(start, end)`.
    pub fn h2d_copy(
        &mut self,
        buf: usize,
        bytes: u64,
        label: impl Into<Cow<'static, str>>,
    ) -> (f64, f64) {
        let (s, e) = self.timer.schedule_h2d(buf, bytes, &self.h2d);
        self.trace.record(self.dev, EventKind::H2dCopy, label, s, e);
        (s, e)
    }

    /// Execute-and-bill one kernel launch described by `stats`: the
    /// duration comes from the device cost model (times the engine's
    /// kernel-overhead factor), the launch is scheduled against stream
    /// buffer `buf` (or the global compute queue when `None`, e.g.
    /// SETMATES-style kernels over resident arrays), and the kernel-side
    /// counters (`kernel.edges_scanned`, `kernel.warps_launched`,
    /// `kernel.bytes_moved`) plus the warp-weighted occupancy gauge are
    /// accumulated for [`SimRuntime::finish`].
    pub fn launch_kernel(
        &mut self,
        buf: Option<usize>,
        label: impl Into<Cow<'static, str>>,
        stats: &KernelStats,
    ) -> KernelLaunch {
        let dur = self.spec.kernel_time(&self.cost, stats) * self.kernel_overhead;
        let (s, e) = match buf {
            Some(b) => self.timer.schedule_kernel(b, dur),
            None => self.timer.schedule_kernel_global(dur),
        };
        self.trace.record(self.dev, EventKind::Kernel, label, s, e);
        self.totals.add(stats);
        let occ = self.spec.occupancy(&self.cost, stats);
        self.occ_weighted += occ * stats.warps_launched as f64;
        self.occ_weight += stats.warps_launched as f64;
        KernelLaunch { start: s, end: e, duration: dur, occupancy: occ }
    }

    /// Schedule a kernel span of an explicitly modeled duration (no
    /// [`KernelStats`] billing) on the global compute queue — for
    /// analytically derived serialization tails. Labels containing
    /// `"mate"` land in the `matching` phase.
    pub fn fixed_kernel(&mut self, label: impl Into<Cow<'static, str>>, dur: f64) -> (f64, f64) {
        let (s, e) = self.timer.schedule_kernel_global(dur);
        self.trace.record(self.dev, EventKind::Kernel, label, s, e);
        (s, e)
    }

    /// Explicit host-device synchronization at the platform's
    /// `host_sync_us` cost: waits for all outstanding work, then bills the
    /// sync. Returns `(start, end)` of the sync span.
    pub fn host_sync(&mut self, label: impl Into<Cow<'static, str>>) -> (f64, f64) {
        let cost = self.cost.host_sync_us * 1e-6;
        self.host_sync_with(label, cost)
    }

    /// [`DeviceCtx::host_sync`] with an explicit cost in seconds — for
    /// engines that batch many driver round-trips into one span.
    pub fn host_sync_with(&mut self, label: impl Into<Cow<'static, str>>, cost: f64) -> (f64, f64) {
        let before = self.timer.horizon();
        self.timer.host_sync(cost);
        self.trace.record(self.dev, EventKind::HostSync, label, before, before + cost);
        (before, before + cost)
    }

    /// Fixed host round-trip overhead of one kernel launch plus one host
    /// sync, in seconds — the per-round cost of round-based algorithms.
    pub fn per_round_overhead(&self) -> f64 {
        (self.cost.kernel_launch_us + self.cost.host_sync_us) * 1e-6
    }

    /// Wait for all outstanding work without extra cost.
    pub fn drain(&mut self) {
        self.timer.drain();
    }
}

/// What [`SimRuntime::finish`] returns: the end-to-end simulated time,
/// the profile whose phase breakdown sums to `sim_time` by construction,
/// the filled metrics registry, and the trace when requested.
#[derive(Clone, Debug)]
pub struct RunFinish {
    /// End-to-end simulated time (max over device horizons).
    pub sim_time: f64,
    /// Phase breakdown (timeline-derived), per-iteration records and
    /// `sim_time`.
    pub profile: RunProfile,
    /// All metrics billed by the runtime and the engine.
    pub metrics: MetricsRegistry,
    /// The event timeline, when [`SimRuntime::with_trace`] asked for it.
    pub trace: Option<Trace>,
}

/// The shared execution/billing substrate for simulated engines: a
/// platform instantiated onto `ndev` device contexts plus the collective
/// fabric between them. See the [module docs](self) for the design.
#[derive(Clone, Debug)]
pub struct SimRuntime {
    devices: Vec<DeviceCtx>,
    comm: CommModel,
    peer: Link,
    metrics: MetricsRegistry,
    iterations: Vec<IterationRecord>,
    keep_trace: bool,
}

impl SimRuntime {
    /// Instantiate `platform` onto `ndev` devices, all at t = 0.
    pub fn new(platform: &Platform, ndev: usize) -> Self {
        assert!(ndev >= 1, "a runtime needs at least one device");
        let devices = (0..ndev)
            .map(|dev| DeviceCtx {
                dev,
                spec: platform.device.clone(),
                cost: platform.cost.clone(),
                h2d: platform.interconnect.h2d,
                kernel_overhead: 1.0,
                detailed: false,
                timer: DeviceTimer::new(),
                trace: Trace::default(),
                totals: LaunchTotals::default(),
                occ_weighted: 0.0,
                occ_weight: 0.0,
            })
            .collect();
        SimRuntime {
            devices,
            comm: platform.comm,
            peer: platform.interconnect.peer,
            metrics: MetricsRegistry::new(),
            iterations: Vec::new(),
            keep_trace: false,
        }
    }

    /// Multiply every kernel duration by `factor` (software-stack
    /// inefficiency knobs, e.g. the cuGraph emulation).
    pub fn with_kernel_overhead(mut self, factor: f64) -> Self {
        for d in &mut self.devices {
            d.kernel_overhead = factor;
        }
        self
    }

    /// Whether [`SimRuntime::finish`] returns the recorded trace. The
    /// runtime always records internally (phase attribution needs it);
    /// this only controls what the caller gets back — and whether the
    /// lazy [`DeviceCtx::label`]/[`SimRuntime::label`] helpers materialize
    /// detailed (allocated) span labels.
    pub fn with_trace(mut self, keep: bool) -> Self {
        self.keep_trace = keep;
        for d in &mut self.devices {
            d.detailed = keep;
        }
        self
    }

    /// Runtime-level counterpart of [`DeviceCtx::label`]: materialize the
    /// allocated `detail` label only when the trace will be returned to
    /// the caller.
    pub fn label(&self, base: &'static str, detail: impl FnOnce() -> String) -> Cow<'static, str> {
        if self.keep_trace {
            Cow::Owned(detail())
        } else {
            Cow::Borrowed(base)
        }
    }

    /// Number of devices.
    pub fn num_devices(&self) -> usize {
        self.devices.len()
    }

    /// Completion time of everything scheduled so far, across devices.
    pub fn horizon(&self) -> f64 {
        self.devices.iter().map(DeviceCtx::horizon).fold(0.0, f64::max)
    }

    /// Mutable access to one device's context.
    pub fn device(&mut self, dev: usize) -> &mut DeviceCtx {
        &mut self.devices[dev]
    }

    /// Take ownership of all device contexts — for fan-out into
    /// per-device workers. The runtime is unusable for device operations
    /// until [`SimRuntime::attach_devices`] hands them back.
    pub fn detach_devices(&mut self) -> Vec<DeviceCtx> {
        std::mem::take(&mut self.devices)
    }

    /// Re-attach the contexts taken by [`SimRuntime::detach_devices`], in
    /// device order.
    pub fn attach_devices(&mut self, devices: Vec<DeviceCtx>) {
        debug_assert!(self.devices.is_empty(), "attach over live devices");
        debug_assert!(
            devices.iter().enumerate().all(|(i, d)| d.dev == i),
            "devices re-attached out of order"
        );
        self.devices = devices;
    }

    /// Launch one kernel of identical duration on *every* device (bulk
    /// synchronous steps over replicated arrays, e.g. SETMATES): the
    /// duration comes from `stats` on the device cost model, the kernel
    /// counters are billed once (the work exists once, replicated), and a
    /// span is recorded per device. Returns the billed duration.
    pub fn global_kernel(
        &mut self,
        label: impl Into<Cow<'static, str>>,
        stats: &KernelStats,
    ) -> f64 {
        let label = label.into();
        let dur = {
            let d0 = &self.devices[0];
            d0.spec.kernel_time(&d0.cost, stats) * d0.kernel_overhead
        };
        for d in &mut self.devices {
            let (s, e) = d.timer.schedule_kernel_global(dur);
            d.trace.record(d.dev, EventKind::Kernel, label.clone(), s, e);
        }
        self.metrics.counter_add(names::KERNEL_EDGES_SCANNED, stats.edges_scanned);
        self.metrics.counter_add(names::KERNEL_WARPS_LAUNCHED, stats.warps_launched);
        self.metrics.counter_add(names::KERNEL_BYTES_MOVED, stats.bytes_read + stats.bytes_written);
        dur
    }

    /// Ring-allreduce a replicated payload of `payload_bytes` across all
    /// devices: every timeline aligns to the common completion point, and
    /// the collective metrics are billed — one call, plus
    /// `2 (p-1) × payload` wire bytes (zero on a single device, where the
    /// ring degenerates to a local pass). Returns `(start, end)`.
    pub fn allreduce(
        &mut self,
        label: impl Into<Cow<'static, str>>,
        payload_bytes: u64,
    ) -> (f64, f64) {
        let label = label.into();
        let ndev = self.devices.len();
        let cost = self.comm.allreduce_time(&self.peer, ndev, payload_bytes);
        let start = self.horizon();
        let end = start + cost;
        for d in &mut self.devices {
            d.timer.align_to(end);
            d.trace.record(d.dev, EventKind::Collective, label.clone(), start, end);
        }
        self.metrics.counter_add(names::COMM_ALLREDUCE_CALLS, 1);
        self.metrics
            .counter_add(names::COMM_COLLECTIVE_BYTES, 2 * (ndev as u64 - 1) * payload_bytes);
        (start, end)
    }

    /// Sparse allreduce: `entries` indexed values of `bytes_per_entry`
    /// each — the frontier-restricted collectives of incremental engines.
    /// Billing is the dense path over the packed payload.
    pub fn allreduce_sparse(
        &mut self,
        label: impl Into<Cow<'static, str>>,
        entries: u64,
        bytes_per_entry: u64,
    ) -> (f64, f64) {
        self.allreduce(label, entries * bytes_per_entry)
    }

    /// Barrier: every device waits (free of charge) for the slowest one.
    /// The imbalance wait surfaces as idle time attributed to the `sync`
    /// phase by the timeline breakdown. Returns the summed wait.
    pub fn barrier_wait(&mut self) -> f64 {
        let t = self.horizon();
        let mut waited = 0.0;
        for d in &mut self.devices {
            waited += t - d.timer.horizon();
            d.timer.align_to(t);
        }
        waited
    }

    /// Record one iteration of the matching progression.
    pub fn push_iteration(&mut self, rec: IterationRecord) {
        self.iterations.push(rec);
    }

    /// Add `delta` to a counter (engine-semantic metrics).
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        self.metrics.counter_add(name, delta);
    }

    /// Set a gauge.
    pub fn gauge_set(&mut self, name: &str, value: f64) {
        self.metrics.gauge_set(name, value);
    }

    /// Record a histogram sample.
    pub fn observe(&mut self, name: &str, sample: f64) {
        self.metrics.observe(name, sample);
    }

    /// The livelock invariant every fixed-point engine shares: an
    /// iteration that found work to do must commit progress, or the
    /// driver would spin forever. Under the canonical total-order
    /// tie-breaking this cannot fire; it replaces per-engine ad-hoc
    /// assertion/break pairs.
    ///
    /// # Panics
    /// When `progress == 0`.
    pub fn assert_progress(&self, progress: u64, context: &str) {
        assert!(progress > 0, "livelock: {context} made no progress");
    }

    /// Close the run: drain every device, fold the accumulated kernel
    /// totals, stalls and occupancy into the registry, and derive the
    /// phase breakdown from the recorded timeline — which guarantees
    /// `profile.phases.total() == sim_time` up to floating-point
    /// rounding, for every engine, whether or not tracing was requested.
    pub fn finish(mut self) -> RunFinish {
        let mut trace = Trace::default();
        let mut totals = LaunchTotals::default();
        let mut occ_weighted = 0.0;
        let mut occ_weight = 0.0;
        let mut stalls = 0u64;
        let mut stall_time = 0.0;
        let mut sim_time = 0.0f64;
        let ndev = self.devices.len();
        for d in &mut self.devices {
            d.timer.drain();
            sim_time = sim_time.max(d.timer.horizon());
            totals.edges_scanned += d.totals.edges_scanned;
            totals.warps_launched += d.totals.warps_launched;
            totals.bytes_moved += d.totals.bytes_moved;
            occ_weighted += d.occ_weighted;
            occ_weight += d.occ_weight;
            stalls += d.timer.buffer_stalls();
            stall_time += d.timer.buffer_stall_time();
            trace.merge(std::mem::take(&mut d.trace));
        }
        let m = &mut self.metrics;
        m.counter_add(names::KERNEL_EDGES_SCANNED, totals.edges_scanned);
        m.counter_add(names::KERNEL_WARPS_LAUNCHED, totals.warps_launched);
        m.counter_add(names::KERNEL_BYTES_MOVED, totals.bytes_moved);
        // Schema parity across engines: the wire-traffic counter exists
        // even for runs that never issued a collective.
        m.counter_add(names::COMM_COLLECTIVE_BYTES, 0);
        m.counter_add(names::TIMER_BUFFER_STALLS, stalls);
        m.gauge_set(names::TIMER_BUFFER_STALL_TIME, stall_time);
        m.gauge_set(
            names::KERNEL_OCCUPANCY,
            if occ_weight > 0.0 { occ_weighted / occ_weight } else { 0.0 },
        );
        m.gauge_set(names::DRIVER_DEVICES, ndev as f64);
        let phases = timeline_breakdown(&trace, sim_time);
        debug_assert!(
            (phases.total() - sim_time).abs() <= 1e-9 * sim_time.max(1.0),
            "phase attribution lost time: {} vs {}",
            phases.total(),
            sim_time
        );
        RunFinish {
            sim_time,
            profile: RunProfile { phases, iterations: self.iterations, sim_time },
            metrics: self.metrics,
            trace: self.keep_trace.then_some(trace),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::Platform;

    fn stats(vertices: u64) -> KernelStats {
        KernelStats {
            vertices,
            vertices_processed: vertices,
            warps_launched: vertices.div_ceil(4),
            warps_active: vertices.div_ceil(4),
            edge_waves: vertices,
            edges_scanned: vertices * 8,
            warp_edges_sumsq: 0.0,
            max_warp_waves: 4,
            max_warp_vertices: 4,
            bytes_read: vertices * 64,
            bytes_written: vertices * 8,
        }
    }

    #[test]
    fn phases_total_equals_sim_time_by_construction() {
        let mut rt = SimRuntime::new(&Platform::dgx_a100(), 2);
        for d in 0..2 {
            rt.device(d).h2d_copy(0, 1 << 20, "copy b0");
            rt.device(d).launch_kernel(
                Some(0),
                format!("point b0 d{d}"),
                &stats(1000 * (d as u64 + 1)),
            );
        }
        rt.barrier_wait();
        rt.allreduce("allreduce ptr", 8 << 10);
        rt.global_kernel("setmates", &stats(100));
        rt.device(0).host_sync("sync");
        let fin = rt.finish();
        assert!(fin.sim_time > 0.0);
        assert!(
            (fin.profile.phases.total() - fin.sim_time).abs() <= 1e-12 * fin.sim_time,
            "total {} vs sim_time {}",
            fin.profile.phases.total(),
            fin.sim_time
        );
        // Every phase class got exercised.
        let p = fin.profile.phases;
        assert!(p.pointing > 0.0 && p.matching > 0.0 && p.allreduce > 0.0);
    }

    #[test]
    fn kernel_counters_and_occupancy_fold_into_metrics() {
        let mut rt = SimRuntime::new(&Platform::dgx_a100(), 1);
        let s = stats(512);
        rt.device(0).launch_kernel(None, "point", &s);
        let fin = rt.finish();
        assert_eq!(fin.metrics.counter(names::KERNEL_EDGES_SCANNED), s.edges_scanned);
        assert_eq!(fin.metrics.counter(names::KERNEL_WARPS_LAUNCHED), s.warps_launched);
        assert_eq!(fin.metrics.counter(names::KERNEL_BYTES_MOVED), s.bytes_read + s.bytes_written);
        let occ = fin.metrics.gauge(names::KERNEL_OCCUPANCY).unwrap();
        assert!((0.0..=1.0).contains(&occ));
        assert!(occ > 0.0);
        assert_eq!(fin.metrics.gauge(names::DRIVER_DEVICES), Some(1.0));
    }

    #[test]
    fn allreduce_wire_bytes_follow_ring_formula() {
        let mut rt = SimRuntime::new(&Platform::dgx_a100(), 4);
        rt.allreduce("allreduce ptr", 1000);
        let fin = rt.finish();
        assert_eq!(fin.metrics.counter(names::COMM_ALLREDUCE_CALLS), 1);
        assert_eq!(fin.metrics.counter(names::COMM_COLLECTIVE_BYTES), 2 * 3 * 1000);
    }

    #[test]
    fn single_device_collectives_carry_no_wire_bytes() {
        let mut rt = SimRuntime::new(&Platform::dgx_a100(), 1);
        rt.allreduce("allreduce ptr", 1000);
        rt.allreduce_sparse("allreduce frontier", 10, 16);
        let fin = rt.finish();
        assert_eq!(fin.metrics.counter(names::COMM_ALLREDUCE_CALLS), 2);
        assert_eq!(fin.metrics.counter(names::COMM_COLLECTIVE_BYTES), 0);
    }

    #[test]
    fn barrier_reports_imbalance_wait() {
        let mut rt = SimRuntime::new(&Platform::dgx_a100(), 2);
        rt.device(0).fixed_kernel("point", 2.0);
        let waited = rt.barrier_wait();
        assert!((waited - 2.0).abs() < 1e-12, "waited {waited}");
        assert_eq!(rt.device(1).horizon(), 2.0);
    }

    #[test]
    fn detach_reattach_round_trips() {
        let mut rt = SimRuntime::new(&Platform::dgx_a100(), 3);
        let mut ctxs = rt.detach_devices();
        assert_eq!(ctxs.len(), 3);
        for c in &mut ctxs {
            c.fixed_kernel("point", 0.5 * (c.index() + 1) as f64);
        }
        rt.attach_devices(ctxs);
        assert!((rt.horizon() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn trace_returned_only_when_requested() {
        let mk = |keep: bool| {
            let mut rt = SimRuntime::new(&Platform::dgx_a100(), 1).with_trace(keep);
            rt.device(0).fixed_kernel("point", 1.0);
            rt.finish()
        };
        assert!(mk(false).trace.is_none());
        let fin = mk(true);
        let trace = fin.trace.expect("trace requested");
        assert_eq!(trace.events.len(), 1);
        let (_, hi) = trace.span().unwrap();
        assert!((hi - fin.sim_time).abs() < 1e-12);
        // The breakdown still sums to sim_time either way.
        assert!((fin.profile.phases.total() - fin.sim_time).abs() < 1e-12);
    }

    #[test]
    fn kernel_overhead_scales_durations() {
        let run = |overhead: f64| {
            let mut rt = SimRuntime::new(&Platform::dgx_a100(), 1).with_kernel_overhead(overhead);
            rt.device(0).launch_kernel(None, "point", &stats(4096));
            rt.finish().sim_time
        };
        let base = run(1.0);
        let slow = run(3.0);
        assert!((slow - 3.0 * base).abs() < 1e-12 * slow, "base {base} slow {slow}");
    }

    #[test]
    fn empty_runtime_finishes_clean() {
        let fin = SimRuntime::new(&Platform::dgx_a100(), 4).finish();
        assert_eq!(fin.sim_time, 0.0);
        assert_eq!(fin.profile.phases.total(), 0.0);
        assert_eq!(fin.metrics.counter(names::COMM_COLLECTIVE_BYTES), 0);
        assert_eq!(fin.metrics.gauge(names::KERNEL_OCCUPANCY), Some(0.0));
    }

    #[test]
    #[should_panic(expected = "livelock")]
    fn progress_invariant_trips_on_stall() {
        SimRuntime::new(&Platform::dgx_a100(), 1).assert_progress(0, "iteration 3");
    }
}

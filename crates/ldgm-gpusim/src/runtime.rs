//! The shared device-execution runtime every simulated engine runs on.
//!
//! [`SimRuntime`] owns the pieces the engines used to hand-roll
//! individually — per-device [`DeviceTimer`]s, the event [`Trace`], the
//! [`MetricsRegistry`] and the phase attribution — and exposes typed
//! operations that execute host-side work and bill simulated time in one
//! place: [`DeviceCtx::launch_kernel`], [`DeviceCtx::h2d_copy`],
//! [`DeviceCtx::host_sync`], [`SimRuntime::barrier_wait`] and
//! [`SimRuntime::allreduce`] (dense and sparse). Engines keep their
//! algorithm logic and their *semantic* counters (pointers set, edges
//! committed); everything mechanical — kernel-time billing, trace spans,
//! wire-byte math, occupancy aggregation, stall accounting — happens
//! here, under the shared [`crate::metrics::names`] schema.
//!
//! [`SimRuntime::finish`] derives the [`crate::PhaseBreakdown`] from the
//! recorded timeline via [`timeline_breakdown`], so the report invariant
//! `phases.total() == sim_time` holds *by construction* for every engine:
//! the runtime always records an internal trace (returned to the caller
//! only when requested via [`SimRuntime::with_trace`]), partitions each
//! device's wall interval `[0, sim_time]` into phases, and averages
//! across devices.
//!
//! Kernel spans whose label contains `"mate"` are attributed to the
//! `matching` phase; all other kernels count as `pointing` (the
//! convention of [`timeline_breakdown`]).

use std::borrow::Cow;

use crate::cluster::ClusterTopology;
use crate::collective::CommModel;
use crate::device::{CostModel, DeviceSpec, KernelStats};
use crate::export::timeline_breakdown;
use crate::interconnect::Link;
use crate::metrics::{names, MetricsRegistry};
use crate::platform::Platform;
use crate::profile::{IterationRecord, RunProfile};
use crate::timer::DeviceTimer;
use crate::trace::{EventKind, Trace};

/// Kernel-side counters a device accumulates across launches, folded into
/// the registry once at [`SimRuntime::finish`].
#[derive(Clone, Copy, Debug, Default)]
struct LaunchTotals {
    edges_scanned: u64,
    warps_launched: u64,
    bytes_moved: u64,
}

impl LaunchTotals {
    fn add(&mut self, stats: &KernelStats) {
        self.edges_scanned += stats.edges_scanned;
        self.warps_launched += stats.warps_launched;
        self.bytes_moved += stats.bytes_read + stats.bytes_written;
    }
}

/// Billing outcome of one kernel launch.
#[derive(Clone, Copy, Debug)]
pub struct KernelLaunch {
    /// Simulated start time (seconds).
    pub start: f64,
    /// Simulated end time (seconds).
    pub end: f64,
    /// Billed duration, `end - start`.
    pub duration: f64,
    /// Achieved-occupancy estimate of the launch (0..=1).
    pub occupancy: f64,
}

/// Execution context of one simulated device: its timeline, its slice of
/// the trace, and its accumulated kernel totals.
///
/// A `DeviceCtx` can be detached from the runtime
/// ([`SimRuntime::detach_devices`]) and moved into a per-device worker —
/// it owns everything it bills against, so devices proceed independently
/// (e.g. under rayon) and re-attach afterwards.
#[derive(Clone, Debug)]
pub struct DeviceCtx {
    dev: usize,
    spec: DeviceSpec,
    cost: CostModel,
    h2d: Link,
    kernel_overhead: f64,
    detailed: bool,
    timer: DeviceTimer,
    trace: Trace,
    totals: LaunchTotals,
    occ_weighted: f64,
    occ_weight: f64,
}

impl DeviceCtx {
    /// Device index within the runtime.
    pub fn index(&self) -> usize {
        self.dev
    }

    /// Build a span label lazily: the allocated `detail` string is only
    /// materialized when the caller asked for the trace back
    /// ([`SimRuntime::with_trace`]); otherwise the static `base` is
    /// recorded, keeping the always-on internal trace allocation-free on
    /// the hot path. Phase attribution only inspects static substrings
    /// (`"mate"`), so billing is identical either way.
    pub fn label(&self, base: &'static str, detail: impl FnOnce() -> String) -> Cow<'static, str> {
        if self.detailed {
            Cow::Owned(detail())
        } else {
            Cow::Borrowed(base)
        }
    }

    /// Completion time of everything scheduled on this device so far.
    pub fn horizon(&self) -> f64 {
        self.timer.horizon()
    }

    /// Schedule an async host-to-device copy of `bytes` into stream
    /// buffer `buf` over the platform's host link. Returns `(start, end)`.
    pub fn h2d_copy(
        &mut self,
        buf: usize,
        bytes: u64,
        label: impl Into<Cow<'static, str>>,
    ) -> (f64, f64) {
        let (s, e) = self.timer.schedule_h2d(buf, bytes, &self.h2d);
        self.trace.record(self.dev, EventKind::H2dCopy, label, s, e);
        (s, e)
    }

    /// Execute-and-bill one kernel launch described by `stats`: the
    /// duration comes from the device cost model (times the engine's
    /// kernel-overhead factor), the launch is scheduled against stream
    /// buffer `buf` (or the global compute queue when `None`, e.g.
    /// SETMATES-style kernels over resident arrays), and the kernel-side
    /// counters (`kernel.edges_scanned`, `kernel.warps_launched`,
    /// `kernel.bytes_moved`) plus the warp-weighted occupancy gauge are
    /// accumulated for [`SimRuntime::finish`].
    pub fn launch_kernel(
        &mut self,
        buf: Option<usize>,
        label: impl Into<Cow<'static, str>>,
        stats: &KernelStats,
    ) -> KernelLaunch {
        let dur = self.spec.kernel_time(&self.cost, stats) * self.kernel_overhead;
        let (s, e) = match buf {
            Some(b) => self.timer.schedule_kernel(b, dur),
            None => self.timer.schedule_kernel_global(dur),
        };
        self.trace.record(self.dev, EventKind::Kernel, label, s, e);
        self.totals.add(stats);
        let occ = self.spec.occupancy(&self.cost, stats);
        self.occ_weighted += occ * stats.warps_launched as f64;
        self.occ_weight += stats.warps_launched as f64;
        KernelLaunch { start: s, end: e, duration: dur, occupancy: occ }
    }

    /// Schedule a kernel span of an explicitly modeled duration (no
    /// [`KernelStats`] billing) on the global compute queue — for
    /// analytically derived serialization tails. Labels containing
    /// `"mate"` land in the `matching` phase.
    pub fn fixed_kernel(&mut self, label: impl Into<Cow<'static, str>>, dur: f64) -> (f64, f64) {
        let (s, e) = self.timer.schedule_kernel_global(dur);
        self.trace.record(self.dev, EventKind::Kernel, label, s, e);
        (s, e)
    }

    /// Explicit host-device synchronization at the platform's
    /// `host_sync_us` cost: waits for all outstanding work, then bills the
    /// sync. Returns `(start, end)` of the sync span.
    pub fn host_sync(&mut self, label: impl Into<Cow<'static, str>>) -> (f64, f64) {
        let cost = self.cost.host_sync_us * 1e-6;
        self.host_sync_with(label, cost)
    }

    /// [`DeviceCtx::host_sync`] with an explicit cost in seconds — for
    /// engines that batch many driver round-trips into one span.
    pub fn host_sync_with(&mut self, label: impl Into<Cow<'static, str>>, cost: f64) -> (f64, f64) {
        let before = self.timer.horizon();
        self.timer.host_sync(cost);
        self.trace.record(self.dev, EventKind::HostSync, label, before, before + cost);
        (before, before + cost)
    }

    /// Fixed host round-trip overhead of one kernel launch plus one host
    /// sync, in seconds — the per-round cost of round-based algorithms.
    pub fn per_round_overhead(&self) -> f64 {
        (self.cost.kernel_launch_us + self.cost.host_sync_us) * 1e-6
    }

    /// Wait for all outstanding work without extra cost.
    pub fn drain(&mut self) {
        self.timer.drain();
    }

    /// Completion time of this device's compute queue (kernels + host
    /// progress, ignoring in-flight copies and collectives) — the ready
    /// time of a payload the last kernel produced.
    pub fn compute_done(&self) -> f64 {
        self.timer.compute_done()
    }
}

/// One slice of an overlapped collective: `bytes` of payload that became
/// reducible at simulated time `ready` (its producer kernel's end).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CommChunk {
    /// Packed payload bytes of the slice.
    pub bytes: u64,
    /// Simulated time the slice's producer finished (0.0 for slices that
    /// were already resident, e.g. unchanged dense array regions).
    pub ready: f64,
}

/// What [`SimRuntime::finish`] returns: the end-to-end simulated time,
/// the profile whose phase breakdown sums to `sim_time` by construction,
/// the filled metrics registry, and the trace when requested.
#[derive(Clone, Debug)]
pub struct RunFinish {
    /// End-to-end simulated time (max over device horizons).
    pub sim_time: f64,
    /// Phase breakdown (timeline-derived), per-iteration records and
    /// `sim_time`.
    pub profile: RunProfile,
    /// All metrics billed by the runtime and the engine.
    pub metrics: MetricsRegistry,
    /// The event timeline, when [`SimRuntime::with_trace`] asked for it.
    pub trace: Option<Trace>,
}

/// The shared execution/billing substrate for simulated engines: a
/// platform instantiated onto `ndev` device contexts plus the collective
/// fabric between them. See the [module docs](self) for the design.
#[derive(Clone, Debug)]
pub struct SimRuntime {
    devices: Vec<DeviceCtx>,
    comm: CommModel,
    peer: Link,
    topo: Option<ClusterTopology>,
    inter_cut: f64,
    metrics: MetricsRegistry,
    iterations: Vec<IterationRecord>,
    keep_trace: bool,
    comm_exposed: f64,
    comm_hidden: f64,
    comm_inter: f64,
}

/// Billing plan of one collective on a multi-node topology: the total
/// schedule cost, the seconds of its inter-node stage, and the wire
/// bytes split by hop class.
#[derive(Clone, Copy, Debug)]
struct HierBill {
    cost: f64,
    inter_time: f64,
    intra_bytes: u64,
    inter_bytes: u64,
    fallback: bool,
}

impl SimRuntime {
    /// Instantiate `platform` onto `ndev` devices, all at t = 0.
    pub fn new(platform: &Platform, ndev: usize) -> Self {
        assert!(ndev >= 1, "a runtime needs at least one device");
        let devices = (0..ndev)
            .map(|dev| DeviceCtx {
                dev,
                spec: platform.device.clone(),
                cost: platform.cost.clone(),
                h2d: platform.interconnect.h2d,
                kernel_overhead: 1.0,
                detailed: false,
                timer: DeviceTimer::new(),
                trace: Trace::default(),
                totals: LaunchTotals::default(),
                occ_weighted: 0.0,
                occ_weight: 0.0,
            })
            .collect();
        SimRuntime {
            devices,
            comm: platform.comm,
            peer: platform.interconnect.peer,
            topo: platform.cluster_topology(),
            inter_cut: 1.0,
            metrics: MetricsRegistry::new(),
            iterations: Vec::new(),
            keep_trace: false,
            comm_exposed: 0.0,
            comm_hidden: 0.0,
            comm_inter: 0.0,
        }
    }

    /// Fraction of each collective payload that actually crosses the
    /// inter-node link (the partition's node-boundary fraction, set by
    /// topology-aware placement). Intra-node stages always carry the
    /// full payload; only the leader ring over the slow link shrinks.
    /// Clamped to `[0, 1]`; the default of 1.0 is the conservative
    /// "everything is remote" assumption.
    pub fn set_inter_cut(&mut self, frac: f64) {
        self.inter_cut = frac.clamp(0.0, 1.0);
    }

    /// Bill plan for one `payload_bytes` collective on the cluster
    /// topology, or `None` when the runtime is flat (no topology, a
    /// non-hierarchical comm model, or every device on one node).
    ///
    /// The hierarchical schedule is reduce-scatter + allgather within
    /// each node over the fast intra-node link, then a ring across the
    /// node leaders over `topo.inter`, then the broadcast back (folded
    /// into the intra allgather). Mirrors
    /// [`CommModel::Hierarchical`]'s closed form, with the inter-node
    /// payload scaled by [`SimRuntime::set_inter_cut`]. If a flat ring
    /// over the slow link beats that schedule (tiny payloads, where the
    /// second launch dominates), fall back to it — the planner is never
    /// slower than flat.
    fn hier_bill(&self, payload_bytes: u64) -> Option<HierBill> {
        let topo = self.topo?;
        let ndev = self.devices.len();
        let gpn = topo.gpus_per_node.max(1);
        let nodes = topo.nodes_spanned(ndev);
        let launch_us = match self.comm {
            CommModel::Hierarchical { launch_us, .. } => launch_us,
            _ => return None,
        };
        if nodes <= 1 {
            return None;
        }

        let local = CommModel::Nccl { launch_us };
        let intra = local.allreduce_time(&self.peer, ndev.min(gpn), payload_bytes);
        let inter_payload = ((payload_bytes as f64) * self.inter_cut).ceil() as u64;
        let nn = nodes as f64;
        let inter_ring = 2.0 * (nn - 1.0) / nn * inter_payload as f64 / (topo.inter.bw_gbps * 1e9)
            + 2.0 * (nn - 1.0) * topo.inter.latency_us * 1e-6;
        let hier_cost = intra + inter_ring + launch_us * 1e-6;

        let intra_bytes: u64 = (0..nodes)
            .map(|node| {
                let m = topo.devices_on_node(node, ndev) as u64;
                2 * m.saturating_sub(1) * payload_bytes
            })
            .sum();
        let inter_bytes = 2 * (nodes as u64 - 1) * inter_payload;

        // Never-slower-than-flat: a single flat ring over the slow
        // inter-node link (what `Platform::flattened` would bill).
        let flat_cost = local.allreduce_time(&topo.inter, ndev, payload_bytes);
        if flat_cost < hier_cost {
            // Every hop of the flat ring is billed; the ring crosses a
            // node boundary on `nodes` of its `ndev` hops (p devices →
            // p ring links, `nodes` of them inter-node), so split the
            // 2(p−1)·payload wire bytes proportionally.
            let total = 2 * (ndev as u64 - 1) * payload_bytes;
            let inter_share = (total as f64 * nodes as f64 / ndev as f64).round() as u64;
            let inter_share = inter_share.min(total);
            return Some(HierBill {
                cost: flat_cost,
                inter_time: flat_cost,
                intra_bytes: total - inter_share,
                inter_bytes: inter_share,
                fallback: true,
            });
        }

        Some(HierBill {
            cost: hier_cost,
            inter_time: inter_ring,
            intra_bytes,
            inter_bytes,
            fallback: false,
        })
    }

    /// Schedule cost of one collective: the hierarchical plan on a
    /// cluster, the comm model's closed form otherwise.
    fn collective_cost(&self, payload_bytes: u64) -> f64 {
        match self.hier_bill(payload_bytes) {
            Some(bill) => bill.cost,
            None => self.comm.allreduce_time(&self.peer, self.devices.len(), payload_bytes),
        }
    }

    /// Account one collective's wire bytes (and, on clusters, its
    /// hop-class split, exposed inter-node time and fallback count).
    fn bill_wire(&mut self, bill: Option<HierBill>, payload_bytes: u64) {
        match bill {
            Some(bill) => {
                self.metrics
                    .counter_add(names::COMM_COLLECTIVE_BYTES, bill.intra_bytes + bill.inter_bytes);
                self.metrics.counter_add(names::COMM_INTRA_NODE_BYTES, bill.intra_bytes);
                self.metrics.counter_add(names::COMM_INTER_NODE_BYTES, bill.inter_bytes);
                self.comm_inter += bill.inter_time;
                if bill.fallback {
                    self.metrics.counter_add(names::COMM_HIER_FALLBACKS, 1);
                }
            }
            None => {
                let ndev = self.devices.len() as u64;
                self.metrics
                    .counter_add(names::COMM_COLLECTIVE_BYTES, 2 * (ndev - 1) * payload_bytes);
            }
        }
    }

    /// Multiply every kernel duration by `factor` (software-stack
    /// inefficiency knobs, e.g. the cuGraph emulation).
    pub fn with_kernel_overhead(mut self, factor: f64) -> Self {
        for d in &mut self.devices {
            d.kernel_overhead = factor;
        }
        self
    }

    /// Whether [`SimRuntime::finish`] returns the recorded trace. The
    /// runtime always records internally (phase attribution needs it);
    /// this only controls what the caller gets back — and whether the
    /// lazy [`DeviceCtx::label`]/[`SimRuntime::label`] helpers materialize
    /// detailed (allocated) span labels.
    pub fn with_trace(mut self, keep: bool) -> Self {
        self.keep_trace = keep;
        for d in &mut self.devices {
            d.detailed = keep;
        }
        self
    }

    /// Runtime-level counterpart of [`DeviceCtx::label`]: materialize the
    /// allocated `detail` label only when the trace will be returned to
    /// the caller.
    pub fn label(&self, base: &'static str, detail: impl FnOnce() -> String) -> Cow<'static, str> {
        if self.keep_trace {
            Cow::Owned(detail())
        } else {
            Cow::Borrowed(base)
        }
    }

    /// Number of devices.
    pub fn num_devices(&self) -> usize {
        self.devices.len()
    }

    /// Completion time of everything scheduled so far, across devices.
    pub fn horizon(&self) -> f64 {
        self.devices.iter().map(DeviceCtx::horizon).fold(0.0, f64::max)
    }

    /// Completion time of the compute queues across devices — when the
    /// last kernel anywhere finishes, ignoring in-flight copies and
    /// collectives.
    pub fn compute_horizon(&self) -> f64 {
        self.devices.iter().map(DeviceCtx::compute_done).fold(0.0, f64::max)
    }

    /// Mutable access to one device's context.
    pub fn device(&mut self, dev: usize) -> &mut DeviceCtx {
        &mut self.devices[dev]
    }

    /// Take ownership of all device contexts — for fan-out into
    /// per-device workers. The runtime is unusable for device operations
    /// until [`SimRuntime::attach_devices`] hands them back.
    pub fn detach_devices(&mut self) -> Vec<DeviceCtx> {
        std::mem::take(&mut self.devices)
    }

    /// Re-attach the contexts taken by [`SimRuntime::detach_devices`], in
    /// device order.
    pub fn attach_devices(&mut self, devices: Vec<DeviceCtx>) {
        debug_assert!(self.devices.is_empty(), "attach over live devices");
        debug_assert!(
            devices.iter().enumerate().all(|(i, d)| d.dev == i),
            "devices re-attached out of order"
        );
        self.devices = devices;
    }

    /// Launch one kernel of identical duration on *every* device (bulk
    /// synchronous steps over replicated arrays, e.g. SETMATES): the
    /// duration comes from `stats` on the device cost model, the kernel
    /// counters are billed once (the work exists once, replicated), and a
    /// span is recorded per device. Returns the billed duration.
    pub fn global_kernel(
        &mut self,
        label: impl Into<Cow<'static, str>>,
        stats: &KernelStats,
    ) -> f64 {
        let label = label.into();
        let dur = {
            let d0 = &self.devices[0];
            d0.spec.kernel_time(&d0.cost, stats) * d0.kernel_overhead
        };
        for d in &mut self.devices {
            let (s, e) = d.timer.schedule_kernel_global(dur);
            d.trace.record(d.dev, EventKind::Kernel, label.clone(), s, e);
        }
        self.metrics.counter_add(names::KERNEL_EDGES_SCANNED, stats.edges_scanned);
        self.metrics.counter_add(names::KERNEL_WARPS_LAUNCHED, stats.warps_launched);
        self.metrics.counter_add(names::KERNEL_BYTES_MOVED, stats.bytes_read + stats.bytes_written);
        dur
    }

    /// Ring-allreduce a replicated payload of `payload_bytes` across all
    /// devices: every timeline aligns to the common completion point, and
    /// the collective metrics are billed — one call, plus
    /// `2 (p-1) × payload` wire bytes (zero on a single device, where the
    /// ring degenerates to a local pass). Returns `(start, end)`.
    pub fn allreduce(
        &mut self,
        label: impl Into<Cow<'static, str>>,
        payload_bytes: u64,
    ) -> (f64, f64) {
        let label = label.into();
        let bill = self.hier_bill(payload_bytes);
        let cost = match bill {
            Some(bill) => bill.cost,
            None => self.comm.allreduce_time(&self.peer, self.devices.len(), payload_bytes),
        };
        let start = self.horizon();
        let end = start + cost;
        for d in &mut self.devices {
            d.timer.align_to(end);
            d.trace.record(d.dev, EventKind::Collective, label.clone(), start, end);
        }
        self.metrics.counter_add(names::COMM_ALLREDUCE_CALLS, 1);
        self.bill_wire(bill, payload_bytes);
        // A serialized collective starts after every producer finished:
        // its whole cost sits on the critical path.
        self.comm_exposed += cost;
        (start, end)
    }

    /// Overlapped chunked allreduce: each [`CommChunk`] is a slice of the
    /// reduced payload that became reducible at its own `ready` time (its
    /// producer kernel's end), so wire time runs on the comm stream under
    /// kernels and copies that do not depend on the result. Chunks ready
    /// together are greedily coalesced into one ring operation — a uniform
    /// ready front therefore degenerates to exactly the serialized
    /// [`SimRuntime::allreduce`] cost, while an imbalanced front pipelines:
    /// early slices reduce while slow devices still compute, which is the
    /// paper's barrier-imbalance wait converted into hidden communication.
    /// When the per-operation launch/latency overhead of the chunked chain
    /// would outlive a single coalesced reduction (near-uniform front,
    /// short compute tail), the scheduler falls back to the single
    /// operation, so overlap mode never finishes later than the serialized
    /// collective would.
    ///
    /// The compute queues of all devices are held back to the final
    /// completion point (consumers depend on the fully reduced array); the
    /// copy engines stay free, so next-iteration prefetches overlap the
    /// tail. Exposed time is `end − max(ready)`; the remainder of the
    /// summed operation costs is hidden. Returns `(first_start, end)`.
    pub fn allreduce_chunked(
        &mut self,
        label: impl Into<Cow<'static, str>>,
        chunks: &[CommChunk],
    ) -> (f64, f64) {
        let label = label.into();
        let fallback = [CommChunk { bytes: 0, ready: self.compute_horizon() }];
        let chunks: &[CommChunk] = if chunks.is_empty() { &fallback } else { chunks };
        let mut order: Vec<&CommChunk> = chunks.iter().collect();
        order.sort_by(|a, b| a.ready.total_cmp(&b.ready));
        let ready_max = order.last().expect("non-empty chunk list").ready;

        // Dry-run the greedy schedule first: the fabric serializes the
        // ring operations (every one involves all devices), so each
        // group's end is the next group's earliest start.
        let fabric0 = self.devices.iter().map(|d| d.timer.comm_free()).fold(0.0, f64::max);
        let mut plan: Vec<(f64, u64, f64)> = Vec::new(); // (start, bytes, cost)
        let mut fabric = fabric0;
        let mut i = 0;
        while i < order.len() {
            let start = fabric.max(order[i].ready);
            // Coalesce every slice already reducible at the start point
            // into one ring operation.
            let mut bytes = 0u64;
            while i < order.len() && order[i].ready <= start {
                bytes += order[i].bytes;
                i += 1;
            }
            let cost = self.collective_cost(bytes);
            plan.push((start, bytes, cost));
            fabric = start + cost;
        }
        // Chunking pays a fixed launch+latency cost per ring operation; on
        // a near-uniform front with a short compute tail the op chain can
        // outlive a single coalesced reduction. Compare against the
        // everything-at-once alternative and keep the schedule that
        // finishes first (mirroring NCCL-style runtime batching).
        let total_bytes: u64 = order.iter().map(|c| c.bytes).sum();
        let single_cost = self.collective_cost(total_bytes);
        let single_start = fabric0.max(ready_max);
        if single_start + single_cost < fabric {
            plan = vec![(single_start, total_bytes, single_cost)];
        }

        let mut first_start = f64::INFINITY;
        let mut end = 0.0f64;
        let mut total_cost = 0.0;
        for &(start, bytes, cost) in &plan {
            for d in &mut self.devices {
                let (s, e) = d.timer.schedule_comm(start, cost);
                debug_assert_eq!(s, start);
                d.trace.record(d.dev, EventKind::Collective, label.clone(), s, e);
                end = e;
            }
            first_start = first_start.min(start);
            total_cost += cost;
            self.metrics.counter_add(names::COMM_ALLREDUCE_CALLS, 1);
            let bill = self.hier_bill(bytes);
            self.bill_wire(bill, bytes);
        }
        let exposed = (end - ready_max).max(0.0);
        self.comm_exposed += exposed;
        self.comm_hidden += (total_cost - exposed).max(0.0);
        // Consumers of the reduced array wait on the compute queue; the
        // copy engines keep prefetching under the collective tail.
        for d in &mut self.devices {
            d.timer.wait_kernel_until(end);
        }
        (first_start, end)
    }

    /// Sparse allreduce: `entries` indexed values of `bytes_per_entry`
    /// each — the frontier-restricted collectives of incremental engines.
    /// Billing is the dense path over the packed payload.
    pub fn allreduce_sparse(
        &mut self,
        label: impl Into<Cow<'static, str>>,
        entries: u64,
        bytes_per_entry: u64,
    ) -> (f64, f64) {
        self.allreduce(label, entries * bytes_per_entry)
    }

    /// Barrier: every device waits (free of charge) for the slowest one.
    /// The imbalance wait surfaces as idle time attributed to the `sync`
    /// phase by the timeline breakdown. Returns the summed wait.
    pub fn barrier_wait(&mut self) -> f64 {
        let t = self.horizon();
        let mut waited = 0.0;
        for d in &mut self.devices {
            waited += t - d.timer.horizon();
            d.timer.align_to(t);
        }
        waited
    }

    /// Record one iteration of the matching progression.
    pub fn push_iteration(&mut self, rec: IterationRecord) {
        self.iterations.push(rec);
    }

    /// Live view of the metrics accumulated so far. Long-lived callers
    /// (the serve layer) read per-batch deltas from here without waiting
    /// for [`SimRuntime::finish`].
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Add `delta` to a counter (engine-semantic metrics).
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        self.metrics.counter_add(name, delta);
    }

    /// Set a gauge.
    pub fn gauge_set(&mut self, name: &str, value: f64) {
        self.metrics.gauge_set(name, value);
    }

    /// Record a histogram sample.
    pub fn observe(&mut self, name: &str, sample: f64) {
        self.metrics.observe(name, sample);
    }

    /// The livelock invariant every fixed-point engine shares: an
    /// iteration that found work to do must commit progress, or the
    /// driver would spin forever. Under the canonical total-order
    /// tie-breaking this cannot fire; it replaces per-engine ad-hoc
    /// assertion/break pairs.
    ///
    /// # Panics
    /// When `progress == 0`.
    pub fn assert_progress(&self, progress: u64, context: &str) {
        assert!(progress > 0, "livelock: {context} made no progress");
    }

    /// Close the run: drain every device, fold the accumulated kernel
    /// totals, stalls and occupancy into the registry, and derive the
    /// phase breakdown from the recorded timeline — which guarantees
    /// `profile.phases.total() == sim_time` up to floating-point
    /// rounding, for every engine, whether or not tracing was requested.
    pub fn finish(mut self) -> RunFinish {
        let mut trace = Trace::default();
        let mut totals = LaunchTotals::default();
        let mut occ_weighted = 0.0;
        let mut occ_weight = 0.0;
        let mut stalls = 0u64;
        let mut stall_time = 0.0;
        let mut sim_time = 0.0f64;
        let ndev = self.devices.len();
        for d in &mut self.devices {
            d.timer.drain();
            sim_time = sim_time.max(d.timer.horizon());
            totals.edges_scanned += d.totals.edges_scanned;
            totals.warps_launched += d.totals.warps_launched;
            totals.bytes_moved += d.totals.bytes_moved;
            occ_weighted += d.occ_weighted;
            occ_weight += d.occ_weight;
            stalls += d.timer.buffer_stalls();
            stall_time += d.timer.buffer_stall_time();
            trace.merge(std::mem::take(&mut d.trace));
        }
        let m = &mut self.metrics;
        m.counter_add(names::KERNEL_EDGES_SCANNED, totals.edges_scanned);
        m.counter_add(names::KERNEL_WARPS_LAUNCHED, totals.warps_launched);
        m.counter_add(names::KERNEL_BYTES_MOVED, totals.bytes_moved);
        // Schema parity across engines: the wire-traffic counters exist
        // even for runs that never issued a collective.
        m.counter_add(names::COMM_COLLECTIVE_BYTES, 0);
        m.counter_add(names::TIMER_BUFFER_STALLS, stalls);
        if let Some(topo) = self.topo {
            m.counter_add(names::COMM_INTRA_NODE_BYTES, 0);
            m.counter_add(names::COMM_INTER_NODE_BYTES, 0);
            m.counter_add(names::COMM_HIER_FALLBACKS, 0);
            m.gauge_set(names::COMM_INTER_TIME, self.comm_inter);
            m.gauge_set(names::CLUSTER_NODES, topo.nodes_spanned(ndev) as f64);
        }
        m.gauge_set(names::TIMER_BUFFER_STALL_TIME, stall_time);
        m.gauge_set(
            names::KERNEL_OCCUPANCY,
            if occ_weight > 0.0 { occ_weighted / occ_weight } else { 0.0 },
        );
        m.gauge_set(names::DRIVER_DEVICES, ndev as f64);
        // Overlap accounting: schema parity across engines — the gauges
        // exist (at 0) even for runs without collectives or overlap.
        m.gauge_set(names::COMM_EXPOSED_TIME, self.comm_exposed);
        m.gauge_set(names::COMM_HIDDEN_TIME, self.comm_hidden);
        let stream_busy: f64 = (0..ndev)
            .map(|d| {
                trace.busy_time(d, EventKind::Kernel)
                    + trace.busy_time(d, EventKind::H2dCopy)
                    + trace.busy_time(d, EventKind::Collective)
            })
            .sum();
        m.gauge_set(
            names::STREAM_OCCUPANCY,
            if sim_time > 0.0 { stream_busy / (3.0 * ndev as f64 * sim_time) } else { 0.0 },
        );
        let phases = timeline_breakdown(&trace, sim_time);
        debug_assert!(
            (phases.total() - sim_time).abs() <= 1e-9 * sim_time.max(1.0),
            "phase attribution lost time: {} vs {}",
            phases.total(),
            sim_time
        );
        RunFinish {
            sim_time,
            profile: RunProfile { phases, iterations: self.iterations, sim_time },
            metrics: self.metrics,
            trace: self.keep_trace.then_some(trace),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::Platform;

    fn stats(vertices: u64) -> KernelStats {
        KernelStats {
            vertices,
            vertices_processed: vertices,
            warps_launched: vertices.div_ceil(4),
            warps_active: vertices.div_ceil(4),
            edge_waves: vertices,
            edges_scanned: vertices * 8,
            warp_edges_sumsq: 0.0,
            max_warp_waves: 4,
            max_warp_vertices: 4,
            bytes_read: vertices * 64,
            bytes_written: vertices * 8,
        }
    }

    #[test]
    fn phases_total_equals_sim_time_by_construction() {
        let mut rt = SimRuntime::new(&Platform::dgx_a100(), 2);
        for d in 0..2 {
            rt.device(d).h2d_copy(0, 1 << 20, "copy b0");
            rt.device(d).launch_kernel(
                Some(0),
                format!("point b0 d{d}"),
                &stats(1000 * (d as u64 + 1)),
            );
        }
        rt.barrier_wait();
        rt.allreduce("allreduce ptr", 8 << 10);
        rt.global_kernel("setmates", &stats(100));
        rt.device(0).host_sync("sync");
        let fin = rt.finish();
        assert!(fin.sim_time > 0.0);
        assert!(
            (fin.profile.phases.total() - fin.sim_time).abs() <= 1e-12 * fin.sim_time,
            "total {} vs sim_time {}",
            fin.profile.phases.total(),
            fin.sim_time
        );
        // Every phase class got exercised.
        let p = fin.profile.phases;
        assert!(p.pointing > 0.0 && p.matching > 0.0 && p.allreduce > 0.0);
    }

    #[test]
    fn kernel_counters_and_occupancy_fold_into_metrics() {
        let mut rt = SimRuntime::new(&Platform::dgx_a100(), 1);
        let s = stats(512);
        rt.device(0).launch_kernel(None, "point", &s);
        let fin = rt.finish();
        assert_eq!(fin.metrics.counter(names::KERNEL_EDGES_SCANNED), s.edges_scanned);
        assert_eq!(fin.metrics.counter(names::KERNEL_WARPS_LAUNCHED), s.warps_launched);
        assert_eq!(fin.metrics.counter(names::KERNEL_BYTES_MOVED), s.bytes_read + s.bytes_written);
        let occ = fin.metrics.gauge(names::KERNEL_OCCUPANCY).unwrap();
        assert!((0.0..=1.0).contains(&occ));
        assert!(occ > 0.0);
        assert_eq!(fin.metrics.gauge(names::DRIVER_DEVICES), Some(1.0));
    }

    #[test]
    fn allreduce_wire_bytes_follow_ring_formula() {
        let mut rt = SimRuntime::new(&Platform::dgx_a100(), 4);
        rt.allreduce("allreduce ptr", 1000);
        let fin = rt.finish();
        assert_eq!(fin.metrics.counter(names::COMM_ALLREDUCE_CALLS), 1);
        assert_eq!(fin.metrics.counter(names::COMM_COLLECTIVE_BYTES), 2 * 3 * 1000);
    }

    #[test]
    fn single_device_collectives_carry_no_wire_bytes() {
        let mut rt = SimRuntime::new(&Platform::dgx_a100(), 1);
        rt.allreduce("allreduce ptr", 1000);
        rt.allreduce_sparse("allreduce frontier", 10, 16);
        let fin = rt.finish();
        assert_eq!(fin.metrics.counter(names::COMM_ALLREDUCE_CALLS), 2);
        assert_eq!(fin.metrics.counter(names::COMM_COLLECTIVE_BYTES), 0);
    }

    #[test]
    fn barrier_reports_imbalance_wait() {
        let mut rt = SimRuntime::new(&Platform::dgx_a100(), 2);
        rt.device(0).fixed_kernel("point", 2.0);
        let waited = rt.barrier_wait();
        assert!((waited - 2.0).abs() < 1e-12, "waited {waited}");
        assert_eq!(rt.device(1).horizon(), 2.0);
    }

    #[test]
    fn detach_reattach_round_trips() {
        let mut rt = SimRuntime::new(&Platform::dgx_a100(), 3);
        let mut ctxs = rt.detach_devices();
        assert_eq!(ctxs.len(), 3);
        for c in &mut ctxs {
            c.fixed_kernel("point", 0.5 * (c.index() + 1) as f64);
        }
        rt.attach_devices(ctxs);
        assert!((rt.horizon() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn trace_returned_only_when_requested() {
        let mk = |keep: bool| {
            let mut rt = SimRuntime::new(&Platform::dgx_a100(), 1).with_trace(keep);
            rt.device(0).fixed_kernel("point", 1.0);
            rt.finish()
        };
        assert!(mk(false).trace.is_none());
        let fin = mk(true);
        let trace = fin.trace.expect("trace requested");
        assert_eq!(trace.events.len(), 1);
        let (_, hi) = trace.span().unwrap();
        assert!((hi - fin.sim_time).abs() < 1e-12);
        // The breakdown still sums to sim_time either way.
        assert!((fin.profile.phases.total() - fin.sim_time).abs() < 1e-12);
    }

    #[test]
    fn kernel_overhead_scales_durations() {
        let run = |overhead: f64| {
            let mut rt = SimRuntime::new(&Platform::dgx_a100(), 1).with_kernel_overhead(overhead);
            rt.device(0).launch_kernel(None, "point", &stats(4096));
            rt.finish().sim_time
        };
        let base = run(1.0);
        let slow = run(3.0);
        assert!((slow - 3.0 * base).abs() < 1e-12 * slow, "base {base} slow {slow}");
    }

    #[test]
    fn empty_runtime_finishes_clean() {
        let fin = SimRuntime::new(&Platform::dgx_a100(), 4).finish();
        assert_eq!(fin.sim_time, 0.0);
        assert_eq!(fin.profile.phases.total(), 0.0);
        assert_eq!(fin.metrics.counter(names::COMM_COLLECTIVE_BYTES), 0);
        assert_eq!(fin.metrics.gauge(names::KERNEL_OCCUPANCY), Some(0.0));
    }

    #[test]
    #[should_panic(expected = "livelock")]
    fn progress_invariant_trips_on_stall() {
        SimRuntime::new(&Platform::dgx_a100(), 1).assert_progress(0, "iteration 3");
    }

    #[test]
    fn uniform_chunks_coalesce_to_serialized_cost() {
        // All slices ready at the same instant: the greedy scheduler must
        // merge them into ONE ring op whose cost equals the serialized
        // allreduce of the summed payload — no per-chunk overhead penalty.
        let mk = |chunked: bool| {
            let mut rt = SimRuntime::new(&Platform::dgx_a100(), 4);
            for d in 0..4 {
                rt.device(d).fixed_kernel("point", 1.0);
            }
            if chunked {
                let chunks: Vec<CommChunk> =
                    (0..4).map(|_| CommChunk { bytes: 250, ready: 1.0 }).collect();
                rt.allreduce_chunked("allreduce ptr", &chunks);
            } else {
                rt.barrier_wait();
                rt.allreduce("allreduce ptr", 1000);
            }
            rt.finish()
        };
        let ser = mk(false);
        let ovl = mk(true);
        assert!(
            (ovl.sim_time - ser.sim_time).abs() < 1e-15,
            "{} vs {}",
            ovl.sim_time,
            ser.sim_time
        );
        assert_eq!(
            ovl.metrics.counter(names::COMM_ALLREDUCE_CALLS),
            ser.metrics.counter(names::COMM_ALLREDUCE_CALLS)
        );
        assert_eq!(
            ovl.metrics.counter(names::COMM_COLLECTIVE_BYTES),
            ser.metrics.counter(names::COMM_COLLECTIVE_BYTES)
        );
        // Exposed time matches the serialized cost up to float round-trip
        // (the chunked path derives it as `(ready + cost) - ready`).
        let e_ovl = ovl.metrics.gauge(names::COMM_EXPOSED_TIME).unwrap();
        let e_ser = ser.metrics.gauge(names::COMM_EXPOSED_TIME).unwrap();
        assert!((e_ovl - e_ser).abs() < 1e-12, "{e_ovl} vs {e_ser}");
        let h_ovl = ovl.metrics.gauge(names::COMM_HIDDEN_TIME).unwrap();
        assert!(h_ovl.abs() < 1e-12, "hidden {h_ovl}");
    }

    #[test]
    fn imbalanced_chunks_hide_communication() {
        // Device 0 finishes its slice far earlier than device 1: the early
        // slice reduces under device 1's kernel, so the exposed time is
        // strictly less than the serialized collective's, total wire bytes
        // and the matching-relevant sim payload staying equal.
        let run = |chunked: bool| {
            let mut rt = SimRuntime::new(&Platform::dgx_a100(), 2);
            rt.device(0).fixed_kernel("point", 1.0);
            rt.device(1).fixed_kernel("point", 4.0);
            if chunked {
                rt.allreduce_chunked(
                    "allreduce ptr",
                    &[
                        CommChunk { bytes: 500_000_000, ready: 1.0 },
                        CommChunk { bytes: 500_000_000, ready: 4.0 },
                    ],
                );
            } else {
                rt.barrier_wait();
                rt.allreduce("allreduce ptr", 1_000_000_000);
            }
            rt.finish()
        };
        let ser = run(false);
        let ovl = run(true);
        assert!(ovl.sim_time < ser.sim_time, "{} vs {}", ovl.sim_time, ser.sim_time);
        let exp_ser = ser.metrics.gauge(names::COMM_EXPOSED_TIME).unwrap();
        let exp_ovl = ovl.metrics.gauge(names::COMM_EXPOSED_TIME).unwrap();
        assert!(exp_ovl < exp_ser, "exposed {exp_ovl} vs serialized {exp_ser}");
        assert!(ovl.metrics.gauge(names::COMM_HIDDEN_TIME).unwrap() > 0.0);
        assert_eq!(
            ovl.metrics.counter(names::COMM_COLLECTIVE_BYTES),
            ser.metrics.counter(names::COMM_COLLECTIVE_BYTES)
        );
        assert_eq!(ovl.metrics.counter(names::COMM_ALLREDUCE_CALLS), 2);
        // Phase attribution still accounts for every simulated second.
        assert!(
            (ovl.profile.phases.total() - ovl.sim_time).abs() <= 1e-9 * ovl.sim_time,
            "total {} vs sim_time {}",
            ovl.profile.phases.total(),
            ovl.sim_time
        );
    }

    #[test]
    fn chunked_collective_holds_kernels_not_copies() {
        let mut rt = SimRuntime::new(&Platform::dgx_a100(), 2);
        for d in 0..2 {
            rt.device(d).fixed_kernel("point", 1.0);
        }
        let (_, end) = rt
            .allreduce_chunked("allreduce mate", &[CommChunk { bytes: 4_000_000_000, ready: 1.0 }]);
        assert!(end > 1.0);
        // A dependent kernel waits for the collective...
        let (ks, _) = rt.device(0).fixed_kernel("point next", 0.5);
        assert!(ks >= end);
        // ...but a prefetch copy on device 1 started under it.
        let (cs, _) = rt.device(1).h2d_copy(0, 1 << 20, "copy next");
        assert!(cs < end, "copy at {cs} must start under the collective ending at {end}");
    }

    #[test]
    fn stream_occupancy_reported_between_zero_and_one() {
        let mut rt = SimRuntime::new(&Platform::dgx_a100(), 2);
        for d in 0..2 {
            rt.device(d).h2d_copy(0, 1 << 20, "copy");
            rt.device(d).launch_kernel(Some(0), "point", &stats(2000));
        }
        rt.barrier_wait();
        rt.allreduce("allreduce ptr", 8 << 10);
        let fin = rt.finish();
        let occ = fin.metrics.gauge(names::STREAM_OCCUPANCY).unwrap();
        assert!(occ > 0.0 && occ <= 1.0, "stream occupancy {occ}");
        // Empty runs report 0 for schema parity.
        let empty = SimRuntime::new(&Platform::dgx_a100(), 1).finish();
        assert_eq!(empty.metrics.gauge(names::STREAM_OCCUPANCY), Some(0.0));
        assert_eq!(empty.metrics.gauge(names::COMM_EXPOSED_TIME), Some(0.0));
        assert_eq!(empty.metrics.gauge(names::COMM_HIDDEN_TIME), Some(0.0));
    }

    #[test]
    fn empty_chunk_list_degenerates_to_zero_payload_call() {
        let mut rt = SimRuntime::new(&Platform::dgx_a100(), 2);
        rt.allreduce_chunked("allreduce ptr", &[]);
        let fin = rt.finish();
        assert_eq!(fin.metrics.counter(names::COMM_ALLREDUCE_CALLS), 1);
        assert_eq!(fin.metrics.counter(names::COMM_COLLECTIVE_BYTES), 0);
    }

    // ------------------------------------------------------------------
    // Hierarchical (multi-node) collectives.

    #[test]
    fn hierarchical_wire_bytes_split_by_hop_class() {
        // 2 nodes × 8 GPUs: each node runs its own 8-device ring
        // (2·(8−1)·B intra), the leaders run a 2-node ring (2·(2−1)·B
        // inter) — closed-form ring costs per hop class.
        let b = 1_000_000u64;
        let mut rt = SimRuntime::new(&Platform::dgx_a100_cluster(2), 16);
        rt.allreduce("allreduce ptr", b);
        let fin = rt.finish();
        assert_eq!(fin.metrics.counter(names::COMM_INTRA_NODE_BYTES), 2 * 2 * 7 * b);
        assert_eq!(fin.metrics.counter(names::COMM_INTER_NODE_BYTES), 2 * b);
        assert_eq!(
            fin.metrics.counter(names::COMM_COLLECTIVE_BYTES),
            fin.metrics.counter(names::COMM_INTRA_NODE_BYTES)
                + fin.metrics.counter(names::COMM_INTER_NODE_BYTES)
        );
        assert_eq!(fin.metrics.counter(names::COMM_HIER_FALLBACKS), 0);
        assert!(fin.metrics.gauge(names::COMM_INTER_TIME).unwrap() > 0.0);
        assert_eq!(fin.metrics.gauge(names::CLUSTER_NODES), Some(2.0));
    }

    #[test]
    fn ragged_device_counts_bill_partial_last_node() {
        // 12 devices on a 2×8 cluster: node 0 holds 8, node 1 holds 4.
        let b = 1_000_000u64;
        let mut rt = SimRuntime::new(&Platform::dgx_a100_cluster(2), 12);
        rt.allreduce("allreduce ptr", b);
        let fin = rt.finish();
        assert_eq!(fin.metrics.counter(names::COMM_INTRA_NODE_BYTES), (2 * 7 + 2 * 3) * b);
        assert_eq!(fin.metrics.counter(names::COMM_INTER_NODE_BYTES), 2 * b);
        assert_eq!(fin.metrics.gauge(names::CLUSTER_NODES), Some(2.0));
    }

    #[test]
    fn tiny_payloads_fall_back_to_the_flat_ring() {
        // 8 bytes over 16 devices: the hierarchical schedule's second
        // launch dominates, so the planner keeps the flat ring over the
        // slow link — never slower than flat.
        let platform = Platform::dgx_a100_cluster(2);
        let CommModel::Hierarchical { inter, launch_us, .. } = platform.comm else {
            panic!("cluster preset must be hierarchical");
        };
        let mut rt = SimRuntime::new(&platform, 16);
        rt.allreduce("allreduce ptr", 8);
        let fin = rt.finish();
        assert_eq!(fin.metrics.counter(names::COMM_HIER_FALLBACKS), 1);
        let flat = CommModel::Nccl { launch_us }.allreduce_time(&inter, 16, 8);
        assert!(
            (fin.sim_time - flat).abs() <= 1e-12 * flat,
            "fallback cost {} vs flat ring {}",
            fin.sim_time,
            flat
        );
    }

    #[test]
    fn inter_cut_scales_only_the_inter_node_stage() {
        let b = 1_000_000u64;
        let run = |cut: Option<f64>| {
            let mut rt = SimRuntime::new(&Platform::dgx_a100_cluster(2), 16);
            if let Some(c) = cut {
                rt.set_inter_cut(c);
            }
            rt.allreduce("allreduce ptr", b);
            rt.finish()
        };
        let full = run(None);
        let quarter = run(Some(0.25));
        // The intra-node stages always carry the full payload …
        assert_eq!(
            full.metrics.counter(names::COMM_INTRA_NODE_BYTES),
            quarter.metrics.counter(names::COMM_INTRA_NODE_BYTES)
        );
        // … only the leader ring shrinks with the boundary fraction.
        assert_eq!(quarter.metrics.counter(names::COMM_INTER_NODE_BYTES), 2 * b / 4);
        assert!(quarter.sim_time < full.sim_time);
        assert!(
            quarter.metrics.gauge(names::COMM_INTER_TIME).unwrap()
                < full.metrics.gauge(names::COMM_INTER_TIME).unwrap()
        );
    }

    #[test]
    fn chunked_uniform_front_on_a_cluster_coalesces_to_serialized_cost() {
        let mk = || {
            let mut rt = SimRuntime::new(&Platform::dgx_a100_cluster(2), 16);
            for d in 0..16 {
                rt.device(d).launch_kernel(None, "point", &stats(1000));
            }
            rt
        };
        let mut ser = mk();
        ser.barrier_wait();
        ser.allreduce("allreduce ptr", 4 << 20);
        let ser = ser.finish();
        let mut ovl = mk();
        let ready = ovl.compute_horizon();
        let chunks: Vec<CommChunk> = (0..4).map(|_| CommChunk { bytes: 1 << 20, ready }).collect();
        ovl.allreduce_chunked("allreduce ptr", &chunks);
        let ovl = ovl.finish();
        assert!(
            (ovl.sim_time - ser.sim_time).abs() <= 1e-9 * ser.sim_time,
            "uniform chunked {} vs serialized {}",
            ovl.sim_time,
            ser.sim_time
        );
        assert_eq!(
            ovl.metrics.counter(names::COMM_INTER_NODE_BYTES),
            ser.metrics.counter(names::COMM_INTER_NODE_BYTES)
        );
    }

    #[test]
    fn hierarchical_schedule_never_loses_to_the_flattened_platform() {
        // `flattened()` runs the same devices as one flat ring over the
        // inter-node link; the hierarchical planner must match or beat
        // it at every payload size (fallback guarantees the tie).
        let cluster = Platform::dgx_a100_cluster(2);
        let flat = cluster.clone().flattened();
        for payload in [8u64, 1 << 10, 1 << 20, 8 << 20] {
            let mut h = SimRuntime::new(&cluster, 16);
            h.allreduce("allreduce ptr", payload);
            let h = h.finish();
            let mut f = SimRuntime::new(&flat, 16);
            f.allreduce("allreduce ptr", payload);
            let f = f.finish();
            assert!(
                h.sim_time <= f.sim_time * (1.0 + 1e-12),
                "payload {payload}: hierarchical {} > flat {}",
                h.sim_time,
                f.sim_time
            );
        }
    }
}

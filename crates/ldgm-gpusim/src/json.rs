//! Minimal JSON support for observability output.
//!
//! The workspace is dependency-free, so run reports and Chrome-trace
//! exports are built on this hand-rolled value type instead of serde.
//! Objects preserve insertion order, which keeps every emitted document
//! deterministic and diff-friendly. The parser exists so tests (and the
//! CLI) can round-trip what the writers produce; it accepts standard JSON.

use std::fmt;

/// A JSON document node.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number. Non-finite values serialize as `null` (like
    /// `JSON.stringify`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object; insertion order is preserved on output.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Empty object.
    pub fn object() -> Json {
        Json::Object(Vec::new())
    }

    /// Insert/overwrite a key on an object node. Panics on non-objects —
    /// writer code paths always know the shape they are building.
    pub fn set(&mut self, key: impl Into<String>, value: impl Into<Json>) -> &mut Self {
        let Json::Object(entries) = self else {
            panic!("Json::set on non-object");
        };
        let key = key.into();
        let value = value.into();
        if let Some(slot) = entries.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = value;
        } else {
            entries.push((key, value));
        }
        self
    }

    /// Builder-style [`set`](Self::set).
    pub fn with(mut self, key: impl Into<String>, value: impl Into<Json>) -> Self {
        self.set(key, value);
        self
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Number value, if this node is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// Boolean value, if this node is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// String value, if this node is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Array elements, if this node is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Compact serialization.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty serialization with two-space indentation and a trailing
    /// newline, the format written to report files.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => write_number(out, *v),
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i, d| {
                    items[i].write(out, indent, d);
                })
            }
            Json::Object(entries) => {
                write_seq(out, indent, depth, '{', '}', entries.len(), |out, i, d| {
                    let (k, v) = &entries[i];
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, d);
                })
            }
        }
    }
}

fn write_number(out: &mut String, v: f64) {
    use fmt::Write;
    if !v.is_finite() {
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 9.0e15 {
        write!(out, "{}", v as i64).unwrap();
    } else {
        write!(out, "{v}").unwrap();
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write;
                write!(out, "\\u{:04x}", c as u32).unwrap();
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
    out.push(close);
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Num(v as f64)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::Num(v as f64)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Num(v as f64)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Num(v as f64)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Json {
        Json::Array(v)
    }
}

/// Parse error with byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parse a JSON document. Rejects trailing garbage.
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError { offset: self.pos, message: message.to_string() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            entries.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(entries));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\' && c >= 0x20) {
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid utf-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed by our own
                            // output; map lone surrogates to U+FFFD.
                            s.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or_else(|| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_builder_preserves_order_and_overwrites() {
        let j = Json::object().with("b", 1u64).with("a", 2u64).with("b", 3u64);
        assert_eq!(j.to_string_compact(), r#"{"b":3,"a":2}"#);
        assert_eq!(j.get("a").and_then(Json::as_f64), Some(2.0));
    }

    #[test]
    fn numbers_format_cleanly() {
        assert_eq!(Json::Num(3.0).to_string_compact(), "3");
        assert_eq!(Json::Num(0.5).to_string_compact(), "0.5");
        assert_eq!(Json::Num(f64::NAN).to_string_compact(), "null");
        assert_eq!(Json::Num(-17.0).to_string_compact(), "-17");
    }

    #[test]
    fn strings_escape() {
        assert_eq!(Json::Str("a\"b\\c\nd".into()).to_string_compact(), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn round_trip() {
        let doc = Json::object()
            .with("name", "trace")
            .with("n", 42u64)
            .with("pi", 3.25)
            .with("ok", true)
            .with("none", Json::Null)
            .with(
                "events",
                Json::Array(vec![
                    Json::object().with("ts", 1.5).with("dur", 2.0),
                    Json::object().with("ts", 3.5).with("dur", 0.25),
                ]),
            );
        for text in [doc.to_string_compact(), doc.to_string_pretty()] {
            assert_eq!(parse(&text).unwrap(), doc);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn parse_standard_json() {
        let v = parse(r#" { "a" : [ 1 , -2.5e1 , "xA" ] , "b" : { } } "#).unwrap();
        let arr = v.get("a").and_then(Json::as_array).unwrap();
        assert_eq!(arr[1].as_f64(), Some(-25.0));
        assert_eq!(arr[2].as_str(), Some("xA"));
    }

    #[test]
    fn pretty_output_indents() {
        let doc = Json::object().with("k", Json::Array(vec![Json::Num(1.0)]));
        let text = doc.to_string_pretty();
        assert!(text.contains("\n  \"k\": [\n    1\n  ]\n"));
        assert!(text.ends_with('\n'));
    }
}

//! Execution tracing: a per-device event timeline and an ASCII Gantt
//! renderer, the simulator's equivalent of an Nsight Systems view. Used to
//! inspect how copies overlap kernels under the dual-buffer scheme and
//! where collectives serialize the devices.
//!
//! Labels are `Cow<'static, str>` so the hot path (tracing disabled, but
//! the runtime still records spans for phase attribution) records static
//! names without allocating; detailed per-batch/per-round labels are only
//! materialized when a trace was requested.

use std::borrow::Cow;

/// What a timeline span represents.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// Host-to-device batch copy.
    H2dCopy,
    /// Compute kernel.
    Kernel,
    /// Cross-device collective.
    Collective,
    /// Explicit host-device synchronization.
    HostSync,
}

impl EventKind {
    /// One-character lane symbol for the Gantt view.
    pub fn symbol(&self) -> char {
        match self {
            EventKind::H2dCopy => 'c',
            EventKind::Kernel => 'K',
            EventKind::Collective => 'A',
            EventKind::HostSync => 's',
        }
    }
}

/// One timeline span on one device.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// Device index.
    pub device: usize,
    /// Span kind.
    pub kind: EventKind,
    /// Free-form label (e.g. `"point b2 it0"`).
    pub label: Cow<'static, str>,
    /// Start time (seconds).
    pub start: f64,
    /// End time (seconds).
    pub end: f64,
}

/// An execution trace: events in arbitrary order, normalized on render.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Trace {
    /// Recorded spans.
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// Record a span.
    pub fn record(
        &mut self,
        device: usize,
        kind: EventKind,
        label: impl Into<Cow<'static, str>>,
        start: f64,
        end: f64,
    ) {
        debug_assert!(end >= start, "negative-duration event");
        self.events.push(TraceEvent { device, kind, label: label.into(), start, end });
    }

    /// Merge another trace (e.g. from a per-device worker).
    pub fn merge(&mut self, other: Trace) {
        self.events.extend(other.events);
    }

    /// Total span `(min start, max end)`; `None` when empty.
    pub fn span(&self) -> Option<(f64, f64)> {
        let lo = self.events.iter().map(|e| e.start).fold(f64::INFINITY, f64::min);
        let hi = self.events.iter().map(|e| e.end).fold(f64::NEG_INFINITY, f64::max);
        (lo.is_finite() && hi.is_finite()).then_some((lo, hi))
    }

    /// Busy time per kind on one device.
    pub fn busy_time(&self, device: usize, kind: EventKind) -> f64 {
        self.events
            .iter()
            .filter(|e| e.device == device && e.kind == kind)
            .map(|e| e.end - e.start)
            .sum()
    }

    /// Render an ASCII Gantt chart, one lane per device, `width`
    /// characters across the full span. Overlapping spans on one device
    /// (copy engine vs compute queue) are drawn in priority order
    /// collective > kernel > copy > sync.
    pub fn render_gantt(&self, width: usize) -> String {
        let Some((lo, hi)) = self.span() else {
            return "(empty trace)\n".to_string();
        };
        let width = width.max(10);
        let scale = if hi > lo { width as f64 / (hi - lo) } else { 0.0 };
        let ndev = self.events.iter().map(|e| e.device).max().unwrap_or(0) + 1;
        let mut out = String::new();
        let priority = |k: EventKind| match k {
            EventKind::Collective => 3,
            EventKind::Kernel => 2,
            EventKind::H2dCopy => 1,
            EventKind::HostSync => 0,
        };
        for d in 0..ndev {
            let mut lane = vec![('.', -1i32); width];
            for e in self.events.iter().filter(|e| e.device == d) {
                let a = ((e.start - lo) * scale).floor() as usize;
                let b = (((e.end - lo) * scale).ceil() as usize).clamp(a + 1, width);
                for slot in lane.iter_mut().take(b.min(width)).skip(a.min(width - 1)) {
                    if priority(e.kind) > slot.1 {
                        *slot = (e.kind.symbol(), priority(e.kind));
                    }
                }
            }
            out.push_str(&format!("dev{d:<2} |"));
            out.extend(lane.iter().map(|&(c, _)| c));
            out.push_str("|\n");
        }
        out.push_str(&format!(
            "       span {:.1} us   (K kernel, c copy, A collective, s sync)\n",
            (hi - lo) * 1e6
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let mut t = Trace::default();
        t.record(0, EventKind::H2dCopy, "copy b0", 0.0, 1.0);
        t.record(0, EventKind::Kernel, "point b0", 1.0, 3.0);
        t.record(1, EventKind::Kernel, "point b0", 0.5, 2.0);
        t.record(0, EventKind::Collective, "allreduce", 3.0, 4.0);
        t.record(1, EventKind::Collective, "allreduce", 3.0, 4.0);
        t
    }

    #[test]
    fn span_and_busy_time() {
        let t = sample();
        assert_eq!(t.span(), Some((0.0, 4.0)));
        assert_eq!(t.busy_time(0, EventKind::Kernel), 2.0);
        assert_eq!(t.busy_time(1, EventKind::Kernel), 1.5);
        assert_eq!(t.busy_time(1, EventKind::H2dCopy), 0.0);
    }

    #[test]
    fn gantt_renders_lanes() {
        let g = sample().render_gantt(40);
        let lines: Vec<&str> = g.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("dev0"));
        assert!(lines[0].contains('c') && lines[0].contains('K') && lines[0].contains('A'));
        assert!(lines[1].contains('K'));
    }

    #[test]
    fn empty_trace() {
        assert_eq!(Trace::default().span(), None);
        assert!(Trace::default().render_gantt(40).contains("empty"));
    }

    #[test]
    fn merge_combines() {
        let mut a = sample();
        let mut b = Trace::default();
        b.record(2, EventKind::HostSync, "sync", 0.0, 0.5);
        a.merge(b);
        assert_eq!(a.events.len(), 6);
        assert!(a.render_gantt(30).contains("dev2"));
    }

    #[test]
    fn priority_overlap() {
        let mut t = Trace::default();
        t.record(0, EventKind::H2dCopy, "copy", 0.0, 10.0);
        t.record(0, EventKind::Kernel, "kernel", 0.0, 10.0);
        let g = t.render_gantt(20);
        // Kernel wins the overlap everywhere.
        assert!(!g.lines().next().unwrap().contains('c'));
    }
}

//! Device specifications and the warp-centric kernel cost model.
//!
//! The simulator executes kernel *logic* for real on host threads while
//! billing simulated time from an analytical model of the launch. The
//! model has two regimes, and a launch is charged the slower of the two:
//!
//! * **compute**: warp-cycles accumulated by the real execution
//!   (per-vertex overhead + per-32-wide-edge-wave cost) divided by the
//!   device's effective warp-level parallelism;
//! * **memory**: bytes touched divided by achieved HBM bandwidth.
//!
//! Device presets carry the published physical parameters of the NVIDIA
//! A100 (SXM4 40 GB) and V100 (SXM3 32 GB), so generational speedups in
//! the harness derive from the same ratios the paper attributes them to
//! (SM count, clock, memory bandwidth).

/// Physical description of one GPU.
#[derive(Clone, Debug, PartialEq)]
pub struct DeviceSpec {
    /// Marketing name, e.g. `"A100-SXM4-40GB"`.
    pub name: &'static str,
    /// Streaming multiprocessor count (A100: 108, V100: 80).
    pub sm_count: u32,
    /// Boost clock in GHz (A100: 1.41, V100: 1.53).
    pub clock_ghz: f64,
    /// Global (HBM2) memory capacity in bytes.
    pub mem_bytes: u64,
    /// Peak HBM bandwidth in GB/s (A100: 1555, V100: 900).
    pub mem_bw_gbps: f64,
    /// Fraction of peak bandwidth an irregular graph kernel achieves.
    /// A100's 40 MB L2 absorbs more of the irregular traffic than V100's
    /// 6 MB, so its achieved fraction is higher.
    pub mem_efficiency: f64,
    /// Warp width (32 on all NVIDIA parts).
    pub warp_size: u32,
    /// Maximum resident warps per SM (64 on both Volta and Ampere).
    pub max_warps_per_sm: u32,
}

impl DeviceSpec {
    /// NVIDIA A100-SXM4-40GB ("Ampere", DGX-A100).
    pub fn a100() -> Self {
        DeviceSpec {
            name: "A100-SXM4-40GB",
            sm_count: 108,
            clock_ghz: 1.41,
            mem_bytes: 40 * (1u64 << 30),
            mem_bw_gbps: 1555.0,
            mem_efficiency: 0.65,
            warp_size: 32,
            max_warps_per_sm: 64,
        }
    }

    /// NVIDIA V100-SXM3-32GB ("Volta", DGX-2).
    pub fn v100() -> Self {
        DeviceSpec {
            name: "V100-SXM3-32GB",
            sm_count: 80,
            clock_ghz: 1.53,
            mem_bytes: 32 * (1u64 << 30),
            mem_bw_gbps: 900.0,
            mem_efficiency: 0.45,
            warp_size: 32,
            max_warps_per_sm: 64,
        }
    }

    /// NVIDIA H100-SXM5-80GB ("Hopper", DGX-H100) — one generation past
    /// the paper's evaluation.
    pub fn h100() -> Self {
        DeviceSpec {
            name: "H100-SXM5-80GB",
            sm_count: 132,
            clock_ghz: 1.98,
            mem_bytes: 80 * (1u64 << 30),
            mem_bw_gbps: 3350.0,
            mem_efficiency: 0.70,
            warp_size: 32,
            max_warps_per_sm: 64,
        }
    }

    /// NVIDIA B200-SXM-192GB ("Blackwell", GB200 NVL72) — the rack-scale
    /// platform the paper's introduction points to ("up to 72 latest
    /// NVIDIA Blackwell GPUs interconnected within a rack using NVLink").
    pub fn b200() -> Self {
        DeviceSpec {
            name: "B200-SXM-192GB",
            sm_count: 148,
            clock_ghz: 1.96,
            mem_bytes: 192 * (1u64 << 30),
            mem_bw_gbps: 8000.0,
            mem_efficiency: 0.70,
            warp_size: 32,
            max_warps_per_sm: 64,
        }
    }

    /// A deliberately tiny device for tests: forces batching on small
    /// graphs.
    pub fn toy(mem_bytes: u64) -> Self {
        DeviceSpec {
            name: "TOY",
            sm_count: 4,
            clock_ghz: 1.0,
            mem_bytes,
            mem_bw_gbps: 100.0,
            mem_efficiency: 1.0,
            warp_size: 32,
            max_warps_per_sm: 64,
        }
    }

    /// Peak achieved memory bandwidth in bytes/second.
    pub fn achieved_bw_bytes(&self) -> f64 {
        self.mem_bw_gbps * 1e9 * self.mem_efficiency
    }

    /// Clock in Hz.
    pub fn clock_hz(&self) -> f64 {
        self.clock_ghz * 1e9
    }

    /// Simulated duration of a kernel launch described by `stats`.
    pub fn kernel_time(&self, cost: &CostModel, stats: &KernelStats) -> f64 {
        // Early-exited lanes (matched/retired vertices) cost ~2 cycles; the
        // full per-vertex overhead applies only to vertices that scanned.
        let warp_cycles = stats.vertices_processed as f64 * cost.cycles_per_vertex
            + stats.vertices as f64 * 2.0
            + stats.edge_waves as f64 * cost.cycles_per_wave;
        // Effective concurrent warps: bounded by what was launched and by
        // the device's sustained warp-issue capacity.
        let parallel =
            (stats.warps_active.max(1) as f64).min(self.sm_count as f64 * cost.warps_per_sm_exec);
        let balanced = warp_cycles / parallel;
        // A single overloaded warp bounds the launch from below.
        let straggler = stats.max_warp_waves as f64 * cost.cycles_per_wave
            + stats.max_warp_vertices as f64 * cost.cycles_per_vertex;
        let compute_s = balanced.max(straggler) / self.clock_hz();
        let mem_s = (stats.bytes_read + stats.bytes_written) as f64 / self.achieved_bw_bytes();
        cost.kernel_launch_us * 1e-6 + compute_s.max(mem_s)
    }

    /// Achieved-occupancy estimate for a launch: active warps relative to
    /// the device's occupancy target. Matches the Nsight "achieved
    /// occupancy" character used in the paper's Fig. 11: large launches
    /// saturate near 1.0, launches that have outrun their useful work sink
    /// toward 0.
    pub fn occupancy(&self, cost: &CostModel, stats: &KernelStats) -> f64 {
        let target = self.sm_count as f64 * cost.occupancy_target_warps;
        (stats.warps_active as f64 / target).min(1.0)
    }
}

/// Execution statistics of one kernel launch, accumulated by the *real*
/// host-side execution of the kernel body.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct KernelStats {
    /// Vertices examined by the launch (including matched vertices that
    /// early-exit).
    pub vertices: u64,
    /// Vertices that performed real work (scanned their neighborhood).
    pub vertices_processed: u64,
    /// Warps launched (`ceil(vertices / vertices_per_warp)`).
    pub warps_launched: u64,
    /// Warps that performed useful work (≥ 1 unmatched vertex in their
    /// group).
    pub warps_active: u64,
    /// 32-wide neighborhood waves executed (Σ over processed vertices of
    /// `ceil(scanned_degree / 32)`).
    pub edge_waves: u64,
    /// Edge slots actually inspected.
    pub edges_scanned: u64,
    /// Sum over warps of (edges scanned by the warp)² — with
    /// `edges_scanned` and `warps_launched` this yields the per-warp
    /// mean/σ reported in the paper's Fig. 8.
    pub warp_edges_sumsq: f64,
    /// Largest per-warp wave count — the straggler bound.
    pub max_warp_waves: u64,
    /// Largest per-warp processed-vertex count.
    pub max_warp_vertices: u64,
    /// Bytes read from device global memory.
    pub bytes_read: u64,
    /// Bytes written to device global memory.
    pub bytes_written: u64,
}

impl KernelStats {
    /// Merge another launch's counters into this one (used for per-phase
    /// aggregation across batches).
    pub fn merge(&mut self, other: &KernelStats) {
        self.vertices += other.vertices;
        self.vertices_processed += other.vertices_processed;
        self.warps_launched += other.warps_launched;
        self.warps_active += other.warps_active;
        self.edge_waves += other.edge_waves;
        self.edges_scanned += other.edges_scanned;
        self.warp_edges_sumsq += other.warp_edges_sumsq;
        self.max_warp_waves = self.max_warp_waves.max(other.max_warp_waves);
        self.max_warp_vertices = self.max_warp_vertices.max(other.max_warp_vertices);
        self.bytes_read += other.bytes_read;
        self.bytes_written += other.bytes_written;
    }
}

/// Tunable constants of the kernel/driver cost model. Defaults are
/// calibrated to reproduce the paper's qualitative behaviour (§IV): the
/// pointing phase dominating single-device runs, collectives dominating
/// multi-device runs, and 2–4× A100-over-V100 generational speedups.
#[derive(Clone, Debug, PartialEq)]
pub struct CostModel {
    /// Fixed kernel launch overhead (µs).
    pub kernel_launch_us: f64,
    /// Warp-cycles per 32-wide edge wave (memory-latency amortized).
    pub cycles_per_wave: f64,
    /// Warp-cycles of per-vertex overhead (pointer setup + shuffle
    /// reduction across the warp).
    pub cycles_per_vertex: f64,
    /// Sustained concurrently-executing warps per SM.
    pub warps_per_sm_exec: f64,
    /// Resident warps per SM at which achieved occupancy reads 1.0.
    pub occupancy_target_warps: f64,
    /// Host-device synchronization cost (µs) — charged per batch when
    /// batches > 2 (paper §III-D).
    pub host_sync_us: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            kernel_launch_us: 5.0,
            cycles_per_wave: 24.0,
            cycles_per_vertex: 48.0,
            warps_per_sm_exec: 8.0,
            occupancy_target_warps: 4.0,
            host_sync_us: 10.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(vertices: u64, waves: u64, bytes: u64) -> KernelStats {
        KernelStats {
            vertices,
            vertices_processed: vertices,
            warps_launched: vertices.div_ceil(4),
            warps_active: vertices.div_ceil(4),
            edge_waves: waves,
            edges_scanned: waves * 32,
            warp_edges_sumsq: 0.0,
            max_warp_waves: waves / vertices.max(1) * 4 + 4,
            max_warp_vertices: 4,
            bytes_read: bytes,
            bytes_written: vertices * 8,
        }
    }

    #[test]
    fn presets_have_published_parameters() {
        let a = DeviceSpec::a100();
        assert_eq!(a.sm_count, 108);
        assert_eq!(a.mem_bytes, 40 * (1 << 30));
        let v = DeviceSpec::v100();
        assert_eq!(v.sm_count, 80);
        assert!(a.achieved_bw_bytes() > v.achieved_bw_bytes());
    }

    #[test]
    fn kernel_time_monotone_in_work() {
        let d = DeviceSpec::a100();
        let c = CostModel::default();
        let small = d.kernel_time(&c, &stats(1000, 2000, 1 << 20));
        let large = d.kernel_time(&c, &stats(100_000, 200_000, 100 << 20));
        assert!(large > small);
    }

    #[test]
    fn a100_faster_than_v100_on_memory_bound_kernel() {
        let c = CostModel::default();
        let s = stats(1_000_000, 4_000_000, 2 << 30);
        let ta = DeviceSpec::a100().kernel_time(&c, &s);
        let tv = DeviceSpec::v100().kernel_time(&c, &s);
        let ratio = tv / ta;
        assert!(ratio > 1.5 && ratio < 5.0, "ratio {ratio}");
    }

    #[test]
    fn launch_overhead_floors_empty_kernels() {
        let d = DeviceSpec::a100();
        let c = CostModel::default();
        let t = d.kernel_time(&c, &KernelStats::default());
        assert!((t - 5e-6).abs() < 1e-9);
    }

    #[test]
    fn straggler_bounds_imbalanced_launch() {
        let d = DeviceSpec::a100();
        let c = CostModel::default();
        let balanced = KernelStats {
            vertices: 1024,
            vertices_processed: 1024,
            warps_launched: 256,
            warps_active: 256,
            edge_waves: 1024,
            edges_scanned: 32 * 1024,
            warp_edges_sumsq: 0.0,
            max_warp_waves: 4,
            max_warp_vertices: 4,
            bytes_read: 0,
            bytes_written: 0,
        };
        let skewed = KernelStats { max_warp_waves: 1024, ..balanced };
        assert!(d.kernel_time(&c, &skewed) > d.kernel_time(&c, &balanced));
    }

    #[test]
    fn occupancy_saturates_and_sinks() {
        let d = DeviceSpec::a100();
        let c = CostModel::default();
        let big = KernelStats { warps_active: 1_000_000, ..Default::default() };
        assert_eq!(d.occupancy(&c, &big), 1.0);
        let tiny = KernelStats { warps_active: 43, ..Default::default() };
        let occ = d.occupancy(&c, &tiny);
        assert!(occ > 0.0 && occ < 0.2, "occ {occ}");
    }

    #[test]
    fn merge_accumulates() {
        let mut a = stats(10, 20, 100);
        let b = stats(5, 8, 50);
        let expect_vertices = a.vertices + b.vertices;
        a.merge(&b);
        assert_eq!(a.vertices, expect_vertices);
        assert_eq!(a.max_warp_vertices, 4);
    }
}

//! # ldgm-gpusim — deterministic multi-GPU platform simulator
//!
//! This crate is the hardware-substitution substrate of the `ldgm`
//! workspace: it stands in for the CUDA + NCCL + NVLink stack of the
//! paper's DGX evaluation machines. Kernel *logic* runs for real on the
//! host (in `ldgm-core`); this crate supplies everything needed to bill
//! that execution with simulated time and to profile it the way the paper
//! does:
//!
//! * [`device`] — [`device::DeviceSpec`] presets (A100/V100) and the
//!   warp-centric kernel cost model over [`device::KernelStats`];
//! * [`interconnect`] — NVLink SXM3/SXM4 and PCIe link models;
//! * [`collective`] — NCCL ring-allreduce and MPI-staged (cuGraph/RAFT)
//!   cost models, plus the exact host-side reductions
//!   [`collective::allreduce_max_merge`] and
//!   [`collective::hierarchical_max_merge`];
//! * [`cluster`] — [`cluster::ClusterTopology`]: N nodes × M GPUs with
//!   per-hop-class links ([`cluster::HopClass`]) behind the hierarchical
//!   collectives and topology-aware placement;
//! * [`timer`] — per-device multi-stream timelines (compute, copy and
//!   collective comm streams) with dual-buffer copy/compute overlap and
//!   explicit host synchronization;
//! * [`platform`] — [`platform::Platform`] presets: DGX-A100, DGX-2,
//!   PCIe variants;
//! * [`profile`] — phase breakdowns, per-iteration warp-edge work, and
//!   occupancy records (the paper's Figs. 5, 7, 8, 11);
//! * [`metrics`] — named counter/gauge/histogram registry every matcher
//!   fills as it runs, with the canonical name schema in
//!   [`metrics::names`];
//! * [`runtime`] — [`runtime::SimRuntime`], the shared execution/billing
//!   layer every simulated engine runs on: typed kernel/copy/sync/
//!   collective operations with billing, tracing and metric emission in
//!   one place, and a [`runtime::SimRuntime::finish`] that guarantees
//!   `phases.total() == sim_time`;
//! * [`export`] — Chrome-trace/Perfetto JSON export and timeline phase
//!   attribution;
//! * [`report`] — the versioned JSON run-report schema behind
//!   `ldgm match --report-json`;
//! * [`json`] — the dependency-free JSON value type the above build on.

pub mod cluster;
pub mod collective;
pub mod device;
pub mod export;
pub mod interconnect;
pub mod json;
pub mod metrics;
pub mod platform;
pub mod profile;
pub mod report;
pub mod runtime;
pub mod timer;
pub mod trace;

pub use cluster::{ClusterTopology, HopClass};
pub use collective::{allreduce_max_merge, hierarchical_max_merge, CommModel, NONE_SENTINEL};
pub use device::{CostModel, DeviceSpec, KernelStats};
pub use export::{chrome_trace_json, timeline_breakdown};
pub use interconnect::{Interconnect, Link};
pub use json::Json;
pub use metrics::{HistogramSummary, Metric, MetricsRegistry};
pub use platform::Platform;
pub use profile::{IterationRecord, PhaseBreakdown, RunProfile};
pub use report::RunReport;
pub use runtime::{CommChunk, DeviceCtx, KernelLaunch, RunFinish, SimRuntime};
pub use timer::{run_collective, DeviceTimer};
pub use trace::{EventKind, Trace, TraceEvent};

//! Per-device simulated timelines with dual-buffer stream semantics.
//!
//! Each device carries three logical queues matching the paper's execution
//! structure (§III-B, Fig. 2): a copy engine (async `cudaMemcpyAsync`
//! HtoD), a compute queue (kernel launches), and two batch buffers that
//! alternate between streams. Copy of batch *b+1* overlaps the kernel of
//! batch *b*; a buffer cannot be overwritten until the kernel consuming it
//! has finished; with more than two batches the driver inserts explicit
//! host synchronization (paper §III-D).
//!
//! A fourth queue — the *comm stream* — carries collective operations in
//! overlap mode ([`DeviceTimer::schedule_comm`]): a collective chunk is
//! ordered only behind the previous collective and its own data dependency
//! (`ready`), so its wire time can run under kernels and copies that do
//! not consume the reduced payload. Consumers declare the dependency with
//! [`DeviceTimer::wait_kernel_until`], which holds back the compute queue
//! while leaving the copy engine free to prefetch. Serialized paths
//! (`host_sync`/`drain`/`align_to`) keep the comm stream aligned with the
//! others, so engines that never call `schedule_comm` bill identically to
//! a timer without it.

use crate::interconnect::Link;

/// Simulated clock state of one device.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DeviceTimer {
    /// Host-visible "all prior work complete" point.
    now: f64,
    /// Copy engine available at.
    copy_free: f64,
    /// Compute queue available at.
    kernel_free: f64,
    /// Comm stream (collective queue) available at.
    comm_free: f64,
    /// Per-buffer: last kernel consuming the buffer finishes at.
    buffer_busy: [f64; 2],
    /// Per-buffer: last copy into the buffer finishes at.
    copy_done: [f64; 2],
    /// Copies that had to wait for a buffer's consumer kernel.
    stalls: u64,
    /// Total time copies spent waiting on busy buffers.
    stall_time: f64,
}

impl DeviceTimer {
    /// A fresh timer at t = 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current host-visible time.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Completion time of everything scheduled so far.
    pub fn horizon(&self) -> f64 {
        self.now.max(self.copy_free).max(self.kernel_free).max(self.comm_free)
    }

    /// Completion time of the compute queue (kernels and host progress
    /// only) — what a dependent kernel launch would have to wait for,
    /// ignoring in-flight copies and collectives.
    pub fn compute_done(&self) -> f64 {
        self.now.max(self.kernel_free)
    }

    /// Comm stream availability: when the next collective chunk could
    /// start, data dependencies aside.
    pub fn comm_free(&self) -> f64 {
        self.comm_free
    }

    /// Schedule an async host-to-device copy of `bytes` into buffer `buf`
    /// over `link`. Returns `(start, end)`.
    pub fn schedule_h2d(&mut self, buf: usize, bytes: u64, link: &Link) -> (f64, f64) {
        let ready = self.copy_free.max(self.now);
        let start = ready.max(self.buffer_busy[buf & 1]);
        if start > ready {
            // The dual-buffer scheme ran out of room: the copy engine sat
            // idle waiting for the kernel still consuming this buffer.
            self.stalls += 1;
            self.stall_time += start - ready;
        }
        let end = start + link.transfer_time(bytes);
        self.copy_free = end;
        self.copy_done[buf & 1] = end;
        (start, end)
    }

    /// Schedule a kernel of duration `dur` consuming buffer `buf`.
    /// Returns `(start, end)`.
    pub fn schedule_kernel(&mut self, buf: usize, dur: f64) -> (f64, f64) {
        let start = self.kernel_free.max(self.copy_done[buf & 1]).max(self.now);
        let end = start + dur;
        self.kernel_free = end;
        self.buffer_busy[buf & 1] = end;
        (start, end)
    }

    /// Schedule a kernel that reads only resident global arrays (no batch
    /// buffer dependency), e.g. SETMATES.
    pub fn schedule_kernel_global(&mut self, dur: f64) -> (f64, f64) {
        let start = self.kernel_free.max(self.now);
        let end = start + dur;
        self.kernel_free = end;
        (start, end)
    }

    /// Schedule a collective chunk on the comm stream: ordered behind the
    /// previous collective and its data dependency `ready`, independent of
    /// the compute and copy queues. Returns `(start, end)`.
    pub fn schedule_comm(&mut self, ready: f64, dur: f64) -> (f64, f64) {
        let start = self.comm_free.max(ready);
        let end = start + dur;
        self.comm_free = end;
        (start, end)
    }

    /// Hold the compute queue back until `t` — the consumer side of an
    /// overlapped collective. Host progress (`now`) and the copy engine
    /// stay free, so independent prefetches keep running under the
    /// collective; only dependent kernel launches wait.
    pub fn wait_kernel_until(&mut self, t: f64) {
        self.kernel_free = self.kernel_free.max(t);
    }

    /// Explicit host-device synchronization costing `cost` seconds:
    /// advances `now` past all outstanding work (including in-flight
    /// collectives, via [`DeviceTimer::horizon`]). The comm stream is
    /// waited on, not occupied: a sync never pushes `comm_free` forward,
    /// so later collective chunks are not queued behind it.
    pub fn host_sync(&mut self, cost: f64) {
        let t = self.horizon() + cost;
        self.now = t;
        self.copy_free = t;
        self.kernel_free = t;
    }

    /// Wait for all outstanding work without extra cost. Like
    /// [`DeviceTimer::host_sync`], waits on the comm stream without
    /// occupying it.
    pub fn drain(&mut self) {
        let t = self.horizon();
        self.now = t;
        self.copy_free = t;
        self.kernel_free = t;
    }

    /// Jump the whole timeline to `t` (used after collectives; `t` must not
    /// be in the device's past).
    pub fn align_to(&mut self, t: f64) {
        debug_assert!(t >= self.horizon() - 1e-12, "aligning into the past");
        self.now = t;
        self.copy_free = t;
        self.kernel_free = t;
        self.comm_free = t;
        self.buffer_busy = [t; 2];
        self.copy_done = [t; 2];
    }

    /// Copies that stalled waiting for a buffer's consumer kernel.
    pub fn buffer_stalls(&self) -> u64 {
        self.stalls
    }

    /// Total simulated time copies spent stalled on busy buffers.
    pub fn buffer_stall_time(&self) -> f64 {
        self.stall_time
    }
}

/// Run a barrier collective across `timers`: all devices drain, the
/// operation costs `cost` seconds, and every timeline is aligned to the
/// common completion point. Returns `(start, end)`.
pub fn run_collective(timers: &mut [DeviceTimer], cost: f64) -> (f64, f64) {
    let start = timers.iter().map(DeviceTimer::horizon).fold(0.0_f64, f64::max);
    let end = start + cost;
    for t in timers.iter_mut() {
        t.align_to(end);
    }
    (start, end)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interconnect::Link;

    const L: Link = Link { name: "test", bw_gbps: 1.0, latency_us: 0.0 };

    #[test]
    fn copy_and_kernel_overlap_across_buffers() {
        let mut t = DeviceTimer::new();
        // Batch 0: copy then kernel.
        let (c0s, c0e) = t.schedule_h2d(0, 1_000_000_000, &L); // 1 s
        assert_eq!((c0s, c0e), (0.0, 1.0));
        let (k0s, k0e) = t.schedule_kernel(0, 2.0);
        assert_eq!((k0s, k0e), (1.0, 3.0));
        // Batch 1 copy starts immediately after copy 0 (copy engine free at
        // 1.0, buffer 1 never used): overlaps kernel 0.
        let (c1s, c1e) = t.schedule_h2d(1, 1_000_000_000, &L);
        assert_eq!((c1s, c1e), (1.0, 2.0));
        // Kernel 1 waits for kernel 0 (compute queue), not the copy.
        let (k1s, k1e) = t.schedule_kernel(1, 2.0);
        assert_eq!((k1s, k1e), (3.0, 5.0));
        assert_eq!(c1e, 2.0);
        assert_eq!(t.horizon(), 5.0);
    }

    #[test]
    fn buffer_reuse_waits_for_consumer() {
        let mut t = DeviceTimer::new();
        t.schedule_h2d(0, 1_000_000_000, &L); // copy0: 0-1
        t.schedule_kernel(0, 5.0); // kernel0: 1-6 holds buffer 0
                                   // Copy into buffer 0 again (batch 2) must wait for kernel0.
        let (c2s, _) = t.schedule_h2d(2, 1_000_000_000, &L);
        assert_eq!(c2s, 6.0);
        // That wait is a recorded buffer stall: engine free at 1, start 6.
        assert_eq!(t.buffer_stalls(), 1);
        assert_eq!(t.buffer_stall_time(), 5.0);
    }

    #[test]
    fn unstalled_copies_record_no_stall() {
        let mut t = DeviceTimer::new();
        t.schedule_h2d(0, 1_000_000_000, &L);
        t.schedule_h2d(1, 1_000_000_000, &L);
        assert_eq!(t.buffer_stalls(), 0);
        assert_eq!(t.buffer_stall_time(), 0.0);
    }

    #[test]
    fn kernel_waits_for_its_copy() {
        let mut t = DeviceTimer::new();
        t.schedule_h2d(0, 3_000_000_000, &L); // 0-3
        let (ks, _) = t.schedule_kernel(0, 1.0);
        assert_eq!(ks, 3.0);
    }

    #[test]
    fn host_sync_adds_cost_past_horizon() {
        let mut t = DeviceTimer::new();
        t.schedule_h2d(0, 1_000_000_000, &L);
        t.schedule_kernel(0, 2.0); // horizon 3
        t.host_sync(0.5);
        assert_eq!(t.now(), 3.5);
    }

    #[test]
    fn global_kernel_ignores_buffers() {
        let mut t = DeviceTimer::new();
        t.schedule_h2d(0, 10_000_000_000, &L); // copy busy until 10
        let (s, e) = t.schedule_kernel_global(1.0);
        assert_eq!((s, e), (0.0, 1.0));
    }

    #[test]
    fn collective_aligns_all_devices() {
        let mut a = DeviceTimer::new();
        a.schedule_kernel_global(2.0);
        let mut b = DeviceTimer::new();
        b.schedule_kernel_global(5.0);
        let mut ts = [a, b];
        let (start, end) = run_collective(&mut ts, 1.0);
        assert_eq!(start, 5.0);
        assert_eq!(end, 6.0);
        assert_eq!(ts[0].now(), 6.0);
        assert_eq!(ts[1].now(), 6.0);
    }

    #[test]
    fn drain_is_free() {
        let mut t = DeviceTimer::new();
        t.schedule_kernel_global(2.0);
        t.drain();
        assert_eq!(t.now(), 2.0);
    }

    #[test]
    fn comm_stream_runs_under_kernels() {
        let mut t = DeviceTimer::new();
        t.schedule_kernel_global(4.0); // compute busy 0-4
                                       // A chunk whose payload was ready at 1.0 starts at 1.0, under
                                       // the running kernel.
        let (s, e) = t.schedule_comm(1.0, 2.0);
        assert_eq!((s, e), (1.0, 3.0));
        // The next chunk queues behind the first on the comm stream.
        let (s2, e2) = t.schedule_comm(0.5, 1.0);
        assert_eq!((s2, e2), (3.0, 4.0));
        assert_eq!(t.horizon(), 4.0);
    }

    #[test]
    fn wait_kernel_holds_compute_not_copies() {
        let mut t = DeviceTimer::new();
        t.schedule_kernel_global(1.0);
        t.wait_kernel_until(5.0);
        // Dependent kernels start at 5; the copy engine is still free.
        let (ks, _) = t.schedule_kernel_global(1.0);
        assert_eq!(ks, 5.0);
        let mut t2 = DeviceTimer::new();
        t2.wait_kernel_until(5.0);
        let (cs, _) = t2.schedule_h2d(0, 1_000_000_000, &L);
        assert_eq!(cs, 0.0, "prefetch runs under the awaited collective");
    }

    #[test]
    fn sync_waits_on_comm_stream_without_occupying_it() {
        let mut t = DeviceTimer::new();
        t.schedule_comm(0.0, 2.0);
        // The sync waits past the in-flight collective (horizon 2.0) but
        // leaves the comm stream free at 2.0 for the next chunk.
        t.host_sync(0.5);
        assert_eq!(t.now(), 2.5);
        assert_eq!(t.comm_free(), 2.0);
        t.align_to(4.0);
        assert_eq!(t.comm_free(), 4.0);
        t.drain();
        assert_eq!(t.comm_free(), 4.0);
    }

    #[test]
    fn unused_comm_stream_changes_nothing() {
        // A timer that never schedules comm work behaves exactly as before
        // the comm stream existed: horizon, sync and drain are unaffected.
        let mut t = DeviceTimer::new();
        t.schedule_h2d(0, 1_000_000_000, &L);
        t.schedule_kernel(0, 2.0);
        assert_eq!(t.horizon(), 3.0);
        t.host_sync(0.5);
        assert_eq!(t.now(), 3.5);
    }
}

//! Collective-communication cost models and host-side reductions.
//!
//! LD-GPU synchronizes twice per iteration with `ncclAllReduce` over the
//! `pointers` and `mate` arrays (Algorithm 2, lines 7 and 9). The cost
//! model is the standard ring-allreduce bound — `2·(N−1)/N · bytes / bw`
//! plus per-hop latency and a launch overhead — evaluated over the
//! platform's peer fabric. A second, MPI-style model (RAFT-comms as used
//! by RAPIDS cuGraph, Table V) stages traffic through host memory with
//! much higher software overhead.
//!
//! The *data* reduction itself is performed for real by
//! [`allreduce_max_merge`], which the driver calls at the same program
//! points — vertex partitions are disjoint, so an element-wise max over
//! sentinel-initialized arrays reproduces NCCL's behaviour exactly.

use crate::interconnect::Link;

/// Which communication runtime the collectives emulate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum CommModel {
    /// NCCL over CUDA streams (the paper's implementation).
    Nccl {
        /// Collective launch overhead in µs (~20 µs for NCCL).
        launch_us: f64,
    },
    /// MPI-based RAFT-comms as in multi-GPU cuGraph: host-staged rings
    /// with per-call software overhead an order of magnitude higher.
    MpiStaged {
        /// Per-call software overhead in µs.
        launch_us: f64,
        /// Effective bandwidth derating versus the raw link.
        bw_derate: f64,
    },
    /// Hierarchical multi-node collective (the paper's §V distributed
    /// future work): NVLink reduce-scatter within each node, an
    /// inter-node ring over the node leaders, then an intra-node
    /// broadcast. The `peer` link passed to
    /// [`CommModel::allreduce_time`] is the *intra-node* fabric.
    Hierarchical {
        /// GPUs per node.
        gpus_per_node: usize,
        /// Inter-node link (e.g. [`crate::interconnect::Link::INFINIBAND_HDR`]).
        inter: Link,
        /// NCCL launch overhead in µs.
        launch_us: f64,
    },
}

impl CommModel {
    /// Default NCCL model.
    pub fn nccl() -> Self {
        CommModel::Nccl { launch_us: 20.0 }
    }

    /// Default cuGraph/RAFT model.
    pub fn mpi_staged() -> Self {
        CommModel::MpiStaged { launch_us: 250.0, bw_derate: 0.25 }
    }

    /// Simulated duration of an allreduce of `bytes` over `n_devices`
    /// devices connected by `peer`.
    pub fn allreduce_time(&self, peer: &Link, n_devices: usize, bytes: u64) -> f64 {
        match *self {
            CommModel::Nccl { launch_us } => {
                if n_devices <= 1 {
                    // Single-rank NCCL degenerates to a cheap device-local
                    // pass: a fraction of the launch cost plus one sweep at
                    // HBM-class bandwidth.
                    return launch_us * 0.1 * 1e-6 + bytes as f64 / 400e9;
                }
                let n = n_devices as f64;
                let ring_bytes = 2.0 * (n - 1.0) / n * bytes as f64;
                launch_us * 1e-6
                    + 2.0 * (n - 1.0) * peer.latency_us * 1e-6
                    + ring_bytes / (peer.bw_gbps * 1e9)
            }
            CommModel::MpiStaged { launch_us, bw_derate } => {
                if n_devices <= 1 {
                    return launch_us * 1e-6;
                }
                let n = n_devices as f64;
                let ring_bytes = 2.0 * (n - 1.0) / n * bytes as f64;
                launch_us * 1e-6
                    + 2.0 * (n - 1.0) * (peer.latency_us * 4.0) * 1e-6
                    + ring_bytes / (peer.bw_gbps * 1e9 * bw_derate)
            }
            CommModel::Hierarchical { gpus_per_node, inter, launch_us } => {
                let local = CommModel::Nccl { launch_us };
                let per_node = n_devices.min(gpus_per_node.max(1));
                let nodes = n_devices.div_ceil(gpus_per_node.max(1)).max(1);
                if nodes <= 1 {
                    return local.allreduce_time(peer, n_devices, bytes);
                }
                // Intra-node reduce-scatter + broadcast ≈ one intra-node
                // allreduce; inter-node ring over the node leaders carries
                // the full payload across the slow link.
                let intra = local.allreduce_time(peer, per_node, bytes);
                let nn = nodes as f64;
                let inter_ring = 2.0 * (nn - 1.0) / nn * bytes as f64 / (inter.bw_gbps * 1e9)
                    + 2.0 * (nn - 1.0) * inter.latency_us * 1e-6;
                intra + inter_ring + launch_us * 1e-6
            }
        }
    }
}

/// Sentinel for "no value" entries in reduced arrays.
pub const NONE_SENTINEL: u64 = u64::MAX;

/// Host-side realization of the allreduce: element-wise merge of per-device
/// arrays where exactly one device holds a non-sentinel value per slot
/// (disjoint vertex ownership). `u64::MAX` is the identity. Writes the
/// merged result back into every device's array.
///
/// # Panics
/// In debug builds, panics if two devices claim the same slot with
/// different values — that would indicate a partitioning bug.
pub fn allreduce_max_merge(arrays: &mut [&mut [u64]]) {
    if arrays.is_empty() {
        return;
    }
    let len = arrays[0].len();
    debug_assert!(arrays.iter().all(|a| a.len() == len), "ragged allreduce");
    for slot in 0..len {
        let mut merged = NONE_SENTINEL;
        for a in arrays.iter() {
            let v = a[slot];
            if v != NONE_SENTINEL {
                debug_assert!(
                    merged == NONE_SENTINEL || merged == v,
                    "conflicting values {merged} vs {v} at slot {slot}"
                );
                if merged == NONE_SENTINEL {
                    merged = v;
                }
            }
        }
        for a in arrays.iter_mut() {
            a[slot] = merged;
        }
    }
}

/// Staged (hierarchical) realization of the allreduce on a cluster:
/// merge within each node group of `gpus_per_node` consecutive devices
/// (reduce-scatter + gather, leaving every group member with the
/// node-local merge), merge across the node leaders (the inter-node
/// ring), then broadcast the reduced array back through every node.
/// Bit-identical to [`allreduce_max_merge`] for disjoint ownership —
/// only the billed schedule differs, never the reduced values.
///
/// # Panics
/// In debug builds, panics on conflicting non-sentinel values for one
/// slot (a partitioning bug), like the flat merge.
pub fn hierarchical_max_merge(arrays: &mut [&mut [u64]], gpus_per_node: usize) {
    let gpn = gpus_per_node.max(1);
    if arrays.len() <= gpn {
        return allreduce_max_merge(arrays);
    }
    let len = arrays[0].len();
    debug_assert!(arrays.iter().all(|a| a.len() == len), "ragged allreduce");
    // Stage 1: intra-node merge per group.
    for group in arrays.chunks_mut(gpn) {
        allreduce_max_merge(group);
    }
    // Stage 2: ring across the node leaders (first device of each group).
    let mut merged = vec![NONE_SENTINEL; len];
    for leader in (0..arrays.len()).step_by(gpn) {
        for (slot, m) in merged.iter_mut().enumerate() {
            let v = arrays[leader][slot];
            if v != NONE_SENTINEL {
                debug_assert!(
                    *m == NONE_SENTINEL || *m == v,
                    "conflicting values {m} vs {v} at slot {slot}"
                );
                if *m == NONE_SENTINEL {
                    *m = v;
                }
            }
        }
    }
    // Stage 3: broadcast back through every node.
    for a in arrays.iter_mut() {
        a.copy_from_slice(&merged);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_cost_grows_with_devices_for_small_payloads() {
        let m = CommModel::nccl();
        let l = Link::NVLINK_SXM4;
        let t2 = m.allreduce_time(&l, 2, 1 << 20);
        let t8 = m.allreduce_time(&l, 8, 1 << 20);
        assert!(t8 > t2, "latency term should dominate small payloads");
    }

    #[test]
    fn ring_bandwidth_term_saturates_for_large_payloads() {
        let m = CommModel::nccl();
        let l = Link::NVLINK_SXM4;
        // 2(N−1)/N approaches 2: 8-dev cost < 2× the 2-dev cost for huge
        // payloads.
        let t2 = m.allreduce_time(&l, 2, 8 << 30);
        let t8 = m.allreduce_time(&l, 8, 8 << 30);
        assert!(t8 < 2.0 * t2, "t2 {t2} t8 {t8}");
    }

    #[test]
    fn single_device_is_cheap() {
        let m = CommModel::nccl();
        let l = Link::NVLINK_SXM4;
        // Typical pointer-array payloads: the local pass avoids both the
        // ring latency and most of the launch overhead.
        assert!(m.allreduce_time(&l, 1, 1 << 20) < 0.2 * m.allreduce_time(&l, 2, 1 << 20));
    }

    #[test]
    fn mpi_model_order_of_magnitude_slower() {
        let nccl = CommModel::nccl();
        let mpi = CommModel::mpi_staged();
        let l = Link::NVLINK_SXM4;
        let ratio = mpi.allreduce_time(&l, 4, 1 << 20) / nccl.allreduce_time(&l, 4, 1 << 20);
        assert!(ratio > 5.0, "ratio {ratio}");
    }

    #[test]
    fn nvlink_collectives_beat_pcie() {
        let m = CommModel::nccl();
        let big = 64 << 20;
        let nv = m.allreduce_time(&Link::NVLINK_SXM4, 8, big);
        let pcie = m.allreduce_time(&Link::PCIE_GEN4, 8, big);
        assert!(pcie / nv > 3.0, "ratio {}", pcie / nv);
    }

    #[test]
    fn merge_is_exact_for_disjoint_ownership() {
        let mut a = vec![1, NONE_SENTINEL, NONE_SENTINEL, 7];
        let mut b = vec![NONE_SENTINEL, 5, NONE_SENTINEL, NONE_SENTINEL];
        allreduce_max_merge(&mut [&mut a, &mut b]);
        assert_eq!(a, vec![1, 5, NONE_SENTINEL, 7]);
        assert_eq!(b, vec![1, 5, NONE_SENTINEL, 7]);
    }

    #[test]
    fn merge_empty_input() {
        allreduce_max_merge(&mut []);
    }

    #[test]
    #[should_panic(expected = "conflicting")]
    #[cfg(debug_assertions)]
    fn merge_detects_ownership_conflicts() {
        let mut a = vec![1u64];
        let mut b = vec![2u64];
        allreduce_max_merge(&mut [&mut a, &mut b]);
    }
}

#[cfg(test)]
mod hierarchical_tests {
    use super::*;

    #[test]
    fn single_node_degenerates_to_nccl() {
        let h = CommModel::Hierarchical {
            gpus_per_node: 8,
            inter: Link::INFINIBAND_HDR,
            launch_us: 20.0,
        };
        let n = CommModel::Nccl { launch_us: 20.0 };
        let l = Link::NVLINK_SXM4;
        assert_eq!(h.allreduce_time(&l, 8, 1 << 20), n.allreduce_time(&l, 8, 1 << 20));
    }

    #[test]
    fn crossing_nodes_costs_more_than_staying_inside() {
        let h = CommModel::Hierarchical {
            gpus_per_node: 8,
            inter: Link::INFINIBAND_HDR,
            launch_us: 20.0,
        };
        let l = Link::NVLINK_SXM4;
        // 16 GPUs over 2 nodes is slower than 8 GPUs in 1 node, despite
        // doubling the devices: the IB ring dominates.
        let t8 = h.allreduce_time(&l, 8, 8 << 20);
        let t16 = h.allreduce_time(&l, 16, 8 << 20);
        assert!(t16 > 2.0 * t8, "t8 {t8} t16 {t16}");
    }

    #[test]
    fn inter_node_cost_grows_with_node_count() {
        let h = CommModel::Hierarchical {
            gpus_per_node: 8,
            inter: Link::INFINIBAND_HDR,
            launch_us: 20.0,
        };
        let l = Link::NVLINK_SXM4;
        let t2 = h.allreduce_time(&l, 16, 1 << 20);
        let t4 = h.allreduce_time(&l, 32, 1 << 20);
        assert!(t4 > t2);
    }
}

#[cfg(test)]
mod staged_merge_tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn staged_merge_is_exact_across_two_nodes() {
        // 4 devices, 2 per node: slot ownership spread over all stages.
        let mut a = vec![1, NONE_SENTINEL, NONE_SENTINEL, NONE_SENTINEL];
        let mut b = vec![NONE_SENTINEL, 5, NONE_SENTINEL, NONE_SENTINEL];
        let mut c = vec![NONE_SENTINEL, NONE_SENTINEL, 9, NONE_SENTINEL];
        let mut d = vec![NONE_SENTINEL; 4];
        hierarchical_max_merge(&mut [&mut a, &mut b, &mut c, &mut d], 2);
        let want = vec![1, 5, 9, NONE_SENTINEL];
        assert_eq!(a, want);
        assert_eq!(b, want);
        assert_eq!(c, want);
        assert_eq!(d, want);
    }

    #[test]
    fn single_node_degenerates_to_flat_merge() {
        let mut a = vec![1, NONE_SENTINEL];
        let mut b = vec![NONE_SENTINEL, 2];
        hierarchical_max_merge(&mut [&mut a, &mut b], 8);
        assert_eq!(a, vec![1, 2]);
        assert_eq!(b, vec![1, 2]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The hierarchical and flat allreduce realizations produce
        /// bit-identical reduced values for every disjoint-ownership
        /// input and node shape — only billed time may differ.
        #[test]
        fn hierarchical_matches_flat_bit_for_bit(
            slots in prop::collection::vec((0usize..16, 1u64..1_000_000), 1..80),
            ndev in 2usize..13,
            gpn in 1usize..6,
        ) {
            let len = slots.len();
            let mut flat: Vec<Vec<u64>> = vec![vec![NONE_SENTINEL; len]; ndev];
            for (slot, &(owner, v)) in slots.iter().enumerate() {
                flat[owner % ndev][slot] = v;
            }
            let mut hier = flat.clone();
            {
                let mut refs: Vec<&mut [u64]> =
                    flat.iter_mut().map(Vec::as_mut_slice).collect();
                allreduce_max_merge(&mut refs);
            }
            {
                let mut refs: Vec<&mut [u64]> =
                    hier.iter_mut().map(Vec::as_mut_slice).collect();
                hierarchical_max_merge(&mut refs, gpn);
            }
            prop_assert_eq!(flat, hier);
        }
    }
}

//! Multi-GPU platform presets.
//!
//! A [`Platform`] bundles everything the LD-GPU driver needs to bill
//! simulated time: the device model, the node's interconnect, the kernel
//! cost model and the collective runtime. The two presets mirror the
//! paper's evaluation machines — the DGX-A100 (8× A100, NVLink SXM4) and
//! the DGX-2 (16× V100, NVLink SXM3) — plus the PCIe variant used in the
//! Fig. 9 interconnect study.

use crate::collective::CommModel;
use crate::device::{CostModel, DeviceSpec};
use crate::interconnect::Interconnect;

/// A single-node multi-GPU platform.
#[derive(Clone, Debug, PartialEq)]
pub struct Platform {
    /// Platform name for reports.
    pub name: &'static str,
    /// Per-device model (homogeneous nodes).
    pub device: DeviceSpec,
    /// Number of GPUs installed.
    pub max_devices: usize,
    /// Node fabric (host link + peer fabric).
    pub interconnect: Interconnect,
    /// Kernel/driver cost model.
    pub cost: CostModel,
    /// Collective runtime model.
    pub comm: CommModel,
}

impl Platform {
    /// NVIDIA DGX-A100: 8× A100-SXM4-40GB over NVSwitch.
    pub fn dgx_a100() -> Self {
        Platform {
            name: "DGX-A100",
            device: DeviceSpec::a100(),
            max_devices: 8,
            interconnect: Interconnect::dgx_a100(),
            cost: CostModel::default(),
            comm: CommModel::nccl(),
        }
    }

    /// NVIDIA DGX-2: 16× V100-SXM3-32GB over NVSwitch.
    pub fn dgx2() -> Self {
        Platform {
            name: "DGX-2",
            device: DeviceSpec::v100(),
            max_devices: 16,
            interconnect: Interconnect::dgx2(),
            cost: CostModel::default(),
            comm: CommModel::nccl(),
        }
    }

    /// NVIDIA DGX-H100: 8× H100-SXM5-80GB over NVSwitch (one generation
    /// past the paper).
    pub fn dgx_h100() -> Self {
        Platform {
            name: "DGX-H100",
            device: DeviceSpec::h100(),
            max_devices: 8,
            interconnect: Interconnect {
                h2d: crate::interconnect::Link::PCIE_GEN5,
                peer: crate::interconnect::Link::NVLINK_SXM5,
            },
            cost: CostModel::default(),
            comm: CommModel::nccl(),
        }
    }

    /// NVIDIA GB200 NVL72: 72× B200 in one NVLink-5 rack domain — the
    /// Blackwell platform the paper's introduction motivates.
    pub fn nvl72() -> Self {
        Platform {
            name: "GB200-NVL72",
            device: DeviceSpec::b200(),
            max_devices: 72,
            interconnect: Interconnect {
                h2d: crate::interconnect::Link::PCIE_GEN5,
                peer: crate::interconnect::Link::NVLINK_5,
            },
            cost: CostModel::default(),
            comm: CommModel::nccl(),
        }
    }

    /// A cluster of DGX-A100 nodes joined by InfiniBand HDR — the
    /// distributed setting the paper's §V names as future work.
    /// Collectives become hierarchical (NVLink within a node, IB ring
    /// across node leaders).
    pub fn dgx_a100_cluster(nodes: usize) -> Self {
        assert!(nodes >= 1);
        let base = Self::dgx_a100();
        Platform {
            name: "DGX-A100-cluster",
            max_devices: 8 * nodes,
            comm: CommModel::Hierarchical {
                gpus_per_node: 8,
                inter: crate::interconnect::Link::INFINIBAND_HDR,
                launch_us: 20.0,
            },
            ..base
        }
    }

    /// A100 node with PCIe-only communication (Fig. 9's baseline).
    pub fn pcie_a100() -> Self {
        Platform {
            name: "A100-PCIe",
            device: DeviceSpec::a100(),
            max_devices: 8,
            interconnect: Interconnect::pcie_a100(),
            cost: CostModel::default(),
            comm: CommModel::nccl(),
        }
    }

    /// Replace the collective runtime (e.g. the cuGraph/RAFT model).
    pub fn with_comm(mut self, comm: CommModel) -> Self {
        self.comm = comm;
        self
    }

    /// Override per-device memory (scaled-down experiments force batching
    /// by shrinking capacity instead of growing the graph).
    pub fn with_device_memory(mut self, bytes: u64) -> Self {
        self.device.mem_bytes = bytes;
        self
    }

    /// Divide every *fixed* overhead — kernel launch, host sync,
    /// collective launch, link latencies — by `div`. Scaled-down
    /// experiments shrink graphs (hence kernel and bandwidth terms) by a
    /// known factor; the fixed microsecond-scale overheads must shrink by
    /// the same factor or they dominate artificially and erase the
    /// relative behaviour the paper measures at full scale.
    pub fn with_overheads_scaled(mut self, div: f64) -> Self {
        assert!(div > 0.0);
        self.cost.kernel_launch_us /= div;
        self.cost.host_sync_us /= div;
        self.interconnect.h2d.latency_us /= div;
        self.interconnect.peer.latency_us /= div;
        self.comm = match self.comm {
            crate::collective::CommModel::Nccl { launch_us } => {
                crate::collective::CommModel::Nccl { launch_us: launch_us / div }
            }
            crate::collective::CommModel::MpiStaged { launch_us, bw_derate } => {
                crate::collective::CommModel::MpiStaged { launch_us: launch_us / div, bw_derate }
            }
            crate::collective::CommModel::Hierarchical { gpus_per_node, mut inter, launch_us } => {
                inter.latency_us /= div;
                crate::collective::CommModel::Hierarchical {
                    gpus_per_node,
                    inter,
                    launch_us: launch_us / div,
                }
            }
        };
        self
    }

    /// Every exported preset with its CLI name — the single source of
    /// truth for `--platform` parsing and the `ldgm platforms` listing.
    /// The cluster preset appears with its 4-node default; `toy` is
    /// test-only and deliberately not listed.
    pub fn presets() -> Vec<(&'static str, Platform)> {
        vec![
            ("dgx-a100", Self::dgx_a100()),
            ("dgx2", Self::dgx2()),
            ("dgx-h100", Self::dgx_h100()),
            ("nvl72", Self::nvl72()),
            ("pcie-a100", Self::pcie_a100()),
            ("dgx-a100-cluster", Self::dgx_a100_cluster(4)),
        ]
    }

    /// CLI names of all presets, in listing order.
    pub fn preset_names() -> Vec<&'static str> {
        Self::presets().into_iter().map(|(n, _)| n).collect()
    }

    /// Look up a preset by CLI name.
    pub fn by_name(name: &str) -> Option<Platform> {
        Self::presets().into_iter().find(|(n, _)| *n == name).map(|(_, p)| p)
    }

    /// A tiny deterministic platform for unit tests.
    pub fn toy(max_devices: usize, mem_bytes: u64) -> Self {
        Platform {
            name: "TOY",
            device: DeviceSpec::toy(mem_bytes),
            max_devices,
            interconnect: Interconnect::dgx_a100(),
            cost: CostModel::default(),
            comm: CommModel::nccl(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_machines() {
        let a = Platform::dgx_a100();
        assert_eq!(a.max_devices, 8);
        assert_eq!(a.device.name, "A100-SXM4-40GB");
        let v = Platform::dgx2();
        assert_eq!(v.max_devices, 16);
        assert_eq!(v.device.name, "V100-SXM3-32GB");
    }

    #[test]
    fn pcie_variant_has_slower_peer_fabric() {
        let nv = Platform::dgx_a100();
        let pcie = Platform::pcie_a100();
        assert!(nv.interconnect.peer.bw_gbps > 10.0 * pcie.interconnect.peer.bw_gbps);
    }

    #[test]
    fn future_generation_presets() {
        let h = Platform::dgx_h100();
        assert_eq!(h.max_devices, 8);
        assert!(h.device.achieved_bw_bytes() > Platform::dgx_a100().device.achieved_bw_bytes());
        let nvl = Platform::nvl72();
        assert_eq!(nvl.max_devices, 72);
        assert!(nvl.interconnect.peer.bw_gbps > h.interconnect.peer.bw_gbps);
        assert_eq!(nvl.device.mem_bytes, 192 * (1 << 30));
    }

    #[test]
    fn cluster_preset_is_hierarchical() {
        let c = Platform::dgx_a100_cluster(4);
        assert_eq!(c.max_devices, 32);
        assert!(matches!(c.comm, CommModel::Hierarchical { gpus_per_node: 8, .. }));
    }

    #[test]
    fn preset_registry_is_exhaustive_and_consistent() {
        let presets = Platform::presets();
        assert_eq!(presets.len(), 6);
        for (name, p) in &presets {
            assert_eq!(Platform::by_name(name).as_ref(), Some(p), "{name}");
        }
        assert!(Platform::by_name("toy").is_none());
        assert!(Platform::by_name("bogus").is_none());
        assert_eq!(Platform::preset_names()[0], "dgx-a100");
    }

    #[test]
    fn overrides_compose() {
        let p = Platform::dgx_a100().with_device_memory(1 << 20).with_comm(CommModel::mpi_staged());
        assert_eq!(p.device.mem_bytes, 1 << 20);
        assert!(matches!(p.comm, CommModel::MpiStaged { .. }));
    }
}

//! Multi-GPU platform presets.
//!
//! A [`Platform`] bundles everything the LD-GPU driver needs to bill
//! simulated time: the device model, the node's interconnect, the kernel
//! cost model and the collective runtime. The two presets mirror the
//! paper's evaluation machines — the DGX-A100 (8× A100, NVLink SXM4) and
//! the DGX-2 (16× V100, NVLink SXM3) — plus the PCIe variant used in the
//! Fig. 9 interconnect study.

use crate::cluster::ClusterTopology;
use crate::collective::CommModel;
use crate::device::{CostModel, DeviceSpec};
use crate::interconnect::{Interconnect, Link};

/// A single-node multi-GPU platform.
#[derive(Clone, Debug, PartialEq)]
pub struct Platform {
    /// Platform name for reports.
    pub name: &'static str,
    /// Per-device model (homogeneous nodes).
    pub device: DeviceSpec,
    /// Number of GPUs installed.
    pub max_devices: usize,
    /// Node fabric (host link + peer fabric).
    pub interconnect: Interconnect,
    /// Kernel/driver cost model.
    pub cost: CostModel,
    /// Collective runtime model.
    pub comm: CommModel,
}

impl Platform {
    /// NVIDIA DGX-A100: 8× A100-SXM4-40GB over NVSwitch.
    pub fn dgx_a100() -> Self {
        Platform {
            name: "DGX-A100",
            device: DeviceSpec::a100(),
            max_devices: 8,
            interconnect: Interconnect::dgx_a100(),
            cost: CostModel::default(),
            comm: CommModel::nccl(),
        }
    }

    /// NVIDIA DGX-2: 16× V100-SXM3-32GB over NVSwitch.
    pub fn dgx2() -> Self {
        Platform {
            name: "DGX-2",
            device: DeviceSpec::v100(),
            max_devices: 16,
            interconnect: Interconnect::dgx2(),
            cost: CostModel::default(),
            comm: CommModel::nccl(),
        }
    }

    /// NVIDIA DGX-H100: 8× H100-SXM5-80GB over NVSwitch (one generation
    /// past the paper).
    pub fn dgx_h100() -> Self {
        Platform {
            name: "DGX-H100",
            device: DeviceSpec::h100(),
            max_devices: 8,
            interconnect: Interconnect {
                h2d: crate::interconnect::Link::PCIE_GEN5,
                peer: crate::interconnect::Link::NVLINK_SXM5,
            },
            cost: CostModel::default(),
            comm: CommModel::nccl(),
        }
    }

    /// NVIDIA GB200 NVL72: 72× B200 in one NVLink-5 rack domain — the
    /// Blackwell platform the paper's introduction motivates.
    pub fn nvl72() -> Self {
        Platform {
            name: "GB200-NVL72",
            device: DeviceSpec::b200(),
            max_devices: 72,
            interconnect: Interconnect {
                h2d: crate::interconnect::Link::PCIE_GEN5,
                peer: crate::interconnect::Link::NVLINK_5,
            },
            cost: CostModel::default(),
            comm: CommModel::nccl(),
        }
    }

    /// A cluster of DGX-A100 nodes joined by InfiniBand HDR — the
    /// distributed setting the paper's §V names as future work.
    /// Collectives become hierarchical (NVLink within a node, IB ring
    /// across node leaders).
    pub fn dgx_a100_cluster(nodes: usize) -> Self {
        assert!(nodes >= 1);
        let base = Self::dgx_a100();
        Platform {
            name: "DGX-A100-cluster",
            max_devices: 8 * nodes,
            comm: CommModel::Hierarchical {
                gpus_per_node: 8,
                inter: crate::interconnect::Link::INFINIBAND_HDR,
                launch_us: 20.0,
            },
            ..base
        }
    }

    /// A cluster of A100 nodes on an AWS-EFA-class cloud fabric
    /// (p4d-style): same NVLink islands as the DGX cluster, but the
    /// inter-node hop runs over EFA — lower bandwidth and much higher
    /// latency than InfiniBand HDR.
    pub fn a100_efa_cluster(nodes: usize) -> Self {
        assert!(nodes >= 1);
        let base = Self::dgx_a100();
        Platform {
            name: "A100-EFA-cluster",
            max_devices: 8 * nodes,
            comm: CommModel::Hierarchical {
                gpus_per_node: 8,
                inter: Link::AWS_EFA,
                launch_us: 25.0,
            },
            ..base
        }
    }

    /// A100 node with PCIe-only communication (Fig. 9's baseline).
    pub fn pcie_a100() -> Self {
        Platform {
            name: "A100-PCIe",
            device: DeviceSpec::a100(),
            max_devices: 8,
            interconnect: Interconnect::pcie_a100(),
            cost: CostModel::default(),
            comm: CommModel::nccl(),
        }
    }

    /// Replace the collective runtime (e.g. the cuGraph/RAFT model).
    pub fn with_comm(mut self, comm: CommModel) -> Self {
        self.comm = comm;
        self
    }

    /// Turn this node into an `nodes × gpus_per_node` cluster joined by
    /// `inter`: the current peer fabric becomes the intra-node link, the
    /// collectives become hierarchical, and `max_devices` grows to the
    /// cluster total. The NCCL launch overhead carries over.
    pub fn clustered(mut self, nodes: usize, gpus_per_node: usize, inter: Link) -> Self {
        assert!(nodes >= 1 && gpus_per_node >= 1);
        let launch_us = match self.comm {
            CommModel::Nccl { launch_us } => launch_us,
            CommModel::MpiStaged { launch_us, .. } => launch_us,
            CommModel::Hierarchical { launch_us, .. } => launch_us,
        };
        self.max_devices = nodes * gpus_per_node;
        self.comm = CommModel::Hierarchical { gpus_per_node, inter, launch_us };
        self
    }

    /// Resize to `nodes` nodes (the `--nodes N` CLI knob). Cluster
    /// platforms keep their per-node shape and inter-node link;
    /// single-node platforms become a cluster of themselves over
    /// InfiniBand HDR (`nodes == 1` leaves them untouched).
    pub fn with_nodes(mut self, nodes: usize) -> Self {
        assert!(nodes >= 1);
        match self.comm {
            CommModel::Hierarchical { gpus_per_node, .. } => {
                self.max_devices = gpus_per_node * nodes;
                self
            }
            _ if nodes == 1 => self,
            _ => {
                let gpn = self.max_devices;
                self.clustered(nodes, gpn, Link::INFINIBAND_HDR)
            }
        }
    }

    /// The flat baseline of a cluster: the same device count on one flat
    /// ring whose every hop runs at the inter-node link — a fabric where
    /// every hop costs the same, as if the topology were invisible.
    /// Identity on single-node platforms.
    pub fn flattened(mut self) -> Self {
        if let CommModel::Hierarchical { inter, launch_us, .. } = self.comm {
            self.comm = CommModel::Nccl { launch_us };
            self.interconnect.peer = inter;
        }
        self
    }

    /// The cluster topology implied by a hierarchical platform: intra =
    /// the peer fabric, inter = the hierarchical model's slow link.
    /// `None` for single-node platforms.
    pub fn cluster_topology(&self) -> Option<ClusterTopology> {
        match self.comm {
            CommModel::Hierarchical { gpus_per_node, inter, .. } => {
                let gpn = gpus_per_node.max(1);
                Some(ClusterTopology {
                    name: self.name,
                    nodes: self.max_devices.div_ceil(gpn).max(1),
                    gpus_per_node: gpn,
                    intra: self.interconnect.peer,
                    inter,
                })
            }
            _ => None,
        }
    }

    /// Override per-device memory (scaled-down experiments force batching
    /// by shrinking capacity instead of growing the graph).
    pub fn with_device_memory(mut self, bytes: u64) -> Self {
        self.device.mem_bytes = bytes;
        self
    }

    /// Divide every *fixed* overhead — kernel launch, host sync,
    /// collective launch, link latencies — by `div`. Scaled-down
    /// experiments shrink graphs (hence kernel and bandwidth terms) by a
    /// known factor; the fixed microsecond-scale overheads must shrink by
    /// the same factor or they dominate artificially and erase the
    /// relative behaviour the paper measures at full scale.
    pub fn with_overheads_scaled(mut self, div: f64) -> Self {
        assert!(div > 0.0);
        self.cost.kernel_launch_us /= div;
        self.cost.host_sync_us /= div;
        self.interconnect.h2d.latency_us /= div;
        self.interconnect.peer.latency_us /= div;
        self.comm = match self.comm {
            crate::collective::CommModel::Nccl { launch_us } => {
                crate::collective::CommModel::Nccl { launch_us: launch_us / div }
            }
            crate::collective::CommModel::MpiStaged { launch_us, bw_derate } => {
                crate::collective::CommModel::MpiStaged { launch_us: launch_us / div, bw_derate }
            }
            crate::collective::CommModel::Hierarchical { gpus_per_node, mut inter, launch_us } => {
                inter.latency_us /= div;
                crate::collective::CommModel::Hierarchical {
                    gpus_per_node,
                    inter,
                    launch_us: launch_us / div,
                }
            }
        };
        self
    }

    /// Every exported preset with its CLI name — the single source of
    /// truth for `--platform` parsing and the `ldgm platforms` listing.
    /// The cluster preset appears with its 4-node default; `toy` is
    /// test-only and deliberately not listed.
    pub fn presets() -> Vec<(&'static str, Platform)> {
        vec![
            ("dgx-a100", Self::dgx_a100()),
            ("dgx2", Self::dgx2()),
            ("dgx-h100", Self::dgx_h100()),
            ("nvl72", Self::nvl72()),
            ("pcie-a100", Self::pcie_a100()),
            ("dgx-a100-cluster", Self::dgx_a100_cluster(4)),
            ("a100-efa-cluster", Self::a100_efa_cluster(4)),
        ]
    }

    /// CLI names of all presets, in listing order.
    pub fn preset_names() -> Vec<&'static str> {
        Self::presets().into_iter().map(|(n, _)| n).collect()
    }

    /// Look up a preset by CLI name.
    pub fn by_name(name: &str) -> Option<Platform> {
        Self::presets().into_iter().find(|(n, _)| *n == name).map(|(_, p)| p)
    }

    /// A tiny deterministic platform for unit tests.
    pub fn toy(max_devices: usize, mem_bytes: u64) -> Self {
        Platform {
            name: "TOY",
            device: DeviceSpec::toy(mem_bytes),
            max_devices,
            interconnect: Interconnect::dgx_a100(),
            cost: CostModel::default(),
            comm: CommModel::nccl(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper_machines() {
        let a = Platform::dgx_a100();
        assert_eq!(a.max_devices, 8);
        assert_eq!(a.device.name, "A100-SXM4-40GB");
        let v = Platform::dgx2();
        assert_eq!(v.max_devices, 16);
        assert_eq!(v.device.name, "V100-SXM3-32GB");
    }

    #[test]
    fn pcie_variant_has_slower_peer_fabric() {
        let nv = Platform::dgx_a100();
        let pcie = Platform::pcie_a100();
        assert!(nv.interconnect.peer.bw_gbps > 10.0 * pcie.interconnect.peer.bw_gbps);
    }

    #[test]
    fn future_generation_presets() {
        let h = Platform::dgx_h100();
        assert_eq!(h.max_devices, 8);
        assert!(h.device.achieved_bw_bytes() > Platform::dgx_a100().device.achieved_bw_bytes());
        let nvl = Platform::nvl72();
        assert_eq!(nvl.max_devices, 72);
        assert!(nvl.interconnect.peer.bw_gbps > h.interconnect.peer.bw_gbps);
        assert_eq!(nvl.device.mem_bytes, 192 * (1 << 30));
    }

    #[test]
    fn cluster_preset_is_hierarchical() {
        let c = Platform::dgx_a100_cluster(4);
        assert_eq!(c.max_devices, 32);
        assert!(matches!(c.comm, CommModel::Hierarchical { gpus_per_node: 8, .. }));
    }

    #[test]
    fn preset_registry_is_exhaustive_and_consistent() {
        let presets = Platform::presets();
        assert_eq!(presets.len(), 7);
        for (name, p) in &presets {
            assert_eq!(Platform::by_name(name).as_ref(), Some(p), "{name}");
        }
        assert!(Platform::by_name("toy").is_none());
        assert!(Platform::by_name("bogus").is_none());
        assert_eq!(Platform::preset_names()[0], "dgx-a100");
    }

    #[test]
    fn with_nodes_resizes_clusters_and_clusters_flat_platforms() {
        // A cluster platform keeps its shape and just changes node count.
        let c = Platform::dgx_a100_cluster(4).with_nodes(2);
        assert_eq!(c.max_devices, 16);
        assert!(matches!(c.comm, CommModel::Hierarchical { gpus_per_node: 8, .. }));
        // A flat platform becomes a cluster of itself over IB HDR.
        let f = Platform::dgx2().with_nodes(3);
        assert_eq!(f.max_devices, 48);
        let topo = f.cluster_topology().unwrap();
        assert_eq!((topo.nodes, topo.gpus_per_node), (3, 16));
        assert_eq!(topo.inter, Link::INFINIBAND_HDR);
        assert_eq!(topo.intra, Link::NVLINK_SXM3);
        // --nodes 1 leaves single-node platforms untouched.
        assert_eq!(Platform::dgx_a100().with_nodes(1), Platform::dgx_a100());
        assert_eq!(Platform::dgx_a100_cluster(4).with_nodes(1).max_devices, 8);
    }

    #[test]
    fn flattened_moves_the_cluster_onto_the_slow_link() {
        let c = Platform::dgx_a100_cluster(2);
        let f = c.clone().flattened();
        assert_eq!(f.max_devices, c.max_devices);
        assert!(matches!(f.comm, CommModel::Nccl { .. }));
        assert_eq!(f.interconnect.peer, Link::INFINIBAND_HDR);
        assert!(f.cluster_topology().is_none());
        // Identity off-cluster.
        assert_eq!(Platform::dgx_a100().flattened(), Platform::dgx_a100());
    }

    #[test]
    fn cluster_topology_derives_from_the_comm_model() {
        let t = Platform::a100_efa_cluster(4).cluster_topology().unwrap();
        assert_eq!((t.nodes, t.gpus_per_node), (4, 8));
        assert_eq!(t.inter, Link::AWS_EFA);
        assert_eq!(t.intra, Link::NVLINK_SXM4);
        assert_eq!(t.hop_class(0, 9), crate::cluster::HopClass::InterNode);
        assert!(Platform::dgx_a100().cluster_topology().is_none());
    }

    #[test]
    fn overrides_compose() {
        let p = Platform::dgx_a100().with_device_memory(1 << 20).with_comm(CommModel::mpi_staged());
        assert_eq!(p.device.mem_bytes, 1 << 20);
        assert!(matches!(p.comm, CommModel::MpiStaged { .. }));
    }
}

//! Interconnect models: NVLink generations, PCIe, and host-staged paths.
//!
//! Two links matter to LD-GPU: the **host link** over which batch buffers
//! are copied to the device (`cudaMemcpyAsync` HtoD), and the **peer
//! fabric** over which the NCCL collectives run. The paper's Fig. 9
//! compares proprietary NVLink (SXM) against standard PCIe for "data
//! transfer and multi-GPU communication", citing Foley & Danskin's ~5×
//! NVLink-over-PCIe bandwidth figure; the presets below carry the
//! per-direction bandwidths of the respective generations.

/// A point-to-point link with bandwidth and per-message latency.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Link {
    /// Human-readable name.
    pub name: &'static str,
    /// Per-direction bandwidth in GB/s.
    pub bw_gbps: f64,
    /// Per-message latency in microseconds.
    pub latency_us: f64,
}

impl Link {
    /// NVLink 3 / NVSwitch as in DGX-A100 (SXM4): 600 GB/s per GPU.
    pub const NVLINK_SXM4: Link = Link { name: "NVLink-SXM4", bw_gbps: 600.0, latency_us: 2.0 };
    /// NVLink 2 / NVSwitch as in DGX-2 (SXM3): 300 GB/s per GPU.
    pub const NVLINK_SXM3: Link = Link { name: "NVLink-SXM3", bw_gbps: 300.0, latency_us: 3.0 };
    /// PCIe gen4 x16 (A100 PCIe systems): ~25 GB/s effective.
    pub const PCIE_GEN4: Link = Link { name: "PCIe-gen4", bw_gbps: 25.0, latency_us: 5.0 };
    /// PCIe gen3 x16 (V100 PCIe systems): ~13 GB/s effective.
    pub const PCIE_GEN3: Link = Link { name: "PCIe-gen3", bw_gbps: 13.0, latency_us: 6.0 };
    /// InfiniBand HDR (200 Gb/s) inter-node link: ~25 GB/s per direction,
    /// microsecond-scale RDMA latency.
    pub const INFINIBAND_HDR: Link =
        Link { name: "InfiniBand-HDR", bw_gbps: 25.0, latency_us: 1.5 };
    /// AWS Elastic Fabric Adapter (p4d-class, SRD transport): ~100 Gb/s
    /// effective per rail toward one peer, with tens-of-microseconds
    /// user-space latency — the cloud alternative to InfiniBand.
    pub const AWS_EFA: Link = Link { name: "AWS-EFA", bw_gbps: 12.5, latency_us: 15.0 };
    /// NVLink 4 as in DGX-H100 (SXM5): 900 GB/s per GPU.
    pub const NVLINK_SXM5: Link = Link { name: "NVLink-SXM5", bw_gbps: 900.0, latency_us: 1.5 };
    /// NVLink 5 as in GB200 NVL72: 1.8 TB/s per GPU across the rack.
    pub const NVLINK_5: Link = Link { name: "NVLink-5", bw_gbps: 1800.0, latency_us: 1.2 };
    /// PCIe gen5 x16 (Hopper/Blackwell hosts): ~50 GB/s effective.
    pub const PCIE_GEN5: Link = Link { name: "PCIe-gen5", bw_gbps: 50.0, latency_us: 4.0 };

    /// Time to move `bytes` across the link.
    pub fn transfer_time(&self, bytes: u64) -> f64 {
        self.latency_us * 1e-6 + bytes as f64 / (self.bw_gbps * 1e9)
    }
}

/// The communication fabric of a multi-GPU node.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Interconnect {
    /// Host-to-device link used for batch loads.
    pub h2d: Link,
    /// Device-to-device fabric used by collectives.
    pub peer: Link,
}

impl Interconnect {
    /// DGX-A100 fabric: NVSwitch peer traffic, PCIe gen4 host link.
    pub fn dgx_a100() -> Self {
        Interconnect { h2d: Link::PCIE_GEN4, peer: Link::NVLINK_SXM4 }
    }

    /// DGX-2 fabric: NVSwitch (SXM3) peer traffic, PCIe gen3 host link.
    pub fn dgx2() -> Self {
        Interconnect { h2d: Link::PCIE_GEN3, peer: Link::NVLINK_SXM3 }
    }

    /// A100 PCIe-only variant (Fig. 9 comparison): peer traffic staged
    /// through the PCIe root complex — effective bandwidth halves and
    /// latency doubles versus a direct PCIe hop.
    pub fn pcie_a100() -> Self {
        let staged = Link {
            name: "PCIe-gen4-staged",
            bw_gbps: Link::PCIE_GEN4.bw_gbps / 2.0,
            latency_us: Link::PCIE_GEN4.latency_us * 2.0,
        };
        Interconnect { h2d: Link::PCIE_GEN4, peer: staged }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_scales_with_bytes() {
        let l = Link::NVLINK_SXM4;
        let t1 = l.transfer_time(1 << 20);
        let t2 = l.transfer_time(1 << 30);
        assert!(t2 > t1 * 100.0);
    }

    #[test]
    fn latency_floors_small_messages() {
        let l = Link::PCIE_GEN3;
        assert!(l.transfer_time(1) >= 6e-6);
    }

    #[test]
    fn nvlink_beats_pcie_by_foley_factor() {
        // Foley & Danskin report ~5×; SXM4 vs gen4 is far beyond.
        let big = 1u64 << 30;
        let nv = Link::NVLINK_SXM4.transfer_time(big);
        let pcie = Link::PCIE_GEN4.transfer_time(big);
        assert!(pcie / nv > 5.0, "ratio {}", pcie / nv);
    }

    #[test]
    fn staged_pcie_is_slower_than_direct() {
        let ic = Interconnect::pcie_a100();
        assert!(ic.peer.transfer_time(1 << 20) > ic.h2d.transfer_time(1 << 20));
    }
}

//! Trace export: Chrome-trace / Perfetto JSON and timeline-based phase
//! attribution.
//!
//! [`chrome_trace_json`] turns a [`Trace`] into the JSON array format
//! understood by `chrome://tracing` and [ui.perfetto.dev]: one complete
//! (`"ph":"X"`) duration event per span, one process (`pid`) per simulated
//! device, one thread (`tid`) lane per [`EventKind`], timestamps in
//! microseconds.
//!
//! [`timeline_breakdown`] is the exact counterpart of the accumulated
//! [`PhaseBreakdown`] a driver collects while scheduling: instead of
//! summing per-operation costs (which double-counts overlap and omits
//! idle gaps), it partitions the wall interval `[0, sim_time]` of every
//! device into phases and averages across devices — so the result sums to
//! `sim_time` exactly, the invariant the JSON run report promises.
//!
//! [ui.perfetto.dev]: https://ui.perfetto.dev

use crate::json::Json;
use crate::profile::PhaseBreakdown;
use crate::trace::{EventKind, Trace};

/// Lane index (Chrome `tid`) of an event kind; fixed so traces from
/// different runs line up in the viewer.
pub fn lane(kind: EventKind) -> u64 {
    match kind {
        EventKind::Kernel => 0,
        EventKind::H2dCopy => 1,
        EventKind::Collective => 2,
        EventKind::HostSync => 3,
    }
}

fn lane_name(kind: EventKind) -> &'static str {
    match kind {
        EventKind::Kernel => "compute",
        EventKind::H2dCopy => "copy",
        EventKind::Collective => "collective",
        EventKind::HostSync => "sync",
    }
}

fn category(kind: EventKind) -> &'static str {
    match kind {
        EventKind::Kernel => "kernel",
        EventKind::H2dCopy => "h2d",
        EventKind::Collective => "collective",
        EventKind::HostSync => "sync",
    }
}

const ALL_KINDS: [EventKind; 4] =
    [EventKind::Kernel, EventKind::H2dCopy, EventKind::Collective, EventKind::HostSync];

/// Convert a trace into a Chrome-trace JSON document (the top-level JSON
/// array variant). Open the written file directly in `chrome://tracing`
/// or drag it into the Perfetto UI.
pub fn chrome_trace_json(trace: &Trace) -> Json {
    let ndev = trace.events.iter().map(|e| e.device + 1).max().unwrap_or(0);
    let mut events = Vec::new();
    // Metadata events name each device's process and each lane's thread.
    for d in 0..ndev {
        events.push(
            Json::object()
                .with("name", "process_name")
                .with("ph", "M")
                .with("pid", d)
                .with("tid", 0u64)
                .with("args", Json::object().with("name", format!("device {d}"))),
        );
        for kind in ALL_KINDS {
            events.push(
                Json::object()
                    .with("name", "thread_name")
                    .with("ph", "M")
                    .with("pid", d)
                    .with("tid", lane(kind))
                    .with("args", Json::object().with("name", lane_name(kind))),
            );
        }
    }
    for e in &trace.events {
        events.push(
            Json::object()
                .with("name", e.label.as_ref())
                .with("cat", category(e.kind))
                .with("ph", "X")
                .with("pid", e.device)
                .with("tid", lane(e.kind))
                .with("ts", e.start * 1e6)
                .with("dur", (e.end - e.start) * 1e6),
        );
    }
    Json::Array(events)
}

/// Attribution priority when spans overlap on one device (collectives
/// block everything; kernels hide the copies they overlap; explicit sync
/// only counts where nothing else runs). Matches the Gantt renderer.
fn priority(kind: EventKind) -> u8 {
    match kind {
        EventKind::Collective => 3,
        EventKind::Kernel => 2,
        EventKind::H2dCopy => 1,
        EventKind::HostSync => 0,
    }
}

/// Phase slot of a span: kernels split into pointing/matching by label,
/// other kinds map 1:1. Returns an index into the breakdown's field order
/// (pointing, matching, allreduce, transfer, sync).
fn phase_slot(kind: EventKind, label: &str) -> usize {
    match kind {
        EventKind::Kernel => {
            if label.contains("mate") {
                1
            } else {
                0
            }
        }
        EventKind::Collective => 2,
        EventKind::H2dCopy => 3,
        EventKind::HostSync => 4,
    }
}

/// Partition `[0, sim_time]` of every device into the five phases and
/// average across devices. Device time not covered by any span (idle,
/// e.g. waiting on a straggler before a collective) is attributed to
/// `sync`. The returned breakdown's [`PhaseBreakdown::total`] equals
/// `sim_time` up to floating-point rounding.
pub fn timeline_breakdown(trace: &Trace, sim_time: f64) -> PhaseBreakdown {
    let ndev = trace.events.iter().map(|e| e.device + 1).max().unwrap_or(0);
    if ndev == 0 || sim_time <= 0.0 {
        return PhaseBreakdown { sync: sim_time.max(0.0), ..Default::default() };
    }
    let mut slots = [0.0f64; 5];
    for d in 0..ndev {
        let mut dev_events: Vec<_> =
            trace.events.iter().filter(|e| e.device == d && e.end > e.start).collect();
        dev_events.sort_by(|a, b| a.start.total_cmp(&b.start));
        // Boundary sweep: between consecutive boundaries exactly one set
        // of spans is active; bill the interval to the highest-priority
        // one.
        let mut bounds: Vec<f64> = dev_events
            .iter()
            .flat_map(|e| [e.start, e.end])
            .filter(|t| *t > 0.0 && *t < sim_time)
            .collect();
        bounds.push(0.0);
        bounds.push(sim_time);
        bounds.sort_by(f64::total_cmp);
        bounds.dedup();
        for w in bounds.windows(2) {
            let (lo, hi) = (w[0], w[1]);
            let mid = 0.5 * (lo + hi);
            let active = dev_events
                .iter()
                .filter(|e| e.start <= mid && mid < e.end)
                .max_by_key(|e| priority(e.kind));
            let slot = match active {
                Some(e) => phase_slot(e.kind, &e.label),
                None => 4, // idle -> sync
            };
            slots[slot] += hi - lo;
        }
    }
    let n = ndev as f64;
    PhaseBreakdown {
        pointing: slots[0] / n,
        matching: slots[1] / n,
        allreduce: slots[2] / n,
        transfer: slots[3] / n,
        sync: slots[4] / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let mut t = Trace::default();
        t.record(0, EventKind::H2dCopy, "copy b0", 0.0, 1.0);
        t.record(0, EventKind::Kernel, "point b0", 1.0, 3.0);
        t.record(0, EventKind::Kernel, "mates it0", 3.0, 3.5);
        t.record(0, EventKind::Collective, "allreduce ptr", 3.5, 4.0);
        t.record(1, EventKind::Kernel, "point b0", 0.0, 2.0);
        t.record(1, EventKind::Collective, "allreduce ptr", 3.5, 4.0);
        t
    }

    #[test]
    fn chrome_trace_shape() {
        let j = chrome_trace_json(&sample());
        let events = j.as_array().unwrap();
        let xs: Vec<_> =
            events.iter().filter(|e| e.get("ph").and_then(Json::as_str) == Some("X")).collect();
        assert_eq!(xs.len(), 6);
        for e in &xs {
            assert!(e.get("pid").and_then(Json::as_f64).is_some());
            assert!(e.get("tid").and_then(Json::as_f64).is_some());
            assert!(e.get("ts").and_then(Json::as_f64).unwrap() >= 0.0);
            assert!(e.get("dur").and_then(Json::as_f64).unwrap() >= 0.0);
        }
        // Timestamps are microseconds.
        let kernel =
            xs.iter().find(|e| e.get("name").and_then(Json::as_str) == Some("point b0")).unwrap();
        assert_eq!(kernel.get("ts").and_then(Json::as_f64), Some(1e6));
        assert_eq!(kernel.get("dur").and_then(Json::as_f64), Some(2e6));
        // Metadata names both devices.
        assert!(events.iter().any(|e| {
            e.get("ph").and_then(Json::as_str) == Some("M")
                && e.get("pid").and_then(Json::as_f64) == Some(1.0)
        }));
        // The document parses back.
        assert!(crate::json::parse(&j.to_string_pretty()).is_ok());
    }

    #[test]
    fn breakdown_sums_to_sim_time() {
        let t = sample();
        let sim_time = 4.0;
        let b = timeline_breakdown(&t, sim_time);
        assert!((b.total() - sim_time).abs() < 1e-12, "total {}", b.total());
        // Device 0: copy 1.0, point 2.0, mates 0.5, collective 0.5.
        // Device 1: point 2.0, idle 1.5, collective 0.5.
        assert!((b.pointing - 2.0).abs() < 1e-12);
        assert!((b.matching - 0.25).abs() < 1e-12);
        assert!((b.allreduce - 0.5).abs() < 1e-12);
        assert!((b.transfer - 0.5).abs() < 1e-12);
        assert!((b.sync - 0.75).abs() < 1e-12);
    }

    #[test]
    fn overlap_resolves_by_priority() {
        let mut t = Trace::default();
        t.record(0, EventKind::H2dCopy, "copy", 0.0, 4.0);
        t.record(0, EventKind::Kernel, "point", 1.0, 3.0);
        let b = timeline_breakdown(&t, 4.0);
        assert!((b.pointing - 2.0).abs() < 1e-12);
        assert!((b.transfer - 2.0).abs() < 1e-12);
        assert!((b.total() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_is_all_sync() {
        let b = timeline_breakdown(&Trace::default(), 2.0);
        assert_eq!(b.sync, 2.0);
        assert!((b.total() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn spans_past_sim_time_are_clamped() {
        let mut t = Trace::default();
        t.record(0, EventKind::Kernel, "point", 0.0, 10.0);
        let b = timeline_breakdown(&t, 4.0);
        assert!((b.pointing - 4.0).abs() < 1e-12);
        assert!((b.total() - 4.0).abs() < 1e-12);
    }
}

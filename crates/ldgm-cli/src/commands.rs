//! Subcommand implementations. Each returns its report as a `String` so
//! the logic is unit-testable without capturing stdout.

use std::fmt::Write as _;

use ldgm_core::augment::augment_short;
use ldgm_core::blossom::blossom_mwm;
use ldgm_core::ld_gpu::{LdGpu, LdGpuConfig};
use ldgm_core::ld_seq::ld_seq;
use ldgm_core::local_max::local_max;
use ldgm_core::suitor::suitor;
use ldgm_core::suitor_par::suitor_par;
use ldgm_core::verify::half_approx_certificate;
use ldgm_core::{auction::auction, greedy::greedy, Matching};
use ldgm_gpusim::Platform;
use ldgm_graph::csr::CsrGraph;
use ldgm_graph::gen::GraphGen;
use ldgm_graph::io;
use ldgm_graph::stats::{degree_cv, stats};

use crate::args::{ArgError, Args};

/// Top-level help text.
pub const HELP: &str = "\
ldgm - locally dominant weighted graph matching (SC'24 LD-GPU reproduction)

USAGE: ldgm <command> [--option value]...

COMMANDS:
  gen       generate a synthetic graph and write it as Matrix Market
              --family rmat|social|urand|kmer|web|lattice|geometric|similarity
              --vertices N  --avg-degree D  --seed S  --out FILE
  match     compute a matching on a Matrix Market graph
              --input FILE
              --algorithm ld-gpu|ld-seq|local-max|greedy|suitor|suitor-par|
                          auction|blossom  (default ld-gpu)
              --devices N  --batches B  (ld-gpu)
              --platform dgx-a100|dgx2|dgx-h100|nvl72|pcie-a100
                          (default dgx-a100)
              --augment PASSES   refine with 2/3 short augmentations
              --verify           run validity/maximality/certificate checks
  stats     print Table-I-style properties of a graph
              --input FILE
  platforms list the simulated platform presets
  help      show this text
";

/// Dispatch a parsed command line.
pub fn run(args: &Args) -> Result<String, ArgError> {
    match args.command.as_str() {
        "gen" => cmd_gen(args),
        "match" => cmd_match(args),
        "stats" => cmd_stats(args),
        "platforms" => Ok(cmd_platforms()),
        "help" | "--help" => Ok(HELP.to_string()),
        other => Err(ArgError(format!("unknown command '{other}'; try `ldgm help`"))),
    }
}

fn load_graph(args: &Args) -> Result<CsrGraph, ArgError> {
    let path = args
        .get("input")
        .ok_or_else(|| ArgError("missing required option '--input FILE'".into()))?;
    io::read_mtx_file(path, args.get_num("seed", 0u64)?)
        .map_err(|e| ArgError(format!("failed to read '{path}': {e}")))
}

fn parse_platform(name: &str) -> Result<Platform, ArgError> {
    match name {
        "dgx-a100" => Ok(Platform::dgx_a100()),
        "dgx2" => Ok(Platform::dgx2()),
        "dgx-h100" => Ok(Platform::dgx_h100()),
        "nvl72" => Ok(Platform::nvl72()),
        "pcie-a100" => Ok(Platform::pcie_a100()),
        other => Err(ArgError(format!(
            "unknown platform '{other}' (dgx-a100, dgx2, dgx-h100, nvl72, pcie-a100)"
        ))),
    }
}

fn cmd_gen(args: &Args) -> Result<String, ArgError> {
    args.expect_known(&["family", "vertices", "avg-degree", "seed", "out"])?;
    let family = args.get_or("family", "rmat");
    let n: usize = args.get_num("vertices", 1024usize)?;
    let d: f64 = args.get_num("avg-degree", 8.0f64)?;
    let seed: u64 = args.get_num("seed", 0u64)?;
    let gg = match family {
        "rmat" => GraphGen::rmat(),
        "social" => GraphGen::social(),
        "urand" => GraphGen::urand(),
        "kmer" => GraphGen::kmer(),
        "web" => GraphGen::web(),
        "lattice" => GraphGen::lattice(4),
        "geometric" => GraphGen::geometric(0.03),
        "similarity" => GraphGen::similarity(6),
        other => return Err(ArgError(format!("unknown family '{other}'"))),
    };
    let g = gg.vertices(n).avg_degree(d).seed(seed).build();
    let mut out = String::new();
    let s = stats(&g);
    writeln!(
        out,
        "generated {family}: |V|={} |E|={} d_max={} d_avg={:.1}",
        s.vertices, s.edges, s.d_max, s.d_avg
    )
    .unwrap();
    if let Some(path) = args.get("out") {
        io::write_mtx_file(&g, path)
            .map_err(|e| ArgError(format!("failed to write '{path}': {e}")))?;
        writeln!(out, "wrote {path}").unwrap();
    }
    Ok(out)
}

fn cmd_match(args: &Args) -> Result<String, ArgError> {
    args.expect_known(&[
        "input", "algorithm", "devices", "batches", "platform", "augment", "seed", "verify",
    ])?;
    let g = load_graph(args)?;
    let algorithm = args.get_or("algorithm", "ld-gpu");
    let mut out = String::new();
    let mut sim_note = String::new();
    let matching: Matching = match algorithm {
        "ld-seq" => ld_seq(&g),
        "local-max" => local_max(&g),
        "greedy" => greedy(&g),
        "suitor" => suitor(&g),
        "suitor-par" => suitor_par(&g),
        "auction" => auction(&g, args.get_num("seed", 0u64)?),
        "blossom" => {
            if g.num_vertices() > 2000 {
                return Err(ArgError(format!(
                    "blossom is O(n^3); {} vertices is too many (limit 2000)",
                    g.num_vertices()
                )));
            }
            blossom_mwm(&g, 1_000_000.0)
        }
        "ld-gpu" => {
            let platform = parse_platform(args.get_or("platform", "dgx-a100"))?;
            let mut cfg = LdGpuConfig::new(platform).devices(args.get_num("devices", 1usize)?);
            if let Some(b) = args.get("batches") {
                cfg = cfg.batches(
                    b.parse()
                        .map_err(|_| ArgError(format!("bad --batches '{b}'")))?,
                );
            }
            let run = LdGpu::new(cfg)
                .try_run(&g)
                .map_err(|e| ArgError(format!("LD-GPU failed: {e}")))?;
            writeln!(
                sim_note,
                "simulated {:.3} ms on {} device(s), {} batch(es), {} iterations",
                run.sim_time * 1e3,
                run.devices,
                run.batches,
                run.iterations
            )
            .unwrap();
            run.matching
        }
        other => return Err(ArgError(format!("unknown algorithm '{other}'"))),
    };
    let passes: usize = args.get_num("augment", 0usize)?;
    let matching = if passes > 0 {
        let before = matching.weight(&g);
        let refined = augment_short(&g, matching, passes, args.get_num("seed", 0u64)?);
        writeln!(
            out,
            "augmented: {} augmentations over {} pass(es), weight {:.4} -> {:.4}",
            refined.augmentations,
            refined.passes,
            before,
            refined.matching.weight(&g)
        )
        .unwrap();
        refined.matching
    } else {
        matching
    };
    writeln!(
        out,
        "{algorithm}: matched {} of {} vertices, weight {:.4}",
        2 * matching.cardinality(),
        g.num_vertices(),
        matching.weight(&g)
    )
    .unwrap();
    out.push_str(&sim_note);
    if args.has_flag("verify") {
        matching.verify(&g).map_err(ArgError)?;
        writeln!(out, "verify: structurally valid").unwrap();
        writeln!(out, "verify: maximal = {}", matching.is_maximal(&g)).unwrap();
        if passes > 0 {
            // The static dominance certificate characterizes *locally
            // dominant* matchings; augmentation trades it for weight (the
            // refined matching is at least as heavy, so the 1/2 bound
            // still holds transitively).
            writeln!(out, "verify: 1/2 bound inherited from the pre-augmentation matching").unwrap();
        } else {
            writeln!(
                out,
                "verify: 1/2-approx dominance certificate = {}",
                half_approx_certificate(&g, &matching)
            )
            .unwrap();
        }
    }
    Ok(out)
}

fn cmd_stats(args: &Args) -> Result<String, ArgError> {
    args.expect_known(&["input", "seed"])?;
    let g = load_graph(args)?;
    let s = stats(&g);
    let mut out = String::new();
    writeln!(out, "|V|        {}", s.vertices).unwrap();
    writeln!(out, "|E|        {}", s.edges).unwrap();
    writeln!(out, "nnz        {}", 2 * s.edges).unwrap();
    writeln!(out, "d_max      {}", s.d_max).unwrap();
    writeln!(out, "d_avg      {:.2}", s.d_avg).unwrap();
    writeln!(out, "degree CV  {:.3}", degree_cv(&g)).unwrap();
    writeln!(out, "isolated   {}", s.isolated).unwrap();
    writeln!(out, "components {}", s.components).unwrap();
    writeln!(out, "w(E)       {:.4}", g.total_weight()).unwrap();
    writeln!(out, "CSR bytes  {}", g.csr_bytes()).unwrap();
    Ok(out)
}

fn cmd_platforms() -> String {
    let mut out = String::new();
    for p in [
        Platform::dgx_a100(),
        Platform::dgx2(),
        Platform::dgx_h100(),
        Platform::nvl72(),
        Platform::pcie_a100(),
    ] {
        writeln!(
            out,
            "{:<10} {} x{:<2}  mem {:>2} GB/dev  peer {} ({} GB/s)  h2d {} ({} GB/s)",
            p.name,
            p.device.name,
            p.max_devices,
            p.device.mem_bytes >> 30,
            p.interconnect.peer.name,
            p.interconnect.peer.bw_gbps,
            p.interconnect.h2d.name,
            p.interconnect.h2d.bw_gbps,
        )
        .unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from)).unwrap()
    }

    fn tmp(name: &str) -> String {
        std::env::temp_dir().join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn gen_then_stats_then_match_pipeline() {
        let path = tmp("ldgm_cli_test.mtx");
        let r = run(&args(&format!(
            "gen --family urand --vertices 300 --avg-degree 6 --seed 1 --out {path}"
        )))
        .unwrap();
        assert!(r.contains("generated urand"));
        let r = run(&args(&format!("stats --input {path}"))).unwrap();
        assert!(r.contains("|V|        300"));
        let r = run(&args(&format!(
            "match --input {path} --algorithm ld-gpu --devices 2 --verify"
        )))
        .unwrap();
        assert!(r.contains("structurally valid"));
        assert!(r.contains("maximal = true"));
        assert!(r.contains("certificate = true"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn every_algorithm_runs() {
        let path = tmp("ldgm_cli_algos.mtx");
        run(&args(&format!("gen --vertices 200 --avg-degree 5 --seed 2 --out {path}"))).unwrap();
        for alg in [
            "ld-seq", "local-max", "greedy", "suitor", "suitor-par", "auction", "blossom",
            "ld-gpu",
        ] {
            let r = run(&args(&format!("match --input {path} --algorithm {alg} --verify")))
                .unwrap_or_else(|e| panic!("{alg}: {e}"));
            assert!(r.contains("matched"), "{alg}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn augment_improves_or_preserves() {
        let path = tmp("ldgm_cli_aug.mtx");
        run(&args(&format!("gen --vertices 250 --avg-degree 6 --seed 3 --out {path}"))).unwrap();
        let r = run(&args(&format!(
            "match --input {path} --algorithm ld-seq --augment 4 --verify"
        )))
        .unwrap();
        assert!(r.contains("augmented:"));
        assert!(r.contains("maximal = true"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn helpful_errors() {
        assert!(run(&args("match")).unwrap_err().0.contains("--input"));
        assert!(run(&args("bogus")).unwrap_err().0.contains("unknown command"));
        let path = tmp("ldgm_cli_err.mtx");
        run(&args(&format!("gen --vertices 100 --avg-degree 4 --seed 4 --out {path}"))).unwrap();
        assert!(run(&args(&format!("match --input {path} --algorithm nope")))
            .unwrap_err()
            .0
            .contains("unknown algorithm"));
        assert!(run(&args(&format!("match --input {path} --platforms x")))
            .unwrap_err()
            .0
            .contains("unknown option"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn platforms_lists_presets() {
        let r = run(&args("platforms")).unwrap();
        assert!(r.contains("DGX-A100"));
        assert!(r.contains("DGX-2"));
        assert!(r.contains("NVLink"));
    }

    #[test]
    fn blossom_size_guard() {
        let path = tmp("ldgm_cli_big.mtx");
        run(&args(&format!("gen --vertices 3000 --avg-degree 4 --seed 5 --out {path}"))).unwrap();
        assert!(run(&args(&format!("match --input {path} --algorithm blossom")))
            .unwrap_err()
            .0
            .contains("O(n^3)"));
        std::fs::remove_file(&path).ok();
    }
}

//! Subcommand implementations. Each returns its report as a `String` so
//! the logic is unit-testable without capturing stdout.
//!
//! Algorithm dispatch goes through [`MatcherRegistry`] — the CLI never
//! names an algorithm twice: the registry provides the name list for
//! `--algorithm` validation, the `match`/`profile` implementations, and
//! the error messages. Likewise `--platform` is validated against
//! [`Platform::presets`], the single source of preset truth.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Duration;

use ldgm_core::augment::augment_short;
use ldgm_core::ld_gpu::{auto_tune, TuneReport};
use ldgm_core::matcher::{LdGpuMatcher, LdGpuOptMatcher};
use ldgm_core::verify::half_approx_certificate;
use ldgm_core::{
    edit_distance, nearest_names, MatchResult, Matcher, MatcherRegistry, MatcherSetup,
};
use ldgm_dyn::matcher::IncrementalMatcher;
use ldgm_dyn::{DynConfig, DynamicMatcherRegistry, WorkloadKind, WorkloadSpec};
use ldgm_gpusim::metrics::names;
use ldgm_gpusim::{
    chrome_trace_json, timeline_breakdown, ClusterTopology, PhaseBreakdown, Platform, RunReport,
};
use ldgm_graph::csr::CsrGraph;
use ldgm_graph::gen::GraphGen;
use ldgm_graph::io;
use ldgm_graph::stats::{degree_cv, stats};
use ldgm_serve::{MatchService, ServeConfig};

use crate::args::{ArgError, Args};

/// Top-level help text.
pub const HELP: &str = "\
ldgm - locally dominant weighted graph matching (SC'24 LD-GPU reproduction)

USAGE: ldgm <command> [--option value | --option=value]...

COMMANDS:
  gen        generate a synthetic graph and write it as Matrix Market
  match      compute a matching on a Matrix Market graph
  dynamic    maintain a matching under a synthetic update stream
  serve      long-lived matching service over line-delimited JSON/TCP
  profile    phase/metric comparison of several algorithms on one graph
  stats      print Table-I-style properties of a graph
  platforms  list the simulated platform presets
  help       show this text; `ldgm help <command>` for per-command options
";

/// Per-command help texts, keyed by command name.
const COMMAND_HELP: &[(&str, &str)] = &[
    (
        "gen",
        "\
ldgm gen - generate a synthetic graph and write it as Matrix Market

OPTIONS:
  --family F      rmat|social|urand|kmer|web|lattice|geometric|similarity
                  (default rmat)
  --vertices N    vertex count (default 1024)
  --avg-degree D  average degree (default 8)
  --seed S        generator seed (default 0)
  --out FILE      write the graph as Matrix Market
",
    ),
    (
        "match",
        "\
ldgm match - compute a matching on a Matrix Market graph

OPTIONS:
  --input FILE        graph to read (required)
  --algorithm A       one of the registry algorithms (default ld-gpu);
                      run `ldgm profile` or see the error text for names
  --devices N         devices for simulated algorithms (default 1)
  --batches B         batches per device for ld-gpu (default auto)
  --platform P        simulated platform preset (default dgx-a100);
                      `ldgm platforms` lists them
  --nodes N           cluster size: N nodes of the platform joined by the
                      inter-node link (flat presets cluster over
                      InfiniBand HDR; cluster presets re-size)
  --topo-placement    topology-aware part->node placement: keep heavy cut
                      edges intra-node and bill only the node-boundary
                      fraction of each collective over the slow link
  --mem-limit BYTES   override the platform's per-device memory capacity
                      (forces the batching/streaming paths on graphs that
                      would otherwise fit whole)
  --stream            out-of-core streaming for the LD-GPU matchers:
                      band-sliced SETPOINTERS over a resident window
                      while the copy stream prefetches the next substream
  --mem-budget BYTES  cap the streaming window's device-memory budget
                      below capacity (requires --stream)
  --stream-window N   resident window depth in edge bands, >= 2 for
                      double buffering (default 2; requires --stream)
  --seed S            seed for randomized algorithms (default 0)
  --overlap           overlap collectives with compute for the LD-GPU
                      matchers (chunked allreduce on the comm stream)
  --auto-tune         search the (batches x toggles x overlap) grid with
                      the self-tuning planner and run the locked config;
                      never slower than the defaults in simulated time,
                      matching bits unchanged (ld-gpu/ld-gpu-opt only)
  --augment PASSES    refine with 2/3 short augmentations
  --verify            run validity/maximality/certificate checks
  --trace-out FILE    write a Chrome-trace/Perfetto JSON event timeline
                      (simulated algorithms; open in chrome://tracing or
                      https://ui.perfetto.dev)
  --report-json FILE  write a schema-versioned JSON run report (phases,
                      metrics, matching quality); phase totals equal the
                      reported run time
",
    ),
    (
        "dynamic",
        "\
ldgm dynamic - maintain a matching under a synthetic update stream

Applies batches of edge insertions/deletions to the input graph and
keeps the locally-dominant matching current, either incrementally
(frontier-restricted SETPOINTERS/SETMATES over a delta-CSR overlay) or
by rerunning the full static solver per batch.

OPTIONS:
  --input FILE        graph to read (required)
  --engine E          incremental|from-scratch (default incremental)
  --workload W        uniform|skewed|sliding-window (default uniform)
  --batches N         update batches to apply (default 8)
  --batch-size K      update steps per batch (default 64)
  --insert-frac F     insert probability, uniform/skewed (default 0.5)
  --window W          live-edge cap for sliding-window (default |E|)
  --platform P        simulated platform preset (default dgx-a100)
  --devices N         simulated devices (default 1)
  --nodes N           cluster size (see `ldgm help match`)
  --seed S            update-stream seed (default 0)
  --compact-frac F    delta-CSR compaction threshold (default 0.25)
  --overlap           overlap collectives with compute (chunked allreduce
                      on the comm stream)
  --auto-tune         probe the static tuner on the base graph and adopt
                      its locked overlap schedule for the update rounds
  --verify            check validity/maximality/certificate per batch
  --trace-out FILE    write the event timeline (incremental engine)
  --report-json FILE  write a schema-versioned JSON run report
",
    ),
    (
        "serve",
        "\
ldgm serve - long-lived matching service over line-delimited JSON/TCP

Loads one or more graphs, seeds a locally-dominant matching per dataset
with the incremental engine, then serves concurrent clients: point
queries (`mate`), `match-info`, single and batched updates, and
`subscribe` notifications. Updates from all clients coalesce into one
engine batch per flush (size target or deadline); reads always see the
last committed snapshot. A client op `{\"op\":\"shutdown\"}` stops the
server after an offline replay check.

OPTIONS:
  --input FILES    comma-separated Matrix Market graphs (required);
                   each is served as a dataset named by its file stem
  --host H         bind address (default 127.0.0.1)
  --port P         TCP port; 0 picks a free one (default 0)
  --io MODEL       I/O engine: 'reactor' (epoll event loops, the
                   default) or 'blocking' (thread-per-connection)
  --reactor-threads N  event-loop threads for --io reactor (default 2)
  --workers N      handler threads for --io blocking (default 4)
  --max-frame B    per-line frame cap in bytes; longer requests answer
                   413 and are discarded (default 262144)
  --coalesce K     flush the pending buffer at K updates (default 64)
  --deadline-ms D  flush stragglers after D ms (default 10)
  --max-pending M  per-tenant admission cap (default 256)
  --platform P     simulated platform preset (default dgx-a100)
  --devices N      simulated devices (default 1)
  --compact-frac F delta-CSR compaction threshold (default 0.25)
  --overlap        overlap collectives with compute
  --no-auto-tune   skip the per-dataset config resolver (the tuner probe
                   that picks the overlap schedule) and serve the flags
                   as given
  --seed S         weight-synthesis seed for pattern-only inputs
  --addr-file F    also write the bound address to F (for scripts that
                   need the picked port)
",
    ),
    (
        "profile",
        "\
ldgm profile - phase/metric comparison of several algorithms on one graph

Runs each algorithm through the Matcher registry and prints a phase
table (time attribution summing to each run time), occupancy, and the
top metrics per algorithm.

OPTIONS:
  --input FILE      graph to read (required)
  --algorithms L    comma-separated registry names, or 'all'
                    (default ld-gpu,ld-seq,local-max,suitor-gpu)
  --platform P      simulated platform preset (default dgx-a100)
  --devices N       devices for simulated algorithms (default 1)
  --batches B       batches per device for ld-gpu (default auto)
  --nodes N         cluster size (see `ldgm help match`)
  --topo-placement  topology-aware part->node placement (LD-GPU matchers)
  --mem-limit BYTES override per-device memory capacity
  --stream          out-of-core streaming for the LD-GPU matchers
  --mem-budget BYTES  streaming window budget (requires --stream)
  --stream-window N   resident window depth in bands (requires --stream)
  --seed S          seed for randomized algorithms (default 0)
  --overlap         overlap collectives with compute (LD-GPU matchers)
  --auto-tune       tune the LD-GPU matchers in the list first and
                    profile their locked configs
  --metrics N       metrics rows per algorithm (default 6)
",
    ),
    (
        "stats",
        "\
ldgm stats - print Table-I-style properties of a graph

OPTIONS:
  --input FILE  graph to read (required)
  --seed S      weight-synthesis seed for pattern-only inputs (default 0)
",
    ),
    (
        "platforms",
        "\
ldgm platforms - list the simulated platform and cluster presets

The first section shows the presets accepted by --platform: device model
and count, per-device memory, and the peer/h2d interconnects. The second
lists the cluster topologies (nodes x GPUs with per-device memory and the
intra-/inter-node link classes) behind the cluster presets and the
--nodes option.
",
    ),
];

/// Dispatch a parsed command line.
pub fn run(args: &Args) -> Result<String, ArgError> {
    match args.command.as_str() {
        "gen" => cmd_gen(args),
        "match" => cmd_match(args),
        "dynamic" => cmd_dynamic(args),
        "serve" => cmd_serve(args),
        "profile" => cmd_profile(args),
        "stats" => cmd_stats(args),
        "platforms" => Ok(cmd_platforms()),
        "help" | "--help" => cmd_help(args),
        other => Err(ArgError(format!("unknown command '{other}'; try `ldgm help`"))),
    }
}

fn cmd_help(args: &Args) -> Result<String, ArgError> {
    match args.positionals.first().map(String::as_str) {
        None => Ok(HELP.to_string()),
        Some(topic) => COMMAND_HELP
            .iter()
            .find(|(name, _)| *name == topic)
            .map(|(_, text)| text.to_string())
            .ok_or_else(|| {
                let names: Vec<&str> = COMMAND_HELP.iter().map(|(n, _)| *n).collect();
                ArgError(format!("no help for '{topic}' (commands: {})", names.join(", ")))
            }),
    }
}

fn load_graph(args: &Args) -> Result<CsrGraph, ArgError> {
    let path = args
        .get("input")
        .ok_or_else(|| ArgError("missing required option '--input FILE'".into()))?;
    io::read_mtx_file(path, args.get_num("seed", 0u64)?)
        .map_err(|e| ArgError(format!("failed to read '{path}': {e}")))
}

/// Validate `--platform` against the preset registry; typos get the
/// nearest preset name suggested.
fn parse_platform(name: &str) -> Result<Platform, ArgError> {
    Platform::by_name(name).ok_or_else(|| {
        let valid = Platform::preset_names();
        let suggestion = nearest_names(name, &valid)
            .into_iter()
            .next()
            .filter(|best| edit_distance(name, best) <= 3)
            .map(|best| format!("; did you mean '{best}'?"))
            .unwrap_or_default();
        ArgError(format!("unknown platform '{name}' (valid: {}){suggestion}", valid.join(", ")))
    })
}

/// Resolve `--auto-tune` for one of the LD-GPU matchers: search the
/// (batches × toggles × overlap) config grid on `g` with short probe
/// runs and return a matcher locked to the full-run winner, which is
/// never slower (simulated) than the defaults. Other algorithms have no
/// tunable driver config and reject the flag.
fn tuned_matcher(
    algorithm: &str,
    setup: &MatcherSetup,
    g: &CsrGraph,
) -> Result<(Box<dyn Matcher>, TuneReport), ArgError> {
    let base = match algorithm {
        "ld-gpu" => LdGpuMatcher::config_from_setup(setup),
        "ld-gpu-opt" => LdGpuMatcher::config_from_setup(setup).optimized(),
        other => {
            return Err(ArgError(format!(
                "--auto-tune applies to the ld-gpu matchers (ld-gpu, ld-gpu-opt), not '{other}'"
            )))
        }
    };
    let report = auto_tune(g, &base).map_err(|e| ArgError(format!("auto-tune failed: {e}")))?;
    let matcher: Box<dyn Matcher> = match algorithm {
        "ld-gpu" => Box::new(LdGpuMatcher { cfg: report.config.clone() }),
        _ => Box::new(LdGpuOptMatcher { cfg: report.config.clone() }),
    };
    Ok((matcher, report))
}

/// One-line summary of a tuning verdict for command output.
fn tune_note(report: &TuneReport) -> String {
    format!(
        "auto-tune: probed {} candidates, locked [{}]; simulated {:.3} ms vs default {:.3} ms\n",
        report.candidates,
        report.knobs(),
        report.sim_time * 1e3,
        report.base_sim_time * 1e3,
    )
}

/// Build the matcher setup shared by `match`, `profile` and `dynamic`.
fn matcher_setup(args: &Args, collect_trace: bool) -> Result<MatcherSetup, ArgError> {
    let nodes = match args.get("nodes") {
        None => None,
        Some(n) => {
            let n: usize = n.parse().map_err(|_| ArgError(format!("bad --nodes '{n}'")))?;
            if n == 0 {
                return Err(ArgError("--nodes must be >= 1".into()));
            }
            Some(n)
        }
    };
    let parse_bytes = |name: &str| -> Result<Option<u64>, ArgError> {
        match args.get(name) {
            None => Ok(None),
            Some(b) => {
                let bytes: u64 = b.parse().map_err(|_| ArgError(format!("bad --{name} '{b}'")))?;
                if bytes == 0 {
                    return Err(ArgError(format!("--{name} must be at least 1 byte")));
                }
                Ok(Some(bytes))
            }
        }
    };
    let streaming = args.has_flag("stream");
    let mem_budget = parse_bytes("mem-budget")?;
    let stream_window = match args.get("stream-window") {
        None => None,
        Some(w) => {
            let w: usize = w.parse().map_err(|_| ArgError(format!("bad --stream-window '{w}'")))?;
            if w < 2 {
                return Err(ArgError(
                    "--stream-window must be >= 2 (double-buffer minimum)".into(),
                ));
            }
            Some(w)
        }
    };
    if !streaming && (mem_budget.is_some() || stream_window.is_some()) {
        return Err(ArgError(
            "--mem-budget/--stream-window shape the streaming window; add --stream".into(),
        ));
    }
    Ok(MatcherSetup {
        platform: parse_platform(args.get_or("platform", "dgx-a100"))?,
        devices: args.get_num("devices", 1usize)?,
        batches: match args.get("batches") {
            None => None,
            Some(b) => Some(b.parse().map_err(|_| ArgError(format!("bad --batches '{b}'")))?),
        },
        seed: args.get_num("seed", 0u64)?,
        collect_trace,
        overlap: args.has_flag("overlap"),
        nodes,
        topology_placement: args.has_flag("topo-placement"),
        mem_limit: parse_bytes("mem-limit")?,
        streaming,
        mem_budget,
        stream_window,
        ..Default::default()
    })
}

/// Phase attribution for a finished run, honoring the report invariant
/// (phases sum to the run time): prefer the exact timeline sweep over the
/// event trace, then the algorithm's own profile, and fall back to
/// attributing everything to the matching phase for uninstrumented host
/// algorithms.
fn result_phases(r: &MatchResult) -> PhaseBreakdown {
    if let Some(t) = &r.trace {
        return timeline_breakdown(t, r.run_time);
    }
    match &r.profile {
        Some(p) => p.phases,
        None => PhaseBreakdown { matching: r.run_time, ..Default::default() },
    }
}

fn cmd_gen(args: &Args) -> Result<String, ArgError> {
    args.expect_known(&["family", "vertices", "avg-degree", "seed", "out"])?;
    let family = args.get_or("family", "rmat");
    let n: usize = args.get_num("vertices", 1024usize)?;
    let d: f64 = args.get_num("avg-degree", 8.0f64)?;
    let seed: u64 = args.get_num("seed", 0u64)?;
    let gg = match family {
        "rmat" => GraphGen::rmat(),
        "social" => GraphGen::social(),
        "urand" => GraphGen::urand(),
        "kmer" => GraphGen::kmer(),
        "web" => GraphGen::web(),
        "lattice" => GraphGen::lattice(4),
        "geometric" => GraphGen::geometric(0.03),
        "similarity" => GraphGen::similarity(6),
        other => return Err(ArgError(format!("unknown family '{other}'"))),
    };
    let g = gg.vertices(n).avg_degree(d).seed(seed).build();
    let mut out = String::new();
    let s = stats(&g);
    writeln!(
        out,
        "generated {family}: |V|={} |E|={} d_max={} d_avg={:.1}",
        s.vertices, s.edges, s.d_max, s.d_avg
    )
    .unwrap();
    if let Some(path) = args.get("out") {
        io::write_mtx_file(&g, path)
            .map_err(|e| ArgError(format!("failed to write '{path}': {e}")))?;
        writeln!(out, "wrote {path}").unwrap();
    }
    Ok(out)
}

fn cmd_match(args: &Args) -> Result<String, ArgError> {
    args.expect_known(&[
        "input",
        "algorithm",
        "devices",
        "batches",
        "platform",
        "augment",
        "seed",
        "verify",
        "trace-out",
        "report-json",
        "overlap",
        "nodes",
        "topo-placement",
        "mem-limit",
        "stream",
        "mem-budget",
        "stream-window",
        "auto-tune",
    ])?;
    let g = load_graph(args)?;
    let algorithm = args.get_or("algorithm", "ld-gpu");
    let want_trace = args.get("trace-out").is_some() || args.get("report-json").is_some();
    let setup = matcher_setup(args, want_trace)?;
    let registry = MatcherRegistry::with_defaults(&setup);
    // Validate the name through the registry even when tuning replaces
    // the matcher, so typos keep their nearest-name suggestions.
    let matcher = registry.try_get(algorithm).map_err(|e| ArgError(e.to_string()))?;
    let mut out = String::new();
    let tuned = if args.has_flag("auto-tune") {
        let (m, report) = tuned_matcher(algorithm, &setup, &g)?;
        out.push_str(&tune_note(&report));
        Some(m)
    } else {
        None
    };
    let matcher: &dyn Matcher = tuned.as_deref().unwrap_or(matcher);
    let wall_start = std::time::Instant::now();
    let result = matcher.run(&g).map_err(|e| ArgError(e.to_string()))?;
    let wall_time_ms = wall_start.elapsed().as_secs_f64() * 1e3;

    let mut sim_note = String::new();
    if result.simulated {
        let devices = result.metrics.gauge(names::DRIVER_DEVICES).unwrap_or(1.0) as u64;
        writeln!(
            sim_note,
            "simulated {:.3} ms on {} device(s), {} iterations",
            result.run_time * 1e3,
            devices.max(1),
            result.iterations
        )
        .unwrap();
    }

    if let Some(path) = args.get("trace-out") {
        let trace = result.trace.as_ref().ok_or_else(|| {
            ArgError(format!("--trace-out: algorithm '{algorithm}' does not record traces"))
        })?;
        let doc = chrome_trace_json(trace);
        std::fs::write(path, doc.to_string_compact())
            .map_err(|e| ArgError(format!("failed to write '{path}': {e}")))?;
        writeln!(out, "wrote trace {path} ({} events)", trace.events.len()).unwrap();
    }
    if let Some(path) = args.get("report-json") {
        let report = RunReport {
            algorithm: algorithm.to_string(),
            platform: result.simulated.then(|| args.get_or("platform", "dgx-a100").to_string()),
            vertices: g.num_vertices() as u64,
            directed_edges: g.num_directed_edges() as u64,
            cardinality: result.matching.cardinality() as u64,
            weight: result.matching.weight(&g),
            sim_time: result.run_time,
            wall_time_ms,
            iterations: result.iterations,
            phases: result_phases(&result),
            metrics: result.metrics.clone(),
        };
        std::fs::write(path, report.to_json().to_string_pretty())
            .map_err(|e| ArgError(format!("failed to write '{path}': {e}")))?;
        writeln!(out, "wrote report {path}").unwrap();
    }

    let matching = result.matching;
    let passes: usize = args.get_num("augment", 0usize)?;
    let matching = if passes > 0 {
        let before = matching.weight(&g);
        let refined = augment_short(&g, matching, passes, args.get_num("seed", 0u64)?);
        writeln!(
            out,
            "augmented: {} augmentations over {} pass(es), weight {:.4} -> {:.4}",
            refined.augmentations,
            refined.passes,
            before,
            refined.matching.weight(&g)
        )
        .unwrap();
        refined.matching
    } else {
        matching
    };
    writeln!(
        out,
        "{algorithm}: matched {} of {} vertices, weight {:.4}",
        2 * matching.cardinality(),
        g.num_vertices(),
        matching.weight(&g)
    )
    .unwrap();
    out.push_str(&sim_note);
    if args.has_flag("verify") {
        matching.verify(&g).map_err(ArgError)?;
        writeln!(out, "verify: structurally valid").unwrap();
        writeln!(out, "verify: maximal = {}", matching.is_maximal(&g)).unwrap();
        if passes > 0 {
            // The static dominance certificate characterizes *locally
            // dominant* matchings; augmentation trades it for weight (the
            // refined matching is at least as heavy, so the 1/2 bound
            // still holds transitively).
            writeln!(out, "verify: 1/2 bound inherited from the pre-augmentation matching")
                .unwrap();
        } else {
            writeln!(
                out,
                "verify: 1/2-approx dominance certificate = {}",
                half_approx_certificate(&g, &matching)
            )
            .unwrap();
        }
    }
    Ok(out)
}

/// Default algorithm list for `ldgm profile`: one representative per
/// execution style (multi-GPU LD, sequential LD, edge-centric host,
/// single-GPU Suitor).
const PROFILE_DEFAULT_ALGORITHMS: &str = "ld-gpu,ld-seq,local-max,suitor-gpu";

fn cmd_dynamic(args: &Args) -> Result<String, ArgError> {
    args.expect_known(&[
        "input",
        "engine",
        "workload",
        "batches",
        "batch-size",
        "insert-frac",
        "window",
        "platform",
        "devices",
        "seed",
        "compact-frac",
        "verify",
        "trace-out",
        "report-json",
        "overlap",
        "nodes",
        "auto-tune",
    ])?;
    let g = load_graph(args)?;
    let mut setup = matcher_setup(args, false)?.resolved();
    let mut tune_line = String::new();
    if args.has_flag("auto-tune") {
        // The dynamic engines share the platform's comm-schedule knob
        // with the static driver: probe the LD-GPU grid on the base
        // graph and adopt the locked overlap setting.
        let base = LdGpuMatcher::config_from_setup(&setup);
        let report =
            auto_tune(&g, &base).map_err(|e| ArgError(format!("auto-tune failed: {e}")))?;
        setup.overlap = report.config.overlap;
        tune_line = tune_note(&report);
    }
    let engine_name = args.get_or("engine", "incremental");
    let frac: f64 = args.get_num("compact-frac", 0.25f64)?;
    if frac <= 0.0 {
        return Err(ArgError(format!("--compact-frac must be positive, got {frac}")));
    }
    let mut registry = DynamicMatcherRegistry::with_defaults(&setup);
    // --compact-frac shapes the incremental engine; re-register it with
    // the override so the registry stays the single dispatch path.
    let dyn_cfg = DynConfig::builder(setup.platform.clone())
        .devices(setup.devices)
        .compact_frac(frac)
        .overlap(setup.overlap)
        .build()
        .map_err(|e| ArgError(e.to_string()))?;
    registry.register(Box::new(IncrementalMatcher::new(dyn_cfg)));
    let engine = registry.get(engine_name).ok_or_else(|| {
        ArgError(format!("unknown engine '{engine_name}' (valid: {})", registry.names().join(", ")))
    })?;
    let workload = args.get_or("workload", "uniform");
    let kind = WorkloadKind::from_name(workload).ok_or_else(|| {
        ArgError(format!(
            "unknown workload '{workload}' (valid: {})",
            WorkloadKind::names().join(", ")
        ))
    })?;
    let insert_frac: f64 = args.get_num("insert-frac", 0.5f64)?;
    if !(0.0..=1.0).contains(&insert_frac) {
        return Err(ArgError(format!("--insert-frac must be in [0, 1], got {insert_frac}")));
    }
    let spec = WorkloadSpec {
        kind,
        batches: args.get_num("batches", 8usize)?,
        batch_size: args.get_num("batch-size", 64usize)?,
        insert_frac,
        window: match args.get("window") {
            None => None,
            Some(w) => Some(w.parse().map_err(|_| ArgError(format!("bad --window '{w}'")))?),
        },
        seed: args.get_num("seed", 0u64)?,
        verify_each_batch: args.has_flag("verify"),
    };
    let wall_start = std::time::Instant::now();
    let result = engine.run(&g, &spec).map_err(|e| ArgError(e.to_string()))?;
    let wall_time_ms = wall_start.elapsed().as_secs_f64() * 1e3;

    let mut out = String::new();
    out.push_str(&tune_line);
    writeln!(
        out,
        "dynamic/{engine_name}: {} batches x {} updates ({workload}), |V|={} |E|={} -> {}",
        spec.batches,
        spec.batch_size,
        g.num_vertices(),
        g.num_edges(),
        result.graph.num_edges()
    )
    .unwrap();
    for r in &result.batch_reports {
        writeln!(
            out,
            "  batch {}: +{} -{} seed {} rounds {} new {} broken {} {:.3} ms{}",
            r.batch,
            r.inserts,
            r.deletes,
            r.seed_frontier,
            r.rounds,
            r.new_matches,
            r.broken_matches,
            r.sim_time * 1e3,
            if r.compacted { " [compacted]" } else { "" }
        )
        .unwrap();
    }
    writeln!(
        out,
        "initial solve {:.3} ms, maintenance {:.3} ms over {} batches ({:.3} ms/batch)",
        result.initial_time * 1e3,
        result.maintenance_time * 1e3,
        result.batch_reports.len(),
        result.maintenance_time * 1e3 / result.batch_reports.len().max(1) as f64
    )
    .unwrap();
    writeln!(
        out,
        "final matching: matched {} of {} vertices, weight {:.4}",
        2 * result.matching.cardinality(),
        result.graph.num_vertices(),
        result.matching.weight(&result.graph)
    )
    .unwrap();
    if spec.verify_each_batch {
        writeln!(
            out,
            "verify: all {} batches passed validity/maximality/certificate",
            spec.batches
        )
        .unwrap();
    }

    if let Some(path) = args.get("trace-out") {
        let trace = result.trace.as_ref().ok_or_else(|| {
            ArgError(format!("--trace-out: engine '{engine_name}' does not record traces"))
        })?;
        let doc = chrome_trace_json(trace);
        std::fs::write(path, doc.to_string_compact())
            .map_err(|e| ArgError(format!("failed to write '{path}': {e}")))?;
        writeln!(out, "wrote trace {path} ({} events)", trace.events.len()).unwrap();
    }
    if let Some(path) = args.get("report-json") {
        let report = RunReport {
            algorithm: format!("ld-dyn-{engine_name}"),
            platform: Some(args.get_or("platform", "dgx-a100").to_string()),
            vertices: result.graph.num_vertices() as u64,
            directed_edges: result.graph.num_directed_edges() as u64,
            cardinality: result.matching.cardinality() as u64,
            weight: result.matching.weight(&result.graph),
            sim_time: result.sim_time,
            wall_time_ms,
            iterations: result.iterations,
            phases: result.profile.phases,
            metrics: result.metrics.clone(),
        };
        std::fs::write(path, report.to_json().to_string_pretty())
            .map_err(|e| ArgError(format!("failed to write '{path}': {e}")))?;
        writeln!(out, "wrote report {path}").unwrap();
    }
    Ok(out)
}

fn cmd_serve(args: &Args) -> Result<String, ArgError> {
    args.expect_known(&[
        "input",
        "host",
        "port",
        "io",
        "reactor-threads",
        "workers",
        "max-frame",
        "coalesce",
        "deadline-ms",
        "max-pending",
        "platform",
        "devices",
        "compact-frac",
        "overlap",
        "no-auto-tune",
        "seed",
        "addr-file",
    ])?;
    let inputs = args
        .get("input")
        .ok_or_else(|| ArgError("missing required option '--input FILES'".into()))?;
    let platform = parse_platform(args.get_or("platform", "dgx-a100"))?;
    let dyn_cfg = DynConfig::builder(platform)
        .devices(args.get_num("devices", 1usize)?)
        .compact_frac(args.get_num("compact-frac", 0.25f64)?)
        .overlap(args.has_flag("overlap"))
        .build()
        .map_err(|e| ArgError(e.to_string()))?;
    let serve_cfg = ServeConfig {
        coalesce_target: args.get_num("coalesce", 64usize)?,
        deadline: Duration::from_millis(args.get_num("deadline-ms", 10u64)?),
        max_pending_per_tenant: args.get_num("max-pending", 256usize)?,
    };
    if serve_cfg.coalesce_target == 0 {
        return Err(ArgError("--coalesce must be at least 1".into()));
    }
    // Transport flags are validated before the (possibly slow) dataset
    // loads so typos fail fast.
    let io_name = args.get_or("io", "reactor");
    let io = ldgm_serve::IoModel::parse(io_name).ok_or_else(|| {
        ArgError(format!("unknown --io model '{io_name}' (valid: reactor, blocking)"))
    })?;
    let threads = match io {
        ldgm_serve::IoModel::Reactor => args.get_num("reactor-threads", 2usize)?,
        ldgm_serve::IoModel::Blocking => args.get_num("workers", 4usize)?,
    };
    let max_frame = args.get_num("max-frame", ldgm_serve::MAX_FRAME_LEN)?;
    if max_frame == 0 {
        return Err(ArgError("--max-frame must be at least 1".into()));
    }
    let seed: u64 = args.get_num("seed", 0u64)?;
    let mut services = Vec::new();
    for path in inputs.split(',').map(str::trim).filter(|p| !p.is_empty()) {
        let g = io::read_mtx_file(path, seed)
            .map_err(|e| ArgError(format!("failed to read '{path}': {e}")))?;
        let name = std::path::Path::new(path)
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or(path)
            .to_string();
        // Default boot path: the tuner resolver picks the per-dataset
        // overlap schedule; --no-auto-tune serves the flags as given.
        let svc = if args.has_flag("no-auto-tune") {
            MatchService::new(name, g, dyn_cfg.clone(), serve_cfg.clone())
        } else {
            MatchService::with_tuned_config(name, g, dyn_cfg.clone(), serve_cfg.clone())
        };
        services.push(Arc::new(svc));
    }
    if services.is_empty() {
        return Err(ArgError("--input named no datasets".into()));
    }

    let bind = format!("{}:{}", args.get_or("host", "127.0.0.1"), args.get_num("port", 0u16)?);
    let opts = ldgm_serve::ServerOptions { io, threads, max_frame };
    let handle = ldgm_serve::serve_opts(services.clone(), &bind, opts)
        .map_err(|e| ArgError(format!("failed to bind '{bind}': {e}")))?;

    // The command blocks until a client sends `shutdown`, so the address
    // must go out now, not with the final report.
    {
        use std::io::Write as _;
        println!("ldgm-serve listening on {} ({} x{})", handle.addr, io.label(), threads.max(1));
        let _ = std::io::stdout().flush();
    }
    if let Some(path) = args.get("addr-file") {
        std::fs::write(path, handle.addr.to_string())
            .map_err(|e| ArgError(format!("failed to write '{path}': {e}")))?;
    }
    handle.join();

    let mut out = String::new();
    writeln!(out, "ldgm-serve: shut down after serving {} dataset(s)", services.len()).unwrap();
    for svc in &services {
        let snap = svc.snapshot();
        let st = svc.stats();
        writeln!(
            out,
            "  {}: epoch {} matched {} weight {:.4} | {} flushes ({} by deadline), \
             {} updates, mean batch {:.2}, billed {:.3} sim-ms",
            svc.name(),
            snap.epoch,
            2 * snap.cardinality,
            snap.weight,
            st.flushes,
            st.deadline_flushes,
            st.updates_applied,
            st.mean_batch(),
            snap.sim_time * 1e3,
        )
        .unwrap();
    }
    Ok(out)
}

fn cmd_profile(args: &Args) -> Result<String, ArgError> {
    args.expect_known(&[
        "input",
        "algorithms",
        "platform",
        "devices",
        "batches",
        "seed",
        "metrics",
        "overlap",
        "nodes",
        "topo-placement",
        "mem-limit",
        "stream",
        "mem-budget",
        "stream-window",
        "auto-tune",
    ])?;
    let g = load_graph(args)?;
    let setup = matcher_setup(args, true)?;
    let mut registry = MatcherRegistry::with_defaults(&setup);
    let names: Vec<String> = match args.get_or("algorithms", PROFILE_DEFAULT_ALGORITHMS) {
        "all" => registry.names().iter().map(|s| s.to_string()).collect(),
        list => list.split(',').map(|s| s.trim().to_string()).collect(),
    };
    let top_n: usize = args.get_num("metrics", 6usize)?;

    let mut out = String::new();
    if args.has_flag("auto-tune") {
        // Re-register each requested LD-GPU matcher with its locked
        // config so the profile rows show the tuned runs.
        for alg in ["ld-gpu", "ld-gpu-opt"] {
            if names.iter().any(|n| n == alg) {
                let (m, report) = tuned_matcher(alg, &setup, &g)?;
                write!(out, "{alg} {}", tune_note(&report)).unwrap();
                drop(registry.register(m));
            }
        }
    }
    writeln!(
        out,
        "profile: |V|={} 2|E|={} platform={} devices={}",
        g.num_vertices(),
        g.num_directed_edges(),
        args.get_or("platform", "dgx-a100"),
        setup.devices
    )
    .unwrap();
    writeln!(
        out,
        "{:<11} {:>12} {:>6}  {:>6} {:>6} {:>6} {:>6} {:>6}  {:>5}",
        "algorithm", "time(ms)", "iters", "point%", "match%", "allr%", "xfer%", "sync%", "occ"
    )
    .unwrap();

    let mut runs: Vec<(String, MatchResult)> = Vec::new();
    for name in &names {
        let matcher = registry.try_get(name).map_err(|e| ArgError(e.to_string()))?;
        match matcher.run(&g) {
            Err(e) => writeln!(out, "{name:<11} skipped: {e}").unwrap(),
            Ok(r) => {
                let phases = result_phases(&r);
                let total = phases.total().max(1e-30);
                let pct = |v: f64| v / total * 100.0;
                let occ = match r.metrics.gauge(names::KERNEL_OCCUPANCY) {
                    Some(o) => format!("{o:>5.2}"),
                    None => format!("{:>5}", "-"),
                };
                writeln!(
                    out,
                    "{:<11} {:>12.3} {:>6}  {:>6.1} {:>6.1} {:>6.1} {:>6.1} {:>6.1}  {}",
                    name,
                    r.run_time * 1e3,
                    r.iterations,
                    pct(phases.pointing),
                    pct(phases.matching),
                    pct(phases.allreduce),
                    pct(phases.transfer),
                    pct(phases.sync),
                    occ
                )
                .unwrap();
                runs.push((name.clone(), r));
            }
        }
    }

    for (name, r) in &runs {
        if r.metrics.is_empty() {
            continue;
        }
        writeln!(out, "\n{name}: top metrics").unwrap();
        let mut entries: Vec<(&str, f64, &'static str)> =
            r.metrics.iter().map(|(k, m)| (k, m.scalar(), m.kind())).collect();
        entries.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        for (key, value, kind) in entries.into_iter().take(top_n) {
            if kind == "counter" {
                writeln!(out, "  {key:<28} {value:>14.0}").unwrap();
            } else {
                writeln!(out, "  {key:<28} {value:>14.4}").unwrap();
            }
        }
    }
    Ok(out)
}

fn cmd_stats(args: &Args) -> Result<String, ArgError> {
    args.expect_known(&["input", "seed"])?;
    let g = load_graph(args)?;
    let s = stats(&g);
    let mut out = String::new();
    writeln!(out, "|V|        {}", s.vertices).unwrap();
    writeln!(out, "|E|        {}", s.edges).unwrap();
    writeln!(out, "nnz        {}", 2 * s.edges).unwrap();
    writeln!(out, "d_max      {}", s.d_max).unwrap();
    writeln!(out, "d_avg      {:.2}", s.d_avg).unwrap();
    writeln!(out, "degree CV  {:.3}", degree_cv(&g)).unwrap();
    writeln!(out, "isolated   {}", s.isolated).unwrap();
    writeln!(out, "components {}", s.components).unwrap();
    writeln!(out, "w(E)       {:.4}", g.total_weight()).unwrap();
    writeln!(out, "CSR bytes  {}", g.csr_bytes()).unwrap();
    Ok(out)
}

fn cmd_platforms() -> String {
    let mut out = String::new();
    writeln!(out, "platform presets (--platform):").unwrap();
    for (name, p) in Platform::presets() {
        writeln!(
            out,
            "  {:<18} {:<16} {} x{:<3} mem {:>3} GB/dev  peer {} ({} GB/s)  h2d {} ({} GB/s)",
            name,
            p.name,
            p.device.name,
            p.max_devices,
            p.device.mem_bytes >> 30,
            p.interconnect.peer.name,
            p.interconnect.peer.bw_gbps,
            p.interconnect.h2d.name,
            p.interconnect.h2d.bw_gbps,
        )
        .unwrap();
    }
    writeln!(out, "\ncluster topologies (cluster presets; re-size with --nodes N):").unwrap();
    for (name, t) in ClusterTopology::presets() {
        // The topology itself is link shape only; the device (and so its
        // memory capacity) comes from the platform preset of the same
        // name, or from the flat platform the "-cluster" suffix wraps.
        let mem = Platform::by_name(name)
            .or_else(|| Platform::by_name(name.strip_suffix("-cluster").unwrap_or(name)))
            .map_or_else(|| "  ?".to_string(), |p| format!("{:>3}", p.device.mem_bytes >> 30));
        writeln!(
            out,
            "  {:<18} {:<18} {} nodes x {} GPUs  mem {} GB/dev  intra {} ({} GB/s, {} us)  inter {} ({} GB/s, {} us)",
            name,
            t.name,
            t.nodes,
            t.gpus_per_node,
            mem,
            t.intra.name,
            t.intra.bw_gbps,
            t.intra.latency_us,
            t.inter.name,
            t.inter.bw_gbps,
            t.inter.latency_us,
        )
        .unwrap();
    }
    writeln!(
        out,
        "\nflat presets cluster over InfiniBand HDR with --nodes N; cluster presets\n\
         re-size to N nodes. --topo-placement groups graph parts onto nodes so\n\
         heavy cut edges stay on the intra-node link."
    )
    .unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldgm_gpusim::json;

    fn args(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from)).unwrap()
    }

    fn tmp(name: &str) -> String {
        std::env::temp_dir().join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn gen_then_stats_then_match_pipeline() {
        let path = tmp("ldgm_cli_test.mtx");
        let r = run(&args(&format!(
            "gen --family urand --vertices 300 --avg-degree 6 --seed 1 --out {path}"
        )))
        .unwrap();
        assert!(r.contains("generated urand"));
        let r = run(&args(&format!("stats --input {path}"))).unwrap();
        assert!(r.contains("|V|        300"));
        let r =
            run(&args(&format!("match --input {path} --algorithm ld-gpu --devices 2 --verify")))
                .unwrap();
        assert!(r.contains("structurally valid"));
        assert!(r.contains("maximal = true"));
        assert!(r.contains("certificate = true"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn every_algorithm_runs() {
        let path = tmp("ldgm_cli_algos.mtx");
        run(&args(&format!("gen --vertices 200 --avg-degree 5 --seed 2 --out {path}"))).unwrap();
        // Every registry algorithm works through the CLI.
        let names: Vec<String> = MatcherRegistry::with_defaults(&MatcherSetup::default())
            .names()
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(names.len() >= 8);
        for alg in &names {
            let r = run(&args(&format!("match --input {path} --algorithm {alg} --verify")))
                .unwrap_or_else(|e| panic!("{alg}: {e}"));
            assert!(r.contains("matched"), "{alg}");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn augment_improves_or_preserves() {
        let path = tmp("ldgm_cli_aug.mtx");
        run(&args(&format!("gen --vertices 250 --avg-degree 6 --seed 3 --out {path}"))).unwrap();
        let r =
            run(&args(&format!("match --input {path} --algorithm ld-seq --augment 4 --verify")))
                .unwrap();
        assert!(r.contains("augmented:"));
        assert!(r.contains("maximal = true"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn helpful_errors() {
        assert!(run(&args("match")).unwrap_err().0.contains("--input"));
        assert!(run(&args("bogus")).unwrap_err().0.contains("unknown command"));
        let path = tmp("ldgm_cli_err.mtx");
        run(&args(&format!("gen --vertices 100 --avg-degree 4 --seed 4 --out {path}"))).unwrap();
        let e = run(&args(&format!("match --input {path} --algorithm nope"))).unwrap_err();
        assert!(e.0.contains("unknown algorithm"));
        assert!(e.0.contains("ld-gpu"), "error must list valid names: {e}");
        assert!(run(&args(&format!("match --input {path} --platforms x")))
            .unwrap_err()
            .0
            .contains("unknown option"));
        let e = run(&args(&format!("match --input {path} --platform dgx9000"))).unwrap_err();
        assert!(e.0.contains("unknown platform"));
        assert!(e.0.contains("dgx-a100"), "error must list presets: {e}");
        // A near-miss gets the nearest preset suggested; garbage doesn't.
        let e = run(&args(&format!("match --input {path} --platform dgx-a100s"))).unwrap_err();
        assert!(e.0.contains("did you mean 'dgx-a100'?"), "{e}");
        let e = run(&args(&format!("match --input {path} --platform zzzzzzzzzzz"))).unwrap_err();
        assert!(!e.0.contains("did you mean"), "{e}");
        assert!(run(&args(&format!("match --input {path} --nodes 0")))
            .unwrap_err()
            .0
            .contains("--nodes must be >= 1"));
        let e =
            run(&args(&format!("profile --input {path} --algorithms ld-gpu,nope"))).unwrap_err();
        assert!(e.0.contains("unknown algorithm"));
        assert!(e.0.contains("ld-seq"), "error must list valid names: {e}");
        let e = run(&args(&format!("dynamic --input {path} --engine nope"))).unwrap_err();
        assert!(e.0.contains("unknown engine"));
        assert!(e.0.contains("incremental") && e.0.contains("from-scratch"), "{e}");
        let e = run(&args(&format!("dynamic --input {path} --workload nope"))).unwrap_err();
        assert!(e.0.contains("unknown workload"));
        assert!(e.0.contains("sliding-window"), "error must list workloads: {e}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn dynamic_runs_both_engines_and_agrees() {
        let path = tmp("ldgm_cli_dyn.mtx");
        run(&args(&format!(
            "gen --family urand --vertices 200 --avg-degree 6 --seed 3 --out {path}"
        )))
        .unwrap();
        let inc = run(&args(&format!(
            "dynamic --input {path} --batches 3 --batch-size 10 --seed 5 --verify"
        )))
        .unwrap();
        assert!(inc.contains("dynamic/incremental: 3 batches x 10 updates (uniform)"), "{inc}");
        assert!(inc.contains("batch 2:"), "{inc}");
        assert!(inc.contains("verify: all 3 batches passed"), "{inc}");
        let scr = run(&args(&format!(
            "dynamic --input {path} --engine from-scratch --batches 3 --batch-size 10 --seed 5"
        )))
        .unwrap();
        // Same seed => same stream => identical final matching lines.
        let final_line = |s: &str| {
            s.lines().find(|l| l.starts_with("final matching:")).map(str::to_string).unwrap()
        };
        assert_eq!(final_line(&inc), final_line(&scr));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn dynamic_report_and_trace_outputs() {
        let path = tmp("ldgm_cli_dyn_rep.mtx");
        let report = tmp("ldgm_cli_dyn_report.json");
        let trace = tmp("ldgm_cli_dyn_trace.json");
        run(&args(&format!(
            "gen --family urand --vertices 150 --avg-degree 5 --seed 9 --out {path}"
        )))
        .unwrap();
        let r = run(&args(&format!(
            "dynamic --input {path} --workload sliding-window --batches 2 --batch-size 8 \
             --devices 2 --report-json {report} --trace-out {trace}"
        )))
        .unwrap();
        assert!(r.contains("wrote report"), "{r}");
        assert!(r.contains("wrote trace"), "{r}");
        let doc = json::parse(&std::fs::read_to_string(&report).unwrap()).unwrap();
        assert_eq!(doc.get("schema_version").and_then(json::Json::as_f64), Some(5.0));
        assert_eq!(doc.get("algorithm").and_then(json::Json::as_str), Some("ld-dyn-incremental"));
        let sim = doc.get("sim_time").and_then(json::Json::as_f64).unwrap();
        let phases = doc.get("phases").unwrap();
        let total: f64 = ["pointing", "matching", "allreduce", "transfer", "sync"]
            .iter()
            .map(|k| phases.get(k).and_then(json::Json::as_f64).unwrap())
            .sum();
        assert!((total - sim).abs() < 1e-6 * sim.max(1.0), "phases {total} vs sim {sim}");
        // from-scratch records no timeline.
        let e = run(&args(&format!(
            "dynamic --input {path} --engine from-scratch --batches 1 --trace-out {trace}"
        )))
        .unwrap_err();
        assert!(e.0.contains("does not record traces"), "{e}");
        for f in [&path, &report, &trace] {
            std::fs::remove_file(f).ok();
        }
    }

    #[test]
    fn platforms_lists_presets_and_cluster_topologies() {
        let r = run(&args("platforms")).unwrap();
        for name in Platform::preset_names() {
            assert!(r.contains(name), "{name} missing from platform listing");
        }
        assert!(r.contains("DGX-A100"));
        // The cluster-topology section names every preset with both of
        // its link classes AND its per-device memory capacity.
        let cluster_section = r.split("cluster topologies").nth(1).unwrap();
        for (name, t) in ClusterTopology::presets() {
            let line = cluster_section
                .lines()
                .find(|l| l.contains(name))
                .unwrap_or_else(|| panic!("{name} missing from topology listing"));
            assert!(line.contains(t.intra.name), "{} missing", t.intra.name);
            assert!(line.contains(t.inter.name), "{} missing", t.inter.name);
            assert!(line.contains("GB/dev"), "{name} line lacks device memory: {line}");
            assert!(!line.contains('?'), "{name} memory unresolved: {line}");
        }
    }

    #[test]
    fn cluster_match_is_identical_to_flat_and_reports_topology_metrics() {
        let path = tmp("ldgm_cli_cluster.mtx");
        let report = tmp("ldgm_cli_cluster_report.json");
        run(&args(&format!("gen --vertices 400 --avg-degree 6 --seed 7 --out {path}"))).unwrap();
        let flat = run(&args(&format!("match --input {path} --devices 8 --verify"))).unwrap();
        let clustered = run(&args(&format!(
            "match --input {path} --devices 16 --nodes 2 --topo-placement --verify \
             --report-json {report}"
        )))
        .unwrap();
        // Same matching line regardless of the cluster shape.
        let matched =
            |s: &str| s.lines().find(|l| l.contains(": matched")).map(str::to_string).unwrap();
        assert_eq!(matched(&flat), matched(&clustered));
        let doc = json::parse(&std::fs::read_to_string(&report).unwrap()).unwrap();
        let metrics = doc.get("metrics").unwrap();
        assert_eq!(
            metrics.get("cluster.nodes").and_then(|m| m.get("value")).and_then(json::Json::as_f64),
            Some(2.0)
        );
        let cut = metrics
            .get("part.inter_node_cut")
            .and_then(|m| m.get("value"))
            .and_then(json::Json::as_f64)
            .unwrap();
        assert!((0.0..=1.0).contains(&cut), "cut {cut}");
        for f in [&path, &report] {
            std::fs::remove_file(f).ok();
        }
    }

    #[test]
    fn blossom_size_guard() {
        let path = tmp("ldgm_cli_big.mtx");
        run(&args(&format!("gen --vertices 3000 --avg-degree 4 --seed 5 --out {path}"))).unwrap();
        assert!(run(&args(&format!("match --input {path} --algorithm blossom")))
            .unwrap_err()
            .0
            .contains("O(n^3)"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn serve_session_over_tcp() {
        use std::io::{BufRead, BufReader, Write};

        let gpath = tmp("ldgm_cli_serve.mtx");
        let apath = tmp("ldgm_cli_serve.addr");
        std::fs::remove_file(&apath).ok();
        run(&args(&format!(
            "gen --family urand --vertices 200 --avg-degree 6 --seed 4 --out {gpath}"
        )))
        .unwrap();
        let cmd = format!(
            "serve --input {gpath} --port 0 --io reactor --reactor-threads 2 --coalesce 4 \
             --deadline-ms 60000 --addr-file {apath}"
        );
        let server = std::thread::spawn(move || run(&args(&cmd)));

        // The server writes its picked address once it is listening.
        let deadline = std::time::Instant::now() + Duration::from_secs(20);
        let addr = loop {
            if let Ok(a) = std::fs::read_to_string(&apath) {
                if !a.is_empty() {
                    break a;
                }
            }
            assert!(std::time::Instant::now() < deadline, "server never wrote {apath}");
            std::thread::sleep(Duration::from_millis(10));
        };

        let stream = std::net::TcpStream::connect(&addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut send = |line: &str| {
            let mut s = stream.try_clone().unwrap();
            writeln!(s, "{line}").unwrap();
            let mut resp = String::new();
            reader.read_line(&mut resp).unwrap();
            json::parse(&resp).unwrap()
        };
        let info = send(r#"{"op":"match-info"}"#);
        assert_eq!(info.get("epoch").and_then(json::Json::as_f64), Some(0.0));
        // Four updates hit the coalesce target and commit epoch 1.
        let ack = send(
            r#"{"op":"update-batch","updates":[
                {"kind":"insert","u":0,"v":1,"w":9.0},
                {"kind":"insert","u":2,"v":3,"w":9.0},
                {"kind":"insert","u":4,"v":5,"w":9.0},
                {"kind":"delete","u":0,"v":1}]}"#
                .replace('\n', " ")
                .as_str(),
        );
        assert_eq!(ack.get("flushed").and_then(json::Json::as_bool), Some(true));
        let m = send(r#"{"op":"mate","v":2}"#);
        assert_eq!(m.get("mate").and_then(json::Json::as_f64), Some(3.0));
        let bye = send(r#"{"op":"shutdown"}"#);
        assert_eq!(bye.get("replay_identical").and_then(json::Json::as_bool), Some(true));

        let report = server.join().unwrap().unwrap();
        assert!(report.contains("shut down after serving 1 dataset(s)"), "{report}");
        assert!(report.contains("ldgm_cli_serve: epoch 1"), "{report}");
        for f in [&gpath, &apath] {
            std::fs::remove_file(f).ok();
        }
    }

    #[test]
    fn serve_rejects_bad_options() {
        assert!(run(&args("serve")).unwrap_err().0.contains("--input"));
        assert!(run(&args("serve --input x.mtx --coalesce 0"))
            .unwrap_err()
            .0
            .contains("--coalesce"));
        assert!(run(&args("serve --input nope_does_not_exist.mtx"))
            .unwrap_err()
            .0
            .contains("failed to read"));
        assert!(run(&args("serve --input x.mtx --bogus 1")).unwrap_err().0.contains("--bogus"));
        assert!(run(&args("serve --input x.mtx --io warp")).unwrap_err().0.contains("--io"));
        assert!(run(&args("serve --input x.mtx --max-frame 0"))
            .unwrap_err()
            .0
            .contains("--max-frame"));
    }

    #[test]
    fn per_command_help() {
        assert_eq!(run(&args("help")).unwrap(), HELP);
        for cmd in ["gen", "match", "dynamic", "serve", "profile", "stats", "platforms"] {
            let h = run(&args(&format!("help {cmd}"))).unwrap();
            assert!(h.starts_with(&format!("ldgm {cmd}")), "{cmd}: {h}");
        }
        assert!(run(&args("help bogus")).unwrap_err().0.contains("no help for"));
    }

    #[test]
    fn equals_option_syntax_accepted() {
        let path = tmp("ldgm_cli_eq.mtx");
        run(&args(&format!("gen --vertices=150 --avg-degree=5 --seed=6 --out={path}"))).unwrap();
        let r = run(&args(&format!("match --input={path} --algorithm=greedy"))).unwrap();
        assert!(r.contains("greedy: matched"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn trace_and_report_outputs() {
        let gpath = tmp("ldgm_cli_trace.mtx");
        let tpath = tmp("ldgm_cli_trace.json");
        let rpath = tmp("ldgm_cli_report.json");
        run(&args(&format!("gen --vertices 300 --avg-degree 6 --seed 7 --out {gpath}"))).unwrap();
        let r = run(&args(&format!(
            "match --input {gpath} --algorithm ld-gpu --devices 2 \
             --trace-out {tpath} --report-json {rpath}"
        )))
        .unwrap();
        assert!(r.contains("wrote trace"));
        assert!(r.contains("wrote report"));

        // Trace: valid JSON array of events; every X event has the Chrome
        // trace envelope.
        let trace = json::parse(&std::fs::read_to_string(&tpath).unwrap()).unwrap();
        let events = trace.as_array().expect("trace must be a JSON array");
        let durations: Vec<&json::Json> = events
            .iter()
            .filter(|e| e.get("ph").and_then(json::Json::as_str) == Some("X"))
            .collect();
        assert!(!durations.is_empty());
        for e in durations {
            for key in ["name", "pid", "tid", "ts", "dur"] {
                assert!(e.get(key).is_some(), "event missing {key}");
            }
        }

        // Report: phase total equals sim_time within 1e-6 relative.
        let report = json::parse(&std::fs::read_to_string(&rpath).unwrap()).unwrap();
        assert_eq!(report.get("algorithm").and_then(json::Json::as_str), Some("ld-gpu"));
        assert_eq!(report.get("platform").and_then(json::Json::as_str), Some("dgx-a100"));
        let sim_time = report.get("sim_time").and_then(json::Json::as_f64).unwrap();
        let total =
            report.get("phases").and_then(|p| p.get("total")).and_then(json::Json::as_f64).unwrap();
        assert!(sim_time > 0.0);
        assert!((total - sim_time).abs() <= 1e-6 * sim_time, "{total} vs {sim_time}");
        for p in [&gpath, &tpath, &rpath] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn report_for_host_algorithm() {
        let gpath = tmp("ldgm_cli_hostrep.mtx");
        let rpath = tmp("ldgm_cli_hostrep.json");
        run(&args(&format!("gen --vertices 200 --avg-degree 5 --seed 8 --out {gpath}"))).unwrap();
        for alg in ["ld-seq", "greedy", "suitor-gpu"] {
            run(&args(&format!("match --input {gpath} --algorithm {alg} --report-json {rpath}")))
                .unwrap_or_else(|e| panic!("{alg}: {e}"));
            let report = json::parse(&std::fs::read_to_string(&rpath).unwrap()).unwrap();
            let sim_time = report.get("sim_time").and_then(json::Json::as_f64).unwrap();
            let total = report
                .get("phases")
                .and_then(|p| p.get("total"))
                .and_then(json::Json::as_f64)
                .unwrap();
            assert!(
                (total - sim_time).abs() <= 1e-6 * sim_time.max(1e-12),
                "{alg}: {total} vs {sim_time}"
            );
            // Host algorithms report a null platform.
            if alg != "suitor-gpu" {
                assert_eq!(report.get("platform"), Some(&json::Json::Null));
            }
        }
        std::fs::remove_file(&gpath).ok();
        std::fs::remove_file(&rpath).ok();
    }

    #[test]
    fn trace_out_rejected_for_host_algorithm() {
        let gpath = tmp("ldgm_cli_notrace.mtx");
        run(&args(&format!("gen --vertices 100 --avg-degree 4 --seed 9 --out {gpath}"))).unwrap();
        let e = run(&args(&format!(
            "match --input {gpath} --algorithm greedy --trace-out /tmp/nope.json"
        )))
        .unwrap_err();
        assert!(e.0.contains("does not record traces"));
        std::fs::remove_file(&gpath).ok();
    }

    #[test]
    fn profile_prints_phase_table() {
        let gpath = tmp("ldgm_cli_profile.mtx");
        run(&args(&format!("gen --vertices 400 --avg-degree 6 --seed 10 --out {gpath}"))).unwrap();
        let r = run(&args(&format!("profile --input {gpath}"))).unwrap();
        // Default set: four algorithms, all present as table rows.
        for alg in ["ld-gpu", "ld-seq", "local-max", "suitor-gpu"] {
            assert!(r.contains(alg), "{alg} missing:\n{r}");
        }
        assert!(r.contains("point%"));
        assert!(r.contains("top metrics"));
        assert!(r.contains("kernel.edges_scanned"));
        // Explicit list incl. a platform selection.
        let r = run(&args(&format!(
            "profile --input {gpath} --algorithms ld-gpu,cugraph --platform dgx2 --devices 4"
        )))
        .unwrap();
        assert!(r.contains("platform=dgx2"));
        assert!(r.contains("cugraph"));
        std::fs::remove_file(&gpath).ok();
    }

    #[test]
    fn ld_gpu_opt_through_match_and_profile() {
        let gpath = tmp("ldgm_cli_opt.mtx");
        let rpath = tmp("ldgm_cli_opt.json");
        run(&args(&format!("gen --vertices 500 --avg-degree 8 --seed 12 --out {gpath}"))).unwrap();
        // `match -a ld-gpu-opt` verifies and reports like the default mode.
        let r = run(&args(&format!(
            "match --input {gpath} --algorithm ld-gpu-opt --devices 2 --verify \
             --report-json {rpath}"
        )))
        .unwrap();
        assert!(r.contains("structurally valid"));
        assert!(r.contains("maximal = true"));
        let report = json::parse(&std::fs::read_to_string(&rpath).unwrap()).unwrap();
        assert_eq!(report.get("algorithm").and_then(json::Json::as_str), Some("ld-gpu-opt"));
        let card = |rep: &json::Json| {
            rep.get("matching").and_then(|m| m.get("cardinality")).and_then(json::Json::as_f64)
        };
        let opt_time = report.get("sim_time").and_then(json::Json::as_f64).unwrap();
        let opt_card = card(&report).unwrap();
        // Same matching as default ld-gpu, at lower simulated cost.
        run(&args(&format!(
            "match --input {gpath} --algorithm ld-gpu --devices 2 --report-json {rpath}"
        )))
        .unwrap();
        let report = json::parse(&std::fs::read_to_string(&rpath).unwrap()).unwrap();
        assert_eq!(card(&report), Some(opt_card));
        let def_time = report.get("sim_time").and_then(json::Json::as_f64).unwrap();
        assert!(opt_time < def_time, "opt {opt_time} vs default {def_time}");
        // Profile places both modes side by side.
        let r = run(&args(&format!(
            "profile --input {gpath} --algorithms ld-gpu,ld-gpu-opt --devices 2"
        )))
        .unwrap();
        assert!(r.contains("ld-gpu-opt"));
        std::fs::remove_file(&gpath).ok();
        std::fs::remove_file(&rpath).ok();
    }

    #[test]
    fn overlap_flag_keeps_matching_and_reports_comm_gauges() {
        let gpath = tmp("ldgm_cli_ovl.mtx");
        let rpath = tmp("ldgm_cli_ovl_report.json");
        run(&args(&format!("gen --vertices 600 --avg-degree 6 --seed 13 --out {gpath}"))).unwrap();
        let card_weight = |rep: &json::Json| {
            let m = rep.get("matching").unwrap();
            (
                m.get("cardinality").and_then(json::Json::as_f64).unwrap(),
                m.get("weight").and_then(json::Json::as_f64).unwrap(),
            )
        };
        run(&args(&format!(
            "match --input {gpath} --algorithm ld-gpu --devices 4 --report-json {rpath}"
        )))
        .unwrap();
        let plain = json::parse(&std::fs::read_to_string(&rpath).unwrap()).unwrap();
        run(&args(&format!(
            "match --input {gpath} --algorithm ld-gpu --devices 4 --overlap \
             --report-json {rpath}"
        )))
        .unwrap();
        let ovl = json::parse(&std::fs::read_to_string(&rpath).unwrap()).unwrap();
        // Billing-only: identical matching either way.
        assert_eq!(card_weight(&ovl), card_weight(&plain));
        assert_eq!(ovl.get("schema_version").and_then(json::Json::as_f64), Some(5.0));
        let gauge = |rep: &json::Json, name: &str| {
            rep.get("metrics")
                .and_then(|m| m.get(name))
                .and_then(|g| g.get("value"))
                .and_then(json::Json::as_f64)
        };
        for name in ["comm.exposed_time", "comm.hidden_time", "stream.occupancy"] {
            assert!(gauge(&ovl, name).is_some(), "{name} missing from overlap report");
        }
        std::fs::remove_file(&gpath).ok();
        std::fs::remove_file(&rpath).ok();
    }

    #[test]
    fn stream_flag_matches_plain_and_reports_streaming_metrics() {
        let gpath = tmp("ldgm_cli_stream.mtx");
        let rpath = tmp("ldgm_cli_stream_report.json");
        run(&args(&format!("gen --vertices 600 --avg-degree 6 --seed 21 --out {gpath}"))).unwrap();
        let matched =
            |s: &str| s.lines().find(|l| l.contains(": matched")).map(str::to_string).unwrap();
        let plain = run(&args(&format!("match --input {gpath} --devices 2 --verify"))).unwrap();
        // A memory limit far below the whole-graph footprint: without
        // --stream it forces the batching fallback, with --stream it
        // narrows the bands until the resident window fits.
        let limited = run(&args(&format!(
            "match --input {gpath} --devices 2 --mem-limit 50000 --verify \
             --report-json {rpath}"
        )))
        .unwrap();
        assert_eq!(matched(&plain), matched(&limited));
        let gauge = |rep: &json::Json, name: &str| {
            rep.get("metrics")
                .and_then(|m| m.get(name))
                .and_then(|g| g.get("value"))
                .and_then(json::Json::as_f64)
        };
        let doc = json::parse(&std::fs::read_to_string(&rpath).unwrap()).unwrap();
        assert!(gauge(&doc, "driver.batches").unwrap() > 1.0, "--mem-limit must force batching");
        let streamed = run(&args(&format!(
            "match --input {gpath} --devices 2 --mem-limit 50000 --stream --stream-window 2 \
             --verify --report-json {rpath}"
        )))
        .unwrap();
        // Streaming is billing-only: bit-identical matching either way.
        assert_eq!(matched(&plain), matched(&streamed));
        let doc = json::parse(&std::fs::read_to_string(&rpath).unwrap()).unwrap();
        assert_eq!(doc.get("schema_version").and_then(json::Json::as_f64), Some(5.0));
        assert!(gauge(&doc, "driver.batches").unwrap() > 1.0, "tight budget must band-slice");
        for name in
            ["mem.resident_bytes", "copy.prefetch_hidden_time", "copy.prefetch_exposed_time"]
        {
            assert!(gauge(&doc, name).is_some(), "{name} missing from streaming report");
        }
        assert!(gauge(&doc, "mem.resident_bytes").unwrap() <= 50000.0);
        // Streaming also rides through `ldgm profile`.
        let prof = run(&args(&format!(
            "profile --input {gpath} --algorithms ld-gpu --mem-limit 50000 --stream"
        )))
        .unwrap();
        assert!(prof.contains("ld-gpu"), "{prof}");
        assert!(!prof.contains("skipped:"), "{prof}");
        std::fs::remove_file(&gpath).ok();
        std::fs::remove_file(&rpath).ok();
    }

    #[test]
    fn streaming_flags_are_validated() {
        let gpath = tmp("ldgm_cli_streamval.mtx");
        run(&args(&format!("gen --vertices 80 --avg-degree 4 --seed 2 --out {gpath}"))).unwrap();
        let err = |cmd: String| run(&args(&cmd)).unwrap_err().0;
        assert!(err(format!("match --input {gpath} --mem-budget 4096")).contains("add --stream"));
        assert!(err(format!("match --input {gpath} --stream-window 4")).contains("add --stream"));
        assert!(err(format!("match --input {gpath} --stream --stream-window 1"))
            .contains("double-buffer minimum"));
        assert!(err(format!("match --input {gpath} --mem-limit 0")).contains("at least 1 byte"));
        assert!(err(format!("match --input {gpath} --stream --mem-budget junk"))
            .contains("bad --mem-budget"));
        // An impossible streaming budget surfaces the planner error.
        let e = err(format!("match --input {gpath} --stream --mem-budget 64"));
        assert!(e.contains("streaming window"), "{e}");
        std::fs::remove_file(&gpath).ok();
    }

    #[test]
    fn profile_all_skips_guarded_algorithms() {
        let gpath = tmp("ldgm_cli_profall.mtx");
        run(&args(&format!("gen --vertices 2500 --avg-degree 4 --seed 11 --out {gpath}"))).unwrap();
        let r = run(&args(&format!("profile --input {gpath} --algorithms all"))).unwrap();
        // Blossom exceeds its size guard: reported as skipped, not fatal.
        assert!(r.contains("blossom"));
        assert!(r.contains("skipped:"));
        assert!(r.contains("ld-gpu"));
        std::fs::remove_file(&gpath).ok();
    }
}

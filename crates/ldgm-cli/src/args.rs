//! Minimal dependency-free argument parsing: `--key value`, `--key=value`
//! and `--flag` options after a subcommand, plus extra positionals (used
//! by `ldgm help <command>`; everything else rejects them).

use std::collections::BTreeMap;

/// Parsed command line: a subcommand plus `--key value` options.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Args {
    /// First positional token.
    pub command: String,
    /// `--key value` / `--key=value` pairs (keys without the dashes).
    pub options: BTreeMap<String, String>,
    /// Bare `--flag` tokens.
    pub flags: Vec<String>,
    /// Positional tokens after the subcommand.
    pub positionals: Vec<String>,
}

/// Parsing failure with a user-facing message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArgError(pub String);

impl std::fmt::Display for ArgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parse a token stream (without the program name).
    pub fn parse<I: IntoIterator<Item = String>>(tokens: I) -> Result<Args, ArgError> {
        let mut it = tokens.into_iter().peekable();
        let command =
            it.next().ok_or_else(|| ArgError("missing subcommand; try `ldgm help`".into()))?;
        if command.starts_with('-') {
            return Err(ArgError(format!("expected a subcommand, got option '{command}'")));
        }
        let mut args = Args { command, ..Default::default() };
        while let Some(tok) = it.next() {
            let Some(key) = tok.strip_prefix("--") else {
                args.positionals.push(tok);
                continue;
            };
            if key.is_empty() {
                return Err(ArgError("empty option name '--'".into()));
            }
            // `--key=value` carries its value inline; otherwise a value
            // follows unless the next token is another option or the
            // stream ends.
            if let Some((k, v)) = key.split_once('=') {
                if k.is_empty() {
                    return Err(ArgError(format!("empty option name in '{tok}'")));
                }
                if args.options.insert(k.to_string(), v.to_string()).is_some() {
                    return Err(ArgError(format!("duplicate option '--{k}'")));
                }
                continue;
            }
            match it.peek() {
                Some(next) if !next.starts_with("--") => {
                    let value = it.next().unwrap();
                    if args.options.insert(key.to_string(), value).is_some() {
                        return Err(ArgError(format!("duplicate option '--{key}'")));
                    }
                }
                _ => args.flags.push(key.to_string()),
            }
        }
        Ok(args)
    }

    /// Fetch a string option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// Fetch a string option with a default.
    pub fn get_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.get(key).unwrap_or(default)
    }

    /// Fetch and parse a numeric option.
    pub fn get_num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => {
                v.parse().map_err(|_| ArgError(format!("option '--{key}' has invalid value '{v}'")))
            }
        }
    }

    /// Whether a bare flag was given.
    pub fn has_flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }

    /// Error if any option key is outside the allowed set (catches typos)
    /// or a stray positional was given.
    pub fn expect_known(&self, allowed: &[&str]) -> Result<(), ArgError> {
        if let Some(stray) = self.positionals.first() {
            return Err(ArgError(format!(
                "unexpected positional argument '{stray}' for '{}'",
                self.command
            )));
        }
        for key in self.options.keys().chain(self.flags.iter()) {
            if !allowed.contains(&key.as_str()) {
                return Err(ArgError(format!(
                    "unknown option '--{key}' for '{}' (allowed: {})",
                    self.command,
                    allowed.join(", ")
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_command_options_flags() {
        let a = Args::parse(toks("match --input g.mtx --devices 4 --verify")).unwrap();
        assert_eq!(a.command, "match");
        assert_eq!(a.get("input"), Some("g.mtx"));
        assert_eq!(a.get_num("devices", 1usize).unwrap(), 4);
        assert!(a.has_flag("verify"));
        assert!(!a.has_flag("quiet"));
    }

    #[test]
    fn rejects_missing_command_and_positional() {
        assert!(Args::parse(Vec::new()).is_err());
        assert!(Args::parse(toks("--input x")).is_err());
        // Positionals parse (`help <command>` needs them) but every
        // option-validated command rejects them.
        let a = Args::parse(toks("gen stray")).unwrap();
        assert_eq!(a.positionals, vec!["stray"]);
        assert!(a.expect_known(&["vertices"]).is_err());
    }

    #[test]
    fn rejects_duplicates_and_bad_numbers() {
        assert!(Args::parse(toks("gen --seed 1 --seed 2")).is_err());
        assert!(Args::parse(toks("gen --seed=1 --seed 2")).is_err());
        let a = Args::parse(toks("gen --vertices lots")).unwrap();
        assert!(a.get_num("vertices", 0usize).is_err());
    }

    #[test]
    fn equals_syntax() {
        let a = Args::parse(toks("match --input=g.mtx --devices=4 --verify")).unwrap();
        assert_eq!(a.get("input"), Some("g.mtx"));
        assert_eq!(a.get_num("devices", 1usize).unwrap(), 4);
        assert!(a.has_flag("verify"));
        // Values may themselves contain '=' (only the first splits).
        let a = Args::parse(toks("gen --out=a=b.mtx")).unwrap();
        assert_eq!(a.get("out"), Some("a=b.mtx"));
        assert!(Args::parse(toks("gen --=x")).is_err());
    }

    #[test]
    fn defaults_apply() {
        let a = Args::parse(toks("gen")).unwrap();
        assert_eq!(a.get_or("family", "rmat"), "rmat");
        assert_eq!(a.get_num("seed", 7u64).unwrap(), 7);
    }

    #[test]
    fn unknown_option_detection() {
        let a = Args::parse(toks("gen --vertices 10 --typo 3")).unwrap();
        assert!(a.expect_known(&["vertices", "seed"]).is_err());
        assert!(a.expect_known(&["vertices", "typo"]).is_ok());
    }

    #[test]
    fn trailing_flag_without_value() {
        let a = Args::parse(toks("stats --verify")).unwrap();
        assert!(a.has_flag("verify"));
    }
}

//! `ldgm` — command-line front end for the workspace. See
//! [`commands::HELP`] or run `ldgm help`.

use ldgm_cli::{args, commands};
use std::process::ExitCode;

fn main() -> ExitCode {
    let tokens: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match args::Args::parse(tokens) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", commands::HELP);
            return ExitCode::FAILURE;
        }
    };
    match commands::run(&parsed) {
        Ok(report) => {
            print!("{report}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

//! `ldgm` command-line front end, exposed as a library so integration
//! tests can drive the exact subcommand implementations the binary ships.

pub mod args;
pub mod commands;

//! Short-augmentation refinement toward a ⅔-approximation.
//!
//! The paper's concluding remarks point at "distributed matching schemes
//! targeting higher quality guarantees" as the next step; the classical
//! route is Pettie & Sanders' random-order short augmentations ("A simpler
//! linear time 2/3−ε approximation for maximum weight matching", IPL
//! 2004): starting from any matching, repeatedly apply the best
//! weight-increasing augmentation of length ≤ 3 centered at a free
//! vertex. Each pass costs O(m · d_avg) in the worst case and O(1/ε)
//! passes reach 2/3 − ε in expectation.
//!
//! Augmentations considered at a free vertex `v`:
//!
//! * **add** — `{v, u}` with `u` free: gain `w(v,u)`;
//! * **rotate** — `u` matched to `x`: drop `{u, x}`, add `{v, u}`:
//!   gain `w(v,u) − w(u,x)`;
//! * **path-3** — as rotate, plus re-match the released `x` to its best
//!   free neighbor `y ∉ {v, u}`: gain `w(v,u) − w(u,x) + w(x,y)`.
//!
//! Every applied augmentation strictly increases `w(M)`, so refinement
//! terminates and never degrades the input matching.

use crate::matching::Matching;
use ldgm_graph::csr::{CsrGraph, VertexId};
use ldgm_graph::rng::Xoshiro256;

/// Outcome of a refinement run.
#[derive(Clone, Debug)]
pub struct AugmentOutput {
    /// The refined matching.
    pub matching: Matching,
    /// Augmentations applied in total.
    pub augmentations: u64,
    /// Passes executed (may stop early when a pass applies nothing).
    pub passes: usize,
}

/// Refine `initial` with up to `max_passes` random-order passes of short
/// augmentations.
pub fn augment_short(
    g: &CsrGraph,
    initial: Matching,
    max_passes: usize,
    seed: u64,
) -> AugmentOutput {
    assert_eq!(initial.num_vertices(), g.num_vertices());
    let n = g.num_vertices();
    let mut m = initial;
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut order: Vec<VertexId> = (0..n as VertexId).collect();
    let mut total: u64 = 0;
    let mut passes = 0;

    for _ in 0..max_passes {
        passes += 1;
        rng.shuffle(&mut order);
        let mut applied: u64 = 0;
        for &v in &order {
            if m.is_matched(v) {
                continue;
            }
            if let Some(aug) = best_augmentation(g, &m, v) {
                apply(&mut m, aug);
                applied += 1;
            }
        }
        total += applied;
        if applied == 0 {
            break;
        }
    }
    debug_assert_eq!(m.verify(g), Ok(()));
    AugmentOutput { matching: m, augmentations: total, passes }
}

/// A short augmentation rooted at a free vertex `v`.
#[derive(Clone, Copy, Debug, PartialEq)]
struct Augmentation {
    /// The free root.
    v: VertexId,
    /// The neighbor `v` will match.
    u: VertexId,
    /// `u`'s current mate to drop (if any).
    drop: Option<VertexId>,
    /// Re-match of the dropped mate (if any).
    rematch: Option<(VertexId, VertexId)>,
    /// Strictly positive weight gain.
    gain: f64,
}

fn best_augmentation(g: &CsrGraph, m: &Matching, v: VertexId) -> Option<Augmentation> {
    debug_assert!(!m.is_matched(v));
    let mut best: Option<Augmentation> = None;
    for (u, w_vu) in g.edges_of(v) {
        match m.mate(u) {
            None => {
                let cand = Augmentation { v, u, drop: None, rematch: None, gain: w_vu };
                if best.as_ref().is_none_or(|b| cand.gain > b.gain) {
                    best = Some(cand);
                }
            }
            Some(x) => {
                let w_ux = g.edge_weight(u, x).expect("matched pair must be an edge");
                let base = w_vu - w_ux;
                // Rotation without re-match.
                if base > 1e-15 && best.as_ref().is_none_or(|b| base > b.gain) {
                    best = Some(Augmentation { v, u, drop: Some(x), rematch: None, gain: base });
                }
                // Path-3: re-match the released x to its best free
                // neighbor other than v (v is about to become matched)
                // and u (still matched).
                let mut best_y: Option<(VertexId, f64)> = None;
                for (y, w_xy) in g.edges_of(x) {
                    if y == v || y == u || m.is_matched(y) {
                        continue;
                    }
                    if best_y.is_none_or(|(_, bw)| w_xy > bw) {
                        best_y = Some((y, w_xy));
                    }
                }
                if let Some((y, w_xy)) = best_y {
                    let gain = base + w_xy;
                    if gain > 1e-15 && best.as_ref().is_none_or(|b| gain > b.gain) {
                        best =
                            Some(Augmentation { v, u, drop: Some(x), rematch: Some((x, y)), gain });
                    }
                }
            }
        }
    }
    best.filter(|b| b.gain > 1e-15)
}

fn apply(m: &mut Matching, aug: Augmentation) {
    if let Some(x) = aug.drop {
        m.unjoin(aug.u, x);
    }
    m.join(aug.v, aug.u);
    if let Some((x, y)) = aug.rematch {
        m.join(x, y);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blossom::blossom_mwm;
    use crate::ld_seq::ld_seq;
    use crate::verify::quality_ratio;
    use ldgm_graph::gen::urand;
    use ldgm_graph::GraphBuilder;

    #[test]
    fn recovers_the_classic_half_approx_trap() {
        // Path a-b-c-d, weights 1 / 1.5 / 1: greedy/LD take the middle
        // edge (1.5); the optimum takes the ends (2.0). A path-3
        // augmentation from a free endpoint fixes it.
        let g = GraphBuilder::new(4)
            .add_edge(0, 1, 1.0)
            .add_edge(1, 2, 1.5)
            .add_edge(2, 3, 1.0)
            .build();
        let ld = ld_seq(&g);
        assert_eq!(ld.weight(&g), 1.5);
        let out = augment_short(&g, ld, 4, 1);
        assert_eq!(out.matching.weight(&g), 2.0);
        assert!(out.augmentations >= 1);
        assert_eq!(out.matching.verify(&g), Ok(()));
    }

    #[test]
    fn never_decreases_weight() {
        for seed in 0..5 {
            let g = urand(300, 1800, seed);
            let ld = ld_seq(&g);
            let before = ld.weight(&g);
            let out = augment_short(&g, ld, 3, seed);
            assert!(out.matching.weight(&g) >= before - 1e-12, "seed {seed}");
            assert_eq!(out.matching.verify(&g), Ok(()));
        }
    }

    #[test]
    fn improves_toward_two_thirds_and_beyond() {
        let mut improved = 0;
        for seed in 0..8 {
            let g = urand(200, 1200, seed);
            let opt = blossom_mwm(&g, 1000.0).weight(&g);
            let ld = ld_seq(&g);
            let before = quality_ratio(ld.weight(&g), opt);
            let out = augment_short(&g, ld, 5, seed);
            let after = quality_ratio(out.matching.weight(&g), opt);
            assert!(after >= before - 1e-12);
            assert!(after >= 2.0 / 3.0 - 0.05, "seed {seed}: ratio {after}");
            if after > before + 1e-9 {
                improved += 1;
            }
        }
        assert!(improved >= 4, "augmentation should usually help ({improved}/8)");
    }

    #[test]
    fn empty_and_trivial_inputs() {
        let g = CsrGraph::empty(5);
        let out = augment_short(&g, Matching::new(5), 3, 0);
        assert_eq!(out.matching.cardinality(), 0);
        assert_eq!(out.augmentations, 0);

        let g1 = GraphBuilder::new(2).add_edge(0, 1, 1.0).build();
        let out = augment_short(&g1, Matching::new(2), 3, 0);
        assert_eq!(out.matching.cardinality(), 1, "add-augmentation from empty");
    }

    #[test]
    fn stops_early_when_converged() {
        let g = urand(100, 500, 9);
        let ld = ld_seq(&g);
        let out = augment_short(&g, ld, 100, 9);
        assert!(out.passes < 100, "must stop once a pass applies nothing");
    }
}

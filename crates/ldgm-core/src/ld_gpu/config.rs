//! LD-GPU run configuration and errors.

use ldgm_gpusim::Platform;

/// Configuration of an LD-GPU run.
#[derive(Clone, Debug)]
pub struct LdGpuConfig {
    /// Simulated platform (device model, interconnect, cost model, comm
    /// runtime).
    pub platform: Platform,
    /// Devices to use (clamped to `platform.max_devices`).
    pub devices: usize,
    /// Batches per device; `None` selects the minimum count whose
    /// double-buffered footprint fits device memory — the paper's default
    /// policy ("we attempt to minimize the number of batches").
    pub batches: Option<usize>,
    /// Vertices assigned to each warp in the pointing kernel; `None`
    /// derives it from the device's resident-warp capacity.
    pub vertices_per_warp: Option<usize>,
    /// Retire vertices whose neighborhoods are exhausted (LD-GPU behaviour;
    /// the cuGraph-style baseline disables this and rescans every vertex
    /// each iteration).
    pub retire_exhausted: bool,
    /// Multiplier on kernel compute cost (1.0 for LD-GPU; > 1 models less
    /// specialized kernels in framework baselines).
    pub kernel_overhead: f64,
    /// Record per-iteration profiling (Figs. 8/11). Cheap; on by default.
    pub collect_iterations: bool,
    /// Record a full event [`ldgm_gpusim::Trace`] (copies, kernels,
    /// collectives, syncs) for Gantt inspection. Off by default.
    pub collect_trace: bool,
    /// Optimized mode: scan neighbors through a preference-sorted
    /// adjacency index ([`ldgm_graph::SortedAdjacency`], built once per
    /// run) so SETPOINTERS early-exits at the first available neighbor.
    /// Off by default (the plain-`ld-gpu` paper-faithful full scan).
    pub sorted_index: bool,
    /// Optimized mode: after the first iteration, launch SETPOINTERS only
    /// over the cross-iteration frontier — vertices whose pointer target
    /// was matched away by the previous SETMATES. Off by default.
    pub frontier: bool,
    /// Optimized mode: replace the dense `8·|V|` pointer/mate allreduces
    /// with sparse delta collectives (~16 B per written entry). Off by
    /// default.
    pub sparse_collectives: bool,
    /// Overlap mode: skip the device barrier and run the collectives as
    /// chunked operations on a per-device comm stream — each batch's slice
    /// starts reducing when its kernel finishes, hiding wire time under
    /// the kernels of slower devices and next-iteration prefetches
    /// ([`ldgm_gpusim::SimRuntime::allreduce_chunked`]). Billing-only:
    /// kernel execution and the matching are untouched. Off by default.
    pub overlap: bool,
}

impl LdGpuConfig {
    /// Default configuration on `platform`: 1 device, auto batches.
    pub fn new(platform: Platform) -> Self {
        LdGpuConfig {
            platform,
            devices: 1,
            batches: None,
            vertices_per_warp: None,
            retire_exhausted: true,
            kernel_overhead: 1.0,
            collect_iterations: true,
            collect_trace: false,
            sorted_index: false,
            frontier: false,
            sparse_collectives: false,
            overlap: false,
        }
    }

    /// Enable every optimization layer (the `ld-gpu-opt` preset): sorted
    /// index + cross-iteration frontier + sparse collectives.
    pub fn optimized(self) -> Self {
        self.with_sorted_index(true).with_frontier(true).with_sparse_collectives(true)
    }

    /// Toggle the preference-sorted adjacency index (early-exit scans).
    pub fn with_sorted_index(mut self, on: bool) -> Self {
        self.sorted_index = on;
        self
    }

    /// Toggle the cross-iteration pointing frontier.
    pub fn with_frontier(mut self, on: bool) -> Self {
        self.frontier = on;
        self
    }

    /// Toggle sparse delta collectives.
    pub fn with_sparse_collectives(mut self, on: bool) -> Self {
        self.sparse_collectives = on;
        self
    }

    /// Toggle communication/computation overlap (chunked collectives on
    /// the comm stream, no device barrier).
    pub fn with_overlap(mut self, on: bool) -> Self {
        self.overlap = on;
        self
    }

    /// Whether any kernel-side optimization layer is enabled — when false,
    /// the driver takes the byte-identical default `ld-gpu` kernel path.
    /// `overlap` is deliberately excluded: it changes only how collectives
    /// are billed, never which kernel variant runs.
    pub fn is_optimized(&self) -> bool {
        self.sorted_index || self.frontier || self.sparse_collectives
    }

    /// Set the device count.
    pub fn devices(mut self, n: usize) -> Self {
        self.devices = n.max(1);
        self
    }

    /// Fix the batch count per device.
    pub fn batches(mut self, b: usize) -> Self {
        self.batches = Some(b.max(1));
        self
    }

    /// Fix the vertices-per-warp work distribution.
    pub fn vertices_per_warp(mut self, v: usize) -> Self {
        self.vertices_per_warp = Some(v.max(1));
        self
    }

    /// Disable per-iteration profiling.
    pub fn without_iteration_profile(mut self) -> Self {
        self.collect_iterations = false;
        self
    }

    /// Enable event-trace recording (Gantt timelines).
    pub fn with_trace(mut self) -> Self {
        self.collect_trace = true;
        self
    }
}

/// Errors from an LD-GPU run.
#[derive(Clone, Debug, PartialEq)]
pub enum LdGpuError {
    /// A device partition cannot fit in device memory at any batch count
    /// (the |V|-sized global arrays or a single hub vertex overflow).
    OutOfMemory {
        /// Offending device index.
        device: usize,
        /// Device memory in bytes.
        mem_bytes: u64,
    },
    /// An explicitly requested batch count does not fit in device memory.
    BatchPlanTooLarge {
        /// Offending device index.
        device: usize,
        /// Requested batches.
        batches: usize,
        /// Required bytes for the plan.
        required: u64,
        /// Device memory in bytes.
        mem_bytes: u64,
    },
}

impl std::fmt::Display for LdGpuError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LdGpuError::OutOfMemory { device, mem_bytes } => write!(
                f,
                "device {device}: partition cannot fit in {mem_bytes} B at any batch count"
            ),
            LdGpuError::BatchPlanTooLarge { device, batches, required, mem_bytes } => write!(
                f,
                "device {device}: {batches}-batch plan needs {required} B, has {mem_bytes} B"
            ),
        }
    }
}

impl std::error::Error for LdGpuError {}

//! LD-GPU run configuration and errors.

use ldgm_gpusim::Platform;

use crate::matcher::MatchError;

/// Configuration of an LD-GPU run.
#[derive(Clone, Debug)]
pub struct LdGpuConfig {
    /// Simulated platform (device model, interconnect, cost model, comm
    /// runtime).
    pub platform: Platform,
    /// Devices to use (clamped to `platform.max_devices`).
    pub devices: usize,
    /// Batches per device; `None` selects the minimum count whose
    /// double-buffered footprint fits device memory — the paper's default
    /// policy ("we attempt to minimize the number of batches").
    pub batches: Option<usize>,
    /// Vertices assigned to each warp in the pointing kernel; `None`
    /// derives it from the device's resident-warp capacity.
    pub vertices_per_warp: Option<usize>,
    /// Retire vertices whose neighborhoods are exhausted (LD-GPU behaviour;
    /// the cuGraph-style baseline disables this and rescans every vertex
    /// each iteration).
    pub retire_exhausted: bool,
    /// Multiplier on kernel compute cost (1.0 for LD-GPU; > 1 models less
    /// specialized kernels in framework baselines).
    pub kernel_overhead: f64,
    /// Record per-iteration profiling (Figs. 8/11). Cheap; on by default.
    pub collect_iterations: bool,
    /// Record a full event [`ldgm_gpusim::Trace`] (copies, kernels,
    /// collectives, syncs) for Gantt inspection. Off by default.
    pub collect_trace: bool,
    /// Optimized mode: scan neighbors through a preference-sorted
    /// adjacency index ([`ldgm_graph::SortedAdjacency`], built once per
    /// run) so SETPOINTERS early-exits at the first available neighbor.
    /// Off by default (the plain-`ld-gpu` paper-faithful full scan).
    pub sorted_index: bool,
    /// Optimized mode: after the first iteration, launch SETPOINTERS only
    /// over the cross-iteration frontier — vertices whose pointer target
    /// was matched away by the previous SETMATES. Off by default.
    pub frontier: bool,
    /// Optimized mode: replace the dense `8·|V|` pointer/mate allreduces
    /// with sparse delta collectives (~16 B per written entry). Off by
    /// default.
    pub sparse_collectives: bool,
    /// Overlap mode: skip the device barrier and run the collectives as
    /// chunked operations on a per-device comm stream — each batch's slice
    /// starts reducing when its kernel finishes, hiding wire time under
    /// the kernels of slower devices and next-iteration prefetches
    /// ([`ldgm_gpusim::SimRuntime::allreduce_chunked`]). Billing-only:
    /// kernel execution and the matching are untouched. Off by default.
    pub overlap: bool,
    /// Topology-aware placement: on a cluster platform, group the
    /// edge-balanced parts onto nodes so heavy cut edges stay on the
    /// fast intra-node link, and scale the inter-node stage of every
    /// collective by the partition's node-boundary fraction
    /// ([`ldgm_part::placement::NodePlacement::topology_aware`]).
    /// Billing-only: the matching is bit-identical under any placement.
    /// Ignored on single-node platforms. Off by default (conservative
    /// full-payload inter-node billing).
    pub topology_placement: bool,
    /// Stop after this many matching iterations, leaving the matching
    /// partial — the auto-tuner's probe mode, where a few iterations'
    /// simulated time ranks candidate configs without paying for full
    /// runs. `None` (the default) runs to termination.
    pub probe_iterations: Option<usize>,
    /// Out-of-core streaming mode: instead of double-buffered batches,
    /// stream each partition through fixed-width rank bands over the
    /// preference-sorted adjacency ([`ldgm_part::plan_substreams`]),
    /// keeping only a `stream_window`-band resident window per device
    /// while the copy stream prefetches the next band under the current
    /// kernel. Runs graphs whose batched footprint exceeds device
    /// memory; the matching is bit-identical to the resident paths.
    /// Off by default. When on, `batches` is ignored.
    pub streaming: bool,
    /// Per-device byte budget the streaming planner sizes its resident
    /// window against; `None` uses the platform's device memory.
    pub mem_budget: Option<u64>,
    /// Resident band slots per device in streaming mode (must be ≥ 2,
    /// the double-buffer minimum); `None` selects 2. Bands below the
    /// window stay resident across iterations for vertices still in the
    /// worklist, so steady-state rounds re-copy almost nothing.
    pub stream_window: Option<usize>,
}

impl LdGpuConfig {
    /// Start a named-method builder on `platform`. Unlike the raw struct
    /// (or the positional `with_*` chain), the builder validates the
    /// final combination: [`LdGpuConfigBuilder::build`] rejects nonsense
    /// like zero batches or the frontier without retirement instead of
    /// silently clamping.
    pub fn builder(platform: Platform) -> LdGpuConfigBuilder {
        LdGpuConfigBuilder { cfg: LdGpuConfig::new(platform) }
    }

    /// Default configuration on `platform`: 1 device, auto batches.
    pub fn new(platform: Platform) -> Self {
        LdGpuConfig {
            platform,
            devices: 1,
            batches: None,
            vertices_per_warp: None,
            retire_exhausted: true,
            kernel_overhead: 1.0,
            collect_iterations: true,
            collect_trace: false,
            sorted_index: false,
            frontier: false,
            sparse_collectives: false,
            overlap: false,
            topology_placement: false,
            probe_iterations: None,
            streaming: false,
            mem_budget: None,
            stream_window: None,
        }
    }

    /// Enable every optimization layer (the `ld-gpu-opt` preset): sorted
    /// index + cross-iteration frontier + sparse collectives.
    pub fn optimized(self) -> Self {
        self.with_sorted_index(true).with_frontier(true).with_sparse_collectives(true)
    }

    /// Toggle the preference-sorted adjacency index (early-exit scans).
    pub fn with_sorted_index(mut self, on: bool) -> Self {
        self.sorted_index = on;
        self
    }

    /// Toggle the cross-iteration pointing frontier.
    pub fn with_frontier(mut self, on: bool) -> Self {
        self.frontier = on;
        self
    }

    /// Toggle sparse delta collectives.
    pub fn with_sparse_collectives(mut self, on: bool) -> Self {
        self.sparse_collectives = on;
        self
    }

    /// Toggle communication/computation overlap (chunked collectives on
    /// the comm stream, no device barrier).
    pub fn with_overlap(mut self, on: bool) -> Self {
        self.overlap = on;
        self
    }

    /// Toggle topology-aware part→node placement (cluster platforms
    /// only; billing-layer, matching unchanged).
    pub fn with_topology_placement(mut self, on: bool) -> Self {
        self.topology_placement = on;
        self
    }

    /// Toggle the out-of-core streaming engine (substream-pipelined
    /// rank bands instead of double-buffered batches).
    pub fn with_streaming(mut self, on: bool) -> Self {
        self.streaming = on;
        self
    }

    /// Cap the per-device byte budget the streaming planner may use
    /// (clamped up to 1; `None`/unset uses the platform memory).
    pub fn with_mem_budget(mut self, bytes: u64) -> Self {
        self.mem_budget = Some(bytes.max(1));
        self
    }

    /// Fix the resident streaming window (clamped to ≥ 2 bands).
    pub fn with_stream_window(mut self, bands: usize) -> Self {
        self.stream_window = Some(bands.max(2));
        self
    }

    /// Whether any kernel-side optimization layer is enabled — when false,
    /// the driver takes the byte-identical default `ld-gpu` kernel path.
    /// `overlap` is deliberately excluded: it changes only how collectives
    /// are billed, never which kernel variant runs.
    pub fn is_optimized(&self) -> bool {
        self.sorted_index || self.frontier || self.sparse_collectives
    }

    /// Set the device count.
    pub fn devices(mut self, n: usize) -> Self {
        self.devices = n.max(1);
        self
    }

    /// Fix the batch count per device.
    pub fn batches(mut self, b: usize) -> Self {
        self.batches = Some(b.max(1));
        self
    }

    /// Fix the vertices-per-warp work distribution.
    pub fn vertices_per_warp(mut self, v: usize) -> Self {
        self.vertices_per_warp = Some(v.max(1));
        self
    }

    /// Disable per-iteration profiling.
    pub fn without_iteration_profile(mut self) -> Self {
        self.collect_iterations = false;
        self
    }

    /// Enable event-trace recording (Gantt timelines).
    pub fn with_trace(mut self) -> Self {
        self.collect_trace = true;
        self
    }
}

/// Named-method builder for [`LdGpuConfig`].
///
/// The config grew four orthogonal bool toggles (sorted/frontier/sparse/
/// overlap) that used to be set positionally through `with_*(bool)`
/// chains; the builder names each one, and [`build`](Self::build) runs
/// [`validate`](Self::validate) so impossible combinations surface as a
/// [`MatchError::InvalidConfig`] instead of a silent clamp or a deep
/// driver panic. The raw struct literal and the legacy `with_*` chain
/// keep working unchanged.
#[derive(Clone, Debug)]
pub struct LdGpuConfigBuilder {
    cfg: LdGpuConfig,
}

impl LdGpuConfigBuilder {
    /// Set the device count (validated: must be ≥ 1; counts beyond the
    /// platform fabric are clamped by the driver, as before).
    pub fn devices(mut self, n: usize) -> Self {
        self.cfg.devices = n;
        self
    }

    /// Fix the batch count per device (validated: must be ≥ 1).
    pub fn batches(mut self, b: usize) -> Self {
        self.cfg.batches = Some(b);
        self
    }

    /// Fix the vertices-per-warp work distribution (validated: ≥ 1).
    pub fn vertices_per_warp(mut self, v: usize) -> Self {
        self.cfg.vertices_per_warp = Some(v);
        self
    }

    /// Toggle the preference-sorted adjacency index (early-exit scans).
    pub fn sorted_index(mut self, on: bool) -> Self {
        self.cfg.sorted_index = on;
        self
    }

    /// Toggle the cross-iteration pointing frontier.
    pub fn frontier(mut self, on: bool) -> Self {
        self.cfg.frontier = on;
        self
    }

    /// Toggle sparse delta collectives.
    pub fn sparse_collectives(mut self, on: bool) -> Self {
        self.cfg.sparse_collectives = on;
        self
    }

    /// Toggle communication/computation overlap (chunked collectives on
    /// the comm stream).
    pub fn overlap(mut self, on: bool) -> Self {
        self.cfg.overlap = on;
        self
    }

    /// Toggle topology-aware part→node placement (cluster platforms
    /// only; billing-layer, matching unchanged).
    pub fn topology_placement(mut self, on: bool) -> Self {
        self.cfg.topology_placement = on;
        self
    }

    /// Enable every optimization layer (the `ld-gpu-opt` preset).
    pub fn optimized(self) -> Self {
        self.sorted_index(true).frontier(true).sparse_collectives(true)
    }

    /// Toggle exhausted-vertex retirement (off models framework
    /// baselines that rescan every vertex each iteration).
    pub fn retire_exhausted(mut self, on: bool) -> Self {
        self.cfg.retire_exhausted = on;
        self
    }

    /// Multiplier on kernel compute cost (validated: finite and > 0).
    pub fn kernel_overhead(mut self, factor: f64) -> Self {
        self.cfg.kernel_overhead = factor;
        self
    }

    /// Toggle per-iteration profiling records.
    pub fn collect_iterations(mut self, on: bool) -> Self {
        self.cfg.collect_iterations = on;
        self
    }

    /// Toggle event-trace recording (Gantt timelines).
    pub fn trace(mut self, on: bool) -> Self {
        self.cfg.collect_trace = on;
        self
    }

    /// Stop after `k` matching iterations (auto-tuner probe runs;
    /// validated: ≥ 1). The resulting matching is partial.
    pub fn probe_iterations(mut self, k: usize) -> Self {
        self.cfg.probe_iterations = Some(k);
        self
    }

    /// Toggle the out-of-core streaming engine (validated: `mem_budget`
    /// and `stream_window` require it).
    pub fn streaming(mut self, on: bool) -> Self {
        self.cfg.streaming = on;
        self
    }

    /// Cap the per-device streaming byte budget (validated: ≥ 1 and
    /// only meaningful with `streaming`).
    pub fn mem_budget(mut self, bytes: u64) -> Self {
        self.cfg.mem_budget = Some(bytes);
        self
    }

    /// Fix the resident streaming window in bands (validated: ≥ 2, the
    /// double-buffer minimum, and only meaningful with `streaming`).
    pub fn stream_window(mut self, bands: usize) -> Self {
        self.cfg.stream_window = Some(bands);
        self
    }

    /// Check the assembled combination without consuming the builder.
    pub fn validate(&self) -> Result<(), MatchError> {
        let c = &self.cfg;
        let bad = |msg: String| Err(MatchError::InvalidConfig(msg));
        if c.devices == 0 {
            return bad("devices must be >= 1".into());
        }
        if c.batches == Some(0) {
            return bad("batches must be >= 1 when fixed".into());
        }
        if c.vertices_per_warp == Some(0) {
            return bad("vertices_per_warp must be >= 1 when fixed".into());
        }
        if c.probe_iterations == Some(0) {
            return bad("probe_iterations must be >= 1 when set".into());
        }
        if !(c.kernel_overhead.is_finite() && c.kernel_overhead > 0.0) {
            return bad(format!(
                "kernel_overhead must be finite and > 0, got {}",
                c.kernel_overhead
            ));
        }
        if c.frontier && !c.retire_exhausted {
            return bad(
                "frontier requires retire_exhausted: the cross-iteration frontier is seeded \
                 from retirement bookkeeping, so a rescan-everything baseline cannot drive it"
                    .into(),
            );
        }
        if c.mem_budget == Some(0) {
            return bad("mem_budget must be >= 1 byte when set".into());
        }
        if let Some(w) = c.stream_window {
            if w < 2 {
                return bad(format!("stream_window must be >= 2 (double-buffer minimum), got {w}"));
            }
        }
        if !c.streaming && (c.mem_budget.is_some() || c.stream_window.is_some()) {
            return bad(
                "mem_budget/stream_window configure the streaming engine; enable streaming".into(),
            );
        }
        Ok(())
    }

    /// Validate and produce the config.
    pub fn build(self) -> Result<LdGpuConfig, MatchError> {
        self.validate()?;
        Ok(self.cfg)
    }
}

/// Errors from an LD-GPU run.
#[derive(Clone, Debug, PartialEq)]
pub enum LdGpuError {
    /// A device partition cannot fit in device memory at any batch count
    /// (the |V|-sized global arrays or a single hub vertex overflow).
    OutOfMemory {
        /// Offending device index.
        device: usize,
        /// Device memory in bytes.
        mem_bytes: u64,
    },
    /// An explicitly requested batch count does not fit in device memory.
    BatchPlanTooLarge {
        /// Offending device index.
        device: usize,
        /// Requested batches.
        batches: usize,
        /// Required bytes for the plan.
        required: u64,
        /// Device memory in bytes.
        mem_bytes: u64,
    },
    /// The streaming planner cannot fit even the narrowest substream
    /// window — global state plus `window` single-rank bands overflow
    /// the per-device budget.
    StreamPlanTooLarge {
        /// Offending device index.
        device: usize,
        /// Requested resident window in bands.
        window: usize,
        /// Minimum bytes the narrowest pipeline needs.
        required: u64,
        /// The budget that was available.
        mem_bytes: u64,
    },
}

impl std::fmt::Display for LdGpuError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LdGpuError::OutOfMemory { device, mem_bytes } => write!(
                f,
                "device {device}: partition cannot fit in {mem_bytes} B at any batch count"
            ),
            LdGpuError::BatchPlanTooLarge { device, batches, required, mem_bytes } => write!(
                f,
                "device {device}: {batches}-batch plan needs {required} B, has {mem_bytes} B"
            ),
            LdGpuError::StreamPlanTooLarge { device, window, required, mem_bytes } => write!(
                f,
                "device {device}: {window}-band streaming window needs {required} B, \
                 has {mem_bytes} B"
            ),
        }
    }
}

impl std::error::Error for LdGpuError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_matches_legacy_chain() {
        let p = Platform::dgx_a100;
        let built = LdGpuConfig::builder(p())
            .devices(4)
            .batches(3)
            .sorted_index(true)
            .frontier(true)
            .sparse_collectives(true)
            .overlap(true)
            .trace(true)
            .build()
            .unwrap();
        let legacy =
            LdGpuConfig::new(p()).devices(4).batches(3).optimized().with_overlap(true).with_trace();
        assert_eq!(built.devices, legacy.devices);
        assert_eq!(built.batches, legacy.batches);
        assert_eq!(built.sorted_index, legacy.sorted_index);
        assert_eq!(built.frontier, legacy.frontier);
        assert_eq!(built.sparse_collectives, legacy.sparse_collectives);
        assert_eq!(built.overlap, legacy.overlap);
        assert_eq!(built.collect_trace, legacy.collect_trace);
        // The `optimized()` preset exists on the builder too.
        let opt = LdGpuConfig::builder(p()).optimized().build().unwrap();
        assert!(opt.is_optimized() && opt.sorted_index && opt.frontier && opt.sparse_collectives);
    }

    #[test]
    fn builder_rejects_nonsense_combos() {
        let p = Platform::dgx_a100;
        let invalid = |b: LdGpuConfigBuilder| {
            let err = b.build().unwrap_err();
            assert!(
                matches!(err, MatchError::InvalidConfig(_)),
                "expected InvalidConfig, got {err:?}"
            );
            err.to_string()
        };
        assert!(invalid(LdGpuConfig::builder(p()).devices(0)).contains("devices"));
        assert!(invalid(LdGpuConfig::builder(p()).batches(0)).contains("batches"));
        assert!(
            invalid(LdGpuConfig::builder(p()).vertices_per_warp(0)).contains("vertices_per_warp")
        );
        assert!(invalid(LdGpuConfig::builder(p()).kernel_overhead(0.0)).contains("kernel_overhead"));
        assert!(invalid(LdGpuConfig::builder(p()).kernel_overhead(f64::NAN))
            .contains("kernel_overhead"));
        assert!(invalid(LdGpuConfig::builder(p()).frontier(true).retire_exhausted(false))
            .contains("retire_exhausted"));
        // validate() is non-consuming: a valid builder can be checked and
        // then built.
        let b = LdGpuConfig::builder(p()).devices(2).batches(5);
        b.validate().unwrap();
        assert_eq!(b.build().unwrap().batches, Some(5));
    }

    #[test]
    fn builder_validates_streaming_knobs() {
        let p = Platform::dgx_a100;
        let ok = LdGpuConfig::builder(p())
            .streaming(true)
            .mem_budget(1 << 20)
            .stream_window(4)
            .build()
            .unwrap();
        assert!(ok.streaming);
        assert_eq!(ok.mem_budget, Some(1 << 20));
        assert_eq!(ok.stream_window, Some(4));
        let msg = |b: LdGpuConfigBuilder| b.build().unwrap_err().to_string();
        assert!(msg(LdGpuConfig::builder(p()).streaming(true).stream_window(1))
            .contains("stream_window"));
        assert!(msg(LdGpuConfig::builder(p()).streaming(true).mem_budget(0)).contains("mem_budget"));
        assert!(msg(LdGpuConfig::builder(p()).stream_window(4)).contains("streaming"));
        assert!(msg(LdGpuConfig::builder(p()).mem_budget(1024)).contains("streaming"));
        // The legacy chain clamps rather than validating, like the other
        // positional setters.
        let legacy = LdGpuConfig::new(p()).with_streaming(true).with_stream_window(0);
        assert_eq!(legacy.stream_window, Some(2));
        assert_eq!(LdGpuConfig::new(p()).with_mem_budget(0).mem_budget, Some(1));
    }
}

//! Reusable per-run scratch arena for the LD driver and the hot kernels.
//!
//! The driver used to birth a handful of `Vec`s every iteration — the
//! per-device frontier worklists, the overlap-mode comm-chunk staging,
//! and (implicitly, via 8-byte mate gathers) the availability view each
//! pointing scan needs. [`Scratch`] owns all of that state for the
//! lifetime of a run — and across runs, for callers like the incremental
//! engine that stabilize many deltas back to back: buffers are cleared,
//! never dropped, so steady-state iterations allocate nothing on the
//! host.
//!
//! The **availability lane** is the third SoA lane the pointing kernels
//! scan (next to the CSR id and weight lanes): `avail[v] != 0` ⇔
//! `mate[v] == NONE_SENTINEL`, one byte gathered per availability probe
//! instead of an 8-byte mate word. It starts all-available,
//! [`set_mates`](super::set_mates) keeps it in sync as pairs commit, and
//! [`Scratch::sync_avail`] rebuilds it wholesale after external mate
//! edits (dynamic deltas, partial probes).

use ldgm_gpusim::{CommChunk, NONE_SENTINEL};
use ldgm_graph::csr::{CsrGraph, VertexId};

/// Reusable buffers threaded through the LD driver, the pointing/matching
/// kernels, and the incremental engine. Construction is the only
/// allocation site; every per-iteration use clears and refills.
#[derive(Clone, Debug, Default)]
pub struct Scratch {
    /// The SoA availability lane: `avail[v] != 0` ⇔ `v` is unmatched.
    pub(crate) avail: Vec<u8>,
    /// Per-device frontier worklists (ascending vertex ids inside the
    /// device's partition range), rebuilt in place each iteration.
    pub frontiers: Vec<Vec<VertexId>>,
    /// Per-device overlap staging: one `(payload_bytes, ready_time)`
    /// entry per batch whose collective slice became reducible.
    pub chunk_bufs: Vec<Vec<(u64, f64)>>,
    /// Flattened chunk list handed to the chunked allreduce.
    pub comm_staging: Vec<CommChunk>,
    /// Stabilization worklist of the current round (incremental engine).
    pub work: Vec<VertexId>,
    /// Stabilization worklist being built for the next round.
    pub next: Vec<VertexId>,
    /// Endpoints freed by delta edits, pending re-pointing.
    pub freed: Vec<VertexId>,
    /// Streaming residency lane: `resident[v] != 0` ⇔ `v`'s window bands
    /// are held on-device across iterations, so re-streaming them bills
    /// no copy bytes. Sized lazily by the streaming driver; empty
    /// otherwise.
    pub resident: Vec<u8>,
    /// Per-device streaming band worklist of the current band.
    pub band_work: Vec<Vec<VertexId>>,
    /// Per-device streaming band worklist being built for the next band.
    pub band_next: Vec<Vec<VertexId>>,
}

impl Scratch {
    /// Arena sized for `g`, all vertices available (mate all-`NONE`).
    pub fn for_graph(g: &CsrGraph) -> Self {
        Self::with_vertices(g.num_vertices())
    }

    /// Arena for `n` vertices, all available.
    pub fn with_vertices(n: usize) -> Self {
        Scratch { avail: vec![1; n], ..Default::default() }
    }

    /// Attach `ndev` per-device frontier/staging buffers.
    pub fn with_devices(mut self, ndev: usize) -> Self {
        self.frontiers = vec![Vec::new(); ndev];
        self.chunk_bufs = vec![Vec::new(); ndev];
        self.band_work = vec![Vec::new(); ndev];
        self.band_next = vec![Vec::new(); ndev];
        self
    }

    /// The availability lane, for kernel launches.
    #[inline]
    pub fn avail(&self) -> &[u8] {
        &self.avail
    }

    /// Mutable availability lane, for kernels that commit matches.
    #[inline]
    pub fn avail_mut(&mut self) -> &mut [u8] {
        &mut self.avail
    }

    /// Rebuild the availability lane from a mate array (resizing to it),
    /// after edits the kernels did not see — delta application in the
    /// incremental engine, or a fresh run over a dirty arena.
    pub fn sync_avail(&mut self, mate: &[u64]) {
        self.avail.resize(mate.len(), 0);
        for (a, &m) in self.avail.iter_mut().zip(mate) {
            *a = (m == NONE_SENTINEL) as u8;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_all_available_and_resyncs() {
        let mut s = Scratch::with_vertices(4);
        assert_eq!(s.avail(), &[1, 1, 1, 1]);
        let mate = [NONE_SENTINEL, 2, 1, NONE_SENTINEL];
        s.sync_avail(&mate);
        assert_eq!(s.avail(), &[1, 0, 0, 1]);
        // Resync resizes when the vertex count changes.
        s.sync_avail(&[NONE_SENTINEL; 6]);
        assert_eq!(s.avail().len(), 6);
        assert!(s.avail().iter().all(|&a| a == 1));
    }

    #[test]
    fn device_buffers_are_sized() {
        let s = Scratch::with_vertices(8).with_devices(3);
        assert_eq!(s.frontiers.len(), 3);
        assert_eq!(s.chunk_bufs.len(), 3);
        assert_eq!(s.band_work.len(), 3);
        assert_eq!(s.band_next.len(), 3);
        // The residency lane is lazy: only streaming runs size it.
        assert!(s.resident.is_empty());
    }
}

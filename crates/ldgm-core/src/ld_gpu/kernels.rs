//! The LD-GPU kernels (Algorithm 3), executed for real on host threads.
//!
//! SETPOINTERS is warp-centric: contiguous groups of `vertices_per_warp`
//! batch vertices are assigned to warps; the warp's threads sweep each
//! vertex's adjacency in 32-wide waves, reducing the heaviest *available*
//! edge first per thread and then across the warp via shuffle reduction.
//! SETMATES is thread-per-vertex: a mutual-pointer check against the
//! globally reduced pointer array.
//!
//! Host execution is structure-of-arrays throughout: a warp's vertex
//! range maps to one contiguous slice of the CSR id and weight lanes
//! (walked with a running cursor, no per-vertex offset slicing), and
//! availability probes gather one byte from the
//! [`Scratch`](super::Scratch) availability lane instead of an 8-byte
//! mate word. The full-scan argmax is the branch-light packed-key
//! maximum of [`ldgm_graph::soa::scan_best`] — exact, because positive
//! finite weight bits are order-isomorphic to their values and the
//! complemented id breaks ties toward the smaller id, mirroring the
//! canonical [`prefer`](crate::matching::prefer) order. Warps are grouped
//! into fixed-size super-chunks per parallel task so host scheduling cost
//! is amortized over thousands of vertices; the per-warp statistics are
//! accumulated warp by warp either way, so every [`KernelStats`] field is
//! identical to a warp-per-task launch.
//!
//! All *billed* memory traffic still follows the simulated device model —
//! the real GPU kernel gathers 8-byte mate words and streams full 32-wide
//! waves — so the cost model is unchanged by how the host computes the
//! same result.

use rayon::prelude::*;

use ldgm_gpusim::{KernelStats, NONE_SENTINEL};
use ldgm_graph::csr::{CsrGraph, VertexId, Weight};
use ldgm_graph::stream::BandLayout;
use ldgm_graph::{soa, SortedAdjacency};
use ldgm_part::VertexRange;

/// Vertices covered by one parallel pointing task: warps are grouped into
/// super-chunks of about this many vertices, so per-task overhead (the
/// thread-pool round trip and the per-chunk bookkeeping the host-side
/// rayon combinators materialize) amortizes over thousands of scans. A
/// fixed constant keeps the warp→task grouping — and therefore the f64
/// `warp_edges_sumsq` accumulation order — machine-independent.
const TASK_VERTICES: usize = 4096;

/// Result of a SETPOINTERS launch over one batch.
#[derive(Clone, Copy, Debug, Default)]
pub struct PointingResult {
    /// Launch statistics for the cost model.
    pub stats: KernelStats,
    /// Vertices that set a (non-sentinel) pointer.
    pub pointers_set: u64,
    /// Vertices retired this launch (neighborhood exhausted).
    pub vertices_retired: u64,
    /// Edge slots skipped by the sorted-index early exit, relative to a
    /// full adjacency scan (0 for the default kernel).
    pub edges_skipped: u64,
}

impl PointingResult {
    /// Fold another launch's result into this one.
    pub fn merge(&mut self, other: &PointingResult) {
        self.stats.merge(&other.stats);
        self.pointers_set += other.pointers_set;
        self.vertices_retired += other.vertices_retired;
        self.edges_skipped += other.edges_skipped;
    }
}

/// Vertices an optimized SETPOINTERS launch covers.
#[derive(Clone, Copy, Debug)]
pub enum PointingWork<'a> {
    /// Every vertex of the batch range (first iteration, or frontier
    /// tracking disabled).
    Full,
    /// A frontier worklist: absolute vertex ids in ascending order, all
    /// inside the batch range.
    Worklist(&'a [VertexId]),
}

/// SETPOINTERS over the batch `[batch.start, batch.end)`.
///
/// * `avail` — the SoA availability lane (`avail[v] != 0` ⇔ `v`
///   unmatched), read-only; the caller keeps it in sync with the mate
///   array ([`Scratch`](super::Scratch));
/// * `pointers_batch` — the batch's slice of the pointer array
///   (`pointers[batch.start..batch.end]`), written disjointly;
/// * `retired_batch` — the batch's slice of the retirement flags; a vertex
///   with no available neighbor can never match and is skipped in later
///   iterations (LD-SEQ's "remove from G") when `retire` is on.
pub fn set_pointers_batch(
    g: &CsrGraph,
    batch: &VertexRange,
    avail: &[u8],
    pointers_batch: &mut [u64],
    retired_batch: &mut [u8],
    vertices_per_warp: usize,
    retire: bool,
) -> PointingResult {
    point_full(g, None, batch, avail, pointers_batch, retired_batch, vertices_per_warp, retire)
}

/// The shared full-range launch: every batch vertex, warps grouped into
/// [`TASK_VERTICES`]-sized parallel tasks, per-warp stats preserved.
#[allow(clippy::too_many_arguments)]
fn point_full(
    g: &CsrGraph,
    sorted: Option<&SortedAdjacency>,
    batch: &VertexRange,
    avail: &[u8],
    pointers_batch: &mut [u64],
    retired_batch: &mut [u8],
    vertices_per_warp: usize,
    retire: bool,
) -> PointingResult {
    let nv = batch.num_vertices();
    debug_assert_eq!(pointers_batch.len(), nv);
    debug_assert_eq!(retired_batch.len(), nv);
    if nv == 0 {
        return PointingResult::default();
    }
    let base = batch.start;
    let vpw = vertices_per_warp.max(1);
    // The scan lanes: the base CSR arrays, or the preference-sorted
    // permutation (same offsets, early-exit semantics).
    let lanes: (&[VertexId], &[Weight]) = match sorted {
        Some(idx) => (idx.adjacency(), idx.weight_array()),
        None => (g.adjacency(), g.weight_array()),
    };
    let span = TASK_VERTICES.div_ceil(vpw).max(1) * vpw;

    pointers_batch
        .par_chunks_mut(span)
        .zip(retired_batch.par_chunks_mut(span))
        .enumerate()
        .map(|(t, (ptr_task, ret_task))| {
            let mut out = PointingResult::default();
            let task_first = base + (t * span) as VertexId;
            for (wi, (ptr_chunk, ret_chunk)) in
                ptr_task.chunks_mut(vpw).zip(ret_task.chunks_mut(vpw)).enumerate()
            {
                let first = task_first + (wi * vpw) as VertexId;
                out.merge(&point_warp(
                    g,
                    lanes,
                    sorted.is_some(),
                    first,
                    ptr_chunk,
                    ret_chunk,
                    avail,
                    retire,
                ));
            }
            out
        })
        .reduce(PointingResult::default, |mut a, b| {
            a.merge(&b);
            a
        })
}

/// One warp's launch over the contiguous vertices
/// `[first, first + ptr_chunk.len())`: a single slice of the id/weight
/// lanes covers the whole warp, and a running cursor replaces per-vertex
/// offset slicing. Closes out the warp's [`KernelStats`].
#[allow(clippy::too_many_arguments)]
fn point_warp(
    g: &CsrGraph,
    lanes: (&[VertexId], &[Weight]),
    sorted: bool,
    first: VertexId,
    ptr_chunk: &mut [u64],
    ret_chunk: &mut [u8],
    avail: &[u8],
    retire: bool,
) -> PointingResult {
    let len = ptr_chunk.len();
    let offsets = g.offsets();
    let edge_lo = offsets[first as usize] as usize;
    let edge_hi = offsets[first as usize + len] as usize;
    let ids = &lanes.0[edge_lo..edge_hi];
    let ws = &lanes.1[edge_lo..edge_hi];

    let mut r = PointingResult {
        stats: KernelStats { warps_launched: 1, vertices: len as u64, ..Default::default() },
        ..Default::default()
    };
    let mut warp_edges: u64 = 0;
    let mut warp_waves: u64 = 0;
    let mut processed: u64 = 0;
    let mut cur = 0usize;
    for (i, ptr) in ptr_chunk.iter_mut().enumerate() {
        let u = first + i as VertexId;
        let deg = (offsets[u as usize + 1] - offsets[u as usize]) as usize;
        let at = cur;
        cur += deg; // advance past skipped vertices too
        if avail[u as usize] == 0 || ret_chunk[i] != 0 {
            continue; // matched or retired: early exit
        }
        processed += 1;
        let nbrs = &ids[at..at + deg];
        let (best, scanned, waves, skipped) = if sorted {
            scan_sorted_slice(nbrs, avail)
        } else {
            let k = soa::scan_best(nbrs, &ws[at..at + deg], avail);
            let best = if k == soa::NO_KEY { VertexId::MAX } else { soa::key_id(k) };
            (best, deg as u64, soa::waves(deg as u64), 0)
        };
        warp_edges += scanned;
        warp_waves += waves;
        r.edges_skipped += skipped;
        if best != VertexId::MAX {
            *ptr = best as u64;
            r.pointers_set += 1;
        } else {
            *ptr = NONE_SENTINEL;
            if retire {
                ret_chunk[i] = 1;
                r.vertices_retired += 1;
            }
        }
    }
    fill_warp_stats(&mut r.stats, processed, warp_edges, warp_waves, 0);
    r
}

/// Early-exit scan of one preference-sorted lane slice: the first
/// available neighbor is the argmax; the warp finishes the 32-wide wave
/// the hit landed in. Returns `(target, edges_scanned, waves,
/// edges_skipped)`; `target` is `VertexId::MAX` when nothing is
/// available.
#[inline]
fn scan_sorted_slice(nbrs: &[VertexId], avail: &[u8]) -> (VertexId, u64, u64, u64) {
    let deg = nbrs.len() as u64;
    match soa::first_available(nbrs, avail) {
        Some(pos) => {
            let waves = (pos as u64 + 1).div_ceil(32);
            let scanned = deg.min(waves * 32);
            (nbrs[pos], scanned, waves, deg - scanned)
        }
        None => (VertexId::MAX, deg, soa::waves(deg), 0),
    }
}

/// Pick vertex `u`'s pointer target and account the scan (worklist
/// launches, where vertices are not contiguous).
///
/// With a sorted index the list is in (weight desc, id asc) order — the
/// canonical [`prefer`](crate::matching::prefer) order — so the first
/// available neighbor *is* the argmax, and the warp stops after the
/// 32-wide wave that contained it. Without one this is the default
/// full-scan packed-key argmax. Returns `(target, edges_scanned, waves,
/// edges_skipped)`; `target` is `VertexId::MAX` when no neighbor is
/// available.
#[inline]
fn scan_best(
    g: &CsrGraph,
    sorted: Option<&SortedAdjacency>,
    avail: &[u8],
    u: VertexId,
) -> (VertexId, u64, u64, u64) {
    match sorted {
        Some(idx) => scan_sorted_slice(idx.neighbors(g, u), avail),
        None => {
            let nbrs = g.neighbors(u);
            let deg = nbrs.len() as u64;
            let k = soa::scan_best(nbrs, g.neighbor_weights(u), avail);
            let best = if k == soa::NO_KEY { VertexId::MAX } else { soa::key_id(k) };
            (best, deg, soa::waves(deg), 0)
        }
    }
}

/// Optimized SETPOINTERS: [`set_pointers_batch`] with an optional
/// preference-sorted index (early-exit scans) and an optional frontier
/// worklist (compacted launch over re-pointing vertices only).
///
/// Selection is bit-identical to the default kernel: the sorted order
/// mirrors [`prefer`](crate::matching::prefer), and a worklist launch
/// only skips vertices whose pointers are still valid (their targets are
/// unmatched, so a rescan would rewrite the same value). Only the billed
/// work changes: `Worklist` launches count one warp per
/// `vertices_per_warp` worklist entries plus a 4 B worklist read per
/// vertex, and the early exit reduces `edge_waves`/`edges_scanned`.
#[allow(clippy::too_many_arguments)]
pub fn set_pointers_opt(
    g: &CsrGraph,
    sorted: Option<&SortedAdjacency>,
    batch: &VertexRange,
    work: PointingWork<'_>,
    avail: &[u8],
    pointers_batch: &mut [u64],
    retired_batch: &mut [u8],
    vertices_per_warp: usize,
    retire: bool,
) -> PointingResult {
    let nv = batch.num_vertices();
    debug_assert_eq!(pointers_batch.len(), nv);
    debug_assert_eq!(retired_batch.len(), nv);
    let base = batch.start;
    let vpw = vertices_per_warp.max(1);

    match work {
        PointingWork::Full => {
            point_full(g, sorted, batch, avail, pointers_batch, retired_batch, vpw, retire)
        }
        PointingWork::Worklist(worklist) => {
            let mut out = PointingResult::default();
            // Frontier launches are small; warp groups are processed
            // sequentially per device (devices parallelize above).
            for chunk in worklist.chunks(vpw) {
                let mut stats = KernelStats { warps_launched: 1, ..Default::default() };
                let mut warp_edges: u64 = 0;
                let mut warp_waves: u64 = 0;
                let mut processed: u64 = 0;
                let mut r = PointingResult::default();
                for &u in chunk {
                    debug_assert!(batch.start <= u && u < batch.end, "worklist outside batch");
                    let i = (u - base) as usize;
                    stats.vertices += 1;
                    if avail[u as usize] == 0 || retired_batch[i] != 0 {
                        continue;
                    }
                    processed += 1;
                    let (best, scanned, waves, skipped) = scan_best(g, sorted, avail, u);
                    warp_edges += scanned;
                    warp_waves += waves;
                    r.edges_skipped += skipped;
                    if best != VertexId::MAX {
                        pointers_batch[i] = best as u64;
                        r.pointers_set += 1;
                    } else {
                        pointers_batch[i] = NONE_SENTINEL;
                        if retire {
                            retired_batch[i] = 1;
                            r.vertices_retired += 1;
                        }
                    }
                }
                // 4 extra bytes per vertex: the worklist read.
                fill_warp_stats(&mut stats, processed, warp_edges, warp_waves, 4);
                r.stats = stats;
                out.merge(&r);
            }
            out
        }
    }
}

/// Banded SETPOINTERS of the out-of-core streaming engine: scan only
/// rank band `band` of each worklist vertex's preference-sorted list.
///
/// Bands partition the sorted order, so the first available hit across
/// bands 0, 1, 2, … is exactly the argmax a resident full scan would
/// select — a vertex that hits in this band sets its pointer and leaves
/// the worklist; a vertex whose list *ends* inside this band without a
/// hit is exhausted (pointer `NONE`, retired when `retire` is on); every
/// other miss is appended to `next` for the following band. Billing
/// follows the worklist kernel: one warp per `vertices_per_warp`
/// entries, a 4 B worklist read per vertex, early exit at the wave
/// containing the hit, and `edges_skipped` counts every slot a full
/// scan would have read but no band kernel will (later waves of this
/// band plus all later bands).
#[allow(clippy::too_many_arguments)]
pub fn set_pointers_band(
    g: &CsrGraph,
    sorted: &SortedAdjacency,
    layout: &BandLayout,
    band: usize,
    work: &[VertexId],
    next: &mut Vec<VertexId>,
    avail: &[u8],
    pointers_part: &mut [u64],
    retired_part: &mut [u8],
    part_start: VertexId,
    vertices_per_warp: usize,
    retire: bool,
) -> PointingResult {
    let vpw = vertices_per_warp.max(1);
    let mut out = PointingResult::default();
    // Band launches are worklist launches: warp groups are processed
    // sequentially per device (devices parallelize above).
    for chunk in work.chunks(vpw) {
        let mut stats = KernelStats { warps_launched: 1, ..Default::default() };
        let mut warp_edges: u64 = 0;
        let mut warp_waves: u64 = 0;
        let mut processed: u64 = 0;
        let mut r = PointingResult::default();
        for &u in chunk {
            let i = (u - part_start) as usize;
            stats.vertices += 1;
            if avail[u as usize] == 0 || retired_part[i] != 0 {
                continue;
            }
            processed += 1;
            let (nbrs, _) = layout.band_slice(g, sorted, u, band);
            match soa::first_available(nbrs, avail) {
                Some(pos) => {
                    let waves = (pos as u64 + 1).div_ceil(32);
                    let scanned = (nbrs.len() as u64).min(waves * 32);
                    warp_edges += scanned;
                    warp_waves += waves;
                    // Everything a full scan would still have read: the
                    // tail of this band plus every later band.
                    let deg = g.degree(u) as u64;
                    r.edges_skipped += deg - (band * layout.width()) as u64 - scanned;
                    pointers_part[i] = nbrs[pos] as u64;
                    r.pointers_set += 1;
                }
                None => {
                    warp_edges += nbrs.len() as u64;
                    warp_waves += soa::waves(nbrs.len() as u64);
                    if layout.is_last_band(g, u, band) {
                        pointers_part[i] = NONE_SENTINEL;
                        if retire {
                            retired_part[i] = 1;
                            r.vertices_retired += 1;
                        }
                    } else {
                        next.push(u);
                    }
                }
            }
        }
        // 4 extra bytes per vertex: the worklist read.
        fill_warp_stats(&mut stats, processed, warp_edges, warp_waves, 4);
        r.stats = stats;
        out.merge(&r);
    }
    out
}

/// Close out one warp's [`KernelStats`] with the shared byte/wave model
/// of the pointing kernels (`extra_read_per_vertex` covers worklist
/// reads of compacted launches).
fn fill_warp_stats(
    stats: &mut KernelStats,
    processed: u64,
    warp_edges: u64,
    warp_waves: u64,
    extra_read_per_vertex: u64,
) {
    stats.vertices_processed = processed;
    stats.edges_scanned = warp_edges;
    stats.edge_waves = warp_waves;
    stats.warps_active = (processed > 0) as u64;
    stats.max_warp_waves = warp_waves;
    stats.max_warp_vertices = processed;
    stats.warp_edges_sumsq = (warp_edges as f64) * (warp_edges as f64);
    // Bytes at transaction granularity: CSR offsets (16 B per vertex),
    // adjacency id + weight streamed in full 32-wide waves (a warp load
    // fetches whole lines even for short lists), and one 32 B sector per
    // mate gather (uncoalesced indirect access); one pointer write per
    // processed vertex.
    stats.bytes_read = stats.vertices * (8 + extra_read_per_vertex)
        + processed * 16
        + warp_waves * 32 * (8 + 8)
        + warp_edges * 32;
    stats.bytes_written = processed * 8;
}

/// SETMATES over the full vertex set: commit mutually pointing pairs,
/// writing the mate array and clearing the availability lane for every
/// newly matched vertex (the lane stays in lock-step with the mate array
/// without a separate sweep). Returns launch statistics and the number
/// of newly matched *edges*.
pub fn set_mates(pointers: &[u64], mate: &mut [u64], avail: &mut [u8]) -> (KernelStats, u64) {
    let n = mate.len();
    debug_assert_eq!(avail.len(), n);
    let pointers = &pointers[..n];
    let last = n.saturating_sub(1);
    const CHUNK: usize = 1 << 15;
    let newly: u64 = mate
        .par_chunks_mut(CHUNK)
        .zip(avail.par_chunks_mut(CHUNK))
        .enumerate()
        .map(|(c, (mchunk, achunk))| {
            let base = c * CHUNK;
            let own = &pointers[base..base + mchunk.len()];
            let mut newly = 0u64;
            for (u, ((m, a), &p)) in
                (base as u64..).zip(mchunk.iter_mut().zip(achunk.iter_mut()).zip(own))
            {
                // The clamped gather keeps the indirect load in bounds
                // without a branch; the sentinel compare rejects the
                // clamped case before the result is used.
                if *m == NONE_SENTINEL
                    && p != NONE_SENTINEL
                    && pointers[(p as usize).min(last)] == u
                {
                    *m = p;
                    *a = 0;
                    newly += 1;
                }
            }
            newly
        })
        .sum();
    debug_assert_eq!(newly % 2, 0, "mutual pairs must come in twos");
    let warps = (n as u64).div_ceil(32);
    let stats = KernelStats {
        vertices: n as u64,
        vertices_processed: n as u64,
        warps_launched: warps,
        warps_active: warps,
        // Mutual check: own pointer (coalesced 8 B) + indirect pointer
        // gather (32 B sector); write on match.
        bytes_read: n as u64 * (8 + 32),
        bytes_written: newly * 8,
        max_warp_vertices: 32,
        ..Default::default()
    };
    (stats, newly / 2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldgm_graph::GraphBuilder;
    use ldgm_part::Partition;

    fn whole(g: &CsrGraph) -> VertexRange {
        Partition::edge_balanced(g, 1).parts[0]
    }

    /// The availability lane a mate array implies.
    fn avail_of(mate: &[u64]) -> Vec<u8> {
        mate.iter().map(|&m| (m == NONE_SENTINEL) as u8).collect()
    }

    #[test]
    fn pointing_selects_heaviest_available() {
        let g = GraphBuilder::new(4)
            .add_edge(0, 1, 1.0)
            .add_edge(0, 2, 5.0)
            .add_edge(0, 3, 3.0)
            .build();
        let mut pointers = vec![NONE_SENTINEL; 4];
        let mut retired = vec![0u8; 4];
        let avail = vec![1u8; 4];
        let r = set_pointers_batch(&g, &whole(&g), &avail, &mut pointers, &mut retired, 2, true);
        assert_eq!(pointers[0], 2);
        assert_eq!(pointers[2], 0);
        assert_eq!(r.pointers_set, 4);
        assert_eq!(r.stats.edges_scanned, 6);
    }

    #[test]
    fn pointing_skips_matched_neighbors() {
        let g = GraphBuilder::new(3).add_edge(0, 1, 5.0).add_edge(0, 2, 1.0).build();
        let mut pointers = vec![NONE_SENTINEL; 3];
        let mut retired = vec![0u8; 3];
        let mut mate = vec![NONE_SENTINEL; 3];
        mate[1] = 99; // pretend 1 is matched elsewhere
        let avail = avail_of(&mate);
        let r = set_pointers_batch(&g, &whole(&g), &avail, &mut pointers, &mut retired, 1, true);
        assert_eq!(pointers[0], 2, "must skip matched vertex 1");
        // Vertex 1 is matched: early exit, no scan.
        assert_eq!(r.stats.edges_scanned, 2 + 1); // deg(0) + deg(2)
    }

    #[test]
    fn exhausted_vertices_retire() {
        let g = GraphBuilder::new(3).add_edge(0, 1, 1.0).add_edge(1, 2, 2.0).build();
        let mut pointers = vec![NONE_SENTINEL; 3];
        let mut retired = vec![0u8; 3];
        let mut mate = vec![NONE_SENTINEL; 3];
        mate[1] = 2;
        mate[2] = 1;
        let avail = avail_of(&mate);
        let r = set_pointers_batch(&g, &whole(&g), &avail, &mut pointers, &mut retired, 1, true);
        // Vertex 0's only neighbor is matched: retired.
        assert_eq!(retired[0], 1);
        assert_eq!(pointers[0], NONE_SENTINEL);
        assert_eq!(r.pointers_set, 0);
        assert_eq!(r.vertices_retired, 1);
    }

    #[test]
    fn retire_flag_off_keeps_rescanning() {
        let g = GraphBuilder::new(2).add_edge(0, 1, 1.0).build();
        let mut pointers = vec![NONE_SENTINEL; 2];
        let mut retired = vec![0u8; 2];
        let mut mate = vec![NONE_SENTINEL; 2];
        mate[0] = NONE_SENTINEL;
        mate[1] = 99;
        let avail = avail_of(&mate);
        let _ = set_pointers_batch(&g, &whole(&g), &avail, &mut pointers, &mut retired, 1, false);
        assert_eq!(retired[0], 0, "no retirement when disabled");
    }

    #[test]
    fn warp_stats_reflect_grouping() {
        let g = GraphBuilder::new(6)
            .add_edge(0, 1, 1.0)
            .add_edge(2, 3, 1.0)
            .add_edge(4, 5, 1.0)
            .build();
        let avail = vec![1u8; 6];
        let mut pointers = vec![NONE_SENTINEL; 6];
        let mut retired = vec![0u8; 6];
        let r = set_pointers_batch(&g, &whole(&g), &avail, &mut pointers, &mut retired, 2, true);
        assert_eq!(r.stats.warps_launched, 3);
        assert_eq!(r.stats.warps_active, 3);
        assert_eq!(r.stats.vertices, 6);
    }

    #[test]
    fn super_chunked_stats_match_a_small_vpw_launch() {
        // More vertices than one TASK_VERTICES super-chunk: the grouped
        // launch must report exactly the per-warp stats a warp-per-task
        // launch would (warp count, byte model, wave maxima).
        let g = ldgm_graph::gen::urand(3 * TASK_VERTICES, 6 * TASK_VERTICES, 3);
        let avail = vec![1u8; g.num_vertices()];
        let mut pointers = vec![NONE_SENTINEL; g.num_vertices()];
        let mut retired = vec![0u8; g.num_vertices()];
        let vpw = 7; // does not divide TASK_VERTICES: exercises rounding
        let r = set_pointers_batch(&g, &whole(&g), &avail, &mut pointers, &mut retired, vpw, true);
        assert_eq!(r.stats.warps_launched, g.num_vertices().div_ceil(vpw) as u64);
        assert_eq!(r.stats.vertices, g.num_vertices() as u64);
        assert_eq!(r.stats.edges_scanned, g.num_directed_edges() as u64);
    }

    #[test]
    fn set_mates_commits_mutual_pairs_only() {
        let mut mate = vec![NONE_SENTINEL; 4];
        let mut avail = vec![1u8; 4];
        // 0<->1 mutual; 2 -> 3 one-way.
        let pointers = vec![1, 0, 3, 1];
        let (stats, newly) = set_mates(&pointers, &mut mate, &mut avail);
        assert_eq!(newly, 1);
        assert_eq!(mate[0], 1);
        assert_eq!(mate[1], 0);
        assert_eq!(mate[2], NONE_SENTINEL);
        assert_eq!(avail, vec![0, 0, 1, 1], "lane cleared for the committed pair only");
        assert_eq!(stats.vertices, 4);
    }

    #[test]
    fn set_mates_ignores_already_matched() {
        let mut mate = vec![NONE_SENTINEL; 2];
        mate[0] = 1;
        mate[1] = 0;
        let mut avail = avail_of(&mate);
        let pointers = vec![1, 0];
        let (_, newly) = set_mates(&pointers, &mut mate, &mut avail);
        assert_eq!(newly, 0);
        assert_eq!(avail, vec![0, 0]);
    }

    #[test]
    fn set_mates_ignores_sentinel_pointers() {
        // A vertex pointing nowhere must not commit, even though the
        // clamped gather reads *some* slot.
        let mut mate = vec![NONE_SENTINEL; 3];
        let mut avail = vec![1u8; 3];
        let pointers = vec![NONE_SENTINEL, 2, 1];
        let (_, newly) = set_mates(&pointers, &mut mate, &mut avail);
        assert_eq!(newly, 1);
        assert_eq!(mate[0], NONE_SENTINEL);
        assert_eq!(avail, vec![1, 0, 0]);
    }

    #[test]
    fn opt_full_without_toggles_matches_default_kernel() {
        let g = ldgm_graph::gen::urand(128, 600, 7);
        let avail = vec![1u8; g.num_vertices()];
        let run = |opt: bool| {
            let mut pointers = vec![NONE_SENTINEL; g.num_vertices()];
            let mut retired = vec![0u8; g.num_vertices()];
            let r = if opt {
                set_pointers_opt(
                    &g,
                    None,
                    &whole(&g),
                    PointingWork::Full,
                    &avail,
                    &mut pointers,
                    &mut retired,
                    3,
                    true,
                )
            } else {
                set_pointers_batch(&g, &whole(&g), &avail, &mut pointers, &mut retired, 3, true)
            };
            (pointers, retired, r)
        };
        let (p0, ret0, r0) = run(false);
        let (p1, ret1, r1) = run(true);
        assert_eq!(p0, p1);
        assert_eq!(ret0, ret1);
        assert_eq!(r0.pointers_set, r1.pointers_set);
        assert_eq!(r0.vertices_retired, r1.vertices_retired);
        assert_eq!(r0.stats.edges_scanned, r1.stats.edges_scanned);
        assert_eq!(r0.stats.bytes_read, r1.stats.bytes_read);
        assert_eq!(r0.stats.bytes_written, r1.stats.bytes_written);
        assert_eq!(r1.edges_skipped, 0);
    }

    #[test]
    fn sorted_early_exit_skips_tail_waves() {
        // Vertex 0 with 40 neighbors; heaviest (id 40, w 40.0) is available,
        // so the sorted scan stops after its first 32-wide wave.
        let mut b = GraphBuilder::new(41);
        for v in 1..=40u32 {
            b = b.add_edge(0, v, v as f64);
        }
        let g = b.build();
        let sorted = SortedAdjacency::build(&g);
        let avail = vec![1u8; 41];
        let mut pointers = vec![NONE_SENTINEL; 41];
        let mut retired = [0u8; 41];
        let r = set_pointers_opt(
            &g,
            Some(&sorted),
            &VertexRange { start: 0, end: 1, edge_start: 0, edge_end: 40 },
            PointingWork::Full,
            &avail,
            &mut pointers[..1],
            &mut retired[..1],
            1,
            true,
        );
        assert_eq!(pointers[0], 40, "argmax neighbor");
        assert_eq!(r.stats.edge_waves, 1, "early exit after the first wave");
        assert_eq!(r.stats.edges_scanned, 32);
        assert_eq!(r.edges_skipped, 8);
    }

    #[test]
    fn sorted_scan_matches_default_selection_when_head_unavailable() {
        // Heaviest neighbors matched away: the sorted scan walks past them
        // and still lands on the default kernel's argmax.
        let g = GraphBuilder::new(5)
            .add_edge(0, 1, 9.0)
            .add_edge(0, 2, 8.0)
            .add_edge(0, 3, 7.0)
            .add_edge(0, 4, 7.0)
            .build();
        let sorted = SortedAdjacency::build(&g);
        let mut mate = vec![NONE_SENTINEL; 5];
        mate[1] = 99;
        mate[2] = 99;
        let avail = avail_of(&mate);
        let (best, _, _, _) = scan_best(&g, Some(&sorted), &avail, 0);
        let (best_default, _, _, _) = scan_best(&g, None, &avail, 0);
        assert_eq!(best, 3, "equal weights tie-break to the lower id");
        assert_eq!(best, best_default);
    }

    #[test]
    fn worklist_launch_writes_only_listed_vertices_and_bills_reads() {
        let g = GraphBuilder::new(4)
            .add_edge(0, 1, 1.0)
            .add_edge(1, 2, 2.0)
            .add_edge(2, 3, 3.0)
            .build();
        let avail = vec![1u8; 4];
        let mut pointers = vec![777; 4];
        let mut retired = vec![0u8; 4];
        let worklist: Vec<VertexId> = vec![1, 3];
        let r = set_pointers_opt(
            &g,
            None,
            &whole(&g),
            PointingWork::Worklist(&worklist),
            &avail,
            &mut pointers,
            &mut retired,
            2,
            true,
        );
        assert_eq!(pointers[1], 2);
        assert_eq!(pointers[3], 2);
        assert_eq!(pointers[0], 777, "unlisted vertex untouched");
        assert_eq!(pointers[2], 777, "unlisted vertex untouched");
        assert_eq!(r.stats.vertices, 2, "only worklist entries touched");
        assert_eq!(r.stats.warps_launched, 1, "2 entries / vpw 2 = 1 warp");
        // 4 B worklist read billed per vertex on top of the offset read.
        assert_eq!(r.stats.bytes_read % 4, 0);
        let full = set_pointers_opt(
            &g,
            None,
            &whole(&g),
            PointingWork::Full,
            &avail,
            &mut [NONE_SENTINEL; 4],
            &mut [0u8; 4],
            2,
            true,
        );
        assert!(
            r.stats.bytes_read < full.stats.bytes_read,
            "compacted launch reads less than the full scan"
        );
    }

    #[test]
    fn worklist_respects_vpw_grouping() {
        let g = GraphBuilder::new(6)
            .add_edge(0, 1, 1.0)
            .add_edge(2, 3, 1.0)
            .add_edge(4, 5, 1.0)
            .build();
        let avail = vec![1u8; 6];
        let mut pointers = vec![NONE_SENTINEL; 6];
        let mut retired = vec![0u8; 6];
        let worklist: Vec<VertexId> = vec![0, 2, 4, 5];
        let r = set_pointers_opt(
            &g,
            None,
            &whole(&g),
            PointingWork::Worklist(&worklist),
            &avail,
            &mut pointers,
            &mut retired,
            3,
            true,
        );
        assert_eq!(r.stats.warps_launched, 2, "4 entries / vpw 3 = 2 warps");
        assert_eq!(r.pointers_set, 4);
    }
}

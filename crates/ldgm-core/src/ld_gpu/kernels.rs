//! The LD-GPU kernels (Algorithm 3), executed for real on host threads.
//!
//! SETPOINTERS is warp-centric: contiguous groups of `vertices_per_warp`
//! batch vertices are assigned to warps; the warp's threads sweep each
//! vertex's adjacency in 32-wide waves, reducing the heaviest *available*
//! edge first per thread and then across the warp via shuffle reduction.
//! SETMATES is thread-per-vertex: a mutual-pointer check against the
//! globally reduced pointer array.
//!
//! Host execution parallelizes warp groups with rayon; every memory access
//! the real kernel would perform is accounted in [`KernelStats`] so the
//! simulator can bill time and occupancy.

use rayon::prelude::*;

use crate::matching::prefer;
use ldgm_gpusim::{KernelStats, NONE_SENTINEL};
use ldgm_graph::csr::{CsrGraph, VertexId};
use ldgm_graph::SortedAdjacency;
use ldgm_part::VertexRange;

/// Result of a SETPOINTERS launch over one batch.
#[derive(Clone, Copy, Debug, Default)]
pub struct PointingResult {
    /// Launch statistics for the cost model.
    pub stats: KernelStats,
    /// Vertices that set a (non-sentinel) pointer.
    pub pointers_set: u64,
    /// Vertices retired this launch (neighborhood exhausted).
    pub vertices_retired: u64,
    /// Edge slots skipped by the sorted-index early exit, relative to a
    /// full adjacency scan (0 for the default kernel).
    pub edges_skipped: u64,
}

impl PointingResult {
    /// Fold another launch's result into this one.
    pub fn merge(&mut self, other: &PointingResult) {
        self.stats.merge(&other.stats);
        self.pointers_set += other.pointers_set;
        self.vertices_retired += other.vertices_retired;
        self.edges_skipped += other.edges_skipped;
    }
}

/// Vertices an optimized SETPOINTERS launch covers.
#[derive(Clone, Copy, Debug)]
pub enum PointingWork<'a> {
    /// Every vertex of the batch range (first iteration, or frontier
    /// tracking disabled).
    Full,
    /// A frontier worklist: absolute vertex ids in ascending order, all
    /// inside the batch range.
    Worklist(&'a [VertexId]),
}

/// SETPOINTERS over the batch `[batch.start, batch.end)`.
///
/// * `mate` — the global mate array (read-only; availability check);
/// * `pointers_batch` — the batch's slice of the pointer array
///   (`pointers[batch.start..batch.end]`), written disjointly;
/// * `retired_batch` — the batch's slice of the retirement flags; a vertex
///   with no available neighbor can never match and is skipped in later
///   iterations (LD-SEQ's "remove from G") when `retire` is on.
pub fn set_pointers_batch(
    g: &CsrGraph,
    batch: &VertexRange,
    mate: &[u64],
    pointers_batch: &mut [u64],
    retired_batch: &mut [u8],
    vertices_per_warp: usize,
    retire: bool,
) -> PointingResult {
    let nv = batch.num_vertices();
    debug_assert_eq!(pointers_batch.len(), nv);
    debug_assert_eq!(retired_batch.len(), nv);
    if nv == 0 {
        return PointingResult::default();
    }
    let base = batch.start;
    let vpw = vertices_per_warp.max(1);

    pointers_batch
        .par_chunks_mut(vpw)
        .zip(retired_batch.par_chunks_mut(vpw))
        .enumerate()
        .map(|(warp_idx, (ptr_chunk, ret_chunk))| {
            let first = base + (warp_idx * vpw) as VertexId;
            let mut stats = KernelStats { warps_launched: 1, ..Default::default() };
            let mut warp_edges: u64 = 0;
            let mut warp_waves: u64 = 0;
            let mut processed: u64 = 0;
            let mut set: u64 = 0;
            let mut retired_count: u64 = 0;
            for (i, ptr) in ptr_chunk.iter_mut().enumerate() {
                let u = first + i as VertexId;
                stats.vertices += 1;
                if mate[u as usize] != NONE_SENTINEL || ret_chunk[i] != 0 {
                    continue; // matched or retired: early exit
                }
                processed += 1;
                let mut best: VertexId = VertexId::MAX;
                let mut best_w = f64::NEG_INFINITY;
                let nbrs = g.neighbors(u);
                let ws = g.neighbor_weights(u);
                warp_edges += nbrs.len() as u64;
                warp_waves += (nbrs.len() as u64).div_ceil(32);
                for (&v, &w) in nbrs.iter().zip(ws) {
                    if mate[v as usize] == NONE_SENTINEL && prefer(w, v, best_w, best) {
                        best = v;
                        best_w = w;
                    }
                }
                if best != VertexId::MAX {
                    *ptr = best as u64;
                    set += 1;
                } else {
                    *ptr = NONE_SENTINEL;
                    if retire {
                        ret_chunk[i] = 1;
                        retired_count += 1;
                    }
                }
            }
            stats.vertices_processed = processed;
            stats.edges_scanned = warp_edges;
            stats.edge_waves = warp_waves;
            stats.warps_active = (processed > 0) as u64;
            stats.max_warp_waves = warp_waves;
            stats.max_warp_vertices = processed;
            stats.warp_edges_sumsq = (warp_edges as f64) * (warp_edges as f64);
            // Bytes at transaction granularity: CSR offsets (16 B per
            // vertex), adjacency id + weight streamed in full 32-wide
            // waves (a warp load fetches whole lines even for short
            // lists), and one 32 B sector per mate gather (uncoalesced
            // indirect access); one pointer write per processed vertex.
            stats.bytes_read =
                stats.vertices * 8 + processed * 16 + warp_waves * 32 * (8 + 8) + warp_edges * 32;
            stats.bytes_written = processed * 8;
            PointingResult {
                stats,
                pointers_set: set,
                vertices_retired: retired_count,
                edges_skipped: 0,
            }
        })
        .reduce(PointingResult::default, |mut a, b| {
            a.merge(&b);
            a
        })
}

/// Pick vertex `u`'s pointer target and account the scan.
///
/// With a sorted index the list is in (weight desc, id asc) order — the
/// canonical [`prefer`] order — so the first available neighbor *is* the
/// argmax, and the warp stops after the 32-wide wave that contained it.
/// Without one this is the default full-scan argmax. Returns
/// `(target, edges_scanned, waves, edges_skipped)`; `target` is
/// `VertexId::MAX` when no neighbor is available.
#[inline]
fn scan_best(
    g: &CsrGraph,
    sorted: Option<&SortedAdjacency>,
    mate: &[u64],
    u: VertexId,
) -> (VertexId, u64, u64, u64) {
    match sorted {
        Some(idx) => {
            let nbrs = idx.neighbors(g, u);
            let deg = nbrs.len() as u64;
            match nbrs.iter().position(|&v| mate[v as usize] == NONE_SENTINEL) {
                Some(pos) => {
                    // Early exit is wave-granular: the warp finishes the
                    // 32-wide wave the hit landed in.
                    let waves = (pos as u64 + 1).div_ceil(32);
                    let scanned = deg.min(waves * 32);
                    (nbrs[pos], scanned, waves, deg - scanned)
                }
                None => (VertexId::MAX, deg, deg.div_ceil(32), 0),
            }
        }
        None => {
            let mut best: VertexId = VertexId::MAX;
            let mut best_w = f64::NEG_INFINITY;
            let nbrs = g.neighbors(u);
            let ws = g.neighbor_weights(u);
            for (&v, &w) in nbrs.iter().zip(ws) {
                if mate[v as usize] == NONE_SENTINEL && prefer(w, v, best_w, best) {
                    best = v;
                    best_w = w;
                }
            }
            let deg = nbrs.len() as u64;
            (best, deg, deg.div_ceil(32), 0)
        }
    }
}

/// Optimized SETPOINTERS: [`set_pointers_batch`] with an optional
/// preference-sorted index (early-exit scans) and an optional frontier
/// worklist (compacted launch over re-pointing vertices only).
///
/// Selection is bit-identical to the default kernel: the sorted order
/// mirrors [`prefer`], and a worklist launch only skips vertices whose
/// pointers are still valid (their targets are unmatched, so a rescan
/// would rewrite the same value). Only the billed work changes:
/// `Worklist` launches count one warp per `vertices_per_warp` worklist
/// entries plus a 4 B worklist read per vertex, and the early exit
/// reduces `edge_waves`/`edges_scanned`.
#[allow(clippy::too_many_arguments)]
pub fn set_pointers_opt(
    g: &CsrGraph,
    sorted: Option<&SortedAdjacency>,
    batch: &VertexRange,
    work: PointingWork<'_>,
    mate: &[u64],
    pointers_batch: &mut [u64],
    retired_batch: &mut [u8],
    vertices_per_warp: usize,
    retire: bool,
) -> PointingResult {
    let nv = batch.num_vertices();
    debug_assert_eq!(pointers_batch.len(), nv);
    debug_assert_eq!(retired_batch.len(), nv);
    let base = batch.start;
    let vpw = vertices_per_warp.max(1);

    match work {
        PointingWork::Full => {
            if nv == 0 {
                return PointingResult::default();
            }
            pointers_batch
                .par_chunks_mut(vpw)
                .zip(retired_batch.par_chunks_mut(vpw))
                .enumerate()
                .map(|(warp_idx, (ptr_chunk, ret_chunk))| {
                    let first = base + (warp_idx * vpw) as VertexId;
                    let mut r = PointingResult {
                        stats: KernelStats { warps_launched: 1, ..Default::default() },
                        ..Default::default()
                    };
                    let mut warp_edges: u64 = 0;
                    let mut warp_waves: u64 = 0;
                    let mut processed: u64 = 0;
                    for (i, ptr) in ptr_chunk.iter_mut().enumerate() {
                        let u = first + i as VertexId;
                        r.stats.vertices += 1;
                        if mate[u as usize] != NONE_SENTINEL || ret_chunk[i] != 0 {
                            continue; // matched or retired: early exit
                        }
                        processed += 1;
                        let (best, scanned, waves, skipped) = scan_best(g, sorted, mate, u);
                        warp_edges += scanned;
                        warp_waves += waves;
                        r.edges_skipped += skipped;
                        if best != VertexId::MAX {
                            *ptr = best as u64;
                            r.pointers_set += 1;
                        } else {
                            *ptr = NONE_SENTINEL;
                            if retire {
                                ret_chunk[i] = 1;
                                r.vertices_retired += 1;
                            }
                        }
                    }
                    fill_warp_stats(&mut r.stats, processed, warp_edges, warp_waves, 0);
                    r
                })
                .reduce(PointingResult::default, |mut a, b| {
                    a.merge(&b);
                    a
                })
        }
        PointingWork::Worklist(worklist) => {
            let mut out = PointingResult::default();
            // Frontier launches are small; warp groups are processed
            // sequentially per device (devices parallelize above).
            for chunk in worklist.chunks(vpw) {
                let mut stats = KernelStats { warps_launched: 1, ..Default::default() };
                let mut warp_edges: u64 = 0;
                let mut warp_waves: u64 = 0;
                let mut processed: u64 = 0;
                let mut r = PointingResult::default();
                for &u in chunk {
                    debug_assert!(batch.start <= u && u < batch.end, "worklist outside batch");
                    let i = (u - base) as usize;
                    stats.vertices += 1;
                    if mate[u as usize] != NONE_SENTINEL || retired_batch[i] != 0 {
                        continue;
                    }
                    processed += 1;
                    let (best, scanned, waves, skipped) = scan_best(g, sorted, mate, u);
                    warp_edges += scanned;
                    warp_waves += waves;
                    r.edges_skipped += skipped;
                    if best != VertexId::MAX {
                        pointers_batch[i] = best as u64;
                        r.pointers_set += 1;
                    } else {
                        pointers_batch[i] = NONE_SENTINEL;
                        if retire {
                            retired_batch[i] = 1;
                            r.vertices_retired += 1;
                        }
                    }
                }
                // 4 extra bytes per vertex: the worklist read.
                fill_warp_stats(&mut stats, processed, warp_edges, warp_waves, 4);
                r.stats = stats;
                out.merge(&r);
            }
            out
        }
    }
}

/// Close out one warp's [`KernelStats`] with the shared byte/wave model
/// of the pointing kernels (`extra_read_per_vertex` covers worklist
/// reads of compacted launches).
fn fill_warp_stats(
    stats: &mut KernelStats,
    processed: u64,
    warp_edges: u64,
    warp_waves: u64,
    extra_read_per_vertex: u64,
) {
    stats.vertices_processed = processed;
    stats.edges_scanned = warp_edges;
    stats.edge_waves = warp_waves;
    stats.warps_active = (processed > 0) as u64;
    stats.max_warp_waves = warp_waves;
    stats.max_warp_vertices = processed;
    stats.warp_edges_sumsq = (warp_edges as f64) * (warp_edges as f64);
    stats.bytes_read = stats.vertices * (8 + extra_read_per_vertex)
        + processed * 16
        + warp_waves * 32 * (8 + 8)
        + warp_edges * 32;
    stats.bytes_written = processed * 8;
}

/// SETMATES over the full vertex set: commit mutually pointing pairs.
/// Returns launch statistics and the number of newly matched *edges*.
pub fn set_mates(pointers: &[u64], mate: &mut [u64]) -> (KernelStats, u64) {
    let n = mate.len();
    const CHUNK: usize = 4096;
    let newly: u64 = mate
        .par_chunks_mut(CHUNK)
        .enumerate()
        .map(|(c, chunk)| {
            let base = c * CHUNK;
            let mut newly = 0u64;
            for (i, m) in chunk.iter_mut().enumerate() {
                let u = (base + i) as u64;
                if *m != NONE_SENTINEL {
                    continue;
                }
                let p = pointers[u as usize];
                if p != NONE_SENTINEL && pointers[p as usize] == u {
                    *m = p;
                    newly += 1;
                }
            }
            newly
        })
        .sum();
    debug_assert_eq!(newly % 2, 0, "mutual pairs must come in twos");
    let warps = (n as u64).div_ceil(32);
    let stats = KernelStats {
        vertices: n as u64,
        vertices_processed: n as u64,
        warps_launched: warps,
        warps_active: warps,
        // Mutual check: own pointer (coalesced 8 B) + indirect pointer
        // gather (32 B sector); write on match.
        bytes_read: n as u64 * (8 + 32),
        bytes_written: newly * 8,
        max_warp_vertices: 32,
        ..Default::default()
    };
    (stats, newly / 2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldgm_graph::GraphBuilder;
    use ldgm_part::Partition;

    fn whole(g: &CsrGraph) -> VertexRange {
        Partition::edge_balanced(g, 1).parts[0]
    }

    #[test]
    fn pointing_selects_heaviest_available() {
        let g = GraphBuilder::new(4)
            .add_edge(0, 1, 1.0)
            .add_edge(0, 2, 5.0)
            .add_edge(0, 3, 3.0)
            .build();
        let mut pointers = vec![NONE_SENTINEL; 4];
        let mut retired = vec![0u8; 4];
        let mate = vec![NONE_SENTINEL; 4];
        let r = set_pointers_batch(&g, &whole(&g), &mate, &mut pointers, &mut retired, 2, true);
        assert_eq!(pointers[0], 2);
        assert_eq!(pointers[2], 0);
        assert_eq!(r.pointers_set, 4);
        assert_eq!(r.stats.edges_scanned, 6);
    }

    #[test]
    fn pointing_skips_matched_neighbors() {
        let g = GraphBuilder::new(3).add_edge(0, 1, 5.0).add_edge(0, 2, 1.0).build();
        let mut pointers = vec![NONE_SENTINEL; 3];
        let mut retired = vec![0u8; 3];
        let mut mate = vec![NONE_SENTINEL; 3];
        mate[1] = 99; // pretend 1 is matched elsewhere
        let r = set_pointers_batch(&g, &whole(&g), &mate, &mut pointers, &mut retired, 1, true);
        assert_eq!(pointers[0], 2, "must skip matched vertex 1");
        // Vertex 1 is matched: early exit, no scan.
        assert_eq!(r.stats.edges_scanned, 2 + 1); // deg(0) + deg(2)
    }

    #[test]
    fn exhausted_vertices_retire() {
        let g = GraphBuilder::new(3).add_edge(0, 1, 1.0).add_edge(1, 2, 2.0).build();
        let mut pointers = vec![NONE_SENTINEL; 3];
        let mut retired = vec![0u8; 3];
        let mut mate = vec![NONE_SENTINEL; 3];
        mate[1] = 2;
        mate[2] = 1;
        let r = set_pointers_batch(&g, &whole(&g), &mate, &mut pointers, &mut retired, 1, true);
        // Vertex 0's only neighbor is matched: retired.
        assert_eq!(retired[0], 1);
        assert_eq!(pointers[0], NONE_SENTINEL);
        assert_eq!(r.pointers_set, 0);
        assert_eq!(r.vertices_retired, 1);
    }

    #[test]
    fn retire_flag_off_keeps_rescanning() {
        let g = GraphBuilder::new(2).add_edge(0, 1, 1.0).build();
        let mut pointers = vec![NONE_SENTINEL; 2];
        let mut retired = vec![0u8; 2];
        let mut mate = vec![NONE_SENTINEL; 2];
        mate[1] = 0;
        mate[0] = 1;
        // Both matched: nothing scanned either way, but check unmatched case:
        mate[0] = NONE_SENTINEL;
        mate[1] = 99;
        let _ = set_pointers_batch(&g, &whole(&g), &mate, &mut pointers, &mut retired, 1, false);
        assert_eq!(retired[0], 0, "no retirement when disabled");
    }

    #[test]
    fn warp_stats_reflect_grouping() {
        let g = GraphBuilder::new(6)
            .add_edge(0, 1, 1.0)
            .add_edge(2, 3, 1.0)
            .add_edge(4, 5, 1.0)
            .build();
        let mate = vec![NONE_SENTINEL; 6];
        let mut pointers = vec![NONE_SENTINEL; 6];
        let mut retired = vec![0u8; 6];
        let r = set_pointers_batch(&g, &whole(&g), &mate, &mut pointers, &mut retired, 2, true);
        assert_eq!(r.stats.warps_launched, 3);
        assert_eq!(r.stats.warps_active, 3);
        assert_eq!(r.stats.vertices, 6);
    }

    #[test]
    fn set_mates_commits_mutual_pairs_only() {
        let mut mate = vec![NONE_SENTINEL; 4];
        // 0<->1 mutual; 2 -> 3 one-way.
        let pointers = vec![1, 0, 3, 1];
        let (stats, newly) = set_mates(&pointers, &mut mate);
        assert_eq!(newly, 1);
        assert_eq!(mate[0], 1);
        assert_eq!(mate[1], 0);
        assert_eq!(mate[2], NONE_SENTINEL);
        assert_eq!(stats.vertices, 4);
    }

    #[test]
    fn set_mates_ignores_already_matched() {
        let mut mate = vec![NONE_SENTINEL; 2];
        mate[0] = 1;
        mate[1] = 0;
        let pointers = vec![1, 0];
        let (_, newly) = set_mates(&pointers, &mut mate);
        assert_eq!(newly, 0);
    }

    #[test]
    fn opt_full_without_toggles_matches_default_kernel() {
        let g = ldgm_graph::gen::urand(128, 600, 7);
        let mate = vec![NONE_SENTINEL; g.num_vertices()];
        let run = |opt: bool| {
            let mut pointers = vec![NONE_SENTINEL; g.num_vertices()];
            let mut retired = vec![0u8; g.num_vertices()];
            let r = if opt {
                set_pointers_opt(
                    &g,
                    None,
                    &whole(&g),
                    PointingWork::Full,
                    &mate,
                    &mut pointers,
                    &mut retired,
                    3,
                    true,
                )
            } else {
                set_pointers_batch(&g, &whole(&g), &mate, &mut pointers, &mut retired, 3, true)
            };
            (pointers, retired, r)
        };
        let (p0, ret0, r0) = run(false);
        let (p1, ret1, r1) = run(true);
        assert_eq!(p0, p1);
        assert_eq!(ret0, ret1);
        assert_eq!(r0.pointers_set, r1.pointers_set);
        assert_eq!(r0.vertices_retired, r1.vertices_retired);
        assert_eq!(r0.stats.edges_scanned, r1.stats.edges_scanned);
        assert_eq!(r0.stats.bytes_read, r1.stats.bytes_read);
        assert_eq!(r0.stats.bytes_written, r1.stats.bytes_written);
        assert_eq!(r1.edges_skipped, 0);
    }

    #[test]
    fn sorted_early_exit_skips_tail_waves() {
        // Vertex 0 with 40 neighbors; heaviest (id 40, w 40.0) is available,
        // so the sorted scan stops after its first 32-wide wave.
        let mut b = GraphBuilder::new(41);
        for v in 1..=40u32 {
            b = b.add_edge(0, v, v as f64);
        }
        let g = b.build();
        let sorted = SortedAdjacency::build(&g);
        let mate = vec![NONE_SENTINEL; 41];
        let mut pointers = vec![NONE_SENTINEL; 41];
        let mut retired = [0u8; 41];
        let r = set_pointers_opt(
            &g,
            Some(&sorted),
            &VertexRange { start: 0, end: 1, edge_start: 0, edge_end: 40 },
            PointingWork::Full,
            &mate,
            &mut pointers[..1],
            &mut retired[..1],
            1,
            true,
        );
        assert_eq!(pointers[0], 40, "argmax neighbor");
        assert_eq!(r.stats.edge_waves, 1, "early exit after the first wave");
        assert_eq!(r.stats.edges_scanned, 32);
        assert_eq!(r.edges_skipped, 8);
    }

    #[test]
    fn sorted_scan_matches_default_selection_when_head_unavailable() {
        // Heaviest neighbors matched away: the sorted scan walks past them
        // and still lands on the default kernel's argmax.
        let g = GraphBuilder::new(5)
            .add_edge(0, 1, 9.0)
            .add_edge(0, 2, 8.0)
            .add_edge(0, 3, 7.0)
            .add_edge(0, 4, 7.0)
            .build();
        let sorted = SortedAdjacency::build(&g);
        let mut mate = vec![NONE_SENTINEL; 5];
        mate[1] = 99;
        mate[2] = 99;
        let (best, _, _, _) = scan_best(&g, Some(&sorted), &mate, 0);
        let (best_default, _, _, _) = scan_best(&g, None, &mate, 0);
        assert_eq!(best, 3, "equal weights tie-break to the lower id");
        assert_eq!(best, best_default);
    }

    #[test]
    fn worklist_launch_writes_only_listed_vertices_and_bills_reads() {
        let g = GraphBuilder::new(4)
            .add_edge(0, 1, 1.0)
            .add_edge(1, 2, 2.0)
            .add_edge(2, 3, 3.0)
            .build();
        let mate = vec![NONE_SENTINEL; 4];
        let mut pointers = vec![777; 4];
        let mut retired = vec![0u8; 4];
        let worklist: Vec<VertexId> = vec![1, 3];
        let r = set_pointers_opt(
            &g,
            None,
            &whole(&g),
            PointingWork::Worklist(&worklist),
            &mate,
            &mut pointers,
            &mut retired,
            2,
            true,
        );
        assert_eq!(pointers[1], 2);
        assert_eq!(pointers[3], 2);
        assert_eq!(pointers[0], 777, "unlisted vertex untouched");
        assert_eq!(pointers[2], 777, "unlisted vertex untouched");
        assert_eq!(r.stats.vertices, 2, "only worklist entries touched");
        assert_eq!(r.stats.warps_launched, 1, "2 entries / vpw 2 = 1 warp");
        // 4 B worklist read billed per vertex on top of the offset read.
        assert_eq!(r.stats.bytes_read % 4, 0);
        let full = set_pointers_opt(
            &g,
            None,
            &whole(&g),
            PointingWork::Full,
            &mate,
            &mut [NONE_SENTINEL; 4],
            &mut [0u8; 4],
            2,
            true,
        );
        assert!(
            r.stats.bytes_read < full.stats.bytes_read,
            "compacted launch reads less than the full scan"
        );
    }

    #[test]
    fn worklist_respects_vpw_grouping() {
        let g = GraphBuilder::new(6)
            .add_edge(0, 1, 1.0)
            .add_edge(2, 3, 1.0)
            .add_edge(4, 5, 1.0)
            .build();
        let mate = vec![NONE_SENTINEL; 6];
        let mut pointers = vec![NONE_SENTINEL; 6];
        let mut retired = vec![0u8; 6];
        let worklist: Vec<VertexId> = vec![0, 2, 4, 5];
        let r = set_pointers_opt(
            &g,
            None,
            &whole(&g),
            PointingWork::Worklist(&worklist),
            &mate,
            &mut pointers,
            &mut retired,
            3,
            true,
        );
        assert_eq!(r.stats.warps_launched, 2, "4 entries / vpw 3 = 2 warps");
        assert_eq!(r.pointers_set, 4);
    }
}

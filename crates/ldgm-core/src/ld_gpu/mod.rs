//! **LD-GPU** — the paper's primary contribution: multi-device, batched,
//! pointer-based locally dominant ½-approximate weighted matching
//! (Algorithms 2 and 3), executed on the `ldgm-gpusim` platform simulator.
//!
//! ```
//! use ldgm_core::ld_gpu::{LdGpu, LdGpuConfig};
//! use ldgm_gpusim::Platform;
//! use ldgm_graph::gen::GraphGen;
//!
//! let g = GraphGen::urand().vertices(512).avg_degree(8).seed(1).build();
//! let out = LdGpu::new(LdGpuConfig::new(Platform::dgx_a100()).devices(4)).run(&g);
//! assert!(out.matching.verify(&g).is_ok());
//! assert!(out.matching.is_maximal(&g));
//! ```

mod config;
mod driver;
mod kernels;
mod scratch;
pub mod tune;

pub use config::{LdGpuConfig, LdGpuConfigBuilder, LdGpuError};
pub use driver::{LdGpu, LdGpuOutput};
pub use kernels::{set_mates, set_pointers_batch, set_pointers_opt, PointingResult, PointingWork};
pub use scratch::Scratch;
pub use tune::{auto_tune, auto_tune_with, TuneOptions, TuneReport};

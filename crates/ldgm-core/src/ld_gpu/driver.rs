//! The LD-GPU driver: Algorithm 2 of the paper on the simulated platform.
//!
//! Per iteration: every device walks its batches — asynchronously loading
//! batch `b+1` while the SETPOINTERS kernel of batch `b` runs on the other
//! stream buffer, with explicit host synchronization when the batch count
//! exceeds the two buffers — then the devices allreduce the pointer array
//! (NCCL ring model), run SETMATES against the globally consistent
//! pointers, and allreduce the mate array. Termination when an iteration
//! sets no pointers (no available edges remain).
//!
//! Kernel logic executes for real (device-parallel via rayon, with the
//! per-device vertex ranges borrowed disjointly); all simulated time is
//! billed through [`ldgm_gpusim::SimRuntime`], which owns the timers, the
//! trace, the metrics registry, and the timeline-derived phase breakdown.
//!
//! # Optimized mode (`ld-gpu-opt`)
//!
//! Three opt-in layers ([`LdGpuConfig::optimized`]), each individually
//! toggleable and each leaving the matching bit-identical to the default
//! path:
//!
//! * **sorted index** — neighbors are scanned through a
//!   [`SortedAdjacency`] (weight desc, id asc: the canonical [`prefer`]
//!   order, so the first available neighbor is the full scan's argmax) and
//!   the warp stops at the wave containing the hit. The one-time build is
//!   preprocessing, excluded from timings like the initial partition
//!   transfer (paper convention).
//! * **cross-iteration frontier** — after SETMATES, the only vertices
//!   whose pointers went stale are those whose target was just matched
//!   away; everyone else's pointer still names their best available
//!   neighbor (availability only shrinks, and anything better was already
//!   unavailable when the pointer was written). SETPOINTERS therefore
//!   launches over per-device frontier worklists only, skipping batches
//!   with empty frontier slices entirely; an empty frontier is a fixed
//!   point and terminates the loop without the default mode's final
//!   confirming scan. SETMATES stays a full-`n` global kernel (a mutual
//!   pair may join one fresh and one stale-but-valid pointer), and the
//!   frontier compaction rides on its full mate+pointer read (one extra
//!   worklist append per stale vertex, not billed separately).
//! * **sparse collectives** — pointer/mate deltas ship as
//!   [`SimRuntime::allreduce_sparse`] entries (~16 B per written slot, the
//!   `ldgm-dyn` convention) instead of dense `8·|V|` payloads.
//!
//! # Overlap mode (`overlap`)
//!
//! A fourth, orthogonal toggle ([`LdGpuConfig::with_overlap`], off by
//! default) that changes only how collectives are billed, never which
//! kernel variant runs: instead of a device barrier followed by a
//! serialized allreduce, each batch's slice of the pointer reduction is
//! scheduled on the device comm stream the moment its producer kernel
//! retires ([`SimRuntime::allreduce_chunked`]), hiding wire time under
//! the kernels of slower devices and next-iteration prefetch copies. The
//! matching is bit-identical to the serialized path; with the toggle off
//! the default `ld-gpu` timeline is byte-for-byte unchanged.
//!
//! [`prefer`]: crate::matching::prefer

use rayon::prelude::*;

use ldgm_gpusim::metrics::names;
use ldgm_gpusim::{
    CommChunk, DeviceCtx, IterationRecord, KernelStats, MetricsRegistry, RunProfile, SimRuntime,
    Trace, NONE_SENTINEL,
};
use ldgm_graph::csr::{CsrGraph, VertexId};
use ldgm_graph::SortedAdjacency;
use ldgm_part::placement::{cut_stats, NodePlacement};
use ldgm_part::{batch, memory, plan_substreams, Partition, SubstreamPlan, VertexRange};

use super::config::{LdGpuConfig, LdGpuError};
use super::kernels::{
    set_mates, set_pointers_band, set_pointers_batch, set_pointers_opt, PointingResult,
    PointingWork,
};
use super::scratch::Scratch;
use crate::matching::Matching;

/// Result of an LD-GPU run.
#[derive(Clone, Debug)]
pub struct LdGpuOutput {
    /// The computed ½-approximate matching.
    pub matching: Matching,
    /// Matching iterations executed.
    pub iterations: usize,
    /// End-to-end simulated time in seconds (pointing + matching phases,
    /// matching the paper's reporting convention).
    pub sim_time: f64,
    /// Component-wise timing and per-iteration records.
    pub profile: RunProfile,
    /// Devices actually used.
    pub devices: usize,
    /// Batches per device actually used.
    pub batches: usize,
    /// Event timeline, when [`LdGpuConfig::collect_trace`] is on.
    pub trace: Option<Trace>,
    /// Run metrics: kernel work, collective traffic, buffer stalls.
    pub metrics: MetricsRegistry,
}

/// The LD-GPU matcher.
#[derive(Clone, Debug)]
pub struct LdGpu {
    cfg: LdGpuConfig,
}

/// Per-device state borrowed disjointly during the pointing phase. The
/// [`DeviceCtx`] carries the device's timeline and bills every copy,
/// kernel and sync the task issues.
struct DeviceTask<'a> {
    part: VertexRange,
    batches: &'a [VertexRange],
    /// Frontier worklist of this device (ascending, inside `part`), when
    /// the optimized mode restricts the launch; `None` scans every batch
    /// vertex.
    frontier: Option<&'a [VertexId]>,
    pointers: &'a mut [u64],
    retired: &'a mut [u8],
    /// Reusable overlap-staging buffer on loan from the [`Scratch`]
    /// arena; rides back to it through [`DeviceReport::comm_chunks`].
    chunks: Vec<(u64, f64)>,
    /// Out-of-core mode: this device's substream plan — the band walk
    /// replaces the batch walk entirely.
    stream: Option<SubstreamPlan>,
    /// This device's slice of the streaming residency lane:
    /// `resident[i]` counts how many leading bands of vertex
    /// `part.start + i` are still held on-device from the previous
    /// iteration (empty outside streaming mode).
    resident: &'a mut [u8],
    /// Streaming band worklists on loan from the arena; ride back via
    /// [`DeviceReport::band_bufs`].
    work_buf: Vec<VertexId>,
    next_buf: Vec<VertexId>,
    ctx: DeviceCtx,
}

/// What a device reports back after its pointing phase (simulation-side
/// billing stays inside the returned [`DeviceCtx`]).
#[derive(Default)]
struct DeviceReport {
    stats: KernelStats,
    pointers_set: u64,
    vertices_retired: u64,
    edges_skipped: u64,
    batches_skipped: u64,
    occ_weighted: f64,
    occ_weight: f64,
    /// Overlap mode: one `(payload_bytes, ready_time)` entry per batch —
    /// the batch's slice of the pointer reduction becomes reducible the
    /// moment its producer kernel retires.
    comm_chunks: Vec<(u64, f64)>,
    /// Streaming: band worklist buffers riding back to the arena.
    band_bufs: Option<(Vec<VertexId>, Vec<VertexId>)>,
    /// Streaming: prefetch copy time that ran under band kernels vs.
    /// time the compute stream sat waiting on the copy.
    prefetch_hidden: f64,
    prefetch_exposed: f64,
}

/// One device's out-of-core pointing phase: walk the rank bands of the
/// substream plan in preference order, prefetching band `b`'s
/// non-resident bytes on the copy stream while the kernel of band `b-1`
/// runs on the other stream buffer (`buf = band & 1`, the same
/// double-buffer cycle as the batch walk). A vertex leaves the band
/// worklist the moment it finds an available neighbor — the hit is the
/// full scan's argmax because bands tile the sorted order — so deeper
/// bands stream ever-shrinking worklists.
///
/// Residency: `task.resident[i]` counts the leading bands of vertex `i`
/// still held from the previous iteration. A band below the window that
/// is already resident bills zero copy bytes; scanning past the window
/// recycles the vertex's slots (its prefix must re-stream next time).
/// Prefetch accounting splits each copy's duration into the part that
/// ran under compute (`hidden`) and the part the compute stream spent
/// waiting on it (`exposed`).
#[allow(clippy::too_many_arguments)]
fn stream_pointing(
    g: &CsrGraph,
    sorted: &SortedAdjacency,
    task: &mut DeviceTask<'_>,
    rep: &mut DeviceReport,
    avail: &[u8],
    slots: usize,
    fixed_vpw: Option<usize>,
    retire: bool,
    overlap: bool,
    sparse: bool,
) {
    let plan = task.stream.expect("streaming task carries a plan");
    let layout = plan.layout;
    let window = plan.window;
    let part = task.part;
    let mut work = std::mem::take(&mut task.work_buf);
    let mut next = std::mem::take(&mut task.next_buf);
    work.clear();
    next.clear();
    // Iteration worklist: the frontier when the optimized mode restricts
    // the launch, otherwise every live vertex of the partition.
    // Degree-0 vertices can never match and never enter.
    match task.frontier {
        Some(f) => work.extend(f.iter().copied().filter(|&u| g.degree(u) > 0)),
        None => work.extend((part.start..part.end).filter(|&u| {
            avail[u as usize] != 0
                && task.retired[(u - part.start) as usize] == 0
                && g.degree(u) > 0
        })),
    }

    let mut last_end: Option<f64> = None;
    let mut band = 0usize;
    while band < layout.num_bands() && !work.is_empty() {
        // Prefetch billing: only bytes not already resident travel. The
        // residency depth updates in the same pass — band data loaded
        // below the window is pinned for the next iteration, while
        // scanning past the window recycles the vertex's slots.
        let mut bytes = 0u64;
        for &u in &work {
            let i = (u - part.start) as usize;
            if band >= task.resident[i] as usize {
                bytes += layout.vertex_band_bytes(g, u, band);
            }
            task.resident[i] = if band < window { (band + 1).min(255) as u8 } else { 0 };
        }
        let copy = if bytes > 0 {
            let label = task.ctx.label("copy", || format!("stream s{band}"));
            Some(task.ctx.h2d_copy(band, bytes, label))
        } else {
            None
        };
        // Execute the band scan for real; worklist launches derive their
        // warp width from the (shrinking) worklist length unless pinned.
        let vpw = fixed_vpw.unwrap_or_else(|| work.len().div_ceil(slots).max(1));
        let res = set_pointers_band(
            g,
            sorted,
            &layout,
            band,
            &work,
            &mut next,
            avail,
            task.pointers,
            task.retired,
            part.start,
            vpw,
            retire,
        );
        let t0 = task.ctx.compute_done();
        let label = task.ctx.label("point", || format!("point s{band}"));
        let launch = task.ctx.launch_kernel(Some(band), label, &res.stats);
        if let Some((cs, ce)) = copy {
            let dur = ce - cs;
            let exposed = (launch.start - t0).clamp(0.0, dur);
            rep.prefetch_exposed += exposed;
            rep.prefetch_hidden += dur - exposed;
        }
        rep.pointers_set += res.pointers_set;
        rep.vertices_retired += res.vertices_retired;
        rep.edges_skipped += res.edges_skipped;
        rep.occ_weighted += launch.occupancy * res.stats.warps_launched as f64;
        rep.occ_weight += res.stats.warps_launched as f64;
        rep.stats.merge(&res.stats);
        last_end = Some(launch.end);
        std::mem::swap(&mut work, &mut next);
        next.clear();
        band += 1;
    }
    // Overlap mode: the device's whole slice of the pointer reduction is
    // ready when its last band kernel retires.
    if overlap {
        let bytes =
            if sparse { 16 * rep.stats.vertices_processed } else { 8 * part.num_vertices() as u64 };
        rep.comm_chunks.push((bytes, last_end.unwrap_or(0.0)));
    }
    work.clear();
    next.clear();
    rep.band_bufs = Some((work, next));
}

impl LdGpu {
    /// Create a matcher from a configuration.
    pub fn new(cfg: LdGpuConfig) -> Self {
        LdGpu { cfg }
    }

    /// Run on `g`, panicking on infeasible configurations.
    pub fn run(&self, g: &CsrGraph) -> LdGpuOutput {
        self.try_run(g).expect("LD-GPU configuration infeasible")
    }

    /// Run on `g`.
    pub fn try_run(&self, g: &CsrGraph) -> Result<LdGpuOutput, LdGpuError> {
        let cfg = &self.cfg;
        let n = g.num_vertices();
        let ndev = cfg.devices.clamp(1, cfg.platform.max_devices);
        let partition = Partition::edge_balanced(g, ndev);
        let mem = cfg.platform.device.mem_bytes;

        // Out-of-core streaming: size a resident band window per device
        // instead of a batch plan. `batches` is reported as the deepest
        // band count — the number of copy/kernel rounds a full iteration
        // takes.
        let stream_plans: Option<Vec<SubstreamPlan>> = if cfg.streaming {
            let budget = cfg.mem_budget.unwrap_or(mem);
            let window = cfg.stream_window.unwrap_or(2).max(2);
            let mut plans = Vec::with_capacity(ndev);
            for (d, part) in partition.parts.iter().enumerate() {
                match plan_substreams(g, part, n, budget, window) {
                    Ok(p) => plans.push(p),
                    Err(e) => {
                        return Err(LdGpuError::StreamPlanTooLarge {
                            device: d,
                            window,
                            required: e.required,
                            mem_bytes: e.mem_bytes,
                        })
                    }
                }
            }
            Some(plans)
        } else {
            None
        };

        // Batch plan: identical count per device (paper §III-C).
        let nbatches = if let Some(plans) = &stream_plans {
            plans.iter().map(|p| p.layout.num_bands()).max().unwrap_or(0).max(1)
        } else {
            match cfg.batches {
                Some(b) => {
                    for (d, part) in partition.parts.iter().enumerate() {
                        let plan = batch::make_batches(g, part, b);
                        let required = memory::device_footprint_bytes(&plan, n);
                        if required > mem {
                            return Err(LdGpuError::BatchPlanTooLarge {
                                device: d,
                                batches: b,
                                required,
                                mem_bytes: mem,
                            });
                        }
                    }
                    b
                }
                None => {
                    let mut needed = 1;
                    for (d, part) in partition.parts.iter().enumerate() {
                        match batch::min_batches_to_fit(g, part, n, mem, 1) {
                            Some(k) => needed = needed.max(k),
                            None => {
                                return Err(LdGpuError::OutOfMemory { device: d, mem_bytes: mem })
                            }
                        }
                    }
                    needed
                }
            }
        };

        // Global device-resident arrays.
        let mut pointers: Vec<u64> = vec![NONE_SENTINEL; n];
        let mut mate: Vec<u64> = vec![NONE_SENTINEL; n];
        let mut retired: Vec<u8> = vec![0; n];

        let spec = &cfg.platform.device;
        let slots = (spec.sm_count * spec.max_warps_per_sm) as usize;
        let vpw = cfg.vertices_per_warp.unwrap_or_else(|| n.div_ceil(ndev).div_ceil(slots).max(1));
        let fixed_vpw = cfg.vertices_per_warp;

        // Batch plans are immutable for the whole run: compute them once
        // instead of redoing the prefix-sum binary searches per iteration.
        // Streaming replaces the batch walk outright, so no plans there.
        let batch_plans: Vec<Vec<VertexRange>> = if cfg.streaming {
            vec![Vec::new(); ndev]
        } else {
            partition.parts.iter().map(|p| batch::make_batches(g, p, nbatches)).collect()
        };

        // Optimized-mode state. The sorted index is preprocessing (built
        // once per run, excluded from timings like the initial partition
        // transfer); the scratch arena's `frontiers` hold per-device
        // worklists once the first full iteration has run. Streaming
        // requires the sorted order — bands are rank bands over it.
        let optimized = cfg.is_optimized();
        let sorted =
            if cfg.sorted_index || cfg.streaming { Some(SortedAdjacency::build(g)) } else { None };
        let sorted_ref = sorted.as_ref();
        let mut have_frontiers = false;

        // Every reusable per-iteration buffer — the SoA availability
        // lane the kernels scan, the frontier worklists, the overlap
        // comm staging — lives in one arena for the whole run.
        let mut scratch = Scratch::for_graph(g).with_devices(ndev);
        if cfg.streaming {
            scratch.resident = vec![0; n];
        }

        let mut rt = SimRuntime::new(&cfg.platform, ndev)
            .with_kernel_overhead(cfg.kernel_overhead)
            .with_trace(cfg.collect_trace);

        // Cluster placement: decide which parts share a node and measure
        // the inter-node cut. Billing-layer only — the reductions still
        // span every device and the matching is bit-identical under any
        // placement; what changes is how much of each collective payload
        // the simulator sends over the slow inter-node link.
        if let Some(topo) = cfg.platform.cluster_topology() {
            let nodes = topo.nodes_spanned(ndev);
            if nodes > 1 {
                let caps: Vec<usize> =
                    (0..nodes).map(|node| topo.devices_on_node(node, ndev)).collect();
                let placement = if cfg.topology_placement {
                    NodePlacement::topology_aware(g, &partition, &caps)
                } else {
                    NodePlacement::grouped(ndev, &caps)
                };
                let stats = cut_stats(g, &partition, &placement);
                rt.gauge_set(names::PART_INTER_NODE_CUT, stats.cut_fraction());
                if cfg.topology_placement {
                    // Only the boundary slice of the reduced arrays needs
                    // the leader ring; ship that fraction inter-node.
                    rt.gauge_set(names::PART_BOUNDARY_FRACTION, stats.boundary_fraction());
                    rt.set_inter_cut(stats.boundary_fraction());
                }
            }
        }

        let mut iterations = 0usize;
        let total_directed = g.num_directed_edges() as u64;
        let mut prefetch_hidden = 0.0f64;
        let mut prefetch_exposed = 0.0f64;

        loop {
            // Split the arena into disjoint field borrows: the parallel
            // pointing phase reads `avail` and `frontiers` while taking
            // the per-device `chunk_bufs` on loan.
            let Scratch {
                avail,
                frontiers,
                chunk_bufs,
                comm_staging,
                resident,
                band_work,
                band_next,
                ..
            } = &mut scratch;
            let frontier_round = cfg.frontier && have_frontiers;
            // ---- Pointing phase (Algorithm 2 lines 3-6) ----
            let mut reports: Vec<DeviceReport> = {
                let mut tasks: Vec<DeviceTask<'_>> = Vec::with_capacity(ndev);
                let mut ptr_rest: &mut [u64] = &mut pointers;
                let mut ret_rest: &mut [u8] = &mut retired;
                let mut res_rest: &mut [u8] = resident;
                let mut cursor: usize = 0;
                let mut ctxs = rt.detach_devices();
                for (d, (part, ctx)) in partition.parts.iter().zip(ctxs.drain(..)).enumerate() {
                    debug_assert_eq!(part.start as usize, cursor);
                    let len = part.num_vertices();
                    let (ptr_here, ptr_next) = ptr_rest.split_at_mut(len);
                    let (ret_here, ret_next) = ret_rest.split_at_mut(len);
                    // The residency lane is sized only in streaming mode;
                    // otherwise every device gets an empty slice.
                    let (res_here, res_next) =
                        res_rest.split_at_mut(if cfg.streaming { len } else { 0 });
                    ptr_rest = ptr_next;
                    ret_rest = ret_next;
                    res_rest = res_next;
                    cursor += len;
                    tasks.push(DeviceTask {
                        part: *part,
                        batches: &batch_plans[d],
                        frontier: if frontier_round { Some(frontiers[d].as_slice()) } else { None },
                        pointers: ptr_here,
                        retired: ret_here,
                        chunks: std::mem::take(&mut chunk_bufs[d]),
                        stream: stream_plans.as_ref().map(|p| p[d]),
                        resident: res_here,
                        work_buf: std::mem::take(&mut band_work[d]),
                        next_buf: std::mem::take(&mut band_next[d]),
                        ctx,
                    });
                }
                let avail_ref: &[u8] = avail;
                let results: Vec<(DeviceCtx, DeviceReport)> = tasks
                    .into_par_iter()
                    .map(|mut task| {
                        let mut rep = DeviceReport {
                            comm_chunks: std::mem::take(&mut task.chunks),
                            ..Default::default()
                        };
                        // Out-of-core mode: the band walk replaces the
                        // batch walk entirely.
                        if task.stream.is_some() {
                            stream_pointing(
                                g,
                                sorted_ref.expect("streaming builds the sorted index"),
                                &mut task,
                                &mut rep,
                                avail_ref,
                                slots,
                                fixed_vpw,
                                self.cfg.retire_exhausted,
                                cfg.overlap,
                                cfg.sparse_collectives,
                            );
                            if !cfg.overlap {
                                task.ctx.drain();
                            }
                            return (task.ctx, rep);
                        }
                        let nb = task.batches.len();
                        for (b, brange) in task.batches.iter().enumerate() {
                            // An empty batch (more requested batches than
                            // partition vertices) has nothing to copy,
                            // launch or sync; billing those ops for it was
                            // a bug.
                            if brange.num_vertices() == 0 {
                                rep.batches_skipped += 1;
                                continue;
                            }
                            // Frontier rounds restrict the launch to the
                            // batch's slice of the device worklist; a batch
                            // with no frontier vertex is skipped outright
                            // (no copy, no launch, no sync).
                            let work: Option<&[VertexId]> = task.frontier.map(|f| {
                                let lo = f.partition_point(|&u| u < brange.start);
                                let hi = f.partition_point(|&u| u < brange.end);
                                &f[lo..hi]
                            });
                            if let Some(w) = work {
                                if w.is_empty() {
                                    rep.batches_skipped += 1;
                                    // Dense collectives still ship the
                                    // untouched slice; nothing produces it
                                    // this round, so it is ready at once.
                                    if cfg.overlap && !cfg.sparse_collectives {
                                        rep.comm_chunks
                                            .push((8 * brange.num_vertices() as u64, 0.0));
                                    }
                                    continue;
                                }
                            }
                            // Async load into buffer b mod 2 (double
                            // buffer). With ≤ 2 batches both stay resident
                            // in the buffers: their initial load is the
                            // host-device partition transfer the paper
                            // excludes from timings. Beyond two batches the
                            // buffers are re-streamed every iteration, which
                            // is billed.
                            if nb > 2 {
                                let bytes = memory::batch_buffer_bytes(brange);
                                let label = task.ctx.label("copy", || format!("copy b{b}"));
                                task.ctx.h2d_copy(b, bytes, label);
                            }
                            // Execute SETPOINTERS for real on the batch's
                            // sub-slice of this device's pointer range.
                            let lo = (brange.start - task.part.start) as usize;
                            let hi = (brange.end - task.part.start) as usize;
                            let PointingResult {
                                stats,
                                pointers_set,
                                vertices_retired,
                                edges_skipped,
                            } = if optimized {
                                // Compacted launches derive their own warp
                                // width from the worklist length (unless
                                // pinned), like the incremental engine.
                                let (pw, launch_vpw) = match work {
                                    Some(w) => (
                                        PointingWork::Worklist(w),
                                        fixed_vpw.unwrap_or_else(|| w.len().div_ceil(slots).max(1)),
                                    ),
                                    None => (PointingWork::Full, vpw),
                                };
                                set_pointers_opt(
                                    g,
                                    sorted_ref,
                                    brange,
                                    pw,
                                    avail_ref,
                                    &mut task.pointers[lo..hi],
                                    &mut task.retired[lo..hi],
                                    launch_vpw,
                                    self.cfg.retire_exhausted,
                                )
                            } else {
                                set_pointers_batch(
                                    g,
                                    brange,
                                    avail_ref,
                                    &mut task.pointers[lo..hi],
                                    &mut task.retired[lo..hi],
                                    vpw,
                                    self.cfg.retire_exhausted,
                                )
                            };
                            let label = task.ctx.label("point", || format!("point b{b}"));
                            let launch = task.ctx.launch_kernel(Some(b), label, &stats);
                            rep.pointers_set += pointers_set;
                            rep.vertices_retired += vertices_retired;
                            rep.edges_skipped += edges_skipped;
                            rep.occ_weighted += launch.occupancy * stats.warps_launched as f64;
                            rep.occ_weight += stats.warps_launched as f64;
                            rep.stats.merge(&stats);
                            // Overlap mode: this batch's slice of the
                            // pointer reduction is ready the moment its
                            // kernel retires (early per-device
                            // reduce-scatter).
                            if cfg.overlap {
                                let bytes = if cfg.sparse_collectives {
                                    16 * stats.vertices_processed
                                } else {
                                    8 * brange.num_vertices() as u64
                                };
                                rep.comm_chunks.push((bytes, launch.end));
                            }
                            // Paper §III-D: explicit host-device sync when
                            // more batches than stream buffers.
                            if nb > 2 {
                                let label = task.ctx.label("sync", || format!("sync b{b}"));
                                task.ctx.host_sync(label);
                            }
                        }
                        // Overlap mode leaves the device undrained: the
                        // host-visible clock stays at the last issue point
                        // so next-iteration prefetch copies can run under
                        // the in-flight collective chunks.
                        if !cfg.overlap {
                            task.ctx.drain();
                        }
                        (task.ctx, rep)
                    })
                    .collect();
                let (ctxs, reports): (Vec<_>, Vec<_>) = results.into_iter().unzip();
                rt.attach_devices(ctxs);
                reports
            };

            // Streaming band worklists ride back to the arena right away
            // (the maximality break below must not drop them).
            for (d, rep) in reports.iter_mut().enumerate() {
                if let Some((w, nx)) = rep.band_bufs.take() {
                    band_work[d] = w;
                    band_next[d] = nx;
                }
            }

            let pointers_set: u64 = reports.iter().map(|r| r.pointers_set).sum();
            let mut iter_stats = KernelStats::default();
            let mut occ_weighted = 0.0;
            let mut occ_weight = 0.0;
            for r in &reports {
                iter_stats.merge(&r.stats);
                occ_weighted += r.occ_weighted;
                occ_weight += r.occ_weight;
                prefetch_hidden += r.prefetch_hidden;
                prefetch_exposed += r.prefetch_exposed;
                rt.counter_add(names::KERNEL_VERTICES_RETIRED, r.vertices_retired);
            }
            rt.counter_add(names::KERNEL_POINTERS_SET, pointers_set);
            if optimized || cfg.streaming {
                rt.counter_add(
                    names::OPT_EDGES_SKIPPED,
                    reports.iter().map(|r| r.edges_skipped).sum(),
                );
            }
            // Batch skips also happen outside optimized mode (empty
            // batches when the plan has more batches than a partition has
            // vertices), so the counter is emitted whenever it fired.
            let batches_skipped: u64 = reports.iter().map(|r| r.batches_skipped).sum();
            if optimized || batches_skipped > 0 {
                rt.counter_add(names::OPT_BATCHES_SKIPPED, batches_skipped);
            }

            if pointers_set == 0 {
                break; // no available edges anywhere: matching is maximal
            }
            iterations += 1;

            // ---- AllReduce pointers (line 7) ----
            let payload = 8 * n as u64;
            if cfg.overlap {
                // Overlap mode: no device barrier. Each batch slice starts
                // reducing on its comm stream the moment its producer
                // kernel retires, so wire time (and the barrier-imbalance
                // wait it used to sit behind) hides under the kernels of
                // slower devices.
                comm_staging.clear();
                comm_staging.extend(
                    reports
                        .iter()
                        .flat_map(|r| r.comm_chunks.iter())
                        .map(|&(bytes, ready)| CommChunk { bytes, ready }),
                );
                rt.allreduce_chunked("allreduce ptr", comm_staging);
            } else {
                // Devices idle at the collective until the slowest finishes
                // its pointing phase — the paper's "explicit
                // synchronization" component is dominated by exactly this
                // imbalance wait, which the timeline breakdown attributes
                // to the sync phase.
                rt.barrier_wait();
                if cfg.sparse_collectives {
                    // Only the slots written this round need to travel:
                    // ~16 B per entry (index + value), the ldgm-dyn
                    // convention.
                    rt.allreduce_sparse("allreduce ptr", iter_stats.vertices_processed, 16);
                } else {
                    rt.allreduce("allreduce ptr", payload);
                }
            }

            // The staging buffers ride back to the arena (cleared, with
            // their capacity) for the next iteration's loan.
            for (buf, rep) in chunk_bufs.iter_mut().zip(reports.iter_mut()) {
                std::mem::swap(buf, &mut rep.comm_chunks);
                buf.clear();
            }

            // ---- Matching phase: SETMATES (line 8) ----
            let (mstats, new_matches) = set_mates(&pointers, &mut mate, avail);
            rt.counter_add(names::MATCHING_EDGES_COMMITTED, new_matches);
            rt.global_kernel("setmates", &mstats);

            // Streaming residency: vertices that just left the live set
            // (matched by this SETMATES, or retired as exhausted) release
            // their pinned window bands.
            if cfg.streaming {
                let mut evicted = 0u64;
                for (i, r) in resident.iter_mut().enumerate() {
                    if *r != 0 && (avail[i] == 0 || retired[i] != 0) {
                        *r = 0;
                        evicted += 1;
                    }
                }
                rt.counter_add(names::MEM_EVICTIONS, evicted);
            }

            // ---- AllReduce mate (line 9) ----
            if cfg.overlap {
                // SETMATES writes the whole mate array, so the reduction
                // has a single chunk ready when the slowest device's
                // compute retires; scheduling it on the comm stream still
                // lets next-iteration prefetch copies run underneath.
                let bytes = if cfg.sparse_collectives { 16 * 2 * new_matches } else { payload };
                let ready = rt.compute_horizon();
                rt.allreduce_chunked("allreduce mate", &[CommChunk { bytes, ready }]);
            } else if cfg.sparse_collectives {
                rt.allreduce_sparse("allreduce mate", 2 * new_matches, 16);
            } else {
                rt.allreduce("allreduce mate", payload);
            }

            // Runtime-level livelock invariant: an iteration that set
            // pointers must commit at least one edge (two locally-dominant
            // endpoints point at each other under the canonical total
            // order), or the driver would re-derive the same pointers
            // forever.
            rt.assert_progress(new_matches, "SETMATES after a pointer-setting round");

            if cfg.collect_iterations {
                let occ = if occ_weight > 0.0 { occ_weighted / occ_weight } else { 0.0 };
                rt.push_iteration(IterationRecord::from_stats(
                    iterations - 1,
                    &iter_stats,
                    total_directed,
                    occ,
                    new_matches,
                ));
            }

            // Cross-iteration frontier: the only vertices whose pointers
            // went stale are those whose target was matched away by this
            // SETMATES; everyone else still points at their best available
            // neighbor. The compaction rides on SETMATES' full mate +
            // pointer read (one worklist append per stale vertex), so it
            // adds no billed launch. An empty frontier is a fixed point:
            // any remaining available edge's maximum would be a mutual
            // pair and would already have been committed.
            if cfg.frontier {
                let mut total = 0usize;
                for (part, f) in partition.parts.iter().zip(frontiers.iter_mut()) {
                    f.clear();
                    f.extend((part.start..part.end).filter(|&u| {
                        let p = pointers[u as usize];
                        avail[u as usize] != 0 && p != NONE_SENTINEL && avail[p as usize] == 0
                    }));
                    total += f.len();
                }
                have_frontiers = true;
                rt.observe(names::OPT_FRONTIER_SIZE, total as f64);
                if total == 0 {
                    break; // fixed point: skip the default mode's confirming scan
                }
            }

            // Auto-tuner probes: stop after the configured number of
            // iterations — the partial run's simulated time is the
            // probe's score; the matching is simply not maximal yet.
            if cfg.probe_iterations.is_some_and(|k| iterations >= k) {
                break;
            }
        }

        rt.counter_add(names::DRIVER_ITERATIONS, iterations as u64);
        rt.gauge_set(names::DRIVER_BATCHES, nbatches as f64);
        if let Some(plans) = &stream_plans {
            let high_water = plans.iter().map(|p| p.resident_bytes).max().unwrap_or(0);
            rt.gauge_set(names::MEM_RESIDENT_BYTES, high_water as f64);
            rt.gauge_set(names::COPY_PREFETCH_HIDDEN_TIME, prefetch_hidden);
            rt.gauge_set(names::COPY_PREFETCH_EXPOSED_TIME, prefetch_exposed);
        }
        let fin = rt.finish();
        let sim_time = fin.sim_time;
        let profile = fin.profile;
        let metrics = fin.metrics;
        let trace = fin.trace;

        let mut matching = Matching::new(n);
        for (u, &v) in mate.iter().enumerate() {
            if v != NONE_SENTINEL && (u as u64) < v {
                matching.join(u as VertexId, v as VertexId);
            }
        }
        Ok(LdGpuOutput {
            matching,
            iterations,
            sim_time,
            profile,
            devices: ndev,
            batches: nbatches,
            trace,
            metrics,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ld_seq::ld_seq;
    use crate::verify::half_approx_certificate;
    use ldgm_gpusim::Platform;
    use ldgm_graph::gen::{rmat, urand, RmatParams};

    fn dgx() -> Platform {
        Platform::dgx_a100()
    }

    #[test]
    fn single_device_matches_ld_seq() {
        for seed in 0..3 {
            let g = urand(500, 3000, seed);
            let out = LdGpu::new(LdGpuConfig::new(dgx())).run(&g);
            let seq = ld_seq(&g);
            assert_eq!(out.matching.mate_array(), seq.mate_array(), "seed {seed}");
            assert_eq!(out.matching.verify(&g), Ok(()));
        }
    }

    #[test]
    fn multi_device_identical_to_ld_seq() {
        let g = rmat(1024, 8000, RmatParams::GAP_KRON, 5);
        let seq = ld_seq(&g);
        for ndev in [2, 3, 4, 8] {
            let out = LdGpu::new(LdGpuConfig::new(dgx()).devices(ndev)).run(&g);
            assert_eq!(out.matching.mate_array(), seq.mate_array(), "{ndev} devices");
            assert_eq!(out.devices, ndev);
        }
    }

    #[test]
    fn batching_does_not_change_result() {
        let g = urand(800, 6400, 9);
        let seq = ld_seq(&g);
        for nb in [1, 2, 3, 5, 10] {
            let out = LdGpu::new(LdGpuConfig::new(dgx()).devices(2).batches(nb)).run(&g);
            assert_eq!(out.matching.mate_array(), seq.mate_array(), "{nb} batches");
            assert_eq!(out.batches, nb);
        }
    }

    #[test]
    fn maximal_certified_and_profiled() {
        let g = rmat(2048, 20_000, RmatParams::SOCIAL, 2);
        let out = LdGpu::new(LdGpuConfig::new(dgx()).devices(4)).run(&g);
        assert!(out.matching.is_maximal(&g));
        assert!(half_approx_certificate(&g, &out.matching));
        assert!(out.sim_time > 0.0);
        assert_eq!(out.profile.iterations.len(), out.iterations);
        assert!(out.profile.phases.total() > 0.0);
        // First iteration scans the most edges.
        let first = out.profile.iterations[0].edges_scanned;
        for r in &out.profile.iterations[1..] {
            assert!(r.edges_scanned <= first);
        }
    }

    #[test]
    fn metrics_track_real_work() {
        let g = urand(900, 7000, 11);
        let out = LdGpu::new(LdGpuConfig::new(dgx()).devices(4)).run(&g);
        let m = &out.metrics;
        // Edge scans: at least one full pass over the directed adjacency.
        assert!(m.counter("kernel.edges_scanned") >= g.num_directed_edges() as u64);
        // Every matched edge was committed exactly once.
        assert_eq!(m.counter("matching.edges_committed"), out.matching.cardinality() as u64);
        // Two collectives per iteration.
        assert_eq!(m.counter("comm.allreduce_calls"), 2 * out.iterations as u64);
        assert!(m.counter("comm.collective_bytes") > 0);
        // Pointers set >= matches committed * 2 (mutual pairs).
        assert!(m.counter("kernel.pointers_set") >= 2 * m.counter("matching.edges_committed"));
        assert_eq!(m.counter("driver.iterations"), out.iterations as u64);
        let occ = m.gauge("kernel.occupancy").unwrap();
        assert!((0.0..=1.0).contains(&occ));
        assert_eq!(m.gauge("driver.devices"), Some(4.0));
    }

    #[test]
    fn retirement_metric_matches_config() {
        let g = urand(700, 3500, 12);
        let on = LdGpu::new(LdGpuConfig::new(dgx())).run(&g);
        assert!(on.metrics.counter("kernel.vertices_retired") > 0);
        let cfg = LdGpuConfig { retire_exhausted: false, ..LdGpuConfig::new(dgx()) };
        let off = LdGpu::new(cfg).run(&g);
        assert_eq!(off.metrics.counter("kernel.vertices_retired"), 0);
    }

    #[test]
    fn single_device_has_no_wire_traffic() {
        let g = urand(300, 1200, 13);
        let out = LdGpu::new(LdGpuConfig::new(dgx()).devices(1)).run(&g);
        assert_eq!(out.metrics.counter("comm.collective_bytes"), 0);
        assert_eq!(out.metrics.counter("comm.allreduce_calls"), 2 * out.iterations as u64);
    }

    #[test]
    fn tight_memory_forces_batches() {
        let g = urand(2000, 30_000, 3);
        // Shrink device memory to ~1/3 of the single-batch footprint.
        let part = Partition::edge_balanced(&g, 1);
        let single = memory::device_footprint_bytes(
            &batch::make_batches(&g, &part.parts[0], 1),
            g.num_vertices(),
        );
        let platform = dgx().with_device_memory(single * 2 / 5);
        let out = LdGpu::new(LdGpuConfig::new(platform)).run(&g);
        assert!(out.batches > 1, "expected batching, got {}", out.batches);
        assert_eq!(out.matching.mate_array(), ld_seq(&g).mate_array());
    }

    #[test]
    fn infeasible_memory_errors() {
        let g = urand(1000, 5000, 4);
        // Global arrays alone exceed memory.
        let platform = dgx().with_device_memory(100);
        let err = LdGpu::new(LdGpuConfig::new(platform)).try_run(&g).unwrap_err();
        assert!(matches!(err, LdGpuError::OutOfMemory { .. }));
    }

    #[test]
    fn explicit_batch_plan_too_large_errors() {
        let g = urand(1000, 20_000, 5);
        let part = Partition::edge_balanced(&g, 1);
        let single = memory::device_footprint_bytes(
            &batch::make_batches(&g, &part.parts[0], 1),
            g.num_vertices(),
        );
        let platform = dgx().with_device_memory(single / 2);
        let err = LdGpu::new(LdGpuConfig::new(platform).batches(1)).try_run(&g).unwrap_err();
        assert!(matches!(err, LdGpuError::BatchPlanTooLarge { .. }));
    }

    #[test]
    fn more_devices_do_not_increase_iterations() {
        let g = urand(1500, 12_000, 6);
        let a = LdGpu::new(LdGpuConfig::new(dgx()).devices(1)).run(&g);
        let b = LdGpu::new(LdGpuConfig::new(dgx()).devices(8)).run(&g);
        assert_eq!(a.iterations, b.iterations, "iteration count is algorithm-determined");
    }

    #[test]
    fn devices_clamped_to_platform() {
        let g = urand(200, 800, 7);
        let out = LdGpu::new(LdGpuConfig::new(dgx()).devices(64)).run(&g);
        assert_eq!(out.devices, 8);
    }

    #[test]
    fn empty_graph_terminates_immediately() {
        let g = CsrGraph::empty(100);
        let out = LdGpu::new(LdGpuConfig::new(dgx())).run(&g);
        assert_eq!(out.iterations, 0);
        assert_eq!(out.matching.cardinality(), 0);
    }
}

#[cfg(test)]
mod trace_tests {
    use super::*;
    use ldgm_gpusim::{EventKind, Platform};
    use ldgm_graph::gen::urand;

    #[test]
    fn trace_records_expected_event_kinds() {
        let g = urand(800, 6400, 1);
        let out =
            LdGpu::new(LdGpuConfig::new(Platform::dgx_a100()).devices(2).batches(4).with_trace())
                .run(&g);
        let trace = out.trace.expect("trace requested");
        let kinds: Vec<EventKind> =
            [EventKind::H2dCopy, EventKind::Kernel, EventKind::Collective, EventKind::HostSync]
                .into_iter()
                .filter(|k| trace.events.iter().any(|e| e.kind == *k))
                .collect();
        assert_eq!(kinds.len(), 4, "4-batch run must exercise every event kind");
        // Two collectives per iteration, recorded once per device.
        let collectives = trace.events.iter().filter(|e| e.kind == EventKind::Collective).count();
        assert_eq!(collectives, 2 * out.iterations * out.devices);
        // The trace horizon matches the simulated time.
        let (_, hi) = trace.span().unwrap();
        assert!((hi - out.sim_time).abs() < 1e-12);
        // Gantt rendering works on real traces.
        assert!(trace.render_gantt(80).contains("dev0"));
    }

    #[test]
    fn trace_off_by_default() {
        let g = urand(100, 400, 2);
        let out = LdGpu::new(LdGpuConfig::new(Platform::dgx_a100())).run(&g);
        assert!(out.trace.is_none());
    }
}

#[cfg(test)]
mod opt_tests {
    use super::*;
    use crate::ld_seq::ld_seq;
    use ldgm_gpusim::Platform;
    use ldgm_graph::gen::{rmat, urand, RmatParams};
    use ldgm_graph::GraphBuilder;

    fn dgx() -> Platform {
        Platform::dgx_a100()
    }

    #[test]
    fn every_toggle_combination_matches_ld_seq() {
        let g = rmat(512, 4000, RmatParams::GAP_KRON, 21);
        let seq = ld_seq(&g);
        for mask in 0u8..16 {
            for ndev in [1, 4] {
                let cfg = LdGpuConfig::new(dgx())
                    .devices(ndev)
                    .with_sorted_index(mask & 1 != 0)
                    .with_frontier(mask & 2 != 0)
                    .with_sparse_collectives(mask & 4 != 0)
                    .with_overlap(mask & 8 != 0);
                let out = LdGpu::new(cfg).run(&g);
                assert_eq!(
                    out.matching.mate_array(),
                    seq.mate_array(),
                    "toggles {mask:04b}, {ndev} devices"
                );
            }
        }
    }

    #[test]
    fn opt_iteration_count_matches_default() {
        let g = urand(700, 4200, 22);
        let def = LdGpu::new(LdGpuConfig::new(dgx()).devices(2)).run(&g);
        let opt = LdGpu::new(LdGpuConfig::new(dgx()).devices(2).optimized()).run(&g);
        assert_eq!(opt.iterations, def.iterations);
        assert_eq!(opt.matching.mate_array(), def.matching.mate_array());
    }

    #[test]
    fn opt_reduces_simulated_time_and_work() {
        let g = rmat(4096, 40_000, RmatParams::SOCIAL, 23);
        let def = LdGpu::new(LdGpuConfig::new(dgx()).devices(4)).run(&g);
        let opt = LdGpu::new(LdGpuConfig::new(dgx()).devices(4).optimized()).run(&g);
        assert_eq!(opt.matching.mate_array(), def.matching.mate_array());
        assert!(opt.sim_time < def.sim_time, "opt {} vs default {}", opt.sim_time, def.sim_time);
        assert!(
            opt.metrics.counter("kernel.edges_scanned")
                < def.metrics.counter("kernel.edges_scanned")
        );
        assert!(
            opt.metrics.counter("comm.collective_bytes")
                < def.metrics.counter("comm.collective_bytes")
        );
        assert!(opt.metrics.counter("opt.edges_skipped") > 0, "hubs exceed one wave");
    }

    #[test]
    fn default_metrics_carry_no_opt_counters() {
        let g = urand(300, 1200, 24);
        let def = LdGpu::new(LdGpuConfig::new(dgx())).run(&g);
        assert_eq!(def.metrics.counter("opt.edges_skipped"), 0);
        assert_eq!(def.metrics.counter("opt.batches_skipped"), 0);
    }

    #[test]
    fn frontier_vertex_reenters_twice() {
        // u's target is matched away in two consecutive SETMATES rounds:
        // it0 commits x-p and r-s; it1 re-points {u,q} and commits y-q;
        // it2 re-points {u} alone and commits u-z.
        let (u, x, y, z, p, q, r, s) = (0u32, 1, 2, 3, 4, 5, 6, 7);
        let g = GraphBuilder::new(8)
            .add_edge(u, x, 5.0)
            .add_edge(u, y, 4.0)
            .add_edge(u, z, 3.0)
            .add_edge(x, p, 9.5)
            .add_edge(y, q, 8.0)
            .add_edge(q, r, 9.0)
            .add_edge(r, s, 10.0)
            .build();
        let seq = ld_seq(&g);
        let out = LdGpu::new(LdGpuConfig::new(dgx()).with_frontier(true)).run(&g);
        assert_eq!(out.iterations, 3);
        assert_eq!(out.matching.cardinality(), 4);
        assert_eq!(out.matching.mate_array(), seq.mate_array());
        let def = LdGpu::new(LdGpuConfig::new(dgx())).run(&g);
        assert_eq!(def.iterations, 3);
        assert_eq!(def.matching.mate_array(), out.matching.mate_array());
    }

    #[test]
    fn frontier_vertex_with_matched_target_retires() {
        // Path a-b-c: it0 commits b-c; a's pointer target is matched away,
        // a re-enters the frontier, finds nothing available, and retires.
        // (A *pointed-at* vertex can never retire while an available vertex
        // points at it — the pointing vertex is its available neighbor —
        // so the realizable edge case is the pointing side retiring.)
        let g = GraphBuilder::new(3).add_edge(0, 1, 1.0).add_edge(1, 2, 5.0).build();
        let out = LdGpu::new(LdGpuConfig::new(dgx()).with_frontier(true)).run(&g);
        let def = LdGpu::new(LdGpuConfig::new(dgx())).run(&g);
        assert_eq!(out.matching.mate_array(), def.matching.mate_array());
        assert_eq!(out.iterations, def.iterations);
        assert_eq!(out.metrics.counter("kernel.vertices_retired"), 1, "vertex 0 retires");
        assert_eq!(def.metrics.counter("kernel.vertices_retired"), 1);
    }

    #[test]
    fn empty_frontier_terminates_without_confirming_scan() {
        // Single edge: everything matches in it0. The frontier mode sees an
        // empty worklist and stops; the default pays one more full scan to
        // observe pointers_set == 0. Same matching, same iteration count,
        // strictly less simulated time.
        let g = GraphBuilder::new(2).add_edge(0, 1, 7.0).build();
        let opt = LdGpu::new(LdGpuConfig::new(dgx()).with_frontier(true)).run(&g);
        let def = LdGpu::new(LdGpuConfig::new(dgx())).run(&g);
        assert_eq!(opt.iterations, 1);
        assert_eq!(def.iterations, 1);
        assert_eq!(opt.matching.mate_array(), def.matching.mate_array());
        assert!(opt.sim_time < def.sim_time, "opt {} vs default {}", opt.sim_time, def.sim_time);
    }

    #[test]
    fn frontier_skips_empty_batches() {
        // Many batches, tiny late-round frontier: most batch launches are
        // skipped outright and the counter records it.
        let g = rmat(1024, 8000, RmatParams::GAP_KRON, 25);
        let out = LdGpu::new(LdGpuConfig::new(dgx()).batches(6).with_frontier(true)).run(&g);
        let def = LdGpu::new(LdGpuConfig::new(dgx()).batches(6)).run(&g);
        assert_eq!(out.matching.mate_array(), def.matching.mate_array());
        assert!(out.iterations > 1, "need a frontier round to exercise skipping");
        assert!(out.metrics.counter("opt.batches_skipped") > 0);
    }

    #[test]
    fn sparse_collectives_cut_wire_bytes_only() {
        let g = urand(1000, 8000, 26);
        let def = LdGpu::new(LdGpuConfig::new(dgx()).devices(4)).run(&g);
        let opt =
            LdGpu::new(LdGpuConfig::new(dgx()).devices(4).with_sparse_collectives(true)).run(&g);
        assert_eq!(opt.matching.mate_array(), def.matching.mate_array());
        assert_eq!(
            opt.metrics.counter("comm.allreduce_calls"),
            def.metrics.counter("comm.allreduce_calls"),
            "same number of collectives, smaller payloads"
        );
        assert!(
            opt.metrics.counter("comm.collective_bytes")
                < def.metrics.counter("comm.collective_bytes")
        );
        assert_eq!(
            opt.metrics.counter("kernel.edges_scanned"),
            def.metrics.counter("kernel.edges_scanned"),
            "sparse collectives leave kernel work untouched"
        );
    }

    #[test]
    fn default_mode_skips_empty_batches() {
        // 8 batches over a 5-vertex partition: the trailing batch ranges
        // are necessarily empty. They used to bill an h2d copy + host
        // sync each; now they are skipped outright and counted.
        let g = urand(5, 10, 41);
        let seq = ld_seq(&g);
        let out = LdGpu::new(LdGpuConfig::new(dgx()).batches(8)).run(&g);
        assert_eq!(out.matching.mate_array(), seq.mate_array());
        assert!(
            out.metrics.counter("opt.batches_skipped") >= 3,
            "at most 5 of 8 batch ranges can be non-empty"
        );
    }

    #[test]
    fn opt_with_retirement_disabled_matches_default() {
        let g = urand(600, 3600, 27);
        let mk = |opt: bool| {
            let mut cfg = LdGpuConfig::new(dgx()).devices(2);
            cfg.retire_exhausted = false;
            if opt {
                cfg = cfg.optimized();
            }
            LdGpu::new(cfg).run(&g)
        };
        let def = mk(false);
        let opt = mk(true);
        assert_eq!(opt.matching.mate_array(), def.matching.mate_array());
        assert_eq!(opt.iterations, def.iterations);
    }
}

#[cfg(test)]
mod overlap_tests {
    use super::*;
    use crate::ld_seq::ld_seq;
    use ldgm_gpusim::Platform;
    use ldgm_graph::gen::{rmat, urand, RmatParams};
    use ldgm_graph::GraphBuilder;

    fn dgx() -> Platform {
        Platform::dgx_a100()
    }

    /// A hub graph edge-balanced partitioning cannot balance: vertex 0
    /// carries `leaves` edges that all land on device 0, so its pointing
    /// kernel runs long after every other device has drained.
    fn hub_graph(leaves: u32) -> ldgm_graph::csr::CsrGraph {
        let mut b = GraphBuilder::new(leaves as usize + 1);
        for v in 1..=leaves {
            b = b.add_edge(0, v, 1.0 + (v % 97) as f64);
        }
        b.build()
    }

    #[test]
    fn overlap_matches_ld_seq_across_devices() {
        let g = rmat(1024, 8000, RmatParams::GAP_KRON, 31);
        let seq = ld_seq(&g);
        for ndev in [1, 2, 4, 8] {
            let out = LdGpu::new(LdGpuConfig::new(dgx()).devices(ndev).with_overlap(true)).run(&g);
            assert_eq!(out.matching.mate_array(), seq.mate_array(), "{ndev} devices");
        }
    }

    #[test]
    fn overlap_hides_communication_under_imbalance() {
        // The hub warp scans 1M edges serially (~500 µs straggler), far
        // past the chunked-op chain (~100 µs of NCCL launch+latency), so
        // the leaf-device slices reduce entirely under the hub kernel and
        // only the hub's own tiny slice stays exposed.
        let g = hub_graph(1_000_000);
        let ser = LdGpu::new(LdGpuConfig::new(dgx()).devices(4)).run(&g);
        let ovl = LdGpu::new(LdGpuConfig::new(dgx()).devices(4).with_overlap(true)).run(&g);
        assert_eq!(ovl.matching.mate_array(), ser.matching.mate_array());
        assert_eq!(ovl.iterations, ser.iterations);
        // Same wire traffic either way; only its placement changes.
        assert_eq!(
            ovl.metrics.counter("comm.collective_bytes"),
            ser.metrics.counter("comm.collective_bytes")
        );
        let e_ser = ser.metrics.gauge("comm.exposed_time").unwrap();
        let e_ovl = ovl.metrics.gauge("comm.exposed_time").unwrap();
        assert!(e_ovl < e_ser, "exposed {e_ovl} vs serialized {e_ser}");
        assert!(ovl.metrics.gauge("comm.hidden_time").unwrap() > 0.0);
        assert_eq!(ser.metrics.gauge("comm.hidden_time"), Some(0.0));
        assert!(ovl.sim_time < ser.sim_time, "ovl {} vs ser {}", ovl.sim_time, ser.sim_time);
    }

    #[test]
    fn overlap_composes_with_opt_toggles() {
        let g = hub_graph(2000);
        let seq = ld_seq(&g);
        let ovl =
            LdGpu::new(LdGpuConfig::new(dgx()).devices(4).optimized().with_overlap(true)).run(&g);
        assert_eq!(ovl.matching.mate_array(), seq.mate_array());
        let occ = ovl.metrics.gauge("stream.occupancy").unwrap();
        assert!((0.0..=1.0).contains(&occ), "occupancy {occ}");
    }

    #[test]
    fn overlap_single_device_keeps_invariants() {
        let g = urand(500, 3000, 33);
        let out = LdGpu::new(LdGpuConfig::new(dgx()).devices(1).with_overlap(true)).run(&g);
        assert_eq!(out.matching.mate_array(), ld_seq(&g).mate_array());
        assert_eq!(out.metrics.counter("comm.collective_bytes"), 0);
        assert!((out.profile.phases.total() - out.sim_time).abs() <= 1e-9 * out.sim_time.max(1.0));
    }

    #[test]
    fn overlap_preserves_phase_accounting() {
        let g = hub_graph(3000);
        let out =
            LdGpu::new(LdGpuConfig::new(dgx()).devices(4).with_overlap(true).with_trace()).run(&g);
        assert!((out.profile.phases.total() - out.sim_time).abs() <= 1e-9 * out.sim_time.max(1.0));
        let trace = out.trace.expect("trace requested");
        let (_, hi) = trace.span().unwrap();
        assert!((hi - out.sim_time).abs() < 1e-12);
    }
}

#[cfg(test)]
mod streaming_tests {
    use super::*;
    use crate::ld_seq::ld_seq;
    use ldgm_gpusim::Platform;
    use ldgm_graph::gen::{rmat, urand, RmatParams};
    use ldgm_graph::BandLayout;

    fn dgx() -> Platform {
        Platform::dgx_a100()
    }

    #[test]
    fn streaming_matches_ld_seq_across_windows_and_devices() {
        let g = rmat(1024, 8000, RmatParams::GAP_KRON, 51);
        let seq = ld_seq(&g);
        for ndev in [1, 2, 4] {
            for w in [2, 3, 8] {
                let cfg = LdGpuConfig::new(dgx())
                    .devices(ndev)
                    .with_streaming(true)
                    .with_stream_window(w);
                let out = LdGpu::new(cfg).run(&g);
                assert_eq!(
                    out.matching.mate_array(),
                    seq.mate_array(),
                    "{ndev} devices, window {w}"
                );
            }
        }
    }

    #[test]
    fn tight_budget_streams_many_bands_bit_identically() {
        let g = urand(500, 5000, 52);
        let seq = ld_seq(&g);
        // Just above the narrowest feasible pipeline: single-rank bands.
        let narrowest = BandLayout::new(&g, 0, 500, 1).band_bytes(&g, 0);
        let budget = memory::global_state_bytes(500) + 2 * narrowest + 1024;
        let cfg = LdGpuConfig::new(dgx()).with_streaming(true).with_mem_budget(budget);
        let out = LdGpu::new(cfg).run(&g);
        assert_eq!(out.matching.mate_array(), seq.mate_array());
        assert!(out.batches > 1, "tight budget must force multiple bands, got {}", out.batches);
        assert!(out.metrics.counter(names::MEM_EVICTIONS) > 0, "matched vertices must evict");
        let high_water = out.metrics.gauge(names::MEM_RESIDENT_BYTES).unwrap();
        assert!(high_water <= budget as f64, "residency {high_water} over budget {budget}");
    }

    #[test]
    fn streaming_completes_where_whole_graph_refuses() {
        let g = urand(2000, 30_000, 53);
        // ~40% of the single-batch footprint: the whole-graph plan
        // refuses, streaming finishes with the same matching.
        let part = Partition::edge_balanced(&g, 1);
        let single =
            memory::device_footprint_bytes(&batch::make_batches(&g, &part.parts[0], 1), 2000);
        let platform = dgx().with_device_memory(single * 2 / 5);
        let err =
            LdGpu::new(LdGpuConfig::new(platform.clone()).batches(1)).try_run(&g).unwrap_err();
        assert!(matches!(err, LdGpuError::BatchPlanTooLarge { .. }));
        let out = LdGpu::new(LdGpuConfig::new(platform).with_streaming(true)).run(&g);
        assert_eq!(out.matching.mate_array(), ld_seq(&g).mate_array());
    }

    #[test]
    fn streaming_refuses_impossible_budget() {
        let g = urand(500, 3000, 54);
        let cfg = LdGpuConfig::new(dgx()).with_streaming(true).with_mem_budget(100);
        let err = LdGpu::new(cfg).try_run(&g).unwrap_err();
        assert!(matches!(err, LdGpuError::StreamPlanTooLarge { window: 2, .. }), "{err:?}");
        assert!(err.to_string().contains("streaming window"));
    }

    #[test]
    fn streaming_composes_with_opt_and_overlap() {
        let g = rmat(512, 4000, RmatParams::GAP_KRON, 55);
        let seq = ld_seq(&g);
        for mask in 0u8..8 {
            let cfg = LdGpuConfig::new(dgx())
                .devices(2)
                .with_streaming(true)
                .with_frontier(mask & 1 != 0)
                .with_sparse_collectives(mask & 2 != 0)
                .with_overlap(mask & 4 != 0);
            let out = LdGpu::new(cfg).run(&g);
            assert_eq!(out.matching.mate_array(), seq.mate_array(), "toggles {mask:03b}");
        }
    }

    #[test]
    fn prefetch_time_hides_behind_band_kernels() {
        // Heavy graph + tight budget: many bands stream per iteration, so
        // the copy of band b+1 runs under the kernel of band b and a
        // nonzero share of prefetch time must be hidden.
        let g = rmat(4096, 60_000, RmatParams::SOCIAL, 56);
        let n = g.num_vertices();
        let narrowest = BandLayout::new(&g, 0, n as u32, 1).band_bytes(&g, 0);
        let budget = memory::global_state_bytes(n) + 2 * narrowest + 4096;
        let cfg = LdGpuConfig::new(dgx()).with_streaming(true).with_mem_budget(budget);
        let out = LdGpu::new(cfg).run(&g);
        assert_eq!(out.matching.mate_array(), ld_seq(&g).mate_array());
        let hidden = out.metrics.gauge(names::COPY_PREFETCH_HIDDEN_TIME).unwrap();
        let exposed = out.metrics.gauge(names::COPY_PREFETCH_EXPOSED_TIME).unwrap();
        assert!(hidden > 0.0, "no prefetch time hidden (exposed {exposed})");
        assert!(exposed >= 0.0);
    }

    #[test]
    fn resident_window_cuts_second_iteration_copies() {
        // With everything resident (wide budget → one band), iterations
        // after the first re-bill nothing: total h2d traffic equals one
        // band-0 load, not one per iteration.
        let g = urand(800, 6400, 57);
        let out = LdGpu::new(LdGpuConfig::new(dgx()).with_streaming(true).with_trace()).run(&g);
        assert!(out.iterations > 1, "need a multi-iteration run");
        assert_eq!(out.batches, 1, "wide budget should take one band");
        let trace = out.trace.expect("trace requested");
        let copies =
            trace.events.iter().filter(|e| e.kind == ldgm_gpusim::EventKind::H2dCopy).count();
        assert_eq!(copies, 1, "only the first iteration streams the resident band");
    }
}

#[cfg(test)]
mod cluster_tests {
    use super::*;
    use crate::ld_seq::ld_seq;
    use ldgm_gpusim::Platform;
    use ldgm_graph::gen::{rmat, RmatParams};

    fn graph() -> CsrGraph {
        rmat(2048, 16_000, RmatParams::GAP_KRON, 17)
    }

    #[test]
    fn cluster_runs_match_single_node_and_ld_seq_bit_for_bit() {
        // The placement and the hierarchical schedule are billing-layer:
        // flat single-node, hierarchical cluster, and topology-aware
        // cluster runs all produce the same matching.
        let g = graph();
        let seq = ld_seq(&g);
        let cluster = Platform::dgx_a100_cluster(2);
        for cfg in [
            LdGpuConfig::new(Platform::dgx_a100()).devices(8),
            LdGpuConfig::new(cluster.clone()).devices(16),
            LdGpuConfig::new(cluster.clone()).devices(16).with_topology_placement(true),
            LdGpuConfig::new(cluster.clone().flattened()).devices(16),
        ] {
            let out = LdGpu::new(cfg).run(&g);
            assert_eq!(out.matching.mate_array(), seq.mate_array());
        }
    }

    #[test]
    fn hierarchical_collectives_beat_the_flattened_cluster() {
        let g = graph();
        let cluster = Platform::dgx_a100_cluster(2);
        let hier = LdGpu::new(LdGpuConfig::new(cluster.clone()).devices(16)).run(&g);
        let flat = LdGpu::new(LdGpuConfig::new(cluster.flattened()).devices(16)).run(&g);
        assert_eq!(hier.matching.mate_array(), flat.matching.mate_array());
        assert!(
            hier.sim_time <= flat.sim_time * (1.0 + 1e-12),
            "hierarchical {} vs flattened {}",
            hier.sim_time,
            flat.sim_time
        );
        assert_eq!(hier.metrics.gauge("cluster.nodes"), Some(2.0));
        assert!(hier.metrics.counter("comm.inter_node_bytes") > 0);
    }

    #[test]
    fn topology_placement_reduces_exposed_inter_node_time() {
        let g = graph();
        let cluster = Platform::dgx_a100_cluster(2);
        let hier = LdGpu::new(LdGpuConfig::new(cluster.clone()).devices(16)).run(&g);
        let aware =
            LdGpu::new(LdGpuConfig::new(cluster).devices(16).with_topology_placement(true)).run(&g);
        assert_eq!(aware.matching.mate_array(), hier.matching.mate_array());
        // The boundary fraction < 1 shrinks the leader-ring payload.
        let frac = aware.metrics.gauge("part.boundary_fraction").unwrap();
        assert!((0.0..=1.0).contains(&frac), "boundary fraction {frac}");
        let t_hier = hier.metrics.gauge("comm.inter_time").unwrap();
        let t_aware = aware.metrics.gauge("comm.inter_time").unwrap();
        assert!(t_aware <= t_hier * (1.0 + 1e-12), "aware {t_aware} vs hier {t_hier}");
        assert!(aware.sim_time <= hier.sim_time * (1.0 + 1e-12));
    }

    #[test]
    fn cluster_cut_gauges_are_fractions() {
        let g = graph();
        let out = LdGpu::new(
            LdGpuConfig::new(Platform::dgx_a100_cluster(2))
                .devices(16)
                .with_topology_placement(true),
        )
        .run(&g);
        let cut = out.metrics.gauge("part.inter_node_cut").unwrap();
        assert!((0.0..=1.0).contains(&cut), "cut {cut}");
        // Single-node prefixes of a cluster stay flat: no cluster gauges.
        let one = LdGpu::new(LdGpuConfig::new(Platform::dgx_a100_cluster(2)).devices(8)).run(&g);
        assert_eq!(one.metrics.gauge("part.inter_node_cut"), None);
        assert_eq!(one.metrics.counter("comm.inter_node_bytes"), 0);
    }
}

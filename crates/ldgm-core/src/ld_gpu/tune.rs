//! Self-tuning configuration planner for the LD-GPU driver.
//!
//! The driver exposes a grid of billing-preserving knobs — batch count
//! (which is also the overlap chunk count: one comm chunk per batch),
//! the three kernel-path optimization toggles (sorted index, frontier,
//! sparse collectives), and communication overlap — whose best
//! combination depends on the dataset's degree structure and the
//! platform's memory/bandwidth balance. [`auto_tune`] searches that grid
//! by *probing*: each candidate runs only a few matching iterations
//! ([`LdGpuConfig::probe_iterations`]) and is ranked by the simulated
//! time of that prefix, which is where the per-iteration structure
//! (scan cost, collective payload, exposed wire time) already shows.
//!
//! The probe ranking then picks a shortlist that is run to completion
//! **together with the caller's base configuration**, and the locked
//! config is the full-run winner — so the tuned result is never slower
//! (in simulated time) than the defaults it replaces, by construction.
//! Every candidate varies only billing/schedule knobs; the matching
//! stays bit-identical across the whole grid, so tuning never changes
//! the answer, only its cost.
//!
//! The search is fully deterministic: a fixed candidate order, exact
//! simulated times, and first-wins tie-breaking mean re-tuning the same
//! graph on the same platform always locks the same config.

use ldgm_graph::csr::CsrGraph;

use super::{LdGpu, LdGpuConfig, LdGpuError};

/// Knobs of the tuning search itself (not of the tuned config).
#[derive(Clone, Debug)]
pub struct TuneOptions {
    /// Matching iterations per probe run (default 3 — enough to price
    /// the steady-state iteration mix without paying for convergence).
    pub probe_iterations: usize,
    /// Batch counts to try; `None` is the driver's auto (minimal) plan.
    /// Ignored when the base config streams (the band walk has no batch
    /// knob; the window axis below replaces it).
    pub batch_counts: Vec<Option<usize>>,
    /// Streaming windows to try when the base config has `streaming` on;
    /// `None` is the driver's default (2 bands). Replaces the batch axis
    /// so the grid keeps the same size either way.
    pub stream_windows: Vec<Option<usize>>,
    /// Probe-ranked candidates promoted to full runs alongside the base
    /// config (default 2).
    pub shortlist: usize,
}

impl Default for TuneOptions {
    fn default() -> Self {
        TuneOptions {
            probe_iterations: 3,
            batch_counts: vec![None, Some(2), Some(4), Some(8)],
            stream_windows: vec![None, Some(3), Some(4), Some(8)],
            shortlist: 2,
        }
    }
}

/// One probed candidate, for reporting.
#[derive(Clone, Debug)]
pub struct ProbeRecord {
    /// Human-readable knob summary (see [`describe_knobs`]).
    pub knobs: String,
    /// Simulated seconds of the probe prefix.
    pub probe_time: f64,
}

/// The tuner's verdict.
#[derive(Clone, Debug)]
pub struct TuneReport {
    /// The locked configuration: full-run winner among the probe
    /// shortlist and the base config, with the caller's collection
    /// flags restored and `probe_iterations` cleared.
    pub config: LdGpuConfig,
    /// Full-run simulated seconds of the locked config.
    pub sim_time: f64,
    /// Full-run simulated seconds of the base config. Invariant:
    /// `sim_time <= base_sim_time`.
    pub base_sim_time: f64,
    /// Candidates probed (infeasible batch plans are skipped silently).
    pub candidates: usize,
    /// The probe shortlist that went to full runs, best first.
    pub shortlist: Vec<ProbeRecord>,
}

impl TuneReport {
    /// Whether tuning found a strictly faster config than the base.
    pub fn improved(&self) -> bool {
        self.sim_time < self.base_sim_time
    }

    /// Knob summary of the locked config.
    pub fn knobs(&self) -> String {
        describe_knobs(&self.config)
    }
}

/// Compact `batches=.. sorted=.. frontier=.. sparse=.. overlap=..`
/// summary of a config's tuned knobs; streaming configs append
/// ` stream=on window=..` (and drive the window, not the batch count).
pub fn describe_knobs(cfg: &LdGpuConfig) -> String {
    let onoff = |b: bool| if b { "on" } else { "off" };
    let mut s = format!(
        "batches={} sorted={} frontier={} sparse={} overlap={}",
        cfg.batches.map_or("auto".to_string(), |b| b.to_string()),
        onoff(cfg.sorted_index),
        onoff(cfg.frontier),
        onoff(cfg.sparse_collectives),
        onoff(cfg.overlap),
    );
    if cfg.streaming {
        s.push_str(&format!(
            " stream=on window={}",
            cfg.stream_window.map_or("auto".to_string(), |w| w.to_string())
        ));
    }
    s
}

/// The candidate grid seeded from `base`: every combination of the three
/// optimization toggles (frontier combos are dropped when the base
/// disables retirement, which the frontier requires) × overlap on/off ×
/// the option's batch counts — or, when the base streams, the option's
/// window sizes (batches have no effect on the band walk, so the window
/// replaces that axis and the grid keeps its shape). Order is
/// deterministic.
fn candidates(base: &LdGpuConfig, opts: &TuneOptions) -> Vec<LdGpuConfig> {
    let streaming = base.streaming;
    let batch_axis: &[Option<usize>] = if streaming { &[None] } else { &opts.batch_counts };
    let window_axis: &[Option<usize>] = if streaming { &opts.stream_windows } else { &[None] };
    let mut out = Vec::new();
    for toggle_bits in 0..8u32 {
        let sorted = toggle_bits & 1 != 0;
        let frontier = toggle_bits & 2 != 0;
        let sparse = toggle_bits & 4 != 0;
        if frontier && !base.retire_exhausted {
            continue;
        }
        for &overlap in &[false, true] {
            for &batches in batch_axis {
                for &window in window_axis {
                    let mut c = base.clone();
                    c.sorted_index = sorted;
                    c.frontier = frontier;
                    c.sparse_collectives = sparse;
                    c.overlap = overlap;
                    if streaming {
                        c.stream_window = window;
                    } else {
                        c.batches = batches;
                    }
                    out.push(c);
                }
            }
        }
    }
    out
}

/// Strip observability from a config so probe/comparison runs price only
/// the algorithm.
fn quiet(mut cfg: LdGpuConfig) -> LdGpuConfig {
    cfg.collect_iterations = false;
    cfg.collect_trace = false;
    cfg
}

/// Tune with default [`TuneOptions`].
pub fn auto_tune(g: &CsrGraph, base: &LdGpuConfig) -> Result<TuneReport, LdGpuError> {
    auto_tune_with(g, base, &TuneOptions::default())
}

/// Search the (batches × toggles × overlap) grid on `g`, probing each
/// candidate for `opts.probe_iterations` iterations, then lock the
/// full-run winner among the probe shortlist and `base` itself.
///
/// Errors only if the *base* config cannot run at all (e.g. its fixed
/// batch plan overflows device memory); infeasible candidates are
/// skipped. The locked config keeps `base`'s platform, devices, and
/// collection flags — only the tuned knobs differ.
pub fn auto_tune_with(
    g: &CsrGraph,
    base: &LdGpuConfig,
    opts: &TuneOptions,
) -> Result<TuneReport, LdGpuError> {
    let probe_k = opts.probe_iterations.max(1);
    let mut probed: Vec<(f64, usize, LdGpuConfig)> = Vec::new();
    let mut candidates_run = 0usize;
    for (i, cand) in candidates(base, opts).into_iter().enumerate() {
        let mut probe_cfg = quiet(cand.clone());
        probe_cfg.probe_iterations = Some(probe_k);
        let Ok(out) = LdGpu::new(probe_cfg).try_run(g) else {
            continue; // infeasible batch plan on this platform
        };
        candidates_run += 1;
        probed.push((out.sim_time, i, cand));
    }
    // Rank by probe time; candidate order breaks exact ties, so the
    // search is reproducible run to run.
    probed.sort_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
    probed.truncate(opts.shortlist.max(1));

    // Full runs: the base config first (its time is the floor the locked
    // config must beat or match), then the shortlist in probe order.
    let base_time = LdGpu::new(quiet(base.clone())).try_run(g)?.sim_time;
    let mut best_cfg = base.clone();
    let mut best_time = base_time;
    let mut shortlist = Vec::new();
    for (probe_time, _, cand) in probed {
        shortlist.push(ProbeRecord { knobs: describe_knobs(&cand), probe_time });
        let Ok(out) = LdGpu::new(quiet(cand.clone())).try_run(g) else {
            continue;
        };
        // Strict improvement only: ties keep the earlier (or base)
        // config, which also makes re-tuning deterministic.
        if out.sim_time < best_time {
            best_time = out.sim_time;
            best_cfg = cand;
        }
    }

    best_cfg.probe_iterations = None;
    best_cfg.collect_iterations = base.collect_iterations;
    best_cfg.collect_trace = base.collect_trace;
    Ok(TuneReport {
        config: best_cfg,
        sim_time: best_time,
        base_sim_time: base_time,
        candidates: candidates_run,
        shortlist,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldgm_gpusim::Platform;
    use ldgm_graph::gen::{rmat, urand, RmatParams};

    fn small_opts() -> TuneOptions {
        TuneOptions {
            probe_iterations: 2,
            batch_counts: vec![None, Some(2)],
            stream_windows: vec![None, Some(4)],
            shortlist: 2,
        }
    }

    #[test]
    fn tuned_never_slower_and_matching_identical() {
        let g = rmat(2_000, 16_000, RmatParams::GAP_KRON, 11);
        let base = LdGpuConfig::new(Platform::dgx_a100()).devices(2);
        let report = auto_tune_with(&g, &base, &small_opts()).unwrap();
        assert!(report.sim_time <= report.base_sim_time, "{report:?}");
        assert!(report.candidates > 0);
        assert!(report.config.probe_iterations.is_none());

        // Same matching bits under the locked config as under the base.
        let tuned = LdGpu::new(report.config.clone()).run(&g);
        let default = LdGpu::new(base).run(&g);
        assert_eq!(tuned.matching.mate_array(), default.matching.mate_array());
    }

    #[test]
    fn retuning_is_deterministic() {
        let g = urand(1_500, 9_000, 7);
        let base = LdGpuConfig::new(Platform::dgx2()).devices(2);
        let a = auto_tune_with(&g, &base, &small_opts()).unwrap();
        let b = auto_tune_with(&g, &base, &small_opts()).unwrap();
        assert_eq!(a.knobs(), b.knobs());
        assert_eq!(a.sim_time, b.sim_time);
        assert_eq!(a.base_sim_time, b.base_sim_time);
        assert_eq!(a.candidates, b.candidates);
    }

    #[test]
    fn respects_retirement_constraint() {
        let base = LdGpuConfig::new(Platform::dgx_a100());
        let no_retire = LdGpuConfig { retire_exhausted: false, ..base.clone() };
        let opts = TuneOptions::default();
        assert!(candidates(&no_retire, &opts).iter().all(|c| !c.frontier));
        assert!(candidates(&base, &opts).iter().any(|c| c.frontier));
        // The grid is 8 toggle combos x 2 overlap x |batch_counts|,
        // halved when the frontier combos drop out.
        assert_eq!(candidates(&base, &opts).len(), 8 * 2 * opts.batch_counts.len());
        assert_eq!(candidates(&no_retire, &opts).len(), 4 * 2 * opts.batch_counts.len());
    }

    #[test]
    fn streaming_base_tunes_the_window_axis() {
        let base = LdGpuConfig::new(Platform::dgx_a100()).with_streaming(true);
        let opts = TuneOptions::default();
        let grid = candidates(&base, &opts);
        // Same grid shape as the batch search: the window axis replaces
        // the batch axis one for one.
        assert_eq!(grid.len(), 8 * 2 * opts.stream_windows.len());
        assert!(grid.iter().all(|c| c.streaming && c.batches == base.batches));
        assert!(grid.iter().any(|c| c.stream_window == Some(8)));

        // End to end: tuning a streaming base stays streaming, never
        // slower, and bit-identical.
        let g = urand(1_200, 8_000, 19);
        let report = auto_tune_with(&g, &base, &small_opts()).unwrap();
        assert!(report.sim_time <= report.base_sim_time);
        assert!(report.config.streaming);
        let tuned = LdGpu::new(report.config.clone()).run(&g);
        let default = LdGpu::new(base).run(&g);
        assert_eq!(tuned.matching.mate_array(), default.matching.mate_array());
    }

    #[test]
    fn knob_summary_reads_back() {
        let cfg = LdGpuConfig::new(Platform::dgx_a100()).batches(4).with_overlap(true);
        assert_eq!(describe_knobs(&cfg), "batches=4 sorted=off frontier=off sparse=off overlap=on");
        let auto = LdGpuConfig::new(Platform::dgx_a100()).optimized();
        assert_eq!(
            describe_knobs(&auto),
            "batches=auto sorted=on frontier=on sparse=on overlap=off"
        );
        let streamed =
            LdGpuConfig::new(Platform::dgx_a100()).with_streaming(true).with_stream_window(4);
        assert_eq!(
            describe_knobs(&streamed),
            "batches=auto sorted=off frontier=off sparse=off overlap=off stream=on window=4"
        );
    }
}

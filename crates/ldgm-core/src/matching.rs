//! The [`Matching`] result type and the vertex/edge preference order shared
//! by every locally dominant algorithm in this crate.

use ldgm_graph::csr::{CsrGraph, VertexId, Weight};

/// Sentinel mate value: vertex is unmatched.
pub const UNMATCHED: VertexId = VertexId::MAX;

/// Total preference order on candidate edges incident to a fixed vertex:
/// prefer higher weight, break ties toward the lower neighbor id.
///
/// Every pointer-based algorithm in this crate uses this order, which makes
/// their outputs bit-identical (the cross-implementation test invariant)
/// and guarantees progress: under a total order, the globally best
/// available edge is always mutually preferred by its endpoints.
#[inline]
pub fn prefer(w_new: Weight, v_new: VertexId, w_cur: Weight, v_cur: VertexId) -> bool {
    w_new > w_cur || (w_new == w_cur && v_new < v_cur)
}

/// A matching: a set of vertex-disjoint edges, stored as a mate array.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Matching {
    mate: Vec<VertexId>,
}

impl Matching {
    /// The empty matching on `n` vertices.
    pub fn new(n: usize) -> Self {
        Matching { mate: vec![UNMATCHED; n] }
    }

    /// Wrap an existing mate array.
    ///
    /// # Panics
    /// Panics if the array is not an involution (`mate[mate[u]] == u` for
    /// every matched `u`).
    pub fn from_mate(mate: Vec<VertexId>) -> Self {
        let m = Matching { mate };
        assert!(m.is_involution(), "mate array is not a valid involution");
        m
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.mate.len()
    }

    /// Mate of `v`, if matched.
    #[inline]
    pub fn mate(&self, v: VertexId) -> Option<VertexId> {
        let m = self.mate[v as usize];
        (m != UNMATCHED).then_some(m)
    }

    /// Whether `v` is matched.
    #[inline]
    pub fn is_matched(&self, v: VertexId) -> bool {
        self.mate[v as usize] != UNMATCHED
    }

    /// Match `u` with `v`.
    ///
    /// # Panics
    /// Panics in debug builds if either endpoint is already matched to a
    /// different vertex.
    #[inline]
    pub fn join(&mut self, u: VertexId, v: VertexId) {
        debug_assert_ne!(u, v);
        debug_assert!(self.mate[u as usize] == UNMATCHED || self.mate[u as usize] == v);
        debug_assert!(self.mate[v as usize] == UNMATCHED || self.mate[v as usize] == u);
        self.mate[u as usize] = v;
        self.mate[v as usize] = u;
    }

    /// Remove the matched pair `{u, v}` (used by augmentation-based
    /// refinement).
    ///
    /// # Panics
    /// Panics in debug builds if `u` and `v` are not matched together.
    #[inline]
    pub fn unjoin(&mut self, u: VertexId, v: VertexId) {
        debug_assert_eq!(self.mate[u as usize], v);
        debug_assert_eq!(self.mate[v as usize], u);
        self.mate[u as usize] = UNMATCHED;
        self.mate[v as usize] = UNMATCHED;
    }

    /// The raw mate array.
    pub fn mate_array(&self) -> &[VertexId] {
        &self.mate
    }

    /// Number of matched edges (cardinality |M|).
    pub fn cardinality(&self) -> usize {
        self.mate.iter().filter(|&&m| m != UNMATCHED).count() / 2
    }

    /// Iterate matched edges `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.mate.iter().enumerate().filter_map(|(u, &v)| {
            (v != UNMATCHED && (u as VertexId) < v).then_some((u as VertexId, v))
        })
    }

    /// Total weight `w(M)` under graph `g`.
    ///
    /// # Panics
    /// Panics if a matched pair is not an edge of `g`.
    pub fn weight(&self, g: &CsrGraph) -> f64 {
        self.edges()
            .map(|(u, v)| {
                g.edge_weight(u, v)
                    .unwrap_or_else(|| panic!("matched pair {{{u},{v}}} is not an edge"))
            })
            .sum()
    }

    /// Whether the mate array is a consistent involution.
    fn is_involution(&self) -> bool {
        self.mate.iter().enumerate().all(|(u, &v)| {
            v == UNMATCHED
                || ((v as usize) < self.mate.len()
                    && v as usize != u
                    && self.mate[v as usize] == u as VertexId)
        })
    }

    /// Full validity check against a graph: involution, all matched pairs
    /// are edges.
    pub fn verify(&self, g: &CsrGraph) -> Result<(), String> {
        if self.mate.len() != g.num_vertices() {
            return Err(format!(
                "matching covers {} vertices, graph has {}",
                self.mate.len(),
                g.num_vertices()
            ));
        }
        if !self.is_involution() {
            return Err("mate array is not an involution".into());
        }
        for (u, v) in self.edges() {
            if !g.has_edge(u, v) {
                return Err(format!("matched pair {{{u},{v}}} is not an edge of the graph"));
            }
        }
        Ok(())
    }

    /// Whether no edge of `g` could be added (both endpoints unmatched).
    pub fn is_maximal(&self, g: &CsrGraph) -> bool {
        for u in 0..g.num_vertices() as VertexId {
            if self.is_matched(u) {
                continue;
            }
            for &v in g.neighbors(u) {
                if !self.is_matched(v) {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldgm_graph::GraphBuilder;

    fn path4() -> CsrGraph {
        GraphBuilder::new(4).add_edge(0, 1, 1.0).add_edge(1, 2, 2.0).add_edge(2, 3, 1.0).build()
    }

    #[test]
    fn prefer_orders_by_weight_then_id() {
        assert!(prefer(2.0, 5, 1.0, 0));
        assert!(!prefer(1.0, 0, 2.0, 5));
        assert!(prefer(1.0, 2, 1.0, 7));
        assert!(!prefer(1.0, 7, 1.0, 2));
        assert!(!prefer(1.0, 3, 1.0, 3));
    }

    #[test]
    fn empty_matching() {
        let m = Matching::new(4);
        assert_eq!(m.cardinality(), 0);
        assert_eq!(m.weight(&path4()), 0.0);
        assert!(!m.is_maximal(&path4()));
        assert_eq!(m.verify(&path4()), Ok(()));
    }

    #[test]
    fn join_and_accessors() {
        let mut m = Matching::new(4);
        m.join(1, 2);
        assert_eq!(m.mate(1), Some(2));
        assert_eq!(m.mate(2), Some(1));
        assert_eq!(m.mate(0), None);
        assert!(m.is_matched(1) && !m.is_matched(3));
        assert_eq!(m.cardinality(), 1);
        assert_eq!(m.edges().collect::<Vec<_>>(), vec![(1, 2)]);
        assert_eq!(m.weight(&path4()), 2.0);
        assert!(m.is_maximal(&path4()));
        assert_eq!(m.verify(&path4()), Ok(()));
    }

    #[test]
    fn verify_rejects_non_edges() {
        let mut m = Matching::new(4);
        m.join(0, 3);
        assert!(m.verify(&path4()).is_err());
    }

    #[test]
    fn verify_rejects_wrong_size() {
        let m = Matching::new(3);
        assert!(m.verify(&path4()).is_err());
    }

    #[test]
    #[should_panic(expected = "involution")]
    fn from_mate_rejects_inconsistency() {
        Matching::from_mate(vec![1, 0, 1, UNMATCHED]);
    }

    #[test]
    fn maximality_of_endpoints_matching() {
        let g = path4();
        let mut m = Matching::new(4);
        m.join(0, 1);
        // Edge {2,3} still addable.
        assert!(!m.is_maximal(&g));
        m.join(2, 3);
        assert!(m.is_maximal(&g));
    }
}

//! Parallel Suitor matching — the SR-OMP analog (Manne & Halappanavar,
//! IPDPS 2014), on rayon instead of OpenMP.
//!
//! Vertices propose concurrently. Standing offers are published through
//! atomics so scans can read them lock-free as *hints*; a proposal is
//! committed only after re-validation under the target's per-vertex lock
//! (parking_lot). Offers grow monotonically under the shared total order,
//! so a vertex that finds no admissible target never regains one and can
//! retire — the same argument that bounds the sequential algorithm's work.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

use parking_lot::Mutex;
use rayon::prelude::*;

use crate::matching::{Matching, UNMATCHED};
use ldgm_graph::csr::{CsrGraph, VertexId};

#[inline]
fn beats(w_new: f64, u_new: VertexId, w_cur: f64, u_cur: VertexId) -> bool {
    w_new > w_cur || (w_new == w_cur && u_new < u_cur)
}

/// Run parallel Suitor on `g` using the current rayon thread pool.
pub fn suitor_par(g: &CsrGraph) -> Matching {
    let n = g.num_vertices();
    let ws: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(f64::NEG_INFINITY.to_bits())).collect();
    let suitor_of: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(UNMATCHED)).collect();
    let locks: Vec<Mutex<()>> = (0..n).map(|_| Mutex::new(())).collect();

    (0..n as VertexId).into_par_iter().for_each(|start| {
        let mut u = start;
        'propose: loop {
            // Lock-free scan for the best admissible target. The pair
            // (ws, suitor_of) is published suitor-first / weight-last
            // (Release) and read weight-first (Acquire): a racing reader
            // can only pair an OLD weight with a NEW suitor id, which —
            // offers being monotone under the total order — can only
            // overestimate admissibility. False positives are re-validated
            // under the lock below; false negatives (which would make the
            // final give-up unsound and the matching non-maximal) cannot
            // occur.
            let mut best: VertexId = UNMATCHED;
            let mut best_w = f64::NEG_INFINITY;
            for (v, w) in g.edges_of(u) {
                let cur_w = f64::from_bits(ws[v as usize].load(Ordering::Acquire));
                let cur_s = suitor_of[v as usize].load(Ordering::Relaxed);
                if beats(w, u, cur_w, cur_s) && beats(w, v, best_w, best) {
                    best = v;
                    best_w = w;
                }
            }
            if best == UNMATCHED {
                return; // no admissible target now ⇒ never again (monotone)
            }
            let v = best;
            let displaced = {
                let _guard = locks[v as usize].lock();
                let cur_w = f64::from_bits(ws[v as usize].load(Ordering::Relaxed));
                let cur_s = suitor_of[v as usize].load(Ordering::Relaxed);
                if !beats(best_w, u, cur_w, cur_s) {
                    continue 'propose; // lost the race: rescan for u
                }
                // Publish suitor first, weight last (Release) — see the
                // scan above for why this order is load-bearing.
                suitor_of[v as usize].store(u, Ordering::Relaxed);
                ws[v as usize].store(best_w.to_bits(), Ordering::Release);
                cur_s
            };
            if displaced == UNMATCHED {
                return;
            }
            u = displaced; // take over the displaced vertex's proposal
        }
    });

    let suitor_final: Vec<VertexId> = suitor_of.iter().map(|a| a.load(Ordering::Relaxed)).collect();
    let mut m = Matching::new(n);
    for v in 0..n as VertexId {
        let u = suitor_final[v as usize];
        if u != UNMATCHED && u < v && suitor_final[u as usize] == v {
            m.join(u, v);
        }
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suitor::suitor;
    use crate::verify::half_approx_certificate;
    use ldgm_graph::gen::{rmat, urand, RmatParams};
    use ldgm_graph::weights::make_weights_distinct;

    #[test]
    fn matches_sequential_suitor_distinct_weights() {
        for seed in 0..5 {
            let g = make_weights_distinct(&urand(500, 3000, seed), seed);
            let par = suitor_par(&g);
            let seq = suitor(&g);
            assert_eq!(par.mate_array(), seq.mate_array(), "seed {seed}");
        }
    }

    #[test]
    fn equal_weight_to_sequential_with_ties() {
        for seed in 0..5 {
            let g = urand(500, 3000, seed);
            let par = suitor_par(&g);
            let seq = suitor(&g);
            assert_eq!(par.weight(&g), seq.weight(&g), "seed {seed}");
        }
    }

    #[test]
    fn maximal_valid_certified_on_skewed_graph() {
        let g = rmat(2048, 20_000, RmatParams::GAP_KRON, 9);
        let m = suitor_par(&g);
        assert_eq!(m.verify(&g), Ok(()));
        assert!(m.is_maximal(&g));
        assert!(half_approx_certificate(&g, &m));
    }

    #[test]
    fn repeated_runs_are_stable() {
        let g = make_weights_distinct(&urand(400, 2400, 11), 11);
        let first = suitor_par(&g);
        for _ in 0..5 {
            assert_eq!(suitor_par(&g).mate_array(), first.mate_array());
        }
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::empty(10);
        assert_eq!(suitor_par(&g).cardinality(), 0);
    }
}

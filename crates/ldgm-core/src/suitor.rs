//! Sequential Suitor matching (Manne & Halappanavar, IPDPS 2014).
//!
//! Each vertex proposes to its heaviest neighbor whose current suitor
//! offer is worse than the proposal; a displaced suitor immediately
//! re-proposes. Compared to the pointer algorithms, Suitor visits each
//! adjacency list a bounded number of times in total instead of once per
//! round, which is why the paper treats SR-OMP/SR-GPU as the
//! state-of-the-art baselines.

use crate::matching::{Matching, UNMATCHED};
use ldgm_graph::csr::{CsrGraph, VertexId};

/// Offer comparison: proposal `(w_new, u_new)` beats the standing offer
/// `(w_cur, u_cur)` on higher weight, tie-broken toward the lower proposer
/// id — the same total order as [`crate::matching::prefer`].
#[inline]
fn beats(w_new: f64, u_new: VertexId, w_cur: f64, u_cur: VertexId) -> bool {
    w_new > w_cur || (w_new == w_cur && u_new < u_cur)
}

/// Statistics of a Suitor run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SuitorStats {
    /// Total proposals performed (including displacements).
    pub proposals: u64,
    /// Edge slots inspected while searching for proposal targets.
    pub edges_scanned: u64,
    /// Largest per-vertex scan total — the straggler bound for
    /// thread-per-vertex GPU executions (a hub repeatedly displaced
    /// rescans its whole adjacency serially on one thread).
    pub max_vertex_scans: u64,
    /// Largest number of standing-offer updates received by a single
    /// target vertex — on a GPU these are serialized atomic exchanges,
    /// the contention hot spot of dense/hub-heavy graphs.
    pub max_target_updates: u64,
}

/// Run sequential Suitor on `g`.
pub fn suitor(g: &CsrGraph) -> Matching {
    suitor_with_stats(g).0
}

/// Run sequential Suitor and return statistics.
pub fn suitor_with_stats(g: &CsrGraph) -> (Matching, SuitorStats) {
    let n = g.num_vertices();
    // suitor[v] = current best proposer; ws[v] = its offer weight.
    let mut suitor_of: Vec<VertexId> = vec![UNMATCHED; n];
    let mut ws: Vec<f64> = vec![f64::NEG_INFINITY; n];
    let mut stats = SuitorStats::default();
    let mut vertex_scans: Vec<u64> = vec![0; n];
    let mut target_updates: Vec<u64> = vec![0; n];

    for start in 0..n as VertexId {
        let mut u = start;
        // Propose until settled or exhausted; displaced vertices continue
        // the loop.
        loop {
            let mut best: VertexId = UNMATCHED;
            let mut best_w = f64::NEG_INFINITY;
            vertex_scans[u as usize] += g.degree(u) as u64;
            for (v, w) in g.edges_of(u) {
                stats.edges_scanned += 1;
                // v is a valid target if u's offer would beat v's standing
                // suitor, and the edge beats u's current best candidate.
                if beats(w, u, ws[v as usize], suitor_of[v as usize]) && beats(w, v, best_w, best) {
                    best = v;
                    best_w = w;
                }
            }
            let Some(v) = (best != UNMATCHED).then_some(best) else {
                break; // no admissible target: u stays (for now) unmatched
            };
            stats.proposals += 1;
            target_updates[v as usize] += 1;
            let displaced = suitor_of[v as usize];
            suitor_of[v as usize] = u;
            ws[v as usize] = best_w;
            if displaced == UNMATCHED {
                break;
            }
            u = displaced;
        }
    }

    stats.max_vertex_scans = vertex_scans.iter().copied().max().unwrap_or(0);
    stats.max_target_updates = target_updates.iter().copied().max().unwrap_or(0);

    let mut m = Matching::new(n);
    for v in 0..n as VertexId {
        let u = suitor_of[v as usize];
        if u != UNMATCHED && u < v && suitor_of[u as usize] == v {
            m.join(u, v);
        }
    }
    (m, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::greedy;
    use crate::verify::half_approx_certificate;
    use ldgm_graph::gen::{kmer, urand};
    use ldgm_graph::weights::make_weights_distinct;
    use ldgm_graph::GraphBuilder;

    #[test]
    fn single_edge() {
        let g = GraphBuilder::new(2).add_edge(0, 1, 2.0).build();
        assert_eq!(suitor(&g).cardinality(), 1);
    }

    #[test]
    fn displacement_chain() {
        // 0 proposes to 1; 2 (heavier) displaces 0, who settles for 3.
        let g = GraphBuilder::new(4)
            .add_edge(0, 1, 5.0)
            .add_edge(1, 2, 9.0)
            .add_edge(0, 3, 1.0)
            .build();
        let m = suitor(&g);
        assert_eq!(m.mate(1), Some(2));
        assert_eq!(m.mate(0), Some(3));
    }

    #[test]
    fn maximal_valid_certified() {
        for seed in 0..5 {
            let g = urand(400, 2400, seed);
            let (m, stats) = suitor_with_stats(&g);
            assert_eq!(m.verify(&g), Ok(()));
            assert!(m.is_maximal(&g), "seed {seed}");
            assert!(half_approx_certificate(&g, &m), "seed {seed}");
            assert!(stats.proposals as usize >= m.cardinality());
        }
    }

    #[test]
    fn equals_greedy_under_distinct_weights() {
        for seed in 0..5 {
            let g = make_weights_distinct(&kmer(500, 3.0, 25, seed), seed);
            assert_eq!(suitor(&g).mate_array(), greedy(&g).mate_array(), "seed {seed}");
        }
    }

    #[test]
    fn weight_equals_greedy_even_with_ties() {
        // With the shared tie-break order the outputs coincide exactly.
        for seed in 0..3 {
            let g = urand(300, 1200, seed);
            assert_eq!(suitor(&g).weight(&g), greedy(&g).weight(&g), "seed {seed}");
        }
    }
}

//! # ldgm-core — weighted matching algorithms
//!
//! The paper's primary contribution and every baseline it is evaluated
//! against:
//!
//! * [`ld_gpu`] — **LD-GPU**: multi-device, batched, pointer-based locally
//!   dominant ½-approximate matching on the `ldgm-gpusim` platform
//!   simulator (Algorithms 2–3 of the paper);
//! * [`ld_seq`] — LD-SEQ, the sequential pointer algorithm (Algorithm 1);
//! * [`suitor`] / [`suitor_par`] — sequential and rayon-parallel Suitor
//!   (the paper's SR-OMP baseline);
//! * [`suitor_sim`] — Suitor on a single simulated GPU (the SR-GPU
//!   baseline);
//! * [`local_max`] — Birn et al.'s edge-centric LocalMax;
//! * [`greedy`] — global-sort greedy;
//! * [`auction`] — Fagginger Auer & Bisseling's red-blue auction;
//! * [`cugraph_sim`] — a cuGraph-style multi-GPU baseline (MPI-staged
//!   collectives, no dead-vertex retirement) for Table V;
//! * [`blossom`] — exact maximum-weight matching (the LEMON stand-in);
//! * [`augment`] — Pettie–Sanders short-augmentation refinement toward a
//!   ⅔-approximation (the paper's §V future-work direction);
//! * [`matching`] / [`verify`] / [`fom`] — result types, certificates and
//!   the paper's MMEPS figure of merit;
//! * [`matcher`] — the unified [`matcher::Matcher`] trait and
//!   name-keyed registry putting every algorithm above behind one API.

pub mod auction;
pub mod augment;
pub mod b_matching;
pub mod blossom;
pub mod cugraph_sim;
pub mod fom;
pub mod greedy;
pub mod ld_gpu;
pub mod ld_seq;
pub mod local_max;
pub mod matcher;
pub mod matching;
pub mod suitor;
pub mod suitor_par;
pub mod suitor_sim;
pub mod verify;

pub use matcher::{
    edit_distance, nearest_names, MatchError, MatchResult, Matcher, MatcherRegistry, MatcherSetup,
};
pub use matching::{prefer, Matching, UNMATCHED};

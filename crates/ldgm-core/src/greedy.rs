//! Global greedy matching: sort all edges by weight, scan, take what fits.
//!
//! The classical sequential ½-approximation (Avis). It is the quality
//! reference for the locally dominant family: under *distinct* weights,
//! LD-SEQ, LocalMax and Suitor all produce exactly this matching — a
//! property the integration tests exploit.

use crate::matching::Matching;
use ldgm_graph::csr::{CsrGraph, VertexId};

/// Run global greedy matching on `g`.
///
/// Edge order: descending weight, then the same id-based tie-break as the
/// pointer algorithms (lower endpoint ids first), so ties resolve
/// consistently across implementations.
pub fn greedy(g: &CsrGraph) -> Matching {
    let mut edges: Vec<(VertexId, VertexId, f64)> = g.iter_edges().collect();
    edges.sort_unstable_by(|a, b| b.2.total_cmp(&a.2).then_with(|| (a.0, a.1).cmp(&(b.0, b.1))));
    let mut m = Matching::new(g.num_vertices());
    for (u, v, _) in edges {
        if !m.is_matched(u) && !m.is_matched(v) {
            m.join(u, v);
        }
    }
    m
}

/// Convenience: `w(greedy(g))`.
pub fn greedy_weight(g: &CsrGraph) -> f64 {
    greedy(g).weight(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{brute_force_mwm, half_approx_certificate};
    use ldgm_graph::gen::urand;
    use ldgm_graph::GraphBuilder;

    #[test]
    fn takes_heaviest_first() {
        let g = GraphBuilder::new(4)
            .add_edge(0, 1, 1.0)
            .add_edge(1, 2, 10.0)
            .add_edge(2, 3, 1.0)
            .build();
        let m = greedy(&g);
        assert_eq!(m.mate(1), Some(2));
        assert_eq!(m.cardinality(), 1);
    }

    #[test]
    fn maximal_valid_certified() {
        for seed in 0..5 {
            let g = urand(300, 2000, seed);
            let m = greedy(&g);
            assert_eq!(m.verify(&g), Ok(()));
            assert!(m.is_maximal(&g));
            assert!(half_approx_certificate(&g, &m));
        }
    }

    #[test]
    fn half_bound_vs_bruteforce() {
        for seed in 100..115 {
            let g = urand(8, 12, seed);
            if g.num_edges() > 20 {
                continue;
            }
            assert!(greedy_weight(&g) >= 0.5 * brute_force_mwm(&g) - 1e-9);
        }
    }

    #[test]
    fn deterministic_under_ties() {
        let g = GraphBuilder::new(4)
            .add_edge(0, 1, 1.0)
            .add_edge(0, 2, 1.0)
            .add_edge(0, 3, 1.0)
            .build();
        let m = greedy(&g);
        // Tie-break: (0,1) sorts first.
        assert_eq!(m.mate(0), Some(1));
    }
}

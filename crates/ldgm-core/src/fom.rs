//! Figure of Merit: Mega-Matching-Edges per Second (MMEPS), §IV-D.
//!
//! The paper proposes MMEPS to compare matching implementations across
//! architectures and parameter settings: the rate at which edges are
//! committed to the matching, in millions per second of (pointing +
//! matching) execution time. Higher is better.

/// Compute MMEPS for a run that committed `matched_edges` edges in
/// `seconds` of matching execution time.
pub fn mmeps(matched_edges: usize, seconds: f64) -> f64 {
    assert!(seconds > 0.0, "FoM needs a positive execution time");
    matched_edges as f64 / 1e6 / seconds
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_rates() {
        assert!((mmeps(1_000_000, 1.0) - 1.0).abs() < 1e-12);
        assert!((mmeps(500_000, 0.25) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn higher_is_better_for_faster_runs() {
        assert!(mmeps(1000, 0.001) > mmeps(1000, 0.002));
    }

    #[test]
    #[should_panic(expected = "positive execution time")]
    fn rejects_zero_time() {
        mmeps(1, 0.0);
    }
}

//! Red-blue greedy auction matching (Fagginger Auer & Bisseling, 2012).
//!
//! The first GPU-amenable greedy matching: eligible vertices are colored
//! red or blue uniformly at random each round; red vertices bid on their
//! heaviest available neighbor, blue vertices accept their best incoming
//! bid. The paper cites this as the prior GPU approach whose *quality is
//! subpar* to the locally dominant family — the Table II extension
//! quantifies exactly that.

use crate::matching::{prefer, Matching, UNMATCHED};
use ldgm_graph::csr::{CsrGraph, VertexId};
use ldgm_graph::rng::Xoshiro256;

/// Run the red-blue auction matching with the given RNG seed.
///
/// Terminates when a round produces no matches and no eligible edges
/// remain; an extra safeguard caps rounds at `4·log2(n) + 64` re-colorings
/// without progress (random coloring makes progress probabilistic, not
/// guaranteed per round).
pub fn auction(g: &CsrGraph, seed: u64) -> Matching {
    let n = g.num_vertices();
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut m = Matching::new(n);
    let mut live: Vec<VertexId> = (0..n as VertexId).filter(|&v| g.degree(v) > 0).collect();
    let mut bid: Vec<VertexId> = vec![UNMATCHED; n];
    let mut bid_w: Vec<f64> = vec![f64::NEG_INFINITY; n];
    let mut stale_rounds = 0usize;
    let stale_cap = 4 * (usize::BITS - n.leading_zeros()) as usize + 64;

    while !live.is_empty() && stale_rounds < stale_cap {
        // Color the live vertices.
        let colors: Vec<bool> = live.iter().map(|_| rng.chance(0.5)).collect();
        for &v in &live {
            bid[v as usize] = UNMATCHED;
            bid_w[v as usize] = f64::NEG_INFINITY;
        }
        // Red vertices bid on their best available neighbor (any color —
        // only bids on blue can be accepted).
        let mut any_available = false;
        for (i, &u) in live.iter().enumerate() {
            if !colors[i] {
                continue; // blue
            }
            let mut best = UNMATCHED;
            let mut best_w = f64::NEG_INFINITY;
            for (v, w) in g.edges_of(u) {
                if !m.is_matched(v) && prefer(w, v, best_w, best) {
                    best = v;
                    best_w = w;
                }
            }
            if best != UNMATCHED {
                any_available = true;
                // Blue target keeps the best bid.
                if prefer(best_w, u, bid_w[best as usize], bid[best as usize]) {
                    bid[best as usize] = u;
                    bid_w[best as usize] = best_w;
                }
            }
        }
        // Blue vertices accept their best bid.
        let mut matched_this_round = 0usize;
        for (i, &v) in live.iter().enumerate() {
            if colors[i] {
                continue; // red
            }
            let u = bid[v as usize];
            if u != UNMATCHED && !m.is_matched(u) && !m.is_matched(v) {
                m.join(u, v);
                matched_this_round += 1;
            }
        }
        if matched_this_round == 0 {
            if !any_available {
                // Check the blue side too: a blue vertex with an available
                // neighbor keeps the loop alive.
                let blue_available = live.iter().enumerate().any(|(i, &u)| {
                    !colors[i]
                        && !m.is_matched(u)
                        && g.neighbors(u).iter().any(|&v| !m.is_matched(v))
                });
                if !blue_available {
                    break;
                }
            }
            stale_rounds += 1;
        } else {
            stale_rounds = 0;
        }
        live.retain(|&u| !m.is_matched(u) && g.neighbors(u).iter().any(|&v| !m.is_matched(v)));
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::greedy_weight;
    use ldgm_graph::gen::urand;
    use ldgm_graph::GraphBuilder;

    #[test]
    fn single_edge_eventually_matches() {
        let g = GraphBuilder::new(2).add_edge(0, 1, 1.0).build();
        let m = auction(&g, 3);
        assert_eq!(m.cardinality(), 1);
    }

    #[test]
    fn valid_and_maximal() {
        for seed in 0..5 {
            let g = urand(300, 1800, seed);
            let m = auction(&g, seed);
            assert_eq!(m.verify(&g), Ok(()));
            assert!(m.is_maximal(&g), "seed {seed}");
        }
    }

    #[test]
    fn quality_close_to_but_typically_below_greedy() {
        let mut worse = 0;
        for seed in 0..10 {
            let g = urand(400, 4000, seed);
            let a = auction(&g, seed).weight(&g);
            let gr = greedy_weight(&g);
            assert!(a <= gr + 1e-9 || a >= 0.5 * gr, "auction weight unreasonable");
            if a < gr - 1e-9 {
                worse += 1;
            }
        }
        // The literature finding: auction quality is subpar to locally
        // dominant matching on most instances.
        assert!(worse >= 5, "auction beat greedy too often ({worse}/10 worse)");
    }

    #[test]
    fn deterministic_per_seed() {
        let g = urand(200, 1000, 4);
        assert_eq!(auction(&g, 7).mate_array(), auction(&g, 7).mate_array());
    }
}

//! The unified matcher API: every algorithm in this crate behind one
//! trait, discoverable through a name-keyed registry.
//!
//! A [`Matcher`] computes a [`MatchResult`]: the matching itself plus
//! whatever observability the algorithm supports — run time (simulated
//! seconds for platform algorithms, wall-clock for host algorithms), a
//! [`RunProfile`] phase breakdown, a [`MetricsRegistry`], and optionally a
//! full event [`Trace`]. The CLI's `match` and `profile` commands and the
//! cross-algorithm test suite all dispatch through
//! [`MatcherRegistry::with_defaults`] instead of hand-rolled match arms,
//! so a new algorithm only needs a `Matcher` impl and one `register` call
//! to appear everywhere.

use std::fmt;
use std::time::Instant;

use ldgm_gpusim::metrics::names;
use ldgm_gpusim::{MetricsRegistry, Platform, RunProfile, Trace};
use ldgm_graph::csr::CsrGraph;

use crate::auction::auction;
use crate::blossom::blossom_mwm;
use crate::cugraph_sim::cugraph_sim_traced;
use crate::greedy::greedy;
use crate::ld_gpu::{LdGpu, LdGpuConfig, LdGpuOutput};
use crate::ld_seq::ld_seq_profiled;
use crate::local_max::local_max_profiled;
use crate::matching::Matching;
use crate::suitor::suitor_with_stats;
use crate::suitor_par::suitor_par;
use crate::suitor_sim::suitor_sim_traced;

/// Why a matcher could not run (infeasible configuration, out of memory,
/// input too large for an exact method).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MatchError(pub String);

impl fmt::Display for MatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for MatchError {}

/// Result of one matcher run: the matching plus optional observability.
#[derive(Clone, Debug)]
pub struct MatchResult {
    /// The computed matching.
    pub matching: Matching,
    /// End-to-end run time in seconds: simulated when `simulated`,
    /// wall-clock otherwise.
    pub run_time: f64,
    /// Whether `run_time` is simulated platform time.
    pub simulated: bool,
    /// Iterations/rounds executed (0 when the notion doesn't apply).
    pub iterations: u64,
    /// Phase breakdown + per-iteration records, when the algorithm is
    /// instrumented.
    pub profile: Option<RunProfile>,
    /// Run metrics (possibly empty).
    pub metrics: MetricsRegistry,
    /// Event timeline, when requested and supported.
    pub trace: Option<Trace>,
}

impl MatchResult {
    /// A bare result for an uninstrumented host algorithm.
    fn host(matching: Matching, wall: f64) -> Self {
        MatchResult {
            matching,
            run_time: wall,
            simulated: false,
            iterations: 0,
            profile: None,
            metrics: MetricsRegistry::new(),
            trace: None,
        }
    }
}

/// A named matching algorithm.
pub trait Matcher: Send + Sync {
    /// Registry key (`"ld-gpu"`, `"suitor"`, ...).
    fn name(&self) -> &str;
    /// Compute a matching on `g`.
    fn run(&self, g: &CsrGraph) -> Result<MatchResult, MatchError>;
}

/// Shared configuration for [`MatcherRegistry::with_defaults`].
#[derive(Clone, Debug)]
pub struct MatcherSetup {
    /// Platform for simulated matchers.
    pub platform: Platform,
    /// Devices for multi-GPU matchers.
    pub devices: usize,
    /// Batches per device for LD-GPU (`None` = auto).
    pub batches: Option<usize>,
    /// Seed for randomized matchers (auction).
    pub seed: u64,
    /// Record event traces where supported (LD-GPU, cuGraph, SR-GPU).
    pub collect_trace: bool,
    /// Vertex-count guard for the O(n^3) exact blossom matcher.
    pub blossom_limit: usize,
    /// Communication/computation overlap for the LD-GPU matchers (chunked
    /// collectives on the comm stream; billing-only, matching unchanged).
    pub overlap: bool,
}

impl Default for MatcherSetup {
    fn default() -> Self {
        MatcherSetup {
            platform: Platform::dgx_a100(),
            devices: 1,
            batches: None,
            seed: 0,
            collect_trace: false,
            blossom_limit: 2000,
            overlap: false,
        }
    }
}

/// Name-keyed collection of matchers.
#[derive(Default)]
pub struct MatcherRegistry {
    entries: Vec<Box<dyn Matcher>>,
}

impl MatcherRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Every algorithm this crate ships, configured from `setup`.
    pub fn with_defaults(setup: &MatcherSetup) -> Self {
        let mut reg = Self::new();
        reg.register(Box::new(LdGpuMatcher::from_setup(setup)));
        reg.register(Box::new(LdGpuOptMatcher::from_setup(setup)));
        reg.register(Box::new(LdSeqMatcher));
        reg.register(Box::new(LocalMaxMatcher));
        reg.register(Box::new(GreedyMatcher));
        reg.register(Box::new(SuitorMatcher));
        reg.register(Box::new(SuitorParMatcher));
        reg.register(Box::new(SuitorGpuMatcher {
            platform: setup.platform.clone(),
            collect_trace: setup.collect_trace,
        }));
        reg.register(Box::new(AuctionMatcher { seed: setup.seed }));
        reg.register(Box::new(BlossomMatcher { limit: setup.blossom_limit }));
        reg.register(Box::new(CugraphMatcher {
            platform: setup.platform.clone(),
            devices: setup.devices,
            collect_trace: setup.collect_trace,
        }));
        reg
    }

    /// Add (or replace, by name) a matcher.
    pub fn register(&mut self, matcher: Box<dyn Matcher>) {
        if let Some(slot) = self.entries.iter_mut().find(|m| m.name() == matcher.name()) {
            *slot = matcher;
        } else {
            self.entries.push(matcher);
        }
    }

    /// Look up by name.
    pub fn get(&self, name: &str) -> Option<&dyn Matcher> {
        self.entries.iter().find(|m| m.name() == name).map(|m| m.as_ref())
    }

    /// Registered names, in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|m| m.name()).collect()
    }

    /// Iterate matchers in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &dyn Matcher> {
        self.entries.iter().map(|m| m.as_ref())
    }

    /// Number of registered matchers.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// LD-GPU on a simulated platform.
pub struct LdGpuMatcher {
    /// Full LD-GPU configuration.
    pub cfg: LdGpuConfig,
}

impl LdGpuMatcher {
    fn from_setup(setup: &MatcherSetup) -> Self {
        let mut cfg = LdGpuConfig::new(setup.platform.clone())
            .devices(setup.devices)
            .with_overlap(setup.overlap);
        if let Some(b) = setup.batches {
            cfg = cfg.batches(b);
        }
        if setup.collect_trace {
            cfg = cfg.with_trace();
        }
        LdGpuMatcher { cfg }
    }
}

/// Convert a driver output into a [`MatchResult`].
pub fn ld_gpu_result(out: LdGpuOutput) -> MatchResult {
    MatchResult {
        matching: out.matching,
        run_time: out.sim_time,
        simulated: true,
        iterations: out.iterations as u64,
        profile: Some(out.profile),
        metrics: out.metrics,
        trace: out.trace,
    }
}

impl Matcher for LdGpuMatcher {
    fn name(&self) -> &str {
        "ld-gpu"
    }
    fn run(&self, g: &CsrGraph) -> Result<MatchResult, MatchError> {
        let out = LdGpu::new(self.cfg.clone())
            .try_run(g)
            .map_err(|e| MatchError(format!("LD-GPU failed: {e}")))?;
        Ok(ld_gpu_result(out))
    }
}

/// Optimized LD-GPU (`ld-gpu-opt`): sorted-index early exit +
/// cross-iteration frontier + sparse delta collectives. Produces the
/// bit-identical matching of plain `ld-gpu` at lower simulated cost.
pub struct LdGpuOptMatcher {
    /// Full LD-GPU configuration (all optimization toggles on).
    pub cfg: LdGpuConfig,
}

impl LdGpuOptMatcher {
    fn from_setup(setup: &MatcherSetup) -> Self {
        LdGpuOptMatcher { cfg: LdGpuMatcher::from_setup(setup).cfg.optimized() }
    }
}

impl Matcher for LdGpuOptMatcher {
    fn name(&self) -> &str {
        "ld-gpu-opt"
    }
    fn run(&self, g: &CsrGraph) -> Result<MatchResult, MatchError> {
        let out = LdGpu::new(self.cfg.clone())
            .try_run(g)
            .map_err(|e| MatchError(format!("LD-GPU-opt failed: {e}")))?;
        Ok(ld_gpu_result(out))
    }
}

/// Sequential pointer algorithm, instrumented.
pub struct LdSeqMatcher;

impl Matcher for LdSeqMatcher {
    fn name(&self) -> &str {
        "ld-seq"
    }
    fn run(&self, g: &CsrGraph) -> Result<MatchResult, MatchError> {
        let out = ld_seq_profiled(g);
        Ok(MatchResult {
            matching: out.matching,
            run_time: out.profile.sim_time,
            simulated: false,
            iterations: out.profile.num_iterations() as u64,
            profile: Some(out.profile),
            metrics: out.metrics,
            trace: None,
        })
    }
}

/// Edge-centric LocalMax, instrumented.
pub struct LocalMaxMatcher;

impl Matcher for LocalMaxMatcher {
    fn name(&self) -> &str {
        "local-max"
    }
    fn run(&self, g: &CsrGraph) -> Result<MatchResult, MatchError> {
        let out = local_max_profiled(g);
        Ok(MatchResult {
            matching: out.matching,
            run_time: out.profile.sim_time,
            simulated: false,
            iterations: out.profile.num_iterations() as u64,
            profile: Some(out.profile),
            metrics: out.metrics,
            trace: None,
        })
    }
}

/// Global-sort greedy.
pub struct GreedyMatcher;

impl Matcher for GreedyMatcher {
    fn name(&self) -> &str {
        "greedy"
    }
    fn run(&self, g: &CsrGraph) -> Result<MatchResult, MatchError> {
        let t0 = Instant::now();
        let m = greedy(g);
        Ok(MatchResult::host(m, t0.elapsed().as_secs_f64()))
    }
}

/// Sequential Suitor with proposal metrics.
pub struct SuitorMatcher;

impl Matcher for SuitorMatcher {
    fn name(&self) -> &str {
        "suitor"
    }
    fn run(&self, g: &CsrGraph) -> Result<MatchResult, MatchError> {
        let t0 = Instant::now();
        let (m, stats) = suitor_with_stats(g);
        let mut result = MatchResult::host(m, t0.elapsed().as_secs_f64());
        result.metrics.counter_add(names::KERNEL_EDGES_SCANNED, stats.edges_scanned);
        result.metrics.counter_add(names::KERNEL_POINTERS_SET, stats.proposals);
        result
            .metrics
            .counter_add(names::MATCHING_EDGES_COMMITTED, result.matching.cardinality() as u64);
        Ok(result)
    }
}

/// Rayon-parallel Suitor.
pub struct SuitorParMatcher;

impl Matcher for SuitorParMatcher {
    fn name(&self) -> &str {
        "suitor-par"
    }
    fn run(&self, g: &CsrGraph) -> Result<MatchResult, MatchError> {
        let t0 = Instant::now();
        let m = suitor_par(g);
        Ok(MatchResult::host(m, t0.elapsed().as_secs_f64()))
    }
}

/// SR-GPU: Suitor on one simulated device.
pub struct SuitorGpuMatcher {
    /// Platform whose first device runs the kernel.
    pub platform: Platform,
    /// Record an event trace.
    pub collect_trace: bool,
}

impl Matcher for SuitorGpuMatcher {
    fn name(&self) -> &str {
        "suitor-gpu"
    }
    fn run(&self, g: &CsrGraph) -> Result<MatchResult, MatchError> {
        let out = suitor_sim_traced(g, &self.platform, self.collect_trace)
            .map_err(|e| MatchError(e.to_string()))?;
        Ok(MatchResult {
            matching: out.matching,
            run_time: out.sim_time,
            simulated: true,
            iterations: out.metrics.counter(names::DRIVER_ITERATIONS),
            profile: Some(out.profile),
            metrics: out.metrics,
            trace: out.trace,
        })
    }
}

/// Red-blue auction matching.
pub struct AuctionMatcher {
    /// Coloring seed.
    pub seed: u64,
}

impl Matcher for AuctionMatcher {
    fn name(&self) -> &str {
        "auction"
    }
    fn run(&self, g: &CsrGraph) -> Result<MatchResult, MatchError> {
        let t0 = Instant::now();
        let m = auction(g, self.seed);
        Ok(MatchResult::host(m, t0.elapsed().as_secs_f64()))
    }
}

/// Exact maximum-weight matching (O(n^3); size-guarded).
pub struct BlossomMatcher {
    /// Maximum vertex count accepted.
    pub limit: usize,
}

impl Matcher for BlossomMatcher {
    fn name(&self) -> &str {
        "blossom"
    }
    fn run(&self, g: &CsrGraph) -> Result<MatchResult, MatchError> {
        if g.num_vertices() > self.limit {
            return Err(MatchError(format!(
                "blossom is O(n^3); {} vertices is too many (limit {})",
                g.num_vertices(),
                self.limit
            )));
        }
        let t0 = Instant::now();
        let m = blossom_mwm(g, 1_000_000.0);
        Ok(MatchResult::host(m, t0.elapsed().as_secs_f64()))
    }
}

/// cuGraph-style multi-GPU baseline.
pub struct CugraphMatcher {
    /// Base platform (comm model is replaced by MPI-staged internally).
    pub platform: Platform,
    /// Device count.
    pub devices: usize,
    /// Record an event trace.
    pub collect_trace: bool,
}

impl Matcher for CugraphMatcher {
    fn name(&self) -> &str {
        "cugraph"
    }
    fn run(&self, g: &CsrGraph) -> Result<MatchResult, MatchError> {
        let out = cugraph_sim_traced(g, &self.platform, self.devices, self.collect_trace)
            .map_err(|e| MatchError(format!("cuGraph-sim failed: {e}")))?;
        Ok(ld_gpu_result(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldgm_graph::gen::urand;

    #[test]
    fn default_registry_contents() {
        let reg = MatcherRegistry::with_defaults(&MatcherSetup::default());
        assert_eq!(
            reg.names(),
            vec![
                "ld-gpu",
                "ld-gpu-opt",
                "ld-seq",
                "local-max",
                "greedy",
                "suitor",
                "suitor-par",
                "suitor-gpu",
                "auction",
                "blossom",
                "cugraph",
            ]
        );
        assert!(reg.get("ld-gpu").is_some());
        assert!(reg.get("bogus").is_none());
    }

    #[test]
    fn every_registered_matcher_runs_and_validates() {
        let g = urand(300, 1500, 1);
        let reg = MatcherRegistry::with_defaults(&MatcherSetup::default());
        for m in reg.iter() {
            let r = m.run(&g).unwrap_or_else(|e| panic!("{}: {e}", m.name()));
            assert_eq!(r.matching.verify(&g), Ok(()), "{}", m.name());
            assert!(r.run_time >= 0.0, "{}", m.name());
        }
    }

    #[test]
    fn simulated_matchers_carry_profiles() {
        let g = urand(400, 2000, 2);
        let reg = MatcherRegistry::with_defaults(&MatcherSetup::default());
        for name in ["ld-gpu", "ld-gpu-opt", "ld-seq", "local-max", "suitor-gpu", "cugraph"] {
            let r = reg.get(name).unwrap().run(&g).unwrap();
            let p = r.profile.unwrap_or_else(|| panic!("{name}: no profile"));
            assert!(p.phases.total() > 0.0, "{name}");
            assert!(!r.metrics.is_empty(), "{name}");
        }
    }

    #[test]
    fn blossom_guard_errors_cleanly() {
        let g = urand(50, 100, 3);
        let m = BlossomMatcher { limit: 10 };
        let err = m.run(&g).unwrap_err();
        assert!(err.0.contains("O(n^3)"));
    }

    #[test]
    fn trace_request_propagates_to_ld_gpu() {
        let g = urand(200, 800, 4);
        let setup = MatcherSetup { collect_trace: true, ..Default::default() };
        let reg = MatcherRegistry::with_defaults(&setup);
        let r = reg.get("ld-gpu").unwrap().run(&g).unwrap();
        assert!(r.trace.is_some());
        let r = reg.get("cugraph").unwrap().run(&g).unwrap();
        assert!(r.trace.is_some());
        let r = reg.get("suitor-gpu").unwrap().run(&g).unwrap();
        assert!(r.trace.is_some());
        let r = reg.get("greedy").unwrap().run(&g).unwrap();
        assert!(r.trace.is_none());
    }

    #[test]
    fn register_replaces_by_name() {
        struct Fake;
        impl Matcher for Fake {
            fn name(&self) -> &str {
                "greedy"
            }
            fn run(&self, g: &CsrGraph) -> Result<MatchResult, MatchError> {
                Ok(MatchResult::host(Matching::new(g.num_vertices()), 0.0))
            }
        }
        let mut reg = MatcherRegistry::with_defaults(&MatcherSetup::default());
        let before = reg.len();
        reg.register(Box::new(Fake));
        assert_eq!(reg.len(), before);
        let g = urand(10, 20, 5);
        let r = reg.get("greedy").unwrap().run(&g).unwrap();
        assert_eq!(r.matching.cardinality(), 0, "replacement matcher must win");
    }
}

//! The unified matcher API: every algorithm in this crate behind one
//! trait, discoverable through a name-keyed registry.
//!
//! A [`Matcher`] computes a [`MatchResult`]: the matching itself plus
//! whatever observability the algorithm supports — run time (simulated
//! seconds for platform algorithms, wall-clock for host algorithms), a
//! [`RunProfile`] phase breakdown, a [`MetricsRegistry`], and optionally a
//! full event [`Trace`]. The CLI's `match` and `profile` commands and the
//! cross-algorithm test suite all dispatch through
//! [`MatcherRegistry::with_defaults`] instead of hand-rolled match arms,
//! so a new algorithm only needs a `Matcher` impl and one `register` call
//! to appear everywhere.

use std::fmt;
use std::time::Instant;

use ldgm_gpusim::metrics::names;
use ldgm_gpusim::{MetricsRegistry, Platform, RunProfile, Trace};
use ldgm_graph::csr::CsrGraph;

use crate::auction::auction;
use crate::blossom::blossom_mwm;
use crate::cugraph_sim::cugraph_sim_traced;
use crate::greedy::greedy;
use crate::ld_gpu::{LdGpu, LdGpuConfig, LdGpuOutput};
use crate::ld_seq::ld_seq_profiled;
use crate::local_max::local_max_profiled;
use crate::matching::Matching;
use crate::suitor::suitor_with_stats;
use crate::suitor_par::suitor_par;
use crate::suitor_sim::suitor_sim_traced;

/// Why a matcher could not run or be selected. Structured so callers can
/// branch on the failure class instead of string-matching error text.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MatchError {
    /// A registry lookup failed. `suggestions` holds every valid name,
    /// ordered nearest-first by edit distance to the requested one.
    UnknownAlgorithm {
        /// The name that was requested.
        name: String,
        /// All valid names, nearest-first.
        suggestions: Vec<String>,
    },
    /// A configuration was rejected before the run started (invalid
    /// builder combination, size guard, bad parameter).
    InvalidConfig(String),
    /// The input graph/dataset could not be used (missing, malformed,
    /// structurally unusable).
    DatasetError(String),
    /// The engine itself failed mid-run (out of memory on a simulated
    /// device, infeasible batch plan, internal invariant).
    Engine(String),
}

impl MatchError {
    /// Wrap an engine-layer failure, preserving its message.
    pub fn engine(e: impl fmt::Display) -> Self {
        MatchError::Engine(e.to_string())
    }

    /// Build the lookup failure for `name` against `valid` names:
    /// suggestions are all valid names, nearest (by edit distance) first.
    pub fn unknown_algorithm(name: &str, valid: &[&str]) -> Self {
        MatchError::UnknownAlgorithm {
            name: name.to_string(),
            suggestions: nearest_names(name, valid),
        }
    }
}

impl fmt::Display for MatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatchError::UnknownAlgorithm { name, suggestions } => {
                write!(f, "unknown algorithm '{name}'")?;
                if let Some(best) = suggestions.first() {
                    if edit_distance(name, best) <= SUGGESTION_DISTANCE {
                        write!(f, " (did you mean '{best}'?)")?;
                    }
                }
                if suggestions.is_empty() {
                    write!(f, "; the registry is empty")
                } else {
                    write!(f, "; valid: {}", suggestions.join(", "))
                }
            }
            MatchError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            MatchError::DatasetError(msg) => write!(f, "dataset error: {msg}"),
            MatchError::Engine(msg) => f.write_str(msg),
        }
    }
}

impl std::error::Error for MatchError {}

/// Maximum edit distance at which a name is offered as "did you mean".
const SUGGESTION_DISTANCE: usize = 3;

/// Levenshtein distance between two ASCII-ish names (full unicode-scalar
/// granularity; names here are short registry keys).
pub fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Rank `valid` names by edit distance to `name` (ties alphabetical).
/// Returns every name — callers print the full list; the ordering is the
/// suggestion.
pub fn nearest_names(name: &str, valid: &[&str]) -> Vec<String> {
    let mut ranked: Vec<(usize, &str)> =
        valid.iter().map(|v| (edit_distance(name, v), *v)).collect();
    ranked.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(b.1)));
    ranked.into_iter().map(|(_, v)| v.to_string()).collect()
}

/// Result of one matcher run: the matching plus optional observability.
#[derive(Clone, Debug)]
pub struct MatchResult {
    /// The computed matching.
    pub matching: Matching,
    /// End-to-end run time in seconds: simulated when `simulated`,
    /// wall-clock otherwise.
    pub run_time: f64,
    /// Whether `run_time` is simulated platform time.
    pub simulated: bool,
    /// Iterations/rounds executed (0 when the notion doesn't apply).
    pub iterations: u64,
    /// Phase breakdown + per-iteration records, when the algorithm is
    /// instrumented.
    pub profile: Option<RunProfile>,
    /// Run metrics (possibly empty).
    pub metrics: MetricsRegistry,
    /// Event timeline, when requested and supported.
    pub trace: Option<Trace>,
}

impl MatchResult {
    /// A bare result for an uninstrumented host algorithm.
    fn host(matching: Matching, wall: f64) -> Self {
        MatchResult {
            matching,
            run_time: wall,
            simulated: false,
            iterations: 0,
            profile: None,
            metrics: MetricsRegistry::new(),
            trace: None,
        }
    }
}

/// A named matching algorithm.
pub trait Matcher: Send + Sync {
    /// Registry key (`"ld-gpu"`, `"suitor"`, ...).
    fn name(&self) -> &str;
    /// Compute a matching on `g`.
    fn run(&self, g: &CsrGraph) -> Result<MatchResult, MatchError>;
}

/// Shared configuration for [`MatcherRegistry::with_defaults`].
#[derive(Clone, Debug)]
pub struct MatcherSetup {
    /// Platform for simulated matchers.
    pub platform: Platform,
    /// Devices for multi-GPU matchers.
    pub devices: usize,
    /// Batches per device for LD-GPU (`None` = auto).
    pub batches: Option<usize>,
    /// Seed for randomized matchers (auction).
    pub seed: u64,
    /// Record event traces where supported (LD-GPU, cuGraph, SR-GPU).
    pub collect_trace: bool,
    /// Vertex-count guard for the O(n^3) exact blossom matcher.
    pub blossom_limit: usize,
    /// Communication/computation overlap for the LD-GPU matchers (chunked
    /// collectives on the comm stream; billing-only, matching unchanged).
    pub overlap: bool,
    /// Cluster size override: `Some(n)` re-sizes the platform to `n`
    /// nodes via [`Platform::with_nodes`] (clustering flat platforms
    /// over InfiniBand); `None` leaves the platform untouched.
    pub nodes: Option<usize>,
    /// Topology-aware part→node placement for the LD-GPU matchers on
    /// cluster platforms (billing-only, matching unchanged).
    pub topology_placement: bool,
    /// Per-device memory override: `Some(bytes)` shrinks (or grows) the
    /// platform's device memory via [`Platform::with_device_memory`], so
    /// batching/streaming paths can be forced on datasets that would
    /// otherwise fit whole. `None` leaves the platform untouched.
    pub mem_limit: Option<u64>,
    /// Out-of-core streaming mode for the LD-GPU matchers (substream-
    /// pipelined rank bands; matching bit-identical to the resident
    /// paths).
    pub streaming: bool,
    /// Streaming byte budget per device (`None` = device memory).
    pub mem_budget: Option<u64>,
    /// Streaming resident window in bands (`None` = driver default).
    pub stream_window: Option<usize>,
}

impl Default for MatcherSetup {
    fn default() -> Self {
        MatcherSetup {
            platform: Platform::dgx_a100(),
            devices: 1,
            batches: None,
            seed: 0,
            collect_trace: false,
            blossom_limit: 2000,
            overlap: false,
            nodes: None,
            topology_placement: false,
            mem_limit: None,
            streaming: false,
            mem_budget: None,
            stream_window: None,
        }
    }
}

impl MatcherSetup {
    /// Fold the `nodes` and `mem_limit` overrides into the platform
    /// (idempotent: the returned setup has both cleared). Call before
    /// handing the platform to engines that don't consume the full
    /// setup.
    pub fn resolved(&self) -> MatcherSetup {
        let mut s = self.clone();
        if let Some(n) = s.nodes.take() {
            s.platform = s.platform.with_nodes(n);
        }
        if let Some(bytes) = s.mem_limit.take() {
            s.platform = s.platform.with_device_memory(bytes);
        }
        s
    }
}

/// Name-keyed collection of matchers.
#[derive(Default)]
pub struct MatcherRegistry {
    entries: Vec<Box<dyn Matcher>>,
}

impl MatcherRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Every algorithm this crate ships, configured from `setup`.
    pub fn with_defaults(setup: &MatcherSetup) -> Self {
        let setup = &setup.resolved();
        let mut reg = Self::new();
        reg.register(Box::new(LdGpuMatcher::from_setup(setup)));
        reg.register(Box::new(LdGpuOptMatcher::from_setup(setup)));
        reg.register(Box::new(LdSeqMatcher));
        reg.register(Box::new(LocalMaxMatcher));
        reg.register(Box::new(GreedyMatcher));
        reg.register(Box::new(SuitorMatcher));
        reg.register(Box::new(SuitorParMatcher));
        reg.register(Box::new(SuitorGpuMatcher {
            platform: setup.platform.clone(),
            collect_trace: setup.collect_trace,
        }));
        reg.register(Box::new(AuctionMatcher { seed: setup.seed }));
        reg.register(Box::new(BlossomMatcher { limit: setup.blossom_limit }));
        reg.register(Box::new(CugraphMatcher {
            platform: setup.platform.clone(),
            devices: setup.devices,
            collect_trace: setup.collect_trace,
        }));
        reg
    }

    /// Add a matcher. Re-registering an existing name replaces the old
    /// entry — loudly: the displaced matcher is logged to stderr and
    /// returned, so intentional overrides (CLI `--compact-frac`-style
    /// re-registration) can drop it while accidental duplicates leave a
    /// trace instead of silently vanishing.
    pub fn register(&mut self, matcher: Box<dyn Matcher>) -> Option<Box<dyn Matcher>> {
        match self.entries.binary_search_by(|m| m.name().cmp(matcher.name())) {
            Ok(i) => {
                eprintln!(
                    "ldgm: matcher '{}' re-registered; replacing the earlier entry",
                    matcher.name()
                );
                Some(std::mem::replace(&mut self.entries[i], matcher))
            }
            Err(i) => {
                self.entries.insert(i, matcher);
                None
            }
        }
    }

    /// Look up by name.
    pub fn get(&self, name: &str) -> Option<&dyn Matcher> {
        self.entries.binary_search_by(|m| m.name().cmp(name)).ok().map(|i| self.entries[i].as_ref())
    }

    /// Look up by name, with a structured error carrying nearest-name
    /// suggestions when the lookup fails.
    pub fn try_get(&self, name: &str) -> Result<&dyn Matcher, MatchError> {
        self.get(name).ok_or_else(|| MatchError::unknown_algorithm(name, &self.names()))
    }

    /// Registered names, deterministically sorted (the registry keeps its
    /// entries in name order).
    pub fn names(&self) -> Vec<&str> {
        self.entries.iter().map(|m| m.name()).collect()
    }

    /// Iterate matchers in name order.
    pub fn iter(&self) -> impl Iterator<Item = &dyn Matcher> {
        self.entries.iter().map(|m| m.as_ref())
    }

    /// Number of registered matchers.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// LD-GPU on a simulated platform.
pub struct LdGpuMatcher {
    /// Full LD-GPU configuration.
    pub cfg: LdGpuConfig,
}

impl LdGpuMatcher {
    /// The base LD-GPU configuration [`MatcherRegistry::with_defaults`]
    /// gives the `ld-gpu` matcher for `setup` — the auto-tuner's
    /// starting point ([`crate::ld_gpu::auto_tune`]).
    pub fn config_from_setup(setup: &MatcherSetup) -> LdGpuConfig {
        Self::from_setup(setup).cfg
    }

    fn from_setup(setup: &MatcherSetup) -> Self {
        let setup = setup.resolved();
        let mut cfg = LdGpuConfig::new(setup.platform.clone())
            .devices(setup.devices)
            .with_overlap(setup.overlap)
            .with_topology_placement(setup.topology_placement);
        if let Some(b) = setup.batches {
            cfg = cfg.batches(b);
        }
        if setup.streaming {
            cfg = cfg.with_streaming(true);
            if let Some(bytes) = setup.mem_budget {
                cfg = cfg.with_mem_budget(bytes);
            }
            if let Some(w) = setup.stream_window {
                cfg = cfg.with_stream_window(w);
            }
        }
        if setup.collect_trace {
            cfg = cfg.with_trace();
        }
        LdGpuMatcher { cfg }
    }
}

/// Convert a driver output into a [`MatchResult`].
pub fn ld_gpu_result(out: LdGpuOutput) -> MatchResult {
    MatchResult {
        matching: out.matching,
        run_time: out.sim_time,
        simulated: true,
        iterations: out.iterations as u64,
        profile: Some(out.profile),
        metrics: out.metrics,
        trace: out.trace,
    }
}

impl Matcher for LdGpuMatcher {
    fn name(&self) -> &str {
        "ld-gpu"
    }
    fn run(&self, g: &CsrGraph) -> Result<MatchResult, MatchError> {
        let out = LdGpu::new(self.cfg.clone())
            .try_run(g)
            .map_err(|e| MatchError::Engine(format!("LD-GPU failed: {e}")))?;
        Ok(ld_gpu_result(out))
    }
}

/// Optimized LD-GPU (`ld-gpu-opt`): sorted-index early exit +
/// cross-iteration frontier + sparse delta collectives. Produces the
/// bit-identical matching of plain `ld-gpu` at lower simulated cost.
pub struct LdGpuOptMatcher {
    /// Full LD-GPU configuration (all optimization toggles on).
    pub cfg: LdGpuConfig,
}

impl LdGpuOptMatcher {
    fn from_setup(setup: &MatcherSetup) -> Self {
        LdGpuOptMatcher { cfg: LdGpuMatcher::from_setup(setup).cfg.optimized() }
    }
}

impl Matcher for LdGpuOptMatcher {
    fn name(&self) -> &str {
        "ld-gpu-opt"
    }
    fn run(&self, g: &CsrGraph) -> Result<MatchResult, MatchError> {
        let out = LdGpu::new(self.cfg.clone())
            .try_run(g)
            .map_err(|e| MatchError::Engine(format!("LD-GPU-opt failed: {e}")))?;
        Ok(ld_gpu_result(out))
    }
}

/// Sequential pointer algorithm, instrumented.
pub struct LdSeqMatcher;

impl Matcher for LdSeqMatcher {
    fn name(&self) -> &str {
        "ld-seq"
    }
    fn run(&self, g: &CsrGraph) -> Result<MatchResult, MatchError> {
        let out = ld_seq_profiled(g);
        Ok(MatchResult {
            matching: out.matching,
            run_time: out.profile.sim_time,
            simulated: false,
            iterations: out.profile.num_iterations() as u64,
            profile: Some(out.profile),
            metrics: out.metrics,
            trace: None,
        })
    }
}

/// Edge-centric LocalMax, instrumented.
pub struct LocalMaxMatcher;

impl Matcher for LocalMaxMatcher {
    fn name(&self) -> &str {
        "local-max"
    }
    fn run(&self, g: &CsrGraph) -> Result<MatchResult, MatchError> {
        let out = local_max_profiled(g);
        Ok(MatchResult {
            matching: out.matching,
            run_time: out.profile.sim_time,
            simulated: false,
            iterations: out.profile.num_iterations() as u64,
            profile: Some(out.profile),
            metrics: out.metrics,
            trace: None,
        })
    }
}

/// Global-sort greedy.
pub struct GreedyMatcher;

impl Matcher for GreedyMatcher {
    fn name(&self) -> &str {
        "greedy"
    }
    fn run(&self, g: &CsrGraph) -> Result<MatchResult, MatchError> {
        let t0 = Instant::now();
        let m = greedy(g);
        Ok(MatchResult::host(m, t0.elapsed().as_secs_f64()))
    }
}

/// Sequential Suitor with proposal metrics.
pub struct SuitorMatcher;

impl Matcher for SuitorMatcher {
    fn name(&self) -> &str {
        "suitor"
    }
    fn run(&self, g: &CsrGraph) -> Result<MatchResult, MatchError> {
        let t0 = Instant::now();
        let (m, stats) = suitor_with_stats(g);
        let mut result = MatchResult::host(m, t0.elapsed().as_secs_f64());
        result.metrics.counter_add(names::KERNEL_EDGES_SCANNED, stats.edges_scanned);
        result.metrics.counter_add(names::KERNEL_POINTERS_SET, stats.proposals);
        result
            .metrics
            .counter_add(names::MATCHING_EDGES_COMMITTED, result.matching.cardinality() as u64);
        Ok(result)
    }
}

/// Rayon-parallel Suitor.
pub struct SuitorParMatcher;

impl Matcher for SuitorParMatcher {
    fn name(&self) -> &str {
        "suitor-par"
    }
    fn run(&self, g: &CsrGraph) -> Result<MatchResult, MatchError> {
        let t0 = Instant::now();
        let m = suitor_par(g);
        Ok(MatchResult::host(m, t0.elapsed().as_secs_f64()))
    }
}

/// SR-GPU: Suitor on one simulated device.
pub struct SuitorGpuMatcher {
    /// Platform whose first device runs the kernel.
    pub platform: Platform,
    /// Record an event trace.
    pub collect_trace: bool,
}

impl Matcher for SuitorGpuMatcher {
    fn name(&self) -> &str {
        "suitor-gpu"
    }
    fn run(&self, g: &CsrGraph) -> Result<MatchResult, MatchError> {
        let out =
            suitor_sim_traced(g, &self.platform, self.collect_trace).map_err(MatchError::engine)?;
        Ok(MatchResult {
            matching: out.matching,
            run_time: out.sim_time,
            simulated: true,
            iterations: out.metrics.counter(names::DRIVER_ITERATIONS),
            profile: Some(out.profile),
            metrics: out.metrics,
            trace: out.trace,
        })
    }
}

/// Red-blue auction matching.
pub struct AuctionMatcher {
    /// Coloring seed.
    pub seed: u64,
}

impl Matcher for AuctionMatcher {
    fn name(&self) -> &str {
        "auction"
    }
    fn run(&self, g: &CsrGraph) -> Result<MatchResult, MatchError> {
        let t0 = Instant::now();
        let m = auction(g, self.seed);
        Ok(MatchResult::host(m, t0.elapsed().as_secs_f64()))
    }
}

/// Exact maximum-weight matching (O(n^3); size-guarded).
pub struct BlossomMatcher {
    /// Maximum vertex count accepted.
    pub limit: usize,
}

impl Matcher for BlossomMatcher {
    fn name(&self) -> &str {
        "blossom"
    }
    fn run(&self, g: &CsrGraph) -> Result<MatchResult, MatchError> {
        if g.num_vertices() > self.limit {
            return Err(MatchError::InvalidConfig(format!(
                "blossom is O(n^3); {} vertices is too many (limit {})",
                g.num_vertices(),
                self.limit
            )));
        }
        let t0 = Instant::now();
        let m = blossom_mwm(g, 1_000_000.0);
        Ok(MatchResult::host(m, t0.elapsed().as_secs_f64()))
    }
}

/// cuGraph-style multi-GPU baseline.
pub struct CugraphMatcher {
    /// Base platform (comm model is replaced by MPI-staged internally).
    pub platform: Platform,
    /// Device count.
    pub devices: usize,
    /// Record an event trace.
    pub collect_trace: bool,
}

impl Matcher for CugraphMatcher {
    fn name(&self) -> &str {
        "cugraph"
    }
    fn run(&self, g: &CsrGraph) -> Result<MatchResult, MatchError> {
        let out = cugraph_sim_traced(g, &self.platform, self.devices, self.collect_trace)
            .map_err(|e| MatchError::Engine(format!("cuGraph-sim failed: {e}")))?;
        Ok(ld_gpu_result(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldgm_graph::gen::urand;

    #[test]
    fn default_registry_contents() {
        let reg = MatcherRegistry::with_defaults(&MatcherSetup::default());
        // `names()` is deterministically sorted regardless of the order
        // `with_defaults` registered the entries in.
        assert_eq!(
            reg.names(),
            vec![
                "auction",
                "blossom",
                "cugraph",
                "greedy",
                "ld-gpu",
                "ld-gpu-opt",
                "ld-seq",
                "local-max",
                "suitor",
                "suitor-gpu",
                "suitor-par",
            ]
        );
        assert!(reg.get("ld-gpu").is_some());
        assert!(reg.get("bogus").is_none());
    }

    #[test]
    fn try_get_suggests_nearest_names() {
        let reg = MatcherRegistry::with_defaults(&MatcherSetup::default());
        assert!(reg.try_get("ld-gpu").is_ok());
        let err = reg.try_get("ld-gup").err().expect("miss must error");
        let MatchError::UnknownAlgorithm { name, suggestions } = &err else {
            panic!("expected UnknownAlgorithm, got {err:?}");
        };
        assert_eq!(name, "ld-gup");
        // Every valid name is listed, nearest typo-fix first.
        assert_eq!(suggestions.len(), reg.len());
        assert_eq!(suggestions[0], "ld-gpu");
        let msg = err.to_string();
        assert!(msg.contains("did you mean 'ld-gpu'"), "{msg}");
        assert!(msg.contains("blossom"), "full list must be printed: {msg}");
        // A distant name skips the did-you-mean clause but keeps the list.
        let msg = reg.try_get("zzzzzzzzzzzz").err().expect("miss must error").to_string();
        assert!(!msg.contains("did you mean"), "{msg}");
        assert!(msg.contains("valid:"), "{msg}");
    }

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance("", "abc"), 3);
        assert_eq!(edit_distance("abc", "abc"), 0);
        assert_eq!(edit_distance("ld-gpu", "ld-gup"), 2);
        assert_eq!(edit_distance("suitor", "suitor-par"), 4);
    }

    #[test]
    fn every_registered_matcher_runs_and_validates() {
        let g = urand(300, 1500, 1);
        let reg = MatcherRegistry::with_defaults(&MatcherSetup::default());
        for m in reg.iter() {
            let r = m.run(&g).unwrap_or_else(|e| panic!("{}: {e}", m.name()));
            assert_eq!(r.matching.verify(&g), Ok(()), "{}", m.name());
            assert!(r.run_time >= 0.0, "{}", m.name());
        }
    }

    #[test]
    fn simulated_matchers_carry_profiles() {
        let g = urand(400, 2000, 2);
        let reg = MatcherRegistry::with_defaults(&MatcherSetup::default());
        for name in ["ld-gpu", "ld-gpu-opt", "ld-seq", "local-max", "suitor-gpu", "cugraph"] {
            let r = reg.get(name).unwrap().run(&g).unwrap();
            let p = r.profile.unwrap_or_else(|| panic!("{name}: no profile"));
            assert!(p.phases.total() > 0.0, "{name}");
            assert!(!r.metrics.is_empty(), "{name}");
        }
    }

    #[test]
    fn mem_limit_and_streaming_flow_through_setup() {
        // The memory override folds into the platform exactly once.
        let setup = MatcherSetup { mem_limit: Some(123_456), ..Default::default() };
        let resolved = setup.resolved();
        assert_eq!(resolved.platform.device.mem_bytes, 123_456);
        assert_eq!(resolved.mem_limit, None);
        assert_eq!(resolved.resolved().platform.device.mem_bytes, 123_456);

        // Streaming knobs land on the ld-gpu configs (base and opt).
        let setup = MatcherSetup {
            streaming: true,
            mem_budget: Some(1 << 22),
            stream_window: Some(4),
            ..Default::default()
        };
        let cfg = LdGpuMatcher::config_from_setup(&setup);
        assert!(cfg.streaming);
        assert_eq!(cfg.mem_budget, Some(1 << 22));
        assert_eq!(cfg.stream_window, Some(4));

        // A mem-limited streaming run still matches correctly.
        let g = urand(400, 3000, 6);
        let setup =
            MatcherSetup { streaming: true, mem_limit: Some(1 << 20), ..Default::default() };
        let reg = MatcherRegistry::with_defaults(&setup);
        let r = reg.get("ld-gpu").unwrap().run(&g).unwrap();
        assert_eq!(r.matching.verify(&g), Ok(()));
    }

    #[test]
    fn blossom_guard_errors_cleanly() {
        let g = urand(50, 100, 3);
        let m = BlossomMatcher { limit: 10 };
        let err = m.run(&g).unwrap_err();
        assert!(matches!(err, MatchError::InvalidConfig(_)), "{err:?}");
        assert!(err.to_string().contains("O(n^3)"));
    }

    #[test]
    fn trace_request_propagates_to_ld_gpu() {
        let g = urand(200, 800, 4);
        let setup = MatcherSetup { collect_trace: true, ..Default::default() };
        let reg = MatcherRegistry::with_defaults(&setup);
        let r = reg.get("ld-gpu").unwrap().run(&g).unwrap();
        assert!(r.trace.is_some());
        let r = reg.get("cugraph").unwrap().run(&g).unwrap();
        assert!(r.trace.is_some());
        let r = reg.get("suitor-gpu").unwrap().run(&g).unwrap();
        assert!(r.trace.is_some());
        let r = reg.get("greedy").unwrap().run(&g).unwrap();
        assert!(r.trace.is_none());
    }

    #[test]
    fn register_replaces_by_name() {
        struct Fake;
        impl Matcher for Fake {
            fn name(&self) -> &str {
                "greedy"
            }
            fn run(&self, g: &CsrGraph) -> Result<MatchResult, MatchError> {
                Ok(MatchResult::host(Matching::new(g.num_vertices()), 0.0))
            }
        }
        let mut reg = MatcherRegistry::with_defaults(&MatcherSetup::default());
        let before = reg.len();
        let displaced = reg.register(Box::new(Fake));
        assert!(displaced.is_some(), "re-registration must return the displaced matcher");
        assert_eq!(displaced.unwrap().name(), "greedy");
        assert_eq!(reg.len(), before);
        let g = urand(10, 20, 5);
        let r = reg.get("greedy").unwrap().run(&g).unwrap();
        assert_eq!(r.matching.cardinality(), 0, "replacement matcher must win");
    }
}

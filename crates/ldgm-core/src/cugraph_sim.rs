//! cuGraph-style multi-GPU baseline (paper §IV-D, Table V).
//!
//! RAPIDS cuGraph's experimental multi-GPU approximate matching follows
//! the same Manne–Bisseling locally dominant scheme but differs from
//! LD-GPU in exactly the ways the paper calls out:
//!
//! * communication runs over RAFT-comms (MPI-based) instead of NCCL over
//!   CUDA streams — modeled by [`ldgm_gpusim::CommModel::mpi_staged`];
//! * a process-per-GPU model where every process loads the entire graph
//!   and filters its subgraph, with generic (modern-C++) kernels — modeled
//!   as a kernel-overhead factor and no vertex retirement, so every
//!   iteration rescans the full frontier.
//!
//! The result is the same matching as LD-GPU at an order-of-magnitude
//! higher simulated cost, which is the paper's observed gap.

use crate::ld_gpu::{LdGpu, LdGpuConfig, LdGpuError, LdGpuOutput};
use ldgm_gpusim::{CommModel, Platform};
use ldgm_graph::csr::CsrGraph;

/// Kernel-overhead factor for cuGraph's generic kernels relative to the
/// specialized LD-GPU kernels.
pub const CUGRAPH_KERNEL_OVERHEAD: f64 = 3.0;

/// Run the cuGraph-style baseline on `devices` GPUs of `platform`.
pub fn cugraph_sim(
    g: &CsrGraph,
    platform: &Platform,
    devices: usize,
) -> Result<LdGpuOutput, LdGpuError> {
    cugraph_sim_traced(g, platform, devices, false)
}

/// [`cugraph_sim`] with an optional event trace.
pub fn cugraph_sim_traced(
    g: &CsrGraph,
    platform: &Platform,
    devices: usize,
    trace: bool,
) -> Result<LdGpuOutput, LdGpuError> {
    // RAFT's per-call software overhead (host-side MPI/UCX bookkeeping,
    // ~250 µs) is independent of problem size, so — unlike bandwidth terms
    // — it must NOT shrink with scaled-down data. This fixed cost is
    // exactly why the paper measures cuGraph an order of magnitude behind
    // NCCL-over-streams on medium graphs.
    let mut cfg = LdGpuConfig::new(platform.clone().with_comm(CommModel::mpi_staged()))
        .devices(devices)
        .batches(1);
    if trace {
        cfg = cfg.with_trace();
    }
    let cfg =
        LdGpuConfig { retire_exhausted: false, kernel_overhead: CUGRAPH_KERNEL_OVERHEAD, ..cfg };
    LdGpu::new(cfg).try_run(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ld_gpu::{LdGpu, LdGpuConfig};
    use ldgm_graph::gen::urand;

    #[test]
    fn same_matching_as_ld_gpu() {
        let g = urand(600, 4000, 1);
        let p = Platform::dgx_a100();
        let cu = cugraph_sim(&g, &p, 4).unwrap();
        let ld = LdGpu::new(LdGpuConfig::new(p).devices(4)).run(&g);
        assert_eq!(cu.matching.mate_array(), ld.matching.mate_array());
    }

    #[test]
    fn order_of_magnitude_slower() {
        let g = urand(2000, 16_000, 2);
        let p = Platform::dgx_a100();
        let cu = cugraph_sim(&g, &p, 4).unwrap();
        let ld = LdGpu::new(LdGpuConfig::new(p).devices(4).batches(1)).run(&g);
        let ratio = cu.sim_time / ld.sim_time;
        assert!(ratio > 5.0, "cuGraph-sim only {ratio:.1}x slower");
    }

    #[test]
    fn metric_schema_matches_ld_gpu_naming() {
        let g = urand(800, 5000, 5);
        let cu = cugraph_sim(&g, &Platform::dgx_a100(), 4).unwrap();
        for key in ["kernel.bytes_moved", "kernel.warps_launched", "comm.collective_bytes"] {
            assert!(cu.metrics.get(key).is_some(), "missing {key}");
        }
        assert!(cu.metrics.counter("comm.collective_bytes") > 0);
        let occ = cu.metrics.gauge("kernel.occupancy").unwrap();
        assert!(occ > 0.0 && occ <= 1.0);
        assert_eq!(cu.metrics.gauge("driver.devices"), Some(4.0));
    }

    #[test]
    fn rescanning_increases_edge_work() {
        let g = urand(1000, 8000, 3);
        let p = Platform::dgx_a100();
        let cu = cugraph_sim(&g, &p, 2).unwrap();
        let ld = LdGpu::new(LdGpuConfig::new(p).devices(2)).run(&g);
        let cu_edges: u64 = cu.profile.iterations.iter().map(|r| r.edges_scanned).sum();
        let ld_edges: u64 = ld.profile.iterations.iter().map(|r| r.edges_scanned).sum();
        assert!(cu_edges >= ld_edges);
    }
}

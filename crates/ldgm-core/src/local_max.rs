//! LocalMax: the edge-centric locally dominant algorithm of Birn et al.
//! ("Efficient parallel and external matching", Euro-Par 2013).
//!
//! Each round keeps the set of still-eligible edges; an edge is committed
//! when it is the maximum (under a total order on edges) among all
//! eligible edges sharing an endpoint with it. Implemented round-wise with
//! per-vertex best-incident-edge computation: an edge is a local maximum
//! iff it is the best incident edge of *both* endpoints.

use std::time::Instant;

use crate::matching::Matching;
use ldgm_gpusim::metrics::names;
use ldgm_gpusim::{IterationRecord, MetricsRegistry, RunProfile};
use ldgm_graph::csr::{CsrGraph, VertexId};

/// Total order on edges: weight, then lexicographic endpoint ids. Returns
/// whether `a` is better than `b`.
#[inline]
fn edge_better(a: (f64, VertexId, VertexId), b: (f64, VertexId, VertexId)) -> bool {
    a.0 > b.0 || (a.0 == b.0 && (a.1, a.2) < (b.1, b.2))
}

/// Statistics of a LocalMax run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LocalMaxStats {
    /// Number of rounds.
    pub rounds: usize,
    /// Edge slots inspected across all rounds.
    pub edges_scanned: u64,
}

/// Result of a profiled LocalMax run: matching plus the LD-GPU
/// profile/metrics shapes with wall-clock phase timing (`sim_time` is the
/// phase sum by construction).
#[derive(Clone, Debug)]
pub struct LocalMaxProfiled {
    /// The computed matching.
    pub matching: Matching,
    /// Wall-clock phase breakdown and per-round records.
    pub profile: RunProfile,
    /// Run metrics.
    pub metrics: MetricsRegistry,
}

/// Run LocalMax on `g`.
pub fn local_max(g: &CsrGraph) -> Matching {
    local_max_with_stats(g).0
}

/// Run LocalMax and return statistics.
pub fn local_max_with_stats(g: &CsrGraph) -> (Matching, LocalMaxStats) {
    let out = local_max_profiled(g);
    let stats = LocalMaxStats {
        rounds: out.profile.num_iterations(),
        edges_scanned: out.metrics.counter(names::KERNEL_EDGES_SCANNED),
    };
    (out.matching, stats)
}

/// Run LocalMax with full observability. The best-incident-edge scan is
/// billed as pointing, the commit sweep as matching, retirement as sync.
pub fn local_max_profiled(g: &CsrGraph) -> LocalMaxProfiled {
    let n = g.num_vertices();
    let mut m = Matching::new(n);
    let mut profile = RunProfile::default();
    let mut metrics = MetricsRegistry::new();
    let total_directed = g.num_directed_edges().max(1) as u64;
    // best[v]: best eligible incident edge of v as (w, lo, hi).
    const NO_EDGE: (f64, VertexId, VertexId) = (f64::NEG_INFINITY, VertexId::MAX, VertexId::MAX);
    let mut best: Vec<(f64, VertexId, VertexId)> = vec![NO_EDGE; n];
    let mut live: Vec<VertexId> = (0..n as VertexId).filter(|&v| g.degree(v) > 0).collect();

    while !live.is_empty() {
        let round = profile.iterations.len();
        let mut round_edges: u64 = 0;
        let t0 = Instant::now();
        for &v in &live {
            best[v as usize] = NO_EDGE;
        }
        for &u in &live {
            for (v, w) in g.edges_of(u) {
                round_edges += 1;
                if m.is_matched(v) {
                    continue;
                }
                let key = (w, u.min(v), u.max(v));
                if edge_better(key, best[u as usize]) {
                    best[u as usize] = key;
                }
            }
        }
        profile.phases.pointing += t0.elapsed().as_secs_f64();
        let pointers_set =
            live.iter().filter(|&&u| best[u as usize].0 != f64::NEG_INFINITY).count();
        // Commit edges that are the best at both endpoints.
        let before = m.cardinality();
        let t1 = Instant::now();
        for &u in &live {
            let (w, a, b) = best[u as usize];
            if w == f64::NEG_INFINITY || u != a {
                continue; // commit from the lower endpoint only
            }
            if best[b as usize] == (w, a, b) && !m.is_matched(a) && !m.is_matched(b) {
                m.join(a, b);
            }
        }
        profile.phases.matching += t1.elapsed().as_secs_f64();
        let t2 = Instant::now();
        let live_before = live.len();
        live.retain(|&u| !m.is_matched(u) && best[u as usize].0 != f64::NEG_INFINITY);
        profile.phases.sync += t2.elapsed().as_secs_f64();
        let new_matches = (m.cardinality() - before) as u64;
        let removed = live_before - live.len();

        metrics.counter_add(names::KERNEL_EDGES_SCANNED, round_edges);
        metrics.counter_add(names::KERNEL_POINTERS_SET, pointers_set as u64);
        metrics.counter_add(
            names::KERNEL_VERTICES_RETIRED,
            (removed - 2 * new_matches as usize) as u64,
        );
        metrics.counter_add(names::MATCHING_EDGES_COMMITTED, new_matches);
        profile.iterations.push(IterationRecord {
            iter: round,
            edges_scanned: round_edges,
            pct_edges: round_edges as f64 / total_directed as f64 * 100.0,
            new_matches,
            ..Default::default()
        });
    }
    metrics.counter_add(names::DRIVER_ITERATIONS, profile.iterations.len() as u64);
    profile.sim_time = profile.phases.total();
    LocalMaxProfiled { matching: m, profile, metrics }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::greedy;
    use crate::verify::half_approx_certificate;
    use ldgm_graph::gen::{urand, web};
    use ldgm_graph::weights::make_weights_distinct;
    use ldgm_graph::GraphBuilder;

    #[test]
    fn single_edge() {
        let g = GraphBuilder::new(2).add_edge(0, 1, 1.0).build();
        assert_eq!(local_max(&g).cardinality(), 1);
    }

    #[test]
    fn maximal_valid_certified() {
        for seed in 0..5 {
            let g = web(400, 4, 0.5, seed);
            let (m, stats) = local_max_with_stats(&g);
            assert_eq!(m.verify(&g), Ok(()));
            assert!(m.is_maximal(&g));
            assert!(half_approx_certificate(&g, &m));
            assert!(stats.rounds >= 1);
        }
    }

    #[test]
    fn equals_greedy_under_distinct_weights() {
        for seed in 0..5 {
            let g = make_weights_distinct(&urand(300, 1500, seed), seed);
            let a = local_max(&g);
            let b = greedy(&g);
            assert_eq!(a.mate_array(), b.mate_array(), "seed {seed}");
        }
    }

    #[test]
    fn profiled_run_is_consistent() {
        let g = urand(400, 2400, 6);
        let out = local_max_profiled(&g);
        assert_eq!(out.matching.mate_array(), local_max(&g).mate_array());
        assert!((out.profile.sim_time - out.profile.phases.total()).abs() < 1e-12);
        assert_eq!(
            out.metrics.counter("matching.edges_committed"),
            out.matching.cardinality() as u64
        );
        let per_round: u64 = out.profile.iterations.iter().map(|r| r.edges_scanned).sum();
        assert_eq!(per_round, out.metrics.counter("kernel.edges_scanned"));
    }

    #[test]
    fn ties_resolve_deterministically() {
        let g = GraphBuilder::new(4)
            .add_edge(0, 1, 1.0)
            .add_edge(1, 2, 1.0)
            .add_edge(2, 3, 1.0)
            .build();
        let m = local_max(&g);
        // Edge order ties break lexicographically: (0,1) then (2,3).
        assert_eq!(m.mate(0), Some(1));
        assert_eq!(m.mate(2), Some(3));
    }
}

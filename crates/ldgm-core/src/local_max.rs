//! LocalMax: the edge-centric locally dominant algorithm of Birn et al.
//! ("Efficient parallel and external matching", Euro-Par 2013).
//!
//! Each round keeps the set of still-eligible edges; an edge is committed
//! when it is the maximum (under a total order on edges) among all
//! eligible edges sharing an endpoint with it. Implemented round-wise with
//! per-vertex best-incident-edge computation: an edge is a local maximum
//! iff it is the best incident edge of *both* endpoints.

use crate::matching::Matching;
use ldgm_graph::csr::{CsrGraph, VertexId};

/// Total order on edges: weight, then lexicographic endpoint ids. Returns
/// whether `a` is better than `b`.
#[inline]
fn edge_better(a: (f64, VertexId, VertexId), b: (f64, VertexId, VertexId)) -> bool {
    a.0 > b.0 || (a.0 == b.0 && (a.1, a.2) < (b.1, b.2))
}

/// Statistics of a LocalMax run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LocalMaxStats {
    /// Number of rounds.
    pub rounds: usize,
    /// Edge slots inspected across all rounds.
    pub edges_scanned: u64,
}

/// Run LocalMax on `g`.
pub fn local_max(g: &CsrGraph) -> Matching {
    local_max_with_stats(g).0
}

/// Run LocalMax and return statistics.
pub fn local_max_with_stats(g: &CsrGraph) -> (Matching, LocalMaxStats) {
    let n = g.num_vertices();
    let mut m = Matching::new(n);
    let mut stats = LocalMaxStats::default();
    // best[v]: best eligible incident edge of v as (w, lo, hi).
    const NO_EDGE: (f64, VertexId, VertexId) = (f64::NEG_INFINITY, VertexId::MAX, VertexId::MAX);
    let mut best: Vec<(f64, VertexId, VertexId)> = vec![NO_EDGE; n];
    let mut live: Vec<VertexId> = (0..n as VertexId).filter(|&v| g.degree(v) > 0).collect();

    while !live.is_empty() {
        stats.rounds += 1;
        for &v in &live {
            best[v as usize] = NO_EDGE;
        }
        for &u in &live {
            for (v, w) in g.edges_of(u) {
                stats.edges_scanned += 1;
                if m.is_matched(v) {
                    continue;
                }
                let key = (w, u.min(v), u.max(v));
                if edge_better(key, best[u as usize]) {
                    best[u as usize] = key;
                }
            }
        }
        // Commit edges that are the best at both endpoints.
        for &u in &live {
            let (w, a, b) = best[u as usize];
            if w == f64::NEG_INFINITY || u != a {
                continue; // commit from the lower endpoint only
            }
            if best[b as usize] == (w, a, b) && !m.is_matched(a) && !m.is_matched(b) {
                m.join(a, b);
            }
        }
        live.retain(|&u| !m.is_matched(u) && best[u as usize].0 != f64::NEG_INFINITY);
    }
    (m, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::greedy::greedy;
    use crate::verify::half_approx_certificate;
    use ldgm_graph::gen::{urand, web};
    use ldgm_graph::weights::make_weights_distinct;
    use ldgm_graph::GraphBuilder;

    #[test]
    fn single_edge() {
        let g = GraphBuilder::new(2).add_edge(0, 1, 1.0).build();
        assert_eq!(local_max(&g).cardinality(), 1);
    }

    #[test]
    fn maximal_valid_certified() {
        for seed in 0..5 {
            let g = web(400, 4, 0.5, seed);
            let (m, stats) = local_max_with_stats(&g);
            assert_eq!(m.verify(&g), Ok(()));
            assert!(m.is_maximal(&g));
            assert!(half_approx_certificate(&g, &m));
            assert!(stats.rounds >= 1);
        }
    }

    #[test]
    fn equals_greedy_under_distinct_weights() {
        for seed in 0..5 {
            let g = make_weights_distinct(&urand(300, 1500, seed), seed);
            let a = local_max(&g);
            let b = greedy(&g);
            assert_eq!(a.mate_array(), b.mate_array(), "seed {seed}");
        }
    }

    #[test]
    fn ties_resolve_deterministically() {
        let g = GraphBuilder::new(4)
            .add_edge(0, 1, 1.0)
            .add_edge(1, 2, 1.0)
            .add_edge(2, 3, 1.0)
            .build();
        let m = local_max(&g);
        // Edge order ties break lexicographically: (0,1) then (2,3).
        assert_eq!(m.mate(0), Some(1));
        assert_eq!(m.mate(2), Some(3));
    }
}

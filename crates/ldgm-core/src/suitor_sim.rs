//! SR-GPU analog: the Suitor algorithm on a single simulated GPU.
//!
//! Stands in for the Naim et al. GPU Suitor the paper compares against
//! (Tables I and IV). Two fidelity points matter:
//!
//! * **Work-based cost**: the host Suitor run is instrumented (edge scans,
//!   proposals) and billed through the same warp cost model as LD-GPU, so
//!   the relative LD-vs-Suitor behaviour emerges from their genuinely
//!   different work profiles (Suitor touches each adjacency list a bounded
//!   number of times; LD rescans per round).
//! * **32-bit representation**: SR-GPU stores edges as 32-bit quantities
//!   (§IV-D: "SR-GPU uses 32-bit graph representation, while we have
//!   adopted 64-bit") and loads the whole graph onto one device with
//!   construction workspace — the source of the paper's out-of-memory
//!   failures on LARGE inputs, reproduced by [`sr_gpu_bytes`].

use crate::matching::Matching;
use crate::suitor::suitor_with_stats;
use ldgm_gpusim::metrics::names;
use ldgm_gpusim::{KernelStats, MetricsRegistry, Platform, RunProfile, SimRuntime, Trace};
use ldgm_graph::csr::CsrGraph;

/// Device bytes SR-GPU needs for `g`.
///
/// SR-GPU loads the whole graph on one device in 32-bit form and keeps the
/// COO staging copy alive through CSR construction: 12 B per directed edge
/// of COO (two 4 B ids + 4 B weight) + 8 B per directed edge of CSR
/// (4 B id + 4 B weight) + four 4 B per-vertex arrays (offsets, suitor,
/// ws, mate). This places the out-of-memory boundary exactly where the
/// paper's Table I reports it at the scaled device capacity: every LARGE
/// stand-in except com-Friendster overflows a 40 MB device.
pub fn sr_gpu_bytes(g: &CsrGraph) -> u64 {
    let n = g.num_vertices() as u64;
    let m2 = g.num_directed_edges() as u64;
    m2 * (12 + 8) + n * 16
}

/// Result of an SR-GPU simulated run.
#[derive(Clone, Debug)]
pub struct SuitorSimOutput {
    /// The Suitor matching.
    pub matching: Matching,
    /// Simulated single-device execution time (seconds).
    pub sim_time: f64,
    /// Kernel statistics of the (aggregated) proposal kernels.
    pub stats: KernelStats,
    /// Phase attribution in the LD-GPU shape (proposal kernels as
    /// pointing, atomic mate-update serialization as matching, per-round
    /// launch+sync overhead as sync); sums to `sim_time` exactly.
    pub profile: RunProfile,
    /// Run metrics.
    pub metrics: MetricsRegistry,
    /// Event trace, when requested via [`suitor_sim_traced`].
    pub trace: Option<Trace>,
}

/// Error: the graph does not fit on the device.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SrGpuOutOfMemory {
    /// Bytes required.
    pub required: u64,
    /// Bytes available on the device.
    pub available: u64,
}

impl std::fmt::Display for SrGpuOutOfMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SR-GPU out of memory: needs {} B, device has {} B",
            self.required, self.available
        )
    }
}

impl std::error::Error for SrGpuOutOfMemory {}

/// Run the simulated SR-GPU on one device of `platform`.
pub fn suitor_sim(g: &CsrGraph, platform: &Platform) -> Result<SuitorSimOutput, SrGpuOutOfMemory> {
    suitor_sim_traced(g, platform, false)
}

/// [`suitor_sim`] with an optional event trace of the simulated timeline.
pub fn suitor_sim_traced(
    g: &CsrGraph,
    platform: &Platform,
    collect_trace: bool,
) -> Result<SuitorSimOutput, SrGpuOutOfMemory> {
    let required = sr_gpu_bytes(g);
    if required > platform.device.mem_bytes {
        return Err(SrGpuOutOfMemory { required, available: platform.device.mem_bytes });
    }
    let (matching, sstats) = suitor_with_stats(g);
    let n = g.num_vertices() as u64;

    // Aggregate proposal work as warp-centric launches: one warp per
    // proposing vertex, 32-wide neighborhood waves. SR-GPU runs repeated
    // proposal rounds until no vertex is displaced; the round count tracks
    // the longest displacement chain (~log n) plus extra sweeps when the
    // proposal volume indicates heavy contention.
    let log_n = (64 - n.max(2).leading_zeros()) as u64;
    let rounds = 2 + log_n + sstats.proposals / n.max(1);
    let max_deg = g.max_degree() as u64;
    let stats = KernelStats {
        vertices: sstats.proposals.max(n),
        vertices_processed: sstats.proposals.max(n),
        warps_launched: sstats.proposals.max(n),
        warps_active: sstats.proposals.max(n),
        edge_waves: sstats.edges_scanned.div_ceil(32),
        edges_scanned: sstats.edges_scanned,
        warp_edges_sumsq: 0.0,
        // SR-GPU's fixed vertices-per-warp distribution processes each
        // vertex's list serially on one thread (the paper: "fixing
        // vertices-per-warp is not a general recipe"); the straggler is
        // the most-rescanned vertex, charged per edge rather than per
        // 32-wide wave.
        max_warp_waves: sstats.max_vertex_scans.max(max_deg),
        max_warp_vertices: rounds,
        // 32-bit loads halve the streamed adjacency traffic relative to
        // LD-GPU (4 B id + 4 B weight per scanned edge at wave
        // granularity), plus a 32 B sector per ws/suitor gather.
        bytes_read: sstats.edges_scanned.div_ceil(32) * 32 * (4 + 4) + sstats.edges_scanned * 32,
        bytes_written: sstats.proposals * 8,
    };
    // Bill through the shared runtime: one aggregated proposal launch
    // (the pointing analog), the per-round launch+sync overhead as a host
    // synchronization (the driver must observe the per-round convergence
    // flag), and — when the atomic bound dominates — a trailing
    // mate-commit span. Phase attribution is timeline-derived by
    // `SimRuntime::finish`, so it sums to `sim_time` by construction.
    let mut rt = SimRuntime::new(platform, 1).with_trace(collect_trace);
    {
        let dev = rt.device(0);
        dev.launch_kernel(None, "suitor proposals", &stats);
        dev.host_sync_with("round sync", rounds as f64 * dev.per_round_overhead());
    }
    // Standing-offer updates to one target serialize through atomic
    // exchange/retry (~200 cycles each under contention): the hottest
    // target bounds the run from below on contended (dense or hub-heavy)
    // graphs.
    let atomic_serial = sstats.max_target_updates as f64 * 200.0 / platform.device.clock_hz();
    let tail = atomic_serial - rt.horizon();
    if tail > 0.0 {
        rt.device(0).fixed_kernel("atomic mate commits", tail);
    }
    rt.counter_add(names::KERNEL_POINTERS_SET, sstats.proposals);
    rt.counter_add(names::MATCHING_EDGES_COMMITTED, matching.cardinality() as u64);
    rt.counter_add(names::DRIVER_ITERATIONS, rounds);
    rt.counter_add(names::COMM_ROUNDS, rounds);
    let fin = rt.finish();
    Ok(SuitorSimOutput {
        matching,
        sim_time: fin.sim_time,
        stats,
        profile: fin.profile,
        metrics: fin.metrics,
        trace: fin.trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suitor::suitor;
    use ldgm_gpusim::Platform;
    use ldgm_graph::gen::urand;

    #[test]
    fn produces_the_suitor_matching() {
        let g = urand(400, 2400, 1);
        let out = suitor_sim(&g, &Platform::dgx_a100()).unwrap();
        assert_eq!(out.matching.mate_array(), suitor(&g).mate_array());
        assert!(out.sim_time > 0.0);
    }

    #[test]
    fn oom_on_tiny_device() {
        let g = urand(1000, 8000, 2);
        let platform = Platform::dgx_a100().with_device_memory(1000);
        let err = suitor_sim(&g, &platform).unwrap_err();
        assert!(err.required > err.available);
    }

    #[test]
    fn memory_model_tracks_directed_edges() {
        let g = urand(1000, 8000, 3);
        let m2 = g.num_directed_edges() as u64;
        assert_eq!(sr_gpu_bytes(&g), m2 * 20 + 16_000);
        // COO + 32-bit CSR together exceed the 64-bit CSR only through the
        // staging copy; per stored edge SR-GPU's resident CSR is half.
        assert!(m2 * 8 < g.csr_bytes());
    }

    #[test]
    fn phases_sum_to_sim_time() {
        for seed in 0..4 {
            let g = urand(800, 6400, seed);
            let out = suitor_sim(&g, &Platform::dgx_a100()).unwrap();
            let total = out.profile.phases.total();
            assert!(
                (total - out.sim_time).abs() <= 1e-9 * out.sim_time,
                "phases {total} != sim_time {}",
                out.sim_time
            );
            assert_eq!(
                out.metrics.counter("matching.edges_committed"),
                out.matching.cardinality() as u64
            );
            assert!(out.metrics.counter("kernel.edges_scanned") > 0);
        }
    }

    #[test]
    fn metric_schema_matches_ld_gpu_naming() {
        let g = urand(600, 3600, 7);
        let out = suitor_sim_traced(&g, &Platform::dgx_a100(), true).unwrap();
        // Runtime-billed keys shared with LD-GPU, under the canonical
        // names from `ldgm_gpusim::metrics::names`.
        for key in ["kernel.bytes_moved", "kernel.warps_launched", "comm.collective_bytes"] {
            assert!(out.metrics.get(key).is_some(), "missing {key}");
        }
        let occ = out.metrics.gauge("kernel.occupancy").unwrap();
        assert!(occ > 0.0 && occ <= 1.0);
        assert_eq!(out.metrics.gauge("driver.devices"), Some(1.0));
        // Single device: collectives carry no wire bytes.
        assert_eq!(out.metrics.counter("comm.collective_bytes"), 0);
        // The trace spans the whole run when requested.
        let trace = out.trace.expect("trace requested");
        let (s, e) = trace.span().unwrap();
        assert_eq!(s, 0.0);
        assert!((e - out.sim_time).abs() <= 1e-9 * out.sim_time);
        assert!(suitor_sim(&g, &Platform::dgx_a100()).unwrap().trace.is_none());
    }

    #[test]
    fn more_work_costs_more_sim_time() {
        let small = urand(500, 2000, 4);
        let large = urand(5000, 40_000, 4);
        let p = Platform::dgx_a100();
        let ts = suitor_sim(&small, &p).unwrap().sim_time;
        let tl = suitor_sim(&large, &p).unwrap().sim_time;
        assert!(tl > ts);
    }
}

//! LD-SEQ: the sequential pointer-based locally dominant matching
//! (Algorithm 1 of the paper).
//!
//! Each round has two phases. *Pointing*: every live vertex points at its
//! heaviest available neighbor (ties broken by [`crate::matching::prefer`]).
//! *Matching*: mutually pointing pairs are committed, and all their
//! incident edges leave the graph. Vertices whose neighborhoods have been
//! exhausted are retired ("removed from G"). The result is maximal and
//! locally dominant, hence ½-approximate (Lemma II.2 / Corollary II.1).

use std::time::Instant;

use crate::matching::{prefer, Matching, UNMATCHED};
use ldgm_gpusim::metrics::names;
use ldgm_gpusim::{IterationRecord, MetricsRegistry, RunProfile};
use ldgm_graph::csr::{CsrGraph, VertexId};

/// Statistics of an LD-SEQ run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LdSeqStats {
    /// Rounds until the graph emptied.
    pub iterations: usize,
    /// Total edge slots inspected across all pointing phases.
    pub edges_scanned: u64,
}

/// Result of a profiled LD-SEQ run: the matching plus the same
/// profile/metrics shapes LD-GPU emits, with wall-clock phase timing in
/// place of simulated time (`profile.sim_time` is the phase sum by
/// construction).
#[derive(Clone, Debug)]
pub struct LdSeqProfiled {
    /// The computed matching.
    pub matching: Matching,
    /// Wall-clock phase breakdown and per-round records.
    pub profile: RunProfile,
    /// Run metrics (edge scans, pointers set, committed edges, rounds).
    pub metrics: MetricsRegistry,
}

/// Run LD-SEQ on `g`.
pub fn ld_seq(g: &CsrGraph) -> Matching {
    ld_seq_with_stats(g).0
}

/// Run LD-SEQ and return per-run statistics.
pub fn ld_seq_with_stats(g: &CsrGraph) -> (Matching, LdSeqStats) {
    let out = ld_seq_profiled(g);
    let stats = LdSeqStats {
        iterations: out.profile.num_iterations(),
        edges_scanned: out.metrics.counter(names::KERNEL_EDGES_SCANNED),
    };
    (out.matching, stats)
}

/// Run LD-SEQ with full observability: phase timing (pointing vs matching
/// vs retirement), per-round iteration records, and run metrics.
pub fn ld_seq_profiled(g: &CsrGraph) -> LdSeqProfiled {
    let n = g.num_vertices();
    let mut matching = Matching::new(n);
    let mut pointer: Vec<VertexId> = vec![UNMATCHED; n];
    // Live vertices: unmatched with at least one available edge remaining.
    let mut live: Vec<VertexId> = (0..n as VertexId).filter(|&v| g.degree(v) > 0).collect();
    let mut profile = RunProfile::default();
    let mut metrics = MetricsRegistry::new();
    let total_directed = g.num_directed_edges().max(1) as u64;

    while !live.is_empty() {
        let round = profile.iterations.len();
        let mut round_edges: u64 = 0;
        let mut pointers_set: u64 = 0;
        // Phase 1: pointing.
        let t0 = Instant::now();
        for &u in &live {
            let mut best: VertexId = UNMATCHED;
            let mut best_w = f64::NEG_INFINITY;
            for (v, w) in g.edges_of(u) {
                round_edges += 1;
                if !matching.is_matched(v) && prefer(w, v, best_w, best) {
                    best = v;
                    best_w = w;
                }
            }
            pointer[u as usize] = best;
            pointers_set += (best != UNMATCHED) as u64;
        }
        profile.phases.pointing += t0.elapsed().as_secs_f64();
        // Phase 2: matching (mutual pointers).
        let before = matching.cardinality();
        let t1 = Instant::now();
        for &u in &live {
            let v = pointer[u as usize];
            if v != UNMATCHED && u < v && pointer[v as usize] == u {
                matching.join(u, v);
            }
        }
        profile.phases.matching += t1.elapsed().as_secs_f64();
        // Retire matched and exhausted vertices ("remove from G").
        let t2 = Instant::now();
        let live_before = live.len();
        live.retain(|&u| !matching.is_matched(u) && pointer[u as usize] != UNMATCHED);
        profile.phases.sync += t2.elapsed().as_secs_f64();
        let new_matches = (matching.cardinality() - before) as u64;
        let exhausted = live_before - live.len() - 2 * new_matches as usize;

        metrics.counter_add(names::KERNEL_EDGES_SCANNED, round_edges);
        metrics.counter_add(names::KERNEL_POINTERS_SET, pointers_set);
        metrics.counter_add(names::KERNEL_VERTICES_RETIRED, exhausted as u64);
        metrics.counter_add(names::MATCHING_EDGES_COMMITTED, new_matches);
        profile.iterations.push(IterationRecord {
            iter: round,
            edges_scanned: round_edges,
            pct_edges: round_edges as f64 / total_directed as f64 * 100.0,
            new_matches,
            ..Default::default()
        });
    }
    metrics.counter_add(names::DRIVER_ITERATIONS, profile.iterations.len() as u64);
    profile.sim_time = profile.phases.total();
    LdSeqProfiled { matching, profile, metrics }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::half_approx_certificate;
    use ldgm_graph::gen::{rmat, urand, RmatParams};
    use ldgm_graph::GraphBuilder;

    #[test]
    fn empty_graph() {
        let g = CsrGraph::empty(5);
        let m = ld_seq(&g);
        assert_eq!(m.cardinality(), 0);
    }

    #[test]
    fn single_edge() {
        let g = GraphBuilder::new(2).add_edge(0, 1, 3.0).build();
        let m = ld_seq(&g);
        assert_eq!(m.mate(0), Some(1));
    }

    #[test]
    fn paper_figure1_example() {
        // Fig. 1 of the paper: path 0-1-2-3-4-5 with weights 8,3,5,4,2 on
        // consecutive edges. First round: {0,1} and {3,4} are locally
        // dominant (8 and 5... per figure {1,0} and {3,4}).
        let g = GraphBuilder::new(6)
            .add_edge(0, 1, 8.0)
            .add_edge(1, 2, 3.0)
            .add_edge(2, 3, 5.0)
            .add_edge(3, 4, 4.0)
            .add_edge(4, 5, 2.0)
            .build();
        let m = ld_seq(&g);
        assert_eq!(m.mate(0), Some(1));
        assert_eq!(m.mate(2), Some(3));
        // 4 and 5 pair up in a later round ({2,3} removal frees nothing —
        // after {2,3} matched, 4's best available is 5).
        assert_eq!(m.mate(4), Some(5));
        assert_eq!(m.weight(&g), 8.0 + 5.0 + 2.0);
    }

    #[test]
    fn heaviest_edge_always_matched() {
        let g = urand(500, 3000, 1);
        let m = ld_seq(&g);
        let (hu, hv, _) = g
            .iter_edges()
            .max_by(|a, b| a.2.total_cmp(&b.2).then_with(|| (b.0, b.1).cmp(&(a.0, a.1))))
            .unwrap();
        // The globally heaviest edge's endpoints must both be matched at
        // weight >= w(h): one of them matched the other or something equal.
        let w = g.edge_weight(hu, hv).unwrap();
        for x in [hu, hv] {
            let mx = m.mate(x).expect("endpoint of heaviest edge unmatched");
            assert!(g.edge_weight(x, mx).unwrap() >= w);
        }
    }

    #[test]
    fn maximal_and_valid_on_random_graphs() {
        for seed in 0..5 {
            let g = urand(400, 2400, seed);
            let (m, stats) = ld_seq_with_stats(&g);
            assert_eq!(m.verify(&g), Ok(()));
            assert!(m.is_maximal(&g));
            assert!(stats.iterations >= 1);
            assert!(half_approx_certificate(&g, &m));
        }
    }

    #[test]
    fn handles_heavy_ties() {
        // All weights equal: tie-breaking by id must still produce a
        // maximal matching without livelock.
        let g = urand(300, 1800, 7);
        let uniform = ldgm_graph::weights::reweight_uniform(&g, 1);
        let mut same = uniform.clone();
        // Overwrite: every weight 0.5.
        let offs = same.offsets().to_vec();
        let adj = same.adjacency().to_vec();
        let w = vec![0.5; adj.len()];
        same = CsrGraph::from_raw(offs, adj, w);
        let m = ld_seq(&same);
        assert_eq!(m.verify(&same), Ok(()));
        assert!(m.is_maximal(&same));
    }

    #[test]
    fn first_iteration_scans_all_live_edges() {
        let g = rmat(512, 4000, RmatParams::GAP_KRON, 3);
        let (_, stats) = ld_seq_with_stats(&g);
        // At least one full pass over the directed adjacency of non-isolated
        // vertices happened.
        assert!(stats.edges_scanned >= g.num_directed_edges() as u64);
    }

    #[test]
    fn profiled_run_is_consistent() {
        let g = urand(500, 3000, 9);
        let out = ld_seq_profiled(&g);
        assert_eq!(out.matching.mate_array(), ld_seq(&g).mate_array());
        // Phase sum defines the run time.
        assert!((out.profile.sim_time - out.profile.phases.total()).abs() < 1e-12);
        assert!(out.profile.sim_time > 0.0);
        // Committed edges metric equals the matching's cardinality.
        assert_eq!(
            out.metrics.counter("matching.edges_committed"),
            out.matching.cardinality() as u64
        );
        assert_eq!(out.metrics.counter("driver.iterations"), out.profile.num_iterations() as u64);
        // Per-round edge scans sum to the total.
        let per_round: u64 = out.profile.iterations.iter().map(|r| r.edges_scanned).sum();
        assert_eq!(per_round, out.metrics.counter("kernel.edges_scanned"));
    }

    #[test]
    fn star_graph_matches_heaviest_leaf() {
        let mut b = GraphBuilder::new(5);
        b.push_edge(0, 1, 1.0);
        b.push_edge(0, 2, 5.0);
        b.push_edge(0, 3, 3.0);
        b.push_edge(0, 4, 2.0);
        let g = b.build();
        let m = ld_seq(&g);
        assert_eq!(m.mate(0), Some(2));
        assert_eq!(m.cardinality(), 1);
    }
}

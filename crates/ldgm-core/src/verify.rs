//! Matching-quality verification utilities.
//!
//! Beyond structural validity ([`crate::matching::Matching::verify`]) and
//! maximality, this module provides the *dominance certificate*: a static,
//! linear-time check that implies the ½-approximation bound without
//! knowing the optimum.

use crate::matching::Matching;
use ldgm_graph::csr::{CsrGraph, VertexId};

/// Check the ½-approximation dominance certificate: for every edge
/// `{u, v}` of `g`, at least one endpoint is matched by an edge of weight
/// ≥ `w({u, v})`.
///
/// Every maximal *locally dominant* matching satisfies this (each edge was
/// beaten by an adjacent edge at the moment that edge entered the
/// matching, and matched weights only accumulate). The certificate implies
/// `w(M) ≥ ½·w(M*)`: charge each optimal edge to a dominating adjacent
/// matched edge; a matched edge is charged at most twice (once per
/// endpoint), each time by an edge no heavier than itself.
pub fn half_approx_certificate(g: &CsrGraph, m: &Matching) -> bool {
    let matched_weight = |x: VertexId| -> f64 {
        m.mate(x)
            .map(|y| g.edge_weight(x, y).expect("matched non-edge"))
            .unwrap_or(f64::NEG_INFINITY)
    };
    for (u, v, w) in g.iter_edges() {
        if matched_weight(u) < w && matched_weight(v) < w {
            return false;
        }
    }
    true
}

/// Exhaustive maximum-weight matching by recursion over edges — only for
/// cross-checking tiny graphs (|E| ≤ ~20) in tests.
pub fn brute_force_mwm(g: &CsrGraph) -> f64 {
    let edges: Vec<(VertexId, VertexId, f64)> = g.iter_edges().collect();
    assert!(edges.len() <= 24, "brute force limited to tiny graphs");
    fn rec(edges: &[(VertexId, VertexId, f64)], used: &mut Vec<bool>, idx: usize) -> f64 {
        if idx == edges.len() {
            return 0.0;
        }
        // Skip edge idx.
        let mut best = rec(edges, used, idx + 1);
        let (u, v, w) = edges[idx];
        if !used[u as usize] && !used[v as usize] {
            used[u as usize] = true;
            used[v as usize] = true;
            best = best.max(w + rec(edges, used, idx + 1));
            used[u as usize] = false;
            used[v as usize] = false;
        }
        best
    }
    let mut used = vec![false; g.num_vertices()];
    rec(&edges, &mut used, 0)
}

/// Relative quality `w(M) / w(M*)`, given the optimal weight.
pub fn quality_ratio(weight: f64, optimal: f64) -> f64 {
    if optimal == 0.0 {
        1.0
    } else {
        weight / optimal
    }
}

/// Percentage difference from the optimum, the paper's Table II metric
/// (lower is better): `(w(M*) − w(M)) / w(M*) · 100`.
pub fn pct_diff_from_optimal(weight: f64, optimal: f64) -> f64 {
    if optimal == 0.0 {
        0.0
    } else {
        (optimal - weight) / optimal * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ld_seq::ld_seq;
    use ldgm_graph::gen::urand;
    use ldgm_graph::GraphBuilder;

    #[test]
    fn certificate_holds_for_ld_matchings() {
        for seed in 0..5 {
            let g = urand(200, 1000, seed);
            let m = ld_seq(&g);
            assert!(half_approx_certificate(&g, &m), "seed {seed}");
        }
    }

    #[test]
    fn certificate_fails_for_bad_matching() {
        // Path with a heavy middle edge; match only the light ends.
        let g = GraphBuilder::new(4)
            .add_edge(0, 1, 1.0)
            .add_edge(1, 2, 10.0)
            .add_edge(2, 3, 1.0)
            .build();
        let mut m = Matching::new(4);
        m.join(0, 1);
        m.join(2, 3);
        // {1,2} (weight 10) dominates both matched edges: certificate fails.
        assert!(!half_approx_certificate(&g, &m));
    }

    #[test]
    fn certificate_implies_half_bound_on_tiny_graphs() {
        for seed in 0..20 {
            let g = urand(8, 12, seed);
            if g.num_edges() > 20 {
                continue;
            }
            let m = ld_seq(&g);
            let opt = brute_force_mwm(&g);
            assert!(half_approx_certificate(&g, &m), "seed {seed}");
            assert!(m.weight(&g) >= 0.5 * opt - 1e-9, "seed {seed}");
        }
    }

    #[test]
    fn brute_force_simple() {
        // Triangle: best single edge.
        let g = GraphBuilder::new(3)
            .add_edge(0, 1, 1.0)
            .add_edge(1, 2, 2.0)
            .add_edge(0, 2, 3.0)
            .build();
        assert_eq!(brute_force_mwm(&g), 3.0);
        // Path taking both ends beats middle: 1+1 < 10 though.
        let p = GraphBuilder::new(4)
            .add_edge(0, 1, 1.0)
            .add_edge(1, 2, 10.0)
            .add_edge(2, 3, 1.0)
            .build();
        assert_eq!(brute_force_mwm(&p), 10.0);
    }

    #[test]
    fn pct_diff_and_ratio() {
        assert_eq!(pct_diff_from_optimal(95.0, 100.0), 5.0);
        assert_eq!(quality_ratio(50.0, 100.0), 0.5);
        assert_eq!(pct_diff_from_optimal(0.0, 0.0), 0.0);
        assert_eq!(quality_ratio(0.0, 0.0), 1.0);
    }
}

//! Exact maximum-weight matching in general graphs (Edmonds' blossom
//! algorithm), standing in for the LEMON library the paper uses as its
//! quality reference (Table II).
//!
//! This is a faithful Rust port of the classic O(n³) primal–dual
//! implementation by Galil ("Efficient algorithms for finding maximum
//! matching in graphs", 1986) as popularized by van Rantwijk's
//! `mwmatching`: stages of augmentation with dual-variable adjustment and
//! blossom shrinking/expansion. Weights are integers internally; the
//! public wrapper scales `f64` weights (exact for the paper's 3-decimal
//! scheme) and doubles them so every dual update stays integral.
//!
//! Complexity: O(n·m·log n) to O(n³); intended for the SMALL quality
//! instances only, exactly like LEMON in the paper ("we are able to only
//! execute LEMON on the SMALL instances").

use crate::matching::Matching;
use ldgm_graph::csr::{CsrGraph, VertexId};

const NONE: usize = usize::MAX;

/// Compute a maximum-weight matching of `g` exactly.
///
/// Weights are quantized as `round(w * scale)`; pass `scale = 1000.0` for
/// the paper's 3-decimal uniform weights (exact), or a larger scale for
/// continuous weights (then the result is optimal for the quantized
/// instance).
pub fn blossom_mwm(g: &CsrGraph, scale: f64) -> Matching {
    let edges: Vec<(usize, usize, i64)> = g
        .iter_edges()
        .map(|(u, v, w)| (u as usize, v as usize, (w * scale).round() as i64))
        .collect();
    let mate = max_weight_matching(g.num_vertices(), &edges);
    let mut m = Matching::new(g.num_vertices());
    for (v, &mv) in mate.iter().enumerate() {
        if mv != NONE && v < mv {
            m.join(v as VertexId, mv as VertexId);
        }
    }
    m
}

/// Core solver over an explicit integer-weighted edge list. Returns the
/// mate array (`NONE` = unmatched).
pub fn max_weight_matching(nvertex: usize, edge_list: &[(usize, usize, i64)]) -> Vec<usize> {
    if nvertex == 0 || edge_list.is_empty() {
        return vec![NONE; nvertex];
    }
    // Double the weights so delta3 = slack/2 stays integral.
    let edges: Vec<(usize, usize, i64)> =
        edge_list.iter().map(|&(i, j, w)| (i, j, 2 * w)).collect();
    let nedge = edges.len();
    let maxweight = edges.iter().map(|e| e.2).max().unwrap().max(0);

    // endpoint[p]: vertex at endpoint p of edge p/2.
    let endpoint: Vec<usize> =
        (0..2 * nedge).map(|p| if p % 2 == 0 { edges[p / 2].0 } else { edges[p / 2].1 }).collect();
    // neighbend[v]: remote endpoints of edges incident to v.
    let mut neighbend: Vec<Vec<usize>> = vec![Vec::new(); nvertex];
    for (k, &(i, j, _)) in edges.iter().enumerate() {
        neighbend[i].push(2 * k + 1);
        neighbend[j].push(2 * k);
    }

    // mate[v]: remote endpoint of matched edge, or NONE.
    let mut mate: Vec<usize> = vec![NONE; nvertex];
    // label[b]: 0 free, 1 S, 2 T, 5 breadcrumb (top-level blossoms and,
    // transiently, vertices inside T-blossoms).
    let mut label: Vec<u8> = vec![0; 2 * nvertex];
    let mut labelend: Vec<usize> = vec![NONE; 2 * nvertex];
    let mut inblossom: Vec<usize> = (0..nvertex).collect();
    let mut blossomparent: Vec<usize> = vec![NONE; 2 * nvertex];
    let mut blossomchilds: Vec<Vec<usize>> = vec![Vec::new(); 2 * nvertex];
    let mut blossombase: Vec<usize> =
        (0..nvertex).chain(std::iter::repeat_n(NONE, nvertex)).collect();
    let mut blossomendps: Vec<Vec<usize>> = vec![Vec::new(); 2 * nvertex];
    let mut bestedge: Vec<usize> = vec![NONE; 2 * nvertex];
    let mut blossombestedges: Vec<Option<Vec<usize>>> = vec![None; 2 * nvertex];
    let mut unusedblossoms: Vec<usize> = (nvertex..2 * nvertex).collect();
    let mut dualvar: Vec<i64> =
        std::iter::repeat_n(maxweight, nvertex).chain(std::iter::repeat_n(0, nvertex)).collect();
    let mut allowedge: Vec<bool> = vec![false; nedge];
    let mut queue: Vec<usize> = Vec::new();

    let slack = |dualvar: &[i64], k: usize| -> i64 {
        let (i, j, wt) = edges[k];
        dualvar[i] + dualvar[j] - wt
    };

    // Collect the leaf vertices of blossom b.
    fn blossom_leaves(
        b: usize,
        nvertex: usize,
        blossomchilds: &[Vec<usize>],
        out: &mut Vec<usize>,
    ) {
        if b < nvertex {
            out.push(b);
        } else {
            for &t in &blossomchilds[b] {
                blossom_leaves(t, nvertex, blossomchilds, out);
            }
        }
    }

    // assignLabel(w, t, p)
    #[allow(clippy::too_many_arguments)]
    fn assign_label(
        w: usize,
        t: u8,
        p: usize,
        nvertex: usize,
        endpoint: &[usize],
        mate: &[usize],
        label: &mut [u8],
        labelend: &mut [usize],
        inblossom: &[usize],
        blossombase: &[usize],
        blossomchilds: &[Vec<usize>],
        bestedge: &mut [usize],
        queue: &mut Vec<usize>,
    ) {
        let b = inblossom[w];
        debug_assert!(label[w] == 0 && label[b] == 0);
        label[w] = t;
        label[b] = t;
        labelend[w] = p;
        labelend[b] = p;
        bestedge[w] = NONE;
        bestedge[b] = NONE;
        if t == 1 {
            let mut leaves = Vec::new();
            blossom_leaves(b, nvertex, blossomchilds, &mut leaves);
            queue.extend(leaves);
        } else if t == 2 {
            let base = blossombase[b];
            debug_assert!(mate[base] != NONE);
            assign_label(
                endpoint[mate[base]],
                1,
                mate[base] ^ 1,
                nvertex,
                endpoint,
                mate,
                label,
                labelend,
                inblossom,
                blossombase,
                blossomchilds,
                bestedge,
                queue,
            );
        }
    }

    // scanBlossom(v, w) -> base or NONE
    let scan_blossom = |v0: usize,
                        w0: usize,
                        label: &mut [u8],
                        labelend: &[usize],
                        inblossom: &[usize],
                        blossombase: &[usize],
                        mate: &[usize]|
     -> usize {
        let mut path: Vec<usize> = Vec::new();
        let mut base = NONE;
        let mut v = v0;
        let mut w = w0;
        while v != NONE || w != NONE {
            let mut b = inblossom[v];
            if label[b] & 4 != 0 {
                base = blossombase[b];
                break;
            }
            debug_assert_eq!(label[b], 1);
            path.push(b);
            label[b] = 5;
            debug_assert_eq!(labelend[b], mate[blossombase[b]]);
            if labelend[b] == NONE {
                v = NONE;
            } else {
                v = endpoint[labelend[b]];
                b = inblossom[v];
                debug_assert_eq!(label[b], 2);
                debug_assert!(labelend[b] != NONE);
                v = endpoint[labelend[b]];
            }
            if w != NONE {
                std::mem::swap(&mut v, &mut w);
            }
        }
        for b in path {
            label[b] = 1;
        }
        base
    };

    // Main stages.
    for _stage in 0..nvertex {
        label.iter_mut().for_each(|l| *l = 0);
        bestedge.iter_mut().for_each(|b| *b = NONE);
        for be in blossombestedges.iter_mut().skip(nvertex) {
            *be = None;
        }
        allowedge.iter_mut().for_each(|a| *a = false);
        queue.clear();

        for v in 0..nvertex {
            if mate[v] == NONE && label[inblossom[v]] == 0 {
                assign_label(
                    v,
                    1,
                    NONE,
                    nvertex,
                    &endpoint,
                    &mate,
                    &mut label,
                    &mut labelend,
                    &inblossom,
                    &blossombase,
                    &blossomchilds,
                    &mut bestedge,
                    &mut queue,
                );
            }
        }

        let mut augmented = false;
        loop {
            // Substage: scan the queue.
            while let Some(v) = queue.pop() {
                debug_assert_eq!(label[inblossom[v]], 1);
                let nb = neighbend[v].clone();
                let mut broke = false;
                for p in nb {
                    let k = p / 2;
                    let w = endpoint[p];
                    if inblossom[v] == inblossom[w] {
                        continue;
                    }
                    let mut kslack = 0;
                    if !allowedge[k] {
                        kslack = slack(&dualvar, k);
                        if kslack <= 0 {
                            allowedge[k] = true;
                        }
                    }
                    if allowedge[k] {
                        if label[inblossom[w]] == 0 {
                            // (C1) free vertex: label T.
                            assign_label(
                                w,
                                2,
                                p ^ 1,
                                nvertex,
                                &endpoint,
                                &mate,
                                &mut label,
                                &mut labelend,
                                &inblossom,
                                &blossombase,
                                &blossomchilds,
                                &mut bestedge,
                                &mut queue,
                            );
                        } else if label[inblossom[w]] == 1 {
                            // (C2) S-vertex: blossom or augmenting path.
                            let base = scan_blossom(
                                v,
                                w,
                                &mut label,
                                &labelend,
                                &inblossom,
                                &blossombase,
                                &mate,
                            );
                            if base != NONE {
                                add_blossom(
                                    base,
                                    k,
                                    nvertex,
                                    &edges,
                                    &endpoint,
                                    &neighbend,
                                    &mate,
                                    &mut label,
                                    &mut labelend,
                                    &mut inblossom,
                                    &mut blossomparent,
                                    &mut blossomchilds,
                                    &mut blossombase,
                                    &mut blossomendps,
                                    &mut bestedge,
                                    &mut blossombestedges,
                                    &mut unusedblossoms,
                                    &mut dualvar,
                                    &mut queue,
                                );
                            } else {
                                augment_matching(
                                    k,
                                    nvertex,
                                    &edges,
                                    &endpoint,
                                    &mut mate,
                                    &label,
                                    &labelend,
                                    &inblossom,
                                    &mut blossomchilds,
                                    &mut blossomendps,
                                    &mut blossombase,
                                    &blossomparent,
                                );
                                augmented = true;
                                broke = true;
                                break;
                            }
                        } else if label[w] == 0 {
                            debug_assert_eq!(label[inblossom[w]], 2);
                            label[w] = 2;
                            labelend[w] = p ^ 1;
                        }
                    } else if label[inblossom[w]] == 1 {
                        let b = inblossom[v];
                        if bestedge[b] == NONE || kslack < slack(&dualvar, bestedge[b]) {
                            bestedge[b] = k;
                        }
                    } else if label[w] == 0
                        && (bestedge[w] == NONE || kslack < slack(&dualvar, bestedge[w]))
                    {
                        bestedge[w] = k;
                    }
                }
                if broke {
                    break;
                }
            }
            if augmented {
                break;
            }

            // Dual adjustment.
            let mut deltatype: i32 = 1;
            let mut delta: i64 = dualvar[..nvertex].iter().copied().min().unwrap();
            let mut deltaedge = NONE;
            let mut deltablossom = NONE;
            for v in 0..nvertex {
                if label[inblossom[v]] == 0 && bestedge[v] != NONE {
                    let d = slack(&dualvar, bestedge[v]);
                    if d < delta {
                        delta = d;
                        deltatype = 2;
                        deltaedge = bestedge[v];
                    }
                }
            }
            for b in 0..2 * nvertex {
                if blossomparent[b] == NONE && label[b] == 1 && bestedge[b] != NONE {
                    let kslack = slack(&dualvar, bestedge[b]);
                    debug_assert_eq!(kslack % 2, 0);
                    let d = kslack / 2;
                    if d < delta {
                        delta = d;
                        deltatype = 3;
                        deltaedge = bestedge[b];
                    }
                }
            }
            for b in nvertex..2 * nvertex {
                if blossombase[b] != NONE
                    && blossomparent[b] == NONE
                    && label[b] == 2
                    && dualvar[b] < delta
                {
                    delta = dualvar[b];
                    deltatype = 4;
                    deltablossom = b;
                }
            }

            // Update duals.
            for v in 0..nvertex {
                match label[inblossom[v]] {
                    1 => dualvar[v] -= delta,
                    2 => dualvar[v] += delta,
                    _ => {}
                }
            }
            for b in nvertex..2 * nvertex {
                if blossombase[b] != NONE && blossomparent[b] == NONE {
                    match label[b] {
                        1 => dualvar[b] += delta,
                        2 => dualvar[b] -= delta,
                        _ => {}
                    }
                }
            }

            match deltatype {
                1 => break, // optimum reached
                2 => {
                    allowedge[deltaedge] = true;
                    let (mut i, j, _) = edges[deltaedge];
                    if label[inblossom[i]] == 0 {
                        i = j;
                    }
                    debug_assert_eq!(label[inblossom[i]], 1);
                    queue.push(i);
                }
                3 => {
                    allowedge[deltaedge] = true;
                    let (i, _, _) = edges[deltaedge];
                    debug_assert_eq!(label[inblossom[i]], 1);
                    queue.push(i);
                }
                4 => {
                    expand_blossom(
                        deltablossom,
                        false,
                        nvertex,
                        &endpoint,
                        &mate,
                        &mut label,
                        &mut labelend,
                        &mut inblossom,
                        &mut blossomparent,
                        &mut blossomchilds,
                        &mut blossombase,
                        &mut blossomendps,
                        &mut bestedge,
                        &mut blossombestedges,
                        &mut unusedblossoms,
                        &mut dualvar,
                        &mut allowedge,
                        &mut queue,
                    );
                }
                _ => unreachable!(),
            }
        }

        if !augmented {
            break;
        }

        // End of stage: expand S-blossoms with zero dual.
        for b in nvertex..2 * nvertex {
            if blossomparent[b] == NONE
                && blossombase[b] != NONE
                && label[b] == 1
                && dualvar[b] == 0
            {
                expand_blossom(
                    b,
                    true,
                    nvertex,
                    &endpoint,
                    &mate,
                    &mut label,
                    &mut labelend,
                    &mut inblossom,
                    &mut blossomparent,
                    &mut blossomchilds,
                    &mut blossombase,
                    &mut blossomendps,
                    &mut bestedge,
                    &mut blossombestedges,
                    &mut unusedblossoms,
                    &mut dualvar,
                    &mut allowedge,
                    &mut queue,
                );
            }
        }
    }

    // Convert mate endpoints to vertex ids.
    let mut out = vec![NONE; nvertex];
    for v in 0..nvertex {
        if mate[v] != NONE {
            out[v] = endpoint[mate[v]];
        }
    }
    out
}

/// addBlossom(base, k): shrink the discovered odd cycle into a new blossom.
#[allow(clippy::too_many_arguments)]
fn add_blossom(
    base: usize,
    k: usize,
    nvertex: usize,
    edges: &[(usize, usize, i64)],
    endpoint: &[usize],
    neighbend: &[Vec<usize>],
    mate: &[usize],
    label: &mut [u8],
    labelend: &mut [usize],
    inblossom: &mut [usize],
    blossomparent: &mut [usize],
    blossomchilds: &mut [Vec<usize>],
    blossombase: &mut [usize],
    blossomendps: &mut [Vec<usize>],
    bestedge: &mut [usize],
    blossombestedges: &mut [Option<Vec<usize>>],
    unusedblossoms: &mut Vec<usize>,
    dualvar: &mut [i64],
    queue: &mut Vec<usize>,
) {
    let (mut v, mut w, _) = edges[k];
    let bb = inblossom[base];
    let mut bv = inblossom[v];
    let mut bw = inblossom[w];
    let b = unusedblossoms.pop().expect("blossom pool exhausted");
    blossombase[b] = base;
    blossomparent[b] = NONE;
    blossomparent[bb] = b;

    let mut path: Vec<usize> = Vec::new();
    let mut endps: Vec<usize> = Vec::new();
    // Trace back from v to base.
    while bv != bb {
        blossomparent[bv] = b;
        path.push(bv);
        endps.push(labelend[bv]);
        debug_assert!(label[bv] == 2 || (label[bv] == 1 && labelend[bv] == mate[blossombase[bv]]));
        debug_assert!(labelend[bv] != NONE);
        v = endpoint[labelend[bv]];
        bv = inblossom[v];
    }
    path.push(bb);
    path.reverse();
    endps.reverse();
    endps.push(2 * k);
    // Trace back from w to base.
    while bw != bb {
        blossomparent[bw] = b;
        path.push(bw);
        endps.push(labelend[bw] ^ 1);
        debug_assert!(label[bw] == 2 || (label[bw] == 1 && labelend[bw] == mate[blossombase[bw]]));
        debug_assert!(labelend[bw] != NONE);
        w = endpoint[labelend[bw]];
        bw = inblossom[w];
    }

    debug_assert_eq!(label[bb], 1);
    label[b] = 1;
    labelend[b] = labelend[bb];
    dualvar[b] = 0;

    // Relabel leaf vertices.
    let mut leaves = Vec::new();
    collect_leaves(b, nvertex, blossomchilds, &path, &mut leaves);
    for &lv in &leaves {
        if label[inblossom[lv]] == 2 {
            queue.push(lv);
        }
        inblossom[lv] = b;
    }

    // Compute blossombestedges[b].
    let slack = |dualvar: &[i64], k: usize| -> i64 {
        let (i, j, wt) = edges[k];
        dualvar[i] + dualvar[j] - wt
    };
    let mut bestedgeto: Vec<usize> = vec![NONE; 2 * nvertex];
    for &bvv in &path {
        let nblists: Vec<Vec<usize>> = match blossombestedges[bvv].take() {
            Some(list) => vec![list],
            None => {
                let mut lvs = Vec::new();
                leaves_of(bvv, nvertex, blossomchilds, &mut lvs);
                lvs.iter().map(|&lv| neighbend[lv].iter().map(|&p| p / 2).collect()).collect()
            }
        };
        for nblist in nblists {
            for kk in nblist {
                let (mut i, mut j, _) = edges[kk];
                if inblossom[j] == b {
                    std::mem::swap(&mut i, &mut j);
                }
                let _ = i;
                let bj = inblossom[j];
                if bj != b
                    && label[bj] == 1
                    && (bestedgeto[bj] == NONE
                        || slack(dualvar, kk) < slack(dualvar, bestedgeto[bj]))
                {
                    bestedgeto[bj] = kk;
                }
            }
        }
        blossombestedges[bvv] = None;
        bestedge[bvv] = NONE;
    }
    let belist: Vec<usize> = bestedgeto.into_iter().filter(|&kk| kk != NONE).collect();
    bestedge[b] = NONE;
    for &kk in &belist {
        if bestedge[b] == NONE || slack(dualvar, kk) < slack(dualvar, bestedge[b]) {
            bestedge[b] = kk;
        }
    }
    blossombestedges[b] = Some(belist);
    blossomchilds[b] = path;
    blossomendps[b] = endps;
}

/// Collect leaves of the *new* blossom `b` whose children are in `path`
/// (blossomchilds[b] is not yet assigned when this runs).
fn collect_leaves(
    _b: usize,
    nvertex: usize,
    blossomchilds: &[Vec<usize>],
    path: &[usize],
    out: &mut Vec<usize>,
) {
    for &c in path {
        leaves_of(c, nvertex, blossomchilds, out);
    }
}

fn leaves_of(b: usize, nvertex: usize, blossomchilds: &[Vec<usize>], out: &mut Vec<usize>) {
    if b < nvertex {
        out.push(b);
    } else {
        for &t in &blossomchilds[b] {
            leaves_of(t, nvertex, blossomchilds, out);
        }
    }
}

/// expandBlossom(b, endstage).
#[allow(clippy::too_many_arguments)]
fn expand_blossom(
    b: usize,
    endstage: bool,
    nvertex: usize,
    endpoint: &[usize],
    mate: &[usize],
    label: &mut [u8],
    labelend: &mut [usize],
    inblossom: &mut [usize],
    blossomparent: &mut [usize],
    blossomchilds: &mut [Vec<usize>],
    blossombase: &mut [usize],
    blossomendps: &mut [Vec<usize>],
    bestedge: &mut [usize],
    blossombestedges: &mut [Option<Vec<usize>>],
    unusedblossoms: &mut Vec<usize>,
    dualvar: &mut [i64],
    allowedge: &mut [bool],
    queue: &mut Vec<usize>,
) {
    let childs = blossomchilds[b].clone();
    for &s in &childs {
        blossomparent[s] = NONE;
        if s < nvertex {
            inblossom[s] = s;
        } else if endstage && dualvar[s] == 0 {
            expand_blossom(
                s,
                endstage,
                nvertex,
                endpoint,
                mate,
                label,
                labelend,
                inblossom,
                blossomparent,
                blossomchilds,
                blossombase,
                blossomendps,
                bestedge,
                blossombestedges,
                unusedblossoms,
                dualvar,
                allowedge,
                queue,
            );
        } else {
            let mut lvs = Vec::new();
            leaves_of(s, nvertex, blossomchilds, &mut lvs);
            for lv in lvs {
                inblossom[lv] = s;
            }
        }
    }

    if !endstage && label[b] == 2 {
        debug_assert!(labelend[b] != NONE);
        let entrychild = inblossom[endpoint[labelend[b] ^ 1]];
        let len = blossomchilds[b].len() as isize;
        let mut j =
            blossomchilds[b].iter().position(|&c| c == entrychild).expect("entry child missing")
                as isize;
        let (jstep, endptrick): (isize, usize) = if j & 1 != 0 {
            j -= len;
            (1, 0)
        } else {
            (-1, 1)
        };
        let idx = |j: isize| -> usize {
            let len = blossomchilds[b].len() as isize;
            (((j % len) + len) % len) as usize
        };
        let mut p = labelend[b];
        while j != 0 {
            // Relabel the T-sub-blossom.
            label[endpoint[p ^ 1]] = 0;
            let ep = blossomendps[b][idx(j - endptrick as isize)] ^ endptrick ^ 1;
            label[endpoint[ep]] = 0;
            assign_label_free(
                endpoint[p ^ 1],
                2,
                p,
                nvertex,
                endpoint,
                mate,
                label,
                labelend,
                inblossom,
                blossombase,
                blossomchilds,
                bestedge,
                queue,
            );
            allowedge[blossomendps[b][idx(j - endptrick as isize)] / 2] = true;
            j += jstep;
            p = blossomendps[b][idx(j - endptrick as isize)] ^ endptrick;
            allowedge[p / 2] = true;
            j += jstep;
        }
        // Relabel the base T-sub-blossom without stepping to its mate.
        let bv = blossomchilds[b][idx(j)];
        label[endpoint[p ^ 1]] = 2;
        label[bv] = 2;
        labelend[endpoint[p ^ 1]] = p;
        labelend[bv] = p;
        bestedge[bv] = NONE;
        // Continue along the blossom until back at entrychild.
        j += jstep;
        while blossomchilds[b][idx(j)] != entrychild {
            let bv = blossomchilds[b][idx(j)];
            if label[bv] == 1 {
                j += jstep;
                continue;
            }
            let mut lvs = Vec::new();
            leaves_of(bv, nvertex, blossomchilds, &mut lvs);
            let mut vfound = NONE;
            for &lv in &lvs {
                if label[lv] != 0 {
                    vfound = lv;
                    break;
                }
            }
            if vfound != NONE {
                debug_assert_eq!(label[vfound], 2);
                debug_assert_eq!(inblossom[vfound], bv);
                label[vfound] = 0;
                label[endpoint[mate[blossombase[bv]]]] = 0;
                assign_label_free(
                    vfound,
                    2,
                    labelend[vfound],
                    nvertex,
                    endpoint,
                    mate,
                    label,
                    labelend,
                    inblossom,
                    blossombase,
                    blossomchilds,
                    bestedge,
                    queue,
                );
            }
            j += jstep;
        }
    }

    // Recycle the blossom.
    label[b] = 0;
    labelend[b] = NONE;
    blossomchilds[b].clear();
    blossomendps[b].clear();
    blossombase[b] = NONE;
    blossombestedges[b] = None;
    bestedge[b] = NONE;
    unusedblossoms.push(b);
}

/// Free-function twin of the closure-captured `assign_label` used by the
/// main loop (expansion needs it too).
#[allow(clippy::too_many_arguments)]
fn assign_label_free(
    w: usize,
    t: u8,
    p: usize,
    nvertex: usize,
    endpoint: &[usize],
    mate: &[usize],
    label: &mut [u8],
    labelend: &mut [usize],
    inblossom: &[usize],
    blossombase: &[usize],
    blossomchilds: &[Vec<usize>],
    bestedge: &mut [usize],
    queue: &mut Vec<usize>,
) {
    let b = inblossom[w];
    debug_assert!(label[w] == 0 && label[b] == 0);
    label[w] = t;
    label[b] = t;
    labelend[w] = p;
    labelend[b] = p;
    bestedge[w] = NONE;
    bestedge[b] = NONE;
    if t == 1 {
        let mut lvs = Vec::new();
        leaves_of(b, nvertex, blossomchilds, &mut lvs);
        queue.extend(lvs);
    } else if t == 2 {
        let base = blossombase[b];
        debug_assert!(mate[base] != NONE);
        assign_label_free(
            endpoint[mate[base]],
            1,
            mate[base] ^ 1,
            nvertex,
            endpoint,
            mate,
            label,
            labelend,
            inblossom,
            blossombase,
            blossomchilds,
            bestedge,
            queue,
        );
    }
}

/// augmentBlossom(b, v): swap matched/unmatched edges along the path from
/// v to the blossom base, rotating the base to v.
#[allow(clippy::too_many_arguments)]
fn augment_blossom(
    b: usize,
    v: usize,
    nvertex: usize,
    endpoint: &[usize],
    mate: &mut [usize],
    blossomparent: &[usize],
    blossomchilds: &mut [Vec<usize>],
    blossomendps: &mut [Vec<usize>],
    blossombase: &mut [usize],
) {
    // Bubble up to the immediate child of b containing v.
    let mut t = v;
    while blossomparent[t] != b {
        t = blossomparent[t];
    }
    if t >= nvertex {
        augment_blossom(
            t,
            v,
            nvertex,
            endpoint,
            mate,
            blossomparent,
            blossomchilds,
            blossomendps,
            blossombase,
        );
    }
    let len = blossomchilds[b].len() as isize;
    let i = blossomchilds[b].iter().position(|&c| c == t).unwrap() as isize;
    let mut j = i;
    let (jstep, endptrick): (isize, usize) = if i & 1 != 0 {
        j -= len;
        (1, 0)
    } else {
        (-1, 1)
    };
    let idx = |j: isize| -> usize { (((j % len) + len) % len) as usize };
    while j != 0 {
        j += jstep;
        let t1 = blossomchilds[b][idx(j)];
        let p = blossomendps[b][idx(j - endptrick as isize)] ^ endptrick;
        if t1 >= nvertex {
            augment_blossom(
                t1,
                endpoint[p],
                nvertex,
                endpoint,
                mate,
                blossomparent,
                blossomchilds,
                blossomendps,
                blossombase,
            );
        }
        j += jstep;
        let t2 = blossomchilds[b][idx(j)];
        if t2 >= nvertex {
            augment_blossom(
                t2,
                endpoint[p ^ 1],
                nvertex,
                endpoint,
                mate,
                blossomparent,
                blossomchilds,
                blossomendps,
                blossombase,
            );
        }
        mate[endpoint[p]] = p ^ 1;
        mate[endpoint[p ^ 1]] = p;
    }
    // Rotate so the new base is at the front.
    let iu = i as usize;
    blossomchilds[b].rotate_left(iu);
    blossomendps[b].rotate_left(iu);
    blossombase[b] = blossombase[blossomchilds[b][0]];
    debug_assert_eq!(blossombase[b], v);
}

/// augmentMatching(k): flip matched edges along the augmenting path
/// through edge k.
#[allow(clippy::too_many_arguments)]
fn augment_matching(
    k: usize,
    nvertex: usize,
    edges: &[(usize, usize, i64)],
    endpoint: &[usize],
    mate: &mut [usize],
    label: &[u8],
    labelend: &[usize],
    inblossom: &[usize],
    blossomchilds: &mut [Vec<usize>],
    blossomendps: &mut [Vec<usize>],
    blossombase: &mut [usize],
    blossomparent: &[usize],
) {
    let (v, w, _) = edges[k];
    for (mut s, mut p) in [(v, 2 * k + 1), (w, 2 * k)] {
        loop {
            let bs = inblossom[s];
            debug_assert_eq!(label[bs], 1);
            debug_assert_eq!(labelend[bs], mate[blossombase[bs]]);
            if bs >= nvertex {
                augment_blossom(
                    bs,
                    s,
                    nvertex,
                    endpoint,
                    mate,
                    blossomparent,
                    blossomchilds,
                    blossomendps,
                    blossombase,
                );
            }
            mate[s] = p;
            if labelend[bs] == NONE {
                break;
            }
            let t = endpoint[labelend[bs]];
            let bt = inblossom[t];
            debug_assert_eq!(label[bt], 2);
            debug_assert!(labelend[bt] != NONE);
            s = endpoint[labelend[bt]];
            let j = endpoint[labelend[bt] ^ 1];
            debug_assert_eq!(blossombase[bt], t);
            if bt >= nvertex {
                augment_blossom(
                    bt,
                    j,
                    nvertex,
                    endpoint,
                    mate,
                    blossomparent,
                    blossomchilds,
                    blossomendps,
                    blossombase,
                );
            }
            mate[j] = labelend[bt];
            p = labelend[bt] ^ 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::brute_force_mwm;
    use ldgm_graph::gen::urand;
    use ldgm_graph::GraphBuilder;

    fn mwm_weight(n: usize, edges: &[(usize, usize, i64)]) -> i64 {
        let mate = max_weight_matching(n, edges);
        let mut total = 0;
        for &(i, j, w) in edges {
            if mate[i] == j {
                total += w;
            }
        }
        total
    }

    #[test]
    fn empty_and_trivial() {
        assert_eq!(max_weight_matching(0, &[]), Vec::<usize>::new());
        assert_eq!(max_weight_matching(3, &[]), vec![NONE; 3]);
        let mate = max_weight_matching(2, &[(0, 1, 5)]);
        assert_eq!(mate, vec![1, 0]);
    }

    #[test]
    fn prefers_heavy_middle_edge() {
        // Path 0-1-2-3 with weights 1,10,1: optimum is the middle edge.
        assert_eq!(mwm_weight(4, &[(0, 1, 1), (1, 2, 10), (2, 3, 1)]), 10);
        // Weights 6,10,6: optimum is the two ends (12 > 10).
        assert_eq!(mwm_weight(4, &[(0, 1, 6), (1, 2, 10), (2, 3, 6)]), 12);
    }

    #[test]
    fn classic_van_rantwijk_cases() {
        // Create S-blossom and use it for augmentation.
        let mate = max_weight_matching(5, &[(1, 2, 8), (1, 3, 9), (2, 3, 10), (3, 4, 7)]);
        assert_eq!(mate[1], 2);
        assert_eq!(mate[2], 1);
        assert_eq!(mate[3], 4);
        // ... with an extra pendant edge.
        let mate = max_weight_matching(
            7,
            &[(1, 2, 8), (1, 3, 9), (2, 3, 10), (3, 4, 7), (1, 6, 7), (3, 5, 7)],
        );
        assert_eq!(mate[1], 6);
        assert_eq!(mate[2], 3);
        assert_eq!(mate[3], 2);
        assert_eq!(mate[4], NONE);
        assert_eq!(mate[5], NONE);
    }

    #[test]
    fn s_blossom_relabeled_as_t() {
        // van Rantwijk test16: create S-blossom, relabel as T-blossom, use
        // for augmentation.
        let edges =
            [(1usize, 2usize, 9i64), (1, 3, 8), (2, 3, 10), (1, 4, 5), (4, 5, 4), (1, 6, 3)];
        let mate = max_weight_matching(7, &edges);
        assert_eq!(&mate[1..], &[6, 3, 2, 5, 4, 1]);
        // test17: same but the pendant edges make a different relabel path.
        let edges =
            [(1usize, 2usize, 9i64), (1, 3, 8), (2, 3, 10), (1, 4, 5), (4, 5, 3), (3, 6, 4)];
        let mate = max_weight_matching(7, &edges);
        assert_eq!(&mate[1..], &[2, 1, 6, 5, 4, 3]);
    }

    #[test]
    fn nested_s_blossom_augmentation() {
        // van Rantwijk test14: create nested S-blossom, use for augmentation.
        let edges = [
            (1usize, 2usize, 9i64),
            (1, 3, 9),
            (2, 3, 10),
            (2, 4, 8),
            (3, 5, 8),
            (4, 5, 10),
            (5, 6, 6),
        ];
        let mate = max_weight_matching(7, &edges);
        assert_eq!(&mate[1..], &[3, 4, 1, 2, 6, 5]);
    }

    #[test]
    fn s_blossom_relabel_expand() {
        // van Rantwijk test20: create blossom, relabel as T in more than
        // one way, expand, augment.
        let edges = [
            (1usize, 2usize, 45i64),
            (1, 5, 45),
            (2, 3, 50),
            (3, 4, 45),
            (4, 5, 50),
            (1, 6, 30),
            (3, 9, 35),
            (4, 8, 35),
            (5, 7, 26),
            (9, 10, 5),
        ];
        let mate = max_weight_matching(11, &edges);
        assert_eq!(&mate[1..], &[6, 3, 2, 8, 7, 1, 5, 4, 10, 9]);
    }

    #[test]
    fn t_blossom_expansion_variants() {
        // van Rantwijk test21: create blossom, relabel as T, expand such
        // that a new least-slack S-to-free edge is produced, augment.
        let edges = [
            (1usize, 2usize, 45i64),
            (1, 5, 45),
            (2, 3, 50),
            (3, 4, 45),
            (4, 5, 50),
            (1, 6, 30),
            (3, 9, 35),
            (4, 8, 26),
            (5, 7, 40),
            (9, 10, 5),
        ];
        let mate = max_weight_matching(11, &edges);
        assert_eq!(&mate[1..], &[6, 3, 2, 8, 7, 1, 5, 4, 10, 9]);
    }

    #[test]
    fn nested_t_blossom_expansion() {
        // van Rantwijk test22: create nested blossom, relabel as T in more
        // than one way, expand outer blossom such that inner blossom ends
        // up on an augmenting path.
        let edges = [
            (1usize, 2usize, 45i64),
            (1, 7, 45),
            (2, 3, 50),
            (3, 4, 45),
            (4, 5, 95),
            (4, 6, 94),
            (5, 6, 94),
            (6, 7, 50),
            (1, 8, 30),
            (3, 11, 35),
            (5, 9, 36),
            (7, 10, 26),
            (11, 12, 5),
        ];
        let mate = max_weight_matching(13, &edges);
        assert_eq!(&mate[1..], &[8, 3, 2, 6, 9, 4, 10, 1, 5, 7, 12, 11]);
    }

    #[test]
    fn matches_bruteforce_on_random_graphs() {
        for seed in 0..30 {
            let g = urand(9, 14, seed);
            if g.num_edges() > 20 {
                continue;
            }
            let exact = blossom_mwm(&g, 1000.0);
            assert_eq!(exact.verify(&g), Ok(()), "seed {seed}");
            let bf = brute_force_mwm(&g);
            assert!(
                (exact.weight(&g) - bf).abs() < 1e-6,
                "seed {seed}: blossom {} vs brute force {bf}",
                exact.weight(&g)
            );
        }
    }

    #[test]
    fn wrapper_on_csr_graph() {
        let g = GraphBuilder::new(4)
            .add_edge(0, 1, 0.006)
            .add_edge(1, 2, 0.010)
            .add_edge(2, 3, 0.006)
            .build();
        let m = blossom_mwm(&g, 1000.0);
        assert_eq!(m.mate(0), Some(1));
        assert_eq!(m.mate(2), Some(3));
        assert!((m.weight(&g) - 0.012).abs() < 1e-12);
    }
}

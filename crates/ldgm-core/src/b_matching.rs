//! Weighted **b-matching**: every vertex `v` may be matched to up to
//! `b(v)` distinct partners.
//!
//! The paper's research group extended Suitor to this setting (Khan,
//! Pothen, Ferdous et al., "Efficient approximation algorithms for
//! weighted b-matching", SISC 2016) and uses it inside the AMG
//! coarsening pipeline the introduction cites; we provide both the
//! ½-approximate [`b_suitor`] and the classical sorted [`b_greedy`]
//! baseline it provably emulates.

use std::collections::BinaryHeap;

use ldgm_graph::csr::{CsrGraph, VertexId, Weight};

/// A b-matching: per-vertex partner lists (sorted ascending), mutually
/// consistent.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BMatching {
    partners: Vec<Vec<VertexId>>,
}

impl BMatching {
    /// The empty b-matching on `n` vertices.
    pub fn new(n: usize) -> Self {
        BMatching { partners: vec![Vec::new(); n] }
    }

    /// Partners of `v`.
    pub fn partners(&self, v: VertexId) -> &[VertexId] {
        &self.partners[v as usize]
    }

    /// Number of matched edges `|M|`.
    pub fn cardinality(&self) -> usize {
        self.partners.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Total weight `w(M)` under `g`.
    pub fn weight(&self, g: &CsrGraph) -> f64 {
        self.partners
            .iter()
            .enumerate()
            .flat_map(|(u, ps)| {
                ps.iter().filter(move |&&v| (u as VertexId) < v).map(move |&v| {
                    g.edge_weight(u as VertexId, v).expect("matched pair must be an edge")
                })
            })
            .sum()
    }

    /// Whether `{u, v}` is matched.
    pub fn contains(&self, u: VertexId, v: VertexId) -> bool {
        self.partners[u as usize].binary_search(&v).is_ok()
    }

    fn insert(&mut self, u: VertexId, v: VertexId) {
        let pu = &mut self.partners[u as usize];
        if let Err(i) = pu.binary_search(&v) {
            pu.insert(i, v);
        }
        let pv = &mut self.partners[v as usize];
        if let Err(i) = pv.binary_search(&u) {
            pv.insert(i, u);
        }
    }

    fn remove(&mut self, u: VertexId, v: VertexId) {
        if let Ok(i) = self.partners[u as usize].binary_search(&v) {
            self.partners[u as usize].remove(i);
        }
        if let Ok(i) = self.partners[v as usize].binary_search(&u) {
            self.partners[v as usize].remove(i);
        }
    }

    /// Validity: mutual consistency, all pairs are edges, degrees within
    /// the budget `b`.
    pub fn verify(&self, g: &CsrGraph, b: &dyn Fn(VertexId) -> usize) -> Result<(), String> {
        if self.partners.len() != g.num_vertices() {
            return Err("vertex count mismatch".into());
        }
        for (u, ps) in self.partners.iter().enumerate() {
            let u = u as VertexId;
            if ps.len() > b(u) {
                return Err(format!("vertex {u} exceeds budget: {} > {}", ps.len(), b(u)));
            }
            for win in ps.windows(2) {
                if win[0] >= win[1] {
                    return Err(format!("partner list of {u} not strictly sorted"));
                }
            }
            for &v in ps {
                if !g.has_edge(u, v) {
                    return Err(format!("pair {{{u},{v}}} is not an edge"));
                }
                if !self.contains(v, u) {
                    return Err(format!("pair {{{u},{v}}} not mutual"));
                }
            }
        }
        Ok(())
    }

    /// Maximality under budget `b`: no edge can be added without exceeding
    /// an endpoint's budget.
    pub fn is_maximal(&self, g: &CsrGraph, b: &dyn Fn(VertexId) -> usize) -> bool {
        g.iter_edges().all(|(u, v, _)| {
            self.contains(u, v) || self.partners(u).len() >= b(u) || self.partners(v).len() >= b(v)
        })
    }
}

/// Offer order: higher weight, then lower proposer id (the crate's shared
/// total order).
#[inline]
fn beats(w_new: Weight, u_new: VertexId, w_cur: Weight, u_cur: VertexId) -> bool {
    w_new > w_cur || (w_new == w_cur && u_new < u_cur)
}

/// Min-heap entry ordered by the offer order (the heap top is the weakest
/// standing offer).
#[derive(Clone, Copy, Debug, PartialEq)]
struct Offer {
    w: Weight,
    proposer: VertexId,
}

impl Eq for Offer {}

impl Ord for Offer {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap: invert so the weakest offer surfaces.
        if beats(self.w, self.proposer, other.w, other.proposer) {
            std::cmp::Ordering::Less
        } else if beats(other.w, other.proposer, self.w, self.proposer) {
            std::cmp::Ordering::Greater
        } else {
            std::cmp::Ordering::Equal
        }
    }
}

impl PartialOrd for Offer {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// ½-approximate b-matching via the (sequential) b-Suitor algorithm.
///
/// `budget(v)` gives each vertex's capacity; use a closure like
/// `|_| 2` for uniform b. With all budgets 1 this computes exactly the
/// Suitor matching.
pub fn b_suitor(g: &CsrGraph, budget: impl Fn(VertexId) -> usize) -> BMatching {
    let n = g.num_vertices();
    // suitors[v]: standing offers, at most budget(v), weakest on top.
    let mut suitors: Vec<BinaryHeap<Offer>> = vec![BinaryHeap::new(); n];
    // Adjacency of each vertex sorted by descending offer order, built
    // lazily (only for vertices that propose).
    let mut sorted_adj: Vec<Option<Vec<(Weight, VertexId)>>> = vec![None; n];
    // next[u]: position in sorted_adj[u] to continue proposing from.
    let mut next: Vec<usize> = vec![0; n];

    let sorted_of = |g: &CsrGraph, u: VertexId| -> Vec<(Weight, VertexId)> {
        let mut a: Vec<(Weight, VertexId)> = g.edges_of(u).map(|(v, w)| (w, v)).collect();
        a.sort_unstable_by(|x, y| {
            if beats(x.0, x.1, y.0, y.1) {
                std::cmp::Ordering::Less
            } else if beats(y.0, y.1, x.0, x.1) {
                std::cmp::Ordering::Greater
            } else {
                std::cmp::Ordering::Equal
            }
        });
        a
    };

    for start in 0..n as VertexId {
        // Propose until `start` holds budget(start) accepted offers or
        // exhausts its list; displacements propagate.
        let mut stack: Vec<(VertexId, usize)> = vec![(start, budget(start))];
        while let Some((u, want)) = stack.pop() {
            if want == 0 {
                continue;
            }
            let mut accepted = 0usize;
            while accepted < want {
                if sorted_adj[u as usize].is_none() {
                    sorted_adj[u as usize] = Some(sorted_of(g, u));
                }
                let adj = sorted_adj[u as usize].as_ref().unwrap();
                let Some(&(w, v)) = adj.get(next[u as usize]) else {
                    break; // exhausted
                };
                next[u as usize] += 1;
                let cap = budget(v);
                if cap == 0 {
                    continue;
                }
                let heap = &mut suitors[v as usize];
                if heap.len() < cap {
                    heap.push(Offer { w, proposer: u });
                    accepted += 1;
                } else {
                    let weakest = *heap.peek().unwrap();
                    if beats(w, u, weakest.w, weakest.proposer) {
                        heap.pop();
                        heap.push(Offer { w, proposer: u });
                        accepted += 1;
                        // The displaced proposer needs one replacement
                        // partner.
                        stack.push((weakest.proposer, 1));
                    }
                }
            }
        }
    }

    // Materialize: u-v matched iff u is a standing suitor of v AND v is a
    // standing suitor of u.
    let standing: Vec<Vec<VertexId>> =
        suitors.iter().map(|h| h.iter().map(|o| o.proposer).collect()).collect();
    let mut m = BMatching::new(n);
    for v in 0..n as VertexId {
        for &u in &standing[v as usize] {
            if u < v && standing[u as usize].contains(&v) {
                m.insert(u, v);
            }
        }
    }
    m
}

/// Classical ½-approximate b-matching: scan edges in decreasing weight,
/// accept when both endpoints have residual capacity.
pub fn b_greedy(g: &CsrGraph, budget: impl Fn(VertexId) -> usize) -> BMatching {
    let mut edges: Vec<(VertexId, VertexId, Weight)> = g.iter_edges().collect();
    edges.sort_unstable_by(|a, b| b.2.total_cmp(&a.2).then_with(|| (a.0, a.1).cmp(&(b.0, b.1))));
    let mut m = BMatching::new(g.num_vertices());
    for (u, v, _) in edges {
        if m.partners(u).len() < budget(u) && m.partners(v).len() < budget(v) {
            m.insert(u, v);
        }
    }
    m
}

/// Remove-and-return for external refiners: drop `{u, v}` from `m`.
pub fn b_unmatch(m: &mut BMatching, u: VertexId, v: VertexId) {
    m.remove(u, v);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suitor::suitor;
    use ldgm_graph::gen::urand;
    use ldgm_graph::weights::make_weights_distinct;
    use ldgm_graph::GraphBuilder;

    #[test]
    fn star_takes_heaviest_b_leaves() {
        let mut builder = GraphBuilder::new(5);
        builder.push_edge(0, 1, 0.9);
        builder.push_edge(0, 2, 0.7);
        builder.push_edge(0, 3, 0.5);
        builder.push_edge(0, 4, 0.3);
        let g = builder.build();
        let m = b_suitor(&g, |v| if v == 0 { 2 } else { 1 });
        assert_eq!(m.partners(0), &[1, 2]);
        assert!((m.weight(&g) - 1.6).abs() < 1e-12);
        assert_eq!(m.verify(&g, &|v| if v == 0 { 2 } else { 1 }), Ok(()));
    }

    #[test]
    fn b1_equals_suitor_matching() {
        for seed in 0..5 {
            let g = urand(300, 1800, seed);
            let b1 = b_suitor(&g, |_| 1);
            let s = suitor(&g);
            // Same edge set: every suitor pair appears and cardinalities
            // agree.
            assert_eq!(b1.cardinality(), s.cardinality(), "seed {seed}");
            for (u, v) in s.edges() {
                assert!(b1.contains(u, v), "seed {seed}: missing {{{u},{v}}}");
            }
        }
    }

    #[test]
    fn equals_greedy_under_distinct_weights() {
        for seed in 0..5 {
            let g = make_weights_distinct(&urand(250, 1500, seed), seed);
            for b in [1usize, 2, 3] {
                let s = b_suitor(&g, |_| b);
                let gr = b_greedy(&g, |_| b);
                assert_eq!(s, gr, "seed {seed} b {b}");
            }
        }
    }

    #[test]
    fn valid_and_maximal_on_random_graphs() {
        for seed in 0..5 {
            let g = urand(400, 3200, seed);
            for b in [1usize, 2, 4] {
                let budget = move |_: VertexId| b;
                let m = b_suitor(&g, budget);
                assert_eq!(m.verify(&g, &budget), Ok(()), "seed {seed} b {b}");
                assert!(m.is_maximal(&g, &budget), "seed {seed} b {b} not maximal");
            }
        }
    }

    #[test]
    fn weight_grows_with_budget() {
        let g = urand(300, 3000, 7);
        let w1 = b_suitor(&g, |_| 1).weight(&g);
        let w2 = b_suitor(&g, |_| 2).weight(&g);
        let w4 = b_suitor(&g, |_| 4).weight(&g);
        assert!(w2 > w1);
        assert!(w4 > w2);
    }

    #[test]
    fn heterogeneous_budgets() {
        let g = urand(200, 1600, 9);
        let budget = |v: VertexId| (v as usize % 3) + 1;
        let m = b_suitor(&g, budget);
        assert_eq!(m.verify(&g, &budget), Ok(()));
        assert!(m.is_maximal(&g, &budget));
    }

    #[test]
    fn zero_budget_vertices_stay_unmatched() {
        let g = urand(100, 600, 11);
        let budget = |v: VertexId| usize::from(v.is_multiple_of(2));
        let m = b_suitor(&g, budget);
        assert_eq!(m.verify(&g, &budget), Ok(()));
        for v in (1..100).step_by(2) {
            assert!(m.partners(v).is_empty());
        }
    }

    #[test]
    fn half_approx_vs_b_greedy_with_ties() {
        // b-Suitor and greedy agree on weight under the shared order even
        // with quantized weights.
        for seed in 0..3 {
            let g = urand(250, 2000, seed + 20);
            let s = b_suitor(&g, |_| 2).weight(&g);
            let gr = b_greedy(&g, |_| 2).weight(&g);
            assert!((s - gr).abs() < 1e-9, "seed {seed}: {s} vs {gr}");
        }
    }

    #[test]
    fn unmatch_keeps_consistency() {
        let g = urand(50, 300, 13);
        let mut m = b_suitor(&g, |_| 2);
        if let Some((&v, &u)) = m.partners(0).first().map(|v| (v, &0)) {
            b_unmatch(&mut m, u, v);
            assert!(!m.contains(u, v));
            assert_eq!(m.verify(&g, &|_| 2), Ok(()));
        }
    }
}

//! SoA scan primitives for the host-side hot kernels.
//!
//! CSR already stores adjacency as structure-of-arrays (separate id and
//! weight lanes); this module adds the third lane the pointing kernels
//! need — an **availability lane**, one byte per vertex mirroring
//! `mate[v] == NONE` — and flat scan routines over contiguous lane
//! slices. Instead of a per-edge `f64` compare plus tie-break branch and
//! an 8-byte gather into the mate array, a scan packs each candidate
//! into a single 96-bit key whose integer order *is* the canonical
//! matching preference (weight descending, then id ascending), masks it
//! by the 1-byte availability gather, and keeps a running branch-light
//! maximum. Selection is exact: positive finite `f64` bit patterns are
//! order-isomorphic to their values, and the complemented id in the low
//! bits breaks weight ties toward the smaller id.
//!
//! Scans stream whole contiguous slices; the 32-wide wave is the billing
//! granularity of the simulated kernels ([`WAVE`]), not a host blocking
//! factor.

use crate::csr::{VertexId, Weight};

/// Width of one simulated warp wave (threads sweeping an adjacency list).
pub const WAVE: usize = 32;

/// The scan key of "no available neighbor": smaller than every packed
/// key, since edge weights are positive (`w > 0` ⇒ nonzero high bits).
pub const NO_KEY: u128 = 0;

/// Pack `(weight, id)` into a key whose `u128` order is the canonical
/// preference order: weight bits in the high 64, complemented id in the
/// low 32. Requires `w > 0.0` and finite (the [`crate::csr::CsrGraph`]
/// weight invariants), so every packed key is nonzero.
#[inline]
pub fn pack_key(w: Weight, v: VertexId) -> u128 {
    debug_assert!(w > 0.0 && w.is_finite(), "scan keys need positive finite weights");
    ((w.to_bits() as u128) << 32) | (!v as u128)
}

/// Recover the neighbor id from a packed key.
#[inline]
pub fn key_id(k: u128) -> VertexId {
    !(k as u32)
}

/// Recover the weight from a packed key.
#[inline]
pub fn key_weight(k: u128) -> Weight {
    f64::from_bits((k >> 32) as u64)
}

/// Argmax scan over one vertex's id/weight lane slices: the packed key
/// of the heaviest *available* neighbor (smallest id on weight ties), or
/// [`NO_KEY`] if none is available. `avail` is the availability lane
/// (`avail[v] != 0` ⇔ `v` unmatched), indexed by every id in `ids`.
#[inline]
pub fn scan_best(ids: &[VertexId], ws: &[Weight], avail: &[u8]) -> u128 {
    debug_assert_eq!(ids.len(), ws.len());
    let mut best = NO_KEY;
    for (&v, &w) in ids.iter().zip(ws) {
        // Mask the key to NO_KEY when unavailable: no data-dependent
        // branch, one byte gathered per edge.
        let mask = (avail[v as usize] as u128).wrapping_neg();
        let k = pack_key(w, v) & mask;
        if k > best {
            best = k;
        }
    }
    best
}

/// Position of the first available id in a preference-sorted lane slice
/// (the argmax, when `ids` is in (weight desc, id asc) order).
#[inline]
pub fn first_available(ids: &[VertexId], avail: &[u8]) -> Option<usize> {
    ids.iter().position(|&v| avail[v as usize] != 0)
}

/// Number of 32-wide waves a scan of `scanned` edge slots occupies.
#[inline]
pub fn waves(scanned: u64) -> u64 {
    scanned.div_ceil(WAVE as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{rmat, urand, RmatParams};

    /// The reference selection: the default kernel's explicit
    /// weight-then-id compare over available neighbors.
    fn naive_best(ids: &[VertexId], ws: &[Weight], avail: &[u8]) -> Option<(VertexId, Weight)> {
        let mut best: Option<(VertexId, Weight)> = None;
        for (&v, &w) in ids.iter().zip(ws) {
            if avail[v as usize] == 0 {
                continue;
            }
            let better = match best {
                None => true,
                Some((bv, bw)) => w > bw || (w == bw && v < bv),
            };
            if better {
                best = Some((v, w));
            }
        }
        best
    }

    #[test]
    fn key_order_is_the_preference_order() {
        // Heavier wins; equal weight breaks toward the smaller id.
        assert!(pack_key(2.0, 7) > pack_key(1.0, 0));
        assert!(pack_key(1.0, 3) > pack_key(1.0, 4));
        assert!(pack_key(0.001, 0) > NO_KEY);
        assert_eq!(key_id(pack_key(3.5, 41)), 41);
        assert_eq!(key_weight(pack_key(3.5, 41)), 3.5);
    }

    #[test]
    fn scan_best_matches_naive_on_random_graphs() {
        for (seed, g) in
            [(1u64, urand(400, 3000, 1)), (2, rmat(256, 2000, RmatParams::GAP_KRON, 2))]
        {
            let n = g.num_vertices();
            // Pseudo-random availability pattern.
            let avail: Vec<u8> = (0..n)
                .map(|v| ((v as u64).wrapping_mul(seed * 2654435761) >> 7) as u8 & 1)
                .collect();
            for v in 0..n as VertexId {
                let ids = g.neighbors(v);
                let ws = g.neighbor_weights(v);
                let k = scan_best(ids, ws, &avail);
                match naive_best(ids, ws, &avail) {
                    None => assert_eq!(k, NO_KEY, "vertex {v}"),
                    Some((bv, bw)) => {
                        assert_eq!(key_id(k), bv, "vertex {v}");
                        assert_eq!(key_weight(k), bw, "vertex {v}");
                    }
                }
            }
        }
    }

    #[test]
    fn first_available_finds_the_sorted_argmax() {
        let ids = [9, 4, 7, 1];
        let mut avail = [0u8; 10];
        assert_eq!(first_available(&ids, &avail), None);
        avail[7] = 1;
        avail[1] = 1;
        assert_eq!(first_available(&ids, &avail), Some(2));
    }

    #[test]
    fn wave_accounting() {
        assert_eq!(waves(0), 0);
        assert_eq!(waves(1), 1);
        assert_eq!(waves(32), 1);
        assert_eq!(waves(33), 2);
    }
}

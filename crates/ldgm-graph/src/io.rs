//! Graph I/O: Matrix Market exchange format and a binary CSR cache.
//!
//! The paper's comparison baselines consume Matrix Market (§IV-D notes
//! SR-OMP "requires graphs to be in Matrix Market native data format"), so
//! we support reading and writing `matrix coordinate
//! {real,integer,pattern} {general,symmetric}` headers. Pattern matrices
//! (no stored values) receive uniform 3-decimal weights, exactly like the
//! paper's preprocessing of weightless datasets.

use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::builder::GraphBuilder;
use crate::csr::{CsrGraph, VertexId};
use crate::weights::edge_hash_weight;

/// Errors from graph I/O.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Structural problem in the input file (message, 1-based line).
    Parse(String, usize),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Parse(msg, line) => write!(f, "parse error at line {line}: {msg}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Value kind of a Matrix Market file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum MtxField {
    Real,
    Integer,
    Pattern,
}

/// Read a Matrix Market graph from a reader.
///
/// Rectangular matrices are rejected (matching is defined on square
/// adjacency structure); `general` matrices are symmetrized; self loops
/// (diagonal entries) are dropped; pattern files get hash-derived uniform
/// weights seeded by `pattern_weight_seed`.
pub fn read_mtx<R: Read>(reader: R, pattern_weight_seed: u64) -> Result<CsrGraph, IoError> {
    let mut lines = BufReader::new(reader).lines();
    let mut lineno = 0usize;

    // Header line.
    let header = loop {
        match lines.next() {
            Some(l) => {
                lineno += 1;
                let l = l?;
                if !l.trim().is_empty() {
                    break l;
                }
            }
            None => return Err(IoError::Parse("empty file".into(), lineno)),
        }
    };
    let toks: Vec<String> = header.split_whitespace().map(|t| t.to_ascii_lowercase()).collect();
    if toks.len() < 5 || toks[0] != "%%matrixmarket" || toks[1] != "matrix" {
        return Err(IoError::Parse("expected '%%MatrixMarket matrix ...' header".into(), lineno));
    }
    if toks[2] != "coordinate" {
        return Err(IoError::Parse(format!("unsupported format '{}'", toks[2]), lineno));
    }
    let field = match toks[3].as_str() {
        "real" => MtxField::Real,
        "integer" => MtxField::Integer,
        "pattern" => MtxField::Pattern,
        other => return Err(IoError::Parse(format!("unsupported field '{other}'"), lineno)),
    };
    match toks[4].as_str() {
        "general" | "symmetric" => {}
        other => return Err(IoError::Parse(format!("unsupported symmetry '{other}'"), lineno)),
    }

    // Size line (skip comments).
    let size_line = loop {
        match lines.next() {
            Some(l) => {
                lineno += 1;
                let l = l?;
                let t = l.trim();
                if t.is_empty() || t.starts_with('%') {
                    continue;
                }
                break l;
            }
            None => return Err(IoError::Parse("missing size line".into(), lineno)),
        }
    };
    let dims: Vec<&str> = size_line.split_whitespace().collect();
    if dims.len() != 3 {
        return Err(IoError::Parse("size line must be 'rows cols nnz'".into(), lineno));
    }
    let rows: usize =
        dims[0].parse().map_err(|_| IoError::Parse("bad row count".into(), lineno))?;
    let cols: usize =
        dims[1].parse().map_err(|_| IoError::Parse("bad col count".into(), lineno))?;
    let nnz: usize = dims[2].parse().map_err(|_| IoError::Parse("bad nnz count".into(), lineno))?;
    if rows != cols {
        return Err(IoError::Parse(
            format!("matrix must be square for matching, got {rows}x{cols}"),
            lineno,
        ));
    }

    let mut b = GraphBuilder::with_capacity(rows, nnz);
    let mut entries = 0usize;
    for l in lines {
        lineno += 1;
        let l = l?;
        let t = l.trim();
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        let mut it = t.split_whitespace();
        let i: u64 = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| IoError::Parse("bad row index".into(), lineno))?;
        let j: u64 = it
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| IoError::Parse("bad col index".into(), lineno))?;
        if i == 0 || j == 0 || i > rows as u64 || j > cols as u64 {
            return Err(IoError::Parse(format!("index ({i},{j}) out of range"), lineno));
        }
        let u = (i - 1) as VertexId;
        let v = (j - 1) as VertexId;
        let w = match field {
            MtxField::Pattern => edge_hash_weight(u, v, pattern_weight_seed),
            MtxField::Real | MtxField::Integer => {
                let raw: f64 = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| IoError::Parse("missing value".into(), lineno))?;
                // Matching needs positive weights; matrices store signed
                // values, so take magnitudes (the convention used by
                // matching-based pivoting/ordering in numerical LA). Zero
                // entries fall back to a hash weight.
                if raw == 0.0 {
                    edge_hash_weight(u, v, pattern_weight_seed)
                } else {
                    raw.abs()
                }
            }
        };
        entries += 1;
        b.push_edge(u, v, w);
    }
    if entries != nnz {
        return Err(IoError::Parse(
            format!("header promised {nnz} entries, found {entries}"),
            lineno,
        ));
    }
    Ok(b.build())
}

/// Read a Matrix Market graph from a file path.
pub fn read_mtx_file(
    path: impl AsRef<Path>,
    pattern_weight_seed: u64,
) -> Result<CsrGraph, IoError> {
    read_mtx(File::open(path)?, pattern_weight_seed)
}

/// Write `g` as a symmetric real coordinate Matrix Market file (lower
/// triangle, 1-indexed).
pub fn write_mtx<W: Write>(g: &CsrGraph, writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "%%MatrixMarket matrix coordinate real symmetric")?;
    writeln!(w, "% written by ldgm-graph")?;
    writeln!(w, "{} {} {}", g.num_vertices(), g.num_vertices(), g.num_edges())?;
    for (u, v, wt) in g.iter_edges() {
        // Symmetric MM stores the lower triangle: row >= col.
        writeln!(w, "{} {} {}", v + 1, u + 1, wt)?;
    }
    w.flush()
}

/// Write `g` to a file path in Matrix Market format.
pub fn write_mtx_file(g: &CsrGraph, path: impl AsRef<Path>) -> io::Result<()> {
    write_mtx(g, File::create(path)?)
}

const BIN_MAGIC: &[u8; 8] = b"LDGMCSR1";

/// Write `g` in the compact binary CSR cache format (little endian:
/// magic, n, 2m, offsets, adjacency, weights).
pub fn write_bin<W: Write>(g: &CsrGraph, writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    w.write_all(BIN_MAGIC)?;
    w.write_all(&(g.num_vertices() as u64).to_le_bytes())?;
    w.write_all(&(g.num_directed_edges() as u64).to_le_bytes())?;
    for &o in g.offsets() {
        w.write_all(&o.to_le_bytes())?;
    }
    for &a in g.adjacency() {
        w.write_all(&a.to_le_bytes())?;
    }
    for &wt in g.weight_array() {
        w.write_all(&wt.to_le_bytes())?;
    }
    w.flush()
}

/// Read a graph from the binary CSR cache format.
pub fn read_bin<R: Read>(reader: R) -> Result<CsrGraph, IoError> {
    let mut r = BufReader::new(reader);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != BIN_MAGIC {
        return Err(IoError::Parse("bad magic".into(), 0));
    }
    let mut buf8 = [0u8; 8];
    r.read_exact(&mut buf8)?;
    let n = u64::from_le_bytes(buf8) as usize;
    r.read_exact(&mut buf8)?;
    let m2 = u64::from_le_bytes(buf8) as usize;
    let mut offsets = Vec::with_capacity(n + 1);
    for _ in 0..=n {
        r.read_exact(&mut buf8)?;
        offsets.push(u64::from_le_bytes(buf8));
    }
    let mut adj = Vec::with_capacity(m2);
    let mut buf4 = [0u8; 4];
    for _ in 0..m2 {
        r.read_exact(&mut buf4)?;
        adj.push(u32::from_le_bytes(buf4));
    }
    let mut weights = Vec::with_capacity(m2);
    for _ in 0..m2 {
        r.read_exact(&mut buf8)?;
        weights.push(f64::from_le_bytes(buf8));
    }
    let g = CsrGraph::from_raw(offsets, adj, weights);
    g.validate().map_err(|e| IoError::Parse(e, 0))?;
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::gen::urand;

    fn sample() -> CsrGraph {
        GraphBuilder::new(4)
            .add_edge(0, 1, 0.5)
            .add_edge(1, 2, 0.25)
            .add_edge(2, 3, 0.75)
            .add_edge(0, 3, 1.0)
            .build()
    }

    #[test]
    fn mtx_roundtrip() {
        let g = sample();
        let mut buf = Vec::new();
        write_mtx(&g, &mut buf).unwrap();
        let back = read_mtx(&buf[..], 0).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn mtx_roundtrip_random() {
        let g = urand(200, 1000, 3);
        let mut buf = Vec::new();
        write_mtx(&g, &mut buf).unwrap();
        let back = read_mtx(&buf[..], 0).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn pattern_gets_weights() {
        let s = "%%MatrixMarket matrix coordinate pattern symmetric\n3 3 2\n2 1\n3 2\n";
        let g = read_mtx(s.as_bytes(), 42).unwrap();
        assert_eq!(g.num_edges(), 2);
        for (_, _, w) in g.iter_edges() {
            assert!(w > 0.0 && w <= 1.0);
        }
    }

    #[test]
    fn general_symmetrizes_and_drops_diagonal() {
        let s = "%%MatrixMarket matrix coordinate real general\n% comment\n3 3 4\n1 2 5.0\n2 1 5.0\n1 1 9.0\n3 1 -2.0\n";
        let g = read_mtx(s.as_bytes(), 0).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.edge_weight(0, 1), Some(5.0));
        assert_eq!(g.edge_weight(0, 2), Some(2.0)); // magnitude of -2
    }

    #[test]
    fn rejects_rectangular() {
        let s = "%%MatrixMarket matrix coordinate real general\n3 4 0\n";
        assert!(read_mtx(s.as_bytes(), 0).is_err());
    }

    #[test]
    fn rejects_wrong_nnz() {
        let s = "%%MatrixMarket matrix coordinate real general\n3 3 2\n1 2 1.0\n";
        assert!(read_mtx(s.as_bytes(), 0).is_err());
    }

    #[test]
    fn rejects_out_of_range_index() {
        let s = "%%MatrixMarket matrix coordinate real general\n3 3 1\n1 7 1.0\n";
        assert!(read_mtx(s.as_bytes(), 0).is_err());
    }

    #[test]
    fn rejects_bad_header() {
        let s = "%%MatrixMarket tensor coordinate real general\n1 1 0\n";
        assert!(read_mtx(s.as_bytes(), 0).is_err());
        let s2 = "%%MatrixMarket matrix array real general\n1 1 0\n";
        assert!(read_mtx(s2.as_bytes(), 0).is_err());
    }

    #[test]
    fn bin_roundtrip() {
        let g = urand(300, 2000, 5);
        let mut buf = Vec::new();
        write_bin(&g, &mut buf).unwrap();
        let back = read_bin(&buf[..]).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn bin_rejects_garbage() {
        assert!(read_bin(&b"NOTAGRAPH"[..]).is_err());
    }
}

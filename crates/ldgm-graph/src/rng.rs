//! Deterministic pseudo-random number generation.
//!
//! Graph generation and weight sampling must be reproducible bit-for-bit
//! across runs, platforms, and library versions, so we implement the small
//! and well-studied Xoshiro256++ generator (seeded through SplitMix64)
//! rather than depending on an external RNG whose stream may change between
//! releases. The statistical quality is more than sufficient for synthetic
//! workload generation.

/// SplitMix64 step, used to expand a single `u64` seed into generator state.
///
/// This is the seeding procedure recommended by the Xoshiro authors: it
/// guarantees the expanded state is never all-zero and decorrelates nearby
/// seeds.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Xoshiro256++ generator: fast, 256-bit state, period 2^256 − 1.
#[derive(Clone, Debug)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Create a generator from a 64-bit seed via SplitMix64 expansion.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s =
            [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        Xoshiro256 { s }
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Next 32-bit output (upper half of the 64-bit stream).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `f64` in `[0, 1)`, using the top 53 bits.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` using Lemire's multiply-shift
    /// rejection method (unbiased).
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "below(0) is meaningless");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    #[inline]
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.below(hi - lo + 1)
    }

    /// Bernoulli trial with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        let n = xs.len();
        for i in (1..n).rev() {
            let j = self.below((i + 1) as u64) as usize;
            xs.swap(i, j);
        }
    }

    /// Derive an independent generator for a parallel task. The child seed
    /// mixes the stream index so workers are decorrelated.
    pub fn fork(&mut self, stream: u64) -> Self {
        let mut sm = self.next_u64() ^ stream.wrapping_mul(0xA076_1D64_78BD_642F);
        let s =
            [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        Xoshiro256 { s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Xoshiro256::seed_from_u64(7);
        let mut b = Xoshiro256::seed_from_u64(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Xoshiro256::seed_from_u64(1);
        let mut b = Xoshiro256::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Xoshiro256::seed_from_u64(3);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_near_half() {
        let mut r = Xoshiro256::seed_from_u64(4);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = Xoshiro256::seed_from_u64(5);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            let x = r.below(10) as usize;
            assert!(x < 10);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn below_unbiased_small_bound() {
        let mut r = Xoshiro256::seed_from_u64(6);
        let mut counts = [0usize; 3];
        let n = 300_000;
        for _ in 0..n {
            counts[r.below(3) as usize] += 1;
        }
        for &c in &counts {
            let frac = c as f64 / n as f64;
            assert!((frac - 1.0 / 3.0).abs() < 0.01, "frac {frac}");
        }
    }

    #[test]
    fn range_inclusive_hits_endpoints() {
        let mut r = Xoshiro256::seed_from_u64(8);
        let (mut lo_hit, mut hi_hit) = (false, false);
        for _ in 0..10_000 {
            match r.range_inclusive(5, 8) {
                5 => lo_hit = true,
                8 => hi_hit = true,
                x => assert!((5..=8).contains(&x)),
            }
        }
        assert!(lo_hit && hi_hit);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Xoshiro256::seed_from_u64(9);
        let mut xs: Vec<u32> = (0..100).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(xs, (0..100).collect::<Vec<_>>(), "shuffle left input unchanged");
    }

    #[test]
    fn fork_streams_are_decorrelated() {
        let mut parent = Xoshiro256::seed_from_u64(10);
        let mut c1 = parent.fork(0);
        let mut c2 = parent.fork(1);
        let same = (0..64).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn chance_extremes() {
        let mut r = Xoshiro256::seed_from_u64(11);
        assert!(!(0..100).any(|_| r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }
}

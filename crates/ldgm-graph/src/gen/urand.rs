//! Uniform-random (Erdős–Rényi G(n, m)) generator.
//!
//! Stand-in for GAP-urand and the near-regular MOLIERE_2016: every edge
//! picks two uniform endpoints, giving a tightly concentrated (Poisson)
//! degree distribution with no skew.

use crate::builder::GraphBuilder;
use crate::csr::{CsrGraph, VertexId};
use crate::rng::Xoshiro256;
use crate::weights::sample_weight;

/// Generate a uniform random graph with `n` vertices and approximately
/// `target_edges` edges.
pub fn urand(n: usize, target_edges: usize, seed: u64) -> CsrGraph {
    assert!(n >= 2, "urand needs at least two vertices");
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let attempts = target_edges + target_edges / 50;
    let mut b = GraphBuilder::with_capacity(n, attempts);
    for _ in 0..attempts {
        let u = rng.below(n as u64) as VertexId;
        let v = rng.below(n as u64) as VertexId;
        let w = sample_weight(&mut rng);
        b.push_edge(u, v, w);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::degree_cv;

    #[test]
    fn size_near_target() {
        let g = urand(10_000, 50_000, 1);
        let m = g.num_edges();
        assert!(m > 48_000 && m <= 51_000, "m = {m}");
        assert_eq!(g.validate(), Ok(()));
    }

    #[test]
    fn degrees_concentrated() {
        let g = urand(10_000, 100_000, 2);
        // Poisson(20): cv ≈ 1/sqrt(20) ≈ 0.22.
        assert!(degree_cv(&g) < 0.4, "cv = {}", degree_cv(&g));
    }

    #[test]
    fn deterministic() {
        assert_eq!(urand(512, 2000, 9), urand(512, 2000, 9));
    }
}

//! Mycielski construction.
//!
//! The paper's mycielskian18 input is the 18th graph of the Mycielski
//! sequence starting from K2. We build the *exact same construction* at a
//! smaller level: given `G_k` on vertices `v_1..v_n`, the Mycielskian
//! `M(G_k)` adds shadow vertices `u_1..u_n` and an apex `z`, with edges
//! `{u_i, v_j}` for every original edge `{v_i, v_j}`, and `{u_i, z}` for
//! all `i`. Sizes follow `n' = 2n + 1`, `m' = 3m + n`, so edge counts grow
//! ~3× per level — level 12 (3071 vertices, ~204 K edges) is the SMALL
//! stand-in, level 14 the performance stand-in.

use crate::builder::GraphBuilder;
use crate::csr::{CsrGraph, VertexId};
use crate::rng::Xoshiro256;
use crate::weights::sample_weight;

/// Number of vertices of `mycielskian(level)` (level ≥ 2; level 2 is K2).
pub fn mycielskian_vertices(level: u32) -> usize {
    assert!(level >= 2);
    let mut n = 2usize;
    for _ in 2..level {
        n = 2 * n + 1;
    }
    n
}

/// Number of edges of `mycielskian(level)`.
pub fn mycielskian_edges(level: u32) -> usize {
    assert!(level >= 2);
    let (mut n, mut m) = (2usize, 1usize);
    for _ in 2..level {
        m = 3 * m + n;
        n = 2 * n + 1;
    }
    m
}

/// Build `mycielskian(level)` with uniform 3-decimal weights.
pub fn mycielskian(level: u32, seed: u64) -> CsrGraph {
    assert!((2..=16).contains(&level), "levels above 16 exceed simulator scale");
    let mut rng = Xoshiro256::seed_from_u64(seed);
    // Edge list representation of the current level.
    let mut n: usize = 2;
    let mut edges: Vec<(VertexId, VertexId)> = vec![(0, 1)];
    for _ in 2..level {
        let mut next = Vec::with_capacity(3 * edges.len() + n);
        // Original edges.
        next.extend_from_slice(&edges);
        // Shadow edges: u_i (= n + i) adjacent to every neighbor of v_i.
        for &(a, b) in &edges {
            next.push((n as VertexId + a, b));
            next.push((n as VertexId + b, a));
        }
        // Apex z = 2n adjacent to every shadow vertex.
        let z = (2 * n) as VertexId;
        for i in 0..n {
            next.push((z, (n + i) as VertexId));
        }
        edges = next;
        n = 2 * n + 1;
    }
    let mut b = GraphBuilder::with_capacity(n, edges.len());
    for (u, v) in edges {
        let w = sample_weight(&mut rng);
        b.push_edge(u, v, w);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::stats;

    #[test]
    fn closed_form_sizes() {
        assert_eq!(mycielskian_vertices(2), 2);
        assert_eq!(mycielskian_edges(2), 1);
        assert_eq!(mycielskian_vertices(3), 5); // C5 (Grötzsch sequence)
        assert_eq!(mycielskian_edges(3), 5);
        assert_eq!(mycielskian_vertices(4), 11); // Grötzsch graph
        assert_eq!(mycielskian_edges(4), 20);
        assert_eq!(mycielskian_vertices(12), 3071);
    }

    #[test]
    fn construction_matches_closed_form() {
        for level in 2..=10 {
            let g = mycielskian(level, 1);
            assert_eq!(g.num_vertices(), mycielskian_vertices(level), "level {level}");
            assert_eq!(g.num_edges(), mycielskian_edges(level), "level {level}");
            assert_eq!(g.validate(), Ok(()));
        }
    }

    #[test]
    fn level3_is_c5() {
        let g = mycielskian(3, 2);
        // Every vertex of C5 has degree 2 and the graph is connected.
        assert!((0..5u32).all(|v| g.degree(v) == 2));
        assert_eq!(stats(&g).components, 1);
    }

    #[test]
    fn triangle_free_small_levels() {
        // Mycielskians preserve triangle-freeness; K2 is triangle-free.
        let g = mycielskian(6, 3);
        // Direct triangle scan.
        let mut triangles = 0;
        for (u, v, _) in g.iter_edges() {
            for &x in g.neighbors(u) {
                if x > v && g.has_edge(v, x) {
                    triangles += 1;
                }
            }
        }
        assert_eq!(triangles, 0);
    }

    #[test]
    fn skewed_degree_at_higher_levels() {
        let g = mycielskian(10, 4);
        let s = stats(&g);
        // Apex-like vertices dominate: d_max far above d_avg.
        assert!(s.d_max as f64 > 4.0 * s.d_avg, "d_max {} d_avg {}", s.d_max, s.d_avg);
    }

    #[test]
    fn deterministic() {
        assert_eq!(mycielskian(8, 9), mycielskian(8, 9));
    }
}

//! Random geometric graph generator.
//!
//! `n` points are scattered uniformly in the unit square; two points are
//! adjacent when their Euclidean distance is below `radius`, and the edge
//! weight is `1 − distance/radius` (closer ⇒ heavier) — the natural
//! weighting for the matching-as-assignment applications (computer vision
//! correspondences, facility location) the paper's introduction motivates.

use crate::builder::GraphBuilder;
use crate::csr::{CsrGraph, VertexId};
use crate::rng::Xoshiro256;

/// Generate a random geometric graph with connection radius `radius`.
pub fn geometric(n: usize, radius: f64, seed: u64) -> CsrGraph {
    let (g, _) = geometric_with_points(n, radius, seed);
    g
}

/// As [`geometric`], also returning the sampled point coordinates.
pub fn geometric_with_points(n: usize, radius: f64, seed: u64) -> (CsrGraph, Vec<(f64, f64)>) {
    assert!(n >= 1);
    assert!(radius > 0.0 && radius <= 1.0);
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let pts: Vec<(f64, f64)> = (0..n).map(|_| (rng.next_f64(), rng.next_f64())).collect();
    // Uniform grid bucketing: only compare points in neighboring cells,
    // bringing expected work to O(n · E[deg]).
    let cells = ((1.0 / radius).floor() as usize).clamp(1, 4096);
    let cell_of = |p: (f64, f64)| -> (usize, usize) {
        let cx = ((p.0 * cells as f64) as usize).min(cells - 1);
        let cy = ((p.1 * cells as f64) as usize).min(cells - 1);
        (cx, cy)
    };
    let mut grid: Vec<Vec<VertexId>> = vec![Vec::new(); cells * cells];
    for (i, &p) in pts.iter().enumerate() {
        let (cx, cy) = cell_of(p);
        grid[cy * cells + cx].push(i as VertexId);
    }
    let r2 = radius * radius;
    let mut b = GraphBuilder::new(n);
    for (i, &(x, y)) in pts.iter().enumerate() {
        let (cx, cy) = cell_of((x, y));
        for dy in cy.saturating_sub(1)..=(cy + 1).min(cells - 1) {
            for dx in cx.saturating_sub(1)..=(cx + 1).min(cells - 1) {
                for &j in &grid[dy * cells + dx] {
                    if (j as usize) <= i {
                        continue;
                    }
                    let (px, py) = pts[j as usize];
                    let d2 = (x - px) * (x - px) + (y - py) * (y - py);
                    if d2 < r2 {
                        let w = 1.0 - d2.sqrt() / radius;
                        if w > 0.0 {
                            b.push_edge(i as VertexId, j, w);
                        }
                    }
                }
            }
        }
    }
    (b.build(), pts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expected_density() {
        let n = 5000;
        let radius = 0.03;
        let g = geometric(n, radius, 1);
        // E[deg] ≈ n·π·r² (ignoring boundary): ≈ 14.1.
        let expect = n as f64 * std::f64::consts::PI * radius * radius;
        let d = g.avg_degree();
        assert!(d > 0.5 * expect && d < 1.2 * expect, "d_avg {d} vs expected {expect}");
        assert_eq!(g.validate(), Ok(()));
    }

    #[test]
    fn weights_decrease_with_distance() {
        let (g, pts) = geometric_with_points(2000, 0.05, 2);
        for (u, v, w) in g.iter_edges().take(500) {
            let (ax, ay) = pts[u as usize];
            let (bx, by) = pts[v as usize];
            let d = ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt();
            assert!((w - (1.0 - d / 0.05)).abs() < 1e-9);
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(geometric(500, 0.1, 3), geometric(500, 0.1, 3));
    }

    #[test]
    fn grid_matches_bruteforce() {
        let n = 300;
        let radius = 0.15;
        let (g, pts) = geometric_with_points(n, radius, 4);
        let mut expected = 0usize;
        for i in 0..n {
            for j in (i + 1)..n {
                let d2 = (pts[i].0 - pts[j].0).powi(2) + (pts[i].1 - pts[j].1).powi(2);
                if d2 < radius * radius && 1.0 - d2.sqrt() / radius > 0.0 {
                    expected += 1;
                }
            }
        }
        assert_eq!(g.num_edges(), expected);
    }
}

//! Dense similarity-network generator.
//!
//! Stand-in for mouse_gene: gene co-expression networks threshold a dense
//! correlation matrix, producing tight near-clique modules (co-regulated
//! gene groups) plus a sparse inter-module background. We sample `blocks`
//! modules with intra-block edge probability `intra_p` and add uniform
//! background edges for the remaining budget.

use crate::builder::GraphBuilder;
use crate::csr::{CsrGraph, VertexId};
use crate::rng::Xoshiro256;
use crate::weights::sample_weight;

/// Generate a blocky dense similarity graph.
///
/// * `n` — vertex count;
/// * `blocks` — number of modules (vertices are split evenly);
/// * `intra_p` — intra-module edge probability;
/// * `background` — number of extra uniform background edges.
pub fn similarity(n: usize, blocks: usize, intra_p: f64, background: usize, seed: u64) -> CsrGraph {
    assert!(n >= 2);
    assert!(blocks >= 1 && blocks <= n);
    assert!((0.0..=1.0).contains(&intra_p));
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let block_size = n.div_ceil(blocks);
    let mut b = GraphBuilder::new(n);
    for blk in 0..blocks {
        let lo = blk * block_size;
        let hi = ((blk + 1) * block_size).min(n);
        for i in lo..hi {
            for j in (i + 1)..hi {
                if rng.chance(intra_p) {
                    // Intra-module similarities are biased high: max of two
                    // uniforms, then quantized like the paper's scheme.
                    let w1 = sample_weight(&mut rng);
                    let w2 = sample_weight(&mut rng);
                    b.push_edge(i as VertexId, j as VertexId, w1.max(w2));
                }
            }
        }
    }
    for _ in 0..background {
        let u = rng.below(n as u64) as VertexId;
        let v = rng.below(n as u64) as VertexId;
        let w = sample_weight(&mut rng);
        b.push_edge(u, v, w);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::stats;

    #[test]
    fn dense_blocks() {
        let g = similarity(1000, 5, 0.8, 2000, 1);
        let s = stats(&g);
        // Each block of 200 at p=0.8 gives ~159 intra-degree.
        assert!(s.d_avg > 120.0, "d_avg = {}", s.d_avg);
        assert_eq!(g.validate(), Ok(()));
    }

    #[test]
    fn intra_block_denser_than_background() {
        let g = similarity(400, 4, 0.7, 400, 2);
        // Vertex 0's block is 0..100: most of its neighbors lie there.
        let in_block = g.neighbors(0).iter().filter(|&&v| v < 100).count();
        assert!(in_block as f64 > 0.7 * g.degree(0) as f64);
    }

    #[test]
    fn single_block_is_near_clique() {
        let g = similarity(50, 1, 1.0, 0, 3);
        assert_eq!(g.num_edges(), 50 * 49 / 2);
    }

    #[test]
    fn deterministic() {
        assert_eq!(similarity(200, 4, 0.5, 100, 9), similarity(200, 4, 0.5, 100, 9));
    }
}

//! k-mer (de Bruijn-like) genomic graph generator.
//!
//! Stand-in for kmer_U1a (d_avg ≈ 4) and kmer_V2a (d_avg ≈ 2): genome
//! assembly graphs are overwhelmingly made of long simple chains
//! (degree-2 runs) punctuated by branch vertices where reads diverge. We
//! generate a collection of long paths and then add random short-range
//! branch edges until the average degree target is met.

use crate::builder::GraphBuilder;
use crate::csr::{CsrGraph, VertexId};
use crate::rng::Xoshiro256;
use crate::weights::sample_weight;

/// Generate a k-mer-like graph.
///
/// * `n` — vertex count.
/// * `avg_degree` — target average degree (≥ ~1.5; kmer_V2a ≈ 2,
///   kmer_U1a ≈ 4).
/// * `chain_len` — mean length of unbranched runs (contigs).
pub fn kmer(n: usize, avg_degree: f64, chain_len: usize, seed: u64) -> CsrGraph {
    assert!(n >= 2);
    assert!(avg_degree >= 1.0, "kmer graphs need avg degree >= 1");
    assert!(chain_len >= 2);
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let target_m = (n as f64 * avg_degree / 2.0) as usize;
    let mut b = GraphBuilder::with_capacity(n, target_m + target_m / 10);
    // Backbone: consecutive chains with a break roughly every `chain_len`
    // vertices (chains are disjoint contigs).
    let break_p = 1.0 / chain_len as f64;
    let mut backbone = 0usize;
    for v in 0..(n - 1) as VertexId {
        if rng.chance(break_p) {
            continue;
        }
        let w = sample_weight(&mut rng);
        b.push_edge(v, v + 1, w);
        backbone += 1;
    }
    // Branches: short-range chords (genomic repeats connect nearby
    // contigs), added until the edge budget is reached.
    let window = (4 * chain_len).max(8) as u64;
    let mut extra = target_m.saturating_sub(backbone);
    while extra > 0 {
        let u = rng.below(n as u64);
        let span = 2 + rng.below(window - 1);
        let v = u + span;
        if v >= n as u64 {
            continue; // avoid piling clamped chords onto the last vertex
        }
        let w = sample_weight(&mut rng);
        b.push_edge(u as VertexId, v as VertexId, w);
        extra -= 1;
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::stats;

    #[test]
    fn low_degree_profile() {
        let g = kmer(50_000, 4.0, 30, 1);
        let s = stats(&g);
        assert!(s.d_avg > 3.0 && s.d_avg < 4.5, "d_avg = {}", s.d_avg);
        // k-mer graphs have tiny max degree (paper: 70 for kmer_U1a at 68M
        // vertices; at our scale anything ≤ 40 is the right character).
        assert!(s.d_max <= 40, "d_max = {}", s.d_max);
        assert_eq!(g.validate(), Ok(()));
    }

    #[test]
    fn sparse_variant() {
        let g = kmer(50_000, 2.0, 60, 2);
        let s = stats(&g);
        assert!(s.d_avg > 1.5 && s.d_avg < 2.5, "d_avg = {}", s.d_avg);
    }

    #[test]
    fn mostly_chains() {
        let g = kmer(10_000, 2.0, 50, 3);
        let deg2 = (0..10_000u32).filter(|&v| g.degree(v) <= 2).count();
        assert!(deg2 as f64 > 0.6 * 10_000.0, "only {deg2} chain-like vertices");
    }

    #[test]
    fn deterministic() {
        assert_eq!(kmer(2000, 3.0, 20, 5), kmer(2000, 3.0, 20, 5));
    }
}

//! Stencil lattice generator.
//!
//! Stand-in for the FEM/CFD matrices Queen_4147 (d_avg ≈ 79) and HV15R
//! (d_avg ≈ 140): structured meshes whose rows couple every node within a
//! fixed stencil radius. We build a `width × height` grid and connect each
//! cell to all cells within Chebyshev distance `radius` — radius 4 gives
//! degree (2·4+1)²−1 = 80, radius 6 gives 168.

use crate::builder::GraphBuilder;
use crate::csr::{CsrGraph, VertexId};
use crate::rng::Xoshiro256;
use crate::weights::sample_weight;

/// Generate a 2-D lattice with a `(2r+1)²−1`-point stencil.
pub fn lattice(width: usize, height: usize, radius: usize, seed: u64) -> CsrGraph {
    assert!(width >= 1 && height >= 1);
    assert!(radius >= 1);
    let n = width * height;
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let r = radius as isize;
    let interior_degree = (2 * radius + 1) * (2 * radius + 1) - 1;
    let mut b = GraphBuilder::with_capacity(n, n * interior_degree / 2);
    for y in 0..height as isize {
        for x in 0..width as isize {
            let u = (y * width as isize + x) as VertexId;
            // Only emit "forward" neighbors so each edge is pushed once.
            for dy in 0..=r {
                let ny = y + dy;
                if ny >= height as isize {
                    break;
                }
                let x_lo = if dy == 0 { 1 } else { -r };
                for dx in x_lo..=r {
                    let nx = x + dx;
                    if nx < 0 || nx >= width as isize {
                        continue;
                    }
                    let v = (ny * width as isize + nx) as VertexId;
                    let w = sample_weight(&mut rng);
                    b.push_edge(u, v, w);
                }
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{degree_cv, stats};

    #[test]
    fn interior_degree_matches_stencil() {
        let g = lattice(20, 20, 2, 1);
        // Center cell (10,10) is interior for radius 2.
        let center = 10 * 20 + 10;
        assert_eq!(g.degree(center), 24); // 5*5-1
        assert_eq!(g.validate(), Ok(()));
    }

    #[test]
    fn radius4_mimics_queen() {
        let g = lattice(64, 64, 4, 2);
        let s = stats(&g);
        assert_eq!(s.d_max, 80);
        // Boundary cells pull the average below 80 a bit.
        assert!(s.d_avg > 60.0, "d_avg = {}", s.d_avg);
        assert_eq!(s.components, 1);
    }

    #[test]
    fn near_regular() {
        let g = lattice(48, 48, 3, 3);
        assert!(degree_cv(&g) < 0.25, "cv = {}", degree_cv(&g));
    }

    #[test]
    fn single_row_lattice() {
        let g = lattice(10, 1, 2, 4);
        assert_eq!(g.num_vertices(), 10);
        // Path-with-chords: vertex 5 sees 4 neighbors (±1, ±2).
        assert_eq!(g.degree(5), 4);
    }

    #[test]
    fn deterministic() {
        assert_eq!(lattice(16, 16, 2, 5), lattice(16, 16, 2, 5));
    }
}

//! Recursive-MATrix (R-MAT / Kronecker) generator.
//!
//! Stand-in for the paper's power-law inputs: GAP-kron, com-Friendster,
//! com-Orkut and AGATHA-2015. Each edge is placed by recursively descending
//! a 2×2 probability partition `(a, b, c, d)`; the GAP benchmark's Kron
//! parameters `(0.57, 0.19, 0.19, 0.05)` are the default.

use crate::builder::GraphBuilder;
use crate::csr::{CsrGraph, VertexId};
use crate::rng::Xoshiro256;
use crate::weights::sample_weight;

/// R-MAT quadrant probabilities. Must be non-negative and sum to 1.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RmatParams {
    pub a: f64,
    pub b: f64,
    pub c: f64,
    pub d: f64,
}

impl RmatParams {
    /// Graph500/GAP Kronecker parameters (strong skew).
    pub const GAP_KRON: RmatParams = RmatParams { a: 0.57, b: 0.19, c: 0.19, d: 0.05 };
    /// Milder skew resembling social networks (Orkut/Friendster-like).
    pub const SOCIAL: RmatParams = RmatParams { a: 0.45, b: 0.22, c: 0.22, d: 0.11 };
    /// Uniform quadrants — degenerates to an Erdős–Rényi-like graph.
    pub const FLAT: RmatParams = RmatParams { a: 0.25, b: 0.25, c: 0.25, d: 0.25 };

    fn validate(&self) {
        let s = self.a + self.b + self.c + self.d;
        assert!((s - 1.0).abs() < 1e-9, "R-MAT probabilities must sum to 1, got {s}");
        assert!(
            self.a >= 0.0 && self.b >= 0.0 && self.c >= 0.0 && self.d >= 0.0,
            "R-MAT probabilities must be non-negative"
        );
    }
}

/// Generate an R-MAT graph with `n` vertices and approximately
/// `target_edges` undirected edges (duplicates and self loops are dropped,
/// so the realized count is slightly lower; we oversample by 5% to
/// compensate).
pub fn rmat(n: usize, target_edges: usize, params: RmatParams, seed: u64) -> CsrGraph {
    params.validate();
    assert!(n >= 2, "R-MAT needs at least two vertices");
    let scale = usize::BITS - (n - 1).leading_zeros(); // ceil(log2 n)
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let attempts = target_edges + target_edges / 20;
    let mut b = GraphBuilder::with_capacity(n, attempts);
    let ab = params.a + params.b;
    let a_frac = if ab > 0.0 { params.a / ab } else { 0.5 };
    let cd = params.c + params.d;
    let c_frac = if cd > 0.0 { params.c / cd } else { 0.5 };
    for _ in 0..attempts {
        let (mut u, mut v) = (0u64, 0u64);
        for _ in 0..scale {
            u <<= 1;
            v <<= 1;
            let top = rng.chance(ab);
            if top {
                if !rng.chance(a_frac) {
                    v |= 1;
                }
            } else {
                u |= 1;
                if !rng.chance(c_frac) {
                    v |= 1;
                }
            }
        }
        if u as usize >= n || v as usize >= n {
            continue; // rejected: outside the vertex range for non-power-of-2 n
        }
        let w = sample_weight(&mut rng);
        b.push_edge(u as VertexId, v as VertexId, w);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{degree_cv, stats};

    #[test]
    fn sizes_near_target() {
        let g = rmat(1 << 12, 40_000, RmatParams::GAP_KRON, 1);
        assert_eq!(g.num_vertices(), 1 << 12);
        let m = g.num_edges();
        // Skewed R-MAT collides a lot; half the target is acceptable.
        assert!(m > 20_000 && m <= 42_000, "m = {m}");
        assert_eq!(g.validate(), Ok(()));
    }

    #[test]
    fn deterministic() {
        let a = rmat(1024, 5000, RmatParams::GAP_KRON, 7);
        let b = rmat(1024, 5000, RmatParams::GAP_KRON, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn seed_changes_output() {
        let a = rmat(1024, 5000, RmatParams::GAP_KRON, 1);
        let b = rmat(1024, 5000, RmatParams::GAP_KRON, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn skewed_params_give_skewed_degrees() {
        let kron = rmat(4096, 40_000, RmatParams::GAP_KRON, 3);
        let flat = rmat(4096, 40_000, RmatParams::FLAT, 3);
        assert!(
            degree_cv(&kron) > 2.0 * degree_cv(&flat),
            "kron cv {} vs flat cv {}",
            degree_cv(&kron),
            degree_cv(&flat)
        );
    }

    #[test]
    fn non_power_of_two_vertex_count() {
        let g = rmat(3000, 15_000, RmatParams::SOCIAL, 4);
        let s = stats(&g);
        assert_eq!(s.vertices, 3000);
        assert!(s.edges > 7000);
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn rejects_bad_params() {
        rmat(16, 10, RmatParams { a: 0.5, b: 0.5, c: 0.5, d: 0.5 }, 0);
    }
}

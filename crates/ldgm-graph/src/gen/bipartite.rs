//! Bipartite assignment-instance generator.
//!
//! Matching's flagship application (the paper's introduction cites the
//! resident–hospital assignment problem) is bipartite: `left` agents,
//! `right` tasks, and a preference weight per compatible pair. Vertices
//! `0..left` are agents, `left..left+right` are tasks.

use crate::builder::GraphBuilder;
use crate::csr::{CsrGraph, VertexId};
use crate::rng::Xoshiro256;
use crate::weights::sample_weight;

/// Generate a sparse bipartite graph where each left vertex is connected to
/// `choices` uniformly random right vertices (a preference list).
pub fn bipartite(left: usize, right: usize, choices: usize, seed: u64) -> CsrGraph {
    assert!(left >= 1 && right >= 1);
    assert!(choices >= 1 && choices <= right);
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let n = left + right;
    let mut b = GraphBuilder::with_capacity(n, left * choices);
    for u in 0..left {
        // Sample `choices` distinct right endpoints by partial shuffle when
        // dense, rejection when sparse.
        if choices * 3 >= right {
            let mut all: Vec<VertexId> = (0..right as VertexId).collect();
            rng.shuffle(&mut all);
            for &r in all.iter().take(choices) {
                let w = sample_weight(&mut rng);
                b.push_edge(u as VertexId, left as VertexId + r, w);
            }
        } else {
            let mut picks: Vec<VertexId> = Vec::with_capacity(choices);
            while picks.len() < choices {
                let r = rng.below(right as u64) as VertexId;
                if picks.contains(&r) {
                    continue;
                }
                picks.push(r);
                let w = sample_weight(&mut rng);
                b.push_edge(u as VertexId, left as VertexId + r, w);
            }
        }
    }
    b.build()
}

/// Whether `g` is bipartite with parts `0..left` and `left..n` (no
/// intra-part edges).
pub fn is_bipartition(g: &CsrGraph, left: usize) -> bool {
    g.iter_edges().all(|(u, v, _)| ((u as usize) < left) != ((v as usize) < left))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parts_are_respected() {
        let g = bipartite(100, 120, 5, 1);
        assert!(is_bipartition(&g, 100));
        assert_eq!(g.num_vertices(), 220);
        assert_eq!(g.validate(), Ok(()));
    }

    #[test]
    fn left_degrees_near_choices() {
        let g = bipartite(200, 300, 4, 2);
        // Picks are distinct per left vertex, so degree is exactly `choices`.
        for u in 0..200u32 {
            assert_eq!(g.degree(u), 4);
        }
    }

    #[test]
    fn dense_choice_path() {
        let g = bipartite(10, 12, 10, 3);
        for u in 0..10u32 {
            assert_eq!(g.degree(u), 10);
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(bipartite(50, 60, 3, 4), bipartite(50, 60, 3, 4));
    }
}

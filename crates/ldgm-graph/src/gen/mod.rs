//! Synthetic graph generators covering every structural family of the
//! paper's Table I dataset suite.
//!
//! Each generator is an ordinary function (see the submodules), and
//! [`GraphGen`] offers a fluent facade:
//!
//! ```
//! use ldgm_graph::gen::GraphGen;
//! let g = GraphGen::rmat().vertices(1 << 10).avg_degree(8).seed(42).build();
//! assert_eq!(g.num_vertices(), 1024);
//! ```

pub mod bipartite;
pub mod geometric;
pub mod kmer;
pub mod lattice;
pub mod mycielskian;
pub mod rmat;
pub mod similarity;
pub mod urand;
pub mod web;

pub use bipartite::{bipartite, is_bipartition};
pub use geometric::{geometric, geometric_with_points};
pub use kmer::kmer;
pub use lattice::lattice;
pub use mycielskian::{mycielskian, mycielskian_edges, mycielskian_vertices};
pub use rmat::{rmat, RmatParams};
pub use similarity::similarity;
pub use urand::urand;
pub use web::web;

use crate::csr::CsrGraph;

/// Which structural family to generate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Family {
    /// Power-law Kronecker ([`rmat()`]).
    Rmat(RmatParams),
    /// Uniform random ([`urand()`]).
    Urand,
    /// Genomic chains ([`kmer()`]) with the given mean chain length.
    Kmer { chain_len: usize },
    /// Web crawl copy model ([`web()`]) with the given copy probability.
    Web { copy_p: f64 },
    /// Stencil lattice ([`lattice()`]) with the given radius; vertex count is
    /// rounded to the nearest square.
    Lattice { radius: usize },
    /// Random geometric graph with the given radius.
    Geometric { radius: f64 },
    /// Dense modular similarity graph with the given block count and
    /// intra-block probability.
    Similarity { blocks: usize, intra_p: f64 },
}

/// Fluent generator configuration.
#[derive(Clone, Debug)]
pub struct GraphGen {
    family: Family,
    n: usize,
    avg_degree: f64,
    seed: u64,
}

impl GraphGen {
    /// Start configuring a generator for `family`.
    pub fn new(family: Family) -> Self {
        GraphGen { family, n: 1024, avg_degree: 8.0, seed: 0 }
    }

    /// GAP-kron-style power-law graph.
    pub fn rmat() -> Self {
        Self::new(Family::Rmat(RmatParams::GAP_KRON))
    }

    /// Social-network-style (milder skew) power-law graph.
    pub fn social() -> Self {
        Self::new(Family::Rmat(RmatParams::SOCIAL))
    }

    /// GAP-urand-style uniform random graph.
    pub fn urand() -> Self {
        Self::new(Family::Urand)
    }

    /// Genomic k-mer chains.
    pub fn kmer() -> Self {
        Self::new(Family::Kmer { chain_len: 40 })
    }

    /// Web-crawl copy model.
    pub fn web() -> Self {
        Self::new(Family::Web { copy_p: 0.5 })
    }

    /// FEM-style stencil lattice.
    pub fn lattice(radius: usize) -> Self {
        Self::new(Family::Lattice { radius })
    }

    /// Random geometric graph.
    pub fn geometric(radius: f64) -> Self {
        Self::new(Family::Geometric { radius })
    }

    /// Gene-similarity-style dense modular graph.
    pub fn similarity(blocks: usize) -> Self {
        Self::new(Family::Similarity { blocks, intra_p: 0.8 })
    }

    /// Set the vertex count.
    pub fn vertices(mut self, n: usize) -> Self {
        self.n = n;
        self
    }

    /// Set the target average degree (families that control density
    /// through other parameters — lattice, geometric, similarity — ignore
    /// this and derive density from their own knobs).
    pub fn avg_degree(mut self, d: impl Into<f64>) -> Self {
        self.avg_degree = d.into();
        self
    }

    /// Set the RNG seed.
    pub fn seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    /// Generate the graph.
    pub fn build(&self) -> CsrGraph {
        let target_m = (self.n as f64 * self.avg_degree / 2.0).ceil() as usize;
        match self.family {
            Family::Rmat(p) => rmat(self.n, target_m, p, self.seed),
            Family::Urand => urand(self.n, target_m, self.seed),
            Family::Kmer { chain_len } => kmer(self.n, self.avg_degree, chain_len, self.seed),
            Family::Web { copy_p } => {
                let out_deg = (self.avg_degree / 2.0).round().max(1.0) as usize;
                web(self.n, out_deg, copy_p, self.seed)
            }
            Family::Lattice { radius } => {
                let side = (self.n as f64).sqrt().round().max(1.0) as usize;
                lattice(side, side, radius, self.seed)
            }
            Family::Geometric { radius } => geometric(self.n, radius, self.seed),
            Family::Similarity { blocks, intra_p } => {
                similarity(self.n, blocks, intra_p, self.n, self.seed)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facade_builds_each_family() {
        for gg in [
            GraphGen::rmat().vertices(512).avg_degree(6),
            GraphGen::social().vertices(512).avg_degree(6),
            GraphGen::urand().vertices(512).avg_degree(6),
            GraphGen::kmer().vertices(512).avg_degree(3),
            GraphGen::web().vertices(512).avg_degree(8),
            GraphGen::lattice(2).vertices(400),
            GraphGen::geometric(0.08).vertices(512),
            GraphGen::similarity(4).vertices(256),
        ] {
            let gg = gg.seed(1);
            let g = gg.build();
            assert!(g.num_vertices() >= 256, "family {:?}", gg.family);
            assert!(g.num_edges() > 0, "family {:?}", gg.family);
            assert_eq!(g.validate(), Ok(()), "family {:?}", gg.family);
        }
    }

    #[test]
    fn facade_seed_determinism() {
        let a = GraphGen::web().vertices(300).avg_degree(6).seed(5).build();
        let b = GraphGen::web().vertices(300).avg_degree(6).seed(5).build();
        assert_eq!(a, b);
    }

    #[test]
    fn lattice_rounds_to_square() {
        let g = GraphGen::lattice(1).vertices(1000).build();
        assert_eq!(g.num_vertices(), 32 * 32);
    }
}

//! Web-crawl graph generator (copy model).
//!
//! Stand-in for uk-2007-05 and webbase-2001. The copy model (Kumar et al.)
//! reproduces the two defining features of crawl graphs: heavy-tailed
//! degrees (pages copy links from popular prototypes) and strong locality
//! (most links point to recently seen, lexicographically close pages —
//! which in crawl orderings means nearby ids).

use crate::builder::GraphBuilder;
use crate::csr::{CsrGraph, VertexId};
use crate::rng::Xoshiro256;
use crate::weights::sample_weight;

/// Generate a web-crawl-like graph.
///
/// * `n` — vertex count.
/// * `out_degree` — links added per arriving vertex (≈ d_avg / 2 … d_avg).
/// * `copy_p` — probability a link copies the prototype's target instead of
///   a uniform earlier vertex (higher ⇒ heavier tail).
pub fn web(n: usize, out_degree: usize, copy_p: f64, seed: u64) -> CsrGraph {
    assert!(n >= 2);
    assert!(out_degree >= 1);
    assert!((0.0..=1.0).contains(&copy_p));
    let mut rng = Xoshiro256::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n, n * out_degree);
    // Flat targets list doubles as a preferential-attachment sampler: a
    // uniform pick from it is degree-proportional.
    let mut targets: Vec<VertexId> = Vec::with_capacity(n * out_degree);
    b.push_edge(0, 1, sample_weight(&mut rng));
    targets.push(0);
    targets.push(1);
    for v in 2..n as VertexId {
        for _ in 0..out_degree.min(v as usize) {
            let t = if rng.chance(copy_p) {
                // Copy: degree-proportional pick (popular pages get more
                // in-links).
                targets[rng.below(targets.len() as u64) as usize]
            } else {
                // Locality: uniform pick among recent vertices.
                let window = 256.min(v as u64);
                (v as u64 - 1 - rng.below(window)) as VertexId
            };
            if t == v {
                continue;
            }
            let w = sample_weight(&mut rng);
            b.push_edge(v, t, w);
            // Weight the sampler toward in-link targets (twice) over the
            // arriving page (once): in-degree-proportional copying with a
            // heavier tail than plain preferential attachment, matching
            // crawl-graph degree exponents (< 3).
            targets.push(t);
            targets.push(t);
            targets.push(v);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{degree_cv, stats};

    #[test]
    fn heavy_tail() {
        let g = web(20_000, 8, 0.5, 1);
        let s = stats(&g);
        assert!(s.d_max > 50, "d_max = {}", s.d_max);
        // Markedly more skewed than a uniform graph of the same density.
        let u = crate::gen::urand::urand(20_000, g.num_edges(), 1);
        assert!(
            degree_cv(&g) > 2.0 * degree_cv(&u),
            "web cv {} vs urand cv {}",
            degree_cv(&g),
            degree_cv(&u)
        );
        assert_eq!(g.validate(), Ok(()));
    }

    #[test]
    fn edge_count_near_target() {
        let g = web(10_000, 10, 0.4, 2);
        let m = g.num_edges();
        assert!(m > 80_000 && m <= 100_000, "m = {m}");
    }

    #[test]
    fn higher_copy_p_heavier_tail() {
        let lo = web(10_000, 6, 0.1, 3);
        let hi = web(10_000, 6, 0.8, 3);
        assert!(stats(&hi).d_max > stats(&lo).d_max);
    }

    #[test]
    fn deterministic() {
        assert_eq!(web(1000, 4, 0.5, 7), web(1000, 4, 0.5, 7));
    }
}

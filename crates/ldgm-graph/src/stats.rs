//! Graph statistics: the properties reported in the paper's Table I
//! (|V|, |E|, d_max, d_avg) plus degree distribution and connectivity
//! summaries used when validating that synthetic stand-ins match their
//! target families.

use crate::csr::{CsrGraph, VertexId};

/// Summary statistics of a graph.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// |V|
    pub vertices: usize,
    /// |E| (undirected)
    pub edges: usize,
    /// Maximum degree.
    pub d_max: usize,
    /// Average degree `2m/n`.
    pub d_avg: f64,
    /// Number of isolated (degree-0) vertices.
    pub isolated: usize,
    /// Number of connected components (isolated vertices count as
    /// singleton components).
    pub components: usize,
}

/// Compute [`GraphStats`] for `g`.
pub fn stats(g: &CsrGraph) -> GraphStats {
    let n = g.num_vertices();
    let mut d_max = 0;
    let mut isolated = 0;
    for v in 0..n as VertexId {
        let d = g.degree(v);
        d_max = d_max.max(d);
        if d == 0 {
            isolated += 1;
        }
    }
    GraphStats {
        vertices: n,
        edges: g.num_edges(),
        d_max,
        d_avg: g.avg_degree(),
        isolated,
        components: count_components(g),
    }
}

/// Count connected components with an iterative BFS.
pub fn count_components(g: &CsrGraph) -> usize {
    let n = g.num_vertices();
    let mut seen = vec![false; n];
    let mut queue: Vec<VertexId> = Vec::new();
    let mut comps = 0;
    for s in 0..n {
        if seen[s] {
            continue;
        }
        comps += 1;
        seen[s] = true;
        queue.push(s as VertexId);
        while let Some(v) = queue.pop() {
            for &u in g.neighbors(v) {
                if !seen[u as usize] {
                    seen[u as usize] = true;
                    queue.push(u);
                }
            }
        }
    }
    comps
}

/// Histogram of degrees in log2-spaced buckets: bucket `i` counts vertices
/// with degree in `[2^i, 2^(i+1))`; bucket 0 also holds degree 0 and 1.
pub fn degree_histogram_log2(g: &CsrGraph) -> Vec<usize> {
    let n = g.num_vertices();
    let mut hist = vec![0usize; 33];
    for v in 0..n as VertexId {
        let d = g.degree(v);
        let bucket = if d <= 1 { 0 } else { (usize::BITS - (d.leading_zeros())) as usize - 1 };
        hist[bucket.min(32)] += 1;
    }
    while hist.len() > 1 && *hist.last().unwrap() == 0 {
        hist.pop();
    }
    hist
}

/// Coefficient of variation of the degree distribution (σ/μ) — a quick
/// skewness proxy separating power-law (high CV) from near-regular (low
/// CV) families.
pub fn degree_cv(g: &CsrGraph) -> f64 {
    let n = g.num_vertices();
    if n == 0 {
        return 0.0;
    }
    let mean = g.avg_degree();
    if mean == 0.0 {
        return 0.0;
    }
    let var = (0..n as VertexId)
        .map(|v| {
            let d = g.degree(v) as f64 - mean;
            d * d
        })
        .sum::<f64>()
        / n as f64;
    var.sqrt() / mean
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    #[test]
    fn stats_of_path() {
        // 0-1-2-3 plus isolated vertex 4.
        let g = GraphBuilder::new(5)
            .add_edge(0, 1, 1.0)
            .add_edge(1, 2, 1.0)
            .add_edge(2, 3, 1.0)
            .build();
        let s = stats(&g);
        assert_eq!(s.vertices, 5);
        assert_eq!(s.edges, 3);
        assert_eq!(s.d_max, 2);
        assert_eq!(s.isolated, 1);
        assert_eq!(s.components, 2);
        assert!((s.d_avg - 1.2).abs() < 1e-12);
    }

    #[test]
    fn components_of_disjoint_triangles() {
        let mut b = GraphBuilder::new(9);
        for t in 0..3u32 {
            let base = t * 3;
            b.push_edge(base, base + 1, 1.0);
            b.push_edge(base + 1, base + 2, 1.0);
            b.push_edge(base, base + 2, 1.0);
        }
        assert_eq!(count_components(&b.build()), 3);
    }

    #[test]
    fn histogram_buckets() {
        // Star: center degree 8, leaves degree 1.
        let mut b = GraphBuilder::new(9);
        for v in 1..9u32 {
            b.push_edge(0, v, 1.0);
        }
        let h = degree_histogram_log2(&b.build());
        assert_eq!(h[0], 8); // eight degree-1 leaves
        assert_eq!(h[3], 1); // center, degree 8 in [8,16)
    }

    #[test]
    fn cv_zero_for_regular() {
        // Cycle: all degrees 2.
        let mut b = GraphBuilder::new(6);
        for v in 0..6u32 {
            b.push_edge(v, (v + 1) % 6, 1.0);
        }
        assert!(degree_cv(&b.build()) < 1e-12);
    }

    #[test]
    fn cv_high_for_star() {
        let mut b = GraphBuilder::new(101);
        for v in 1..101u32 {
            b.push_edge(0, v, 1.0);
        }
        assert!(degree_cv(&b.build()) > 2.0);
    }
}

//! Edge-band substream layout over a preference-sorted adjacency.
//!
//! The out-of-core streaming engine never holds a partition's full
//! adjacency resident. Instead it slices every vertex's *sorted* neighbor
//! list (weight descending, id ascending — [`crate::sorted`]) into fixed-
//! width rank bands: band `k` of vertex `u` covers sorted positions
//! `[k·W, (k+1)·W)` of `u`'s list. Processing bands in order preserves
//! the canonical preference order exactly — the first available neighbor
//! found across bands 0, 1, 2, … is the same argmax a resident full scan
//! would select — so streaming changes residency and billing, never the
//! matching. Band 0 holds every vertex's heaviest edges and is therefore
//! the largest band and the one worth keeping resident across iterations;
//! later bands shrink as only high-degree vertices reach into them.
//!
//! This module is pure geometry (band extents, slices, and the byte
//! footprint a band occupies on a device); window sizing against a memory
//! budget lives in `ldgm-part`, and the banded kernels in `ldgm-core`.

use crate::csr::{CsrGraph, VertexId, Weight};
use crate::sorted::SortedAdjacency;

/// Bytes one adjacency slot occupies on-device: 64-bit neighbor id plus
/// 64-bit weight, as in the paper's memory model.
pub const BAND_EDGE_BYTES: u64 = 16;
/// Bytes of the per-vertex slice descriptor shipped with each band (one
/// 64-bit offset, mirroring the batch buffer's offset slice).
pub const BAND_VERTEX_BYTES: u64 = 8;

/// Fixed-width rank-band layout over a contiguous vertex range.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BandLayout {
    start: VertexId,
    end: VertexId,
    width: usize,
    num_bands: usize,
}

impl BandLayout {
    /// Lay `width`-wide rank bands over `[start, end)` of `g`. The band
    /// count is driven by the largest degree in the range: `0` when the
    /// range holds no edges (nothing to stream).
    pub fn new(g: &CsrGraph, start: VertexId, end: VertexId, width: usize) -> Self {
        assert!(width >= 1, "band width must be >= 1");
        assert!(start <= end, "inverted vertex range");
        let max_deg = (start..end).map(|v| g.degree(v)).max().unwrap_or(0);
        BandLayout { start, end, width, num_bands: max_deg.div_ceil(width) }
    }

    /// Sorted-rank slots per vertex per band.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Bands needed to cover every neighbor list in the range (0 when the
    /// range is edgeless).
    pub fn num_bands(&self) -> usize {
        self.num_bands
    }

    /// Covered vertex range.
    pub fn range(&self) -> (VertexId, VertexId) {
        (self.start, self.end)
    }

    /// Slots of `v`'s list that fall in `band`.
    #[inline]
    pub fn band_edges(&self, g: &CsrGraph, v: VertexId, band: usize) -> usize {
        let deg = g.degree(v);
        deg.saturating_sub(band * self.width).min(self.width)
    }

    /// Whether `band` reaches the end of `v`'s list — after scanning it,
    /// `v`'s neighborhood is exhausted.
    #[inline]
    pub fn is_last_band(&self, g: &CsrGraph, v: VertexId, band: usize) -> bool {
        g.degree(v) <= (band + 1) * self.width
    }

    /// `v`'s sorted neighbors and weights restricted to `band` (both
    /// empty when the band lies past the end of `v`'s list).
    #[inline]
    pub fn band_slice<'a>(
        &self,
        g: &CsrGraph,
        sorted: &'a SortedAdjacency,
        v: VertexId,
        band: usize,
    ) -> (&'a [VertexId], &'a [Weight]) {
        let lo = (band * self.width).min(g.degree(v));
        let hi = ((band + 1) * self.width).min(g.degree(v));
        (&sorted.neighbors(g, v)[lo..hi], &sorted.neighbor_weights(g, v)[lo..hi])
    }

    /// Device bytes `band` occupies for one vertex: the slice descriptor
    /// plus its in-band adjacency slots.
    #[inline]
    pub fn vertex_band_bytes(&self, g: &CsrGraph, v: VertexId, band: usize) -> u64 {
        BAND_VERTEX_BYTES + self.band_edges(g, v, band) as u64 * BAND_EDGE_BYTES
    }

    /// Device bytes `band` occupies across the whole covered range — the
    /// band-slot size the window planner budgets against. Band 0 is the
    /// maximum: every vertex with any edges contributes there, and
    /// per-vertex contributions only shrink with the band index.
    pub fn band_bytes(&self, g: &CsrGraph, band: usize) -> u64 {
        (self.start..self.end).map(|v| self.vertex_band_bytes(g, v, band)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::gen::urand;

    fn star_plus_edge() -> CsrGraph {
        // Vertex 0 has degree 4; vertices 1..=4 degree 1 or 2.
        GraphBuilder::new(6)
            .add_edge(0, 1, 4.0)
            .add_edge(0, 2, 3.0)
            .add_edge(0, 3, 2.0)
            .add_edge(0, 4, 1.0)
            .add_edge(4, 5, 9.0)
            .build()
    }

    #[test]
    fn band_count_follows_max_degree() {
        let g = star_plus_edge();
        assert_eq!(BandLayout::new(&g, 0, 6, 1).num_bands(), 4);
        assert_eq!(BandLayout::new(&g, 0, 6, 2).num_bands(), 2);
        assert_eq!(BandLayout::new(&g, 0, 6, 4).num_bands(), 1);
        // A sub-range without the hub needs fewer bands; an empty range
        // or an edgeless graph needs none.
        assert_eq!(BandLayout::new(&g, 1, 4, 2).num_bands(), 1);
        assert_eq!(BandLayout::new(&g, 3, 3, 2).num_bands(), 0);
        let empty = CsrGraph::empty(3);
        assert_eq!(BandLayout::new(&empty, 0, 3, 2).num_bands(), 0);
    }

    #[test]
    fn band_slices_tile_the_sorted_list() {
        let g = urand(200, 1600, 9);
        let sorted = SortedAdjacency::build(&g);
        for width in [1, 3, 7] {
            let layout = BandLayout::new(&g, 0, 200, width);
            for v in 0..200u32 {
                let mut ids = Vec::new();
                let mut last_hit = None;
                for b in 0..layout.num_bands() {
                    let (nbrs, ws) = layout.band_slice(&g, &sorted, v, b);
                    assert_eq!(nbrs.len(), ws.len());
                    assert_eq!(nbrs.len(), layout.band_edges(&g, v, b));
                    assert!(nbrs.len() <= width);
                    ids.extend_from_slice(nbrs);
                    if !nbrs.is_empty() {
                        last_hit = Some(b);
                    }
                    if layout.is_last_band(&g, v, b) {
                        assert_eq!(layout.band_edges(&g, v, b + 1), 0);
                    }
                }
                assert_eq!(ids, sorted.neighbors(&g, v), "vertex {v} width {width}");
                if let Some(b) = last_hit {
                    assert!(layout.is_last_band(&g, v, b));
                }
            }
        }
    }

    #[test]
    fn band_zero_bytes_dominate() {
        let g = urand(300, 2400, 4);
        let layout = BandLayout::new(&g, 0, 300, 4);
        let b0 = layout.band_bytes(&g, 0);
        for b in 1..layout.num_bands() {
            assert!(layout.band_bytes(&g, b) <= b0, "band {b}");
        }
        // The byte model: descriptor + 16 B per in-band slot.
        let hand: u64 = (0..300u32).map(|v| 8 + (g.degree(v) as u64).min(4) * 16).sum();
        assert_eq!(b0, hand);
    }
}

//! Edge-weight assignment.
//!
//! The paper (§IV, Datasets): *"In cases where natural edge weights were
//! absent from the datasets (weights not present or assigned 1), we sample
//! weights from a uniform distribution range of three decimal points from
//! [0, 1]."* We reproduce that scheme exactly — uniform on
//! `{0.001, 0.002, …, 1.000}` (the weight function must be strictly
//! positive, so 0.000 is excluded).

use crate::csr::{CsrGraph, VertexId, Weight};
use crate::rng::{splitmix64, Xoshiro256};

/// Number of distinct weight levels (three decimal points).
pub const WEIGHT_LEVELS: u64 = 1000;

/// Sample one weight from the paper's distribution.
#[inline]
pub fn sample_weight(rng: &mut Xoshiro256) -> Weight {
    (rng.below(WEIGHT_LEVELS) + 1) as f64 / WEIGHT_LEVELS as f64
}

/// Deterministic per-edge weight derived from the endpoints and a seed.
///
/// Both orientations of an undirected edge hash identically, which lets a
/// symmetric CSR be reweighted in place without a rebuild.
#[inline]
pub fn edge_hash_weight(u: VertexId, v: VertexId, seed: u64) -> Weight {
    let (a, b) = if u < v { (u, v) } else { (v, u) };
    let mut s = seed ^ ((a as u64) << 32 | b as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let h = splitmix64(&mut s);
    ((h % WEIGHT_LEVELS) + 1) as f64 / WEIGHT_LEVELS as f64
}

/// Replace every weight of `g` with a hash-derived uniform 3-decimal weight.
///
/// Used for inputs (e.g. Matrix Market pattern files) that carry no natural
/// weights, mirroring the paper's preprocessing.
pub fn reweight_uniform(g: &CsrGraph, seed: u64) -> CsrGraph {
    let n = g.num_vertices();
    let offsets = g.offsets().to_vec();
    let adj = g.adjacency().to_vec();
    let mut weights = Vec::with_capacity(adj.len());
    for u in 0..n as VertexId {
        for &v in g.neighbors(u) {
            weights.push(edge_hash_weight(u, v, seed));
        }
    }
    CsrGraph::from_raw(offsets, adj, weights)
}

/// Perturb weights so they become pairwise distinct while preserving the
/// original order: `w' = w + ε·rank_hash`. Useful for experiments that need
/// a unique-weights regime (where all locally-dominant algorithms coincide
/// with global greedy).
pub fn make_weights_distinct(g: &CsrGraph, seed: u64) -> CsrGraph {
    let n = g.num_vertices();
    let offsets = g.offsets().to_vec();
    let adj = g.adjacency().to_vec();
    let mut weights = Vec::with_capacity(adj.len());
    // Tie-break perturbation smaller than the smallest weight gap (1e-3 for
    // the paper's scheme) divided by the number of edges.
    let eps = 1e-4 / (g.num_directed_edges().max(1) as f64);
    for u in 0..n as VertexId {
        for (v, w) in g.edges_of(u) {
            let (a, b) = if u < v { (u, v) } else { (v, u) };
            let mut s = seed ^ ((a as u64) << 32 | b as u64);
            let jitter = (splitmix64(&mut s) >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            weights.push(w + eps * jitter);
        }
    }
    CsrGraph::from_raw(offsets, adj, weights)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    #[test]
    fn sample_weight_in_range_and_quantized() {
        let mut r = Xoshiro256::seed_from_u64(1);
        for _ in 0..10_000 {
            let w = sample_weight(&mut r);
            assert!(w > 0.0 && w <= 1.0);
            let scaled = w * 1000.0;
            assert!((scaled - scaled.round()).abs() < 1e-9, "not 3-decimal: {w}");
        }
    }

    #[test]
    fn edge_hash_weight_symmetric() {
        for (u, v) in [(0, 1), (5, 99), (1000, 3)] {
            assert_eq!(edge_hash_weight(u, v, 7), edge_hash_weight(v, u, 7));
        }
    }

    #[test]
    fn edge_hash_weight_seed_sensitive() {
        assert_ne!(edge_hash_weight(0, 1, 1), edge_hash_weight(0, 1, 2));
    }

    #[test]
    fn reweight_preserves_structure() {
        let g = GraphBuilder::new(4)
            .add_edge(0, 1, 9.0)
            .add_edge(1, 2, 9.0)
            .add_edge(2, 3, 9.0)
            .build();
        let rw = reweight_uniform(&g, 42);
        assert_eq!(rw.validate(), Ok(()));
        assert_eq!(rw.num_edges(), 3);
        assert_eq!(rw.neighbors(1), g.neighbors(1));
        for (_, _, w) in rw.iter_edges() {
            assert!(w > 0.0 && w <= 1.0);
        }
    }

    #[test]
    fn make_distinct_preserves_order_and_distinctness() {
        let g = GraphBuilder::new(6)
            .add_edge(0, 1, 0.5)
            .add_edge(1, 2, 0.5)
            .add_edge(2, 3, 0.5)
            .add_edge(3, 4, 0.9)
            .add_edge(4, 5, 0.1)
            .build();
        let d = make_weights_distinct(&g, 3);
        assert_eq!(d.validate(), Ok(()));
        let mut ws: Vec<f64> = d.iter_edges().map(|(_, _, w)| w).collect();
        let len = ws.len();
        ws.sort_by(f64::total_cmp);
        ws.dedup();
        assert_eq!(ws.len(), len, "weights not distinct");
        // Order preserved: 0.9-edge still heaviest, 0.1-edge still lightest.
        assert!(d.edge_weight(3, 4).unwrap() > d.edge_weight(0, 1).unwrap());
        assert!(d.edge_weight(4, 5).unwrap() < d.edge_weight(2, 3).unwrap());
    }
}

//! Preference-sorted adjacency index.
//!
//! [`SortedAdjacency`] stores a permuted copy of a [`CsrGraph`]'s
//! adjacency and weight arrays in which every vertex's neighbor list is
//! ordered by the canonical matching preference — weight descending, then
//! neighbor id ascending. Under that total order the *first available*
//! neighbor in a scan is exactly the argmax a full scan would select, so
//! pointing kernels can stop at the first hit instead of sweeping the
//! whole list. The index shares the base graph's offset array (same list
//! extents, different element order) and is built once per run.

use crate::csr::{CsrGraph, VertexId, Weight};

/// Per-vertex adjacency permuted into (weight desc, id asc) order.
///
/// Accessors take the base graph the index was built from; list extents
/// come from its offset array. Debug builds assert the vertex count still
/// matches.
#[derive(Clone, Debug, PartialEq)]
pub struct SortedAdjacency {
    num_vertices: usize,
    adj: Vec<VertexId>,
    weights: Vec<Weight>,
}

impl SortedAdjacency {
    /// Build the index: one stable sort per vertex, `O(Σ d_v log d_v)`.
    pub fn build(g: &CsrGraph) -> Self {
        let n = g.num_vertices();
        let mut adj = g.adjacency().to_vec();
        let mut weights = g.weight_array().to_vec();
        let offsets = g.offsets();
        let mut order: Vec<u32> = Vec::new();
        for v in 0..n {
            let lo = offsets[v] as usize;
            let hi = offsets[v + 1] as usize;
            let deg = hi - lo;
            if deg < 2 {
                continue;
            }
            order.clear();
            order.extend(0..deg as u32);
            let (ids, ws) = (&g.adjacency()[lo..hi], &g.weight_array()[lo..hi]);
            order.sort_unstable_by(|&a, &b| {
                let (ia, ib) = (a as usize, b as usize);
                ws[ib]
                    .partial_cmp(&ws[ia])
                    .expect("edge weights must be comparable")
                    .then_with(|| ids[ia].cmp(&ids[ib]))
            });
            for (slot, &src) in order.iter().enumerate() {
                adj[lo + slot] = ids[src as usize];
                weights[lo + slot] = ws[src as usize];
            }
        }
        SortedAdjacency { num_vertices: n, adj, weights }
    }

    /// Neighbor ids of `v` in preference order.
    #[inline]
    pub fn neighbors<'a>(&'a self, g: &CsrGraph, v: VertexId) -> &'a [VertexId] {
        debug_assert_eq!(self.num_vertices, g.num_vertices(), "index built from another graph");
        let lo = g.offsets()[v as usize] as usize;
        let hi = g.offsets()[v as usize + 1] as usize;
        &self.adj[lo..hi]
    }

    /// Weights parallel to [`SortedAdjacency::neighbors`].
    #[inline]
    pub fn neighbor_weights<'a>(&'a self, g: &CsrGraph, v: VertexId) -> &'a [Weight] {
        debug_assert_eq!(self.num_vertices, g.num_vertices(), "index built from another graph");
        let lo = g.offsets()[v as usize] as usize;
        let hi = g.offsets()[v as usize + 1] as usize;
        &self.weights[lo..hi]
    }

    /// First *available* neighbor of `v` — the canonical argmax, since
    /// the list is in preference order — as `(neighbor, position)`, using
    /// the SoA availability lane (`avail[u] != 0` ⇔ `u` unmatched).
    /// Returns `None` when every neighbor is matched.
    #[inline]
    pub fn first_available(
        &self,
        g: &CsrGraph,
        v: VertexId,
        avail: &[u8],
    ) -> Option<(VertexId, usize)> {
        let nbrs = self.neighbors(g, v);
        crate::soa::first_available(nbrs, avail).map(|pos| (nbrs[pos], pos))
    }

    /// The full permuted id lane, indexed by the base graph's offsets —
    /// for kernels that slice a contiguous vertex range in one go.
    #[inline]
    pub fn adjacency(&self) -> &[VertexId] {
        &self.adj
    }

    /// The full permuted weight lane, parallel to
    /// [`SortedAdjacency::adjacency`].
    #[inline]
    pub fn weight_array(&self) -> &[Weight] {
        &self.weights
    }

    /// Bytes of the permuted copies (adjacency ids + weights) — what a
    /// device would additionally hold resident.
    pub fn index_bytes(&self) -> u64 {
        (self.adj.len() * std::mem::size_of::<VertexId>()
            + self.weights.len() * std::mem::size_of::<Weight>()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::gen::{rmat, urand, RmatParams};

    #[test]
    fn orders_by_weight_desc_then_id_asc() {
        let g = GraphBuilder::new(5)
            .add_edge(0, 1, 2.0)
            .add_edge(0, 2, 5.0)
            .add_edge(0, 3, 5.0)
            .add_edge(0, 4, 1.0)
            .build();
        let idx = SortedAdjacency::build(&g);
        assert_eq!(idx.neighbors(&g, 0), &[2, 3, 1, 4]);
        assert_eq!(idx.neighbor_weights(&g, 0), &[5.0, 5.0, 2.0, 1.0]);
        // Degree-1 lists are untouched but still addressable.
        assert_eq!(idx.neighbors(&g, 4), &[0]);
    }

    #[test]
    fn is_a_permutation_of_the_base_adjacency() {
        let g = rmat(512, 4000, RmatParams::GAP_KRON, 7);
        let idx = SortedAdjacency::build(&g);
        for v in 0..g.num_vertices() as VertexId {
            let mut base: Vec<(VertexId, u64)> = g
                .neighbors(v)
                .iter()
                .zip(g.neighbor_weights(v))
                .map(|(&id, &w)| (id, w.to_bits()))
                .collect();
            let mut sorted: Vec<(VertexId, u64)> = idx
                .neighbors(&g, v)
                .iter()
                .zip(idx.neighbor_weights(&g, v))
                .map(|(&id, &w)| (id, w.to_bits()))
                .collect();
            base.sort_unstable();
            sorted.sort_unstable();
            assert_eq!(base, sorted, "vertex {v}");
        }
    }

    #[test]
    fn first_entry_is_the_prefer_argmax() {
        // The invariant the early-exit kernel relies on: head of the list
        // == heaviest neighbor, smallest id on ties.
        let g = urand(300, 2400, 3);
        let idx = SortedAdjacency::build(&g);
        for v in 0..g.num_vertices() as VertexId {
            let ws = idx.neighbor_weights(&g, v);
            let ids = idx.neighbors(&g, v);
            for i in 1..ws.len() {
                assert!(
                    ws[i - 1] > ws[i] || (ws[i - 1] == ws[i] && ids[i - 1] < ids[i]),
                    "vertex {v}: slot {i} out of preference order"
                );
            }
        }
    }

    #[test]
    fn empty_and_isolated_graphs() {
        let g = CsrGraph::empty(4);
        let idx = SortedAdjacency::build(&g);
        assert_eq!(idx.neighbors(&g, 2), &[] as &[VertexId]);
        assert_eq!(idx.index_bytes(), 0);
    }
}

//! Compressed Sparse Row (CSR) storage for undirected weighted graphs.
//!
//! Following the paper's §III-A we store the nonzero structure in separate
//! vertex (offset), edge (adjacency) and value (weight) arrays, with 64-bit
//! edge offsets so graphs with more than 2^32 directed edges are
//! representable. Each undirected edge `{u, v}` is stored twice (once per
//! endpoint) and adjacency lists are sorted by neighbor id.

/// Vertex identifier. 32 bits covers the simulator-scale graphs (≤ 4.29 B
/// vertices) while halving adjacency memory versus `u64`.
pub type VertexId = u32;

/// Edge weight. The paper assigns positive reals; we use `f64` throughout.
pub type Weight = f64;

/// An undirected weighted graph in CSR form.
///
/// Invariants (enforced by [`crate::builder::GraphBuilder`] and checked by
/// [`CsrGraph::validate`]):
/// * `offsets.len() == n + 1`, `offsets[0] == 0`, offsets non-decreasing;
/// * `adj.len() == weights.len() == offsets[n]`;
/// * no self loops;
/// * symmetric: `v ∈ adj(u)` iff `u ∈ adj(v)`, with equal weights;
/// * each adjacency list is strictly sorted by neighbor id (no duplicate
///   edges).
#[derive(Clone, Debug, PartialEq)]
pub struct CsrGraph {
    offsets: Vec<u64>,
    adj: Vec<VertexId>,
    weights: Vec<Weight>,
}

impl CsrGraph {
    /// Assemble a graph from raw CSR arrays.
    ///
    /// # Panics
    /// Panics (in debug builds, via [`CsrGraph::validate`]) if the arrays
    /// violate the structural invariants.
    pub fn from_raw(offsets: Vec<u64>, adj: Vec<VertexId>, weights: Vec<Weight>) -> Self {
        let g = CsrGraph { offsets, adj, weights };
        debug_assert_eq!(g.validate(), Ok(()));
        g
    }

    /// The empty graph on `n` vertices.
    pub fn empty(n: usize) -> Self {
        CsrGraph { offsets: vec![0; n + 1], adj: Vec::new(), weights: Vec::new() }
    }

    /// Number of vertices `n = |V|`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges `m = |E|`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.adj.len() / 2
    }

    /// Number of directed (stored) edges, `2m`.
    #[inline]
    pub fn num_directed_edges(&self) -> usize {
        self.adj.len()
    }

    /// Degree of vertex `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize
    }

    /// Neighbor ids of `v`, sorted ascending.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.adj[lo..hi]
    }

    /// Weights parallel to [`CsrGraph::neighbors`].
    #[inline]
    pub fn neighbor_weights(&self, v: VertexId) -> &[Weight] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.weights[lo..hi]
    }

    /// Iterate `(neighbor, weight)` pairs of `v`.
    #[inline]
    pub fn edges_of(&self, v: VertexId) -> impl Iterator<Item = (VertexId, Weight)> + '_ {
        self.neighbors(v).iter().copied().zip(self.neighbor_weights(v).iter().copied())
    }

    /// The CSR offset array (length `n + 1`).
    #[inline]
    pub fn offsets(&self) -> &[u64] {
        &self.offsets
    }

    /// The full adjacency array (length `2m`).
    #[inline]
    pub fn adjacency(&self) -> &[VertexId] {
        &self.adj
    }

    /// The full weight array (length `2m`).
    #[inline]
    pub fn weight_array(&self) -> &[Weight] {
        &self.weights
    }

    /// Weight of edge `{u, v}` if present (binary search in `u`'s sorted
    /// adjacency list).
    pub fn edge_weight(&self, u: VertexId, v: VertexId) -> Option<Weight> {
        let nbrs = self.neighbors(u);
        nbrs.binary_search(&v).ok().map(|i| self.neighbor_weights(u)[i])
    }

    /// Whether edge `{u, v}` exists.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.edge_weight(u, v).is_some()
    }

    /// Iterate each undirected edge once as `(u, v, w)` with `u < v`.
    pub fn iter_edges(&self) -> impl Iterator<Item = (VertexId, VertexId, Weight)> + '_ {
        (0..self.num_vertices() as VertexId).flat_map(move |u| {
            self.edges_of(u).filter(move |&(v, _)| u < v).map(move |(v, w)| (u, v, w))
        })
    }

    /// Sum of all edge weights, `w(E)`.
    pub fn total_weight(&self) -> f64 {
        // Each undirected edge is stored twice.
        self.weights.iter().sum::<f64>() / 2.0
    }

    /// Maximum degree `d_max`.
    pub fn max_degree(&self) -> usize {
        (0..self.num_vertices() as VertexId).map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Average degree `d_avg = 2m / n`.
    pub fn avg_degree(&self) -> f64 {
        if self.num_vertices() == 0 {
            0.0
        } else {
            self.num_directed_edges() as f64 / self.num_vertices() as f64
        }
    }

    /// Bytes required to store this graph's CSR arrays, matching the
    /// device-memory accounting of the paper (§III-A: "edge information is
    /// stored as 64-bit integers"): 8 B per offset, 8 B per stored edge id
    /// and 8 B per stored weight.
    pub fn csr_bytes(&self) -> u64 {
        (self.offsets.len() as u64) * 8 + (self.adj.len() as u64) * (8 + 8)
    }

    /// Bytes of the edge (adjacency + weight) arrays covering the directed
    /// edge range `[lo, hi)` — used for batch transfer accounting.
    pub fn edge_range_bytes(lo: u64, hi: u64) -> u64 {
        (hi - lo) * (8 + 8)
    }

    /// Check all structural invariants; returns a description of the first
    /// violation.
    pub fn validate(&self) -> Result<(), String> {
        let n = self.num_vertices();
        if self.offsets[0] != 0 {
            return Err("offsets[0] != 0".into());
        }
        if self.adj.len() != self.weights.len() {
            return Err("adj/weights length mismatch".into());
        }
        if *self.offsets.last().unwrap() != self.adj.len() as u64 {
            return Err("offsets[n] != adj.len()".into());
        }
        for v in 0..n {
            if self.offsets[v] > self.offsets[v + 1] {
                return Err(format!("offsets decrease at vertex {v}"));
            }
            let nbrs = self.neighbors(v as VertexId);
            for win in nbrs.windows(2) {
                if win[0] >= win[1] {
                    return Err(format!("adjacency of {v} not strictly sorted"));
                }
            }
            for (u, w) in self.edges_of(v as VertexId) {
                if u as usize >= n {
                    return Err(format!("vertex {v} has out-of-range neighbor {u}"));
                }
                if u as usize == v {
                    return Err(format!("self loop at {v}"));
                }
                if !w.is_finite() || w <= 0.0 {
                    return Err(format!("non-positive weight {w} on {{{v},{u}}}"));
                }
                match self.edge_weight(u, v as VertexId) {
                    None => return Err(format!("edge {{{v},{u}}} not symmetric")),
                    Some(w2) if w2 != w => {
                        return Err(format!("asymmetric weight on {{{v},{u}}}: {w} vs {w2}"))
                    }
                    _ => {}
                }
            }
        }
        Ok(())
    }

    /// Extract the subgraph induced on the contiguous vertex range
    /// `[lo, hi)`, relabeling vertices to `0..hi-lo`. Edges with an endpoint
    /// outside the range are dropped. Used by tests and the cuGraph-style
    /// baseline's per-process filtering.
    pub fn induced_range(&self, lo: VertexId, hi: VertexId) -> CsrGraph {
        let n = (hi - lo) as usize;
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u64);
        let mut adj = Vec::new();
        let mut weights = Vec::new();
        for v in lo..hi {
            for (u, w) in self.edges_of(v) {
                if u >= lo && u < hi {
                    adj.push(u - lo);
                    weights.push(w);
                }
            }
            offsets.push(adj.len() as u64);
        }
        CsrGraph { offsets, adj, weights }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn triangle() -> CsrGraph {
        GraphBuilder::new(3).add_edge(0, 1, 1.0).add_edge(1, 2, 2.0).add_edge(0, 2, 3.0).build()
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::empty(5);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.avg_degree(), 0.0);
        assert_eq!(g.validate(), Ok(()));
    }

    #[test]
    fn triangle_basic_accessors() {
        let g = triangle();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.num_directed_edges(), 6);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbor_weights(0), &[1.0, 3.0]);
        assert_eq!(g.edge_weight(1, 2), Some(2.0));
        assert_eq!(g.edge_weight(2, 1), Some(2.0));
        assert_eq!(g.edge_weight(0, 0), None);
        assert!(g.has_edge(0, 2));
        assert_eq!(g.total_weight(), 6.0);
        assert_eq!(g.max_degree(), 2);
        assert!((g.avg_degree() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn iter_edges_yields_each_once() {
        let g = triangle();
        let edges: Vec<_> = g.iter_edges().collect();
        assert_eq!(edges, vec![(0, 1, 1.0), (0, 2, 3.0), (1, 2, 2.0)]);
    }

    #[test]
    fn csr_bytes_accounting() {
        let g = triangle();
        // 4 offsets * 8 + 6 stored edges * 16.
        assert_eq!(g.csr_bytes(), 4 * 8 + 6 * 16);
        assert_eq!(CsrGraph::edge_range_bytes(10, 20), 160);
    }

    #[test]
    fn induced_range_relabels() {
        let g = GraphBuilder::new(5)
            .add_edge(0, 1, 1.0)
            .add_edge(1, 2, 2.0)
            .add_edge(2, 3, 3.0)
            .add_edge(3, 4, 4.0)
            .add_edge(1, 3, 5.0)
            .build();
        let sub = g.induced_range(1, 4); // vertices 1,2,3 -> 0,1,2
        assert_eq!(sub.num_vertices(), 3);
        assert_eq!(sub.num_edges(), 3); // (1,2),(2,3),(1,3)
        assert_eq!(sub.edge_weight(0, 1), Some(2.0));
        assert_eq!(sub.edge_weight(1, 2), Some(3.0));
        assert_eq!(sub.edge_weight(0, 2), Some(5.0));
        assert_eq!(sub.validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_asymmetry() {
        let g = CsrGraph { offsets: vec![0, 1, 1], adj: vec![1], weights: vec![1.0] };
        assert!(g.validate().is_err());
    }

    #[test]
    fn validate_rejects_self_loop() {
        let g = CsrGraph { offsets: vec![0, 1], adj: vec![0], weights: vec![1.0] };
        assert!(g.validate().is_err());
    }

    #[test]
    fn validate_rejects_nonpositive_weight() {
        let g = CsrGraph { offsets: vec![0, 1, 2], adj: vec![1, 0], weights: vec![0.0, 0.0] };
        assert!(g.validate().is_err());
    }
}

//! # ldgm-graph — weighted graph substrate
//!
//! Storage, construction, generation and I/O of the undirected weighted
//! graphs consumed by the `ldgm` matching crates:
//!
//! * [`csr::CsrGraph`] — CSR storage with 64-bit edge offsets (the paper's
//!   §III-A representation);
//! * [`builder::GraphBuilder`] — edge-list assembly with dedup/symmetrize;
//! * [`gen`] — synthetic generators for every dataset family of the
//!   paper's Table I (R-MAT/Kron, uniform random, k-mer chains, web crawl,
//!   Mycielskian, stencil lattice, geometric, dense similarity, bipartite);
//! * [`soa`] — SoA scan primitives (availability lane, packed preference
//!   keys) for the host-side hot kernels;
//! * [`sorted`] — preference-sorted adjacency index for early-exit scans;
//! * [`stream`] — fixed-width rank-band substream layout over the sorted
//!   index, the geometry of the out-of-core streaming engine;
//! * [`io`] — Matrix Market and binary CSR cache formats;
//! * [`weights`] — the paper's uniform 3-decimal weight scheme;
//! * [`stats`] — Table-I-style property summaries;
//! * [`rng`] — deterministic Xoshiro256++ PRNG.

pub mod builder;
pub mod csr;
pub mod gen;
pub mod io;
pub mod rng;
pub mod soa;
pub mod sorted;
pub mod stats;
pub mod stream;
pub mod weights;

pub use builder::GraphBuilder;
pub use csr::{CsrGraph, VertexId, Weight};
pub use rng::Xoshiro256;
pub use sorted::SortedAdjacency;
pub use stream::BandLayout;

//! Edge-list to CSR construction.
//!
//! The builder accepts an arbitrary multiset of weighted edge tuples,
//! removes self loops, deduplicates parallel edges (keeping the heaviest,
//! so generators may emit duplicates freely), symmetrizes, and produces a
//! [`CsrGraph`] with sorted adjacency lists using a two-pass counting-sort
//! construction — `O(n + m)` after the dedup sort.

use crate::csr::{CsrGraph, VertexId, Weight};

/// Accumulates edges and assembles a [`CsrGraph`].
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(VertexId, VertexId, Weight)>,
}

impl GraphBuilder {
    /// A builder for a graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        assert!(n <= u32::MAX as usize, "vertex count exceeds u32 id space");
        GraphBuilder { n, edges: Vec::new() }
    }

    /// Pre-reserve capacity for `m` edges.
    pub fn with_capacity(n: usize, m: usize) -> Self {
        let mut b = Self::new(n);
        b.edges.reserve(m);
        b
    }

    /// Number of (raw, pre-dedup) edges added so far.
    pub fn raw_edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Add an undirected edge `{u, v}` with weight `w`. Self loops and
    /// non-positive weights are silently dropped (the paper's weight
    /// function is strictly positive); duplicates are resolved at build
    /// time keeping the maximum weight.
    pub fn add_edge(mut self, u: VertexId, v: VertexId, w: Weight) -> Self {
        self.push_edge(u, v, w);
        self
    }

    /// In-place variant of [`GraphBuilder::add_edge`] for hot loops.
    #[inline]
    pub fn push_edge(&mut self, u: VertexId, v: VertexId, w: Weight) {
        debug_assert!((u as usize) < self.n && (v as usize) < self.n, "endpoint out of range");
        if u == v || !w.is_finite() || w <= 0.0 {
            return;
        }
        let (a, b) = if u < v { (u, v) } else { (v, u) };
        self.edges.push((a, b, w));
    }

    /// Build the CSR graph: dedup, symmetrize, count, place.
    pub fn build(self) -> CsrGraph {
        let GraphBuilder { n, mut edges } = self;
        // Sort canonical (u < v) tuples; ties resolved to max weight.
        edges.sort_unstable_by(|a, b| (a.0, a.1).cmp(&(b.0, b.1)).then(b.2.total_cmp(&a.2)));
        edges.dedup_by_key(|e| (e.0, e.1));

        let mut degree = vec![0u64; n + 1];
        for &(u, v, _) in &edges {
            degree[u as usize + 1] += 1;
            degree[v as usize + 1] += 1;
        }
        // Prefix sums -> offsets.
        for i in 1..=n {
            degree[i] += degree[i - 1];
        }
        let offsets = degree;
        let total = *offsets.last().unwrap() as usize;
        let mut cursor: Vec<u64> = offsets[..n].to_vec();
        let mut adj = vec![0 as VertexId; total];
        let mut weights = vec![0.0 as Weight; total];
        // Edges are sorted by (u, v); placing u->v in ascending edge order
        // leaves each u-list sorted. v->u entries are also placed in
        // ascending-u order within each v because the outer scan visits u
        // ascending.
        for &(u, v, w) in &edges {
            let cu = cursor[u as usize] as usize;
            adj[cu] = v;
            weights[cu] = w;
            cursor[u as usize] += 1;
            let cv = cursor[v as usize] as usize;
            adj[cv] = u;
            weights[cv] = w;
            cursor[v as usize] += 1;
        }
        // The per-vertex lists interleave forward (v > u) and backward
        // (v < u) entries, so a final per-vertex sort is required. Lists
        // are short on average; sort pairs via index permutation.
        let g_unsorted = (offsets, adj, weights);
        let (offsets, mut adj, mut weights) = g_unsorted;
        let mut scratch: Vec<(VertexId, Weight)> = Vec::new();
        for v in 0..n {
            let lo = offsets[v] as usize;
            let hi = offsets[v + 1] as usize;
            if hi - lo <= 1 {
                continue;
            }
            scratch.clear();
            scratch.extend(adj[lo..hi].iter().copied().zip(weights[lo..hi].iter().copied()));
            scratch.sort_unstable_by_key(|&(nb, _)| nb);
            for (i, &(nb, w)) in scratch.iter().enumerate() {
                adj[lo + i] = nb;
                weights[lo + i] = w;
            }
        }
        CsrGraph::from_raw(offsets, adj, weights)
    }

    /// Build from a pre-collected edge list.
    pub fn from_edges(
        n: usize,
        edges: impl IntoIterator<Item = (VertexId, VertexId, Weight)>,
    ) -> CsrGraph {
        let mut b = GraphBuilder::new(n);
        for (u, v, w) in edges {
            b.push_edge(u, v, w);
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_keeps_max_weight() {
        let g = GraphBuilder::new(2)
            .add_edge(0, 1, 1.0)
            .add_edge(1, 0, 5.0)
            .add_edge(0, 1, 3.0)
            .build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edge_weight(0, 1), Some(5.0));
    }

    #[test]
    fn drops_self_loops_and_nonpositive() {
        let g = GraphBuilder::new(3)
            .add_edge(0, 0, 1.0)
            .add_edge(0, 1, 0.0)
            .add_edge(0, 1, -2.0)
            .add_edge(1, 2, 0.5)
            .build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.edge_weight(1, 2), Some(0.5));
    }

    #[test]
    fn adjacency_sorted_and_symmetric() {
        let g = GraphBuilder::from_edges(
            6,
            [(5, 0, 1.0), (3, 1, 2.0), (0, 3, 3.0), (4, 0, 4.0), (2, 0, 5.0), (1, 0, 6.0)],
        );
        assert_eq!(g.neighbors(0), &[1, 2, 3, 4, 5]);
        assert_eq!(g.validate(), Ok(()));
    }

    #[test]
    fn isolated_vertices_allowed() {
        let g = GraphBuilder::new(10).add_edge(0, 9, 1.0).build();
        assert_eq!(g.num_vertices(), 10);
        assert_eq!(g.degree(5), 0);
        assert_eq!(g.validate(), Ok(()));
    }

    #[test]
    fn large_random_build_validates() {
        use crate::rng::Xoshiro256;
        let mut r = Xoshiro256::seed_from_u64(1);
        let n = 500;
        let mut b = GraphBuilder::new(n);
        for _ in 0..5000 {
            let u = r.below(n as u64) as VertexId;
            let v = r.below(n as u64) as VertexId;
            b.push_edge(u, v, r.next_f64() + 1e-9);
        }
        let g = b.build();
        assert_eq!(g.validate(), Ok(()));
    }
}

//! Property tests of the SoA scan layer: the packed-key argmax and the
//! sorted-index first-available scan must agree with the canonical
//! preference order (weight descending, id ascending on ties) on
//! arbitrary graphs and arbitrary availability patterns — the invariant
//! every pointing kernel's bit-identical-matching guarantee rests on.

use proptest::prelude::*;

use ldgm_graph::soa::{first_available, key_id, key_weight, scan_best, NO_KEY};
use ldgm_graph::{CsrGraph, GraphBuilder, SortedAdjacency, VertexId, Weight};

/// Strategy: an arbitrary undirected weighted graph (duplicates and
/// self-loops dropped by the builder). Weights come from a small grid so
/// ties are common and the id tie-break is genuinely exercised.
fn arb_graph(max_n: usize, max_m: usize) -> impl Strategy<Value = CsrGraph> {
    (2..max_n).prop_flat_map(move |n| {
        proptest::collection::vec((0..n as u32, 0..n as u32, 1u32..=8), 0..max_m).prop_map(
            move |edges| {
                let mut b = GraphBuilder::new(n);
                for (u, v, w) in edges {
                    b.push_edge(u, v, w as f64 / 8.0);
                }
                b.build()
            },
        )
    })
}

/// The reference selection: explicit weight-then-id compare.
fn naive_best(ids: &[VertexId], ws: &[Weight], avail: &[u8]) -> Option<(VertexId, Weight)> {
    let mut best: Option<(VertexId, Weight)> = None;
    for (&v, &w) in ids.iter().zip(ws) {
        if avail[v as usize] == 0 {
            continue;
        }
        let better = match best {
            None => true,
            Some((bv, bw)) => w > bw || (w == bw && v < bv),
        };
        if better {
            best = Some((v, w));
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn packed_key_scan_selects_the_canonical_argmax(
        g in arb_graph(48, 160),
        avail_bits in proptest::collection::vec(0u8..2, 48..49),
    ) {
        let avail: Vec<u8> = (0..g.num_vertices()).map(|v| avail_bits[v % avail_bits.len()]).collect();
        for v in 0..g.num_vertices() as VertexId {
            let ids = g.neighbors(v);
            let ws = g.neighbor_weights(v);
            let k = scan_best(ids, ws, &avail);
            match naive_best(ids, ws, &avail) {
                None => prop_assert_eq!(k, NO_KEY),
                Some((bv, bw)) => {
                    prop_assert_eq!(key_id(k), bv);
                    prop_assert_eq!(key_weight(k).to_bits(), bw.to_bits());
                }
            }
        }
    }

    #[test]
    fn sorted_scan_visits_neighbors_in_prefer_order_and_agrees(
        g in arb_graph(48, 160),
        avail_bits in proptest::collection::vec(0u8..2, 48..49),
    ) {
        let idx = SortedAdjacency::build(&g);
        let avail: Vec<u8> = (0..g.num_vertices()).map(|v| avail_bits[v % avail_bits.len()]).collect();
        for v in 0..g.num_vertices() as VertexId {
            // The visit order of a sorted scan is the canonical prefer
            // order: strictly decreasing (weight, -id) preference.
            let ids = idx.neighbors(&g, v);
            let ws = idx.neighbor_weights(&g, v);
            for i in 1..ids.len() {
                prop_assert!(
                    ws[i - 1] > ws[i] || (ws[i - 1] == ws[i] && ids[i - 1] < ids[i]),
                    "vertex {} slot {} out of preference order", v, i
                );
            }
            // And its first available hit is exactly the flat-scan argmax.
            let hit = idx.first_available(&g, v, &avail);
            let k = scan_best(g.neighbors(v), g.neighbor_weights(v), &avail);
            match hit {
                None => prop_assert_eq!(k, NO_KEY),
                Some((u, pos)) => {
                    prop_assert_eq!(key_id(k), u);
                    prop_assert!(first_available(ids, &avail) == Some(pos));
                }
            }
        }
    }
}

//! Registry-wide guarantee of the self-tuning planner: on every one of
//! the fourteen Table-I stand-ins, on both flat platform presets used by
//! the studies, the locked config is never slower (simulated time) than
//! the defaults it replaces, re-tuning is deterministic, and the tuned
//! matching is bit-identical to the default one.
//!
//! The search itself is exercised with a deliberately small
//! [`TuneOptions`] grid — the never-slower property holds for *any* grid
//! by construction (the base config is always in the final full-run
//! race), so a cheap grid proves the invariant without paying for the
//! full default sweep on every large stand-in.

use ldgm_bench::datasets::{registry, scaled_platform, Group};
use ldgm_core::ld_gpu::{auto_tune_with, LdGpu, LdGpuConfig, TuneOptions};
use ldgm_gpusim::Platform;

fn cheap_opts() -> TuneOptions {
    TuneOptions {
        probe_iterations: 1,
        batch_counts: vec![None],
        stream_windows: vec![None],
        shortlist: 1,
    }
}

#[test]
fn locked_config_never_slower_across_registry_and_platforms() {
    for platform in [scaled_platform(Platform::dgx_a100()), scaled_platform(Platform::dgx2())] {
        for d in registry() {
            let g = d.build();
            let base = LdGpuConfig::new(platform.clone()).devices(2);
            let report = auto_tune_with(&g, &base, &cheap_opts())
                .unwrap_or_else(|e| panic!("{} on {}: {e}", d.name, platform.name));
            assert!(
                report.sim_time <= report.base_sim_time,
                "{} on {}: locked {} > base {}",
                d.name,
                platform.name,
                report.sim_time,
                report.base_sim_time
            );
            assert!(report.candidates > 0, "{}: empty grid", d.name);
        }
    }
}

#[test]
fn retuning_locks_the_same_config_and_matching_bits() {
    // Determinism + bit-identity spot-check on one SMALL stand-in per
    // group boundary; the sweep above already covers the cost invariant.
    let d = registry().into_iter().find(|d| matches!(d.group, Group::Small)).unwrap();
    let g = d.build();
    let base = LdGpuConfig::new(scaled_platform(Platform::dgx_a100())).devices(2);
    let a = auto_tune_with(&g, &base, &cheap_opts()).unwrap();
    let b = auto_tune_with(&g, &base, &cheap_opts()).unwrap();
    assert_eq!(a.knobs(), b.knobs());
    assert_eq!(a.sim_time, b.sim_time);

    let tuned = LdGpu::new(a.config.clone()).run(&g);
    let default = LdGpu::new(base).run(&g);
    assert_eq!(tuned.matching.mate_array(), default.matching.mate_array());
}

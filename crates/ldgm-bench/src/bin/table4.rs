//! Regenerate the paper's table4. See `ldgm_bench::exp::table4`.

fn main() {
    let mut out = std::io::stdout().lock();
    ldgm_bench::exp::table4::run(&mut out).expect("report write failed");
}

//! Regenerate the out-of-core streaming extension study and record its
//! measurements as `BENCH_oocore.json` in the working directory. See
//! `ldgm_bench::exp::ext_oocore`.
//!
//! Usage: `ext_oocore [--out PATH] [DATASET...]`
//!
//! With no datasets the full fourteen-graph registry is swept; naming a
//! subset (e.g. the CI smoke run) restricts the sweep. The written JSON
//! is parsed back and cross-checked against the in-memory records before
//! the binary reports success.

use ldgm_bench::datasets::{by_name, registry};
use ldgm_bench::exp::ext_oocore::{ooc_records_to_json, run_on};
use ldgm_bench::runner::{write_json_doc, ExtCli};
use ldgm_gpusim::json::Json;

fn main() {
    let cli = ExtCli::parse_env("BENCH_oocore.json");
    let datasets = if cli.names.is_empty() {
        registry()
    } else {
        cli.names.iter().map(|n| by_name(n).expect("known dataset")).collect()
    };

    let mut out = std::io::stdout().lock();
    let records = run_on(&datasets, &mut out).expect("report write failed");

    // Round-trip check: what landed on disk parses back to the same rows.
    let parsed = write_json_doc(&cli.out_path, &ooc_records_to_json(&records));
    let rows = parsed.as_array().expect("array document");
    assert_eq!(rows.len(), records.len(), "row count round-trips");
    for (row, rec) in rows.iter().zip(&records) {
        assert_eq!(row.get("dataset").and_then(Json::as_str), Some(rec.dataset.as_str()));
        assert_eq!(
            row.get("whole_graph_refused").and_then(Json::as_bool),
            Some(rec.whole_graph_refused)
        );
        assert_eq!(row.get("identical").and_then(Json::as_bool), Some(rec.identical));
    }
    let refused = records.iter().filter(|r| r.whole_graph_refused).count();
    let well_hidden =
        records.iter().filter(|r| r.best().is_some_and(|p| p.hidden_frac() >= 0.5)).count();
    println!(
        "wrote {} ({} records, {} whole-graph refusals, {} with >=50% prefetch hidden)",
        cli.out_path,
        records.len(),
        refused,
        well_hidden
    );
}

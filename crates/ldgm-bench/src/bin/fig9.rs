//! Regenerate the paper's fig9. See `ldgm_bench::exp::fig9`.

fn main() {
    let mut out = std::io::stdout().lock();
    ldgm_bench::exp::fig9::run(&mut out).expect("report write failed");
}

//! Regenerate the paper's table3. See `ldgm_bench::exp::table3`.

fn main() {
    let mut out = std::io::stdout().lock();
    ldgm_bench::exp::table3::run(&mut out).expect("report write failed");
}

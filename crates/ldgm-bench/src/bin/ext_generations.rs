//! Regenerate the GPU-generation outlook extension. See
//! `ldgm_bench::exp::ext_generations`.

fn main() {
    let mut out = std::io::stdout().lock();
    ldgm_bench::exp::ext_generations::run(&mut out).expect("report write failed");
}

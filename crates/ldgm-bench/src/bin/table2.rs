//! Regenerate the paper's table2. See `ldgm_bench::exp::table2`.

fn main() {
    let mut out = std::io::stdout().lock();
    ldgm_bench::exp::table2::run(&mut out).expect("report write failed");
}

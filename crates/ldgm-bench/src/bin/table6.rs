//! Regenerate the paper's table6. See `ldgm_bench::exp::table6`.

fn main() {
    let mut out = std::io::stdout().lock();
    ldgm_bench::exp::table6::run(&mut out).expect("report write failed");
}

//! Regenerate the batch-dynamic maintenance extension study and record
//! its measurements as `BENCH_dynamic.json` in the working directory.
//! See `ldgm_bench::exp::ext_dynamic`.

use ldgm_bench::runner::{records_to_json, write_json_doc, ExtCli};

fn main() {
    let cli = ExtCli::parse_env("BENCH_dynamic.json");
    assert!(cli.names.is_empty(), "ext_dynamic sweeps a fixed dataset set");
    let mut out = std::io::stdout().lock();
    let records = ldgm_bench::exp::ext_dynamic::run_records(&mut out).expect("report write failed");
    let parsed = write_json_doc(&cli.out_path, &records_to_json(&records));
    assert_eq!(parsed.as_array().map(<[_]>::len), Some(records.len()), "row count round-trips");
    println!("wrote {} ({} records)", cli.out_path, records.len());
}

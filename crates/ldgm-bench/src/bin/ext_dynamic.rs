//! Regenerate the batch-dynamic maintenance extension study and record
//! its measurements as `BENCH_dynamic.json` in the working directory.
//! See `ldgm_bench::exp::ext_dynamic`.

use ldgm_bench::runner::records_to_json;

fn main() {
    let mut out = std::io::stdout().lock();
    let records = ldgm_bench::exp::ext_dynamic::run_records(&mut out).expect("report write failed");
    let doc = records_to_json(&records).to_string_pretty();
    std::fs::write("BENCH_dynamic.json", doc + "\n").expect("BENCH_dynamic.json write failed");
    println!("wrote BENCH_dynamic.json ({} records)", records.len());
}

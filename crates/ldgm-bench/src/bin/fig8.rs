//! Regenerate the paper's fig8. See `ldgm_bench::exp::fig8`.

fn main() {
    let mut out = std::io::stdout().lock();
    ldgm_bench::exp::fig8::run(&mut out).expect("report write failed");
}

//! Regenerate the paper's fig10. See `ldgm_bench::exp::fig10`.

fn main() {
    let mut out = std::io::stdout().lock();
    ldgm_bench::exp::fig10::run(&mut out).expect("report write failed");
}

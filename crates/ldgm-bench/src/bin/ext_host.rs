//! Regenerate the host-speed kernel study and record the wall-clock
//! trajectory as `BENCH_host.json` in the working directory. See
//! `ldgm_bench::exp::ext_host`.
//!
//! Usage: `ext_host [--out PATH] [--reps N]`
//!
//! `--reps` is the best-of count per workload (default 7; the CI smoke
//! run uses fewer). The written JSON is parsed back and cross-checked
//! against the in-memory records before the binary reports success.

use ldgm_bench::exp::ext_host::{host_records_to_json, run_records};
use ldgm_bench::runner::{write_json_doc, ExtCli};
use ldgm_gpusim::json::Json;

fn main() {
    let mut reps = 7usize;
    let cli = ExtCli::parse_env_with("BENCH_host.json", |flag, args| {
        if flag == "--reps" {
            let n = args.next().expect("--reps requires a count");
            reps = n.parse().expect("--reps must be a positive count");
            true
        } else {
            false
        }
    });
    assert!(cli.names.is_empty(), "ext_host measures fixed seeded workloads, not datasets");
    assert!(reps >= 1, "--reps must be a positive count");

    let mut out = std::io::stdout().lock();
    let records = run_records(reps, &mut out).expect("report write failed");

    // Round-trip check: what landed on disk parses back to the same rows.
    let parsed = write_json_doc(&cli.out_path, &host_records_to_json(&records));
    let rows = parsed.get("records").and_then(Json::as_array).expect("records array");
    assert_eq!(rows.len(), records.len(), "row count round-trips");
    for (row, rec) in rows.iter().zip(&records) {
        assert_eq!(row.get("kernel").and_then(Json::as_str), Some(rec.kernel.as_str()));
        assert_eq!(row.get("workload").and_then(Json::as_str), Some(rec.workload.as_str()));
        assert_eq!(row.get("ns_per_unit").and_then(Json::as_f64), Some(rec.ns_per_unit));
    }
    let geo = parsed.get("geomean_speedup").and_then(Json::as_f64).expect("geomean field");
    println!(
        "wrote {} ({} records, geomean speedup {geo:.2}x vs pinned baseline)",
        cli.out_path,
        records.len()
    );
}

//! Regenerate the paper's table1. See `ldgm_bench::exp::table1`.

fn main() {
    let mut out = std::io::stdout().lock();
    ldgm_bench::exp::table1::run(&mut out).expect("report write failed");
}

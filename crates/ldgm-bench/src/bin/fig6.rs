//! Regenerate the paper's fig6. See `ldgm_bench::exp::fig6`.

fn main() {
    let mut out = std::io::stdout().lock();
    ldgm_bench::exp::fig6::run(&mut out).expect("report write failed");
}

//! Regenerate the paper's fig7. See `ldgm_bench::exp::fig7`.

fn main() {
    let mut out = std::io::stdout().lock();
    ldgm_bench::exp::fig7::run(&mut out).expect("report write failed");
}

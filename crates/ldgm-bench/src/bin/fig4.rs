//! Regenerate the paper's fig4. See `ldgm_bench::exp::fig4`.

fn main() {
    let mut out = std::io::stdout().lock();
    ldgm_bench::exp::fig4::run(&mut out).expect("report write failed");
}

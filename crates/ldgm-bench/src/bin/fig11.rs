//! Regenerate the paper's fig11. See `ldgm_bench::exp::fig11`.

fn main() {
    let mut out = std::io::stdout().lock();
    ldgm_bench::exp::fig11::run(&mut out).expect("report write failed");
}

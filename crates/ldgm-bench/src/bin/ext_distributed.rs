//! Regenerate the distributed-matching extension study. See
//! `ldgm_bench::exp::ext_distributed`.

fn main() {
    let mut out = std::io::stdout().lock();
    ldgm_bench::exp::ext_distributed::run(&mut out).expect("report write failed");
}

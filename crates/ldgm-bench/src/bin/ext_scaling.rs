//! Regenerate the communication-overlap device-count scaling study plus
//! the multi-node cluster sweep, and record the measurements as
//! `BENCH_scaling.json` in the working directory. See
//! `ldgm_bench::exp::ext_scaling`.
//!
//! Usage: `ext_scaling [--out PATH] [--no-cluster]
//!                     [--cluster-nodes N] [--cluster-gpus M] [DATASET...]`
//!
//! With no datasets the full fourteen-graph registry is swept; naming a
//! subset (e.g. the CI smoke run) restricts the sweep. `--no-cluster`
//! skips the cluster sweep (pure-overlap document, every row `kind:
//! "overlap"`). `--cluster-nodes N --cluster-gpus M` replaces the default
//! 16/64/128-GPU shapes with the single shape `N x M`. The written JSON
//! is parsed back and cross-checked against the in-memory records before
//! the binary reports success.

use ldgm_bench::datasets::{by_name, registry};
use ldgm_bench::exp::ext_scaling::{
    cluster_sweep, combined_records_to_json, run_cluster_on, run_on, ClusterRecord,
};
use ldgm_gpusim::json::{self, Json};

fn main() {
    let mut out_path = "BENCH_scaling.json".to_string();
    let mut names: Vec<String> = Vec::new();
    let mut with_cluster = true;
    let mut cluster_nodes: Option<usize> = None;
    let mut cluster_gpus: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--out" => out_path = args.next().expect("--out requires a path"),
            "--no-cluster" => with_cluster = false,
            "--cluster-nodes" => {
                let n = args.next().expect("--cluster-nodes requires a count");
                cluster_nodes = Some(n.parse().expect("--cluster-nodes must be a positive count"));
            }
            "--cluster-gpus" => {
                let n = args.next().expect("--cluster-gpus requires a count");
                cluster_gpus = Some(n.parse().expect("--cluster-gpus must be a positive count"));
            }
            _ => names.push(a),
        }
    }
    let datasets = if names.is_empty() {
        registry()
    } else {
        names.iter().map(|n| by_name(n).expect("known dataset")).collect()
    };
    let shapes = match (cluster_nodes, cluster_gpus) {
        (None, None) => cluster_sweep(),
        (n, g) => vec![(n.unwrap_or(2), g.unwrap_or(8))],
    };

    let mut out = std::io::stdout().lock();
    let records = run_on(&datasets, &mut out).expect("report write failed");
    let cluster: Vec<ClusterRecord> = if with_cluster {
        run_cluster_on(&datasets, &shapes, &mut out).expect("report write failed")
    } else {
        Vec::new()
    };
    let doc = combined_records_to_json(&records, &cluster).to_string_pretty();
    std::fs::write(&out_path, doc.clone() + "\n").expect("JSON write failed");

    // Round-trip check: what landed on disk parses back to the same rows.
    let parsed = json::parse(&doc).expect("written JSON must parse");
    let rows = parsed.as_array().expect("array document");
    assert_eq!(rows.len(), records.len() + cluster.len(), "row count round-trips");
    for (row, rec) in rows.iter().zip(&records) {
        assert_eq!(row.get("kind").and_then(Json::as_str), Some("overlap"));
        assert_eq!(row.get("dataset").and_then(Json::as_str), Some(rec.dataset.as_str()));
        assert_eq!(row.get("time_overlap").and_then(Json::as_f64), Some(rec.time_overlap));
        assert_eq!(row.get("identical").and_then(Json::as_bool), Some(rec.identical));
    }
    for (row, rec) in rows.iter().skip(records.len()).zip(&cluster) {
        assert_eq!(row.get("kind").and_then(Json::as_str), Some("cluster"));
        assert_eq!(row.get("dataset").and_then(Json::as_str), Some(rec.dataset.as_str()));
        assert_eq!(row.get("nodes").and_then(Json::as_f64), Some(rec.nodes as f64));
        assert_eq!(row.get("time_hier").and_then(Json::as_f64), Some(rec.time_hier));
        assert_eq!(row.get("identical").and_then(Json::as_bool), Some(rec.identical));
    }
    let datasets_with_drop: std::collections::BTreeSet<&str> = records
        .iter()
        .filter(|r| r.devices >= 4 && r.exposed_reduction() > 0.0)
        .map(|r| r.dataset.as_str())
        .collect();
    let placement_wins: std::collections::BTreeSet<&str> = cluster
        .iter()
        .filter(|r| r.devices >= 64 && r.inter_reduction() > 0.0)
        .map(|r| r.dataset.as_str())
        .collect();
    println!(
        "wrote {out_path} ({} overlap + {} cluster records; exposed comm drops on \
         >=4 devices for {} datasets; placement trims inter-node time at >=64 GPUs \
         for {} datasets)",
        records.len(),
        cluster.len(),
        datasets_with_drop.len(),
        placement_wins.len()
    );
}

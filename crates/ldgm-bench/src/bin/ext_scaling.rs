//! Regenerate the communication-overlap device-count scaling study and
//! record its measurements as `BENCH_scaling.json` in the working
//! directory. See `ldgm_bench::exp::ext_scaling`.
//!
//! Usage: `ext_scaling [--out PATH] [DATASET...]`
//!
//! With no datasets the full fourteen-graph registry is swept; naming a
//! subset (e.g. the CI smoke run) restricts the sweep. The written JSON
//! is parsed back and cross-checked against the in-memory records before
//! the binary reports success.

use ldgm_bench::datasets::{by_name, registry};
use ldgm_bench::exp::ext_scaling::{run_on, scaling_records_to_json};
use ldgm_gpusim::json::{self, Json};

fn main() {
    let mut out_path = "BENCH_scaling.json".to_string();
    let mut names: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--out" {
            out_path = args.next().expect("--out requires a path");
        } else {
            names.push(a);
        }
    }
    let datasets = if names.is_empty() {
        registry()
    } else {
        names.iter().map(|n| by_name(n).expect("known dataset")).collect()
    };

    let mut out = std::io::stdout().lock();
    let records = run_on(&datasets, &mut out).expect("report write failed");
    let doc = scaling_records_to_json(&records).to_string_pretty();
    std::fs::write(&out_path, doc.clone() + "\n").expect("JSON write failed");

    // Round-trip check: what landed on disk parses back to the same rows.
    let parsed = json::parse(&doc).expect("written JSON must parse");
    let rows = parsed.as_array().expect("array document");
    assert_eq!(rows.len(), records.len(), "row count round-trips");
    for (row, rec) in rows.iter().zip(&records) {
        assert_eq!(row.get("dataset").and_then(Json::as_str), Some(rec.dataset.as_str()));
        assert_eq!(row.get("time_overlap").and_then(Json::as_f64), Some(rec.time_overlap));
        assert_eq!(row.get("identical").and_then(Json::as_bool), Some(rec.identical));
    }
    let datasets_with_drop: std::collections::BTreeSet<&str> = records
        .iter()
        .filter(|r| r.devices >= 4 && r.exposed_reduction() > 0.0)
        .map(|r| r.dataset.as_str())
        .collect();
    println!(
        "wrote {out_path} ({} records; exposed comm drops on >=4 devices for {} datasets)",
        records.len(),
        datasets_with_drop.len()
    );
}

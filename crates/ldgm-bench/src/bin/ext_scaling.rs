//! Regenerate the communication-overlap device-count scaling study plus
//! the multi-node cluster sweep, and record the measurements as
//! `BENCH_scaling.json` in the working directory. See
//! `ldgm_bench::exp::ext_scaling`.
//!
//! Usage: `ext_scaling [--out PATH] [--no-cluster]
//!                     [--cluster-nodes N] [--cluster-gpus M] [DATASET...]`
//!
//! With no datasets the full fourteen-graph registry is swept; naming a
//! subset (e.g. the CI smoke run) restricts the sweep. `--no-cluster`
//! skips the cluster sweep (pure-overlap document, every row `kind:
//! "overlap"`). `--cluster-nodes N --cluster-gpus M` replaces the default
//! 16/64/128-GPU shapes with the single shape `N x M`. The written JSON
//! is parsed back and cross-checked against the in-memory records before
//! the binary reports success.

use ldgm_bench::datasets::{by_name, registry};
use ldgm_bench::exp::ext_scaling::{
    cluster_sweep, combined_records_to_json, run_cluster_on, run_on, ClusterRecord,
};
use ldgm_bench::runner::{write_json_doc, ExtCli};
use ldgm_gpusim::json::Json;

fn main() {
    let mut with_cluster = true;
    let mut cluster_nodes: Option<usize> = None;
    let mut cluster_gpus: Option<usize> = None;
    let cli = ExtCli::parse_env_with("BENCH_scaling.json", |flag, args| match flag {
        "--no-cluster" => {
            with_cluster = false;
            true
        }
        "--cluster-nodes" => {
            let n = args.next().expect("--cluster-nodes requires a count");
            cluster_nodes = Some(n.parse().expect("--cluster-nodes must be a positive count"));
            true
        }
        "--cluster-gpus" => {
            let n = args.next().expect("--cluster-gpus requires a count");
            cluster_gpus = Some(n.parse().expect("--cluster-gpus must be a positive count"));
            true
        }
        _ => false,
    });
    let datasets = if cli.names.is_empty() {
        registry()
    } else {
        cli.names.iter().map(|n| by_name(n).expect("known dataset")).collect()
    };
    let shapes = match (cluster_nodes, cluster_gpus) {
        (None, None) => cluster_sweep(),
        (n, g) => vec![(n.unwrap_or(2), g.unwrap_or(8))],
    };

    let mut out = std::io::stdout().lock();
    let records = run_on(&datasets, &mut out).expect("report write failed");
    let cluster: Vec<ClusterRecord> = if with_cluster {
        run_cluster_on(&datasets, &shapes, &mut out).expect("report write failed")
    } else {
        Vec::new()
    };
    // Round-trip check: what landed on disk parses back to the same rows.
    let parsed = write_json_doc(&cli.out_path, &combined_records_to_json(&records, &cluster));
    let rows = parsed.as_array().expect("array document");
    assert_eq!(rows.len(), records.len() + cluster.len(), "row count round-trips");
    for (row, rec) in rows.iter().zip(&records) {
        assert_eq!(row.get("kind").and_then(Json::as_str), Some("overlap"));
        assert_eq!(row.get("dataset").and_then(Json::as_str), Some(rec.dataset.as_str()));
        assert_eq!(row.get("time_overlap").and_then(Json::as_f64), Some(rec.time_overlap));
        assert_eq!(row.get("identical").and_then(Json::as_bool), Some(rec.identical));
    }
    for (row, rec) in rows.iter().skip(records.len()).zip(&cluster) {
        assert_eq!(row.get("kind").and_then(Json::as_str), Some("cluster"));
        assert_eq!(row.get("dataset").and_then(Json::as_str), Some(rec.dataset.as_str()));
        assert_eq!(row.get("nodes").and_then(Json::as_f64), Some(rec.nodes as f64));
        assert_eq!(row.get("time_hier").and_then(Json::as_f64), Some(rec.time_hier));
        assert_eq!(row.get("identical").and_then(Json::as_bool), Some(rec.identical));
    }
    let datasets_with_drop: std::collections::BTreeSet<&str> = records
        .iter()
        .filter(|r| r.devices >= 4 && r.exposed_reduction() > 0.0)
        .map(|r| r.dataset.as_str())
        .collect();
    let placement_wins: std::collections::BTreeSet<&str> = cluster
        .iter()
        .filter(|r| r.devices >= 64 && r.inter_reduction() > 0.0)
        .map(|r| r.dataset.as_str())
        .collect();
    println!(
        "wrote {} ({} overlap + {} cluster records; exposed comm drops on \
         >=4 devices for {} datasets; placement trims inter-node time at >=64 GPUs \
         for {} datasets)",
        cli.out_path,
        records.len(),
        cluster.len(),
        datasets_with_drop.len(),
        placement_wins.len()
    );
}

//! Regenerate the matching-as-a-service load study and record its
//! measurements as `BENCH_serve.json` in the working directory. See
//! `ldgm_bench::exp::ext_serve`.
//!
//! Usage: `ext_serve [--out PATH] [DATASET...]`
//!
//! With no datasets the default three-graph subset is measured; naming a
//! subset (e.g. the CI smoke run) restricts it. The written JSON is
//! parsed back and cross-checked against the in-memory records before
//! the binary reports success.

use ldgm_bench::datasets::by_name;
use ldgm_bench::exp::ext_serve::{run_on, serve_records_to_json, DATASETS};
use ldgm_bench::runner::{write_json_doc, ExtCli};
use ldgm_gpusim::json::Json;

fn main() {
    let mut cli = ExtCli::parse_env("BENCH_serve.json");
    if cli.names.is_empty() {
        cli.names = DATASETS.iter().map(|s| s.to_string()).collect();
    }
    let datasets: Vec<_> = cli.names.iter().map(|n| by_name(n).expect("known dataset")).collect();

    let mut out = std::io::stdout().lock();
    let records = run_on(&datasets, &mut out).expect("report write failed");

    // Round-trip check: what landed on disk parses back to the same rows.
    let parsed = write_json_doc(&cli.out_path, &serve_records_to_json(&records));
    let rows = parsed.as_array().expect("array document");
    assert_eq!(rows.len(), records.len(), "row count round-trips");
    for (row, rec) in rows.iter().zip(&records) {
        assert_eq!(row.get("dataset").and_then(Json::as_str), Some(rec.dataset.as_str()));
        assert_eq!(row.get("mean_batch").and_then(Json::as_f64), Some(rec.mean_batch));
        assert_eq!(row.get("replay_identical").and_then(Json::as_bool), Some(rec.replay_identical));
        assert!(rec.replay_identical, "{}: served matching diverged from replay", rec.dataset);
        assert!(rec.mean_batch > 1.0, "{}: no coalescing under load", rec.dataset);
    }
    println!("wrote {} ({} records, all replay-identical)", cli.out_path, records.len());
}

//! Regenerate the matching-as-a-service load study and record its
//! measurements as `BENCH_serve.json` (schema version 2) in the working
//! directory. See `ldgm_bench::exp::ext_serve`.
//!
//! Usage: `ext_serve [--out PATH] [--clients N] [--updates N]
//!         [--duration-ms MS] [--throughput-clients A,B,...]
//!         [--window N] [DATASET...]`
//!
//! With no datasets the default three-graph subset is measured; naming a
//! subset (e.g. the CI smoke run) restricts it. `--duration-ms 0` skips
//! the throughput sweep. The written JSON is parsed back and
//! cross-checked against the in-memory records before the binary reports
//! success.

use ldgm_bench::datasets::by_name;
use ldgm_bench::exp::ext_serve::{run_on_with, StudyConfig, DATASETS};
use ldgm_bench::runner::{write_json_doc, ExtCli};
use ldgm_gpusim::json::Json;

fn parse_num<T: std::str::FromStr>(flag: &str, args: &mut dyn Iterator<Item = String>) -> T {
    let raw = args.next().unwrap_or_else(|| panic!("{flag} requires a value"));
    raw.parse().unwrap_or_else(|_| panic!("{flag}: bad value {raw:?}"))
}

fn main() {
    let mut cfg = StudyConfig::default();
    let mut cli = ExtCli::parse_env_with("BENCH_serve.json", |flag, args| match flag {
        "--clients" => {
            cfg.clients = parse_num(flag, args);
            true
        }
        "--updates" => {
            cfg.updates_per_client = parse_num(flag, args);
            true
        }
        "--duration-ms" => {
            cfg.duration_ms = parse_num(flag, args);
            true
        }
        "--window" => {
            cfg.window = parse_num(flag, args);
            true
        }
        "--throughput-clients" => {
            let raw = args.next().expect("--throughput-clients requires a list");
            cfg.throughput_clients = raw
                .split(',')
                .filter(|s| !s.is_empty())
                .map(|s| s.parse().unwrap_or_else(|_| panic!("bad client count {s:?}")))
                .collect();
            true
        }
        _ => false,
    });
    assert!(cfg.clients > 0 && cfg.updates_per_client > 0 && cfg.window > 0, "zero-sized study");
    if cli.names.is_empty() {
        cli.names = DATASETS.iter().map(|s| s.to_string()).collect();
    }
    let datasets: Vec<_> = cli.names.iter().map(|n| by_name(n).expect("known dataset")).collect();

    let mut out = std::io::stdout().lock();
    let study = run_on_with(&datasets, &cfg, &mut out).expect("report write failed");

    // Round-trip check: what landed on disk parses back to the same rows.
    let parsed = write_json_doc(&cli.out_path, &study.to_json());
    assert_eq!(
        parsed.get("schema_version").and_then(Json::as_f64),
        Some(2.0),
        "document must carry the schema bump"
    );
    let rows = parsed.get("records").and_then(Json::as_array).expect("records array");
    assert_eq!(rows.len(), study.records.len(), "record count round-trips");
    for (row, rec) in rows.iter().zip(&study.records) {
        assert_eq!(row.get("dataset").and_then(Json::as_str), Some(rec.dataset.as_str()));
        assert_eq!(row.get("mean_batch").and_then(Json::as_f64), Some(rec.mean_batch));
        assert_eq!(row.get("replay_identical").and_then(Json::as_bool), Some(rec.replay_identical));
        assert!(rec.replay_identical, "{}: served matching diverged from replay", rec.dataset);
        assert!(rec.mean_batch > 1.0, "{}: no coalescing under load", rec.dataset);
    }
    let points = parsed.get("throughput").and_then(Json::as_array).expect("throughput array");
    assert_eq!(points.len(), study.throughput.len(), "throughput count round-trips");
    for (row, p) in points.iter().zip(&study.throughput) {
        assert_eq!(row.get("io").and_then(Json::as_str), Some(p.io.as_str()));
        let rps = row.get("rps").and_then(Json::as_f64).expect("rps recorded");
        assert!(rps > 0.0, "{} @ {} clients: zero throughput", p.io, p.clients);
        assert!(row.get("p99_us").and_then(Json::as_f64).is_some(), "p99 recorded");
        assert!(
            row.get("replay_identical").and_then(Json::as_bool) == Some(true),
            "{} @ {} clients: replay diverged",
            p.io,
            p.clients
        );
    }
    match study.speedup() {
        Some(s) => println!(
            "wrote {} ({} records, {} throughput points, reactor speedup {s:.1}x)",
            cli.out_path,
            study.records.len(),
            study.throughput.len()
        ),
        None => println!(
            "wrote {} ({} records, throughput sweep skipped)",
            cli.out_path,
            study.records.len()
        ),
    }
}

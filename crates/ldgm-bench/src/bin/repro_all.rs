//! Run every experiment of the paper's evaluation section and write the
//! reports under `target/repro/`, echoing each to stdout as it completes.

use std::fs;
use std::io::Write;
use std::time::Instant;

fn main() {
    let dir = std::path::Path::new("target/repro");
    fs::create_dir_all(dir).expect("create target/repro");
    let t0 = Instant::now();
    for (id, runner) in ldgm_bench::exp::all() {
        let ti = Instant::now();
        let mut buf: Vec<u8> = Vec::new();
        runner(&mut buf).expect("experiment failed");
        let path = dir.join(format!("{id}.txt"));
        fs::write(&path, &buf).expect("write report");
        let mut out = std::io::stdout().lock();
        out.write_all(&buf).unwrap();
        writeln!(out, "[{id}] wrote {} in {:.1}s\n", path.display(), ti.elapsed().as_secs_f64())
            .unwrap();
    }
    println!("all experiments done in {:.1}s", t0.elapsed().as_secs_f64());
}

//! Regenerate the paper's fig5. See `ldgm_bench::exp::fig5`.

fn main() {
    let mut out = std::io::stdout().lock();
    ldgm_bench::exp::fig5::run(&mut out).expect("report write failed");
}

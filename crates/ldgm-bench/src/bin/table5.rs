//! Regenerate the paper's table5. See `ldgm_bench::exp::table5`.

fn main() {
    let mut out = std::io::stdout().lock();
    ldgm_bench::exp::table5::run(&mut out).expect("report write failed");
}

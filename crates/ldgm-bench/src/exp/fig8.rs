//! **Fig. 8**: warp-edge work — mean and standard deviation of the
//! percentage of edges accessed by warps per pointing-phase iteration.
//!
//! Expected shape (paper): the first iteration performs the bulk of the
//! edge traversals; for ~90% of iterations less than 20% of the edges are
//! accessed; per-warp variance differs 2–5× across inputs (kmer spiky,
//! GAP-kron comparatively even).

use std::io::{self, Write};

use ldgm_core::ld_gpu::{LdGpu, LdGpuConfig};
use ldgm_gpusim::Platform;

use crate::datasets::{by_name, scaled_platform};
use crate::table::Table;

/// Graphs shown (a SMALL/LARGE selection like the paper's panel).
pub const GRAPHS: &[&str] =
    &["GAP-kron", "com-Friendster", "kmer_U1a", "mycielskian18", "com-Orkut", "mouse_gene"];

/// Run the experiment, writing the report to `w`.
pub fn run(w: &mut dyn Write) -> io::Result<()> {
    writeln!(w, "# Fig. 8: % of edges accessed per pointing iteration (mean/std across warps)\n")?;
    let platform = scaled_platform(Platform::dgx_a100());
    let mut t = Table::new(vec![
        "Graph",
        "iters",
        "it0 %edges",
        "it1 %edges",
        "med %edges",
        "frac<20%",
        "max warp-std",
    ]);
    for name in GRAPHS {
        let g = by_name(name).expect("registry dataset").build();
        let out = LdGpu::new(LdGpuConfig::new(platform.clone()).devices(2)).run(&g);
        let iters = &out.profile.iterations;
        let mut pcts: Vec<f64> = iters.iter().map(|r| r.pct_edges).collect();
        let it0 = pcts.first().copied().unwrap_or(0.0);
        let it1 = pcts.get(1).copied().unwrap_or(0.0);
        pcts.sort_by(f64::total_cmp);
        let med = pcts.get(pcts.len() / 2).copied().unwrap_or(0.0);
        let frac = out.profile.fraction_iterations_below_pct(20.0);
        let max_std = iters.iter().map(|r| r.warp_std).fold(0.0, f64::max);
        t.row(vec![
            name.to_string(),
            format!("{}", out.iterations),
            format!("{it0:.1}"),
            format!("{it1:.1}"),
            format!("{med:.2}"),
            format!("{frac:.2}"),
            format!("{max_std:.1}"),
        ]);
    }
    writeln!(w, "{t}")
}

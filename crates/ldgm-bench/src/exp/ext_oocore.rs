//! **Extension**: out-of-core streaming LD-GPU on graphs larger than
//! device memory.
//!
//! Each Table-I stand-in is run against a platform whose per-device
//! memory is shrunk to ~40% of the graph's single-batch footprint, so
//! the whole-graph plan refuses outright (`BatchPlanTooLarge`). The
//! streaming engine then band-slices the preference-sorted adjacency
//! into substreams, keeps a fixed window of bands resident, and
//! prefetches the next substream on the copy stream while the current
//! band's SETPOINTERS kernel runs. The study sweeps the resident-window
//! depth and reports, per dataset, the simulated completion time, how
//! much of the prefetch copy time the band kernels hid, and whether the
//! streamed matching is bit-identical to the in-memory reference.

use std::io::{self, Write};

use ldgm_core::ld_gpu::{LdGpu, LdGpuConfig, LdGpuOutput};
use ldgm_gpusim::json::Json;
use ldgm_gpusim::Platform;
use ldgm_part::{batch, memory, plan_substreams, Partition};

use crate::datasets::{registry, scaled_platform, Dataset};
use crate::runner::fmt_secs;
use crate::table::Table;

/// Devices used for every run (the "aggregate device memory" the graphs
/// are sized to overflow).
pub const DEVICES: usize = 2;
/// Resident-window depths swept (bands held on-device per vertex).
/// Deeper windows mean narrower bands: more copy/kernel rounds, but each
/// prefetch is smaller and hides more easily behind the previous band's
/// kernel.
pub const WINDOW_SWEEP: &[usize] = &[2, 4, 8, 16, 32];
/// Per-device memory as a fraction of the single-batch footprint:
/// numerator / denominator = 40%, far enough under 50% that the
/// double-buffered whole-graph plan can never fit.
const SHRINK_NUM: u64 = 2;
const SHRINK_DEN: u64 = 5;

/// One streamed run at a fixed window depth.
#[derive(Clone, Debug)]
pub struct WindowPoint {
    /// Resident window depth in bands.
    pub window: usize,
    /// Substream bands per iteration (the driver's copy/kernel rounds).
    pub bands: usize,
    /// Simulated seconds for the full streamed run.
    pub sim_time: f64,
    /// Prefetch copy seconds hidden under band kernels.
    pub prefetch_hidden: f64,
    /// Prefetch copy seconds left exposed on the critical path.
    pub prefetch_exposed: f64,
}

impl WindowPoint {
    /// Fraction of total prefetch copy time the band kernels hid.
    pub fn hidden_frac(&self) -> f64 {
        let total = self.prefetch_hidden + self.prefetch_exposed;
        if total <= 0.0 {
            0.0
        } else {
            self.prefetch_hidden / total
        }
    }

    fn to_json(&self) -> Json {
        Json::object()
            .with("window", self.window)
            .with("bands", self.bands)
            .with("sim_time", self.sim_time)
            .with("prefetch_hidden", self.prefetch_hidden)
            .with("prefetch_exposed", self.prefetch_exposed)
            .with("hidden_frac", self.hidden_frac())
    }
}

/// One oversized stand-in: the whole-graph refusal plus the window sweep.
#[derive(Clone, Debug)]
pub struct OocRecord {
    /// Dataset name (Table I stand-in identifier).
    pub dataset: String,
    /// Devices used.
    pub devices: usize,
    /// Shrunken per-device memory the streamed runs had to live in.
    pub mem_bytes: u64,
    /// Single-batch per-device footprint the graph actually needs.
    pub footprint: u64,
    /// Whether the whole-graph (1-batch) plan refused at `mem_bytes`.
    pub whole_graph_refused: bool,
    /// The refusal error text (empty if it unexpectedly fit).
    pub refusal: String,
    /// One entry per feasible window depth.
    pub windows: Vec<WindowPoint>,
    /// Whether the streamed matching is bit-identical to the in-memory
    /// reference run (default platform, no streaming).
    pub identical: bool,
    /// Matching weight of the streamed run.
    pub weight: f64,
    /// Matched edges of the streamed run.
    pub cardinality: u64,
}

impl OocRecord {
    /// The sweep point that hid the largest prefetch fraction.
    pub fn best(&self) -> Option<&WindowPoint> {
        self.windows.iter().max_by(|a, b| a.hidden_frac().total_cmp(&b.hidden_frac()))
    }

    /// Serialize for `BENCH_oocore.json`.
    pub fn to_json(&self) -> Json {
        let best = self.best();
        Json::object()
            .with("dataset", self.dataset.clone())
            .with("devices", self.devices)
            .with("mem_bytes", self.mem_bytes)
            .with("footprint", self.footprint)
            .with("whole_graph_refused", self.whole_graph_refused)
            .with("refusal", self.refusal.clone())
            .with("windows", Json::Array(self.windows.iter().map(WindowPoint::to_json).collect()))
            .with("best_window", best.map_or(0usize, |p| p.window))
            .with("best_hidden_frac", best.map_or(0.0, WindowPoint::hidden_frac))
            .with("identical", self.identical)
            .with("weight", self.weight)
            .with("cardinality", self.cardinality)
    }
}

/// Serialize a result set as a JSON array document.
pub fn ooc_records_to_json(records: &[OocRecord]) -> Json {
    Json::Array(records.iter().map(OocRecord::to_json).collect())
}

/// Per-device single-batch footprint: the largest device partition,
/// double-buffered, plus the replicated global matching state.
fn single_batch_footprint(g: &ldgm_graph::CsrGraph, devices: usize) -> u64 {
    let part = Partition::edge_balanced(g, devices);
    part.parts
        .iter()
        .map(|p| memory::device_footprint_bytes(&batch::make_batches(g, p, 1), g.num_vertices()))
        .max()
        .unwrap_or(0)
}

/// Shrunken per-device capacity for a stand-in: the 40% target, raised
/// to the window-2 planner minimum when vertex-dominated partitions
/// (sparse k-mer graphs) cannot hold even a width-1 double buffer at
/// 40%. The minimum is still below the single-batch footprint, so the
/// whole-graph refusal is preserved.
fn streaming_budget(g: &ldgm_graph::CsrGraph, devices: usize, footprint: u64) -> u64 {
    let mut budget = (footprint * SHRINK_NUM / SHRINK_DEN).max(1);
    for p in &Partition::edge_balanced(g, devices).parts {
        if let Err(e) = plan_substreams(g, p, g.num_vertices(), budget, 2) {
            budget = budget.max(e.required);
        }
    }
    budget
}

/// Run the study over `datasets`, one record per stand-in.
pub fn run_on(datasets: &[Dataset], w: &mut dyn Write) -> io::Result<Vec<OocRecord>> {
    writeln!(w, "# Extension: out-of-core streaming LD-GPU (--stream)\n")?;
    writeln!(
        w,
        "Per-device memory is shrunk to {SHRINK_NUM}/{SHRINK_DEN} of each stand-in's\n\
         single-batch footprint on {DEVICES} devices: the whole-graph plan refuses,\n\
         the streaming engine completes by cycling band substreams through a\n\
         resident window while the copy stream prefetches the next band.\n\
         Matchings are checked bit-identical against the in-memory reference.\n"
    )?;
    let reference = scaled_platform(Platform::dgx_a100());
    let mut t = Table::new(vec![
        "dataset",
        "mem/need",
        "whole-graph",
        "window",
        "bands",
        "streamed",
        "hidden",
        "identical",
    ]);
    let mut records = Vec::new();
    for ds in datasets {
        let g = ds.build();
        let footprint = single_batch_footprint(&g, DEVICES);
        let mem_bytes = streaming_budget(&g, DEVICES, footprint);
        let shrunk = reference.clone().with_device_memory(mem_bytes);

        // The in-memory reference (auto batch plan, full scaled memory).
        let base_cfg = LdGpuConfig::builder(reference.clone())
            .devices(DEVICES)
            .build()
            .expect("reference config is valid");
        let base = LdGpu::new(base_cfg).try_run(&g).map_err(io::Error::other)?;

        // The whole-graph plan must refuse at the shrunken capacity.
        let whole = LdGpu::new(
            LdGpuConfig::builder(shrunk.clone())
                .devices(DEVICES)
                .batches(1)
                .build()
                .expect("whole-graph config is valid"),
        )
        .try_run(&g);
        let (refused, refusal) = match whole {
            Err(e) => (true, e.to_string()),
            Ok(_) => (false, String::new()),
        };

        let mut windows = Vec::new();
        let mut streamed_best: Option<LdGpuOutput> = None;
        for &window in WINDOW_SWEEP {
            let cfg = LdGpuConfig::builder(shrunk.clone())
                .devices(DEVICES)
                .streaming(true)
                .stream_window(window)
                .build()
                .expect("streaming config is valid");
            let out = match LdGpu::new(cfg).try_run(&g) {
                Ok(out) => out,
                Err(e) => {
                    // Deep windows can starve the band planner on dense
                    // stand-ins; record the feasible points only.
                    writeln!(w, "skip {} window {window}: {e}", ds.name)?;
                    continue;
                }
            };
            windows.push(WindowPoint {
                window,
                bands: out.batches,
                sim_time: out.sim_time,
                prefetch_hidden: out.metrics.gauge("copy.prefetch_hidden_time").unwrap_or(0.0),
                prefetch_exposed: out.metrics.gauge("copy.prefetch_exposed_time").unwrap_or(0.0),
            });
            streamed_best = Some(out);
        }
        let streamed = streamed_best.ok_or_else(|| {
            io::Error::other(format!("{}: no feasible streaming window", ds.name))
        })?;
        let identical = streamed.matching.mate_array() == base.matching.mate_array();
        let rec = OocRecord {
            dataset: ds.name.to_string(),
            devices: DEVICES,
            mem_bytes,
            footprint,
            whole_graph_refused: refused,
            refusal,
            windows,
            identical,
            weight: streamed.matching.weight(&g),
            cardinality: streamed.matching.cardinality() as u64,
        };
        let best = rec.best().expect("at least one feasible window");
        t.row(vec![
            ds.name.to_string(),
            format!("{:.0}%", rec.mem_bytes as f64 / rec.footprint as f64 * 100.0),
            if rec.whole_graph_refused { "refused".into() } else { "fit?!".into() },
            format!("{}", best.window),
            format!("{}", best.bands),
            fmt_secs(best.sim_time),
            format!("{:.0}%", best.hidden_frac() * 100.0),
            format!("{}", rec.identical),
        ]);
        records.push(rec);
    }
    writeln!(w, "{t}")?;
    writeln!(
        w,
        "(mem/need = shrunken capacity over single-batch footprint; hidden =\n\
         prefetch copy time buried under band kernels at the best window)"
    )?;
    Ok(records)
}

/// Run the full 14-dataset study.
pub fn run_records(w: &mut dyn Write) -> io::Result<Vec<OocRecord>> {
    run_on(&registry(), w)
}

/// Run the experiment, writing the report to `w`.
pub fn run(w: &mut dyn Write) -> io::Result<()> {
    run_records(w).map(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::by_name;

    #[test]
    fn small_dataset_subset_meets_acceptance_shape() {
        let subset = [by_name("mouse_gene").unwrap(), by_name("com-Orkut").unwrap()];
        let mut sink = Vec::new();
        let records = run_on(&subset, &mut sink).unwrap();
        assert_eq!(records.len(), 2);
        for r in &records {
            assert!(r.whole_graph_refused, "{}: 40% capacity must refuse", r.dataset);
            assert!(r.refusal.contains("1-batch plan"), "{}: {}", r.dataset, r.refusal);
            assert!(r.identical, "{}: streamed matching must be bit-identical", r.dataset);
            assert!(!r.windows.is_empty());
            for p in &r.windows {
                assert!(p.bands > 1, "{} w{}: tight budget must band-slice", r.dataset, p.window);
                assert!(p.sim_time > 0.0);
                assert!(p.prefetch_hidden >= 0.0 && p.prefetch_exposed >= 0.0);
                assert!(p.hidden_frac() <= 1.0);
            }
            assert!(r.best().unwrap().hidden_frac() > 0.0, "{}: nothing hidden", r.dataset);
        }
        let text = String::from_utf8(sink).unwrap();
        assert!(text.contains("out-of-core streaming"));
    }

    #[test]
    fn json_round_trips() {
        let subset = [by_name("mouse_gene").unwrap()];
        let mut sink = Vec::new();
        let records = run_on(&subset, &mut sink).unwrap();
        let doc = ooc_records_to_json(&records).to_string_pretty();
        let parsed = ldgm_gpusim::json::parse(&doc).unwrap();
        let rows = parsed.as_array().unwrap();
        assert_eq!(rows.len(), records.len());
        assert_eq!(rows[0].get("dataset").and_then(Json::as_str), Some("mouse_gene"));
        assert_eq!(
            rows[0].get("whole_graph_refused").and_then(Json::as_bool),
            Some(records[0].whole_graph_refused)
        );
        let wins = rows[0].get("windows").and_then(Json::as_array).unwrap();
        assert_eq!(wins.len(), records[0].windows.len());
        assert_eq!(
            rows[0].get("best_hidden_frac").and_then(Json::as_f64),
            Some(records[0].best().unwrap().hidden_frac())
        );
    }
}

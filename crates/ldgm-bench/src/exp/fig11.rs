//! **Fig. 11**: SM occupancy per LD-GPU iteration (Nsight-style achieved
//! occupancy), sampled along the iteration progression.
//!
//! Expected shape (paper): ≈ 90% occupancy through 100% of iterations for
//! most inputs; the small outliers (mycielskian18, mouse_gene) diverge in
//! the later half, dipping to ~30–50% as useful work per launch dries up.

use std::io::{self, Write};

use ldgm_core::ld_gpu::{LdGpu, LdGpuConfig};
use ldgm_gpusim::Platform;

use crate::datasets::{by_name, scaled_platform};
use crate::table::Table;

/// Graphs shown (large stays saturated; small outliers dip).
pub const GRAPHS: &[&str] =
    &["GAP-kron", "com-Friendster", "kmer_U1a", "Queen_4147", "mycielskian18", "mouse_gene"];

/// Run the experiment, writing the report to `w`.
pub fn run(w: &mut dyn Write) -> io::Result<()> {
    writeln!(w, "# Fig. 11: SM occupancy (%) at points of the iteration progression\n")?;
    let platform = scaled_platform(Platform::dgx_a100());
    let marks = [0.0, 0.25, 0.5, 0.75, 1.0];
    let mut header = vec!["Graph".to_string()];
    header.extend(marks.iter().map(|m| format!("{:.0}%", m * 100.0)));
    header.push("min".into());
    let mut t = Table::new(header);
    for name in GRAPHS {
        let g = by_name(name).expect("registry dataset").build();
        let out = LdGpu::new(LdGpuConfig::new(platform.clone())).run(&g);
        let iters = &out.profile.iterations;
        if iters.is_empty() {
            continue;
        }
        let mut cells = vec![name.to_string()];
        for m in marks {
            let idx = ((iters.len() - 1) as f64 * m).round() as usize;
            cells.push(format!("{:.0}", iters[idx].occupancy * 100.0));
        }
        let min = iters.iter().map(|r| r.occupancy).fold(1.0_f64, f64::min);
        cells.push(format!("{:.0}", min * 100.0));
        t.row(cells);
    }
    writeln!(w, "{t}")
}

//! **Extension**: batch-dynamic maintenance vs from-scratch recompute.
//!
//! The paper solves each graph once; production graphs mutate. This
//! experiment drives the `ldgm-dyn` incremental engine and the
//! rerun-static-LD baseline over identical seeded update streams on an
//! rmat stand-in, across three update-batch sizes. The crossover is the
//! point of the study: tiny batches touch a tiny frontier and the
//! incremental engine wins by orders of magnitude; as batches approach
//! the graph size the frontier approaches the full vertex set and the
//! advantage narrows toward recompute.

use std::io::{self, Write};

use ldgm_core::MatcherSetup;
use ldgm_dyn::{DynamicMatcherRegistry, WorkloadSpec};
use ldgm_gpusim::Platform;

use crate::datasets::{by_name, scaled_platform};
use crate::runner::{fmt_secs, BenchRecord};
use crate::table::Table;

/// The rmat stand-in driven with updates.
pub const GRAPH: &str = "com-Orkut";
/// Update-batch sizes swept (updates per batch).
pub const BATCH_SIZES: &[usize] = &[16, 256, 4096];
/// Batches applied per configuration.
pub const BATCHES: usize = 6;
/// Simulated devices.
pub const DEVICES: usize = 4;
/// Workload seed (shared by both engines: identical streams).
pub const SEED: u64 = 7;

/// Run the experiment and return the bench records it measured.
pub fn run_records(w: &mut dyn Write) -> io::Result<Vec<BenchRecord>> {
    writeln!(w, "# Extension: batch-dynamic maintenance vs from-scratch LD-GPU\n")?;
    writeln!(
        w,
        "{GRAPH} stand-in under uniform insert/delete streams on {DEVICES} simulated\n\
         A100s ({BATCHES} batches per size, same seed for both engines, so both\n\
         maintain bit-identical matchings). Times are maintenance only —\n\
         the initial solve is identical work for both engines.\n"
    )?;
    let dataset = by_name(GRAPH).expect("registry dataset");
    let g = dataset.build();
    let platform = scaled_platform(Platform::dgx_a100());
    let setup = MatcherSetup { platform, devices: DEVICES, ..MatcherSetup::default() };
    let registry = DynamicMatcherRegistry::with_defaults(&setup);

    let mut t = Table::new(vec![
        "batch size",
        "engine",
        "maintenance",
        "per batch",
        "rounds",
        "weight",
        "speedup",
    ]);
    let mut records = Vec::new();
    for &size in BATCH_SIZES {
        let spec = WorkloadSpec {
            batches: BATCHES,
            batch_size: size,
            seed: SEED,
            ..WorkloadSpec::default()
        };
        let mut scratch_time = None;
        let mut row_results = Vec::new();
        for name in ["from-scratch", "incremental"] {
            let engine = registry.get(name).expect("registered engine");
            let out = engine.run(&g, &spec).expect("dynamic run fits the scaled platform");
            if name == "from-scratch" {
                scratch_time = Some(out.maintenance_time);
            }
            records.push(BenchRecord {
                dataset: GRAPH.to_string(),
                algorithm: format!("ld-dyn-{name}"),
                platform: "dgx-a100-scaled".to_string(),
                devices: DEVICES,
                // For dynamic records this column carries the update-batch
                // size, the swept variable.
                batches: size,
                time: out.maintenance_time,
                cardinality: out.matching.cardinality() as u64,
                weight: out.matching.weight(&out.graph),
                iterations: out.iterations,
            });
            row_results.push((name, out));
        }
        for (name, out) in &row_results {
            t.row(vec![
                format!("{size}"),
                name.to_string(),
                fmt_secs(out.maintenance_time),
                fmt_secs(out.maintenance_time / BATCHES as f64),
                format!("{}", out.iterations),
                format!("{:.1}", out.matching.weight(&out.graph)),
                format!("{:.1}x", scratch_time.unwrap() / out.maintenance_time),
            ]);
        }
    }
    writeln!(w, "{t}")?;
    Ok(records)
}

/// Run the experiment, writing the report to `w`.
pub fn run(w: &mut dyn Write) -> io::Result<()> {
    run_records(w).map(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldgm_graph::gen::urand;

    #[test]
    fn incremental_beats_from_scratch_for_small_batches() {
        // The acceptance criterion on a fast, test-sized stand-in.
        let g = urand(2000, 12000, 31);
        let setup = MatcherSetup {
            platform: scaled_platform(Platform::dgx_a100()),
            devices: DEVICES,
            ..MatcherSetup::default()
        };
        let registry = DynamicMatcherRegistry::with_defaults(&setup);
        let spec =
            WorkloadSpec { batches: 3, batch_size: 16, seed: SEED, ..WorkloadSpec::default() };
        let inc = registry.get("incremental").unwrap().run(&g, &spec).unwrap();
        let scr = registry.get("from-scratch").unwrap().run(&g, &spec).unwrap();
        assert_eq!(inc.matching, scr.matching, "engines must agree on the matching");
        assert!(
            inc.maintenance_time * 2.0 < scr.maintenance_time,
            "incremental {} vs from-scratch {}",
            inc.maintenance_time,
            scr.maintenance_time
        );
    }

    #[test]
    fn records_cover_both_engines_across_sizes() {
        let mut sink = Vec::new();
        let records = run_records(&mut sink).unwrap();
        assert_eq!(records.len(), 2 * BATCH_SIZES.len());
        for chunk in records.chunks(2) {
            let (scr, inc) = (&chunk[0], &chunk[1]);
            assert_eq!(scr.algorithm, "ld-dyn-from-scratch");
            assert_eq!(inc.algorithm, "ld-dyn-incremental");
            assert_eq!(scr.batches, inc.batches);
            assert_eq!(scr.weight, inc.weight, "identical streams, identical matchings");
        }
        // Small batches: decisive incremental win.
        assert!(records[1].time * 4.0 < records[0].time);
        let text = String::from_utf8(sink).unwrap();
        assert!(text.contains("batch-dynamic"));
    }
}

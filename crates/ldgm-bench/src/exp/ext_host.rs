//! Host-speed study of the LD-GPU hot kernels (extension, ROADMAP item 5).
//!
//! Unlike every other study in this crate, this one measures *wall-clock*
//! nanoseconds, not simulated seconds: the simulator executes SETPOINTERS
//! and SETMATES for real on host threads, so host ns/edge is an
//! independent cost axis that the serving and cluster-sweep workloads
//! (PRs 6–7) multiply thousands of times per billed second.
//!
//! Each workload is fixed and seeded; the measurement is best-of-N
//! wall time divided by the workload's unit count (directed edge slots
//! for SETPOINTERS, pointer slots for SETMATES). `BASELINE_NS` pins the
//! pre-refactor numbers measured on the reference machine, so the written
//! `BENCH_host.json` is a trajectory: every regeneration reports current
//! ns/unit next to the frozen baseline and the resulting speedup.

use std::io::{self, Write};
use std::time::Instant;

use ldgm_core::ld_gpu::{set_mates, set_pointers_batch, set_pointers_opt, PointingWork, Scratch};
use ldgm_gpusim::json::Json;
use ldgm_gpusim::NONE_SENTINEL;
use ldgm_graph::csr::CsrGraph;
use ldgm_graph::gen::{rmat, urand, RmatParams};
use ldgm_graph::SortedAdjacency;
use ldgm_part::Partition;

/// Pre-refactor host ns/unit per workload, measured on the reference
/// machine immediately before the SoA/scratch rewrite (same harness,
/// same seeds). Frozen: regenerations overwrite only the `current`
/// column of the trajectory.
const BASELINE_NS: &[(&str, f64)] = &[
    ("set_pointers/urand_sparse", 6.253),
    ("set_pointers/urand_dense", 2.875),
    ("set_pointers/rmat_skewed", 2.764),
    ("set_pointers/half_matched", 4.384),
    ("set_pointers/sorted_dense", 0.407),
    ("set_mates/pointed_200k", 11.532),
    ("set_mates/paired_1m", 3.157),
];

/// One measured workload of the trajectory.
#[derive(Clone, Debug)]
pub struct HostRecord {
    /// Kernel under test (`set_pointers` or `set_mates`).
    pub kernel: String,
    /// Workload name within the kernel.
    pub workload: String,
    /// Work units the wall time is divided by (directed edge slots for
    /// SETPOINTERS, pointer slots for SETMATES).
    pub units: u64,
    /// Pinned pre-refactor ns/unit (`BASELINE_NS`); equals
    /// `ns_per_unit` when the workload has no pinned baseline yet.
    pub baseline_ns_per_unit: f64,
    /// Best-of-N measured ns/unit of the current tree.
    pub ns_per_unit: f64,
}

impl HostRecord {
    /// Baseline-over-current speedup (>1 means the refactor won).
    pub fn speedup(&self) -> f64 {
        self.baseline_ns_per_unit / self.ns_per_unit
    }
}

fn pinned_baseline(key: &str) -> Option<f64> {
    BASELINE_NS.iter().find(|(k, _)| *k == key).map(|&(_, ns)| ns)
}

/// Best-of-N wall time of `f` in nanoseconds (one warmup rep).
fn best_ns(reps: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        f();
        let dt = t0.elapsed().as_nanos() as f64;
        if dt < best {
            best = dt;
        }
    }
    best
}

/// Geometric mean of the per-record speedups.
pub fn geomean_speedup(records: &[HostRecord]) -> f64 {
    if records.is_empty() {
        return 1.0;
    }
    let log_sum: f64 = records.iter().map(|r| r.speedup().ln()).sum();
    (log_sum / records.len() as f64).exp()
}

/// Mate array pairing vertices `4i <-> 4i+1` (half the vertices matched),
/// exercising the matched-skip and availability paths.
fn half_matched_mate(n: usize) -> Vec<u64> {
    let mut mate = vec![NONE_SENTINEL; n];
    let mut i = 0;
    while i + 1 < n {
        mate[i] = (i + 1) as u64;
        mate[i + 1] = i as u64;
        i += 4;
    }
    mate
}

struct PointingWorkload {
    name: &'static str,
    g: CsrGraph,
    mate: Vec<u64>,
    sorted: bool,
}

fn pointing_workloads() -> Vec<PointingWorkload> {
    let dense = urand(20_000, 400_000, 1);
    let half = half_matched_mate(dense.num_vertices());
    vec![
        PointingWorkload {
            name: "urand_sparse",
            g: urand(20_000, 80_000, 1),
            mate: vec![NONE_SENTINEL; 20_000],
            sorted: false,
        },
        PointingWorkload {
            name: "urand_dense",
            g: dense.clone(),
            mate: vec![NONE_SENTINEL; 20_000],
            sorted: false,
        },
        PointingWorkload {
            name: "rmat_skewed",
            g: rmat(1 << 14, 200_000, RmatParams::GAP_KRON, 1),
            mate: vec![NONE_SENTINEL; 1 << 14],
            sorted: false,
        },
        PointingWorkload { name: "half_matched", g: dense.clone(), mate: half, sorted: false },
        PointingWorkload {
            name: "sorted_dense",
            g: dense,
            mate: vec![NONE_SENTINEL; 20_000],
            sorted: true,
        },
    ]
}

/// Measure every workload of the study. `reps` is the best-of count
/// (the CI smoke pass uses a smaller one than the committed trajectory).
pub fn measure(reps: usize) -> Vec<HostRecord> {
    let mut records = Vec::new();

    for w in pointing_workloads() {
        let part = Partition::edge_balanced(&w.g, 1).parts[0];
        let sorted = w.sorted.then(|| SortedAdjacency::build(&w.g));
        let mut scratch = Scratch::for_graph(&w.g);
        scratch.sync_avail(&w.mate);
        let mut pointers = vec![NONE_SENTINEL; w.g.num_vertices()];
        let mut retired = vec![0u8; w.g.num_vertices()];
        let units = w.g.num_directed_edges() as u64;
        let ns = best_ns(reps, || {
            let r = match &sorted {
                Some(idx) => set_pointers_opt(
                    &w.g,
                    Some(idx),
                    &part,
                    PointingWork::Full,
                    scratch.avail(),
                    &mut pointers,
                    &mut retired,
                    8,
                    true,
                ),
                None => set_pointers_batch(
                    &w.g,
                    &part,
                    scratch.avail(),
                    &mut pointers,
                    &mut retired,
                    8,
                    true,
                ),
            };
            std::hint::black_box(r);
        });
        let key = format!("set_pointers/{}", w.name);
        let ns_per_unit = ns / units as f64;
        records.push(HostRecord {
            kernel: "set_pointers".into(),
            workload: w.name.into(),
            units,
            baseline_ns_per_unit: pinned_baseline(&key).unwrap_or(ns_per_unit),
            ns_per_unit,
        });
    }

    // SETMATES over pointers produced by a real pointing round (mutual
    // fraction as the algorithm sees it) and over a synthetic all-mutual
    // pairing. The mate array must be re-armed per rep; the template
    // copy is part of the timed region on both sides of the trajectory.
    let mut mates_workloads: Vec<(&str, Vec<u64>)> = Vec::new();
    {
        let g = urand(200_000, 800_000, 3);
        let part = Partition::edge_balanced(&g, 1).parts[0];
        let mate = vec![NONE_SENTINEL; g.num_vertices()];
        let mut scratch = Scratch::for_graph(&g);
        scratch.sync_avail(&mate);
        let mut pointers = vec![NONE_SENTINEL; g.num_vertices()];
        let mut retired = vec![0u8; g.num_vertices()];
        set_pointers_batch(&g, &part, scratch.avail(), &mut pointers, &mut retired, 8, true);
        mates_workloads.push(("pointed_200k", pointers));
    }
    let n = 1_000_000u64;
    mates_workloads
        .push(("paired_1m", (0..n).map(|u| if u % 2 == 0 { u + 1 } else { u - 1 }).collect()));

    for (name, pointers) in mates_workloads {
        let template = vec![NONE_SENTINEL; pointers.len()];
        let mut mate = template.clone();
        let mut avail = vec![1u8; pointers.len()];
        let units = pointers.len() as u64;
        let ns = best_ns(reps, || {
            mate.copy_from_slice(&template);
            avail.fill(1);
            std::hint::black_box(set_mates(&pointers, &mut mate, &mut avail));
        });
        let key = format!("set_mates/{name}");
        let ns_per_unit = ns / units as f64;
        records.push(HostRecord {
            kernel: "set_mates".into(),
            workload: name.into(),
            units,
            baseline_ns_per_unit: pinned_baseline(&key).unwrap_or(ns_per_unit),
            ns_per_unit,
        });
    }

    records
}

/// JSON document for `BENCH_host.json`: the record array plus the
/// geomean the acceptance gate reads.
pub fn host_records_to_json(records: &[HostRecord]) -> Json {
    let rows: Vec<Json> = records
        .iter()
        .map(|r| {
            Json::object()
                .with("kernel", r.kernel.clone())
                .with("workload", r.workload.clone())
                .with("units", r.units)
                .with("baseline_ns_per_unit", r.baseline_ns_per_unit)
                .with("ns_per_unit", r.ns_per_unit)
                .with("speedup", r.speedup())
        })
        .collect();
    Json::object()
        .with("schema_version", 1u64)
        .with("records", Json::Array(rows))
        .with("geomean_speedup", geomean_speedup(records))
}

/// Run the study and print the report table.
pub fn run_records(reps: usize, w: &mut dyn Write) -> io::Result<Vec<HostRecord>> {
    let records = measure(reps);
    writeln!(w, "Host-speed study: LD-GPU hot kernels (wall-clock, best of {reps})")?;
    writeln!(
        w,
        "{:<14} {:<14} {:>12} {:>14} {:>12} {:>9}",
        "kernel", "workload", "units", "baseline ns/u", "ns/unit", "speedup"
    )?;
    for r in &records {
        writeln!(
            w,
            "{:<14} {:<14} {:>12} {:>14.3} {:>12.3} {:>8.2}x",
            r.kernel,
            r.workload,
            r.units,
            r.baseline_ns_per_unit,
            r.ns_per_unit,
            r.speedup()
        )?;
    }
    writeln!(w, "geomean speedup vs pre-refactor baseline: {:.2}x", geomean_speedup(&records))?;
    Ok(records)
}

/// Entry point for `repro_all`-style callers.
pub fn run(w: &mut dyn Write) -> io::Result<()> {
    run_records(5, w).map(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_cover_both_hot_kernels() {
        let records = measure(1);
        assert!(records.iter().any(|r| r.kernel == "set_pointers"));
        assert!(records.iter().any(|r| r.kernel == "set_mates"));
        for r in &records {
            assert!(r.ns_per_unit > 0.0, "{}/{}", r.kernel, r.workload);
            assert!(r.units > 0);
        }
    }

    #[test]
    fn json_round_trips() {
        let records = vec![
            HostRecord {
                kernel: "set_pointers".into(),
                workload: "w".into(),
                units: 100,
                baseline_ns_per_unit: 10.0,
                ns_per_unit: 5.0,
            },
            HostRecord {
                kernel: "set_mates".into(),
                workload: "m".into(),
                units: 50,
                baseline_ns_per_unit: 8.0,
                ns_per_unit: 4.0,
            },
        ];
        let doc = host_records_to_json(&records).to_string_pretty();
        let parsed = ldgm_gpusim::json::parse(&doc).unwrap();
        let rows = parsed.get("records").and_then(Json::as_array).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].get("speedup").and_then(Json::as_f64), Some(2.0));
        let geo = parsed.get("geomean_speedup").and_then(Json::as_f64).unwrap();
        assert!((geo - 2.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_of_empty_is_one() {
        assert_eq!(geomean_speedup(&[]), 1.0);
    }
}

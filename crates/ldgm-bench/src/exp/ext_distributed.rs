//! **Extension**: distributed (multi-node) LD-GPU — the paper's §V future
//! work. Scales a LARGE input from one DGX-A100 node to a 2- and 4-node
//! InfiniBand cluster with hierarchical collectives, exposing the
//! synchronization wall the paper predicts for "sustainable strong
//! scalability on the next generation of HPC platforms".

use std::io::{self, Write};

use ldgm_core::ld_gpu::{LdGpu, LdGpuConfig};
use ldgm_gpusim::Platform;

use crate::datasets::{by_name, scaled_platform};
use crate::runner::fmt_secs;
use crate::table::Table;

/// Graphs used for the distributed extension study.
pub const GRAPHS: &[&str] = &["AGATHA-2015", "GAP-urand"];

/// Run the experiment, writing the report to `w`.
pub fn run(w: &mut dyn Write) -> io::Result<()> {
    writeln!(w, "# Extension: multi-node LD-GPU over InfiniBand (hierarchical collectives)\n")?;
    writeln!(
        w,
        "Single-node DGX-A100 vs 2- and 4-node clusters (8 GPUs/node). The\n\
         inter-node ring carries every per-iteration reduction across the\n\
         ~25 GB/s IB link, so pointer/mate synchronization becomes the wall\n\
         the paper's SV anticipates for distributed matching.\n"
    )?;
    let mut t =
        Table::new(vec!["Graph", "nodes", "GPUs", "time", "allreduce %", "speedup vs 1 node"]);
    for name in GRAPHS {
        let g = by_name(name).expect("registry dataset").build();
        let mut base: Option<f64> = None;
        for nodes in [1usize, 2, 4] {
            let platform = scaled_platform(Platform::dgx_a100_cluster(nodes));
            let ndev = 8 * nodes;
            let cfg = LdGpuConfig::new(platform).devices(ndev).without_iteration_profile();
            let Ok(out) = LdGpu::new(cfg).try_run(&g) else {
                continue;
            };
            if base.is_none() {
                base = Some(out.sim_time);
            }
            let pct = out.profile.phases.percentages();
            t.row(vec![
                name.to_string(),
                format!("{nodes}"),
                format!("{ndev}"),
                fmt_secs(out.sim_time),
                format!("{:.0}", pct[2]),
                format!("{:.2}x", base.unwrap() / out.sim_time),
            ]);
        }
    }
    writeln!(w, "{t}")
}

//! **Fig. 7**: component-wise timing (% of overall) for kmer_U1a with 1,
//! 3, 5 and 10 batches on 1–8 GPUs — the per-component view behind the
//! Fig. 6 batching-scalability story.

use std::io::{self, Write};

use ldgm_core::ld_gpu::{LdGpu, LdGpuConfig};
use ldgm_gpusim::Platform;

use crate::datasets::{by_name, scaled_platform};
use crate::table::Table;

/// Run the experiment, writing the report to `w`.
pub fn run(w: &mut dyn Write) -> io::Result<()> {
    writeln!(w, "# Fig. 7: kmer_U1a component timing (% of overall) across batch counts\n")?;
    let platform = scaled_platform(Platform::dgx_a100());
    let g = by_name("kmer_U1a").expect("registry dataset").build();
    let mut t =
        Table::new(vec!["batches", "GPUs", "point%", "match%", "allred%", "xfer%", "sync%"]);
    for &nb in super::fig6::BATCHES {
        for nd in [1usize, 2, 4, 8] {
            let cfg = LdGpuConfig::new(platform.clone())
                .devices(nd)
                .batches(nb)
                .without_iteration_profile();
            let Ok(out) = LdGpu::new(cfg).try_run(&g) else {
                continue;
            };
            let pct = out.profile.phases.percentages();
            t.row(vec![
                format!("{nb}"),
                format!("{nd}"),
                format!("{:.0}", pct[0]),
                format!("{:.0}", pct[1]),
                format!("{:.0}", pct[2]),
                format!("{:.0}", pct[3]),
                format!("{:.0}", pct[4]),
            ]);
        }
    }
    writeln!(w, "{t}")
}

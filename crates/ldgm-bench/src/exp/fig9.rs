//! **Fig. 9**: execution-time speedup of NVLink over PCIe for data
//! transfer and multi-GPU communication.
//!
//! Expected shape (paper): average ≈ 3× in favor of NVLink, maximum ≈ 17×;
//! the smallest graph (mouse_gene) is an outlier with mild, stable
//! collective overheads up to 4 GPUs.

use std::io::{self, Write};

use ldgm_gpusim::Platform;

use crate::datasets::{registry, scaled_platform};
use crate::runner::{geomean, sweep_ld_gpu, BATCH_SWEEP};
use crate::table::Table;

/// Run the experiment, writing the report to `w`.
pub fn run(w: &mut dyn Write) -> io::Result<()> {
    writeln!(w, "# Fig. 9: NVLink vs PCIe speedup (multi-GPU LD-GPU)\n")?;
    let nvlink = scaled_platform(Platform::dgx_a100());
    let pcie = scaled_platform(Platform::pcie_a100());
    let devices: &[usize] = &[2, 4, 8];
    let mut t = Table::new(vec!["Graph", "NVLink (s)", "PCIe (s)", "speedup"]);
    let mut speedups = Vec::new();
    for d in registry() {
        let g = d.build();
        let (Some(nv), Some(pc)) = (
            sweep_ld_gpu(&g, &nvlink, devices, BATCH_SWEEP),
            sweep_ld_gpu(&g, &pcie, devices, BATCH_SWEEP),
        ) else {
            continue;
        };
        let s = pc.output.sim_time / nv.output.sim_time;
        speedups.push(s);
        t.row(vec![
            d.name.to_string(),
            format!("{:.5}", nv.output.sim_time),
            format!("{:.5}", pc.output.sim_time),
            format!("{s:.1}x"),
        ]);
    }
    writeln!(w, "{t}")?;
    writeln!(
        w,
        "geomean speedup: {:.2}x, max: {:.1}x",
        geomean(&speedups),
        speedups.iter().fold(0.0_f64, |a, &b| a.max(b))
    )
}

//! **Table I**: dataset properties and best execution times of SR-OMP
//! (CPU-parallel Suitor, measured wall-clock), SR-GPU (simulated
//! single-GPU Suitor) and LD-GPU (simulated multi-GPU, best configuration
//! over the device/batch sweep), with LD-GPU speedups.
//!
//! Expected shape (paper): LD-GPU beats SR-OMP on everything (2–45×, the
//! synthetic GAP graphs most); SR-GPU out-of-memory on every LARGE input
//! except com-Friendster; SR-GPU faster than LD-GPU on several mid-size
//! SMALL instances.

use std::io::{self, Write};

use ldgm_core::suitor_par::suitor_par;
use ldgm_core::suitor_sim::suitor_sim;
use ldgm_gpusim::Platform;
use ldgm_graph::stats::stats;

use crate::datasets::{registry, scaled_platform};
use crate::runner::{best_wall_of, fmt_secs, sweep_ld_gpu, BATCH_SWEEP, DEVICE_SWEEP};
use crate::table::Table;

/// Run the experiment, writing the report to `w`.
pub fn run(w: &mut dyn Write) -> io::Result<()> {
    writeln!(w, "# Table I: properties and best execution times (s)\n")?;
    writeln!(
        w,
        "Stand-ins ~1000x below paper scale; device memory scaled identically\n\
         (A100: 40 MB). SR-OMP is measured wall-clock on the host; SR-GPU and\n\
         LD-GPU are simulated. '-' marks out-of-memory, as in the paper.\n"
    )?;
    let platform = scaled_platform(Platform::dgx_a100());
    let mut t = Table::new(vec![
        "Graph",
        "|V|",
        "|E|",
        "d_max",
        "d_avg",
        "SR-OMP",
        "SR-GPU",
        "LD-GPU(#GPUs)",
        "vs SR-OMP",
        "vs SR-GPU",
    ]);
    for d in registry() {
        let g = d.build();
        let s = stats(&g);
        let (omp_time, _) = best_wall_of(3, || suitor_par(&g));
        let srgpu = suitor_sim(&g, &platform);
        let best = sweep_ld_gpu(&g, &platform, DEVICE_SWEEP, BATCH_SWEEP)
            .expect("LD-GPU must always have a feasible configuration");
        let ld = best.output.sim_time;
        let srgpu_cell = match &srgpu {
            Ok(out) => fmt_secs(out.sim_time),
            Err(_) => "-".into(),
        };
        let vs_srgpu = match &srgpu {
            Ok(out) => format!("{:.2}x", out.sim_time / ld),
            Err(_) => "-".into(),
        };
        t.row(vec![
            d.name.to_string(),
            format!("{}", s.vertices),
            format!("{}", 2 * s.edges),
            format!("{}", s.d_max),
            format!("{:.0}", s.d_avg),
            fmt_secs(omp_time),
            srgpu_cell,
            format!("{}({})", fmt_secs(ld), best.devices),
            format!("{:.1}x", omp_time / ld),
            vs_srgpu,
        ]);
    }
    writeln!(w, "{t}")?;
    writeln!(
        w,
        "Note: SR-OMP wall-clock runs on the repro host CPU while LD-GPU time is\n\
         simulated, so absolute 'vs SR-OMP' factors are not comparable to the\n\
         paper's; the ranking and the OOM pattern are."
    )
}

//! **Table IV**: single-GPU runtime, LD-GPU vs SR-GPU, on com-Friendster
//! plus the seven SMALL graphs.
//!
//! Expected shape (paper): SR-GPU — which specializes for single-device
//! execution with per-adjacency-bounded work — wins most mid-size
//! instances, while LD-GPU is better or competitive on ~3 of 8 (the graphs
//! whose structure defeats fixed vertices-per-warp load redistribution).

use std::io::{self, Write};

use ldgm_core::ld_gpu::{LdGpu, LdGpuConfig};
use ldgm_core::suitor_sim::suitor_sim;
use ldgm_gpusim::Platform;

use crate::datasets::{by_name, scaled_platform};
use crate::runner::fmt_secs;
use crate::table::Table;

/// The eight graphs of the paper's Table IV.
pub const GRAPHS: &[&str] = &[
    "com-Friendster",
    "Queen_4147",
    "mycielskian18",
    "HV15R",
    "com-Orkut",
    "kmer_U1a",
    "kmer_V2a",
    "mouse_gene",
];

/// Run the experiment, writing the report to `w`.
pub fn run(w: &mut dyn Write) -> io::Result<()> {
    writeln!(w, "# Table IV: single-GPU runtime comparison (s)\n")?;
    let platform = scaled_platform(Platform::dgx_a100());
    let mut t = Table::new(vec!["Graph", "LD-GPU", "SR-GPU", "winner"]);
    for name in GRAPHS {
        let g = by_name(name).expect("registry dataset").build();
        let ld = LdGpu::new(LdGpuConfig::new(platform.clone()).without_iteration_profile())
            .run(&g)
            .sim_time;
        match suitor_sim(&g, &platform) {
            Ok(sr) => {
                let winner = if ld <= sr.sim_time { "LD-GPU" } else { "SR-GPU" };
                t.row(vec![
                    name.to_string(),
                    fmt_secs(ld),
                    fmt_secs(sr.sim_time),
                    winner.to_string(),
                ]);
            }
            Err(_) => {
                t.row(vec![name.to_string(), fmt_secs(ld), "-".into(), "LD-GPU".into()]);
            }
        }
    }
    writeln!(w, "{t}")
}

//! **Extension**: the matching service under concurrent client load.
//!
//! Every other study drives an engine directly; this one measures the
//! `ldgm-serve` stack end to end — TCP framing, the update coalescer, the
//! snapshot read path — with a seeded in-process load generator. N client
//! threads each stream single-edge updates interleaved with timed `mate`
//! point queries; the server coalesces the concurrent streams into
//! engine batches. Reported per dataset: wall-clock p50/p99 query
//! latency, the coalesced batch-size histogram (the whole point of the
//! coalescer: mean committed batch size must exceed 1 under concurrent
//! load), per-tenant billed simulated time, and whether the final
//! matching survived the offline replay check at shutdown.

use std::io::{self, BufRead, BufReader, Write as IoWrite};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use ldgm_dyn::DynConfig;
use ldgm_gpusim::json::{self, Json};
use ldgm_gpusim::Platform;
use ldgm_graph::{CsrGraph, Xoshiro256};
use ldgm_serve::{serve, MatchService, ServeConfig};

use crate::datasets::{by_name, scaled_platform, Dataset};
use crate::table::Table;

/// Concurrent load-generator clients per dataset.
pub const CLIENTS: usize = 4;
/// Updates each client submits.
pub const UPDATES_PER_CLIENT: usize = 80;
/// Coalescer flush target (smaller than the 64 default so a short
/// benchmark still commits many batches).
pub const COALESCE_TARGET: usize = 16;
/// Simulated devices backing each service.
pub const DEVICES: usize = 2;
/// Load-stream seed.
pub const SEED: u64 = 11;
/// Default datasets: the three smallest Table I stand-ins, one per
/// family shape (social rmat, stencil lattice, dense similarity).
pub const DATASETS: &[&str] = &["com-Orkut", "Queen_4147", "mouse_gene"];

/// One dataset's service-under-load measurement.
#[derive(Clone, Debug)]
pub struct ServeRecord {
    /// Dataset name.
    pub dataset: String,
    /// Concurrent clients.
    pub clients: usize,
    /// Coalescer flush target.
    pub coalesce_target: usize,
    /// Updates applied by the engine (== admitted across all clients).
    pub updates_applied: u64,
    /// Point queries served.
    pub queries: u64,
    /// Committed batches.
    pub flushes: u64,
    /// Batches committed by the deadline rather than the size target.
    pub deadline_flushes: u64,
    /// Mean coalesced batch size (> 1 means coalescing actually merged
    /// concurrent submissions).
    pub mean_batch: f64,
    /// Largest committed batch.
    pub max_batch: u64,
    /// Power-of-two batch-size histogram as (upper bound, count).
    pub batch_histogram: Vec<(f64, u64)>,
    /// Wall-clock median `mate` latency, microseconds.
    pub p50_query_us: f64,
    /// Wall-clock 99th-percentile `mate` latency, microseconds.
    pub p99_query_us: f64,
    /// Mate-change events delivered to the subscribing client.
    pub subscription_events: u64,
    /// Final matched weight.
    pub weight: f64,
    /// Final matched edges.
    pub cardinality: u64,
    /// Final commit epoch (== flushes).
    pub epoch: u64,
    /// Simulated seconds billed across all tenants.
    pub billed_sim_time: f64,
    /// Whether the final matching was bit-identical to an offline replay
    /// of the full update history.
    pub replay_identical: bool,
}

impl ServeRecord {
    /// Serialize for `BENCH_serve.json`.
    pub fn to_json(&self) -> Json {
        let hist: Vec<Json> = self
            .batch_histogram
            .iter()
            .map(|&(le, n)| Json::object().with("le", le).with("count", n))
            .collect();
        Json::object()
            .with("dataset", self.dataset.clone())
            .with("clients", self.clients)
            .with("coalesce_target", self.coalesce_target)
            .with("updates_applied", self.updates_applied)
            .with("queries", self.queries)
            .with("flushes", self.flushes)
            .with("deadline_flushes", self.deadline_flushes)
            .with("mean_batch", self.mean_batch)
            .with("max_batch", self.max_batch)
            .with("batch_histogram", Json::Array(hist))
            .with("p50_query_us", self.p50_query_us)
            .with("p99_query_us", self.p99_query_us)
            .with("subscription_events", self.subscription_events)
            .with("weight", self.weight)
            .with("cardinality", self.cardinality)
            .with("epoch", self.epoch)
            .with("billed_sim_time", self.billed_sim_time)
            .with("replay_identical", self.replay_identical)
    }
}

/// Serialize a result set as a JSON array document.
pub fn serve_records_to_json(records: &[ServeRecord]) -> Json {
    Json::Array(records.iter().map(ServeRecord::to_json).collect())
}

/// One line-delimited JSON client; responses are read past any
/// interleaved subscription events, which are counted separately.
struct LoadClient {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
    events: u64,
}

impl LoadClient {
    fn connect(addr: &str) -> LoadClient {
        let stream = TcpStream::connect(addr).expect("connect to in-process server");
        let _ = stream.set_nodelay(true);
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        LoadClient { stream, reader, events: 0 }
    }

    /// Send one request line and return its (non-event) response.
    fn call(&mut self, req: &Json) -> Json {
        writeln!(self.stream, "{}", req.to_string_compact()).expect("request write");
        loop {
            let mut line = String::new();
            self.reader.read_line(&mut line).expect("response read");
            let msg = json::parse(&line).expect("server speaks JSON");
            if msg.get("event").is_some() {
                self.events += 1;
                continue;
            }
            return msg;
        }
    }
}

/// One client's session: `updates` seeded single-edge updates, with a
/// timed `mate` query after every second update. Returns the query
/// latencies (µs) and the subscription events this client observed.
fn client_session(addr: &str, id: usize, updates: usize, seed: u64) -> (Vec<f64>, u64) {
    let mut c = LoadClient::connect(addr);
    let hello = c.call(&Json::object().with("op", "hello").with("tenant", format!("loadgen-{id}")));
    assert_eq!(hello.get("ok").and_then(Json::as_bool), Some(true), "hello failed");
    let info = c.call(&Json::object().with("op", "match-info"));
    let n =
        info.get("num_vertices").and_then(Json::as_f64).expect("match-info num_vertices") as u64;
    // The first client also subscribes, so notification delivery runs
    // under the same load it is being measured with.
    if id == 0 {
        let sub = c.call(&Json::object().with("op", "subscribe").with("v", 0u32));
        assert_eq!(sub.get("ok").and_then(Json::as_bool), Some(true), "subscribe failed");
    }

    let mut rng = Xoshiro256::seed_from_u64(seed ^ (id as u64).wrapping_mul(0x9e37_79b9));
    let mut latencies = Vec::with_capacity(updates / 2 + 1);
    for i in 0..updates {
        let u = rng.below(n) as u32;
        let v = rng.below(n) as u32;
        if u == v {
            continue;
        }
        let upd = if rng.chance(0.3) {
            Json::object().with("op", "update").with("kind", "delete").with("u", u).with("v", v)
        } else {
            Json::object()
                .with("op", "update")
                .with("kind", "insert")
                .with("u", u)
                .with("v", v)
                .with("w", 0.05 + rng.next_f64())
        };
        let ack = c.call(&upd);
        assert_eq!(ack.get("ok").and_then(Json::as_bool), Some(true), "update rejected: {ack:?}");

        if i % 2 == 1 {
            let q = rng.below(n) as u32;
            let t0 = Instant::now();
            let resp = c.call(&Json::object().with("op", "mate").with("v", q));
            latencies.push(t0.elapsed().as_secs_f64() * 1e6);
            assert_eq!(resp.get("ok").and_then(Json::as_bool), Some(true), "query failed");
        }
    }
    (latencies, c.events)
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Serve `g` on a loopback server, drive it with `clients` concurrent
/// seeded sessions, and collect the record.
pub fn measure(name: &str, g: CsrGraph, clients: usize, updates_per_client: usize) -> ServeRecord {
    let dyn_cfg = DynConfig::builder(scaled_platform(Platform::dgx_a100()))
        .devices(DEVICES)
        .build()
        .expect("device count is positive");
    let cfg = ServeConfig {
        coalesce_target: COALESCE_TARGET,
        deadline: Duration::from_millis(25),
        max_pending_per_tenant: 1_000_000,
    };
    let service = Arc::new(MatchService::new(name, g, dyn_cfg, cfg));
    let handle = serve(vec![service], "127.0.0.1:0", clients).expect("bind loopback");
    let addr = handle.addr.to_string();

    let sessions: Vec<_> = (0..clients)
        .map(|id| {
            let addr = addr.clone();
            std::thread::spawn(move || client_session(&addr, id, updates_per_client, SEED))
        })
        .collect();
    let mut latencies = Vec::new();
    let mut events = 0u64;
    for s in sessions {
        let (lat, ev) = s.join().expect("client session");
        latencies.extend(lat);
        events += ev;
    }
    latencies.sort_by(|a, b| a.total_cmp(b));

    // Control session: commit stragglers, read the final state, then shut
    // the server down (which runs the offline replay check).
    let mut ctl = LoadClient::connect(&addr);
    ctl.call(&Json::object().with("op", "flush"));
    let stats = ctl.call(&Json::object().with("op", "stats"));
    let info = ctl.call(&Json::object().with("op", "match-info"));
    let bye = ctl.call(&Json::object().with("op", "shutdown"));
    handle.join();

    let f = |j: &Json, k: &str| j.get(k).and_then(Json::as_f64).unwrap_or(0.0);
    let hist = stats
        .get("batch_histogram")
        .and_then(Json::as_array)
        .map(|rows| rows.iter().map(|r| (f(r, "le"), f(r, "count") as u64)).collect::<Vec<_>>())
        .unwrap_or_default();
    let sum_tenants = |k: &str| match stats.get("tenants") {
        Some(Json::Object(entries)) => entries.iter().map(|(_, t)| f(t, k)).sum::<f64>(),
        _ => 0.0,
    };
    ServeRecord {
        dataset: name.to_string(),
        clients,
        coalesce_target: COALESCE_TARGET,
        updates_applied: f(&stats, "updates_applied") as u64,
        queries: sum_tenants("queries") as u64,
        flushes: f(&stats, "flushes") as u64,
        deadline_flushes: f(&stats, "deadline_flushes") as u64,
        mean_batch: f(&stats, "mean_batch"),
        max_batch: f(&stats, "max_batch") as u64,
        batch_histogram: hist,
        p50_query_us: percentile(&latencies, 0.50),
        p99_query_us: percentile(&latencies, 0.99),
        subscription_events: events,
        weight: f(&info, "weight"),
        cardinality: f(&info, "size") as u64,
        epoch: f(&info, "epoch") as u64,
        billed_sim_time: sum_tenants("billed_sim_time"),
        replay_identical: bye.get("replay_identical").and_then(Json::as_bool).unwrap_or(false),
    }
}

/// Run the study over `datasets`, returning one record per dataset.
pub fn run_on(datasets: &[Dataset], w: &mut dyn IoWrite) -> io::Result<Vec<ServeRecord>> {
    writeln!(w, "# Extension: matching-as-a-service under concurrent load\n")?;
    writeln!(
        w,
        "{CLIENTS} loadgen clients per dataset, {UPDATES_PER_CLIENT} updates each with\n\
         interleaved timed point queries, coalesce target {COALESCE_TARGET}, {DEVICES}\n\
         simulated devices. `replay` checks the served matching against an\n\
         offline replay of the full update history (canonical uniqueness).\n"
    )?;
    let mut t = Table::new(vec![
        "dataset",
        "clients",
        "updates",
        "flushes",
        "mean batch",
        "p50 query",
        "p99 query",
        "replay",
    ]);
    let mut records = Vec::new();
    for ds in datasets {
        let rec = measure(ds.name, ds.build(), CLIENTS, UPDATES_PER_CLIENT);
        t.row(vec![
            rec.dataset.clone(),
            format!("{}", rec.clients),
            format!("{}", rec.updates_applied),
            format!("{} ({} deadline)", rec.flushes, rec.deadline_flushes),
            format!("{:.1}", rec.mean_batch),
            format!("{:.0} us", rec.p50_query_us),
            format!("{:.0} us", rec.p99_query_us),
            if rec.replay_identical { "identical" } else { "DIVERGED" }.to_string(),
        ]);
        records.push(rec);
    }
    writeln!(w, "{t}")?;
    Ok(records)
}

/// Run the study on the default dataset subset, writing the report to `w`.
pub fn run(w: &mut dyn IoWrite) -> io::Result<()> {
    let datasets: Vec<Dataset> =
        DATASETS.iter().map(|n| by_name(n).expect("registry dataset")).collect();
    run_on(&datasets, w).map(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldgm_graph::gen::urand;

    #[test]
    fn concurrent_load_coalesces_and_replays_identically() {
        let rec = measure("test-urand", urand(400, 1600, 3), 3, 30);
        // The acceptance criterion: concurrent submissions actually merge.
        assert!(rec.mean_batch > 1.0, "mean batch {}", rec.mean_batch);
        assert!(rec.flushes > 1, "{} flushes", rec.flushes);
        assert_eq!(rec.epoch, rec.flushes);
        assert!(rec.replay_identical, "served matching diverged from offline replay");
        assert!(rec.queries > 0 && rec.updates_applied > 0);
        assert!(rec.p99_query_us >= rec.p50_query_us);
        assert!(rec.billed_sim_time > 0.0);
        let total_in_hist: u64 = rec.batch_histogram.iter().map(|&(_, n)| n).sum();
        assert_eq!(total_in_hist, rec.flushes, "histogram covers every flush");
    }

    #[test]
    fn record_round_trips_through_json() {
        let rec = ServeRecord {
            dataset: "x".into(),
            clients: 4,
            coalesce_target: 16,
            updates_applied: 320,
            queries: 160,
            flushes: 20,
            deadline_flushes: 2,
            mean_batch: 16.0,
            max_batch: 16,
            batch_histogram: vec![(16.0, 18), (32.0, 2)],
            p50_query_us: 120.0,
            p99_query_us: 900.0,
            subscription_events: 3,
            weight: 12.5,
            cardinality: 180,
            epoch: 20,
            billed_sim_time: 0.25,
            replay_identical: true,
        };
        let doc = serve_records_to_json(std::slice::from_ref(&rec)).to_string_pretty();
        let parsed = json::parse(&doc).unwrap();
        let row = &parsed.as_array().unwrap()[0];
        assert_eq!(row.get("dataset").and_then(Json::as_str), Some("x"));
        assert_eq!(row.get("mean_batch").and_then(Json::as_f64), Some(rec.mean_batch));
        assert_eq!(row.get("replay_identical").and_then(Json::as_bool), Some(true));
        let hist = row.get("batch_histogram").and_then(Json::as_array).unwrap();
        assert_eq!(hist.len(), 2);
        assert_eq!(hist[1].get("count").and_then(Json::as_f64), Some(2.0));
    }
}
